// Unit tests for the classic graph family generators.
#include "gen/classic.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"

namespace bncg {
namespace {

TEST(GenClassic, PathShape) {
  const Graph g = path(6);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(3), 2u);
}

TEST(GenClassic, CycleShape) {
  const Graph g = cycle(7);
  EXPECT_EQ(g.num_edges(), 7u);
  for (Vertex v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_THROW((void)cycle(2), std::invalid_argument);
}

TEST(GenClassic, StarShape) {
  const Graph g = star(9);
  EXPECT_EQ(g.degree(0), 8u);
  for (Vertex v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1u);
  EXPECT_EQ(diameter(g), 2u);
}

TEST(GenClassic, DoubleStarShape) {
  const Graph g = double_star(3, 4);
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 4u);  // 3 leaves + other center
  EXPECT_EQ(g.degree(1), 5u);
  EXPECT_EQ(diameter(g), 3u);
}

TEST(GenClassic, DoubleStarDegenerateCases) {
  EXPECT_EQ(diameter(double_star(0, 0)), 1u);  // single edge
  EXPECT_EQ(diameter(double_star(1, 0)), 2u);  // path of 3
}

TEST(GenClassic, CompleteGraphEdgeCount) {
  const Graph g = complete(8);
  EXPECT_EQ(g.num_edges(), 28u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(GenClassic, CompleteBipartiteShape) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_EQ(diameter(g), 2u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 3));
}

TEST(GenClassic, HypercubeShape) {
  const Graph g = hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16u);
  EXPECT_EQ(g.num_edges(), 32u);
  for (Vertex v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(GenClassic, GridShape) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // 17
  EXPECT_EQ(diameter(g), 5u);                 // (3-1)+(4-1)
}

TEST(GenClassic, StandardTorusIsFourRegular) {
  const Graph g = torus_standard(4, 5);
  EXPECT_EQ(g.num_vertices(), 20u);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(diameter(g), 2u + 2u);  // floor(4/2) + floor(5/2)
}

TEST(GenClassic, PetersenBasics) {
  const Graph g = petersen();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.num_edges(), 15u);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3u);
}

TEST(GenClassic, CompleteKaryTreeShape) {
  const Graph g = complete_kary_tree(2, 3);  // binary, height 3 → 15 vertices
  EXPECT_EQ(g.num_vertices(), 15u);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(diameter(g), 6u);
  const Graph t = complete_kary_tree(3, 2);  // ternary, height 2 → 13 vertices
  EXPECT_EQ(t.num_vertices(), 13u);
}

TEST(GenClassic, LollipopShape) {
  const Graph g = lollipop(5, 4);
  EXPECT_EQ(g.num_vertices(), 9u);
  EXPECT_EQ(g.num_edges(), 10u + 4u);
  EXPECT_EQ(diameter(g), 1u + 4u);
  EXPECT_EQ(bridges(g).size(), 4u);
}

}  // namespace
}  // namespace bncg

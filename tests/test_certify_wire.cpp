// Unit tests for the cross-process certification subsystem: the ShardResult
// wire format (core/certify_wire.hpp) and the range/merge entry points of
// core/certify_sharded.hpp. The heavy randomized coverage (round-trip fuzz,
// corruption sweeps, merge-parity over random partitions) lives in the
// property harness (tests/test_wire_fuzz.cpp); these are the deterministic
// anchors.
#include "core/certify_wire.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/certify_sharded.hpp"
#include "core/swap_engine.hpp"
#include "gen/random.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

[[nodiscard]] ShardResult sample_shard(bool with_witness) {
  ShardResult r;
  r.fingerprint = 0x0123456789ABCDEFull;
  r.n = 512;
  r.m = 1024;
  r.model = UsageCost::Max;
  r.include_deletions = true;
  r.stop_on_violation = false;
  r.shard_index = 2;
  r.shard_count = 7;
  r.agent_lo = 146;
  r.agent_hi = 219;
  r.moves = 123456789;
  r.scanned = 73;
  r.width = DistWidth::U8;
  r.width_fallbacks = 3;
  if (with_witness) {
    Deviation dev;
    dev.swap = {150, 7, 300};
    dev.cost_before = 9;
    dev.cost_after = 8;
    dev.kind = Deviation::Kind::ImprovingSwap;
    r.best = dev;
  }
  return r;
}

/// Byte-level equality through the canonical encoding — if two results
/// serialize identically they are identical in every field.
void expect_same_shard(const ShardResult& a, const ShardResult& b) {
  EXPECT_EQ(shard_to_binary(a), shard_to_binary(b));
}

TEST(CertifyWire, BinaryRoundTrip) {
  for (const bool witness : {false, true}) {
    const ShardResult original = sample_shard(witness);
    const std::string bytes = shard_to_binary(original);
    EXPECT_EQ(bytes.substr(0, 8), kShardWireMagic);
    expect_same_shard(shard_from_binary(bytes), original);
    expect_same_shard(shard_from_bytes(bytes), original);
  }
}

TEST(CertifyWire, JsonRoundTrip) {
  for (const bool witness : {false, true}) {
    const ShardResult original = sample_shard(witness);
    const std::string text = shard_to_json(original);
    expect_same_shard(shard_from_json(text), original);
    expect_same_shard(shard_from_bytes(text), original);
  }
}

TEST(CertifyWire, ExtremeCostsSurviveBothEncodings) {
  // kInfCost-level u64s must round-trip exactly (JSON numbers are parsed
  // with full 64-bit precision by our own reader).
  ShardResult r = sample_shard(true);
  r.best->cost_before = kInfCost;
  r.best->cost_after = kInfCost - 1;
  r.moves = 0xFFFFFFFFFFFFFFFFull;
  expect_same_shard(shard_from_binary(shard_to_binary(r)), r);
  expect_same_shard(shard_from_json(shard_to_json(r)), r);
}

TEST(CertifyWire, EveryBinaryTruncationThrows) {
  const std::string bytes = shard_to_binary(sample_shard(true));
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW((void)shard_from_binary(bytes.substr(0, len)), std::invalid_argument)
        << "prefix length " << len;
  }
}

TEST(CertifyWire, EveryBinaryBitFlipThrows) {
  const std::string bytes = shard_to_binary(sample_shard(true));
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_THROW((void)shard_from_bytes(corrupt), std::invalid_argument) << "byte " << i;
  }
}

TEST(CertifyWire, JsonValueTamperingIsCaughtByChecksum) {
  const std::string text = shard_to_json(sample_shard(true));
  // Flip one digit of the moves field: still perfectly valid JSON, but the
  // re-encoded body no longer matches the embedded checksum.
  const std::string needle = "\"moves\": \"123456789";
  const std::size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  std::string tampered = text;
  tampered[pos + needle.size() - 1] = '0';
  EXPECT_THROW((void)shard_from_json(tampered), std::invalid_argument);
}

TEST(CertifyWire, JsonRejectsUnsupportedVersionAndForeignDocuments) {
  std::string text = shard_to_json(sample_shard(false));
  const std::size_t pos = text.find("\"version\": 1");
  ASSERT_NE(pos, std::string::npos);
  std::string wrong_version = text;
  wrong_version[pos + 11] = '2';
  EXPECT_THROW((void)shard_from_json(wrong_version), std::invalid_argument);
  EXPECT_THROW((void)shard_from_bytes("{\"format\": \"something-else\"}"),
               std::invalid_argument);
  EXPECT_THROW((void)shard_from_bytes(""), std::invalid_argument);
  EXPECT_THROW((void)shard_from_bytes("not a shard at all"), std::invalid_argument);
}

TEST(CertifyWire, ShardFileRoundTripBothFormats) {
  const ShardResult original = sample_shard(true);
  for (const ShardWireFormat format : {ShardWireFormat::Binary, ShardWireFormat::Json}) {
    const std::string path = testing::TempDir() + "/bncg_wire_test.shard";
    write_shard_file(path, original, format);
    expect_same_shard(read_shard_file(path), original);
  }
  EXPECT_THROW((void)read_shard_file(testing::TempDir() + "/bncg_wire_missing.shard"),
               std::runtime_error);
}

TEST(GraphFingerprint, InsertionOrderIndependentAndStructureSensitive) {
  Graph a(5);
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  a.add_edge(3, 4);
  Graph b(5);
  b.add_edge(3, 4);
  b.add_edge(1, 2);
  b.add_edge(0, 1);
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));
  Graph c = a;
  c.add_edge(0, 4);
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(c));
  EXPECT_NE(graph_fingerprint(Graph(5)), graph_fingerprint(Graph(6)));
}

// ---------------------------------------------------------------- merging

[[nodiscard]] std::vector<ShardResult> shards_of(const Graph& g, UsageCost model,
                                                 bool include_deletions,
                                                 const std::vector<Vertex>& cuts) {
  // Fresh engine per shard — each call emulates an independent worker
  // process with its own address space.
  std::vector<ShardResult> shards;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const SwapEngine engine(g);
    AgentRange range;
    range.lo = cuts[i];
    range.hi = cuts[i + 1];
    range.shard_index = static_cast<std::uint32_t>(i);
    range.shard_count = static_cast<std::uint32_t>(cuts.size() - 1);
    shards.push_back(certify_agent_range(engine, range, model, include_deletions));
  }
  return shards;
}

TEST(MergeShardResults, UnevenPartitionReproducesTheEngineCertificate) {
  Xoshiro256ss rng(0x511A);
  const Graph g = random_connected_gnm(40, 90, rng);
  for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
    const bool deletions = model == UsageCost::Max;
    const EquilibriumCertificate want = SwapEngine(g).certify(model, deletions);
    const std::vector<ShardResult> shards =
        shards_of(g, model, deletions, {0, 3, 3, 17, 38, 40});
    const ShardedCertificate merged = merge_shard_results(shards);
    EXPECT_EQ(merged.certificate.is_equilibrium, want.is_equilibrium);
    EXPECT_EQ(merged.certificate.moves_checked, want.moves_checked);
    ASSERT_EQ(merged.certificate.witness.has_value(), want.witness.has_value());
    if (want.witness) {
      EXPECT_EQ(merged.certificate.witness->swap.v, want.witness->swap.v);
      EXPECT_EQ(merged.certificate.witness->swap.remove_w, want.witness->swap.remove_w);
      EXPECT_EQ(merged.certificate.witness->swap.add_w, want.witness->swap.add_w);
      EXPECT_EQ(merged.certificate.witness->cost_after, want.witness->cost_after);
    }
    EXPECT_EQ(merged.agents_scanned, g.num_vertices());
    EXPECT_EQ(merged.shards_used, shards.size());
  }
}

TEST(MergeShardResults, RefusesMismatchedOrIncompleteShardSets) {
  Xoshiro256ss rng(0x511B);
  const Graph g = random_connected_gnm(20, 40, rng);
  const std::vector<ShardResult> good = shards_of(g, UsageCost::Sum, false, {0, 10, 20});

  EXPECT_THROW((void)merge_shard_results({}), std::invalid_argument);

  std::vector<ShardResult> wrong_instance = good;
  wrong_instance[1].fingerprint ^= 1;
  EXPECT_THROW((void)merge_shard_results(wrong_instance), std::invalid_argument);

  std::vector<ShardResult> wrong_model = good;
  wrong_model[1].model = UsageCost::Max;
  EXPECT_THROW((void)merge_shard_results(wrong_model), std::invalid_argument);

  std::vector<ShardResult> duplicate_index = good;
  duplicate_index[1].shard_index = 0;
  EXPECT_THROW((void)merge_shard_results(duplicate_index), std::invalid_argument);

  std::vector<ShardResult> gap = good;
  gap[1].agent_lo = 11;  // agents 10..10 uncovered
  EXPECT_THROW((void)merge_shard_results(gap), std::invalid_argument);

  std::vector<ShardResult> missing_tail(good.begin(), good.begin() + 1);
  missing_tail[0].shard_count = 1;
  EXPECT_THROW((void)merge_shard_results(missing_tail), std::invalid_argument);

  std::vector<ShardResult> short_scan = good;
  short_scan[0].scanned -= 1;  // full mode must scan its whole range
  EXPECT_THROW((void)merge_shard_results(short_scan), std::invalid_argument);

  // Order independence: the same shards handed over in reverse still merge.
  std::vector<ShardResult> reversed = {good[1], good[0]};
  const ShardedCertificate merged = merge_shard_results(reversed);
  EXPECT_EQ(merged.agents_scanned, g.num_vertices());

  // stop_on_violation waives per-shard completeness, but a clean verdict
  // still requires every agent scanned: a partial, witness-free shard set
  // must not certify an equilibrium.
  std::vector<ShardResult> partial_clean = good;
  for (ShardResult& r : partial_clean) {
    r.stop_on_violation = true;
    r.best.reset();
  }
  partial_clean[0].scanned -= 1;
  EXPECT_THROW((void)merge_shard_results(partial_clean), std::invalid_argument);
}

TEST(CertifyAgentRange, FullRangeEqualsEngineCertify) {
  Xoshiro256ss rng(0x511C);
  const Graph g = random_connected_gnm(24, 50, rng);
  for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
    const bool deletions = model == UsageCost::Max;
    const SwapEngine engine(g);
    const EquilibriumCertificate want = engine.certify(model, deletions);
    AgentRange range;
    range.hi = g.num_vertices();
    const ShardResult r = certify_agent_range(engine, range, model, deletions);
    EXPECT_EQ(r.moves, want.moves_checked);
    EXPECT_EQ(r.best.has_value(), want.witness.has_value());
    if (want.witness) {
      EXPECT_EQ(r.best->swap.v, want.witness->swap.v);
      EXPECT_EQ(r.best->swap.remove_w, want.witness->swap.remove_w);
      EXPECT_EQ(r.best->swap.add_w, want.witness->swap.add_w);
      EXPECT_EQ(r.best->cost_before, want.witness->cost_before);
      EXPECT_EQ(r.best->cost_after, want.witness->cost_after);
    }
    EXPECT_EQ(r.fingerprint, graph_fingerprint(g));
    EXPECT_EQ(r.scanned, g.num_vertices());
  }
}

}  // namespace
}  // namespace bncg

// Unit tests for graph metrics: diameter, radius, girth, Wiener index.
#include "graph/metrics.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(Metrics, PathDiameterAndRadius) {
  const DistanceStats s = distance_stats(path(7));
  EXPECT_TRUE(s.connected);
  EXPECT_EQ(s.diameter, 6u);
  EXPECT_EQ(s.radius, 3u);
}

TEST(Metrics, CycleDiameter) {
  EXPECT_EQ(diameter(cycle(8)), 4u);
  EXPECT_EQ(diameter(cycle(9)), 4u);
}

TEST(Metrics, StarStats) {
  const DistanceStats s = distance_stats(star(10));
  EXPECT_EQ(s.diameter, 2u);
  EXPECT_EQ(s.radius, 1u);
  // Wiener: 9 center-leaf pairs at 1, C(9,2)=36 leaf pairs at 2.
  EXPECT_EQ(s.wiener, 9u + 72u);
}

TEST(Metrics, CompleteGraphDiameterOne) {
  const DistanceStats s = distance_stats(complete(6));
  EXPECT_EQ(s.diameter, 1u);
  EXPECT_EQ(s.radius, 1u);
  EXPECT_DOUBLE_EQ(s.avg_distance, 1.0);
}

TEST(Metrics, DisconnectedDiameterIsInf) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_EQ(diameter(g), kInfDist);
  const DistanceStats s = distance_stats(g);
  EXPECT_FALSE(s.connected);
  EXPECT_EQ(s.diameter, kInfDist);
}

TEST(Metrics, GirthOfCycleIsItsLength) {
  EXPECT_EQ(girth(cycle(5)), 5u);
  EXPECT_EQ(girth(cycle(12)), 12u);
}

TEST(Metrics, GirthOfTreeIsInf) {
  EXPECT_EQ(girth(path(10)), kInfDist);
  EXPECT_EQ(girth(star(6)), kInfDist);
}

TEST(Metrics, GirthOfCompleteGraphIsThree) { EXPECT_EQ(girth(complete(5)), 3u); }

TEST(Metrics, GirthOfCompleteBipartiteIsFour) {
  EXPECT_EQ(girth(complete_bipartite(3, 3)), 4u);
}

TEST(Metrics, GirthOfPetersenIsFive) { EXPECT_EQ(girth(petersen()), 5u); }

TEST(Metrics, PetersenDiameterTwo) { EXPECT_EQ(diameter(petersen()), 2u); }

TEST(Metrics, HypercubeDiameterEqualsDimension) {
  for (Vertex d = 1; d <= 6; ++d) {
    EXPECT_EQ(diameter(hypercube(d)), d) << "dimension " << d;
  }
}

TEST(Metrics, EccentricitiesOfDoubleStar) {
  const Graph g = double_star(2, 2);  // centers 0,1; leaves 2,3 on 0; 4,5 on 1
  const auto ecc = eccentricities(g);
  EXPECT_EQ(ecc[0], 2u);
  EXPECT_EQ(ecc[1], 2u);
  EXPECT_EQ(ecc[2], 3u);
  EXPECT_EQ(ecc[4], 3u);
}

TEST(Metrics, TotalDistanceSumIsTwiceWiener) {
  Xoshiro256ss rng(9);
  const Graph g = random_connected_gnm(24, 40, rng);
  const DistanceStats s = distance_stats(g);
  EXPECT_EQ(total_distance_sum(g), 2 * s.wiener);
}

TEST(Metrics, DistanceHistogramSumsToOrderedPairs) {
  Xoshiro256ss rng(10);
  const Graph g = random_connected_gnm(20, 35, rng);
  const DistanceMatrix dm(g);
  const auto hist = distance_histogram(dm);
  std::uint64_t total = 0;
  for (const auto count : hist) total += count;
  EXPECT_EQ(total, 20ull * 20ull);  // includes n diagonal zeros
  EXPECT_EQ(hist[0], 20u);
  EXPECT_EQ(hist[1], 2 * g.num_edges());
}

TEST(Metrics, DegreeStats) {
  const DegreeStats s = degree_stats(star(5));
  EXPECT_EQ(s.min_degree, 1u);
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 8.0 / 5.0);
}

TEST(Metrics, IsTreeDetectsTreesAndNonTrees) {
  EXPECT_TRUE(is_tree(path(5)));
  EXPECT_TRUE(is_tree(star(7)));
  EXPECT_FALSE(is_tree(cycle(5)));
  Graph forest(4);
  forest.add_edge(0, 1);
  forest.add_edge(2, 3);
  EXPECT_FALSE(is_tree(forest));  // right edge count minus one, disconnected
  Graph g(1);
  EXPECT_TRUE(is_tree(g));
}

TEST(Metrics, UniformDistanceProfileOnVertexTransitiveGraphs) {
  EXPECT_TRUE(has_uniform_distance_profile(DistanceMatrix(cycle(9))));
  EXPECT_TRUE(has_uniform_distance_profile(DistanceMatrix(complete(5))));
  EXPECT_TRUE(has_uniform_distance_profile(DistanceMatrix(hypercube(4))));
  EXPECT_FALSE(has_uniform_distance_profile(DistanceMatrix(path(4))));
  EXPECT_FALSE(has_uniform_distance_profile(DistanceMatrix(star(5))));
}

TEST(Metrics, RadiusLeDiameterLeTwiceRadius) {
  Xoshiro256ss rng(14);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_gnm(30, 45 + trial, rng);
    const DistanceStats s = distance_stats(g);
    EXPECT_LE(s.radius, s.diameter);
    EXPECT_LE(s.diameter, 2 * s.radius);
  }
}

}  // namespace
}  // namespace bncg

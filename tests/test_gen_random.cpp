// Unit tests for random graph generators: shape invariants and determinism.
#include "gen/random.hpp"

#include <gtest/gtest.h>

#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"

namespace bncg {
namespace {

TEST(GenRandom, RandomTreeIsATree) {
  Xoshiro256ss rng(1);
  for (Vertex n : {1u, 2u, 3u, 10u, 50u, 200u}) {
    const Graph g = random_tree(n, rng);
    EXPECT_EQ(g.num_vertices(), n);
    EXPECT_TRUE(is_tree(g)) << "n=" << n;
  }
}

TEST(GenRandom, RandomTreeIsDeterministicGivenSeed) {
  Xoshiro256ss rng1(99), rng2(99);
  EXPECT_EQ(random_tree(30, rng1), random_tree(30, rng2));
}

TEST(GenRandom, RandomTreesVaryAcrossSeeds) {
  Xoshiro256ss rng1(1), rng2(2);
  EXPECT_NE(random_tree(30, rng1), random_tree(30, rng2));
}

TEST(GenRandom, GnmHasExactEdgeCount) {
  Xoshiro256ss rng(5);
  for (const std::size_t m : {0ull, 10ull, 50ull, 100ull}) {
    const Graph g = random_gnm(20, m, rng);
    EXPECT_EQ(g.num_edges(), m);
    EXPECT_NO_THROW(g.check_invariants());
  }
}

TEST(GenRandom, GnmDenseCaseViaComplement) {
  Xoshiro256ss rng(6);
  const std::size_t max_edges = 20ull * 19 / 2;
  const Graph g = random_gnm(20, max_edges - 3, rng);
  EXPECT_EQ(g.num_edges(), max_edges - 3);
  const Graph full = random_gnm(10, 45, rng);
  EXPECT_EQ(full.num_edges(), 45u);
}

TEST(GenRandom, GnmRejectsOverfullRequest) {
  Xoshiro256ss rng(7);
  EXPECT_THROW((void)random_gnm(5, 11, rng), std::invalid_argument);
}

TEST(GenRandom, GnpExtremes) {
  Xoshiro256ss rng(8);
  EXPECT_EQ(random_gnp(12, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(random_gnp(12, 1.0, rng).num_edges(), 66u);
}

TEST(GenRandom, GnpDensityRoughlyMatchesP) {
  Xoshiro256ss rng(9);
  const Graph g = random_gnp(100, 0.3, rng);
  const double density = static_cast<double>(g.num_edges()) / (100.0 * 99 / 2);
  EXPECT_NEAR(density, 0.3, 0.05);
}

TEST(GenRandom, ConnectedGnmIsConnectedWithExactBudget) {
  Xoshiro256ss rng(10);
  for (const std::size_t m : {19ull, 25ull, 60ull}) {
    const Graph g = random_connected_gnm(20, m, rng);
    EXPECT_EQ(g.num_edges(), m);
    EXPECT_TRUE(is_connected(g));
  }
  EXPECT_THROW((void)random_connected_gnm(20, 10, rng), std::invalid_argument);
}

TEST(GenRandom, WattsStrogatzZeroBetaIsRingLattice) {
  Xoshiro256ss rng(11);
  const Graph g = watts_strogatz(20, 2, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 40u);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(GenRandom, WattsStrogatzPreservesEdgeCount) {
  Xoshiro256ss rng(12);
  const Graph g = watts_strogatz(40, 3, 0.5, rng);
  EXPECT_EQ(g.num_edges(), 120u);
  EXPECT_NO_THROW(g.check_invariants());
}

TEST(GenRandom, WattsStrogatzRewiringShrinksDiameter) {
  Xoshiro256ss rng(13);
  const Graph lattice = watts_strogatz(100, 2, 0.0, rng);
  const Graph small_world = watts_strogatz(100, 2, 0.3, rng);
  EXPECT_LT(diameter(small_world), diameter(lattice));
}

TEST(GenRandom, BarabasiAlbertShape) {
  Xoshiro256ss rng(14);
  const Vertex n = 60;
  const Vertex m = 3;
  const Graph g = barabasi_albert(n, m, rng);
  EXPECT_EQ(g.num_vertices(), n);
  // Seed clique C(m+1, 2) plus m per additional vertex.
  EXPECT_EQ(g.num_edges(), 6u + static_cast<std::size_t>(n - m - 1) * m);
  EXPECT_TRUE(is_connected(g));
}

TEST(GenRandom, BarabasiAlbertHasSkewedDegrees) {
  Xoshiro256ss rng(15);
  const Graph g = barabasi_albert(200, 2, rng);
  const DegreeStats s = degree_stats(g);
  EXPECT_GE(s.max_degree, 4 * s.min_degree);  // hubs emerge
}

TEST(GenRandom, RandomRegularIsRegularAndSimple) {
  Xoshiro256ss rng(16);
  for (const auto& [n, d] : {std::pair<Vertex, Vertex>{10, 3},
                            std::pair<Vertex, Vertex>{20, 4},
                            std::pair<Vertex, Vertex>{15, 4}}) {
    const Graph g = random_regular(n, d, rng);
    for (Vertex v = 0; v < n; ++v) EXPECT_EQ(g.degree(v), d);
    EXPECT_NO_THROW(g.check_invariants());
  }
}

TEST(GenRandom, RandomRegularRejectsOddProduct) {
  Xoshiro256ss rng(17);
  EXPECT_THROW((void)random_regular(5, 3, rng), std::invalid_argument);
}

}  // namespace
}  // namespace bncg

// Unit tests for induced subgraphs, vertex deletion, and the Lemma 3
// cut-vertex decomposition.
#include "graph/subgraph.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(Subgraph, InducedSubgraphKeepsInternalEdges) {
  const Graph g = cycle(6);
  const Graph sub = induced_subgraph(g, {0, 1, 2});
  EXPECT_EQ(sub.num_vertices(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 0-1, 1-2; the 2..0 arc is outside
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_TRUE(sub.has_edge(1, 2));
  EXPECT_FALSE(sub.has_edge(0, 2));
}

TEST(Subgraph, InducedSubgraphRemapsInGivenOrder) {
  const Graph g = path(5);  // 0-1-2-3-4
  const Graph sub = induced_subgraph(g, {4, 3, 0});
  // Local ids: 4→0, 3→1, 0→2. Only edge 3-4 survives → local 0-1.
  EXPECT_EQ(sub.num_edges(), 1u);
  EXPECT_TRUE(sub.has_edge(0, 1));
}

TEST(Subgraph, InducedSubgraphRejectsDuplicates) {
  EXPECT_THROW((void)induced_subgraph(path(4), {0, 0}), std::invalid_argument);
  EXPECT_THROW((void)induced_subgraph(path(4), {9}), std::invalid_argument);
}

TEST(Subgraph, RemoveVertexShiftsIds) {
  const Graph g = path(5);
  const Graph h = remove_vertex(g, 2);
  EXPECT_EQ(h.num_vertices(), 4u);
  EXPECT_EQ(h.num_edges(), 2u);  // 0-1 and (3-4 → local 2-3)
  EXPECT_TRUE(h.has_edge(0, 1));
  EXPECT_TRUE(h.has_edge(2, 3));
  EXPECT_FALSE(is_connected(h));
}

TEST(Subgraph, ComponentsWithoutCutVertex) {
  const Graph g = double_star(2, 2);  // centers 0, 1
  const auto comps = components_without(g, 0);
  // Removing center 0: components {2}, {3}, {1, 4, 5}.
  EXPECT_EQ(comps.size(), 3u);
  const auto comps1 = components_without(g, 1);
  EXPECT_EQ(comps1.size(), 3u);
  const auto comps_leaf = components_without(g, 2);
  EXPECT_EQ(comps_leaf.size(), 1u);
}

TEST(Subgraph, ComponentsPreserveOriginalIds) {
  const Graph g = star(5);
  const auto comps = components_without(g, 0);
  EXPECT_EQ(comps.size(), 4u);
  for (const auto& comp : comps) {
    ASSERT_EQ(comp.size(), 1u);
    EXPECT_GE(comp[0], 1u);
  }
}

TEST(Subgraph, Lemma3PropertyOnDoubleStars) {
  // Every certified max-equilibrium tree must satisfy Lemma 3 at each
  // center: only the other-center side is deep.
  const Graph g = double_star(3, 3);
  EXPECT_TRUE(lemma3_cut_vertex_property(g, 0));
  EXPECT_TRUE(lemma3_cut_vertex_property(g, 1));
}

TEST(Subgraph, Lemma3PropertyFailsOnPathCenter) {
  // P_5's center has two deep components — consistent with P_5 not being a
  // max equilibrium.
  EXPECT_FALSE(lemma3_cut_vertex_property(path(5), 2));
}

TEST(Subgraph, Lemma3PropertyOnNonCutVertexIsTrivial) {
  EXPECT_TRUE(lemma3_cut_vertex_property(cycle(8), 3));
}

TEST(Subgraph, RandomConsistencyWithConnectivityModule) {
  Xoshiro256ss rng(71);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_connected_gnm(18, 22, rng);
    for (const Vertex v : articulation_points(g)) {
      EXPECT_GE(components_without(g, v).size(), 2u) << "cut vertex " << v;
    }
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const auto cuts = articulation_points(g);
      const bool is_cut = std::find(cuts.begin(), cuts.end(), v) != cuts.end();
      EXPECT_EQ(components_without(g, v).size() > 1, is_cut) << v;
    }
  }
}

}  // namespace
}  // namespace bncg

// Unit tests for the isomorphism module.
#include "graph/isomorphism.hpp"

#include <gtest/gtest.h>

#include "gen/cayley.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

/// Relabels g by the permutation p (p[old] = new).
Graph relabel(const Graph& g, const std::vector<Vertex>& p) {
  Graph h(g.num_vertices());
  for (const auto& [u, v] : g.edges()) h.add_edge(p[u], p[v]);
  return h;
}

TEST(Isomorphism, IdenticalGraphsAreIsomorphic) {
  EXPECT_TRUE(are_isomorphic(petersen(), petersen()));
  EXPECT_TRUE(are_isomorphic(Graph(0), Graph(0)));
  EXPECT_TRUE(are_isomorphic(Graph(3), Graph(3)));
}

TEST(Isomorphism, RandomRelabelingsAreDetected) {
  Xoshiro256ss rng(91);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_gnm(12, 20, rng);
    std::vector<Vertex> perm(12);
    for (Vertex v = 0; v < 12; ++v) perm[v] = v;
    rng.shuffle(perm);
    const Graph h = relabel(g, perm);
    EXPECT_TRUE(are_isomorphic(g, h));
    const auto mapping = find_isomorphism(g, h);
    ASSERT_TRUE(mapping.has_value());
    // Verify the returned mapping is a genuine isomorphism.
    for (const auto& [u, v] : g.edges()) {
      EXPECT_TRUE(h.has_edge((*mapping)[u], (*mapping)[v]));
    }
  }
}

TEST(Isomorphism, DifferentSizesRejectImmediately) {
  EXPECT_FALSE(are_isomorphic(path(4), path(5)));
  EXPECT_FALSE(are_isomorphic(cycle(6), path(6)));  // different m
}

TEST(Isomorphism, SameDegreeSequenceDifferentStructure) {
  // C6 vs two triangles: both 2-regular on 6 vertices.
  Graph two_triangles =
      graph_from_edges(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_FALSE(are_isomorphic(cycle(6), two_triangles));
}

TEST(Isomorphism, StarVersusDoubleStar) {
  EXPECT_FALSE(are_isomorphic(star(6), double_star(2, 2)));
}

TEST(Isomorphism, HypercubeConstructionsAreIsomorphic) {
  for (Vertex d = 2; d <= 4; ++d) {
    EXPECT_TRUE(are_isomorphic(hypercube(d), hypercube_cayley(d))) << d;
  }
}

TEST(Isomorphism, InvariantsAgreeOnIsomorphs) {
  Xoshiro256ss rng(92);
  const Graph g = random_gnm(14, 25, rng);
  std::vector<Vertex> perm(14);
  for (Vertex v = 0; v < 14; ++v) perm[v] = v;
  rng.shuffle(perm);
  EXPECT_EQ(graph_invariants(g), graph_invariants(relabel(g, perm)));
}

TEST(Isomorphism, InvariantsSeparateNonIsomorphs) {
  EXPECT_NE(graph_invariants(path(5)), graph_invariants(star(5)));
}

TEST(Isomorphism, WitnessGraphIsNotLiteralFig3Subgraph) {
  // Sanity: the 8-vertex Theorem 5 witness is its own graph, unrelated to
  // any relabeling of classic families of the same size/edges.
  const Graph w = diameter3_sum_equilibrium_n8();
  EXPECT_FALSE(are_isomorphic(w, cycle(8)));
  EXPECT_FALSE(are_isomorphic(w, double_star(3, 3)));
}

TEST(Isomorphism, VertexTransitiveFamiliesMatchThemselvesUnderRotation) {
  const Graph g = cycle(9);
  std::vector<Vertex> rotation(9);
  for (Vertex v = 0; v < 9; ++v) rotation[v] = (v + 4) % 9;
  EXPECT_TRUE(are_isomorphic(g, relabel(g, rotation)));
}

}  // namespace
}  // namespace bncg

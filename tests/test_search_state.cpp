// Differential tests for the incremental-unrest SearchState
// (core/search_state.hpp): every incremental quantity — proposal shapes,
// unrest values, per-agent deviations, applied-move trajectories — is pinned
// to full recomputation through the bncg::naive oracles after every accepted
// AND rejected proposal, across 250+ random instances in both usage-cost
// models, with the parallel evaluation pass both on and off.
#include "core/search_state.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "core/equilibrium.hpp"
#include "core/search.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

/// Reference unrest straight from the naive BFS-per-candidate oracles:
/// Σ_a max(1, gain of the best deviation), deletions counted in the max
/// model when asked. Deliberately shares no code with SearchState.
std::uint64_t naive_unrest(const Graph& g, UsageCost model, bool include_deletions) {
  BfsWorkspace ws;
  std::uint64_t total = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::optional<Deviation> dev =
        model == UsageCost::Sum ? naive::best_sum_deviation(g, v, ws)
                                : naive::best_max_deviation(g, v, ws, include_deletions);
    if (!dev) continue;
    const std::uint64_t gain =
        dev->cost_before > dev->cost_after ? dev->cost_before - dev->cost_after : 0;
    total += std::max<std::uint64_t>(1, gain);
  }
  return total;
}

void expect_same_deviation(const std::optional<Deviation>& got,
                           const std::optional<Deviation>& want, const std::string& context) {
  ASSERT_EQ(got.has_value(), want.has_value()) << context;
  if (!got) return;
  EXPECT_EQ(got->swap.v, want->swap.v) << context;
  EXPECT_EQ(got->swap.remove_w, want->swap.remove_w) << context;
  EXPECT_EQ(got->swap.add_w, want->swap.add_w) << context;
  EXPECT_EQ(got->cost_before, want->cost_before) << context;
  EXPECT_EQ(got->cost_after, want->cost_after) << context;
  EXPECT_EQ(got->kind, want->kind) << context;
}

Graph random_instance(int trial, Xoshiro256ss& rng) {
  const Vertex n = 6 + static_cast<Vertex>(rng.below(13));  // 6..18
  switch (trial % 4) {
    case 0:
      return random_connected_gnm(n, n + n / 2, rng);
    case 1:
      return random_connected_gnm(n, 2 * static_cast<std::size_t>(n), rng);
    case 2:
      return random_tree(n, rng);
    default:
      return random_connected_gnm(n, n - 1 + rng.below(n), rng);
  }
}

/// Core differential loop: random toggles, every proposal's shape and unrest
/// compared against full recomputation on a mirror graph, random commits,
/// post-commit state compared again.
void run_unrest_differential(UsageCost model, bool parallel, int instances,
                             std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  const bool include_deletions = model == UsageCost::Max;
  for (int trial = 0; trial < instances; ++trial) {
    Graph mirror = random_instance(trial, rng);
    const Vertex n = mirror.num_vertices();
    SearchState state(mirror, model, include_deletions, parallel);
    ASSERT_EQ(state.unrest(), naive_unrest(mirror, model, include_deletions))
        << "initial unrest, trial " << trial;

    for (int step = 0; step < 25; ++step) {
      const Vertex u = static_cast<Vertex>(rng.below(n));
      const Vertex v = static_cast<Vertex>(rng.below(n));
      if (u == v) continue;
      const ToggleShape shape = state.propose_toggle(u, v);

      Graph toggled = mirror;
      if (toggled.has_edge(u, v)) {
        toggled.remove_edge(u, v);
      } else {
        toggled.add_edge(u, v);
      }
      ASSERT_EQ(shape.connected, is_connected(toggled))
          << "trial " << trial << " step " << step;
      ASSERT_EQ(shape.diameter, diameter(toggled)) << "trial " << trial << " step " << step;

      ASSERT_EQ(state.proposal_unrest(), naive_unrest(toggled, model, include_deletions))
          << "proposal unrest, trial " << trial << " step " << step << " toggle {" << u << ","
          << v << "}";

      if (rng.bernoulli(0.5)) {
        state.commit();
        mirror = std::move(toggled);
        ASSERT_EQ(state.graph(), mirror) << "trial " << trial << " step " << step;
        ASSERT_EQ(state.unrest(), naive_unrest(mirror, model, include_deletions))
            << "post-commit unrest, trial " << trial << " step " << step;
      }
    }
  }
}

TEST(SearchStateDifferential, SumUnrestMatchesNaiveOnEveryProposalSerial) {
  run_unrest_differential(UsageCost::Sum, /*parallel=*/false, 35, 0xA001);
}

TEST(SearchStateDifferential, SumUnrestMatchesNaiveOnEveryProposalParallel) {
  run_unrest_differential(UsageCost::Sum, /*parallel=*/true, 35, 0xA002);
}

TEST(SearchStateDifferential, MaxUnrestMatchesNaiveOnEveryProposalSerial) {
  run_unrest_differential(UsageCost::Max, /*parallel=*/false, 35, 0xA003);
}

TEST(SearchStateDifferential, MaxUnrestMatchesNaiveOnEveryProposalParallel) {
  run_unrest_differential(UsageCost::Max, /*parallel=*/true, 35, 0xA004);
}

TEST(SearchStateDifferential, DeviationsMatchNaiveWitnessForWitness) {
  Xoshiro256ss rng(0xB005);
  BfsWorkspace ws;
  for (int trial = 0; trial < 60; ++trial) {
    const Graph g = random_instance(trial, rng);
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      SearchState state(g, model, /*include_deletions=*/true);
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        const std::string ctx = "trial " + std::to_string(trial) + " agent " +
                                std::to_string(v) +
                                (model == UsageCost::Sum ? " sum" : " max");
        if (model == UsageCost::Sum) {
          expect_same_deviation(state.best_deviation(v), naive::best_sum_deviation(g, v, ws),
                                ctx + " best");
          expect_same_deviation(state.first_deviation(v), naive::first_sum_deviation(g, v, ws),
                                ctx + " first");
        } else {
          expect_same_deviation(state.best_deviation(v), naive::best_max_deviation(g, v, ws),
                                ctx + " best");
          expect_same_deviation(state.best_deviation(v, /*include_deletions=*/true),
                                naive::best_max_deviation(g, v, ws, true), ctx + " best+del");
          expect_same_deviation(state.first_deviation(v, /*include_deletions=*/true),
                                naive::first_max_deviation(g, v, ws, true), ctx + " first+del");
        }
      }
    }
  }
}

TEST(SearchStateDifferential, AppliedMoveTrajectoriesMatchNaiveDynamics) {
  // Round-robin first-improvement dynamics driven twice: once through
  // SearchState::apply_swap (journal catch-up, lazy matrices), once through
  // the naive oracle on a mirror graph. Every move must be identical.
  Xoshiro256ss rng(0xC006);
  BfsWorkspace ws;
  for (int trial = 0; trial < 25; ++trial) {
    Graph mirror = random_instance(trial, rng);
    const UsageCost model = trial % 2 == 0 ? UsageCost::Sum : UsageCost::Max;
    const bool deletions = model == UsageCost::Max;
    SearchState state(mirror, model, deletions);
    int moves = 0;
    bool progress = true;
    while (progress && moves < 60) {
      progress = false;
      for (Vertex v = 0; v < mirror.num_vertices() && moves < 60; ++v) {
        const auto naive_dev = model == UsageCost::Sum
                                   ? naive::first_sum_deviation(mirror, v, ws)
                                   : naive::first_max_deviation(mirror, v, ws, deletions);
        const auto state_dev = state.first_deviation(v, deletions);
        expect_same_deviation(state_dev, naive_dev,
                              "trial " + std::to_string(trial) + " move " +
                                  std::to_string(moves) + " agent " + std::to_string(v));
        if (!naive_dev) continue;
        if (naive_dev->kind == Deviation::Kind::NonCriticalDelete) {
          mirror.remove_edge(naive_dev->swap.v, naive_dev->swap.remove_w);
          state.apply_deletion(naive_dev->swap.v, naive_dev->swap.remove_w);
        } else {
          apply_swap(mirror, naive_dev->swap);
          state.apply_swap(naive_dev->swap);
        }
        ASSERT_EQ(state.graph(), mirror);
        ++moves;
        progress = true;
      }
    }
    // Converged (or budget): certification verdicts must agree too.
    const bool naive_certified = model == UsageCost::Sum
                                     ? naive::certify_sum_equilibrium(mirror).is_equilibrium
                                     : naive::certify_max_equilibrium(mirror).is_equilibrium;
    EXPECT_EQ(state.certify_current(), naive_certified) << "trial " << trial;
  }
}

TEST(SearchStateDifferential, LazyAgentsCatchUpAcrossLongJournals) {
  // Apply more toggles than the replay window while querying only one agent,
  // forcing both the formula-replay and the full-rebuild catch-up paths.
  Xoshiro256ss rng(0xD007);
  for (int trial = 0; trial < 12; ++trial) {
    Graph mirror = random_connected_gnm(12, 22, rng);
    SearchState state(mirror, UsageCost::Sum);
    BfsWorkspace ws;
    // Seed the lazy matrices for agent 0 only.
    expect_same_deviation(state.best_deviation(0), naive::best_sum_deviation(mirror, 0, ws),
                          "pre-toggle");
    int applied = 0;
    int guard = 0;
    while (applied < 8 && guard++ < 200) {
      const Vertex u = static_cast<Vertex>(rng.below(12));
      const Vertex v = static_cast<Vertex>(rng.below(12));
      if (u == v) continue;
      Graph toggled = mirror;
      const bool removing = toggled.has_edge(u, v);
      if (removing) {
        toggled.remove_edge(u, v);
        if (!is_connected(toggled)) continue;  // keep the walk connected
        state.apply_deletion(u, v);
      } else {
        toggled.add_edge(u, v);
        state.apply_toggle(u, v);
      }
      mirror = std::move(toggled);
      ++applied;
    }
    for (Vertex v = 0; v < 12; ++v) {
      expect_same_deviation(state.best_deviation(v), naive::best_sum_deviation(mirror, v, ws),
                            "trial " + std::to_string(trial) + " agent " + std::to_string(v));
    }
  }
}

TEST(SearchStateDifferential, AnnealTrajectoriesIdenticalAcrossEvaluationModes) {
  // The tentpole guarantee behind AnnealConfig::evaluation: incremental and
  // full-recompute proposal evaluation produce the same trajectory — same
  // counters, same outcome — for identical configs, in both models.
  Xoshiro256ss rng(0xE008);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph start = random_connected_gnm(10, 18, rng);
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      AnnealConfig config;
      config.cost = model;
      config.steps = 400;
      config.seed = 0x5EED00 + trial;
      config.target_diameter = diameter(start);
      AnnealStats incremental_stats;
      AnnealStats full_stats;
      config.evaluation = UnrestEval::Incremental;
      const auto incremental = anneal_equilibrium(start, config, &incremental_stats);
      config.evaluation = UnrestEval::FullRecompute;
      const auto full = anneal_equilibrium(start, config, &full_stats);
      ASSERT_EQ(incremental.has_value(), full.has_value()) << "trial " << trial;
      if (incremental) EXPECT_EQ(*incremental, *full) << "trial " << trial;
      EXPECT_EQ(incremental_stats.proposals, full_stats.proposals);
      EXPECT_EQ(incremental_stats.filtered, full_stats.filtered);
      EXPECT_EQ(incremental_stats.evaluated, full_stats.evaluated);
      EXPECT_EQ(incremental_stats.accepted, full_stats.accepted);
      EXPECT_EQ(incremental_stats.final_unrest, full_stats.final_unrest);
    }
  }
}

TEST(SearchState, KnownEquilibriaHaveZeroUnrest) {
  EXPECT_EQ(SearchState(star(9), UsageCost::Sum).unrest(), 0u);
  EXPECT_EQ(SearchState(complete(6), UsageCost::Sum).unrest(), 0u);
  EXPECT_EQ(SearchState(star(9), UsageCost::Max, true).unrest(), 0u);
  EXPECT_GT(SearchState(path(8), UsageCost::Sum).unrest(), 0u);
  EXPECT_GT(SearchState(cycle(9), UsageCost::Max, true).unrest(), 0u);
}

TEST(SearchState, RejectsInvalidToggles) {
  SearchState state(cycle(5), UsageCost::Sum);
  EXPECT_THROW((void)state.propose_toggle(2, 2), std::invalid_argument);
  EXPECT_THROW((void)state.propose_toggle(0, 7), std::invalid_argument);
  EXPECT_THROW((void)state.commit(), std::invalid_argument);  // nothing staged
  (void)state.propose_toggle(0, 2);
  EXPECT_THROW((void)state.commit(), std::invalid_argument);  // not evaluated
}

TEST(SearchState, StatsCountProposalLifecycle) {
  SearchState state(cycle(6), UsageCost::Sum);
  (void)state.unrest();
  (void)state.propose_toggle(0, 2);
  (void)state.proposal_unrest();
  state.commit();
  const SearchStats& st = state.stats();
  EXPECT_EQ(st.proposals, 1u);
  EXPECT_EQ(st.evaluations, 1u);
  EXPECT_EQ(st.commits, 1u);
  EXPECT_GT(st.agents_scanned, 0u);
}

}  // namespace
}  // namespace bncg

// Unit tests for price-of-anarchy observables.
#include "core/poa.hpp"

#include <gtest/gtest.h>

#include "core/dynamics.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(Poa, SumLowerBoundFormula) {
  // 2n(n−1) − 2m.
  EXPECT_EQ(sum_social_cost_lower_bound(5, 4), 2u * 20 - 8);
  EXPECT_EQ(sum_social_cost_lower_bound(1, 0), 0u);
}

TEST(Poa, SumLowerBoundTightForDiameterTwoGraphs) {
  for (const Graph& g : {star(9), complete(6), cycle(5)}) {
    EXPECT_EQ(social_cost(g, UsageCost::Sum),
              sum_social_cost_lower_bound(g.num_vertices(), g.num_edges()))
        << to_string(g);
  }
}

TEST(Poa, SumLowerBoundIsALowerBound) {
  Xoshiro256ss rng(51);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_gnm(20, 25 + trial, rng);
    EXPECT_GE(social_cost(g, UsageCost::Sum),
              sum_social_cost_lower_bound(20, g.num_edges()));
  }
}

TEST(Poa, MaxLowerBoundBasics) {
  // Star at m = n−1: the degree-capacity bound allows ⌊2m/(n−1)⌋ = 2
  // full-degree vertices → bound 2·1 + 7·2 = 16; actual star cost is 17
  // (only one center exists), so the bound is valid but not tight here.
  EXPECT_EQ(max_social_cost_lower_bound(9, 8), 2u + 7 * 2);
  EXPECT_EQ(social_cost(star(9), UsageCost::Max), 1u + 8 * 2);
  EXPECT_GE(social_cost(star(9), UsageCost::Max), max_social_cost_lower_bound(9, 8));
  // Clique: everyone at ecc 1 — tight.
  EXPECT_EQ(max_social_cost_lower_bound(6, 15), 6u);
  EXPECT_EQ(social_cost(complete(6), UsageCost::Max), 6u);
}

TEST(Poa, RatioIsAtLeastOne) {
  Xoshiro256ss rng(52);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_connected_gnm(16, 20 + trial, rng);
    EXPECT_GE(social_cost_ratio(g, UsageCost::Sum), 1.0 - 1e-12);
    EXPECT_GE(social_cost_ratio(g, UsageCost::Max), 1.0 - 1e-12);
  }
}

TEST(Poa, RatioOneForStars) {
  EXPECT_DOUBLE_EQ(social_cost_ratio(star(12), UsageCost::Sum), 1.0);
}

TEST(Poa, RatioGrowsWithPathLength) {
  EXPECT_LT(social_cost_ratio(path(5), UsageCost::Sum),
            social_cost_ratio(path(50), UsageCost::Sum));
}

TEST(Poa, DisconnectedGraphGetsHugeRatio) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_GT(social_cost_ratio(g, UsageCost::Sum), 1e12);
  EXPECT_GT(diameter_poa_proxy(g), 1e12);
}

TEST(Poa, DiameterProxyMatchesDiameter) {
  EXPECT_DOUBLE_EQ(diameter_poa_proxy(path(8)), 7.0);
  EXPECT_DOUBLE_EQ(diameter_poa_proxy(complete(5)), 1.0);
}

TEST(Poa, EquilibriaReachedByDynamicsHaveSmallRatio) {
  // The paper's message: sum dynamics land on low-diameter equilibria, so
  // the cost ratio stays near 1 (far below the path's ratio).
  Xoshiro256ss rng(53);
  DynamicsConfig config;
  config.max_moves = 50'000;
  const Graph start = random_connected_gnm(20, 24, rng);
  const DynamicsResult r = run_dynamics(start, config);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(social_cost_ratio(r.graph, UsageCost::Sum), 1.5);
}

TEST(Poa, BadEdgeBudgetRejected) {
  EXPECT_THROW((void)sum_social_cost_lower_bound(3, 10), std::invalid_argument);
}

}  // namespace
}  // namespace bncg

// Unit tests for the Graph substrate: construction, mutation, invariants.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(Graph, EmptyGraphHasNoVerticesOrEdges) {
  const Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_NO_THROW(g.check_invariants());
}

TEST(Graph, EdgelessGraphHasIsolatedVertices) {
  const Graph g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (Vertex v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(Graph, AddEdgeIsSymmetric) {
  Graph g(3);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RemoveEdgeRestoresState) {
  Graph g(4);
  g.add_edge(1, 3);
  g.add_edge(1, 2);
  g.remove_edge(1, 3);
  EXPECT_FALSE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 1u);
  g.check_invariants();
}

TEST(Graph, NeighborsAreSorted) {
  Graph g(6);
  g.add_edge(3, 5);
  g.add_edge(3, 0);
  g.add_edge(3, 4);
  g.add_edge(3, 1);
  const auto nbrs = g.neighbors(3);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 4u);
  EXPECT_EQ(nbrs[3], 5u);
}

TEST(Graph, SelfLoopRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(Graph, DuplicateEdgeRejected) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(Graph, AddEdgeIfAbsentReportsInsertion) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge_if_absent(0, 1));
  EXPECT_FALSE(g.add_edge_if_absent(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RemoveMissingEdgeRejected) {
  Graph g(3);
  EXPECT_THROW(g.remove_edge(0, 1), std::invalid_argument);
}

TEST(Graph, OutOfRangeVertexRejected) {
  Graph g(3);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW((void)g.degree(7), std::invalid_argument);
  EXPECT_THROW((void)g.has_edge(3, 0), std::invalid_argument);
}

TEST(Graph, AddVertexExtendsRange) {
  Graph g(2);
  const Vertex v = g.add_vertex();
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(g.num_vertices(), 3u);
  g.add_edge(v, 0);
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, EdgesAreLexicographicallySortedPairs) {
  Graph g(4);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  g.add_edge(0, 1);
  const auto edge_list = g.edges();
  ASSERT_EQ(edge_list.size(), 3u);
  EXPECT_EQ(edge_list[0], (Edge{0, 1}));
  EXPECT_EQ(edge_list[1], (Edge{0, 3}));
  EXPECT_EQ(edge_list[2], (Edge{2, 3}));
}

TEST(Graph, GraphFromEdgesRoundTrips) {
  const Graph g = graph_from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Graph, EqualityComparesEdgeSets) {
  Graph a(3), b(3);
  a.add_edge(0, 1);
  b.add_edge(0, 1);
  EXPECT_EQ(a, b);
  b.add_edge(1, 2);
  EXPECT_NE(a, b);
}

TEST(Graph, ComplementOfTriangleIsEmpty) {
  const Graph k3 = graph_from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  const Graph comp = complement(k3);
  EXPECT_EQ(comp.num_edges(), 0u);
}

TEST(Graph, ComplementIsInvolution) {
  Xoshiro256ss rng(7);
  Graph g(12);
  for (int i = 0; i < 20; ++i) {
    const Vertex u = static_cast<Vertex>(rng.below(12));
    const Vertex v = static_cast<Vertex>(rng.below(12));
    if (u != v) g.add_edge_if_absent(u, v);
  }
  EXPECT_EQ(complement(complement(g)), g);
}

TEST(Graph, ToStringListsEdges) {
  const Graph g = graph_from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(to_string(g), "n=3 m=2: 0-1 1-2");
}

TEST(Graph, InvariantCheckerPassesAfterRandomChurn) {
  Xoshiro256ss rng(42);
  Graph g(20);
  for (int step = 0; step < 500; ++step) {
    const Vertex u = static_cast<Vertex>(rng.below(20));
    const Vertex v = static_cast<Vertex>(rng.below(20));
    if (u == v) continue;
    if (g.has_edge(u, v)) {
      g.remove_edge(u, v);
    } else {
      g.add_edge(u, v);
    }
  }
  EXPECT_NO_THROW(g.check_invariants());
}

}  // namespace
}  // namespace bncg

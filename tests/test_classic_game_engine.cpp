// Differential suite for the α-game engine path (DESIGN.md §14): over 200+
// seeded instances with randomized ownership, best_deviation_engine must
// return exactly the move best_deviation_naive returns — same Type, same
// (v, w, w2), bit-identical gain doubles (the engine produces the same
// usage integers the BFS oracle sums, and the α arithmetic is written
// char-identically) — across α values straddling every move regime, at both
// SIMD dispatch extremes. The α-threshold machinery gets the same
// treatment: alpha_equilibrium_interval vs its naive twin on lo / hi /
// swap_blocked exactly, plus the contains(α) ⟺ is_greedy_equilibrium(α)
// bridge. Thread parity is certified transitively through the
// classic_game_engine_threads{1,4} CTest entries (naive is
// thread-independent, so engine == naive at both counts pins the engine).
#include "core/classic_game.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace bncg {
namespace {

struct LevelGuard {
  SimdLevel saved = simd_active_level();
  ~LevelGuard() { simd_set_level(saved); }
};

/// Instance pool biased toward the regimes where add / delete / swap moves
/// trade off: sparse (adds win), dense (deletes win), and the structured
/// graphs the unit suite exercises. Not all are connected-critical — the
/// α-game tolerates disconnection via kHugeCost — but all are connected so
/// the engine path is exercised.
Graph instance(int trial, Xoshiro256ss& rng) {
  switch (trial % 7) {
    case 0: {
      const Vertex n = 5 + static_cast<Vertex>(rng.below(8));
      const std::size_t max_edges = static_cast<std::size_t>(n) * (n - 1) / 2;
      return random_connected_gnm(n, std::min<std::size_t>(max_edges, n + rng.below(n)), rng);
    }
    case 1:
      return random_tree(5 + static_cast<Vertex>(rng.below(8)), rng);
    case 2:
      return star(5 + static_cast<Vertex>(rng.below(6)));
    case 3:
      return complete(4 + static_cast<Vertex>(rng.below(4)));
    case 4:
      return cycle(5 + static_cast<Vertex>(rng.below(8)));
    case 5:
      return path(4 + static_cast<Vertex>(rng.below(8)));
    default:
      return double_star(2 + static_cast<Vertex>(rng.below(3)),
                         2 + static_cast<Vertex>(rng.below(3)));
  }
}

/// Random but legal ownership: each edge assigned to one of its endpoints.
std::vector<Vertex> random_owners(const Graph& g, Xoshiro256ss& rng) {
  std::vector<Vertex> owners;
  owners.reserve(g.num_edges());
  for (const Edge& e : g.edges()) owners.push_back(rng.bernoulli(0.5) ? e.u : e.v);
  return owners;
}

/// α samples spanning the add-dominated, balanced, and delete-dominated
/// regimes (plus an n-scale value where stars are equilibria).
std::vector<double> alpha_samples(const Graph& g) {
  return {0.25, 0.4, 1.0, 2.0, 5.0, static_cast<double>(g.num_vertices())};
}

void expect_same_move(const std::optional<ClassicMove>& got,
                      const std::optional<ClassicMove>& want, const std::string& context) {
  ASSERT_EQ(got.has_value(), want.has_value()) << context;
  if (!want) return;
  EXPECT_EQ(got->type, want->type) << context;
  EXPECT_EQ(got->v, want->v) << context;
  EXPECT_EQ(got->w, want->w) << context;
  EXPECT_EQ(got->w2, want->w2) << context;
  // Bit-identical, not approximately equal: both sides evaluate the same
  // double expressions over the same usage integers.
  EXPECT_EQ(got->gain, want->gain) << context;
}

TEST(ClassicGameEngine, BestDeviationParity) {
  // 2 SIMD extremes × 105 instances × 6 α values × every agent. The routed
  // best_deviation and the explicit engine entry point are both compared, so
  // the router itself cannot drift.
  LevelGuard guard;
  for (const SimdLevel level : {SimdLevel::Scalar, simd_max_level()}) {
    ASSERT_EQ(simd_set_level(level), level);
    Xoshiro256ss rng(0xA1FA);
    for (int trial = 0; trial < 105; ++trial) {
      const Graph g = instance(trial, rng);
      const std::vector<Vertex> owners = random_owners(g, rng);
      for (const double alpha : alpha_samples(g)) {
        const ClassicGame game(g, alpha, owners);
        const SwapEngine engine(g);
        SwapEngine::Scratch scratch;
        BfsWorkspace ws;
        for (Vertex v = 0; v < g.num_vertices(); ++v) {
          const std::string ctx = std::string(simd_level_name(level)) + " trial " +
                                  std::to_string(trial) + " alpha=" + std::to_string(alpha) +
                                  " v=" + std::to_string(v);
          const auto want = game.best_deviation_naive(v, ws);
          expect_same_move(game.best_deviation_engine(engine, scratch, v), want, ctx + " engine");
          expect_same_move(game.best_deviation(v, ws), want, ctx + " routed");
        }
      }
    }
  }
}

TEST(ClassicGameEngine, AlphaIntervalParity) {
  // Interval endpoints are maxima/minima over the same usage differences the
  // deviation scan sees, so engine vs naive must agree exactly — and the
  // interval must predict is_greedy_equilibrium at every sampled α.
  LevelGuard guard;
  for (const SimdLevel level : {SimdLevel::Scalar, simd_max_level()}) {
    ASSERT_EQ(simd_set_level(level), level);
    Xoshiro256ss rng(0x1D3A);
    for (int trial = 0; trial < 70; ++trial) {
      const Graph g = instance(trial, rng);
      const std::vector<Vertex> owners = random_owners(g, rng);
      const ClassicGame probe(g, 1.0, owners);  // α is irrelevant to the interval
      const AlphaInterval want = probe.alpha_equilibrium_interval_naive();
      const AlphaInterval got = probe.alpha_equilibrium_interval();
      const std::string ctx = std::string(simd_level_name(level)) + " trial " +
                              std::to_string(trial);
      EXPECT_EQ(got.lo, want.lo) << ctx;
      EXPECT_EQ(got.hi, want.hi) << ctx;
      EXPECT_EQ(got.swap_blocked, want.swap_blocked) << ctx;
      for (const double alpha : alpha_samples(g)) {
        const ClassicGame game(g, alpha, owners);
        EXPECT_EQ(want.contains(alpha), game.is_greedy_equilibrium())
            << ctx << " alpha=" << alpha;
      }
    }
  }
}

TEST(ClassicGameEngine, BestResponseDynamicsParity) {
  // Whole-trajectory agreement: running round-robin best response from the
  // same seed state must visit identical move sequences under the engine and
  // the oracle, because each step's chosen move matches. Compare the final
  // graphs, ownership-sensitive social cost, and move/pass counts.
  Xoshiro256ss rng(0xD1CE);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = instance(trial, rng);
    const std::vector<Vertex> owners = random_owners(g, rng);
    for (const double alpha : {0.5, 2.0, 8.0}) {
      ClassicGame routed(g, alpha, owners);
      ClassicGame oracle(g, alpha, owners);
      const auto routed_run = routed.run_best_response(200);
      // Drive the oracle with explicitly naive per-step choices.
      ClassicGame::RunResult oracle_run;
      BfsWorkspace ws;
      for (;;) {
        bool any_move = false;
        for (Vertex v = 0; v < g.num_vertices() && oracle_run.moves < 200; ++v) {
          const auto move = oracle.best_deviation_naive(v, ws);
          if (!move) continue;
          oracle.apply(*move);
          ++oracle_run.moves;
          any_move = true;
        }
        ++oracle_run.passes;
        if (!any_move) {
          oracle_run.converged = true;
          break;
        }
        if (oracle_run.moves >= 200) break;
      }
      const std::string ctx = "trial " + std::to_string(trial) + " alpha=" + std::to_string(alpha);
      EXPECT_EQ(routed_run.converged, oracle_run.converged) << ctx;
      EXPECT_EQ(routed_run.moves, oracle_run.moves) << ctx;
      EXPECT_EQ(routed_run.passes, oracle_run.passes) << ctx;
      EXPECT_EQ(routed.graph().edges(), oracle.graph().edges()) << ctx;
      EXPECT_EQ(routed.social_cost(), oracle.social_cost()) << ctx;
    }
  }
}

}  // namespace
}  // namespace bncg

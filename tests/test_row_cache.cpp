// Differential suite for the budgeted distance-row provider (DESIGN.md
// §16): the blocked row cache (graph/row_cache.hpp) + budgeted SwapEngine
// scans must reproduce the dense path's certificates byte for byte —
// verdict, move counts, witness fields — across 200+ seeded instances at
// both storage widths and both SIMD extremes, survive eviction thrash
// (budget barely above one block), and never prune a row that could have
// mattered (every never-materialized candidate re-verified non-improving
// by BFS). CMakeLists pins the whole RowCache* filter at BNCG_THREADS 1
// and 4 — lane budgets derive from the pool size, so both counts must
// certify identically.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/certify_sharded.hpp"
#include "core/dist_provider.hpp"
#include "core/instance.hpp"
#include "core/swap.hpp"
#include "core/swap_engine.hpp"
#include "core/usage_cost.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/bfs.hpp"
#include "graph/dist_width.hpp"
#include "graph/row_cache.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace bncg {
namespace {

/// A per-lane budget of a few rows: small enough that no dense slab fits
/// at n ≥ 16 (dense u8 needs n² ≤ 12n ⇔ n ≤ 12), large enough that the
/// cache's two-block minimum holds at every pool size CI pins.
[[nodiscard]] std::uint64_t forcing_budget(Vertex n) {
  return ThreadPool::global().size() * 12ull * n;
}

/// The thrash budget: exactly three single-row u16 blocks per lane — one
/// above the cache's two-block minimum, so any scan touching more than
/// three rows evicts constantly.
[[nodiscard]] std::uint64_t thrash_budget(Vertex n) {
  return ThreadPool::global().size() * 6ull * n;
}

void expect_dev_eq(const std::optional<Deviation>& want, const std::optional<Deviation>& got,
                   const std::string& ctx) {
  ASSERT_EQ(want.has_value(), got.has_value()) << ctx;
  if (!want) return;
  EXPECT_EQ(want->swap.v, got->swap.v) << ctx;
  EXPECT_EQ(want->swap.remove_w, got->swap.remove_w) << ctx;
  EXPECT_EQ(want->swap.add_w, got->swap.add_w) << ctx;
  EXPECT_EQ(want->cost_before, got->cost_before) << ctx;
  EXPECT_EQ(want->cost_after, got->cost_after) << ctx;
  EXPECT_EQ(static_cast<int>(want->kind), static_cast<int>(got->kind)) << ctx;
}

void expect_cert_eq(const ShardedCertificate& dense, const ShardedCertificate& budgeted,
                    const std::string& ctx) {
  EXPECT_EQ(dense.certificate.is_equilibrium, budgeted.certificate.is_equilibrium) << ctx;
  EXPECT_EQ(dense.certificate.moves_checked, budgeted.certificate.moves_checked) << ctx;
  EXPECT_EQ(dense.agents_scanned, budgeted.agents_scanned) << ctx;
  expect_dev_eq(dense.certificate.witness, budgeted.certificate.witness, ctx);
}

struct RunSpec {
  UsageCost model;
  bool include_deletions;
  const char* name;
};

constexpr RunSpec kRuns[] = {
    {UsageCost::Sum, false, "sum"},
    {UsageCost::Max, false, "max"},
    {UsageCost::Max, true, "max+del"},
};

constexpr WidthPolicy kWidths[] = {WidthPolicy::ForceU8, WidthPolicy::ForceU16};

/// Dense vs budgeted certificate for one (graph, run, width) cell.
void check_parity(const Graph& g, const RunSpec& run, WidthPolicy width, std::uint64_t budget,
                  const std::string& ctx) {
  ShardedCertifyConfig dense_cfg;
  dense_cfg.resources.width = width;
  const ShardedCertificate dense =
      certify_sharded(g, run.model, run.include_deletions, dense_cfg);

  ShardedCertifyConfig budget_cfg = dense_cfg;
  budget_cfg.resources.mem_budget = budget;
  const ShardedCertificate budgeted =
      certify_sharded(g, run.model, run.include_deletions, budget_cfg);
  expect_cert_eq(dense, budgeted, ctx);
}

// ------------------------------------------------------------------ units

TEST(RowCache, ParseMemBytes) {
  EXPECT_EQ(parse_mem_bytes("0"), 0u);
  EXPECT_EQ(parse_mem_bytes("1024"), 1024u);
  EXPECT_EQ(parse_mem_bytes("4K"), 4096u);
  EXPECT_EQ(parse_mem_bytes("4k"), 4096u);
  EXPECT_EQ(parse_mem_bytes("64M"), 64ull << 20);
  EXPECT_EQ(parse_mem_bytes("2G"), 2ull << 30);
  EXPECT_THROW((void)parse_mem_bytes(""), std::invalid_argument);
  EXPECT_THROW((void)parse_mem_bytes("12Q"), std::invalid_argument);
  EXPECT_THROW((void)parse_mem_bytes("K"), std::invalid_argument);
  EXPECT_THROW((void)parse_mem_bytes("-4"), std::invalid_argument);
  EXPECT_THROW((void)parse_mem_bytes("99999999999999999999G"), std::invalid_argument);
}

TEST(RowCache, PolicyWidthThresholds) {
  EXPECT_EQ(WidthAndBudgetPolicy::width_for_max_distance(0), DistWidth::U8);
  EXPECT_EQ(WidthAndBudgetPolicy::width_for_max_distance(kMaxFiniteFor<std::uint8_t>),
            DistWidth::U8);
  EXPECT_EQ(WidthAndBudgetPolicy::width_for_max_distance(kMaxFiniteFor<std::uint8_t> + 1),
            DistWidth::U16);
  // Unlimited budget: dense fits below the u16 id cap, never above it.
  WidthAndBudgetPolicy unlimited{ResourceConfig{}, /*lanes=*/1};
  EXPECT_TRUE(unlimited.dense_fits(1000, DistWidth::U8));
  EXPECT_FALSE(unlimited.dense_fits(kInfDist16, DistWidth::U16));
  // A 10-byte lane budget rejects any dense slab bigger than 3×3.
  ResourceConfig tiny;
  tiny.mem_budget = 10;
  WidthAndBudgetPolicy capped{tiny, /*lanes=*/1};
  EXPECT_TRUE(capped.dense_fits(3, DistWidth::U8));
  EXPECT_FALSE(capped.dense_fits(4, DistWidth::U8));
  EXPECT_FALSE(capped.dense_fits(3, DistWidth::U16));
  EXPECT_EQ(capped.storage_for(4, DistWidth::U8), RowStorage::Budgeted);
  EXPECT_EQ(capped.storage_for(3, DistWidth::U8), RowStorage::Dense);
}

TEST(RowCache, ConfigureRejectsImpossibleBudget) {
  RowCache<std::uint16_t> cache;
  // Two single-row u16 blocks at n=100 need 400 bytes.
  EXPECT_THROW(cache.configure(100, 399), std::invalid_argument);
  cache.configure(100, 400);
  EXPECT_EQ(cache.block_rows(), 1u);
  EXPECT_EQ(cache.max_blocks(), 2u);
  cache.configure(100, 4ull * 100 * 200);  // four u16 slabs: full 64-row blocks
  EXPECT_EQ(cache.block_rows(), 64u);
  EXPECT_EQ(cache.max_blocks(), 6u);  // floor(80000 / (64·200))
}

TEST(RowCache, RowsMatchBfsAndEvictionsCount) {
  Xoshiro256ss rng(7);
  const Graph g = random_connected_gnm(60, 120, rng);
  const CsrGraph csr(g);
  const Vertex n = g.num_vertices();

  RowCache<std::uint16_t> cache;
  cache.configure(n, 8ull * n);  // four single-row blocks
  BatchBfsWorkspace ws;
  const Vertex masked = 3;
  cache.begin_context(csr, masked, kInfDist16, static_cast<std::uint16_t>(kInfDist16 - 1));

  // Reference: one masked BFS row at a time via the engine-independent
  // positional traversal.
  std::vector<std::uint16_t> want(n);
  for (Vertex src = 0; src < n; ++src) {
    if (src == masked) continue;
    const Vertex one[] = {src};
    ASSERT_TRUE(bfs_batch_capped<std::uint16_t>(csr, one, MaskedEdge{}, want.data(), n, ws,
                                                masked, kInfDist16,
                                                static_cast<std::uint16_t>(kInfDist16 - 1)));
    const std::uint16_t* got = cache.row(src, ws);
    ASSERT_NE(got, nullptr);
    for (Vertex y = 0; y < n; ++y) {
      ASSERT_EQ(got[y], want[y]) << "src=" << src << " y=" << y;
    }
  }
  // 59 materializations through a 4-row cache must have recycled blocks.
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().misses, static_cast<std::uint64_t>(n - 1));
  EXPECT_LE(cache.resident_sources().size(), 4u);
  EXPECT_LE(cache.stats().peak_bytes, 8ull * n);

  // Context bump: every resident row becomes invisible in O(1).
  cache.begin_context(csr, masked, kInfDist16, static_cast<std::uint16_t>(kInfDist16 - 1));
  EXPECT_TRUE(cache.resident_sources().empty());
  EXPECT_FALSE(cache.resident(5));
}

// ------------------------------------------------- differential certify

// 35 seeded G(n, m) instances × 3 run configs × 2 forced widths = 210
// dense-vs-budgeted certificate comparisons, n spanning 16..63 with edge
// densities from tree-like to dense. Witnesses (gnm instances are almost
// never equilibria) make this byte-parity, not just verdict-parity.
TEST(RowCache, DifferentialCertifyGnm) {
  for (std::uint64_t seed = 1; seed <= 35; ++seed) {
    Xoshiro256ss rng(seed * 0x9e3779b97f4a7c15ull);
    const Vertex n = static_cast<Vertex>(16 + (seed * 7) % 48);
    const std::size_t m = n - 1 + static_cast<std::size_t>(rng.below(2 * n));
    const Graph g = random_connected_gnm(n, m, rng);
    for (const RunSpec& run : kRuns) {
      for (const WidthPolicy width : kWidths) {
        const std::string ctx = "seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
                                " m=" + std::to_string(m) + " run=" + run.name +
                                " width=" + (width == WidthPolicy::ForceU8 ? "u8" : "u16");
        check_parity(g, run, width, forcing_budget(n), ctx);
        if (HasFatalFailure()) return;
      }
    }
  }
}

// Structured instances: equilibria (torus — exercises the prune fast
// path), near-equilibria, and a path long enough that ForceU8 saturates
// and falls back to u16 in BOTH storage modes.
TEST(RowCache, DifferentialCertifyStructured) {
  std::vector<std::pair<Graph, const char*>> instances;
  instances.emplace_back(rotated_torus(5).graph(), "torus5");
  instances.emplace_back(rotated_torus(6).graph(), "torus6");
  instances.emplace_back(cycle(48), "cycle48");
  instances.emplace_back(path(70), "path70");  // masked dist > u8 cap
  instances.emplace_back(complete_bipartite(6, 10), "k6_10");
  for (const auto& [g, name] : instances) {
    for (const RunSpec& run : kRuns) {
      for (const WidthPolicy width : kWidths) {
        const std::string ctx = std::string(name) + " run=" + run.name +
                                " width=" + (width == WidthPolicy::ForceU8 ? "u8" : "u16");
        check_parity(g, run, width, forcing_budget(g.num_vertices()), ctx);
        if (HasFatalFailure()) return;
      }
    }
  }
}

// stop_on_violation makes the witness schedule-dependent but the verdict
// deterministic — budgeted and dense must agree on it.
TEST(RowCache, DifferentialStopOnViolationVerdict) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Xoshiro256ss rng(seed);
    const Vertex n = static_cast<Vertex>(20 + seed * 4);
    const Graph g = random_connected_gnm(n, 2 * n, rng);
    for (const RunSpec& run : kRuns) {
      ShardedCertifyConfig dense_cfg;
      dense_cfg.stop_on_violation = true;
      const ShardedCertificate dense =
          certify_sharded(g, run.model, run.include_deletions, dense_cfg);
      ShardedCertifyConfig budget_cfg = dense_cfg;
      budget_cfg.resources.mem_budget = forcing_budget(n);
      const ShardedCertificate budgeted =
          certify_sharded(g, run.model, run.include_deletions, budget_cfg);
      EXPECT_EQ(dense.certificate.is_equilibrium, budgeted.certificate.is_equilibrium)
          << "seed=" << seed << " run=" << run.name;
    }
  }
}

// Per-agent parity at the engine level, including the per-call
// moves_checked counter and first_deviation's early-exit accounting — the
// sharpest-grained equivalence the certificate parity above aggregates.
TEST(RowCache, DifferentialPerAgentMoves) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Xoshiro256ss rng(seed + 100);
    const Vertex n = static_cast<Vertex>(24 + seed * 8);
    const Graph g = random_connected_gnm(n, n + n / 2, rng);
    for (const RunSpec& run : kRuns) {
      for (const WidthPolicy width : kWidths) {
        ResourceConfig dense_res;
        dense_res.width = width;
        ResourceConfig budget_res = dense_res;
        budget_res.mem_budget = forcing_budget(n);
        const SwapEngine dense(g, dense_res);
        const SwapEngine budgeted(g, budget_res);
        SwapEngine::Scratch ds, bs;
        for (Vertex v = 0; v < n; ++v) {
          const std::string ctx = "seed=" + std::to_string(seed) + " v=" + std::to_string(v) +
                                  " run=" + run.name;
          for (const bool first : {false, true}) {
            std::uint64_t dense_moves = 0, budget_moves = 0;
            const auto want =
                first ? dense.first_deviation(v, run.model, ds, run.include_deletions,
                                              &dense_moves)
                      : dense.best_deviation(v, run.model, ds, run.include_deletions,
                                             &dense_moves);
            const auto got =
                first ? budgeted.first_deviation(v, run.model, bs, run.include_deletions,
                                                 &budget_moves)
                      : budgeted.best_deviation(v, run.model, bs, run.include_deletions,
                                                &budget_moves);
            expect_dev_eq(want, got, ctx + (first ? " first" : " best"));
            EXPECT_EQ(dense_moves, budget_moves) << ctx << (first ? " first" : " best");
            if (HasFatalFailure()) return;
          }
        }
      }
    }
  }
}

// ------------------------------------------------------- SIMD extremes

/// Budgeted certificates must be level-invariant AND dense-identical with
/// the dispatch pinned to scalar and to the widest level this CPU runs.
TEST(RowCache, SimdExtremesParity) {
  const SimdLevel saved = simd_active_level();
  std::vector<SimdLevel> levels{SimdLevel::Scalar};
  if (simd_max_level() != SimdLevel::Scalar) levels.push_back(simd_max_level());
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Xoshiro256ss rng(seed * 31);
    const Vertex n = static_cast<Vertex>(20 + seed * 6);
    const Graph g = random_connected_gnm(n, 2 * n, rng);
    for (const RunSpec& run : kRuns) {
      for (const WidthPolicy width : kWidths) {
        for (const SimdLevel level : levels) {
          ASSERT_EQ(simd_set_level(level), level);
          const std::string ctx = "seed=" + std::to_string(seed) + " run=" + run.name +
                                  " level=" + simd_level_name(level);
          check_parity(g, run, width, forcing_budget(n), ctx);
          if (HasFatalFailure()) {
            simd_set_level(saved);
            return;
          }
        }
      }
    }
  }
  simd_set_level(saved);
}

// ------------------------------------------------------- eviction thrash

// Budget one row above the cache's two-block minimum: every scan stage
// refetches through a three-slot window. The certificate must not move a
// byte, and the cache must actually have thrashed.
TEST(RowCache, EvictionThrashParity) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Xoshiro256ss rng(seed * 977);
    const Vertex n = static_cast<Vertex>(24 + seed * 5);
    const Graph g = random_connected_gnm(n, 2 * n, rng);
    for (const RunSpec& run : kRuns) {
      const std::string ctx = "seed=" + std::to_string(seed) + " run=" + run.name;
      check_parity(g, run, WidthPolicy::ForceU16, thrash_budget(n), ctx);
      if (HasFatalFailure()) return;
    }
    // The thrash is observable: a single-scratch engine pass leaves
    // eviction marks (any sum scan materializes ≥ deg + survivors rows
    // through 3 slots).
    ResourceConfig res;
    res.width = WidthPolicy::ForceU16;
    res.mem_budget = thrash_budget(n);  // three single-row u16 blocks per lane
    const SwapEngine engine(g, res);
    ASSERT_EQ(engine.budget_policy().storage_for(n, DistWidth::U16), RowStorage::Budgeted);
    SwapEngine::Scratch scratch;
    std::uint64_t dummy = 0;
    for (Vertex v = 0; v < n; ++v) {
      (void)engine.best_deviation(v, UsageCost::Sum, scratch, false, &dummy);
    }
    EXPECT_GT(scratch.row_cache_stats().evictions, 0u) << "seed=" << seed;
  }
}

// ------------------------------------------------------- prune soundness

// Property: a row the budgeted scan never materialized can never have
// mattered. The cache's context_filled() log records every row the scan
// filled (eviction-proof, unlike residency), so its complement over the
// candidate set is exactly the pruned set; every pruned candidate y is
// re-verified by BFS to be non-improving for EVERY removed edge w — the
// exactness argument of DESIGN.md §16 checked instance by instance, under
// a deliberately tight (thrash-prone) half-slab budget.
void check_prune_soundness(const Graph& g, UsageCost model, const std::string& name) {
  const Vertex n = g.num_vertices();
  ResourceConfig res;
  res.width = WidthPolicy::ForceU16;
  res.mem_budget = static_cast<std::uint64_t>(n) * n;  // half the u16 slab
  const SwapEngine engine(g, res);
  ASSERT_EQ(engine.budget_policy().storage_for(n, DistWidth::U16), RowStorage::Budgeted);
  SwapEngine::Scratch scratch;
  BfsWorkspace ws;

  for (Vertex v = 0; v < n; ++v) {
    const std::uint64_t old_cost = vertex_cost(g, v, model, ws);
    const auto dev = engine.best_deviation(v, model, scratch, /*include_deletions=*/false);
    if (dev) {
      EXPECT_EQ(dev->cost_before, old_cost) << name << " v=" << v;
    }
    const auto& cache = scratch.provider16().cache();
    std::vector<std::uint8_t> filled(n, 0);
    for (const Vertex s : cache.context_filled()) filled[s] = 1;

    std::vector<std::uint8_t> is_nbr(n, 0);
    is_nbr[v] = 1;
    for (const Vertex w : g.neighbors(v)) is_nbr[w] = 1;
    for (Vertex y = 0; y < n; ++y) {
      if (is_nbr[y] != 0 || filled[y] != 0) continue;
      // y's row never materialized — every swap toward y must be
      // non-improving (and no better than the scan's best, which is
      // implied: best, when present, is strictly improving).
      for (const Vertex w : g.neighbors(v)) {
        Graph h = g;
        apply_swap(h, EdgeSwap{v, w, y});
        const std::uint64_t after = vertex_cost(h, v, model, ws);
        EXPECT_GE(after, old_cost)
            << name << ": pruned candidate improves — v=" << v << " remove=" << w
            << " add=" << y << " old=" << old_cost << " new=" << after;
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(RowCache, PruneSoundnessTorusMax) {
  check_prune_soundness(rotated_torus(4).graph(), UsageCost::Max, "torus4/max");
}

TEST(RowCache, PruneSoundnessTorusSum) {
  check_prune_soundness(rotated_torus(4).graph(), UsageCost::Sum, "torus4/sum");
}

TEST(RowCache, PruneSoundnessGnm) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Xoshiro256ss rng(seed * 13);
    const Graph g = random_connected_gnm(30, 60, rng);
    check_prune_soundness(g, UsageCost::Max, "gnm/max seed=" + std::to_string(seed));
    check_prune_soundness(g, UsageCost::Sum, "gnm/sum seed=" + std::to_string(seed));
  }
}

// ------------------------------------------------------------ facade

// The Instance facade must route RunConfig.resources into the same
// budgeted machinery (same bytes as the free-function path).
TEST(RowCache, FacadeRoutesBudget) {
  const Instance inst = Instance::torus(5);
  RunConfig run;
  run.model = UsageCost::Max;
  run.include_deletions = true;
  const ShardedCertificate dense = inst.certify(run);
  RunConfig capped = run;
  capped.resources.mem_budget = forcing_budget(inst.num_vertices());
  const ShardedCertificate budgeted = inst.certify(capped);
  expect_cert_eq(dense, budgeted, "facade torus5");
  EXPECT_TRUE(dense.certificate.is_equilibrium);
}

}  // namespace
}  // namespace bncg

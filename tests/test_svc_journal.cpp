// Crash-safe shard journal (svc/journal.hpp): create/record/open recovery,
// append-only idempotence, corruption degradation (damaged records are
// skipped and counted, never fatal), and the session guards — a journal
// can never be silently overwritten nor resumed against the wrong
// instance or run configuration.
#include "svc/journal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "core/certify_sharded.hpp"
#include "core/certify_wire.hpp"
#include "core/swap_engine.hpp"
#include "gen/random.hpp"
#include "graph/io.hpp"
#include "svc/sink.hpp"
#include "util/rng.hpp"

namespace bncg::svc {
namespace {

namespace fs = std::filesystem;

class SvcJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest -j runs each TEST_F as its own process, and
    // a shared directory makes SetUp's remove_all race a sibling's rename
    // into the same path. In-process tests run sequentially and TearDown
    // removes the directory, so the pid alone disambiguates.
    dir_ = (fs::temp_directory_path() /
            ("bncg_svc_journal_" + std::to_string(static_cast<long>(::getpid()))))
               .string();
    fs::remove_all(dir_);
    Xoshiro256ss rng(0x10DE);
    g_ = random_connected_gnm(24, 60, rng);
    header_.fingerprint = graph_fingerprint(g_);
    header_.n = g_.num_vertices();
    header_.m = g_.num_edges();
    header_.model = UsageCost::Sum;
    header_.shard_count = 4;
  }

  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] ShardResult make_shard(std::uint32_t index) const {
    const SwapEngine engine(g_);
    AgentRange range;
    range.shard_index = index;
    range.shard_count = header_.shard_count;
    range.lo = static_cast<Vertex>(index * header_.n / header_.shard_count);
    range.hi = static_cast<Vertex>((index + 1) * header_.n / header_.shard_count);
    return certify_agent_range(engine, range, header_.model, header_.include_deletions,
                               header_.stop_on_violation);
  }

  std::string dir_;
  Graph g_;
  JournalHeader header_;
};

TEST_F(SvcJournalTest, CreateRecordOpenRoundTrip) {
  {
    ShardJournal journal = ShardJournal::create(dir_, header_);
    journal.record(make_shard(1));
    journal.record(make_shard(3));
  }
  ShardJournal reopened = ShardJournal::open(dir_);
  EXPECT_EQ(reopened.header().fingerprint, header_.fingerprint);
  EXPECT_EQ(reopened.header().shard_count, header_.shard_count);
  ASSERT_EQ(reopened.recovered().size(), 2u);
  EXPECT_EQ(reopened.skipped_corrupt(), 0u);
  // Recovered records carry the full payload, not just coordinates.
  const ShardResult want = make_shard(1);
  const ShardResult& got = reopened.recovered().front();
  EXPECT_EQ(got.shard_index, 1u);
  EXPECT_EQ(got.scanned, want.scanned);
  EXPECT_EQ(got.moves, want.moves);
  EXPECT_EQ(shard_to_binary(got), shard_to_binary(want));
}

TEST_F(SvcJournalTest, RecordIsIdempotentPerIndex) {
  ShardJournal journal = ShardJournal::create(dir_, header_);
  journal.record(make_shard(2));
  const fs::path record = fs::path(dir_) / ShardJournal::record_name(2);
  const auto first_write = fs::last_write_time(record);
  journal.record(make_shard(2));  // duplicate: must not rewrite the file
  EXPECT_EQ(fs::last_write_time(record), first_write);
  EXPECT_EQ(ShardJournal::open(dir_).recovered().size(), 1u);
}

TEST_F(SvcJournalTest, CreateRefusesExistingSession) {
  { (void)ShardJournal::create(dir_, header_); }
  EXPECT_THROW((void)ShardJournal::create(dir_, header_), std::invalid_argument);
}

TEST_F(SvcJournalTest, OpenMissingDirectoryOrSessionThrowsRuntime) {
  EXPECT_THROW((void)ShardJournal::open(dir_ + "-nope"), std::runtime_error);
  fs::create_directories(dir_);  // directory without a session record
  EXPECT_THROW((void)ShardJournal::open(dir_), std::runtime_error);
}

TEST_F(SvcJournalTest, CorruptSessionRecordRefusedOnOpen) {
  { (void)ShardJournal::create(dir_, header_); }
  const fs::path session = fs::path(dir_) / "session.bin";
  std::string bytes;
  {
    std::ifstream in(session, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  {
    std::ofstream out(session, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)ShardJournal::open(dir_), std::invalid_argument);
}

TEST_F(SvcJournalTest, DamagedRecordSkippedAndCounted) {
  {
    ShardJournal journal = ShardJournal::create(dir_, header_);
    journal.record(make_shard(0));
    journal.record(make_shard(1));
  }
  // Truncate one record (external damage — a crash cannot do this, the
  // rename is atomic).
  const fs::path victim = fs::path(dir_) / ShardJournal::record_name(0);
  fs::resize_file(victim, fs::file_size(victim) / 2);
  ShardJournal reopened = ShardJournal::open(dir_);
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered().front().shard_index, 1u);
  EXPECT_EQ(reopened.skipped_corrupt(), 1u);
}

TEST_F(SvcJournalTest, NoTempFilesSurviveNormalOperation) {
  {
    ShardJournal journal = ShardJournal::create(dir_, header_);
    for (std::uint32_t i = 0; i < header_.shard_count; ++i) journal.record(make_shard(i));
  }
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), entry.path().filename() == "session.bin"
                                            ? fs::path(".bin")
                                            : fs::path(".shard"))
        << entry.path();
  }
}

TEST_F(SvcJournalTest, NonCanonicalCoordinatesRefusedLikeCorruption) {
  // The journal admits ONLY records on the canonical i·n/K split — that
  // invariant is what lets the streaming sink fold files straight from
  // disk. A shard with shifted coordinates is refused at record() and, if
  // planted on disk, skipped on open like any other corruption.
  ShardJournal journal = ShardJournal::create(dir_, header_);
  const SwapEngine engine(g_);
  AgentRange shifted;
  shifted.shard_index = 1;
  shifted.shard_count = header_.shard_count;
  shifted.lo = 0;  // canonical lo of shard 1 is n/4 = 6
  shifted.hi = static_cast<Vertex>(2 * header_.n / header_.shard_count);
  const ShardResult bad = certify_agent_range(engine, shifted, header_.model, false, false);
  EXPECT_THROW(journal.record(bad), std::invalid_argument);

  write_file_atomic(dir_ + "/" + ShardJournal::record_name(1), shard_to_binary(bad));
  ShardJournal reopened = ShardJournal::open(dir_);
  EXPECT_EQ(reopened.recovered().size(), 0u);
  EXPECT_EQ(reopened.skipped_corrupt(), 1u);
}

TEST_F(SvcJournalTest, StreamingOpenTracksRecordsWithoutPayloads) {
  {
    ShardJournal journal = ShardJournal::create(dir_, header_);
    journal.record(make_shard(0));
    journal.record(make_shard(2));
  }
  ShardJournal streaming = ShardJournal::open(dir_, /*keep_records=*/false);
  EXPECT_TRUE(streaming.recovered().empty());  // payloads stay on disk
  EXPECT_EQ(streaming.records(), 2u);
  EXPECT_TRUE(streaming.has_record(0));
  EXPECT_FALSE(streaming.has_record(1));
  EXPECT_TRUE(streaming.has_record(2));
  const ShardResult reread = read_shard_file(streaming.record_path(2));
  EXPECT_EQ(shard_to_binary(reread), shard_to_binary(make_shard(2)));
}

TEST_F(SvcJournalTest, SessionDirNameKeysExactlyTheMergeIdentity) {
  const std::string base = ShardJournal::session_dir_name(header_);
  EXPECT_EQ(base.rfind("session_", 0), 0u);
  EXPECT_EQ(base, ShardJournal::session_dir_name(header_));  // deterministic
  for (const auto& mutate : std::vector<std::function<void(JournalHeader&)>>{
           [](JournalHeader& h) { h.fingerprint ^= 1; },
           [](JournalHeader& h) { h.n += 1; },
           [](JournalHeader& h) { h.m += 1; },
           [](JournalHeader& h) { h.model = UsageCost::Max; },
           [](JournalHeader& h) { h.include_deletions = true; },
           [](JournalHeader& h) { h.stop_on_violation = true; },
           [](JournalHeader& h) { h.shard_count += 1; }}) {
    JournalHeader other = header_;
    mutate(other);
    EXPECT_NE(ShardJournal::session_dir_name(other), base);
  }
}

TEST_F(SvcJournalTest, ListSessionDirsFindsOnlyRealSessions) {
  JournalHeader sibling = header_;
  sibling.model = UsageCost::Max;
  const std::string a = dir_ + "/" + ShardJournal::session_dir_name(header_);
  const std::string b = dir_ + "/" + ShardJournal::session_dir_name(sibling);
  { (void)ShardJournal::create(a, header_); }
  { (void)ShardJournal::create(b, sibling); }
  fs::create_directories(dir_ + "/session_notarealsession");  // no session.bin
  fs::create_directories(dir_ + "/unrelated");
  std::ofstream(dir_ + "/session_stray.txt") << "file, not a dir\n";

  std::vector<std::string> found = ShardJournal::list_session_dirs(dir_);
  std::vector<std::string> want = {a, b};
  std::sort(want.begin(), want.end());
  EXPECT_EQ(found, want);
  EXPECT_TRUE(ShardJournal::list_session_dirs(dir_ + "/does-not-exist").empty());
}

// --- streaming witness sink -------------------------------------------------

TEST_F(SvcJournalTest, SpoolSinkCompactionMatchesBufferedMergeByteForByte) {
  const std::string spool_dir = dir_ + "/spool";
  std::vector<ShardResult> shards;
  {
    StreamingSink sink = StreamingSink::spool(spool_dir, header_);
    // Append out of order; compaction must still fold in shard-index order.
    for (const std::uint32_t idx : {2u, 0u, 3u, 1u}) {
      shards.push_back(make_shard(idx));
      sink.append(shards.back());
      EXPECT_TRUE(sink.has(idx));
    }
    EXPECT_EQ(sink.appended(), 4u);
    sink.append(make_shard(2));  // duplicate: first result wins, no rewrite
    EXPECT_EQ(sink.appended(), 4u);

    const ShardedCertificate streamed = sink.compact();
    const ShardedCertificate buffered = merge_shard_results(shards);
    EXPECT_EQ(streamed.certificate.is_equilibrium, buffered.certificate.is_equilibrium);
    EXPECT_EQ(streamed.certificate.moves_checked, buffered.certificate.moves_checked);
    EXPECT_EQ(streamed.certificate.witness.has_value(),
              buffered.certificate.witness.has_value());
    EXPECT_EQ(streamed.agents_scanned, buffered.agents_scanned);
    EXPECT_EQ(streamed.shards_used, buffered.shards_used);
    EXPECT_TRUE(fs::exists(spool_dir));
  }
  // Spool contract: the throwaway directory dies with the sink.
  EXPECT_FALSE(fs::exists(spool_dir));
}

TEST_F(SvcJournalTest, SinkCompactionRefusesMissingShards) {
  StreamingSink sink = StreamingSink::spool(dir_ + "/partial", header_);
  sink.append(make_shard(0));
  sink.append(make_shard(1));
  EXPECT_THROW((void)sink.compact(), std::invalid_argument);
}

TEST_F(SvcJournalTest, DurableSinkSurvivesReopenAndStillCompacts) {
  const std::string session_dir = dir_ + "/" + ShardJournal::session_dir_name(header_);
  {
    StreamingSink sink = StreamingSink::durable(ShardJournal::create(session_dir, header_));
    sink.append(make_shard(0));
    sink.append(make_shard(3));
  }
  ASSERT_TRUE(fs::exists(session_dir));  // durable: the journal outlives the sink
  StreamingSink resumed =
      StreamingSink::durable(ShardJournal::open(session_dir, /*keep_records=*/false));
  EXPECT_EQ(resumed.appended(), 2u);  // recovered records count as appended
  resumed.append(make_shard(1));
  resumed.append(make_shard(2));
  const ShardedCertificate streamed = resumed.compact();
  std::vector<ShardResult> all;
  for (std::uint32_t i = 0; i < header_.shard_count; ++i) all.push_back(make_shard(i));
  EXPECT_EQ(streamed.certificate.moves_checked, merge_shard_results(all).certificate.moves_checked);
  EXPECT_EQ(streamed.shards_used, header_.shard_count);
}

}  // namespace
}  // namespace bncg::svc

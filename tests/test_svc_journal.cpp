// Crash-safe shard journal (svc/journal.hpp): create/record/open recovery,
// append-only idempotence, corruption degradation (damaged records are
// skipped and counted, never fatal), and the session guards — a journal
// can never be silently overwritten nor resumed against the wrong
// instance or run configuration.
#include "svc/journal.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/certify_sharded.hpp"
#include "core/certify_wire.hpp"
#include "core/swap_engine.hpp"
#include "gen/random.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

namespace bncg::svc {
namespace {

namespace fs = std::filesystem;

class SvcJournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest -j runs each TEST_F as its own process, and
    // a shared directory makes SetUp's remove_all race a sibling's rename
    // into the same path. In-process tests run sequentially and TearDown
    // removes the directory, so the pid alone disambiguates.
    dir_ = (fs::temp_directory_path() /
            ("bncg_svc_journal_" + std::to_string(static_cast<long>(::getpid()))))
               .string();
    fs::remove_all(dir_);
    Xoshiro256ss rng(0x10DE);
    g_ = random_connected_gnm(24, 60, rng);
    header_.fingerprint = graph_fingerprint(g_);
    header_.n = g_.num_vertices();
    header_.m = g_.num_edges();
    header_.model = UsageCost::Sum;
    header_.shard_count = 4;
  }

  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] ShardResult make_shard(std::uint32_t index) const {
    const SwapEngine engine(g_);
    AgentRange range;
    range.shard_index = index;
    range.shard_count = header_.shard_count;
    range.lo = static_cast<Vertex>(index * header_.n / header_.shard_count);
    range.hi = static_cast<Vertex>((index + 1) * header_.n / header_.shard_count);
    return certify_agent_range(engine, range, header_.model, header_.include_deletions,
                               header_.stop_on_violation);
  }

  std::string dir_;
  Graph g_;
  JournalHeader header_;
};

TEST_F(SvcJournalTest, CreateRecordOpenRoundTrip) {
  {
    ShardJournal journal = ShardJournal::create(dir_, header_);
    journal.record(make_shard(1));
    journal.record(make_shard(3));
  }
  ShardJournal reopened = ShardJournal::open(dir_);
  EXPECT_EQ(reopened.header().fingerprint, header_.fingerprint);
  EXPECT_EQ(reopened.header().shard_count, header_.shard_count);
  ASSERT_EQ(reopened.recovered().size(), 2u);
  EXPECT_EQ(reopened.skipped_corrupt(), 0u);
  // Recovered records carry the full payload, not just coordinates.
  const ShardResult want = make_shard(1);
  const ShardResult& got = reopened.recovered().front();
  EXPECT_EQ(got.shard_index, 1u);
  EXPECT_EQ(got.scanned, want.scanned);
  EXPECT_EQ(got.moves, want.moves);
  EXPECT_EQ(shard_to_binary(got), shard_to_binary(want));
}

TEST_F(SvcJournalTest, RecordIsIdempotentPerIndex) {
  ShardJournal journal = ShardJournal::create(dir_, header_);
  journal.record(make_shard(2));
  const fs::path record = fs::path(dir_) / ShardJournal::record_name(2);
  const auto first_write = fs::last_write_time(record);
  journal.record(make_shard(2));  // duplicate: must not rewrite the file
  EXPECT_EQ(fs::last_write_time(record), first_write);
  EXPECT_EQ(ShardJournal::open(dir_).recovered().size(), 1u);
}

TEST_F(SvcJournalTest, CreateRefusesExistingSession) {
  { (void)ShardJournal::create(dir_, header_); }
  EXPECT_THROW((void)ShardJournal::create(dir_, header_), std::invalid_argument);
}

TEST_F(SvcJournalTest, OpenMissingDirectoryOrSessionThrowsRuntime) {
  EXPECT_THROW((void)ShardJournal::open(dir_ + "-nope"), std::runtime_error);
  fs::create_directories(dir_);  // directory without a session record
  EXPECT_THROW((void)ShardJournal::open(dir_), std::runtime_error);
}

TEST_F(SvcJournalTest, CorruptSessionRecordRefusedOnOpen) {
  { (void)ShardJournal::create(dir_, header_); }
  const fs::path session = fs::path(dir_) / "session.bin";
  std::string bytes;
  {
    std::ifstream in(session, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x10);
  {
    std::ofstream out(session, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)ShardJournal::open(dir_), std::invalid_argument);
}

TEST_F(SvcJournalTest, DamagedRecordSkippedAndCounted) {
  {
    ShardJournal journal = ShardJournal::create(dir_, header_);
    journal.record(make_shard(0));
    journal.record(make_shard(1));
  }
  // Truncate one record (external damage — a crash cannot do this, the
  // rename is atomic).
  const fs::path victim = fs::path(dir_) / ShardJournal::record_name(0);
  fs::resize_file(victim, fs::file_size(victim) / 2);
  ShardJournal reopened = ShardJournal::open(dir_);
  ASSERT_EQ(reopened.recovered().size(), 1u);
  EXPECT_EQ(reopened.recovered().front().shard_index, 1u);
  EXPECT_EQ(reopened.skipped_corrupt(), 1u);
}

TEST_F(SvcJournalTest, NoTempFilesSurviveNormalOperation) {
  {
    ShardJournal journal = ShardJournal::create(dir_, header_);
    for (std::uint32_t i = 0; i < header_.shard_count; ++i) journal.record(make_shard(i));
  }
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), entry.path().filename() == "session.bin"
                                            ? fs::path(".bin")
                                            : fs::path(".shard"))
        << entry.path();
  }
}

}  // namespace
}  // namespace bncg::svc

// Unit tests for the all-pairs distance matrix.
#include "graph/apsp.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(Apsp, MatchesSingleSourceBfsOnRandomGraphs) {
  Xoshiro256ss rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_connected_gnm(25, 40, rng);
    const DistanceMatrix dm(g);
    BfsWorkspace ws;
    for (Vertex u = 0; u < g.num_vertices(); ++u) {
      (void)bfs(g, u, ws);
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(dm.at(u, v), ws.dist()[v]);
      }
    }
  }
}

TEST(Apsp, SymmetricMatrix) {
  Xoshiro256ss rng(5);
  const Graph g = random_connected_gnm(30, 50, rng);
  const DistanceMatrix dm(g);
  for (Vertex u = 0; u < 30; ++u) {
    for (Vertex v = 0; v < 30; ++v) EXPECT_EQ(dm.at(u, v), dm.at(v, u));
  }
}

TEST(Apsp, TriangleInequalityHolds) {
  Xoshiro256ss rng(6);
  const Graph g = random_connected_gnm(20, 30, rng);
  const DistanceMatrix dm(g);
  for (Vertex a = 0; a < 20; ++a) {
    for (Vertex b = 0; b < 20; ++b) {
      for (Vertex c = 0; c < 20; ++c) {
        EXPECT_LE(dm.at(a, c), dm.at(a, b) + dm.at(b, c));
      }
    }
  }
}

TEST(Apsp, DetectsDisconnection) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const DistanceMatrix dm(g);
  EXPECT_FALSE(dm.connected());
  EXPECT_EQ(dm.at(0, 2), kInfDist);
  EXPECT_EQ(dm.at(0, 1), 1u);
}

TEST(Apsp, ConnectedFlagOnConnectedGraph) {
  const DistanceMatrix dm(cycle(7));
  EXPECT_TRUE(dm.connected());
}

TEST(Apsp, RowViewAndAggregates) {
  const Graph g = star(6);
  const DistanceMatrix dm(g);
  EXPECT_EQ(dm.row(0).size(), 6u);
  EXPECT_EQ(dm.row_sum(0), 5u);
  EXPECT_EQ(dm.row_sum(1), 1u + 2 * 4);
  EXPECT_EQ(dm.eccentricity(0), 1u);
  EXPECT_EQ(dm.eccentricity(2), 2u);
}

TEST(Apsp, EmptyAndSingletonGraphs) {
  const DistanceMatrix empty((Graph(0)));
  EXPECT_TRUE(empty.connected());
  EXPECT_EQ(empty.size(), 0u);
  const DistanceMatrix single((Graph(1)));
  EXPECT_TRUE(single.connected());
  EXPECT_EQ(single.at(0, 0), 0u);
}

TEST(Apsp, EccentricityInfWhenDisconnected) {
  Graph g(3);
  g.add_edge(0, 1);
  const DistanceMatrix dm(g);
  EXPECT_EQ(dm.eccentricity(0), kInfDist);
}

}  // namespace
}  // namespace bncg

// Theorem-level property tests: each of the paper's numbered results gets a
// direct, machine-checked instance (parameterized sweeps where the statement
// quantifies over families).
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/kstability.hpp"
#include "gen/cayley.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/distance_uniformity.hpp"
#include "graph/metrics.hpp"
#include "graph/power.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

// ----------------------------------------------------------- Theorem 1

class Theorem1Trees : public ::testing::TestWithParam<Vertex> {};

TEST_P(Theorem1Trees, SumEquilibriumTreesAreStars) {
  // Any tree that certifies as a sum equilibrium must have diameter ≤ 2.
  // Conversely every star certifies. Sweep random trees: none with
  // diameter ≥ 3 may certify.
  const Vertex n = GetParam();
  Xoshiro256ss rng(1000 + n);
  EXPECT_TRUE(is_sum_equilibrium(star(n)));
  for (int trial = 0; trial < 8; ++trial) {
    const Graph t = random_tree(n, rng);
    if (diameter(t) >= 3) {
      EXPECT_FALSE(is_sum_equilibrium(t)) << to_string(t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem1Trees, ::testing::Values(4, 6, 8, 12, 16, 24));

// ----------------------------------------------------------- Theorem 4

class Theorem4Trees : public ::testing::TestWithParam<Vertex> {};

TEST_P(Theorem4Trees, MaxEquilibriumTreesHaveDiameterAtMostThree) {
  const Vertex n = GetParam();
  Xoshiro256ss rng(2000 + n);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph t = random_tree(n, rng);
    if (is_max_equilibrium(t)) {
      EXPECT_LE(diameter(t), 3u) << to_string(t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Theorem4Trees, ::testing::Values(5, 8, 12, 16));

TEST(Theorem4, DoubleStarFamilyIsExactlyTheDiameterThreeEquilibria) {
  // §2.2: double-stars with ≥ 2 leaves per root are max equilibria of
  // diameter 3; fewer leaves break it.
  for (Vertex l = 2; l <= 4; ++l) {
    for (Vertex r = 2; r <= 4; ++r) {
      const Graph g = double_star(l, r);
      EXPECT_TRUE(is_max_equilibrium(g)) << l << "," << r;
      EXPECT_EQ(diameter(g), 3u);
    }
  }
  EXPECT_FALSE(is_max_equilibrium(double_star(1, 4)));
}

// ----------------------------------------------------------- Lemma 2 / 3

TEST(Lemma3, CutVertexComponentsInMaxEquilibria) {
  // In any certified max equilibrium with a cut vertex v, only one
  // component of G − v may contain a vertex at distance > 1 from v.
  // Double-stars exercise this: each center is a cut vertex.
  const Graph g = double_star(3, 3);
  ASSERT_TRUE(is_max_equilibrium(g));
  // Center 0: components of G−0 are {leaves of 0} (distance 1) and the
  // {1-side} (distances up to 2). Exactly one deep component.
  BfsWorkspace ws;
  Graph h = g;
  // Remove vertex 0 by deleting its edges.
  const std::vector<Vertex> nbrs(h.neighbors(0).begin(), h.neighbors(0).end());
  for (const Vertex w : nbrs) h.remove_edge(0, w);
  (void)bfs(g, 0, ws);
  const std::vector<Vertex> dist_from_v = ws.dist();
  // Count components of G−v that contain a vertex at distance > 1 from v.
  // (Inspect distances in the original graph, grouping by neighbor subtree.)
  Vertex deep = 0;
  for (const Vertex w : nbrs) {
    if (w == 1) {
      deep += 1;  // the other center's side holds distance-2 leaves
    }
  }
  EXPECT_EQ(deep, 1u);
  for (Vertex x = 2; x < g.num_vertices(); ++x) {
    if (dist_from_v[x] > 1) {
      // Every deep vertex must live on the single deep side (via center 1).
      EXPECT_GT(x, 4u);
    }
  }
}

// ----------------------------------------------------------- Theorem 5

TEST(Theorem5, DiameterThreeSumEquilibriaExist) {
  // The literal Figure 3 instance is refuted (see gen/paper.hpp and
  // test_equilibrium.cpp); the theorem's existential statement is upheld by
  // the library's search-found 8-vertex witness.
  const Graph g = diameter3_sum_equilibrium_n8();
  EXPECT_EQ(diameter(g), 3u);
  EXPECT_TRUE(is_sum_equilibrium(g));
}

TEST(Theorem5, LiteralFig3MatchesThePaperStructurallyButIsRefuted) {
  const Graph g = fig3_diameter3_graph();
  EXPECT_EQ(diameter(g), 3u);
  EXPECT_EQ(girth(g), 4u);
  EXPECT_FALSE(is_sum_equilibrium(g));
}

TEST(Theorem5, Lemma6HoldsOnFig3) {
  // Lemma 6: local-diameter-2 vertices gain nothing from any swap. The six
  // c-vertices have local diameter 2 — certify their stability directly.
  const Graph g = fig3_diameter3_graph();
  for (Vertex i = 1; i <= 3; ++i) {
    EXPECT_TRUE(vertex_is_sum_stable(g, fig3::c(i, 1)));
    EXPECT_TRUE(vertex_is_sum_stable(g, fig3::c(i, 2)));
  }
}

// ----------------------------------------------------------- Theorem 9

TEST(Theorem9, DynamicsEquilibriaHaveSubpolynomialDiameter) {
  // Empirical form: equilibria found by dynamics at growing n keep tiny
  // diameters (the paper proves 2^O(√lg n)); we assert a generous cap that
  // any polynomial-diameter family would eventually violate.
  Xoshiro256ss rng(3000);
  for (const Vertex n : {16u, 32u, 64u}) {
    const Graph start = random_connected_gnm(n, 2 * n, rng);
    DynamicsConfig config;
    config.max_moves = 200'000;
    const DynamicsResult r = run_dynamics(start, config);
    ASSERT_TRUE(r.converged) << n;
    EXPECT_LE(diameter(r.graph), 5u) << "n=" << n;
  }
}

TEST(Theorem9, Corollary11BoundHoldsOnCertifiedEquilibria) {
  // Corollary 11: in a sum equilibrium, adding any edge uv improves u's
  // distance sum by at most 5·n·lg n. Check on the n=8 witness and stars.
  for (const Graph& g : {diameter3_sum_equilibrium_n8(), star(12)}) {
    ASSERT_TRUE(is_sum_equilibrium(g));
    const Vertex n = g.num_vertices();
    const double cap = 5.0 * n * std::log2(static_cast<double>(n));
    const DistanceMatrix dm(g);
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = 0; v < n; ++v) {
        if (u == v || g.has_edge(u, v)) continue;
        // Improvement from adding uv, computed on the matrix.
        std::uint64_t before = 0, after = 0;
        for (Vertex x = 0; x < n; ++x) {
          before += dm.at(u, x);
          after += std::min(dm.at(u, x), static_cast<Vertex>(1 + dm.at(v, x)));
        }
        EXPECT_LE(static_cast<double>(before - after), cap);
      }
    }
  }
}

// ----------------------------------------------------------- Theorem 12

class Theorem12Torus : public ::testing::TestWithParam<Vertex> {};

TEST_P(Theorem12Torus, RotatedTorusPropertiesAtScale) {
  const Vertex k = GetParam();
  const DiagonalTorus torus = rotated_torus(k);
  const Graph& g = torus.graph();
  // Diameter exactly k on n = 2k² vertices → Θ(√n).
  EXPECT_EQ(diameter(g), k);
  EXPECT_TRUE(is_deletion_critical(g));
  EXPECT_TRUE(is_insertion_stable(g));
}

INSTANTIATE_TEST_SUITE_P(Sides, Theorem12Torus, ::testing::Values(3, 4, 5, 6));

TEST(Theorem12, HigherDimensionalTradeoff) {
  // d dimensions → diameter k = Θ(n^{1/d}), stable under d−1 insertions.
  for (const Vertex d : {2u, 3u}) {
    const DiagonalTorus torus(d, 3);
    const DistanceMatrix dm(torus.graph());
    EXPECT_EQ(distance_stats(dm).diameter, 3u);
    EXPECT_TRUE(insertion_stability_at(dm, 0, d - 1).stable) << "d=" << d;
  }
}

// ----------------------------------------------------------- Theorem 13

TEST(Theorem13, EquilibriaAreNearlyDistanceUniformAfterPowering) {
  // Mechanism check: take a certified sum equilibrium, apply the power-graph
  // step; the result concentrates distances on one or two values.
  const Graph g = diameter3_sum_equilibrium_n8();  // diameter 3 equilibrium
  ASSERT_TRUE(is_sum_equilibrium(g));
  const Graph squared = power(g, 2);
  const UniformityResult u = best_almost_uniformity(squared);
  // After squaring, every vertex sees every other within distance 2 →
  // bands {1, 2} hold everyone.
  EXPECT_EQ(diameter(squared), 2u);
  EXPECT_LE(u.epsilon, 1.0 / 8.0 + 1e-12);
}

TEST(Theorem13, SkewTriplesAreRareInEquilibria) {
  // First claim of the proof: few triples (a, b, c) with
  // d(a,c) > p·lg n + d(a,b). On a diameter-3 equilibrium with p lg n > 3
  // there are none — degenerate but direction-checking.
  const Graph g = diameter3_sum_equilibrium_n8();
  const DistanceMatrix dm(g);
  const Vertex n = g.num_vertices();
  const double p_lg_n = 4.0 * std::log2(static_cast<double>(n));
  std::uint64_t skew = 0;
  for (Vertex a = 0; a < n; ++a) {
    for (Vertex b = 0; b < n; ++b) {
      for (Vertex c = 0; c < n; ++c) {
        if (a == b || b == c || a == c) continue;
        if (dm.at(a, c) > p_lg_n + dm.at(a, b)) ++skew;
      }
    }
  }
  EXPECT_EQ(skew, 0u);
}

// ----------------------------------------------------------- Theorem 15

TEST(Theorem15, UniformAbelianCayleyGraphsHaveLogarithmicDiameter) {
  // For each Cayley instance, measure (ε, r) and check
  // diameter ≤ C · lg n / lg(1/ε) for a generous constant when ε < 1/4.
  struct Case {
    Graph g;
    std::string name;
  };
  std::vector<Case> cases;
  cases.push_back({complete(16), "K16"});
  cases.push_back({complete_bipartite(8, 8), "K8,8"});
  cases.push_back({circulant(24, {1, 2, 3, 4, 5}), "C24(1..5)"});
  for (auto& [g, name] : cases) {
    const DistanceMatrix dm(g);
    const UniformityResult u = best_uniformity(dm);
    if (u.epsilon >= 0.25) continue;  // theorem precondition
    const double n = static_cast<double>(g.num_vertices());
    const double bound = 8.0 * std::log2(n) / std::log2(1.0 / u.epsilon);
    EXPECT_LE(static_cast<double>(distance_stats(dm).diameter), std::max(bound, 2.0))
        << name;
  }
}

TEST(Theorem15, PlunneckeStyleGrowthOnCayleySpheres) {
  // The proof uses |qS| ≤ |pS|^{q/p}: ball sizes in Abelian Cayley graphs
  // grow multiplicatively. Check |B_{r+1}| ≤ |B_r|² (a weak consequence)
  // on circulants.
  const Graph g = circulant(50, {1, 7});
  const DistanceMatrix dm(g);
  const auto sizes = sphere_sizes(dm, 0);
  std::uint64_t ball = 0;
  std::vector<std::uint64_t> balls;
  for (const Vertex s : sizes) {
    ball += s;
    balls.push_back(ball);
  }
  for (std::size_t r = 1; r + 1 < balls.size(); ++r) {
    EXPECT_LE(balls[r + 1], balls[r] * balls[r]);
  }
}

}  // namespace
}  // namespace bncg

// Unit tests for PG(2, q) and its incidence graph (§3.1 substrate).
#include "gen/projective.hpp"

#include <gtest/gtest.h>

#include "graph/metrics.hpp"

namespace bncg {
namespace {

TEST(Projective, IsPrimeBasics) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(13));
  EXPECT_FALSE(is_prime(91));  // 7 × 13
  EXPECT_TRUE(is_prime(97));
}

TEST(Projective, RejectsNonPrimeOrder) {
  EXPECT_THROW(ProjectivePlane(4), std::invalid_argument);
  EXPECT_THROW(ProjectivePlane(1), std::invalid_argument);
}

class ProjectivePlaneTest : public ::testing::TestWithParam<Vertex> {};

TEST_P(ProjectivePlaneTest, PointCountIsQSquaredPlusQPlusOne) {
  const Vertex q = GetParam();
  const ProjectivePlane plane(q);
  EXPECT_EQ(plane.num_points(), q * q + q + 1);
}

TEST_P(ProjectivePlaneTest, EveryLineHasQPlusOnePoints) {
  const Vertex q = GetParam();
  const ProjectivePlane plane(q);
  for (Vertex l = 0; l < plane.num_points(); ++l) {
    EXPECT_EQ(plane.points_on_line(l).size(), q + 1u) << "line " << l;
  }
}

TEST_P(ProjectivePlaneTest, AnyTwoPointsShareExactlyOneLine) {
  const Vertex q = GetParam();
  const ProjectivePlane plane(q);
  const Vertex n = plane.num_points();
  for (Vertex p1 = 0; p1 < n; ++p1) {
    for (Vertex p2 = p1 + 1; p2 < n; ++p2) {
      Vertex shared = 0;
      for (Vertex l = 0; l < n; ++l) {
        if (plane.incident(p1, l) && plane.incident(p2, l)) ++shared;
      }
      ASSERT_EQ(shared, 1u) << "points " << p1 << "," << p2;
    }
  }
}

TEST_P(ProjectivePlaneTest, LineThroughIsIncidentToBoth) {
  const Vertex q = GetParam();
  const ProjectivePlane plane(q);
  const Vertex n = plane.num_points();
  for (Vertex p1 = 0; p1 < n; ++p1) {
    for (Vertex p2 = p1 + 1; p2 < n; ++p2) {
      const Vertex l = plane.line_through(p1, p2);
      ASSERT_TRUE(plane.incident(p1, l));
      ASSERT_TRUE(plane.incident(p2, l));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SmallOrders, ProjectivePlaneTest, ::testing::Values(2, 3, 5, 7));

TEST(Projective, FanoIncidenceGraphIsHeawood) {
  // PG(2,2) incidence graph = Heawood graph: 14 vertices, 21 edges,
  // 3-regular, girth 6, diameter 3.
  const Graph g = incidence_graph(ProjectivePlane(2));
  EXPECT_EQ(g.num_vertices(), 14u);
  EXPECT_EQ(g.num_edges(), 21u);
  for (Vertex v = 0; v < 14; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_EQ(girth(g), 6u);
  EXPECT_EQ(diameter(g), 3u);
}

TEST(Projective, IncidenceGraphInvariants) {
  for (Vertex q : {3u, 5u}) {
    const ProjectivePlane plane(q);
    const Graph g = incidence_graph(plane);
    EXPECT_EQ(g.num_vertices(), 2 * plane.num_points());
    EXPECT_EQ(g.num_edges(),
              static_cast<std::size_t>(plane.num_points()) * (q + 1));
    EXPECT_EQ(girth(g), 6u);
    EXPECT_EQ(diameter(g), 3u);
    // Bipartite: no edge inside the point side or the line side.
    const Vertex n = plane.num_points();
    for (const auto& [u, v] : g.edges()) {
      EXPECT_TRUE(u < n && v >= n);
    }
  }
}

}  // namespace
}  // namespace bncg

// Unit tests for graph serialization: edge lists, DOT, graph6 round trips.
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(Io, EdgeListRoundTrip) {
  const Graph g = petersen();
  std::stringstream ss;
  write_edge_list(ss, g);
  EXPECT_EQ(read_edge_list(ss), g);
}

TEST(Io, EdgeListRoundTripOnRandomGraphs) {
  Xoshiro256ss rng(81);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_gnm(20, 30 + trial, rng);
    std::stringstream ss;
    write_edge_list(ss, g);
    EXPECT_EQ(read_edge_list(ss), g);
  }
}

TEST(Io, EdgeListRejectsMalformedInput) {
  {
    std::stringstream ss("not a header");
    EXPECT_THROW((void)read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("3 2\n0 1\n");  // promised 2 edges, provided 1
    EXPECT_THROW((void)read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("3 1\n0 7\n");  // endpoint out of range
    EXPECT_THROW((void)read_edge_list(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("3 2\n0 1\n0 1\n");  // duplicate edge
    EXPECT_THROW((void)read_edge_list(ss), std::invalid_argument);
  }
}

TEST(Io, DotOutputContainsAllEdges) {
  const Graph g = path(3);
  std::stringstream ss;
  write_dot(ss, g, "P3");
  const std::string out = ss.str();
  EXPECT_NE(out.find("graph P3 {"), std::string::npos);
  EXPECT_NE(out.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(out.find("1 -- 2;"), std::string::npos);
}

TEST(Io, Graph6KnownEncodings) {
  // Canonical examples from the format specification: K4 is "C~",
  // the empty graph on 0 vertices is "?", K2 is "A_".
  EXPECT_EQ(to_graph6(complete(4)), "C~");
  EXPECT_EQ(to_graph6(Graph(0)), "?");
  EXPECT_EQ(to_graph6(Graph(1)), "@");
  EXPECT_EQ(to_graph6(complete(2)), "A_");
}

TEST(Io, Graph6RoundTripSmall) {
  for (const Graph& g : {path(7), cycle(9), star(6), petersen(), complete(5),
                         fig3_diameter3_graph(), diameter3_sum_equilibrium_n8()}) {
    EXPECT_EQ(from_graph6(to_graph6(g)), g) << to_string(g);
  }
}

TEST(Io, Graph6RoundTripRandom) {
  Xoshiro256ss rng(82);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_gnm(40, 100, rng);
    EXPECT_EQ(from_graph6(to_graph6(g)), g);
  }
}

TEST(Io, Graph6LargeNUsesExtendedHeader) {
  const Graph g(100);  // n ≥ 63 → 126-prefixed 18-bit size
  const std::string enc = to_graph6(g);
  EXPECT_EQ(static_cast<unsigned char>(enc[0]), 126);
  EXPECT_EQ(from_graph6(enc).num_vertices(), 100u);
}

TEST(Io, Graph6RejectsGarbage) {
  EXPECT_THROW((void)from_graph6(""), std::invalid_argument);
  EXPECT_THROW((void)from_graph6("C"), std::invalid_argument);      // truncated data
  EXPECT_THROW((void)from_graph6("C\x01\x01"), std::invalid_argument);  // bad bytes
}

TEST(Io, Graph6BitOrderMatchesSpec) {
  // Single edge 0-2 on 3 vertices: bits (0,1)=0, (0,2)=1, (1,2)=0 →
  // 010000 → 'O' (16+63=79).
  Graph g(3);
  g.add_edge(0, 2);
  EXPECT_EQ(to_graph6(g), "BO");
}

}  // namespace
}  // namespace bncg

// Unit tests for the usage-cost models (sum / max, +∞ on disconnection).
#include "core/usage_cost.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(UsageCost, SumModelMatchesDistanceSums) {
  const Graph g = path(5);
  BfsWorkspace ws;
  EXPECT_EQ(vertex_cost(g, 0, UsageCost::Sum, ws), 1u + 2 + 3 + 4);
  EXPECT_EQ(vertex_cost(g, 2, UsageCost::Sum, ws), 1u + 1 + 2 + 2);
}

TEST(UsageCost, MaxModelMatchesEccentricity) {
  const Graph g = star(6);
  BfsWorkspace ws;
  EXPECT_EQ(vertex_cost(g, 0, UsageCost::Max, ws), 1u);
  EXPECT_EQ(vertex_cost(g, 3, UsageCost::Max, ws), 2u);
}

TEST(UsageCost, DisconnectionIsInfiniteInBothModels) {
  Graph g(3);
  g.add_edge(0, 1);
  BfsWorkspace ws;
  EXPECT_EQ(vertex_cost(g, 0, UsageCost::Sum, ws), kInfCost);
  EXPECT_EQ(vertex_cost(g, 0, UsageCost::Max, ws), kInfCost);
  EXPECT_EQ(vertex_cost(g, 2, UsageCost::Max, ws), kInfCost);
}

TEST(UsageCost, SingletonGraphCostsZero) {
  const Graph g(1);
  BfsWorkspace ws;
  EXPECT_EQ(vertex_cost(g, 0, UsageCost::Sum, ws), 0u);
  EXPECT_EQ(vertex_cost(g, 0, UsageCost::Max, ws), 0u);
}

TEST(UsageCost, CostAtMostAgreesWithExactCost) {
  Xoshiro256ss rng(404);
  BfsWorkspace ws;
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_connected_gnm(16, 24, rng);
    for (Vertex v = 0; v < g.num_vertices(); v += 3) {
      for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
        const std::uint64_t exact = vertex_cost(g, v, model, ws);
        EXPECT_TRUE(vertex_cost_at_most(g, v, model, exact, ws));
        if (exact > 0) {
          EXPECT_FALSE(vertex_cost_at_most(g, v, model, exact - 1, ws));
        }
      }
    }
  }
}

TEST(UsageCost, CostAtMostDisconnectedNeverPasses) {
  Graph g(4);
  g.add_edge(0, 1);
  BfsWorkspace ws;
  EXPECT_FALSE(vertex_cost_at_most(g, 0, UsageCost::Max, 100, ws));
}

}  // namespace
}  // namespace bncg

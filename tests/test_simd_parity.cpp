// Differential fuzz suite for the runtime-dispatched SIMD kernels
// (util/simd.hpp): every dispatch level compiled into the binary and
// supported by the host CPU must be bit-identical to the scalar reference
// table — kernel by kernel on random, unaligned-tail, and all-infinity
// inputs, and end to end on scan tables, certification witnesses, and
// whole propose/commit trajectories across 200+ seeded instances at both
// models and both storage widths. Compiled into the seeded property
// harness (bncg_property_tests, CTest label "tier1-property").
//
// The harness pins levels via simd_set_level(); the BNCG_SIMD env knob
// itself is exercised by the forced-scalar CI leg, which runs this whole
// suite with every level collapsed to scalar (the cross-level loops then
// compare scalar to scalar — vacuous there, load-bearing everywhere else).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/search_state.hpp"
#include "core/swap_engine.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/dist_width.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace bncg {
namespace {

/// Every level this binary+CPU can actually run, scalar first.
std::vector<SimdLevel> available_levels() {
  std::vector<SimdLevel> levels{SimdLevel::Scalar};
  if (simd_max_level() >= SimdLevel::Avx2) levels.push_back(SimdLevel::Avx2);
  if (simd_max_level() >= SimdLevel::Avx512) levels.push_back(SimdLevel::Avx512);
  return levels;
}

/// RAII: restore the entry level (the BNCG_SIMD-resolved one) after a test
/// body pinned something else.
struct LevelGuard {
  SimdLevel saved = simd_active_level();
  ~LevelGuard() { simd_set_level(saved); }
};

/// Buffer lengths covering sub-vector, exact-vector, and ragged-tail sizes
/// for 32- and 64-lane kernels.
constexpr std::uint32_t kSizes[] = {1,  2,  3,   7,   8,   15,  16,  31,  32, 33,
                                    63, 64, 65,  100, 127, 128, 129, 255, 256, 257,
                                    511, 513, 1000};

template <typename Dist>
Dist rand_dist(Xoshiro256ss& rng, Dist inf) {
  // Bias toward the interesting edge: the capped-infinity sentinel and its
  // immediate neighborhood, where every compare identity must hold exactly.
  const std::uint64_t roll = rng.below(10);
  if (roll == 0) return inf;
  if (roll == 1) return static_cast<Dist>(inf - rng.below(3));
  return static_cast<Dist>(rng.below(std::uint64_t{inf} + 1));
}

template <typename Dist>
std::vector<Dist> rand_row(Xoshiro256ss& rng, std::uint32_t n, Dist inf, bool all_inf) {
  std::vector<Dist> row(n);
  for (auto& v : row) v = all_inf ? inf : rand_dist(rng, inf);
  return row;
}

/// Runs `body` once per available non-scalar level with that level pinned,
/// after capturing scalar expectations via `expect`.
template <typename Expect, typename Body>
void for_each_level(Expect&& expect, Body&& body) {
  LevelGuard guard;
  simd_set_level(SimdLevel::Scalar);
  expect();
  for (const SimdLevel level : available_levels()) {
    if (level == SimdLevel::Scalar) continue;
    ASSERT_EQ(simd_set_level(level), level);
    body(level);
  }
}

template <typename Dist>
void fuzz_kernels_width(std::uint64_t seed) {
  const Dist inf = kSearchInfFor<Dist>;
  Xoshiro256ss rng(seed);
  for (const std::uint32_t n : kSizes) {
    for (int variant = 0; variant < 4; ++variant) {
      const bool all_inf = variant == 3;
      // +3 slack so an offset start exercises unaligned bases too.
      const std::uint32_t off = variant % 3;
      auto m_buf = rand_row<Dist>(rng, n + 3, inf, all_inf);
      auto c_buf = rand_row<Dist>(rng, n + 3, inf, false);
      const Dist* m = m_buf.data() + off;
      const Dist* c = c_buf.data() + off;
      const std::string ctx = "n=" + std::to_string(n) + " variant=" + std::to_string(variant) +
                              " width=" + std::to_string(sizeof(Dist) * 8);

      // --- pure reductions -------------------------------------------------
      std::uint64_t want_sum = 0, want_max = 0, want_del = 0;
      std::uint32_t want_rsum = 0;
      Dist want_rmax = 0, want_eu = 0, want_ev = 0;
      for_each_level(
          [&] {
            const auto& k = simd::kernels<Dist>();
            want_sum = k.combine_sum(m, c, n, inf);
            want_max = k.combine_max(m, c, n, inf);
            want_del = k.deletion_ecc(m, n, inf);
            k.row_sum_max(m, n, &want_rsum, &want_rmax);
            k.finite_max2(m, c, n, inf, &want_eu, &want_ev);
          },
          [&](SimdLevel level) {
            const auto& k = simd::kernels<Dist>();
            const std::string lctx = ctx + " level=" + simd_level_name(level);
            EXPECT_EQ(k.combine_sum(m, c, n, inf), want_sum) << lctx;
            EXPECT_EQ(k.combine_max(m, c, n, inf), want_max) << lctx;
            EXPECT_EQ(k.deletion_ecc(m, n, inf), want_del) << lctx;
            std::uint32_t rsum = 0;
            Dist rmax = 0, eu = 0, ev = 0;
            k.row_sum_max(m, n, &rsum, &rmax);
            k.finite_max2(m, c, n, inf, &eu, &ev);
            EXPECT_EQ(rsum, want_rsum) << lctx;
            EXPECT_EQ(rmax, want_rmax) << lctx;
            EXPECT_EQ(eu, want_eu) << lctx;
            EXPECT_EQ(ev, want_ev) << lctx;
          });

      // --- scan-table fold + select + R1 -----------------------------------
      const std::uint32_t folds = 1 + static_cast<std::uint32_t>(rng.below(5));
      std::vector<std::vector<Dist>> fold_rows;
      std::vector<std::uint32_t> fold_ids;
      for (std::uint32_t i = 0; i < folds; ++i) {
        fold_rows.push_back(rand_row<Dist>(rng, n, inf, false));
        fold_ids.push_back(static_cast<std::uint32_t>(rng.below(n)));
      }
      const std::uint32_t w_sel = fold_ids.front();
      std::vector<Dist> want_min1, want_min2, want_sel(n);
      std::vector<std::uint32_t> want_arg, want_r1(n, 0);
      const auto run_tables = [&](std::vector<Dist>& min1, std::vector<Dist>& min2,
                                  std::vector<std::uint32_t>& argmin, std::vector<Dist>& sel,
                                  std::vector<std::uint32_t>& r1) {
        const auto& k = simd::kernels<Dist>();
        min1.assign(n, inf);
        min2.assign(n, inf);
        argmin.assign(n, kNoVertex);
        for (std::uint32_t i = 0; i < folds; ++i) {
          k.scan_min_update(min1.data(), min2.data(), argmin.data(), fold_rows[i].data(),
                            fold_ids[i], n);
        }
        k.select_mrow(sel.data(), min1.data(), min2.data(), argmin.data(), w_sel, n);
        r1.assign(n, 0x10000);  // nonzero base: catches add/sub sign slips
        for (std::uint32_t i = 0; i < folds; ++i) {
          k.r1_add(r1.data(), min1[fold_ids[i] % n], fold_rows[i].data(), n);
        }
        k.r1_sub(r1.data(), min1[fold_ids[0] % n], fold_rows[0].data(), n);
      };
      for_each_level(
          [&] { run_tables(want_min1, want_min2, want_arg, want_sel, want_r1); },
          [&](SimdLevel level) {
            std::vector<Dist> min1, min2, sel(n);
            std::vector<std::uint32_t> argmin, r1;
            run_tables(min1, min2, argmin, sel, r1);
            const std::string lctx = ctx + " level=" + simd_level_name(level);
            EXPECT_EQ(min1, want_min1) << lctx;
            EXPECT_EQ(min2, want_min2) << lctx;
            EXPECT_EQ(argmin, want_arg) << lctx;
            EXPECT_EQ(sel, want_sel) << lctx;
            EXPECT_EQ(r1, want_r1) << lctx;
          });

      // --- addition identity row (incl. in-place aliasing) -----------------
      auto src = rand_row<Dist>(rng, n, inf, all_inf);
      const auto ru = rand_row<Dist>(rng, n, inf, false);
      const auto rv = rand_row<Dist>(rng, n, inf, false);
      const Dist au = static_cast<Dist>(rng.below(inf));
      const Dist av = static_cast<Dist>(rng.below(inf));
      std::vector<Dist> want_dst(n), want_inplace;
      for_each_level(
          [&] {
            const auto& k = simd::kernels<Dist>();
            k.addition_row(src.data(), want_dst.data(), ru.data(), rv.data(), au, av, n, inf);
            want_inplace = src;
            k.addition_row(want_inplace.data(), want_inplace.data(), ru.data(), rv.data(), au,
                           av, n, inf);
          },
          [&](SimdLevel level) {
            const auto& k = simd::kernels<Dist>();
            std::vector<Dist> dst(n);
            k.addition_row(src.data(), dst.data(), ru.data(), rv.data(), au, av, n, inf);
            std::vector<Dist> inplace = src;
            k.addition_row(inplace.data(), inplace.data(), ru.data(), rv.data(), au, av, n, inf);
            const std::string lctx = ctx + " level=" + simd_level_name(level);
            EXPECT_EQ(dst, want_dst) << lctx;
            EXPECT_EQ(inplace, want_inplace) << lctx;
          });

      // --- filters ----------------------------------------------------------
      const std::int32_t caps[] = {-1, 0, static_cast<std::int32_t>(inf) / 2,
                                   static_cast<std::int32_t>(inf) - 1,
                                   static_cast<std::int32_t>(inf)};
      const std::uint32_t skip = static_cast<std::uint32_t>(rng.below(n + 1));  // may be == n
      for (const std::int32_t cap : caps) {
        std::vector<std::uint32_t> want_above, want_below, want_eq1, want_gt1;
        for_each_level(
            [&] {
              const auto& k = simd::kernels<Dist>();
              want_above.resize(n);
              want_above.resize(k.collect_above(m, n, cap, skip, want_above.data()));
              want_below.resize(n);
              want_below.resize(k.collect_below(m, n, cap, skip, want_below.data()));
              want_eq1.resize(n);
              want_eq1.resize(k.collect_absdiff_eq1(m, c, n, want_eq1.data()));
              want_gt1.resize(n);
              want_gt1.resize(k.collect_absdiff_gt1(m, c, n, want_gt1.data()));
            },
            [&](SimdLevel level) {
              const auto& k = simd::kernels<Dist>();
              std::vector<std::uint32_t> out(n);
              const std::string lctx =
                  ctx + " cap=" + std::to_string(cap) + " level=" + simd_level_name(level);
              std::vector<std::uint32_t> got(out.begin(),
                                             out.begin() + k.collect_above(m, n, cap, skip,
                                                                           out.data()));
              EXPECT_EQ(got, want_above) << lctx;
              got.assign(out.begin(),
                         out.begin() + k.collect_below(m, n, cap, skip, out.data()));
              EXPECT_EQ(got, want_below) << lctx;
              // {> cap} from collect_above and {< cap+1} = {≤ cap} from
              // collect_below partition {0..n−1} \ {skip}.
              got.assign(out.begin(),
                         out.begin() + k.collect_below(m, n, cap + 1, skip, out.data()));
              EXPECT_EQ(want_above.size() + got.size(),
                        static_cast<std::size_t>(n) - (skip < n ? 1 : 0))
                  << lctx;
              got.assign(out.begin(),
                         out.begin() + k.collect_absdiff_eq1(m, c, n, out.data()));
              EXPECT_EQ(got, want_eq1) << lctx;
              got.assign(out.begin(),
                         out.begin() + k.collect_absdiff_gt1(m, c, n, out.data()));
              EXPECT_EQ(got, want_gt1) << lctx;
            });
      }

      // --- k-way min fold ---------------------------------------------------
      const auto fold_src = rand_row<Dist>(rng, n, inf, all_inf);
      const auto fold_base = rand_row<Dist>(rng, n, inf, false);
      std::vector<Dist> want_fold;
      for_each_level(
          [&] {
            const auto& k = simd::kernels<Dist>();
            want_fold = fold_base;
            k.min_fold(want_fold.data(), fold_src.data(), n);
          },
          [&](SimdLevel level) {
            const auto& k = simd::kernels<Dist>();
            std::vector<Dist> dst = fold_base;
            k.min_fold(dst.data(), fold_src.data(), n);
            EXPECT_EQ(dst, want_fold) << ctx << " level=" << simd_level_name(level);
          });
    }
  }
}

TEST(SimdParity, KernelsMatchScalarU8) { fuzz_kernels_width<std::uint8_t>(0x51D8); }

TEST(SimdParity, KernelsMatchScalarU16) { fuzz_kernels_width<std::uint16_t>(0x51D16); }

TEST(SimdParity, OrGatherMatchesScalar) {
  Xoshiro256ss rng(0x06A7);
  for (const std::uint32_t n : kSizes) {
    std::vector<std::uint64_t> words(n);
    for (auto& w : words) w = rng();
    for (const std::uint32_t count : {std::uint32_t{0}, std::uint32_t{1}, std::uint32_t{3},
                                      std::uint32_t{4}, std::uint32_t{7}, std::uint32_t{8},
                                      std::uint32_t{9}, n}) {
      std::vector<std::uint32_t> idx(count);
      for (auto& i : idx) i = static_cast<std::uint32_t>(rng.below(n));
      std::uint64_t want = 0;
      for_each_level([&] { want = simd::words().or_gather(words.data(), idx.data(), count); },
                     [&](SimdLevel level) {
                       EXPECT_EQ(simd::words().or_gather(words.data(), idx.data(), count), want)
                           << "n=" << n << " count=" << count << " level="
                           << simd_level_name(level);
                     });
    }
  }
}

TEST(SimdParity, LevelControls) {
  LevelGuard guard;
  // The clamp: requesting above the max lands on the max; requesting scalar
  // always succeeds; names round-trip the BNCG_SIMD vocabulary.
  EXPECT_EQ(simd_set_level(SimdLevel::Scalar), SimdLevel::Scalar);
  EXPECT_EQ(simd_active_level(), SimdLevel::Scalar);
  EXPECT_EQ(simd_set_level(SimdLevel::Avx512),
            std::min(SimdLevel::Avx512, simd_max_level()));
  EXPECT_EQ(simd_active_level(), simd_max_level());
  EXPECT_STREQ(simd_level_name(SimdLevel::Scalar), "scalar");
  EXPECT_STREQ(simd_level_name(SimdLevel::Avx2), "avx2");
  EXPECT_STREQ(simd_level_name(SimdLevel::Avx512), "avx512");
}

// ------------------------------------------------------------- end to end

Graph parity_instance(int trial, Xoshiro256ss& rng) {
  switch (trial % 6) {
    case 0: {
      const Vertex n = 6 + static_cast<Vertex>(rng.below(13));
      const std::size_t max_edges = static_cast<std::size_t>(n) * (n - 1) / 2;
      const std::size_t m =
          std::clamp<std::size_t>(10 + rng.below(26), std::size_t{n} - 1, max_edges);
      return random_connected_gnm(n, m, rng);
    }
    case 1:
      return random_tree(6 + static_cast<Vertex>(rng.below(13)), rng);
    case 2:
      return cycle(5 + static_cast<Vertex>(rng.below(14)));
    case 3:
      return path(6 + static_cast<Vertex>(rng.below(12)));
    case 4: {
      // Disconnection-prone: masked sweeps hit all-infinity rows.
      const Vertex n = 8 + static_cast<Vertex>(rng.below(9));
      return random_gnm(n, n + rng.below(n), rng);
    }
    default:
      return random_connected_gnm(10 + static_cast<Vertex>(rng.below(8)), 18 + rng.below(18),
                                  rng);
  }
}

/// One agent's full observable surface at the current level: certificate
/// verdict + witness + move count from the engine, and the SearchState scan
/// tables of a few agents.
struct Snapshot {
  bool is_eq = false;
  std::uint64_t moves = 0;
  std::optional<Deviation> witness;
  std::vector<SearchState::ScanTables> tables;
  std::uint64_t unrest = 0;

  bool operator==(const Snapshot& o) const {
    const auto same_dev = [](const std::optional<Deviation>& a,
                             const std::optional<Deviation>& b) {
      if (a.has_value() != b.has_value()) return false;
      if (!a) return true;
      return a->swap.v == b->swap.v && a->swap.remove_w == b->swap.remove_w &&
             a->swap.add_w == b->swap.add_w && a->cost_before == b->cost_before &&
             a->cost_after == b->cost_after && a->kind == b->kind;
    };
    if (is_eq != o.is_eq || moves != o.moves || unrest != o.unrest ||
        !same_dev(witness, o.witness) || tables.size() != o.tables.size()) {
      return false;
    }
    for (std::size_t i = 0; i < tables.size(); ++i) {
      if (tables[i].min1 != o.tables[i].min1 || tables[i].min2 != o.tables[i].min2 ||
          tables[i].argmin != o.tables[i].argmin || tables[i].r1 != o.tables[i].r1) {
        return false;
      }
    }
    return true;
  }
};

Snapshot snapshot_instance(const Graph& g, UsageCost model, WidthPolicy width) {
  Snapshot snap;
  const bool deletions = model == UsageCost::Max;
  SwapEngine engine(g, width);
  const EquilibriumCertificate cert = engine.certify(model, deletions);
  snap.is_eq = cert.is_equilibrium;
  snap.moves = cert.moves_checked;
  snap.witness = cert.witness;
  SearchState state(g, model, deletions, /*parallel=*/true, width);
  snap.unrest = state.unrest();
  const Vertex probe = std::min<Vertex>(g.num_vertices(), 3);
  for (Vertex a = 0; a < probe; ++a) snap.tables.push_back(state.debug_scan_tables(a));
  return snap;
}

TEST(SimdParity, EndToEndAcrossLevels) {
  // 104 instances × both models × both widths = 416 certification+scan-table
  // comparisons per non-scalar level.
  LevelGuard guard;
  Xoshiro256ss rng(0xE2E);
  for (int trial = 0; trial < 104; ++trial) {
    const Graph g = parity_instance(trial, rng);
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      for (const WidthPolicy width : {WidthPolicy::ForceU8, WidthPolicy::ForceU16}) {
        simd_set_level(SimdLevel::Scalar);
        const Snapshot want = snapshot_instance(g, model, width);
        for (const SimdLevel level : available_levels()) {
          if (level == SimdLevel::Scalar) continue;
          simd_set_level(level);
          const Snapshot got = snapshot_instance(g, model, width);
          EXPECT_TRUE(got == want)
              << "trial " << trial << " model " << (model == UsageCost::Sum ? "sum" : "max")
              << " width " << (width == WidthPolicy::ForceU8 ? "u8" : "u16") << " level "
              << simd_level_name(level);
        }
      }
    }
  }
}

/// Deterministic greedy trajectory: propose a pseudo-random toggle each
/// step, commit iff the proposal strictly lowers unrest. Returns the full
/// decision trace — any cross-level divergence in any kernel output along
/// the way changes the trace.
std::vector<std::uint64_t> run_trajectory(const Graph& g0, UsageCost model, std::uint64_t seed) {
  Xoshiro256ss rng(seed);
  SearchState state(g0, model, model == UsageCost::Max, /*parallel=*/true, WidthPolicy::Auto);
  std::vector<std::uint64_t> trace;
  const Vertex n = state.num_vertices();
  std::uint64_t current = state.unrest();
  trace.push_back(current);
  for (int step = 0; step < 24; ++step) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    Vertex v = static_cast<Vertex>(rng.below(n));
    if (v == u) v = (v + 1) % n;
    const ToggleShape shape = state.propose_toggle(u, v);
    if (!shape.connected) {
      trace.push_back(~std::uint64_t{0});
      continue;
    }
    const std::uint64_t proposal = state.proposal_unrest();
    trace.push_back(proposal);
    if (proposal < current) {
      state.commit();
      current = proposal;
    }
  }
  return trace;
}

TEST(SimdParity, AnnealTrajectoriesMatchAcrossLevels) {
  LevelGuard guard;
  Xoshiro256ss rng(0x7247);
  for (int trial = 0; trial < 48; ++trial) {
    const Graph g = parity_instance(trial, rng);
    if (g.num_vertices() < 4) continue;
    const std::uint64_t seed = rng();
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      simd_set_level(SimdLevel::Scalar);
      const std::vector<std::uint64_t> want = run_trajectory(g, model, seed);
      for (const SimdLevel level : available_levels()) {
        if (level == SimdLevel::Scalar) continue;
        simd_set_level(level);
        EXPECT_EQ(run_trajectory(g, model, seed), want)
            << "trial " << trial << " model " << (model == UsageCost::Sum ? "sum" : "max")
            << " level " << simd_level_name(level);
      }
    }
  }
}

}  // namespace
}  // namespace bncg

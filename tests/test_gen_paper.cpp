// Unit tests for the paper's constructions: the Figure 3 graph and the
// Figure 4 / d-dimensional diagonal tori, including the closed-form distance
// formula the Theorem 12 proof relies on.
#include "gen/paper.hpp"

#include <gtest/gtest.h>

#include "graph/apsp.hpp"
#include "graph/metrics.hpp"

namespace bncg {
namespace {

TEST(Fig3, VertexAndEdgeCounts) {
  const Graph g = fig3_diameter3_graph();
  EXPECT_EQ(g.num_vertices(), 13u);
  // 3 hub edges + 6 b–c edges + 6 d–c edges + 3 matchings × 2 edges.
  EXPECT_EQ(g.num_edges(), 21u);
}

TEST(Fig3, DiameterIsExactlyThree) {
  EXPECT_EQ(diameter(fig3_diameter3_graph()), 3u);
}

TEST(Fig3, GirthIsFour) {
  // The proof applies Lemma 8, which needs girth 4 (neighbor sets are
  // independent sets).
  EXPECT_EQ(girth(fig3_diameter3_graph()), 4u);
}

TEST(Fig3, LocalDiametersMatchThePaper) {
  // "vertices a, b_i, and d_i have local diameter 3, while vertices c_{i,k}
  //  have local diameter 2."
  const Graph g = fig3_diameter3_graph();
  const auto ecc = eccentricities(g);
  EXPECT_EQ(ecc[fig3::kA], 3u);
  for (Vertex i = 1; i <= 3; ++i) {
    EXPECT_EQ(ecc[fig3::b(i)], 3u) << "b" << i;
    EXPECT_EQ(ecc[fig3::d(i)], 3u) << "d" << i;
    EXPECT_EQ(ecc[fig3::c(i, 1)], 2u) << "c" << i << ",1";
    EXPECT_EQ(ecc[fig3::c(i, 2)], 2u) << "c" << i << ",2";
  }
}

TEST(Fig3, MatchingStructureIsExactlyAsSpecified) {
  const Graph g = fig3_diameter3_graph();
  // Straight matchings.
  EXPECT_TRUE(g.has_edge(fig3::c(1, 1), fig3::c(2, 1)));
  EXPECT_TRUE(g.has_edge(fig3::c(1, 2), fig3::c(2, 2)));
  EXPECT_TRUE(g.has_edge(fig3::c(2, 1), fig3::c(3, 1)));
  EXPECT_TRUE(g.has_edge(fig3::c(2, 2), fig3::c(3, 2)));
  // Crossed matching between C1 and C3.
  EXPECT_TRUE(g.has_edge(fig3::c(1, 1), fig3::c(3, 2)));
  EXPECT_TRUE(g.has_edge(fig3::c(1, 2), fig3::c(3, 1)));
  EXPECT_FALSE(g.has_edge(fig3::c(1, 1), fig3::c(3, 1)));
  // No matching within a Ci pair.
  EXPECT_FALSE(g.has_edge(fig3::c(1, 1), fig3::c(1, 2)));
}

TEST(Fig3, DegreesAreAsExpected) {
  const Graph g = fig3_diameter3_graph();
  EXPECT_EQ(g.degree(fig3::kA), 3u);
  for (Vertex i = 1; i <= 3; ++i) {
    EXPECT_EQ(g.degree(fig3::b(i)), 3u);
    EXPECT_EQ(g.degree(fig3::d(i)), 2u);
    EXPECT_EQ(g.degree(fig3::c(i, 1)), 4u);  // b_i, d_i, two matching edges
    EXPECT_EQ(g.degree(fig3::c(i, 2)), 4u);
  }
}

class DiagonalTorusTest : public ::testing::TestWithParam<std::pair<Vertex, Vertex>> {};

TEST_P(DiagonalTorusTest, SizeDegreeAndDistanceFormula) {
  const auto [dim, k] = GetParam();
  const DiagonalTorus torus(dim, k);
  const Graph& g = torus.graph();

  // n = 2·k^dim.
  std::uint64_t expected_n = 2;
  for (Vertex t = 0; t < dim; ++t) expected_n *= k;
  EXPECT_EQ(g.num_vertices(), expected_n);

  // 2^dim-regular.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(g.degree(v), Vertex{1} << dim) << "vertex " << v;
  }

  // Closed-form distance equals BFS distance (validates construction and
  // the Theorem 12 proof's distance formula simultaneously).
  const DistanceMatrix dm(g);
  ASSERT_TRUE(dm.connected());
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(dm.at(u, v), torus.expected_distance(u, v))
          << "pair " << u << "," << v << " dim=" << dim << " k=" << k;
    }
  }

  // Local diameter of every vertex is exactly k; diameter is k.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(dm.eccentricity(v), k);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallSizes, DiagonalTorusTest,
                         ::testing::Values(std::pair<Vertex, Vertex>{1, 3},
                                           std::pair<Vertex, Vertex>{2, 2},
                                           std::pair<Vertex, Vertex>{2, 3},
                                           std::pair<Vertex, Vertex>{2, 4},
                                           std::pair<Vertex, Vertex>{2, 5},
                                           std::pair<Vertex, Vertex>{3, 2},
                                           std::pair<Vertex, Vertex>{3, 3},
                                           std::pair<Vertex, Vertex>{4, 2}));

TEST(DiagonalTorus, CoordinateRoundTrip) {
  const DiagonalTorus torus(3, 4);
  for (Vertex v = 0; v < torus.num_vertices(); ++v) {
    EXPECT_EQ(torus.id(torus.coords(v)), v);
  }
}

TEST(DiagonalTorus, CoordsShareParity) {
  const DiagonalTorus torus(2, 5);
  for (Vertex v = 0; v < torus.num_vertices(); ++v) {
    const auto c = torus.coords(v);
    EXPECT_EQ(c[0] % 2, c[1] % 2);
  }
}

TEST(DiagonalTorus, RejectsBadParameters) {
  EXPECT_THROW(DiagonalTorus(0, 3), std::invalid_argument);
  EXPECT_THROW(DiagonalTorus(2, 1), std::invalid_argument);
}

TEST(DiagonalTorus, MixedParityCoordinateRejected) {
  const DiagonalTorus torus(2, 3);
  EXPECT_THROW((void)torus.id({0, 1}), std::invalid_argument);
}

TEST(DiagonalTorus, RotatedTorusHelperIsTwoDimensional) {
  const DiagonalTorus torus = rotated_torus(4);
  EXPECT_EQ(torus.dim(), 2u);
  EXPECT_EQ(torus.num_vertices(), 32u);
  EXPECT_EQ(torus.expected_local_diameter(), 4u);
}

TEST(DiagonalTorus, IsVertexTransitiveByDistanceProfile) {
  const DiagonalTorus torus = rotated_torus(4);
  EXPECT_TRUE(has_uniform_distance_profile(DistanceMatrix(torus.graph())));
}

}  // namespace
}  // namespace bncg

// Differential tests: the delta-evaluation SwapEngine against the naive
// BFS-per-candidate oracle, over hundreds of random instances in both usage
// cost models. The engine mirrors the oracle's scan order and acceptance
// rules, so per-agent deviations must agree *exactly* (same swap, same
// costs, same kind, same move counts); whole-graph certificates must agree
// on verdict, witness costs and move counts (the witness tuple itself may
// differ under OpenMP tie-breaking).
#include "core/swap_engine.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "core/equilibrium.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

void expect_same_deviation(const std::optional<Deviation>& got,
                           const std::optional<Deviation>& want, const char* what) {
  ASSERT_EQ(got.has_value(), want.has_value()) << what;
  if (!want) return;
  EXPECT_EQ(got->swap, want->swap) << what;
  EXPECT_EQ(got->cost_before, want->cost_before) << what;
  EXPECT_EQ(got->cost_after, want->cost_after) << what;
  EXPECT_EQ(got->kind, want->kind) << what;
}

/// Compares every per-agent scan variant on one instance.
void expect_engine_matches_oracle(const Graph& g) {
  SwapEngine engine(g);
  SwapEngine::Scratch scratch;
  BfsWorkspace ws;
  const Vertex n = g.num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    // Per-agent move accounting: the full scan enumerates one candidate per
    // (incident edge, non-neighbor ≠ v) pair, plus one deletion check per
    // incident edge when the max deletion clause participates.
    const std::uint64_t swap_moves =
        static_cast<std::uint64_t>(g.degree(v)) * (n - 1 - g.degree(v));
    std::uint64_t engine_moves = 0;

    expect_same_deviation(engine.best_deviation(v, UsageCost::Sum, scratch, false, &engine_moves),
                          naive::best_sum_deviation(g, v, ws), "best sum");
    EXPECT_EQ(engine_moves, swap_moves);
    expect_same_deviation(engine.first_deviation(v, UsageCost::Sum, scratch),
                          naive::first_sum_deviation(g, v, ws), "first sum");
    engine_moves = 0;
    expect_same_deviation(
        engine.best_deviation(v, UsageCost::Max, scratch, /*include_deletions=*/true,
                              &engine_moves),
        [&] {
          // Oracle "best with deletions" mirrors the max certifier's
          // per-agent scan: best improving swap, with NonCriticalDelete
          // witnesses competing under the certifier's tie rule — recover it
          // from the single-vertex subgraph certificate.
          auto best = naive::best_max_deviation(g, v, ws);
          if (!best) {
            // No improving swap: the first neutral deletion (if any) is what
            // the deletion-inclusive scan reports.
            best = naive::first_max_deviation(g, v, ws, /*include_deletions=*/true);
          }
          return best;
        }(),
        "best max+del");
    EXPECT_EQ(engine_moves, swap_moves + g.degree(v));
    expect_same_deviation(engine.best_deviation(v, UsageCost::Max, scratch),
                          naive::best_max_deviation(g, v, ws), "best max");
    expect_same_deviation(
        engine.first_deviation(v, UsageCost::Max, scratch, /*include_deletions=*/true),
        naive::first_max_deviation(g, v, ws, /*include_deletions=*/true), "first max+del");
  }
}

/// Whole-graph certificates: verdict, witness costs, move counts.
void expect_certificates_match(const Graph& g) {
  const SwapEngine engine(g);

  const EquilibriumCertificate sum_got = engine.certify(UsageCost::Sum, false);
  const EquilibriumCertificate sum_want = naive::certify_sum_equilibrium(g);
  EXPECT_EQ(sum_got.is_equilibrium, sum_want.is_equilibrium);
  EXPECT_EQ(sum_got.moves_checked, sum_want.moves_checked);
  ASSERT_EQ(sum_got.witness.has_value(), sum_want.witness.has_value());
  if (sum_want.witness) {
    EXPECT_EQ(sum_got.witness->cost_after, sum_want.witness->cost_after);
  }

  const EquilibriumCertificate max_got = engine.certify(UsageCost::Max, true);
  const EquilibriumCertificate max_want = naive::certify_max_equilibrium(g);
  EXPECT_EQ(max_got.is_equilibrium, max_want.is_equilibrium);
  EXPECT_EQ(max_got.moves_checked, max_want.moves_checked);
  ASSERT_EQ(max_got.witness.has_value(), max_want.witness.has_value());
  if (max_want.witness) {
    EXPECT_EQ(max_got.witness->cost_after, max_want.witness->cost_after);
  }
}

// --------------------------------------------------- randomized differential

TEST(SwapEngineDifferential, RandomConnectedGnmAgainstOracle) {
  // The headline differential battery: ≥200 connected G(n, m) instances,
  // every agent, both models, exact agreement.
  Xoshiro256ss rng(0x5EED0);
  for (int trial = 0; trial < 140; ++trial) {
    const Vertex n = 5 + static_cast<Vertex>(rng.below(16));
    const std::size_t max_extra = static_cast<std::size_t>(n) * (n - 1) / 2 - (n - 1);
    const std::size_t m = (n - 1) + rng.below(std::min<std::size_t>(max_extra, 2 * n) + 1);
    const Graph g = random_connected_gnm(n, m, rng);
    expect_engine_matches_oracle(g);
  }
}

TEST(SwapEngineDifferential, RandomTreesAgainstOracle) {
  // Trees drive the sparse queue-BFS fallback inside the engine's APSP.
  Xoshiro256ss rng(0x7EE);
  for (int trial = 0; trial < 40; ++trial) {
    const Vertex n = 4 + static_cast<Vertex>(rng.below(14));
    expect_engine_matches_oracle(random_tree(n, rng));
  }
}

TEST(SwapEngineDifferential, DisconnectedGraphsAgainstOracle) {
  // Disconnected instances exercise the ∞-cost paths (reconnecting swaps,
  // far sets containing unreachable vertices).
  Xoshiro256ss rng(0xD15);
  for (int trial = 0; trial < 40; ++trial) {
    const Vertex n = 5 + static_cast<Vertex>(rng.below(12));
    const Graph g = random_gnm(n, n - 2, rng);
    expect_engine_matches_oracle(g);
  }
}

TEST(SwapEngineDifferential, CertificatesOnRandomInstances) {
  Xoshiro256ss rng(0xCE27);
  for (int trial = 0; trial < 60; ++trial) {
    const Vertex n = 5 + static_cast<Vertex>(rng.below(12));
    const std::size_t m = (n - 1) + rng.below(n + 1);
    expect_certificates_match(random_connected_gnm(n, m, rng));
  }
}

// ------------------------------------------------------------- known cases

TEST(SwapEngine, AgreesOnClassicFamilies) {
  for (const Graph& g : {star(9), complete(7), path(8), cycle(5), cycle(12)}) {
    expect_engine_matches_oracle(g);
    expect_certificates_match(g);
  }
}

TEST(SwapEngine, StarIsStableUnderBothModels) {
  const SwapEngine engine(star(10));
  EXPECT_TRUE(engine.certify(UsageCost::Sum, false).is_equilibrium);
  EXPECT_TRUE(engine.certify(UsageCost::Max, false).is_equilibrium);
}

TEST(SwapEngine, WitnessReplaysToClaimedCost) {
  // Machine-check the engine's witness: applying the swap must produce
  // exactly the claimed post-move cost.
  Xoshiro256ss rng(0x11E9);
  BfsWorkspace ws;
  for (int trial = 0; trial < 30; ++trial) {
    const Vertex n = 6 + static_cast<Vertex>(rng.below(12));
    const Graph g = random_connected_gnm(n, n + rng.below(n), rng);
    SwapEngine engine(g);
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      const auto dev = [&]() -> std::optional<Deviation> {
        SwapEngine::Scratch scratch;
        for (Vertex v = 0; v < n; ++v) {
          if (auto d = engine.best_deviation(v, model, scratch)) return d;
        }
        return std::nullopt;
      }();
      if (!dev) continue;
      Graph h = g;
      EXPECT_EQ(vertex_cost(h, dev->swap.v, model, ws), dev->cost_before);
      apply_swap(h, dev->swap);
      EXPECT_EQ(vertex_cost(h, dev->swap.v, model, ws), dev->cost_after);
      EXPECT_LT(dev->cost_after, dev->cost_before);
    }
  }
}

TEST(SwapEngine, RebuildTracksGraphMutations) {
  Graph g = path(7);
  SwapEngine engine(g);
  const auto before = engine.certify(UsageCost::Sum, false);
  ASSERT_FALSE(before.is_equilibrium);
  // Apply the witness and rebuild: the certificate must now reflect the new
  // configuration (identical to a freshly constructed engine).
  apply_swap(g, before.witness->swap);
  engine.rebuild(g);
  const SwapEngine fresh(g);
  const auto rebuilt = engine.certify(UsageCost::Sum, false);
  const auto expected = fresh.certify(UsageCost::Sum, false);
  EXPECT_EQ(rebuilt.is_equilibrium, expected.is_equilibrium);
  EXPECT_EQ(rebuilt.moves_checked, expected.moves_checked);
}

TEST(SwapEngine, MoveCountsMatchOracle) {
  Xoshiro256ss rng(0xC0DE);
  SwapEngine::Scratch scratch;
  BfsWorkspace ws;
  for (int trial = 0; trial < 20; ++trial) {
    const Vertex n = 5 + static_cast<Vertex>(rng.below(10));
    const Graph g = random_connected_gnm(n, n + rng.below(n), rng);
    const SwapEngine engine(g);
    // Certifier move counters already compared in expect_certificates_match;
    // here compare a single agent's counter against a hand enumeration:
    // per incident edge, one candidate per non-neighbor (≠ v).
    const Vertex v = static_cast<Vertex>(rng.below(n));
    std::uint64_t moves = 0;
    (void)engine.best_deviation(v, UsageCost::Sum, scratch, false, &moves);
    const std::uint64_t non_neighbors = n - 1 - g.degree(v);
    EXPECT_EQ(moves, static_cast<std::uint64_t>(g.degree(v)) * non_neighbors);
  }
}

}  // namespace
}  // namespace bncg

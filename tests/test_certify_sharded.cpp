// Differential tests for the sharded certification driver
// (core/certify_sharded.hpp): under every shard count the full-mode
// certificate — verdict, witness, tie-breaks, move counts — must be
// bit-identical to SwapEngine::certify and the bncg::naive certifiers, and
// the stop_on_violation fast path must agree on the verdict.
#include "core/certify_sharded.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/equilibrium.hpp"
#include "core/swap_engine.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

void expect_same_certificate(const EquilibriumCertificate& got,
                             const EquilibriumCertificate& want, const std::string& context) {
  ASSERT_EQ(got.is_equilibrium, want.is_equilibrium) << context;
  EXPECT_EQ(got.moves_checked, want.moves_checked) << context;
  ASSERT_EQ(got.witness.has_value(), want.witness.has_value()) << context;
  if (!got.witness) return;
  EXPECT_EQ(got.witness->swap.v, want.witness->swap.v) << context;
  EXPECT_EQ(got.witness->swap.remove_w, want.witness->swap.remove_w) << context;
  EXPECT_EQ(got.witness->swap.add_w, want.witness->swap.add_w) << context;
  EXPECT_EQ(got.witness->cost_before, want.witness->cost_before) << context;
  EXPECT_EQ(got.witness->cost_after, want.witness->cost_after) << context;
  EXPECT_EQ(got.witness->kind, want.witness->kind) << context;
}

TEST(CertifySharded, MatchesEngineAndNaiveUnderEveryShardCount) {
  Xoshiro256ss rng(0xC0DE);
  for (int trial = 0; trial < 25; ++trial) {
    const Vertex n = 8 + static_cast<Vertex>(rng.below(25));
    const Graph g = random_connected_gnm(n, n - 1 + rng.below(2 * n), rng);
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      const bool deletions = model == UsageCost::Max;
      const SwapEngine engine(g);
      const EquilibriumCertificate want = engine.certify(model, deletions);
      const EquilibriumCertificate naive_want = model == UsageCost::Sum
                                                    ? naive::certify_sum_equilibrium(g)
                                                    : naive::certify_max_equilibrium(g);
      for (const std::size_t shards : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                                       std::size_t{5}, std::size_t{64}}) {
        ShardedCertifyConfig config;
        config.shards = shards;
        const ShardedCertificate got = certify_sharded(g, model, deletions, config);
        const std::string ctx = "trial " + std::to_string(trial) + " shards " +
                                std::to_string(shards) +
                                (model == UsageCost::Sum ? " sum" : " max");
        expect_same_certificate(got.certificate, want, ctx + " vs engine");
        expect_same_certificate(got.certificate, naive_want, ctx + " vs naive");
        EXPECT_EQ(got.agents_scanned, n) << ctx;
        EXPECT_GE(got.shards_used, 1u) << ctx;
        if (shards != 0) EXPECT_EQ(got.shards_used, std::min<std::size_t>(shards, n)) << ctx;

        // Verdict-only fast path: deterministic verdict, possibly fewer
        // agents scanned on violating instances.
        config.stop_on_violation = true;
        const ShardedCertificate fast = certify_sharded(g, model, deletions, config);
        EXPECT_EQ(fast.certificate.is_equilibrium, want.is_equilibrium) << ctx << " stop";
        EXPECT_EQ(fast.certificate.witness.has_value(), !want.is_equilibrium) << ctx << " stop";
        if (want.is_equilibrium) {
          // Equilibria cannot abort early: every agent must have been scanned.
          EXPECT_EQ(fast.agents_scanned, n) << ctx << " stop";
        }
      }
    }
  }
}

TEST(CertifySharded, KnownEquilibriaCertify) {
  for (const auto& g : {star(12), complete(8)}) {
    const ShardedCertificate sum = certify_sharded(g, UsageCost::Sum);
    EXPECT_TRUE(sum.certificate.is_equilibrium);
  }
  // Double stars with ≥ 2 leaves per side are max equilibria (Section 2.2).
  for (const auto& g : {star(12), double_star(3, 3)}) {
    const ShardedCertificate max_cert =
        certify_sharded(g, UsageCost::Max, /*include_deletions=*/true);
    EXPECT_TRUE(max_cert.certificate.is_equilibrium);
  }
  const ShardedCertificate cyc =
      certify_sharded(cycle(9), UsageCost::Max, /*include_deletions=*/true);
  EXPECT_FALSE(cyc.certificate.is_equilibrium);
}

TEST(CertifySharded, LargeInstanceSmoke) {
  // One mid-size instance through the intended large-n configuration (auto
  // shards, auto width): parity with the engine certificate.
  Xoshiro256ss rng(0xBEEF);
  const Graph g = random_connected_gnm(300, 600, rng);
  for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
    const bool deletions = model == UsageCost::Max;
    const SwapEngine engine(g);
    const ShardedCertificate got = certify_sharded(g, model, deletions);
    expect_same_certificate(got.certificate, engine.certify(model, deletions),
                            model == UsageCost::Sum ? "sum" : "max");
    EXPECT_EQ(got.width, DistWidth::U8);  // G(300, 600) sits far below the cap
  }
}

}  // namespace
}  // namespace bncg

// Frame protocol and socket substrate of the certification service
// (svc/net.hpp): encode/decode round-trips, incremental decoding over
// arbitrarily fragmented buffers, the every-bit-flip corruption property
// (a flipped frame either throws or is detected as incomplete — it can
// never decode to a different valid frame silently), and live loopback
// transport over socketpair, unix-domain, and TCP sockets.
#include "svc/net.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

namespace bncg::svc {
namespace {

[[nodiscard]] Frame sample_frame(FrameType type, std::size_t payload_len) {
  Frame f;
  f.type = type;
  f.payload.reserve(payload_len);
  for (std::size_t i = 0; i < payload_len; ++i) {
    f.payload.push_back(static_cast<char>((i * 131 + 7) & 0xFF));
  }
  return f;
}

TEST(SvcNet, FrameRoundTripsEveryTypeAndSize) {
  for (const FrameType type : {FrameType::Hello, FrameType::Welcome, FrameType::Refuse,
                               FrameType::Lease, FrameType::Result, FrameType::Done,
                               FrameType::Submit, FrameType::Accepted, FrameType::JobStatus}) {
    for (const std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{9},
                                  std::size_t{256}, std::size_t{4096}}) {
      const Frame sent = sample_frame(type, len);
      std::string buffer = encode_frame(sent);
      const std::optional<Frame> got = try_decode_frame(buffer);
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->type, sent.type);
      EXPECT_EQ(got->payload, sent.payload);
      EXPECT_TRUE(buffer.empty()) << "decode must consume the frame";
    }
  }
}

TEST(SvcNet, IncrementalDecodeAcrossEveryFragmentBoundary) {
  const Frame sent = sample_frame(FrameType::Result, 37);
  const std::string wire = encode_frame(sent);
  // Feed the frame one byte at a time; a complete frame must appear exactly
  // once, at the final byte, never from a prefix.
  for (std::size_t split = 1; split <= wire.size(); ++split) {
    std::string buffer = wire.substr(0, split);
    const std::optional<Frame> got = try_decode_frame(buffer);
    if (split < wire.size()) {
      EXPECT_FALSE(got.has_value()) << "split " << split;
      EXPECT_EQ(buffer.size(), split) << "incomplete decode must not consume";
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(got->payload, sent.payload);
    }
  }
}

TEST(SvcNet, BackToBackFramesDecodeInOrder) {
  const Frame a = sample_frame(FrameType::Lease, 21);
  const Frame b = sample_frame(FrameType::Result, 64);
  const Frame c = sample_frame(FrameType::Done, 0);
  std::string buffer = encode_frame(a) + encode_frame(b) + encode_frame(c);
  const std::optional<Frame> got_a = try_decode_frame(buffer);
  const std::optional<Frame> got_b = try_decode_frame(buffer);
  const std::optional<Frame> got_c = try_decode_frame(buffer);
  ASSERT_TRUE(got_a && got_b && got_c);
  EXPECT_EQ(got_a->payload, a.payload);
  EXPECT_EQ(got_b->payload, b.payload);
  EXPECT_EQ(got_c->type, FrameType::Done);
  EXPECT_TRUE(buffer.empty());
  EXPECT_FALSE(try_decode_frame(buffer).has_value());
}

// The corruption property behind the chaos harness: flip ANY single bit of
// an encoded frame and the decoder either throws (detected), reports
// incomplete (a length-field flip asking for more bytes — the dispatcher
// then hits EOF or its next frame's magic check), or — never — returns a
// frame different from the original.
TEST(SvcNet, EveryBitFlipIsDetectedOrStarves) {
  const Frame sent = sample_frame(FrameType::Result, 48);
  const std::string wire = encode_frame(sent);
  std::size_t detected = 0;
  std::size_t starved = 0;
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string buffer = wire;
      buffer[byte] = static_cast<char>(static_cast<unsigned char>(buffer[byte]) ^ (1u << bit));
      try {
        const std::optional<Frame> got = try_decode_frame(buffer);
        if (!got.has_value()) {
          ++starved;  // corrupted length now larger than the buffer
          continue;
        }
        // A decoded frame must be byte-identical to what was sent —
        // anything else means the checksum let corruption through.
        EXPECT_EQ(got->type, sent.type) << "byte " << byte << " bit " << bit;
        EXPECT_EQ(got->payload, sent.payload) << "byte " << byte << " bit " << bit;
        FAIL() << "bit flip at byte " << byte << " bit " << bit << " went undetected";
      } catch (const std::invalid_argument&) {
        ++detected;
      }
    }
  }
  EXPECT_GT(detected, 0u);
  // Only length-field flips can starve; everything else must throw.
  EXPECT_LE(starved, 8u * 4u);
}

TEST(SvcNet, OversizedLengthRefusedNotBuffered) {
  std::string wire = encode_frame(sample_frame(FrameType::Result, 4));
  // Overwrite the length field (offset 5..8) with kMaxFramePayload + 1.
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxFramePayload) + 1;
  for (int i = 0; i < 4; ++i) wire[5 + i] = static_cast<char>((huge >> (8 * i)) & 0xFF);
  EXPECT_THROW((void)try_decode_frame(wire), std::invalid_argument);
}

TEST(SvcNet, PayloadReaderRejectsTruncationAndTrailingBytes) {
  std::string body;
  put_u8(body, 7);
  put_u32(body, 1234567);
  put_u64(body, 0xDEADBEEFCAFEull);
  put_bytes(body, "hello");
  {
    PayloadReader reader(body);
    EXPECT_EQ(reader.u8(), 7u);
    EXPECT_EQ(reader.u32(), 1234567u);
    EXPECT_EQ(reader.u64(), 0xDEADBEEFCAFEull);
    EXPECT_EQ(reader.bytes(), "hello");
    EXPECT_NO_THROW(reader.expect_end());
  }
  {
    PayloadReader truncated(std::string_view(body).substr(0, body.size() - 1));
    EXPECT_EQ(truncated.u8(), 7u);
    EXPECT_EQ(truncated.u32(), 1234567u);
    EXPECT_EQ(truncated.u64(), 0xDEADBEEFCAFEull);
    EXPECT_THROW((void)truncated.bytes(), std::invalid_argument);
  }
  {
    PayloadReader trailing(body);
    (void)trailing.u8();
    EXPECT_THROW(trailing.expect_end(), std::invalid_argument);
  }
}

void expect_loopback_conversation(Socket& a, Socket& b) {
  const Frame ping = sample_frame(FrameType::Hello, 19);
  const Frame pong = sample_frame(FrameType::Welcome, 2048);
  a.send_frame(ping);
  const Frame got_ping = b.recv_frame();
  EXPECT_EQ(got_ping.type, FrameType::Hello);
  EXPECT_EQ(got_ping.payload, ping.payload);
  b.send_frame(pong);
  const Frame got_pong = a.recv_frame();
  EXPECT_EQ(got_pong.type, FrameType::Welcome);
  EXPECT_EQ(got_pong.payload, pong.payload);
}

TEST(SvcNet, SocketpairConversationAndEof) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]);
  Socket b(fds[1]);
  expect_loopback_conversation(a, b);
  a.close_fd();
  EXPECT_THROW((void)b.recv_frame(), TransportError);
}

TEST(SvcNet, UnixListenerAcceptAndConverse) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "bncg_svc_net_unix").string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string address = "unix:" + dir + "/svc.sock";
  {
    Listener listener(address);
    EXPECT_EQ(listener.address(), address);
    Socket client = connect_to(address);
    Socket served;
    // The listener is non-blocking: spin briefly until the connection
    // surfaces (same pattern as the dispatcher's poll loop).
    for (int spin = 0; spin < 1000 && !served.valid(); ++spin) {
      served = listener.accept_connection();
      if (!served.valid()) ::usleep(1000);
    }
    ASSERT_TRUE(served.valid());
    expect_loopback_conversation(client, served);
  }
  // Destruction unlinks the socket file; reconnect must now fail cleanly.
  EXPECT_THROW((void)connect_to(address), TransportError);
  std::filesystem::remove_all(dir);
}

TEST(SvcNet, TcpListenerResolvesKernelPortAndConverses) {
  Listener listener("tcp:127.0.0.1:0");
  // Port 0 must have been replaced with the kernel's choice.
  EXPECT_EQ(listener.address().find("tcp:127.0.0.1:"), 0u);
  EXPECT_NE(listener.address(), "tcp:127.0.0.1:0");
  Socket client = connect_to(listener.address());
  Socket served;
  for (int spin = 0; spin < 1000 && !served.valid(); ++spin) {
    served = listener.accept_connection();
    if (!served.valid()) ::usleep(1000);
  }
  ASSERT_TRUE(served.valid());
  expect_loopback_conversation(served, client);
}

TEST(SvcNet, ConnectToDeadAddressThrowsTransportError) {
  EXPECT_THROW((void)connect_to("unix:/nonexistent/path/to.sock"), TransportError);
  EXPECT_THROW((void)connect_to("tcp:127.0.0.1:1"), TransportError);
}

TEST(SvcNet, MalformedAddressIsInvalidArgumentNotTransport) {
  EXPECT_THROW((void)connect_to("carrier-pigeon:coop7"), std::invalid_argument);
  EXPECT_THROW((void)connect_to("tcp:nohost"), std::invalid_argument);
  EXPECT_THROW((void)connect_to(""), std::invalid_argument);
}

}  // namespace
}  // namespace bncg::svc

// Unit tests for the classic α-game baseline (Fabrikant et al. [9]).
#include "core/classic_game.hpp"

#include <gtest/gtest.h>

#include "core/equilibrium.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(ClassicGame, DefaultOwnershipIsLowerEndpoint) {
  const ClassicGame game(path(4), 1.0);
  EXPECT_EQ(game.owner(0, 1), 0u);
  EXPECT_EQ(game.owner(2, 3), 2u);
  EXPECT_EQ(game.edges_bought(0), 1u);
  EXPECT_EQ(game.edges_bought(3), 0u);
}

TEST(ClassicGame, ExplicitOwnershipValidated) {
  const Graph g = path(3);
  EXPECT_NO_THROW(ClassicGame(g, 1.0, {1, 1}));
  EXPECT_THROW(ClassicGame(g, 1.0, {2, 1}), std::invalid_argument);
  EXPECT_THROW(ClassicGame(g, 1.0, {0}), std::invalid_argument);
}

TEST(ClassicGame, VertexCostCombinesAlphaAndDistances) {
  const ClassicGame game(star(5), 3.0);  // center 0 owns all edges
  BfsWorkspace ws;
  EXPECT_DOUBLE_EQ(game.vertex_cost(0, ws), 3.0 * 4 + 4.0);
  EXPECT_DOUBLE_EQ(game.vertex_cost(1, ws), 0.0 + 1 + 2 * 3);
}

TEST(ClassicGame, SocialCostFormula) {
  const ClassicGame game(star(5), 2.0);
  // α·m + total distance sum = 2·4 + 2·(4·1 + C(4,2)·2) = 8 + 2·(4+12)=40.
  EXPECT_DOUBLE_EQ(game.social_cost(), 8.0 + 32.0);
}

TEST(ClassicGame, StarIsGreedyEquilibriumForModerateAlpha) {
  // For α between 1 and n²-ish, the star (center-owned) is a known Nash
  // equilibrium of the α-game; greedy deviations must also find nothing.
  for (const double alpha : {1.0, 2.0, 5.0, 50.0}) {
    const ClassicGame game(star(8), alpha);
    EXPECT_TRUE(game.is_greedy_equilibrium()) << "alpha=" << alpha;
  }
}

TEST(ClassicGame, StarIsNotEquilibriumForTinyAlpha) {
  // α < 1: leaves profitably buy edges to each other (gain 1 > α).
  const ClassicGame game(star(8), 0.25);
  EXPECT_FALSE(game.is_greedy_equilibrium());
}

TEST(ClassicGame, PathAgentBuysShortcutWhenCheap) {
  const ClassicGame game(path(6), 0.5);
  BfsWorkspace ws;
  const auto move = game.best_deviation(0, ws);
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->type, ClassicMove::Type::Add);
  EXPECT_GT(move->gain, 0.0);
}

TEST(ClassicGame, ExpensiveAlphaTriggersDeletionsOfRedundantEdges) {
  // A clique owner saves α per deleted edge at small distance penalty.
  const ClassicGame game(complete(6), 100.0);
  BfsWorkspace ws;
  const auto move = game.best_deviation(0, ws);
  ASSERT_TRUE(move.has_value());
  EXPECT_EQ(move->type, ClassicMove::Type::Delete);
}

TEST(ClassicGame, ApplyMaintainsOwnershipInvariants) {
  ClassicGame game(path(5), 0.5);
  BfsWorkspace ws;
  const auto move = game.best_deviation(0, ws);
  ASSERT_TRUE(move.has_value());
  game.apply(*move);
  EXPECT_NO_THROW(game.graph().check_invariants());
  if (move->type == ClassicMove::Type::Add) {
    EXPECT_EQ(game.owner(move->v, move->w), move->v);
  }
}

TEST(ClassicGame, BestResponseConvergesOnSmallInstances) {
  Xoshiro256ss rng(41);
  for (const double alpha : {0.5, 1.5, 4.0, 20.0}) {
    ClassicGame game(random_connected_gnm(10, 14, rng), alpha);
    const auto result = game.run_best_response(20'000);
    EXPECT_TRUE(is_connected(game.graph()));
    // Best-response in the α-game is not a potential game, so convergence
    // is empirical; when the run reports convergence the state must be a
    // genuine greedy equilibrium.
    if (result.converged) {
      EXPECT_TRUE(game.is_greedy_equilibrium()) << "alpha=" << alpha;
    }
  }
}

TEST(ClassicGame, SwapStabilityTransfersFromSumEquilibriumForAllAlpha) {
  // The paper's bridge: a sum swap equilibrium admits no improving *swap*
  // in the α-game, for every α (the α term cancels on swaps).
  const Graph g = star(7);
  for (const double alpha : {0.1, 1.0, 3.0, 10.0, 1000.0}) {
    ClassicGame game(g, alpha);
    BfsWorkspace ws;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const auto move = game.best_deviation(v, ws);
      if (move) {
        EXPECT_NE(move->type, ClassicMove::Type::Swap)
            << "alpha=" << alpha << " v=" << v;
      }
    }
  }
}

TEST(ClassicGame, ReferenceSocialCosts) {
  EXPECT_DOUBLE_EQ(star_social_cost(5, 2.0), 2.0 * 4 + 2 * 16);
  EXPECT_DOUBLE_EQ(clique_social_cost(5, 2.0), 2.0 * 10 + 20);
  // α = 2 is the known crossover: star and clique costs order swaps there.
  EXPECT_LT(clique_social_cost(10, 1.0), star_social_cost(10, 1.0));
  EXPECT_LT(star_social_cost(10, 3.0), clique_social_cost(10, 3.0));
  EXPECT_DOUBLE_EQ(optimal_social_cost(10, 1.0), clique_social_cost(10, 1.0));
  EXPECT_DOUBLE_EQ(optimal_social_cost(10, 3.0), star_social_cost(10, 3.0));
}

TEST(ClassicGame, NegativeAlphaRejected) {
  EXPECT_THROW(ClassicGame(path(3), -1.0), std::invalid_argument);
}

TEST(ClassicGame, EquilibriumSocialCostBoundedByOptimumTimesDiameterFactor) {
  // Sanity check of the [7]-style relation on converged instances: the
  // cost ratio stays within a small factor related to the diameter.
  Xoshiro256ss rng(43);
  ClassicGame game(random_connected_gnm(12, 16, rng), 2.0);
  (void)game.run_best_response(20'000);
  const double ratio = game.social_cost() / optimal_social_cost(12, 2.0);
  EXPECT_GE(ratio, 1.0 - 1e-9);
  EXPECT_LE(ratio, 4.0 * (diameter(game.graph()) + 1));
}

}  // namespace
}  // namespace bncg

// Unit tests for the executable lemma toolkit (core/lemmas.hpp) — the
// paper's proof infrastructure validated on concrete instances.
#include "core/lemmas.hpp"

#include <gtest/gtest.h>

#include "core/equilibrium.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/projective.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(Lemma2, HoldsOnEveryCertifiedMaxEquilibrium) {
  for (const Graph& g : {star(10), double_star(2, 2), double_star(4, 4), complete(7),
                         cycle(5), rotated_torus(3).graph()}) {
    ASSERT_TRUE(is_max_equilibrium(g)) << to_string(g);
    EXPECT_TRUE(lemma2_balanced_eccentricities(g)) << to_string(g);
  }
}

TEST(Lemma2, FailsOnUnbalancedNonEquilibria) {
  EXPECT_FALSE(lemma2_balanced_eccentricities(path(7)));  // ecc 3..6
  EXPECT_FALSE(is_max_equilibrium(path(7)));              // consistent direction
}

TEST(Lemma2, DisconnectedGraphsFail) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_FALSE(lemma2_balanced_eccentricities(g));
}

TEST(Lemma3, HoldsOnMaxEquilibriaWithCutVertices) {
  for (const Graph& g : {star(9), double_star(2, 2), double_star(3, 5)}) {
    ASSERT_TRUE(is_max_equilibrium(g));
    EXPECT_TRUE(lemma3_all_cut_vertices(g)) << to_string(g);
  }
}

TEST(Lemma3, DetectsViolationOnPaths) {
  // P_5's center has two deep sides — exactly the configuration Lemma 3
  // forbids in equilibria; consistent with P_5 not being one.
  EXPECT_FALSE(lemma3_all_cut_vertices(path(5)));
}

TEST(Lemma6, HoldsUnconditionallyAcrossFamilies) {
  // Lemma 6 is a statement about *any* graph: local-diameter-2 vertices
  // never gain from sum swaps. This is an engine-vs-lemma cross-check.
  Xoshiro256ss rng(111);
  std::vector<Graph> family = {star(8),  cycle(5),        petersen(),
                               complete(6), fig3_diameter3_graph(), hypercube(3)};
  for (int trial = 0; trial < 6; ++trial) {
    family.push_back(random_connected_gnm(12, 20, rng));
  }
  for (const Graph& g : family) {
    EXPECT_TRUE(lemma6_diameter2_vertices_are_stable(g)) << to_string(g);
  }
}

TEST(Lemma7, GainBoundHoldsAcrossFamilies) {
  Xoshiro256ss rng(112);
  std::vector<Graph> family = {fig3_diameter3_graph(), diameter3_sum_equilibrium_n8(),
                               double_star(3, 3), cycle(7)};
  for (int trial = 0; trial < 6; ++trial) {
    family.push_back(random_connected_gnm(14, 20, rng));
  }
  for (const Graph& g : family) {
    EXPECT_TRUE(lemma7_gain_bound(g)) << to_string(g);
  }
}

TEST(Lemma8, PenaltyHoldsOnGirthFourGraphs) {
  // Girth-4 instances: complete bipartite, hypercubes, the Fig. 3 graph.
  for (const Graph& g : {complete_bipartite(3, 4), hypercube(3), fig3_diameter3_graph(),
                         cycle(4), incidence_graph(ProjectivePlane(2))}) {
    ASSERT_GE(girth(g), 4u);
    EXPECT_TRUE(lemma8_distance_penalty(g)) << to_string(g);
  }
}

TEST(Lemma8, PreconditionEnforced) {
  EXPECT_THROW((void)lemma8_distance_penalty(complete(4)), std::invalid_argument);
}

TEST(Lemma10, DiameterBranchOnSmallDiameterEquilibria) {
  // Stars and the n=8 witness have diameter ≤ 2·lg n → first branch.
  for (const Graph& g : {star(12), diameter3_sum_equilibrium_n8(), complete(8)}) {
    const Lemma10Result r = lemma10_cheap_edge(g, 0);
    EXPECT_TRUE(r.diameter_branch) << to_string(g);
  }
}

TEST(Lemma10, CheapEdgeExistsOnModerateCycles) {
  // C_20: diameter 10 > 2·lg 20 ≈ 8.6, and removing a cycle edge costs the
  // endpoint 90 < 2n(1 + lg n) ≈ 213 — the second branch's content. (On
  // much longer cycles the budget fails, but long cycles are far from
  // equilibrium, where the lemma makes no promise.)
  const Graph g = cycle(20);
  const Lemma10Result r = lemma10_cheap_edge(g, 0);
  EXPECT_FALSE(r.diameter_branch);
  ASSERT_TRUE(r.cheap_edge.has_value());
  // Verify the reported cost is genuine.
  Graph h = g;
  const std::uint64_t before = distance_sum_from(h, r.cheap_edge->x);
  h.remove_edge(r.cheap_edge->x, r.cheap_edge->y);
  const std::uint64_t after = distance_sum_from(h, r.cheap_edge->x);
  EXPECT_EQ(after - before, r.cheap_edge->removal_cost);
}

TEST(Lemma10, TreesHaveNoCheapEdge) {
  // Every tree edge is a bridge (infinite removal cost), so on a
  // high-diameter tree neither branch may fire — Lemma 10 only promises the
  // edge for *equilibria*, and high-diameter trees are never equilibria
  // (Theorem 1). The function reports the honest "neither" outcome.
  const Graph g = path(40);
  const Lemma10Result r = lemma10_cheap_edge(g, 0);
  EXPECT_FALSE(r.diameter_branch);
  EXPECT_FALSE(r.cheap_edge.has_value());
  EXPECT_FALSE(is_sum_equilibrium(g));  // consistent with the lemma
}

TEST(Corollary11, HoldsOnCertifiedEquilibriaAndBeyond) {
  // The corollary is proved for equilibria; verify there, plus observe it
  // on mild non-equilibria where the bound still holds numerically.
  for (const Graph& g : {star(16), diameter3_sum_equilibrium_n8(), complete(10), cycle(5)}) {
    EXPECT_TRUE(corollary11_insertion_gain_bound(g)) << to_string(g);
  }
}

TEST(Corollary11, ViolatedByLongPaths) {
  // A path of length ~n lets one insertion gain Θ(n²) ≫ 5 n lg n — paths
  // are far from equilibrium, so this does not contradict the corollary.
  const Graph g = path(400);
  EXPECT_FALSE(corollary11_insertion_gain_bound(g));
  BfsWorkspace ws;
  EXPECT_TRUE(first_sum_deviation(g, 0, ws).has_value());  // far from equilibrium
}

}  // namespace
}  // namespace bncg

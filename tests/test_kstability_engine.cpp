// Differential suite for the SwapEngine k-move deviation paths
// (DESIGN.md §14): over 200+ seeded random and structured instances, the
// engine's insertion_stability_at / insertion_stability /
// max_tolerated_insertions / swap_stability_at must agree with the
// bncg::naive oracles on the VERDICT and the full WITNESS
// (witness_vertex, witness_endpoints, witness_deletions — same vertices in
// the same order), at both storage widths (ForceU8 / ForceU16) and at both
// SIMD dispatch extremes (forced scalar vs the highest level this CPU
// runs). Thread-count invariance of insertion_stability's parallel sweep is
// certified transitively: the suite runs under BNCG_THREADS=1 and =4 via
// the kstability_engine_threads{1,4} CTest entries, and since the naive
// oracle is thread-independent, engine == naive at both counts forces
// engine(1) == engine(4) — witnesses included.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/kstability.hpp"
#include "core/swap_engine.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/apsp.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace bncg {
namespace {

struct LevelGuard {
  SimdLevel saved = simd_active_level();
  ~LevelGuard() { simd_set_level(saved); }
};

/// Both dispatch extremes: forced scalar and the binary's best level.
std::vector<SimdLevel> extreme_levels() {
  return {SimdLevel::Scalar, simd_max_level()};
}

void expect_same_report(const KStabilityReport& got, const KStabilityReport& want,
                        const std::string& context) {
  EXPECT_EQ(got.stable, want.stable) << context;
  EXPECT_EQ(got.witness_vertex, want.witness_vertex) << context;
  EXPECT_EQ(got.witness_endpoints, want.witness_endpoints) << context;
  EXPECT_EQ(got.witness_deletions, want.witness_deletions) << context;
}

/// Connected instance pool: random sparse/mid/dense families, trees, and
/// the constructions whose k-stability the paper actually talks about.
Graph instance(int trial, Xoshiro256ss& rng) {
  switch (trial % 8) {
    case 0: {
      const Vertex n = 6 + static_cast<Vertex>(rng.below(11));
      const std::size_t max_edges = static_cast<std::size_t>(n) * (n - 1) / 2;
      const std::size_t m =
          std::clamp<std::size_t>(10 + rng.below(20), std::size_t{n} - 1, max_edges);
      return random_connected_gnm(n, m, rng);
    }
    case 1:
      return random_tree(6 + static_cast<Vertex>(rng.below(11)), rng);
    case 2:
      return cycle(5 + static_cast<Vertex>(rng.below(12)));
    case 3:
      return path(5 + static_cast<Vertex>(rng.below(12)));
    case 4:
      return rotated_torus(2 + static_cast<Vertex>(rng.below(2))).graph();
    case 5:
      return double_star(2 + static_cast<Vertex>(rng.below(4)),
                         2 + static_cast<Vertex>(rng.below(4)));
    case 6: {
      const Vertex n = 8 + static_cast<Vertex>(rng.below(9));
      return random_connected_gnm(n, n + rng.below(2 * n), rng);
    }
    default:
      return hypercube(3 + static_cast<Vertex>(rng.below(2)));
  }
}

TEST(KStabilityEngine, InsertionVerdictAndWitnessParity) {
  // 2 SIMD extremes × 104 instances × k ∈ {1,2,3} × every agent, at both
  // widths, against the DistanceMatrix-based exact reference (which is what
  // naive::insertion_stability_at wraps). 208 instances total.
  LevelGuard guard;
  for (const SimdLevel level : extreme_levels()) {
    ASSERT_EQ(simd_set_level(level), level);
    Xoshiro256ss rng(0xA110);
    for (int trial = 0; trial < 104; ++trial) {
      const Graph g = instance(trial, rng);
      const DistanceMatrix dm(g);
      SwapEngine e8(g, WidthPolicy::ForceU8);
      SwapEngine e16(g, WidthPolicy::ForceU16);
      SwapEngine::Scratch s8, s16;
      for (Vertex k = 1; k <= 3; ++k) {
        for (Vertex v = 0; v < g.num_vertices(); ++v) {
          const std::string ctx = std::string(simd_level_name(level)) + " trial " +
                                  std::to_string(trial) + " v=" + std::to_string(v) +
                                  " k=" + std::to_string(k);
          const KStabilityReport want = insertion_stability_at(dm, v, k);
          expect_same_report(e8.insertion_stability_at(v, k, s8), want, ctx + " u8");
          expect_same_report(e16.insertion_stability_at(v, k, s16), want, ctx + " u16");
        }
        // Whole-graph sweep: the parallel engine fold must land on the
        // naive sequential answer — the earliest unstable agent.
        const KStabilityReport want_sweep = naive::insertion_stability(g, k);
        expect_same_report(e8.insertion_stability(k), want_sweep,
                           "sweep u8 trial " + std::to_string(trial));
        expect_same_report(e16.insertion_stability(k), want_sweep,
                           "sweep u16 trial " + std::to_string(trial));
      }
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        const Vertex want_tol = max_tolerated_insertions(dm, v, 3);
        EXPECT_EQ(e8.max_tolerated_insertions(v, 3, s8), want_tol);
        EXPECT_EQ(e16.max_tolerated_insertions(v, 3, s16), want_tol);
      }
    }
  }
}

TEST(KStabilityEngine, SwapVerdictAndWitnessParity) {
  // The swap variant enumerates deletion subsets, so the oracle pays one
  // DistanceMatrix per subset — instances stay small. Witness parity covers
  // witness_deletions too (the subset in naive bit order).
  LevelGuard guard;
  for (const SimdLevel level : extreme_levels()) {
    ASSERT_EQ(simd_set_level(level), level);
    Xoshiro256ss rng(0x5A9B);
    for (int trial = 0; trial < 104; ++trial) {
      const Graph g = instance(trial, rng);
      if (g.num_vertices() > 24) continue;  // oracle cost guard
      SwapEngine e8(g, WidthPolicy::ForceU8);
      SwapEngine e16(g, WidthPolicy::ForceU16);
      SwapEngine::Scratch s8, s16;
      for (Vertex k = 1; k <= 2; ++k) {
        for (Vertex v = 0; v < g.num_vertices(); ++v) {
          const std::string ctx = std::string(simd_level_name(level)) + " swap trial " +
                                  std::to_string(trial) + " v=" + std::to_string(v) +
                                  " k=" + std::to_string(k);
          const KStabilityReport want = naive::swap_stability_at(g, v, k);
          expect_same_report(e8.swap_stability_at(v, k, s8), want, ctx + " u8");
          expect_same_report(e16.swap_stability_at(v, k, s16), want, ctx + " u16");
        }
      }
    }
  }
}

TEST(KStabilityEngine, RoutedEntryPointsMatchOracles) {
  // The public Graph-level functions route through the engine here (small n,
  // BNCG_FORCE_NAIVE unset in this harness): spot-check they give oracle
  // answers, so routing introduces no drift on top of the engine parity
  // above. Also pins the paper-fact baseline the bench leans on: Theorem 12
  // guarantees the dim-dimensional diagonal torus tolerates at least dim − 1
  // insertions (small side lengths can tolerate more, so only the lower
  // bound is asserted).
  Xoshiro256ss rng(0xC0DE);
  for (int trial = 0; trial < 24; ++trial) {
    const Graph g = instance(trial, rng);
    for (Vertex k = 1; k <= 2; ++k) {
      expect_same_report(insertion_stability(g, k), naive::insertion_stability(g, k),
                         "routed sweep trial " + std::to_string(trial));
      expect_same_report(insertion_stability_at(g, 0, k), naive::insertion_stability_at(g, 0, k),
                         "routed at trial " + std::to_string(trial));
      expect_same_report(swap_stability_at(g, 0, k), naive::swap_stability_at(g, 0, k),
                         "routed swap trial " + std::to_string(trial));
    }
    EXPECT_EQ(max_tolerated_insertions(g, 0, 3), naive::max_tolerated_insertions(g, 0, 3));
  }

  const DiagonalTorus torus(3, 3);  // n = 54, degree 8, tolerance ≥ dim − 1
  EXPECT_TRUE(insertion_stability(torus.graph(), 2).stable);
  EXPECT_GE(max_tolerated_insertions(torus.graph(), 0, 3), 2u);
}

}  // namespace
}  // namespace bncg

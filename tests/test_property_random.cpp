// Seeded property harness over random instances — CTest labels
// "tier1;property" (run alone with `ctest -L property`). These are the
// repo-wide invariants that tie the incremental search machinery, the
// certifiers, and the paper's structural lemmas together:
//
//   P1  unrest == 0  ⟺  the matching certifier passes (both models, both
//       the engine-backed potentials and the incremental SearchState);
//   P2  every max swap equilibrium is deletion-critical (each endpoint of
//       each edge owns the deletion move, so the deletion clause covers
//       both sides);
//   P3  an anneal result, when non-nullopt, certifies and sits exactly on
//       the configured diameter;
//   P4  identical AnnealConfigs give identical trajectories — across
//       repeated runs and across evaluation paths (seed reproducibility);
//   P5  k-move monotonicity: k-stability (insertion and swap) implies
//       (k−1)-stability, and max_tolerated_insertions is exactly the
//       threshold of the per-k verdicts;
//   P6  the k = 1 boundary: swap-stability is 1-move consistent with the
//       basic-game certifiers, and 1-insertion verdicts match the
//       insertion-stability predicate;
//   P7  every max swap equilibrium survives 1-swap-deviation scrutiny at
//       every agent — the k-move analogue of deletion-criticality on the
//       Theorem 12 axis.
#include <gtest/gtest.h>

#include "core/certify_sharded.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/kstability.hpp"
#include "core/search.hpp"
#include "core/search_state.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

Graph random_connected(Xoshiro256ss& rng) {
  const Vertex n = 6 + static_cast<Vertex>(rng.below(11));  // 6..16
  const std::size_t extra = rng.below(n);
  return random_connected_gnm(n, n - 1 + extra, rng);
}

TEST(PropertyRandom, UnrestZeroIffSumCertifierPasses) {
  Xoshiro256ss rng(0x9001);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = random_connected(rng);
    const bool certified = certify_sum_equilibrium(g).is_equilibrium;
    EXPECT_EQ(sum_unrest(g) == 0, certified) << "trial " << trial;
    SearchState state(g, UsageCost::Sum);
    EXPECT_EQ(state.unrest() == 0, certified) << "trial " << trial;
  }
}

TEST(PropertyRandom, UnrestZeroIffMaxCertifierPasses) {
  Xoshiro256ss rng(0x9002);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph g = random_connected(rng);
    const bool certified = certify_max_equilibrium(g).is_equilibrium;
    EXPECT_EQ(max_unrest(g) == 0, certified) << "trial " << trial;
    SearchState state(g, UsageCost::Max, /*include_deletions=*/true);
    EXPECT_EQ(state.unrest() == 0, certified) << "trial " << trial;
  }
}

TEST(PropertyRandom, KnownEquilibriaAnchorTheEquivalence) {
  // Fixed points pin the ⟺ in both directions on known instances.
  EXPECT_EQ(sum_unrest(star(10)), 0u);
  EXPECT_EQ(sum_unrest(complete(7)), 0u);
  EXPECT_EQ(sum_unrest(diameter3_sum_equilibrium_n8()), 0u);
  EXPECT_EQ(max_unrest(star(10)), 0u);
  EXPECT_GT(sum_unrest(path(9)), 0u);
  EXPECT_GT(max_unrest(cycle(9)), 0u);
}

TEST(PropertyRandom, MaxEquilibriaAreDeletionCritical) {
  // P2: drive max dynamics (neutral deletions on) to convergence; every
  // reached max equilibrium must survive is_deletion_critical.
  Xoshiro256ss rng(0x9003);
  int reached = 0;
  for (int trial = 0; trial < 25; ++trial) {
    DynamicsConfig config;
    config.cost = UsageCost::Max;
    config.allow_neutral_deletions = true;
    config.max_moves = 20'000;
    config.seed = rng();
    const DynamicsResult r = run_dynamics(random_connected(rng), config);
    if (!r.converged) continue;
    ASSERT_TRUE(is_max_equilibrium(r.graph)) << "trial " << trial;
    EXPECT_TRUE(is_deletion_critical(r.graph)) << "trial " << trial;
    ++reached;
  }
  EXPECT_GT(reached, 0);  // the property must actually have been exercised
}

TEST(PropertyRandom, ShardedCertifyWitnessesRespectDeletionCriticality) {
  // P2 through the sharded driver: a graph it certifies as a max
  // equilibrium (deletion clause on) must be deletion-critical, and a
  // NonCriticalDelete witness it reports is a constructive refutation of
  // deletion-criticality — check both directions of the implication on the
  // driver's own output.
  Xoshiro256ss rng(0x9007);
  int critical_seen = 0;
  int witness_seen = 0;
  // Anchors pin the certifying direction deterministically (stars and
  // double stars are max equilibria, hence deletion-critical); the random
  // pool supplies refuting witnesses.
  std::vector<Graph> pool = {star(10), double_star(3, 4)};
  for (int trial = 0; trial < 30; ++trial) pool.push_back(random_connected(rng));
  for (std::size_t trial = 0; trial < pool.size(); ++trial) {
    const Graph& g = pool[trial];
    const ShardedCertificate cert =
        certify_sharded(g, UsageCost::Max, /*include_deletions=*/true);
    if (cert.certificate.is_equilibrium) {
      EXPECT_TRUE(is_deletion_critical(g)) << "trial " << trial;
      ++critical_seen;
      continue;
    }
    ASSERT_TRUE(cert.certificate.witness.has_value()) << "trial " << trial;
    const Deviation& w = *cert.certificate.witness;
    if (w.kind != Deviation::Kind::NonCriticalDelete) continue;
    ++witness_seen;
    EXPECT_FALSE(is_deletion_critical(g)) << "trial " << trial;
    // The witness is constructive: deleting {v, remove_w} must not
    // strictly increase the deleter's local diameter.
    Graph deleted = g;
    deleted.remove_edge(w.swap.v, w.swap.remove_w);
    BfsWorkspace ws;
    EXPECT_LE(vertex_cost(deleted, w.swap.v, UsageCost::Max, ws), w.cost_before)
        << "trial " << trial;
  }
  // Both directions must actually have been exercised on the seeded pool.
  EXPECT_GT(critical_seen + witness_seen, 0);
}

TEST(PropertyRandom, AnnealResultsCertifyOnTheTargetDiameter) {
  // P3, both models: whatever the anneal returns must certify and sit
  // exactly on the configured diameter.
  Xoshiro256ss rng(0x9004);
  int found = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const Graph start = random_connected(rng);
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      AnnealConfig config;
      config.cost = model;
      config.steps = 1500;
      config.seed = rng();
      config.target_diameter = 2;
      const auto result = anneal_equilibrium(start, config);
      if (!result) continue;
      ++found;
      EXPECT_EQ(diameter(*result), config.target_diameter);
      if (model == UsageCost::Sum) {
        EXPECT_TRUE(is_sum_equilibrium(*result));
        EXPECT_EQ(sum_unrest(*result), 0u);
      } else {
        EXPECT_TRUE(is_max_equilibrium(*result));
        EXPECT_EQ(max_unrest(*result), 0u);
      }
    }
  }
  EXPECT_GT(found, 0);
}

TEST(PropertyRandom, AnnealTrajectoriesAreSeedReproducible) {
  // P4: one seed drives every draw, so rerunning an identical config must
  // reproduce the identical outcome and counters — and so must switching
  // the evaluation path (already pinned differentially in
  // tests/test_search_state.cpp; re-checked here as a user-facing property).
  Xoshiro256ss rng(0x9005);
  for (int trial = 0; trial < 4; ++trial) {
    const Graph start = random_connected(rng);
    AnnealConfig config;
    config.cost = trial % 2 == 0 ? UsageCost::Sum : UsageCost::Max;
    config.steps = 600;
    config.seed = 0xFEED + trial;
    config.target_diameter = diameter(start);
    AnnealStats first_stats;
    AnnealStats second_stats;
    const auto first = anneal_equilibrium(start, config, &first_stats);
    const auto second = anneal_equilibrium(start, config, &second_stats);
    ASSERT_EQ(first.has_value(), second.has_value()) << "trial " << trial;
    if (first) EXPECT_EQ(*first, *second) << "trial " << trial;
    EXPECT_EQ(first_stats.proposals, second_stats.proposals);
    EXPECT_EQ(first_stats.evaluated, second_stats.evaluated);
    EXPECT_EQ(first_stats.accepted, second_stats.accepted);
    EXPECT_EQ(first_stats.final_unrest, second_stats.final_unrest);
  }
}

TEST(PropertyRandom, DynamicsEquilibriaHaveZeroUnrest) {
  // Dynamics and search agree on what "done" means: a converged dynamics
  // run is a zero of the matching unrest potential.
  Xoshiro256ss rng(0x9006);
  for (int trial = 0; trial < 10; ++trial) {
    DynamicsConfig config;
    config.cost = trial % 2 == 0 ? UsageCost::Sum : UsageCost::Max;
    config.allow_neutral_deletions = config.cost == UsageCost::Max;
    config.max_moves = 20'000;
    config.seed = rng();
    const DynamicsResult r = run_dynamics(random_connected(rng), config);
    if (!r.converged) continue;
    if (config.cost == UsageCost::Sum) {
      EXPECT_EQ(sum_unrest(r.graph), 0u) << "trial " << trial;
    } else {
      EXPECT_EQ(max_unrest(r.graph), 0u) << "trial " << trial;
    }
  }
}

TEST(PropertyRandom, KStabilityIsDownwardMonotone) {
  // P5: a k-move deviation neighborhood contains every (k−1)-move one, so
  // instability at k−1 forces instability at k — equivalently, k-stable ⟹
  // (k−1)-stable — for both the insertion and the swap variant. And
  // max_tolerated_insertions must be exactly the step where the per-k
  // verdict flips.
  Xoshiro256ss rng(0x9008);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = random_connected(rng);
    bool prev_insert_stable = true;
    for (Vertex k = 1; k <= 3; ++k) {
      const bool stable = insertion_stability(g, k).stable;
      if (k > 1 && stable) {
        EXPECT_TRUE(prev_insert_stable) << "trial " << trial << " k=" << k;
      }
      prev_insert_stable = stable;
    }
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const Vertex tolerated = max_tolerated_insertions(g, v, 3);
      for (Vertex k = 1; k <= 3; ++k) {
        EXPECT_EQ(insertion_stability_at(g, v, k).stable, k <= tolerated)
            << "trial " << trial << " v=" << v << " k=" << k;
      }
      const bool swap1 = swap_stability_at(g, v, 1).stable;
      if (swap_stability_at(g, v, 2).stable) {
        EXPECT_TRUE(swap1) << "trial " << trial << " v=" << v;
      }
    }
  }
}

TEST(PropertyRandom, OneMoveBoundaryMatchesBasicGameCertifiers) {
  // P6: at k = 1 the k-move machinery must collapse onto the basic game's
  // own predicates — insertion_stability(g, 1) ⟺ is_insertion_stable(g).
  Xoshiro256ss rng(0x9009);
  for (int trial = 0; trial < 25; ++trial) {
    const Graph g = random_connected(rng);
    EXPECT_EQ(insertion_stability(g, 1).stable, is_insertion_stable(g)) << "trial " << trial;
  }
  EXPECT_EQ(insertion_stability(star(10), 1).stable, is_insertion_stable(star(10)));
  EXPECT_EQ(insertion_stability(cycle(9), 1).stable, is_insertion_stable(cycle(9)));
}

TEST(PropertyRandom, MaxEquilibriaSurviveOneSwapDeviations) {
  // P7: Theorem 12's computational-power axis at k = 1 — a max swap
  // equilibrium must leave no agent with an improving single
  // delete-and-reinsert deviation (the k-move analogue of the
  // deletion-criticality property P2 certifies).
  Xoshiro256ss rng(0x900A);
  int reached = 0;
  for (int trial = 0; trial < 15 && reached < 6; ++trial) {
    DynamicsConfig config;
    config.cost = UsageCost::Max;
    config.allow_neutral_deletions = true;
    config.max_moves = 20'000;
    config.seed = rng();
    const DynamicsResult r = run_dynamics(random_connected(rng), config);
    if (!r.converged) continue;
    ASSERT_TRUE(is_max_equilibrium(r.graph)) << "trial " << trial;
    for (Vertex v = 0; v < r.graph.num_vertices(); ++v) {
      EXPECT_TRUE(swap_stability_at(r.graph, v, 1).stable)
          << "trial " << trial << " v=" << v;
    }
    ++reached;
  }
  EXPECT_GT(reached, 0);  // the property must actually have been exercised
  // Anchor: the star is a max equilibrium and 1-swap stable everywhere.
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_TRUE(swap_stability_at(star(10), v, 1).stable);
  }
}

}  // namespace
}  // namespace bncg

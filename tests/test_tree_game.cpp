// Unit tests for the specialized tree engine (core/tree_game.hpp):
// O(n) distance sums, median re-attachment, Theorem 1 witnesses, and
// equivalence with the generic BFS engine.
#include "core/tree_game.hpp"

#include <gtest/gtest.h>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(TreeGame, DistanceSumsMatchBfsOnRandomTrees) {
  Xoshiro256ss rng(121);
  for (const Vertex n : {1u, 2u, 5u, 17u, 64u, 200u}) {
    const Graph t = random_tree(n, rng);
    const auto fast = tree_distance_sums(t);
    for (Vertex v = 0; v < n; ++v) {
      ASSERT_EQ(fast[v], distance_sum_from(t, v)) << "n=" << n << " v=" << v;
    }
  }
}

TEST(TreeGame, DistanceSumsRejectNonTrees) {
  EXPECT_THROW((void)tree_distance_sums(cycle(5)), std::invalid_argument);
  Graph forest(4);
  forest.add_edge(0, 1);
  EXPECT_THROW((void)tree_distance_sums(forest), std::invalid_argument);
}

TEST(TreeGame, MedianOfStarIsCenter) {
  EXPECT_EQ(tree_one_median(star(9)), 0u);
}

TEST(TreeGame, MedianOfPathIsMiddle) {
  EXPECT_EQ(tree_one_median(path(7)), 3u);
  // Even path: two medians; lowest id wins.
  EXPECT_EQ(tree_one_median(path(6)), 2u);
}

TEST(TreeGame, BestDeviationMatchesGenericEngine) {
  Xoshiro256ss rng(122);
  BfsWorkspace ws;
  for (int trial = 0; trial < 10; ++trial) {
    const Graph t = random_tree(14, rng);
    for (Vertex v = 0; v < t.num_vertices(); ++v) {
      const auto fast = best_tree_deviation(t, v);
      const auto generic = best_sum_deviation(t, v, ws);
      ASSERT_EQ(fast.has_value(), generic.has_value()) << "v=" << v << " " << to_string(t);
      if (fast && generic) {
        EXPECT_EQ(fast->gain, generic->cost_before - generic->cost_after)
            << "v=" << v << " " << to_string(t);
      }
    }
  }
}

TEST(TreeGame, StarAgentsAreAllStable) {
  const Graph s = star(10);
  for (Vertex v = 0; v < 10; ++v) {
    EXPECT_FALSE(best_tree_deviation(s, v).has_value()) << v;
  }
}

TEST(TreeGame, DynamicsConvergeToStars) {
  // Theorem 1 via the specialized engine: all fixed points have diameter ≤ 2.
  Xoshiro256ss rng(123);
  for (const Vertex n : {4u, 8u, 20u, 60u, 150u}) {
    const TreeDynamicsResult r = run_tree_dynamics(random_tree(n, rng));
    ASSERT_TRUE(r.converged) << "n=" << n;
    EXPECT_TRUE(is_tree(r.tree));
    EXPECT_LE(diameter(r.tree), 2u) << "n=" << n;
  }
}

TEST(TreeGame, DynamicsPreserveTreeInvariants) {
  Xoshiro256ss rng(124);
  const Graph start = random_tree(40, rng);
  const TreeDynamicsResult r = run_tree_dynamics(start);
  EXPECT_EQ(r.tree.num_vertices(), start.num_vertices());
  EXPECT_EQ(r.tree.num_edges(), start.num_edges());
  EXPECT_NO_THROW(r.tree.check_invariants());
}

TEST(TreeGame, Theorem1WitnessInequalitiesCannotBothFail) {
  // The paper's contradiction: summing s_b + s_w ≤ s_a and s_v + s_a ≤ s_b
  // forces s_v + s_w ≤ 0. So on every diameter ≥ 3 tree, at least one swap
  // wins. Sweep random trees.
  Xoshiro256ss rng(125);
  int witnesses = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Graph t = random_tree(12, rng);
    const auto w = theorem1_witness(t);
    if (!w) {
      EXPECT_LE(diameter(t), 2u);
      continue;
    }
    ++witnesses;
    EXPECT_TRUE(w->v_swap_wins || w->w_swap_wins) << to_string(t);
    EXPECT_GE(w->sv + w->sw, 2u);  // they count v and w themselves
    EXPECT_EQ(w->sv + w->sa + w->sb + w->sw, t.num_vertices());
  }
  EXPECT_GT(witnesses, 0);
}

TEST(TreeGame, WitnessPathIsGenuine) {
  Xoshiro256ss rng(126);
  const Graph t = random_tree(15, rng);
  const auto w = theorem1_witness(t);
  if (!w) return;  // tiny-diameter tree; nothing to check
  BfsWorkspace ws;
  EXPECT_EQ(distance(t, w->v, w->w, ws), 3u);
  EXPECT_TRUE(t.has_edge(w->v, w->a));
  EXPECT_TRUE(t.has_edge(w->a, w->b));
  EXPECT_TRUE(t.has_edge(w->b, w->w));
}

TEST(TreeGame, SpecializedAndGenericDynamicsAgreeOnFixedPoints) {
  Xoshiro256ss rng(127);
  const Graph start = random_tree(18, rng);
  const TreeDynamicsResult fast = run_tree_dynamics(start);
  DynamicsConfig config;
  config.max_moves = 100'000;
  const DynamicsResult generic = run_dynamics(start, config);
  ASSERT_TRUE(fast.converged);
  ASSERT_TRUE(generic.converged);
  // Both must land on stars (possibly different centers).
  EXPECT_LE(diameter(fast.tree), 2u);
  EXPECT_LE(diameter(generic.graph), 2u);
}

}  // namespace
}  // namespace bncg

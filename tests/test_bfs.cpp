// Unit tests for BFS primitives: distances, aggregates, early exits.
#include "graph/bfs.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(Bfs, PathDistancesAreLinear) {
  const Graph g = path(5);
  BfsWorkspace ws;
  const BfsResult r = bfs(g, 0, ws);
  EXPECT_EQ(ws.dist()[0], 0u);
  EXPECT_EQ(ws.dist()[4], 4u);
  EXPECT_EQ(r.ecc, 4u);
  EXPECT_EQ(r.dist_sum, 0u + 1 + 2 + 3 + 4);
  EXPECT_TRUE(r.spans(5));
}

TEST(Bfs, CycleDistancesWrapAround) {
  const Graph g = cycle(6);
  BfsWorkspace ws;
  const BfsResult r = bfs(g, 0, ws);
  EXPECT_EQ(ws.dist()[3], 3u);
  EXPECT_EQ(ws.dist()[5], 1u);
  EXPECT_EQ(r.ecc, 3u);
}

TEST(Bfs, DisconnectedVerticesKeepInfDist) {
  Graph g(4);
  g.add_edge(0, 1);
  BfsWorkspace ws;
  const BfsResult r = bfs(g, 0, ws);
  EXPECT_EQ(r.reached, 2u);
  EXPECT_FALSE(r.spans(4));
  EXPECT_EQ(ws.dist()[2], kInfDist);
  EXPECT_EQ(ws.dist()[3], kInfDist);
}

TEST(Bfs, SingletonGraph) {
  const Graph g(1);
  BfsWorkspace ws;
  const BfsResult r = bfs(g, 0, ws);
  EXPECT_EQ(r.reached, 1u);
  EXPECT_EQ(r.ecc, 0u);
  EXPECT_EQ(r.dist_sum, 0u);
}

TEST(Bfs, BoundedBfsTruncatesAtLimit) {
  const Graph g = path(10);
  BfsWorkspace ws;
  const BfsResult r = bfs_bounded(g, 0, 3, ws);
  EXPECT_EQ(r.reached, 4u);  // vertices 0..3
  EXPECT_EQ(r.ecc, 3u);
  EXPECT_EQ(ws.dist()[4], kInfDist);
}

TEST(Bfs, BoundedBfsWithLargeLimitEqualsFullBfs) {
  Xoshiro256ss rng(3);
  const Graph g = random_connected_gnm(30, 45, rng);
  BfsWorkspace ws1, ws2;
  const BfsResult full = bfs(g, 7, ws1);
  const BfsResult bounded = bfs_bounded(g, 7, 1000, ws2);
  EXPECT_EQ(full.dist_sum, bounded.dist_sum);
  EXPECT_EQ(full.ecc, bounded.ecc);
  EXPECT_EQ(ws1.dist(), ws2.dist());
}

TEST(Bfs, PairDistanceMatchesFullBfs) {
  Xoshiro256ss rng(11);
  const Graph g = random_connected_gnm(40, 60, rng);
  BfsWorkspace ws;
  for (Vertex u = 0; u < 10; ++u) {
    const BfsResult r = bfs(g, u, ws);
    (void)r;
    const std::vector<Vertex> reference = ws.dist();
    for (Vertex v = 0; v < g.num_vertices(); v += 7) {
      BfsWorkspace ws2;
      EXPECT_EQ(distance(g, u, v, ws2), reference[v]) << "pair " << u << "," << v;
    }
  }
}

TEST(Bfs, PairDistanceDisconnectedIsInf) {
  Graph g(3);
  g.add_edge(0, 1);
  BfsWorkspace ws;
  EXPECT_EQ(distance(g, 0, 2, ws), kInfDist);
  EXPECT_EQ(distance(g, 0, 0, ws), 0u);
}

TEST(Bfs, ConvenienceWrappersAgree) {
  const Graph g = star(8);
  EXPECT_EQ(distance_sum_from(g, 0), 7u);
  EXPECT_EQ(distance_sum_from(g, 1), 1u + 2 * 6);
  EXPECT_EQ(eccentricity(g, 0), 1u);
  EXPECT_EQ(eccentricity(g, 3), 2u);
  EXPECT_TRUE(is_connected(g));
  Graph h(2);
  EXPECT_FALSE(is_connected(h));
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
}

TEST(Bfs, WorkspaceReuseAcrossGraphSizes) {
  BfsWorkspace ws;
  const Graph big = path(50);
  (void)bfs(big, 0, ws);
  const Graph small = path(3);
  const BfsResult r = bfs(small, 0, ws);
  EXPECT_EQ(r.reached, 3u);
  EXPECT_EQ(ws.dist().size(), 3u);
}

TEST(Bfs, DistSumOfCompleteGraphIsNMinusOne) {
  const Graph g = complete(9);
  BfsWorkspace ws;
  for (Vertex v = 0; v < 9; ++v) {
    EXPECT_EQ(bfs(g, v, ws).dist_sum, 8u);
  }
}

}  // namespace
}  // namespace bncg

// Unit tests for utility modules: RNG, tables, timer, preconditions.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace bncg {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256ss a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LE(same, 1);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256ss rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_THROW((void)rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowCoversAllResidues) {
  Xoshiro256ss rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Xoshiro256ss rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = rng.uniform_int(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo = saw_lo || x == -3;
    saw_hi = saw_hi || x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Xoshiro256ss rng(6);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, BernoulliRespectsProbability) {
  Xoshiro256ss rng(7);
  int hits = 0;
  for (int i = 0; i < 10'000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 10'000.0, 0.3, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Xoshiro256ss rng(8);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ForkProducesIndependentStream) {
  Xoshiro256ss parent(9);
  Xoshiro256ss child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent() == child());
  EXPECT_LE(same, 1);
}

TEST(Table, AlignedAsciiOutput) {
  Table t({"n", "diam"});
  t.add_row({"10", "3"});
  t.add_row({"100", "5"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| n   | diam |"), std::string::npos);
  EXPECT_NE(out.find("| 100 | 5    |"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, RowWidthValidated) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(static_cast<long long>(42)), "42");
  EXPECT_EQ(fmt(1.0 / 0.0), "inf");
  EXPECT_EQ(verdict(true), "PASS");
  EXPECT_EQ(verdict(false), "FAIL");
}

TEST(Timer, MeasuresNonNegativeDurations) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.millis(), 0.0);
}

TEST(Error, RequireMacroThrowsWithContext) {
  try {
    BNCG_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("math broke"), std::string::npos);
  }
}

}  // namespace
}  // namespace bncg

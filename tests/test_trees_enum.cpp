// Unit tests for exhaustive labelled-tree enumeration (Prüfer odometer).
#include "gen/trees_enum.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/random.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"

namespace bncg {
namespace {

TEST(TreesEnum, PrueferDecodeProducesTrees) {
  EXPECT_TRUE(is_tree(tree_from_pruefer(5, {0, 0, 0})));  // star at 0... plus last join
  EXPECT_TRUE(is_tree(tree_from_pruefer(6, {1, 2, 3, 4})));
  EXPECT_TRUE(is_tree(tree_from_pruefer(2, {})));
  EXPECT_TRUE(is_tree(tree_from_pruefer(1, {})));
}

TEST(TreesEnum, AllZeroSequenceIsStarAtZero) {
  const Graph g = tree_from_pruefer(6, {0, 0, 0, 0});
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(diameter(g), 2u);
}

TEST(TreesEnum, PrueferDegreeProperty) {
  // deg(v) = 1 + multiplicity of v in the sequence.
  const std::vector<Vertex> seq{2, 2, 4};
  const Graph g = tree_from_pruefer(5, seq);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(4), 2u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(TreesEnum, BadInputsRejected) {
  EXPECT_THROW((void)tree_from_pruefer(5, {0, 0}), std::invalid_argument);      // wrong length
  EXPECT_THROW((void)tree_from_pruefer(5, {0, 0, 9}), std::invalid_argument);   // out of range
  EXPECT_THROW(for_each_labelled_tree(11, [](const Graph&) { return true; }),
               std::invalid_argument);
}

TEST(TreesEnum, CayleyFormulaCounts) {
  EXPECT_EQ(num_labelled_trees(1), 1u);
  EXPECT_EQ(num_labelled_trees(2), 1u);
  EXPECT_EQ(num_labelled_trees(3), 3u);
  EXPECT_EQ(num_labelled_trees(4), 16u);
  EXPECT_EQ(num_labelled_trees(5), 125u);
  EXPECT_EQ(num_labelled_trees(7), 16807u);
}

TEST(TreesEnum, EnumerationVisitsExactlyCayleyManyDistinctTrees) {
  for (const Vertex n : {3u, 4u, 5u, 6u}) {
    std::set<std::string> seen;
    std::uint64_t visits = 0;
    for_each_labelled_tree(n, [&](const Graph& t) {
      EXPECT_TRUE(is_tree(t));
      seen.insert(to_graph6(t));
      ++visits;
      return true;
    });
    EXPECT_EQ(visits, num_labelled_trees(n)) << "n=" << n;
    EXPECT_EQ(seen.size(), num_labelled_trees(n)) << "n=" << n;  // all distinct
  }
}

TEST(TreesEnum, EarlyStopRespected) {
  int count = 0;
  for_each_labelled_tree(6, [&](const Graph&) { return ++count < 10; });
  EXPECT_EQ(count, 10);
}

TEST(TreesEnum, MatchesRandomTreeDecoder) {
  // random_tree uses the same decoding; spot-check determinism agreement by
  // decoding the same sequence through both paths.
  const std::vector<Vertex> seq{3, 1, 4, 1};
  const Graph a = tree_from_pruefer(6, seq);
  EXPECT_TRUE(is_tree(a));
  EXPECT_EQ(a.degree(1), 3u);
}

}  // namespace
}  // namespace bncg

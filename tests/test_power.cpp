// Unit tests for graph powers and the prime-avoiding-interval helper.
#include "graph/power.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "graph/metrics.hpp"

namespace bncg {
namespace {

TEST(Power, FirstPowerIsIdentity) {
  const Graph g = cycle(7);
  EXPECT_EQ(power(g, 1), g);
}

TEST(Power, SquareOfPathSkipsOne) {
  const Graph p2 = power(path(5), 2);
  EXPECT_TRUE(p2.has_edge(0, 2));
  EXPECT_TRUE(p2.has_edge(0, 1));
  EXPECT_FALSE(p2.has_edge(0, 3));
}

TEST(Power, LargePowerGivesCompleteGraph) {
  const Graph g = path(6);
  EXPECT_EQ(power(g, 5), complete(6));
  EXPECT_EQ(power(g, 100), complete(6));
}

TEST(Power, PowerDiameterIsCeilingOfQuotient) {
  // Theorem 13's observation: distances divide by x, rounded up.
  const Graph g = path(13);  // diameter 12
  for (Vertex x = 1; x <= 6; ++x) {
    const Vertex expected = (12 + x - 1) / x;
    EXPECT_EQ(diameter(power(g, x)), expected) << "power " << x;
  }
}

TEST(Power, PowerDistancesAreCeilDiv) {
  const Graph g = cycle(12);
  const DistanceMatrix dm(g);
  const Vertex x = 3;
  const DistanceMatrix dmx(power(dm, x));
  for (Vertex u = 0; u < 12; ++u) {
    for (Vertex v = 0; v < 12; ++v) {
      EXPECT_EQ(dmx.at(u, v), (dm.at(u, v) + x - 1) / x);
    }
  }
}

TEST(Power, ExponentZeroRejected) {
  EXPECT_THROW((void)power(path(3), 0), std::invalid_argument);
}

TEST(Power, DisconnectedPartsStayDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const Graph p = power(g, 5);
  EXPECT_TRUE(p.has_edge(0, 1));
  EXPECT_FALSE(p.has_edge(0, 2));
}

TEST(PrimeAvoidingInterval, FindsSmallPrimeOutsideInterval) {
  // Interval [10, 12]: 2,3 divide members; 7 has multiples 7,14 — avoids it.
  const Vertex p = prime_avoiding_interval(10, 12, 100);
  EXPECT_NE(p, 0u);
  for (Vertex m = 10; m <= 12; ++m) EXPECT_NE(m % p, 0u) << "prime " << p;
}

TEST(PrimeAvoidingInterval, ReturnsZeroWhenImpossible) {
  // Every prime ≤ 7 has a multiple in [2, 100].
  EXPECT_EQ(prime_avoiding_interval(2, 100, 7), 0u);
}

TEST(PrimeAvoidingInterval, TheoremThirteenRegime) {
  // For an O(lg n)-length interval around D, an O(lg² n) prime must exist.
  for (Vertex d = 50; d <= 500; d += 37) {
    const Vertex lo = d;
    const Vertex hi = d + 20;  // ~ 2p·lg n band
    const Vertex p = prime_avoiding_interval(lo, hi, 1000);
    ASSERT_NE(p, 0u) << "band at " << d;
    for (Vertex m = lo; m <= hi; ++m) EXPECT_NE(m % p, 0u);
  }
}

TEST(PrimeAvoidingInterval, RejectsBadInterval) {
  EXPECT_THROW((void)prime_avoiding_interval(5, 4, 10), std::invalid_argument);
}

}  // namespace
}  // namespace bncg

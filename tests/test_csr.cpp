// CSR snapshots and batched bit-parallel BFS, differential-tested against
// the mutable Graph and its queue BFS: structure round-trips exactly,
// masked-edge traversals agree with physically removing the edge, and the
// batched APSP reproduces per-source BFS bit for bit on dense and sparse
// (queue-fallback) instances alike.
#include "graph/bfs_batch.hpp"
#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/apsp.hpp"
#include "graph/bfs.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

// ------------------------------------------------------------- structure

TEST(CsrGraph, SnapshotMatchesGraphStructure) {
  Xoshiro256ss rng(0xC5A);
  for (int trial = 0; trial < 20; ++trial) {
    const Vertex n = 2 + static_cast<Vertex>(rng.below(30));
    const std::size_t max_m = static_cast<std::size_t>(n) * (n - 1) / 2;
    const Graph g = random_gnm(n, rng.below(max_m + 1), rng);
    const CsrGraph csr(g);
    ASSERT_EQ(csr.num_vertices(), g.num_vertices());
    ASSERT_EQ(csr.num_edges(), g.num_edges());
    for (Vertex v = 0; v < n; ++v) {
      ASSERT_EQ(csr.degree(v), g.degree(v));
      const auto a = g.neighbors(v);
      const auto b = csr.neighbors(v);
      ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
      for (Vertex w = 0; w < n; ++w) EXPECT_EQ(csr.has_edge(v, w), g.has_edge(v, w));
    }
  }
}

TEST(CsrGraph, RebuildReflectsMutations) {
  Graph g = cycle(6);
  CsrGraph csr(g);
  EXPECT_TRUE(csr.has_edge(0, 1));
  g.remove_edge(0, 1);
  g.add_edge(0, 3);
  csr.rebuild(g);
  EXPECT_FALSE(csr.has_edge(0, 1));
  EXPECT_TRUE(csr.has_edge(0, 3));
  EXPECT_EQ(csr.num_edges(), g.num_edges());
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph csr{Graph(0)};
  EXPECT_EQ(csr.num_vertices(), 0u);
  EXPECT_EQ(csr.num_edges(), 0u);
}

// ------------------------------------------------------- single-source BFS

void expect_rows_match_graph_bfs(const Graph& reference, const CsrGraph& csr, MaskedEdge mask) {
  const Vertex n = reference.num_vertices();
  BfsWorkspace gws;
  BatchBfsWorkspace ws;
  std::vector<std::uint16_t> dist(n);
  for (Vertex src = 0; src < n; ++src) {
    const BfsResult expect = bfs(reference, src, gws);
    const BfsResult got = csr_bfs(csr, src, mask, dist.data(), ws);
    ASSERT_EQ(got.dist_sum, expect.dist_sum);
    ASSERT_EQ(got.ecc, expect.ecc);
    ASSERT_EQ(got.reached, expect.reached);
    for (Vertex x = 0; x < n; ++x) {
      const Vertex want = gws.dist()[x];
      ASSERT_EQ(dist[x], want == kInfDist ? kInfDist16 : static_cast<std::uint16_t>(want))
          << "src=" << src << " x=" << x;
    }
  }
}

TEST(CsrBfs, MatchesGraphBfs) {
  Xoshiro256ss rng(0xB15);
  for (int trial = 0; trial < 20; ++trial) {
    const Vertex n = 2 + static_cast<Vertex>(rng.below(40));
    const std::size_t max_m = static_cast<std::size_t>(n) * (n - 1) / 2;
    const Graph g = random_gnm(n, rng.below(max_m + 1), rng);
    expect_rows_match_graph_bfs(g, CsrGraph(g), MaskedEdge{});
  }
}

TEST(CsrBfs, MaskedEdgeEqualsPhysicalRemoval) {
  Xoshiro256ss rng(0x3A5C);
  for (int trial = 0; trial < 40; ++trial) {
    const Vertex n = 3 + static_cast<Vertex>(rng.below(24));
    const std::size_t max_m = static_cast<std::size_t>(n) * (n - 1) / 2;
    const Graph g = random_connected_gnm(n, std::min(max_m, n - 1 + rng.below(n)), rng);
    const CsrGraph csr(g);
    const auto edges = g.edges();
    const Edge e = edges[rng.below(edges.size())];
    Graph removed = g;
    removed.remove_edge(e.u, e.v);
    expect_rows_match_graph_bfs(removed, csr, MaskedEdge{e.u, e.v});
  }
}

// ------------------------------------------------------------ batched APSP

void expect_apsp_matches(const Graph& reference, const CsrGraph& csr, MaskedEdge mask) {
  const Vertex n = reference.num_vertices();
  BatchBfsWorkspace ws;
  std::vector<std::uint16_t> rows(static_cast<std::size_t>(n) * n);
  csr_apsp(csr, mask, rows.data(), ws);
  BfsWorkspace gws;
  for (Vertex src = 0; src < n; ++src) {
    bfs(reference, src, gws);
    for (Vertex x = 0; x < n; ++x) {
      const Vertex want = gws.dist()[x];
      ASSERT_EQ(rows[static_cast<std::size_t>(src) * n + x],
                want == kInfDist ? kInfDist16 : static_cast<std::uint16_t>(want))
          << "src=" << src << " x=" << x;
    }
  }
}

TEST(BatchBfs, ApspMatchesPerSourceBfsDense) {
  // Dense instances with n > 64 exercise the bit-parallel path across
  // multiple 64-source batches.
  Xoshiro256ss rng(0xAB5B);
  for (int trial = 0; trial < 6; ++trial) {
    const Vertex n = 65 + static_cast<Vertex>(rng.below(80));
    const Graph g = random_connected_gnm(n, 3 * static_cast<std::size_t>(n), rng);
    expect_apsp_matches(g, CsrGraph(g), MaskedEdge{});
  }
}

TEST(BatchBfs, ApspMatchesPerSourceBfsSparseFallback) {
  // Trees (m = n − 1) take the queue-BFS fallback; verify it too.
  Xoshiro256ss rng(0x7EE5);
  for (int trial = 0; trial < 6; ++trial) {
    const Vertex n = 65 + static_cast<Vertex>(rng.below(60));
    const Graph g = random_tree(n, rng);
    expect_apsp_matches(g, CsrGraph(g), MaskedEdge{});
  }
}

TEST(BatchBfs, ApspMatchesOnDisconnectedGraphs) {
  Xoshiro256ss rng(0xD15C);
  for (int trial = 0; trial < 10; ++trial) {
    const Vertex n = 66 + static_cast<Vertex>(rng.below(40));
    const Graph g = random_gnm(n, n, rng);  // typically disconnected
    expect_apsp_matches(g, CsrGraph(g), MaskedEdge{});
  }
}

TEST(BatchBfs, MaskedApspEqualsPhysicalRemoval) {
  Xoshiro256ss rng(0x9A55);
  for (int trial = 0; trial < 8; ++trial) {
    const Vertex n = 70 + static_cast<Vertex>(rng.below(30));
    const Graph g = random_connected_gnm(n, 2 * static_cast<std::size_t>(n), rng);
    const CsrGraph csr(g);
    const auto edges = g.edges();
    const Edge e = edges[rng.below(edges.size())];
    Graph removed = g;
    removed.remove_edge(e.u, e.v);
    expect_apsp_matches(removed, csr, MaskedEdge{e.u, e.v});
  }
}

TEST(BatchBfs, VertexMaskedApspEqualsPhysicalVertexRemoval) {
  // Masking a vertex must equal deleting all its incident edges, except
  // that the masked vertex's own row reads all-∞ (it is absent, not just
  // isolated).
  Xoshiro256ss rng(0xFACE);
  BatchBfsWorkspace ws;
  for (int trial = 0; trial < 8; ++trial) {
    const Vertex n = 66 + static_cast<Vertex>(rng.below(30));
    const Graph g = random_connected_gnm(n, 2 * static_cast<std::size_t>(n), rng);
    const CsrGraph csr(g);
    const Vertex v = static_cast<Vertex>(rng.below(n));
    Graph removed = g;
    const std::vector<Vertex> nbrs(g.neighbors(v).begin(), g.neighbors(v).end());
    for (const Vertex w : nbrs) removed.remove_edge(v, w);

    std::vector<std::uint16_t> rows(static_cast<std::size_t>(n) * n);
    csr_apsp(csr, MaskedEdge{}, rows.data(), ws, /*masked_vertex=*/v);
    BfsWorkspace gws;
    for (Vertex src = 0; src < n; ++src) {
      if (src == v) {
        for (Vertex x = 0; x < n; ++x) {
          ASSERT_EQ(rows[static_cast<std::size_t>(src) * n + x], kInfDist16);
        }
        continue;
      }
      bfs(removed, src, gws);
      for (Vertex x = 0; x < n; ++x) {
        const Vertex want = x == v ? kInfDist : gws.dist()[x];
        ASSERT_EQ(rows[static_cast<std::size_t>(src) * n + x],
                  want == kInfDist ? kInfDist16 : static_cast<std::uint16_t>(want))
            << "src=" << src << " x=" << x << " v=" << v;
      }
    }
  }
}

TEST(BatchBfs, PartialBatchWithExplicitSources) {
  const Graph g = path(12);
  const CsrGraph csr(g);
  BatchBfsWorkspace ws;
  const std::vector<Vertex> sources = {0, 5, 11};
  std::vector<std::uint16_t> rows(sources.size() * 12);
  bfs_batch(csr, sources, MaskedEdge{}, rows.data(), 12, ws);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    for (Vertex x = 0; x < 12; ++x) {
      const Vertex want = sources[i] > x ? sources[i] - x : x - sources[i];
      EXPECT_EQ(rows[i * 12 + x], want);
    }
  }
}

TEST(DistanceMatrix, StillMatchesGraphBfsThroughCsrBackend) {
  Xoshiro256ss rng(0xD157);
  for (int trial = 0; trial < 8; ++trial) {
    const Vertex n = 40 + static_cast<Vertex>(rng.below(90));
    const Graph g = trial % 2 == 0 ? random_connected_gnm(n, 2 * static_cast<std::size_t>(n), rng)
                                   : random_gnm(n, n, rng);
    const DistanceMatrix dm(g);
    BfsWorkspace gws;
    bool all_reached = true;
    for (Vertex src = 0; src < n; ++src) {
      const BfsResult r = bfs(g, src, gws);
      all_reached = all_reached && r.spans(n);
      for (Vertex x = 0; x < n; ++x) ASSERT_EQ(dm.at(src, x), gws.dist()[x]);
    }
    EXPECT_EQ(dm.connected(), all_reached);
  }
}

}  // namespace
}  // namespace bncg

// Unit tests for ε-distance-uniformity analysis (Section 5 definitions).
#include "graph/distance_uniformity.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "graph/metrics.hpp"

namespace bncg {
namespace {

TEST(Uniformity, CompleteGraphIsPerfectlyUniformAtRadiusOne) {
  const DistanceMatrix dm(complete(10));
  const UniformityResult r = best_uniformity(dm);
  EXPECT_EQ(r.radius, 1u);
  // From each vertex: 9 of 10 vertices at distance 1 (itself at 0).
  EXPECT_NEAR(r.epsilon, 0.1, 1e-12);
}

TEST(Uniformity, EpsilonAtSpecificRadius) {
  const DistanceMatrix dm(complete(5));
  EXPECT_NEAR(epsilon_at_radius(dm, 1), 0.2, 1e-12);
  EXPECT_NEAR(epsilon_at_radius(dm, 0), 0.8, 1e-12);
  EXPECT_NEAR(epsilon_at_radius(dm, 2), 1.0, 1e-12);
}

TEST(Uniformity, AlmostUniformNeverWorseThanExact) {
  for (Vertex n : {6u, 9u, 12u}) {
    const DistanceMatrix dm(cycle(n));
    for (Vertex r = 0; r <= n / 2; ++r) {
      EXPECT_LE(epsilon_at_radius_almost(dm, r), epsilon_at_radius(dm, r));
    }
  }
}

TEST(Uniformity, CycleSphereSizesAreTwoExceptAntipode) {
  const DistanceMatrix dm(cycle(8));
  const auto sizes = sphere_sizes(dm, 0);
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_EQ(sizes[3], 2u);
  EXPECT_EQ(sizes[4], 1u);  // unique antipode in even cycles
}

TEST(Uniformity, PathIsFarFromUniform) {
  const UniformityResult r = best_uniformity(path(20));
  // From an endpoint, each distance class has exactly one vertex.
  EXPECT_GT(r.epsilon, 0.9);
}

TEST(Uniformity, StarAlmostUniformAtRadiusOne) {
  // From the center: n−1 at distance 1. From a leaf: 1 at distance 1,
  // n−2 at distance 2 — the almost-uniform band {1, 2} captures everyone.
  const UniformityResult r = best_almost_uniformity(star(20));
  EXPECT_EQ(r.radius, 1u);
  EXPECT_NEAR(r.epsilon, 1.0 / 20.0, 1e-12);
}

TEST(Uniformity, HypercubeConcentratesAtMiddleLayer) {
  // Q_10: middle binomial layer holds C(10,5)/2^10 ≈ 24.6% of vertices, so
  // even the best exact radius leaves ε ≈ 0.75 — high-dimensional cubes are
  // *not* distance-uniform for small ε. (Contrast with Theorem 15's regime.)
  const UniformityResult r = best_uniformity(hypercube(10));
  EXPECT_EQ(r.radius, 5u);
  EXPECT_GT(r.epsilon, 0.7);
  EXPECT_LT(r.epsilon, 0.8);
}

TEST(Uniformity, GraphWrapperMatchesMatrixOverload) {
  const Graph g = cycle(11);
  const DistanceMatrix dm(g);
  const UniformityResult a = best_uniformity(g);
  const UniformityResult b = best_uniformity(dm);
  EXPECT_EQ(a.radius, b.radius);
  EXPECT_DOUBLE_EQ(a.epsilon, b.epsilon);
}

TEST(Uniformity, OddCycleBestRadiusIsExtreme) {
  // C_{2k+1}: every vertex sees exactly 2 vertices at each distance 1..k.
  const DistanceMatrix dm(cycle(13));
  const UniformityResult r = best_uniformity(dm);
  EXPECT_NEAR(r.epsilon, 1.0 - 2.0 / 13.0, 1e-12);
}

TEST(Uniformity, PairUniformityOfCompleteGraphIsOne) {
  const DistanceMatrix dm(complete(7));
  const PairUniformity p = best_pair_uniformity(dm, /*almost=*/false);
  EXPECT_EQ(p.radius, 1u);
  EXPECT_DOUBLE_EQ(p.fraction, 1.0);
}

TEST(Uniformity, BroomSeparatesPairFromPerVertexUniformity) {
  // The §5 remark: the broom is pair-almost-uniform (most ordered pairs sit
  // at one distance band) while per-vertex uniformity fails badly — the hub
  // has nobody at the dominant distance.
  const Graph g = broom_graph(/*num_paths=*/6, /*path_len=*/4, /*cluster=*/50);
  const DistanceMatrix dm(g);
  const PairUniformity pair = best_pair_uniformity(dm, /*almost=*/true);
  const PairUniformity pair_exact = best_pair_uniformity(dm, /*almost=*/false);
  const UniformityResult vertexwise = best_uniformity(dm);
  EXPECT_GT(pair.fraction, 0.65);              // dominant cross-cluster band
  EXPECT_GT(vertexwise.epsilon, 0.5);          // per-vertex definition fails
  EXPECT_EQ(pair_exact.radius, 2u * (4 + 1));  // cluster-to-cluster distance
  // Large diameter despite pair uniformity — why Conjecture 14 must
  // quantify per vertex.
  EXPECT_EQ(distance_stats(dm).diameter, 2u * (4 + 1));
}

TEST(Uniformity, BroomShape) {
  const Graph g = broom_graph(3, 2, 4);
  EXPECT_EQ(g.num_vertices(), 1u + 3 * (2 + 4));
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_TRUE(is_tree(g));
}

TEST(Uniformity, PairUniformityNeverBelowPerVertex) {
  // 1 − ε per-vertex uniformity forces at least that pair fraction.
  for (const Graph& g : {cycle(10), star(12), hypercube(5)}) {
    const DistanceMatrix dm(g);
    const UniformityResult vertexwise = best_uniformity(dm);
    const PairUniformity pair = best_pair_uniformity(dm, /*almost=*/false);
    EXPECT_GE(pair.fraction + 1e-9, (1.0 - vertexwise.epsilon) * dm.size() / (dm.size() - 1.0) -
                                        1.0 / (dm.size() - 1.0))
        << to_string(g);
  }
}

TEST(Uniformity, SphereSizesSumToN) {
  const DistanceMatrix dm(hypercube(6));
  const auto sizes = sphere_sizes(dm, 3);
  Vertex total = 0;
  for (const Vertex s : sizes) total += s;
  EXPECT_EQ(total, 64u);
}

}  // namespace
}  // namespace bncg

// Unit tests for k-insertion stability and the exact set-cover solver.
#include "core/kstability.hpp"

#include <gtest/gtest.h>

#include "core/equilibrium.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(MinCover, TrivialCases) {
  EXPECT_EQ(min_cover_size(0, {}, 3), 0u);
  // One set covering everything.
  EXPECT_EQ(min_cover_size(3, {{0b111}}, 3), 1u);
  // Uncoverable element.
  EXPECT_FALSE(min_cover_size(3, {{0b011}}, 3).has_value());
}

TEST(MinCover, NeedsTwoSets) {
  const std::vector<std::vector<std::uint64_t>> sets = {{0b0011}, {0b1100}, {0b0110}};
  EXPECT_EQ(min_cover_size(4, sets, 4), 2u);
}

TEST(MinCover, DepthCapBlocksDeepCovers) {
  const std::vector<std::vector<std::uint64_t>> sets = {{0b001}, {0b010}, {0b100}};
  EXPECT_FALSE(min_cover_size(3, sets, 2).has_value());
  EXPECT_EQ(min_cover_size(3, sets, 3), 3u);
}

TEST(MinCover, PrefersSmallCoverWhenGreedyWouldNot) {
  // Classic greedy trap: a big set that forces 3 picks vs an exact 2-cover.
  // Universe {0..5}; greedy takes {0,1,2,3} then needs two more.
  const std::vector<std::vector<std::uint64_t>> sets = {
      {0b001111},  // 0-3 (greedy's first pick)
      {0b000111},  // 0-2
      {0b111000},  // 3-5
  };
  EXPECT_EQ(min_cover_size(6, sets, 6), 2u);
}

TEST(MinCover, MultiWordUniverse) {
  // Universe of 100 elements split between two sets.
  std::vector<std::uint64_t> low(2, 0), high(2, 0);
  for (Vertex i = 0; i < 50; ++i) low[i / 64] |= std::uint64_t{1} << (i % 64);
  for (Vertex i = 50; i < 100; ++i) high[i / 64] |= std::uint64_t{1} << (i % 64);
  EXPECT_EQ(min_cover_size(100, {low, high}, 5), 2u);
}

TEST(KStability, PathEndpointImprovesWithOneInsertion) {
  const DistanceMatrix dm(path(7));
  const KStabilityReport r = insertion_stability_at(dm, 0, 1);
  EXPECT_FALSE(r.stable);
  ASSERT_EQ(r.witness_endpoints.size(), 1u);
  // The witness must actually reduce ecc: adding 0–w with d(w, 6) ≤ ecc−2.
  EXPECT_LE(dm.at(r.witness_endpoints[0], 6), dm.eccentricity(0) - 2);
}

TEST(KStability, CompleteGraphIsTriviallyStable) {
  const DistanceMatrix dm(complete(6));
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_TRUE(insertion_stability_at(dm, v, 5).stable);
  }
}

TEST(KStability, StableForZeroInsertions) {
  const DistanceMatrix dm(path(5));
  EXPECT_TRUE(insertion_stability_at(dm, 0, 0).stable);
}

TEST(KStability, OneStabilityMatchesInsertionStablePredicate) {
  // insertion_stability(g, 1) must agree with is_insertion_stable on its
  // "some endpoint improves" half: if a graph is 1-insertion-stable at every
  // vertex, no insertion decreases any endpoint's eccentricity.
  for (const Graph& g :
       {rotated_torus(3).graph(), star(8), cycle(6), complete(5), path(6)}) {
    const bool via_cover = insertion_stability(g, 1).stable;
    EXPECT_EQ(via_cover, is_insertion_stable(g)) << to_string(g);
  }
}

TEST(KStability, RotatedTorusStableUnderOneInsertionOnly) {
  // Theorem 12 (d = 2): stable under d−1 = 1 insertion; two coordinated
  // insertions can beat it (the paper's trade-off is tight in spirit).
  const DiagonalTorus torus = rotated_torus(4);
  const DistanceMatrix dm(torus.graph());
  // Vertex-transitive: one representative suffices, but check a few.
  for (Vertex v : {0u, 5u, 17u}) {
    EXPECT_TRUE(insertion_stability_at(dm, v, 1).stable) << v;
  }
}

TEST(KStability, ThreeDimTorusStableUnderTwoInsertions) {
  // d = 3 → stable under 2 insertions.
  const DiagonalTorus torus(3, 3);
  const DistanceMatrix dm(torus.graph());
  EXPECT_TRUE(insertion_stability_at(dm, 0, 1).stable);
  EXPECT_TRUE(insertion_stability_at(dm, 0, 2).stable);
}

TEST(KStability, CycleFallsToOneInsertion) {
  // Long cycles improve with a single chord to the antipode.
  const DistanceMatrix dm(cycle(12));
  const KStabilityReport r = insertion_stability_at(dm, 0, 1);
  EXPECT_FALSE(r.stable);
}

TEST(KStability, MaxToleratedInsertionsOnTori) {
  // The paper guarantees stability under d−1 insertions. For d = 2 with
  // k ≥ 4 two coordinated insertions (corner + midpoint) do break it, so
  // the tolerance is exactly 1; in higher dimensions with small k the far
  // sphere is thin and the measured tolerance can exceed d−1 (the theorem
  // is a lower bound, not an equality).
  {
    const DiagonalTorus torus(2, 4);
    const DistanceMatrix dm(torus.graph());
    EXPECT_EQ(max_tolerated_insertions(dm, 0, 4), 1u);
  }
  {
    const DiagonalTorus torus(3, 3);
    const DistanceMatrix dm(torus.graph());
    EXPECT_GE(max_tolerated_insertions(dm, 0, 4), 2u);
  }
}

TEST(KStability, WitnessActuallyReducesEccentricity) {
  // Validate unstable witnesses end-to-end by applying the insertions.
  const Graph g = cycle(14);
  const DistanceMatrix dm(g);
  const KStabilityReport r = insertion_stability_at(dm, 0, 2);
  ASSERT_FALSE(r.stable);
  Graph h = g;
  for (const Vertex w : r.witness_endpoints) h.add_edge_if_absent(0, w);
  EXPECT_LT(eccentricity(h, 0), dm.eccentricity(0));
}

TEST(KSwapStability, PathEndpointImprovesWithOneSwap) {
  // Endpoint 0 of P_7 re-attaches toward the middle: ecc 6 → 4.
  const KStabilityReport r = swap_stability_at(path(7), 0, 1);
  EXPECT_FALSE(r.stable);
  ASSERT_EQ(r.witness_deletions.size(), 1u);
  ASSERT_EQ(r.witness_endpoints.size(), 1u);
  // Validate the witness end to end.
  Graph h = path(7);
  h.remove_edge(0, r.witness_deletions[0]);
  h.add_edge_if_absent(0, r.witness_endpoints[0]);
  EXPECT_LT(eccentricity(h, 0), 6u);
}

TEST(KSwapStability, CycleVertexImprovesWithOneSwap) {
  EXPECT_FALSE(swap_stability_at(cycle(12), 0, 1).stable);
}

TEST(KSwapStability, RotatedTorusIsOneSwapStable) {
  // The form Theorem 12 states: stable under swapping up to d−1 = 1 edge.
  const DiagonalTorus torus = rotated_torus(4);
  EXPECT_TRUE(swap_stability_at(torus.graph(), 0, 1).stable);
}

TEST(KSwapStability, ThreeDimTorusIsTwoSwapStable) {
  const DiagonalTorus torus(3, 3);
  EXPECT_TRUE(swap_stability_at(torus.graph(), 0, 2).stable);
}

TEST(KSwapStability, InsertionStabilityImpliesSwapStability) {
  // Deletions only lengthen paths in H = G − D, so a k-swap improvement
  // yields a k-insertion improvement; contrapositive checked empirically.
  Xoshiro256ss rng(222);
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_connected_gnm(12, 20, rng);
    const DistanceMatrix dm(g);
    for (Vertex v = 0; v < 4; ++v) {
      if (insertion_stability_at(dm, v, 1).stable) {
        EXPECT_TRUE(swap_stability_at(g, v, 1).stable) << to_string(g) << " v=" << v;
      }
    }
  }
}

TEST(KSwapStability, ZeroBudgetIsAlwaysStable) {
  EXPECT_TRUE(swap_stability_at(path(5), 0, 0).stable);
}

TEST(KSwapStability, CompleteGraphIsStable) {
  EXPECT_TRUE(swap_stability_at(complete(6), 0, 3).stable);
}

TEST(KStability, DisconnectedGraphRejected) {
  Graph g(4);
  g.add_edge(0, 1);
  const DistanceMatrix dm(g);
  EXPECT_THROW((void)insertion_stability_at(dm, 0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace bncg

// Fault-tolerant dispatcher (svc/dispatcher.hpp) end to end, with
// in-process worker threads over unix-domain sockets: served certificates
// must be byte-identical to the single-process certifiers under every
// injected fault (disconnects, expired leases, corruption, duplicates),
// degradation must be a refusal rather than a wrong verdict, and the
// crash-safe journal must make --resume recompute nothing. Crash chaos
// (std::_Exit) is exercised by scripts/certify_chaos.sh, which owns real
// processes; everything else injects faults in-process here.
#include "svc/dispatcher.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/certify_sharded.hpp"
#include "core/swap_engine.hpp"
#include "gen/random.hpp"
#include "graph/io.hpp"
#include "svc/journal.hpp"
#include "svc/net.hpp"
#include "svc/protocol.hpp"
#include "svc/worker.hpp"
#include "util/rng.hpp"

namespace bncg::svc {
namespace {

namespace fs = std::filesystem;

void expect_same_certificate(const EquilibriumCertificate& got,
                             const EquilibriumCertificate& want, const std::string& context) {
  ASSERT_EQ(got.is_equilibrium, want.is_equilibrium) << context;
  EXPECT_EQ(got.moves_checked, want.moves_checked) << context;
  ASSERT_EQ(got.witness.has_value(), want.witness.has_value()) << context;
  if (!got.witness) return;
  EXPECT_EQ(got.witness->swap.v, want.witness->swap.v) << context;
  EXPECT_EQ(got.witness->swap.remove_w, want.witness->swap.remove_w) << context;
  EXPECT_EQ(got.witness->swap.add_w, want.witness->swap.add_w) << context;
  EXPECT_EQ(got.witness->cost_before, want.witness->cost_before) << context;
  EXPECT_EQ(got.witness->cost_after, want.witness->cost_after) << context;
  EXPECT_EQ(got.witness->kind, want.witness->kind) << context;
}

void nap() { std::this_thread::sleep_for(std::chrono::milliseconds(25)); }

class SvcDispatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest -j runs each TEST_F as its own process, and
    // a shared directory makes SetUp's remove_all race a sibling's
    // socket/journal files at the same path. The pid suffix stays short on
    // purpose — this directory holds unix-domain sockets, whose sun_path
    // limit punishes long prefixes. In-process tests run sequentially and
    // TearDown removes the directory, so the pid alone disambiguates.
    dir_ = (fs::temp_directory_path() /
            ("bncg_svc_dispatcher_" + std::to_string(static_cast<long>(::getpid()))))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    Xoshiro256ss rng(0xD15);
    g_ = random_connected_gnm(48, 120, rng);
  }

  void TearDown() override {
    join_workers();
    fs::remove_all(dir_);
  }

  /// Stops retry loops and joins every worker thread (serve has returned
  /// by the time callers use this, so nothing is left to talk to).
  void join_workers() {
    stop_.store(true);
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
    stop_.store(false);
  }

  [[nodiscard]] std::string socket_address(const std::string& name) const {
    return "unix:" + dir_ + "/" + name + ".sock";
  }

  /// Launches run_connect_worker on a background thread, reconnecting
  /// through TransportError until the session ends cleanly (Done/Refuse)
  /// or the test stops it. `gate`, when given, delays the first connect
  /// until another thread raises it — used to sequence faults
  /// deterministically. The final report lands in `*report_out`.
  void spawn_worker(const Graph& g, ConnectConfig config,
                    const std::atomic<bool>* gate = nullptr,
                    std::optional<WorkerReport>* report_out = nullptr) {
    config.connect_retries = 0;
    threads_.emplace_back([this, &g, config, gate, report_out] {
      while (gate != nullptr && !gate->load() && !stop_.load()) nap();
      while (!stop_.load()) {
        try {
          const WorkerReport report = run_connect_worker(g, config);
          if (report_out != nullptr) *report_out = report;
          return;
        } catch (const TransportError&) {
          nap();
        }
      }
    });
  }

  /// A protocol-fluent saboteur: handshakes, takes one lease, raises
  /// `got_lease`, and disconnects without delivering anything.
  void spawn_lease_dropper(const std::string& address, std::atomic<bool>& got_lease) {
    threads_.emplace_back([this, address, &got_lease] {
      Socket sock;
      while (!sock.valid() && !stop_.load()) {
        try {
          sock = connect_to(address);
        } catch (const TransportError&) {
          nap();
        }
      }
      if (!sock.valid()) return;
      try {
        HelloBody hello;
        hello.fingerprint = graph_fingerprint(g_);
        hello.n = g_.num_vertices();
        hello.m = g_.num_edges();
        sock.send_frame(make_hello(hello));
        if (sock.recv_frame().type != FrameType::Welcome) return;
        if (sock.recv_frame().type != FrameType::Lease) return;
      } catch (const TransportError&) {
        return;
      }
      got_lease.store(true);
      // Destructor closes the socket: the accepted lease dies with it.
    });
  }

  [[nodiscard]] ServeOutcome serve(const ServeConfig& config) {
    return serve_certification(g_, config, nullptr);
  }

  void expect_parity(const ServeOutcome& outcome, UsageCost model, bool deletions,
                     const std::string& context) {
    ASSERT_TRUE(outcome.complete) << context;
    ASSERT_TRUE(outcome.certificate.has_value()) << context;
    const SwapEngine engine(g_);
    expect_same_certificate(outcome.certificate->certificate, engine.certify(model, deletions),
                            context);
    EXPECT_EQ(outcome.certificate->agents_scanned, g_.num_vertices()) << context;
  }

  std::string dir_;
  Graph g_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stop_{false};
};

TEST_F(SvcDispatcherTest, HonestWorkersReproduceTheCertificate) {
  ServeConfig config;
  config.address = socket_address("honest");
  config.shards = 6;
  config.model = UsageCost::Max;
  config.include_deletions = true;
  spawn_worker(g_, {.address = config.address});
  spawn_worker(g_, {.address = config.address});
  const ServeOutcome outcome = serve(config);
  expect_parity(outcome, UsageCost::Max, true, "two honest workers");
  EXPECT_EQ(outcome.stats.redispatches, 0u);
  EXPECT_EQ(outcome.stats.corrupt_results, 0u);
  EXPECT_GE(outcome.stats.workers_connected, 1u);  // one may arrive post-finish
  EXPECT_EQ(outcome.stats.leases_granted, 6u);
}

TEST_F(SvcDispatcherTest, WrongInstanceWorkerRefusedAtHandshake) {
  Xoshiro256ss rng(0xBAD);
  const Graph wrong = random_connected_gnm(48, 120, rng);
  ASSERT_NE(graph_fingerprint(wrong), graph_fingerprint(g_));
  ServeConfig config;
  config.address = socket_address("refuse");
  config.shards = 3;

  // The honest worker starts only after the wrong-instance worker has
  // been refused, so the refusal can never race the run's completion.
  std::optional<WorkerReport> wrong_report;
  std::atomic<bool> refused{false};
  threads_.emplace_back([&, this] {
    ConnectConfig worker;
    worker.address = config.address;
    worker.connect_retries = 0;
    while (!stop_.load()) {
      try {
        wrong_report = run_connect_worker(wrong, worker);
        break;
      } catch (const TransportError&) {
        nap();
      }
    }
    refused.store(true);
  });
  spawn_worker(g_, {.address = config.address}, &refused);

  const ServeOutcome outcome = serve(config);
  expect_parity(outcome, UsageCost::Sum, false, "refusal then honest completion");
  join_workers();
  ASSERT_TRUE(wrong_report.has_value());
  EXPECT_TRUE(wrong_report->refused);
  EXPECT_NE(wrong_report->refuse_reason.find("fingerprint"), std::string::npos);
  EXPECT_EQ(wrong_report->leases_completed, 0u);
  EXPECT_EQ(outcome.stats.handshakes_refused, 1u);
}

TEST_F(SvcDispatcherTest, DisconnectMidLeaseIsRedispatched) {
  ServeConfig config;
  config.address = socket_address("drop");
  config.shards = 4;
  config.backoff_ms = 10;
  std::atomic<bool> dropped{false};
  spawn_lease_dropper(config.address, dropped);
  spawn_worker(g_, {.address = config.address}, &dropped);
  const ServeOutcome outcome = serve(config);
  expect_parity(outcome, UsageCost::Sum, false, "disconnect re-dispatch");
  EXPECT_GE(outcome.stats.disconnects, 1u);
  EXPECT_GE(outcome.stats.redispatches, 1u);
  EXPECT_GE(outcome.stats.leases_granted, 5u);
}

TEST_F(SvcDispatcherTest, ExpiredLeaseIsStolenByHonestWorker) {
  ServeConfig config;
  config.address = socket_address("hang");
  config.shards = 4;
  config.lease_ms = 400;  // the hang worker sleeps ~850 ms past its grant
  config.backoff_ms = 10;
  ConnectConfig hanging;
  hanging.address = config.address;
  hanging.chaos.mode = ChaosConfig::Mode::Hang;
  spawn_worker(g_, hanging);
  // The honest worker is slowed so the hang worker reliably wins a lease
  // before the honest one drains every range.
  ConnectConfig slowed;
  slowed.address = config.address;
  slowed.chaos.mode = ChaosConfig::Mode::Slow;
  slowed.chaos.delay_ms = 100;
  spawn_worker(g_, slowed);
  const ServeOutcome outcome = serve(config);
  expect_parity(outcome, UsageCost::Sum, false, "straggler work stealing");
  EXPECT_GE(outcome.stats.expired_leases, 1u);
  EXPECT_GE(outcome.stats.redispatches, 1u);
}

TEST_F(SvcDispatcherTest, CorruptionExhaustsRetriesIntoRefusalNeverAWrongVerdict) {
  ServeConfig config;
  config.address = socket_address("corrupt");
  config.shards = 1;
  config.max_retries = 0;  // first strike quarantines
  ConnectConfig corrupting;
  corrupting.address = config.address;
  corrupting.chaos.mode = ChaosConfig::Mode::CorruptAll;
  corrupting.chaos.seed = 7;
  spawn_worker(g_, corrupting);
  const ServeOutcome outcome = serve(config);
  EXPECT_FALSE(outcome.complete);
  EXPECT_FALSE(outcome.certificate.has_value());
  ASSERT_EQ(outcome.quarantined.size(), 1u);
  EXPECT_EQ(outcome.quarantined.front().failures, 1u);
  EXPECT_EQ(outcome.agents_uncovered, g_.num_vertices());
  EXPECT_GE(outcome.stats.corrupt_results, 1u);
}

TEST_F(SvcDispatcherTest, DuplicateResultsAreCountedNotDoubleFolded) {
  ServeConfig config;
  config.address = socket_address("dup");
  config.shards = 5;
  ConnectConfig duplicating;
  duplicating.address = config.address;
  duplicating.chaos.mode = ChaosConfig::Mode::Duplicate;
  spawn_worker(g_, duplicating);
  const ServeOutcome outcome = serve(config);
  expect_parity(outcome, UsageCost::Sum, false, "double-sent results");
  // The final range's duplicate may race the dispatcher's own shutdown;
  // every earlier one must have been seen and ignored.
  EXPECT_GE(outcome.stats.duplicate_results, 4u);
  EXPECT_EQ(outcome.stats.corrupt_results, 0u);
}

TEST_F(SvcDispatcherTest, JournalResumeRecomputesNothingAlreadyCertified) {
  ServeConfig config;
  config.address = socket_address("journal");
  config.shards = 5;
  config.journal_dir = dir_ + "/journal";

  // Seed the journal exactly as a killed dispatcher would have left it:
  // a valid session plus two completed ranges.
  {
    JournalHeader header;
    header.fingerprint = graph_fingerprint(g_);
    header.n = g_.num_vertices();
    header.m = g_.num_edges();
    header.shard_count = 5;
    ShardJournal journal = ShardJournal::create(config.journal_dir, header);
    const SwapEngine engine(g_);
    for (const std::uint32_t idx : {0u, 3u}) {
      AgentRange range;
      range.shard_index = idx;
      range.shard_count = 5;
      range.lo = static_cast<Vertex>(idx * g_.num_vertices() / 5);
      range.hi = static_cast<Vertex>((idx + 1) * g_.num_vertices() / 5);
      journal.record(certify_agent_range(engine, range, UsageCost::Sum, false, false));
    }
  }

  config.resume = true;
  spawn_worker(g_, {.address = config.address});
  const ServeOutcome outcome = serve(config);
  expect_parity(outcome, UsageCost::Sum, false, "partial resume");
  EXPECT_EQ(outcome.stats.resumed_ranges, 2u);
  EXPECT_EQ(outcome.stats.leases_granted, 3u);  // only the missing ranges
  EXPECT_EQ(outcome.stats.journaled_ranges, 3u);

  // Second resume: the journal now covers everything — the dispatcher
  // must finish without granting a single lease (and without a listener:
  // no worker is even spawned).
  const ServeOutcome replay = serve(config);
  expect_parity(replay, UsageCost::Sum, false, "full resume");
  EXPECT_EQ(replay.stats.resumed_ranges, 5u);
  EXPECT_EQ(replay.stats.leases_granted, 0u);
}

TEST_F(SvcDispatcherTest, ResumeRefusesForeignJournal) {
  Xoshiro256ss rng(0xFEED);
  const Graph other = random_connected_gnm(48, 120, rng);
  ASSERT_NE(graph_fingerprint(other), graph_fingerprint(g_));
  JournalHeader header;
  header.fingerprint = graph_fingerprint(other);
  header.n = other.num_vertices();
  header.m = other.num_edges();
  header.shard_count = 2;
  { (void)ShardJournal::create(dir_ + "/foreign", header); }

  ServeConfig config;
  config.address = socket_address("foreign");
  config.journal_dir = dir_ + "/foreign";
  config.resume = true;
  EXPECT_THROW((void)serve(config), std::invalid_argument);

  // Same instance but a different run configuration is refused too.
  JournalHeader mine;
  mine.fingerprint = graph_fingerprint(g_);
  mine.n = g_.num_vertices();
  mine.m = g_.num_edges();
  mine.model = UsageCost::Max;
  mine.shard_count = 2;
  { (void)ShardJournal::create(dir_ + "/othermodel", mine); }
  config.journal_dir = dir_ + "/othermodel";
  EXPECT_THROW((void)serve(config), std::invalid_argument);
}

TEST_F(SvcDispatcherTest, ResumePinsTheJournalShardCount) {
  ServeConfig config;
  config.address = socket_address("pin");
  config.shards = 4;
  config.journal_dir = dir_ + "/pin";
  spawn_worker(g_, {.address = config.address});
  const ServeOutcome first = serve(config);
  expect_parity(first, UsageCost::Sum, false, "journaled run");
  join_workers();

  // Re-serve with a different --shards: the journal's split must win, and
  // with all 4 ranges recovered no worker is needed at all.
  config.shards = 9;
  config.resume = true;
  const ServeOutcome resumed = serve(config);
  expect_parity(resumed, UsageCost::Sum, false, "resume with shard override");
  EXPECT_EQ(resumed.stats.resumed_ranges, 4u);
  EXPECT_EQ(resumed.certificate->shards_used, 4u);
}

// --- session multiplexing (serve_jobs) --------------------------------------

TEST_F(SvcDispatcherTest, RedispatchDelaySaturatesInsteadOfOverflowing) {
  // The k-th failure backs off by backoff·2^min(k−1, 6): a pinned sequence,
  // because scripts and operators reason about these exact delays.
  const std::uint64_t want[] = {50, 100, 200, 400, 800, 1600, 3200, 3200, 3200};
  for (std::uint32_t k = 1; k <= 9; ++k) {
    EXPECT_EQ(redispatch_delay_ms(50, k), want[k - 1]) << "failure " << k;
  }
  // A huge base with a deep retry budget must saturate at the one-hour
  // ceiling — never shift into zero or a past deadline.
  EXPECT_EQ(redispatch_delay_ms(~0ull, 1), kMaxRedispatchDelayMs);
  EXPECT_EQ(redispatch_delay_ms(~0ull, 200), kMaxRedispatchDelayMs);
  EXPECT_EQ(redispatch_delay_ms(kMaxRedispatchDelayMs, 7), kMaxRedispatchDelayMs);
  EXPECT_EQ(redispatch_delay_ms(kMaxRedispatchDelayMs / 2, 2), kMaxRedispatchDelayMs / 2 * 2);
  EXPECT_EQ(redispatch_delay_ms(1, 100), 64u);  // exponent clamped at 2^6
  EXPECT_GT(redispatch_delay_ms(1, 1), 0u);
}

[[nodiscard]] JobSpec job_for(const Graph& g, UsageCost model, std::size_t shards) {
  JobSpec job;
  job.fingerprint = graph_fingerprint(g);
  job.n = g.num_vertices();
  job.m = g.num_edges();
  job.model = model;
  job.shards = shards;
  return job;
}

TEST_F(SvcDispatcherTest, SiblingSessionsShareOneWorkerAndBothMatchReference) {
  // Two sessions over the SAME instance differing only in run config: the
  // per-lease configuration must keep one worker from ever certifying the
  // wrong clause, and the fair scheduler must alternate between them.
  MultiServeConfig config;
  config.address = socket_address("siblings");
  const std::vector<JobSpec> jobs = {job_for(g_, UsageCost::Sum, 3),
                                     job_for(g_, UsageCost::Max, 3)};
  std::optional<WorkerReport> report;
  spawn_worker(g_, {.address = config.address}, nullptr, &report);
  const MultiServeOutcome outcome = serve_jobs(jobs, config, nullptr);
  join_workers();

  ASSERT_EQ(outcome.sessions.size(), 2u);
  const SwapEngine engine(g_);
  for (const SessionOutcome& s : outcome.sessions) {
    ASSERT_TRUE(s.complete) << "session " << s.session_id;
    expect_same_certificate(s.certificate->certificate,
                            engine.certify(s.header.model, false),
                            "session " + std::to_string(s.session_id));
  }
  EXPECT_EQ(outcome.stats.sessions_queued, 2u);
  EXPECT_EQ(outcome.stats.sessions_completed, 2u);
  EXPECT_EQ(outcome.stats.sessions_refused, 0u);
  EXPECT_EQ(outcome.stats.leases_granted, 6u);

  // Deficit fairness with a single worker is fully deterministic: least
  // granted first, ties to the lowest session id — strict alternation.
  ASSERT_TRUE(report.has_value());
  const std::vector<std::uint64_t> want = {1, 2, 1, 2, 1, 2};
  EXPECT_EQ(report->lease_sessions, want);
}

TEST_F(SvcDispatcherTest, ParkedWorkerIsAdoptedBySubmittedJob) {
  MultiServeConfig config;
  config.address = socket_address("parked");
  config.accept_submissions = 1;

  // The worker dials an empty dispatcher first (gate-free: submissions are
  // open, so it parks instead of being refused), THEN a control client
  // submits the matching job.
  std::optional<WorkerReport> report;
  spawn_worker(g_, {.address = config.address}, nullptr, &report);
  std::optional<AcceptedBody> accepted;
  threads_.emplace_back([&, this] {
    ConnectConfig client;
    client.address = config.address;
    client.connect_retries = 0;
    SubmitBody job;
    job.fingerprint = graph_fingerprint(g_);
    job.n = g_.num_vertices();
    job.m = g_.num_edges();
    job.shard_count = 4;
    // Give the worker time to connect and park before the job exists.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    while (!stop_.load()) {
      try {
        accepted = submit_job(client, job);
        return;
      } catch (const TransportError&) {
        nap();
      }
    }
  });

  const MultiServeOutcome outcome = serve_jobs({}, config, nullptr);
  join_workers();
  ASSERT_TRUE(accepted.has_value());
  EXPECT_EQ(accepted->session_id, 1u);
  EXPECT_FALSE(accepted->already_queued);
  ASSERT_EQ(outcome.sessions.size(), 1u);
  ASSERT_TRUE(outcome.sessions.front().complete);
  const SwapEngine engine(g_);
  expect_same_certificate(outcome.sessions.front().certificate->certificate,
                          engine.certify(UsageCost::Sum, false), "submitted session");
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->parked);
  EXPECT_GE(report->leases_completed, 1u);
  EXPECT_GE(outcome.stats.workers_parked, 1u);
}

TEST_F(SvcDispatcherTest, QuarantinedSessionNeverPoisonsItsSibling) {
  Xoshiro256ss rng(0x5EED);
  const Graph doomed = random_connected_gnm(48, 120, rng);
  ASSERT_NE(graph_fingerprint(doomed), graph_fingerprint(g_));

  MultiServeConfig config;
  config.address = socket_address("isolate");
  config.max_retries = 0;  // first strike quarantines
  const std::vector<JobSpec> jobs = {job_for(g_, UsageCost::Sum, 3),
                                     job_for(doomed, UsageCost::Sum, 1)};
  spawn_worker(g_, {.address = config.address});
  ConnectConfig corrupting;
  corrupting.address = config.address;
  corrupting.chaos.mode = ChaosConfig::Mode::CorruptAll;
  spawn_worker(doomed, corrupting);

  const MultiServeOutcome outcome = serve_jobs(jobs, config, nullptr);
  ASSERT_EQ(outcome.sessions.size(), 2u);
  const SessionOutcome& healthy = outcome.sessions[0];
  const SessionOutcome& poisoned = outcome.sessions[1];
  ASSERT_TRUE(healthy.complete) << "sibling session must be untouched";
  const SwapEngine engine(g_);
  expect_same_certificate(healthy.certificate->certificate,
                          engine.certify(UsageCost::Sum, false), "healthy sibling");
  EXPECT_FALSE(poisoned.complete);
  EXPECT_FALSE(poisoned.certificate.has_value());
  ASSERT_EQ(poisoned.quarantined.size(), 1u);
  EXPECT_EQ(poisoned.agents_uncovered, doomed.num_vertices());
  EXPECT_EQ(outcome.stats.sessions_completed, 1u);
  EXPECT_EQ(outcome.stats.sessions_refused, 1u);
}

TEST_F(SvcDispatcherTest, StaleCorruptFrameCountsExactlyOneStrike) {
  // A saboteur takes the only lease, outlives it, and then delivers a
  // corrupt frame: ONE corrupt strike, ZERO disconnects (it no longer
  // holds the current lease, so neither the corruption nor the resulting
  // close may fail the range again), and the honest worker's re-dispatched
  // result still completes the run.
  ServeConfig config;
  config.address = socket_address("onestrike");
  config.shards = 1;
  config.lease_ms = 300;
  config.backoff_ms = 10;
  config.max_retries = 3;

  std::atomic<bool> expired_and_sent{false};
  threads_.emplace_back([this, &config, &expired_and_sent] {
    Socket sock;
    while (!sock.valid() && !stop_.load()) {
      try {
        sock = connect_to(config.address);
      } catch (const TransportError&) {
        nap();
      }
    }
    if (!sock.valid()) return;
    try {
      HelloBody hello;
      hello.fingerprint = graph_fingerprint(g_);
      hello.n = g_.num_vertices();
      hello.m = g_.num_edges();
      sock.send_frame(make_hello(hello));
      if (sock.recv_frame().type != FrameType::Welcome) return;
      if (sock.recv_frame().type != FrameType::Lease) return;
      // Outlive the 300 ms lease, then send garbage as the "result".
      std::this_thread::sleep_for(std::chrono::milliseconds(800));
      sock.send_frame(make_result("definitely not a shard"));
      expired_and_sent.store(true);
      // Linger so the dispatcher (not this dtor) decides to drop us.
      while (!stop_.load()) nap();
    } catch (const TransportError&) {
      expired_and_sent.store(true);
    }
  });
  // The honest worker connects only after the saboteur's lease expired —
  // the single range must go to the saboteur first.
  spawn_worker(g_, {.address = config.address}, &expired_and_sent);

  const ServeOutcome outcome = serve(config);
  expect_parity(outcome, UsageCost::Sum, false, "stale corrupt frame");
  EXPECT_EQ(outcome.stats.expired_leases, 1u);
  EXPECT_EQ(outcome.stats.corrupt_results, 1u);
  EXPECT_EQ(outcome.stats.disconnects, 0u);
}

}  // namespace
}  // namespace bncg::svc

// Unit tests for Abelian groups and their Cayley graphs (Theorem 15
// substrate), including the paper's §5 example identifying Figure 4 as an
// Abelian Cayley graph.
#include "gen/cayley.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "graph/bfs.hpp"
#include "graph/metrics.hpp"

namespace bncg {
namespace {

TEST(AbelianGroup, OrderAndRoundTrip) {
  const AbelianGroup g({4, 3, 2});
  EXPECT_EQ(g.order(), 24u);
  EXPECT_EQ(g.rank(), 3u);
  for (Vertex a = 0; a < g.order(); ++a) {
    EXPECT_EQ(g.id(g.element(a)), a);
  }
}

TEST(AbelianGroup, AdditionIsComponentwiseModular) {
  const AbelianGroup g({4, 3});
  const Vertex a = g.id({3, 2});
  const Vertex b = g.id({2, 2});
  EXPECT_EQ(g.element(g.add(a, b)), (std::vector<Vertex>{1, 1}));
}

TEST(AbelianGroup, NegationIsInverse) {
  const AbelianGroup g({5, 7});
  for (Vertex a = 0; a < g.order(); ++a) {
    EXPECT_EQ(g.add(a, g.neg(a)), AbelianGroup::identity());
  }
}

TEST(AbelianGroup, IdReducesOutOfRangeCoordinates) {
  const AbelianGroup g({4, 3});
  EXPECT_EQ(g.id({5, 4}), g.id({1, 1}));
}

TEST(Cayley, CirculantWithOffsetOneIsCycle) {
  EXPECT_EQ(circulant(8, {1}), cycle(8));
}

TEST(Cayley, CirculantWithAllOffsetsIsComplete) {
  EXPECT_EQ(circulant(6, {1, 2, 3}), complete(6));
}

TEST(Cayley, CirculantChordsReduceDiameter) {
  // C_16(1, 4): chords of length 4 cut the diameter of C_16 roughly in half.
  const Graph g = circulant(16, {1, 4});
  EXPECT_LT(diameter(g), diameter(cycle(16)));
}

TEST(Cayley, GeneratorValidation) {
  const AbelianGroup z5({5});
  // {1} is not symmetric in Z_5 (−1 = 4 missing).
  EXPECT_THROW((void)cayley_graph(z5, {1}), std::invalid_argument);
  EXPECT_NO_THROW((void)cayley_graph(z5, {1, 4}));
  EXPECT_THROW((void)cayley_graph(z5, {0}), std::invalid_argument);
  EXPECT_THROW((void)cayley_graph(z5, {}), std::invalid_argument);
}

TEST(Cayley, CayleyGraphsAreVertexTransitiveByDistanceProfile) {
  const AbelianGroup g({6, 4});
  const Graph cay = cayley_graph_from_tuples(g, {{1, 0}, {5, 0}, {0, 1}, {0, 3}});
  EXPECT_TRUE(has_uniform_distance_profile(DistanceMatrix(cay)));
}

TEST(Cayley, HypercubeCayleyMatchesDirectConstruction) {
  for (Vertex d = 1; d <= 5; ++d) {
    const Graph via_cayley = hypercube_cayley(d);
    const Graph direct = hypercube(d);
    EXPECT_EQ(via_cayley.num_edges(), direct.num_edges());
    // Same edge set: both connect ids differing in exactly one bit position
    // (the two constructions use reversed bit orders, so compare as sets of
    // XOR distances rather than raw equality).
    for (const auto& [u, v] : via_cayley.edges()) {
      const Vertex x = u ^ v;
      EXPECT_EQ(__builtin_popcount(x), 1) << u << "-" << v;
    }
  }
}

TEST(Cayley, EvenSumSubgroupCayleyEqualsRotatedTorus) {
  // The paper's §5 remark: Figure 4 is the Cayley graph of the even-sum
  // subgroup of Z²_{2k} with S = {(±1, ±1)}. Verify edge-level equality.
  for (Vertex k : {2u, 3u, 4u, 5u}) {
    EXPECT_EQ(even_sum_subgroup_cayley(k), rotated_torus(k).graph()) << "k=" << k;
  }
}

TEST(Cayley, TorusAsCayleyOfZmTimesZn) {
  const AbelianGroup g({4, 5});
  const Graph cay =
      cayley_graph_from_tuples(g, {{1, 0}, {3, 0}, {0, 1}, {0, 4}});
  EXPECT_EQ(cay.num_vertices(), 20u);
  for (Vertex v = 0; v < 20; ++v) EXPECT_EQ(cay.degree(v), 4u);
  EXPECT_EQ(diameter(cay), 2u + 2u);
}

TEST(Cayley, InvolutionGeneratorGivesOneEdge) {
  // In Z_4, generator 2 is its own inverse: a 1-regular matching plus the
  // ±1 pair gives degree 3.
  const Graph g = circulant(4, {1, 2});
  for (Vertex v = 0; v < 4; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_EQ(g, complete(4));
}

}  // namespace
}  // namespace bncg

// Property harness for the cross-process certification pipeline
// (`ctest -L property`):
//
//  * round-trip fuzz — random ShardResults survive both wire encodings
//    byte-exactly;
//  * corruption fuzz — randomly truncated or bit-flipped binary inputs
//    always throw; randomly mutated JSON inputs either throw or decode to
//    a result identical to the original (a mutation in insignificant
//    whitespace is semantically neutral) — never crash, never smuggle in
//    different values;
//  * merge parity — for ANY partition of the agent set into shards, each
//    certified by its own fresh SwapEngine (emulating separate worker
//    processes) and round-tripped through a randomly chosen wire encoding,
//    the merged certificate is bit-identical to SwapEngine::certify and to
//    the in-process certify_sharded;
//  * guard soundness — cross-merging shards of two different instances
//    refuses.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/certify_sharded.hpp"
#include "core/certify_wire.hpp"
#include "core/swap_engine.hpp"
#include "gen/random.hpp"
#include "graph/io.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

[[nodiscard]] ShardResult random_shard(Xoshiro256ss& rng) {
  ShardResult r;
  r.fingerprint = rng();
  r.n = 2 + static_cast<Vertex>(rng.below(1000));
  r.m = rng.below(100000);
  r.model = rng.below(2) == 0 ? UsageCost::Sum : UsageCost::Max;
  r.include_deletions = rng.below(2) == 0;
  r.stop_on_violation = rng.below(2) == 0;
  r.shard_count = 1 + static_cast<std::uint32_t>(rng.below(64));
  r.shard_index = static_cast<std::uint32_t>(rng.below(r.shard_count));
  r.agent_lo = static_cast<Vertex>(rng.below(r.n));
  r.agent_hi = r.agent_lo + static_cast<Vertex>(rng.below(r.n - r.agent_lo + 1));
  r.scanned = static_cast<Vertex>(rng.below(r.agent_hi - r.agent_lo + 1));
  r.moves = rng();
  r.width = rng.below(2) == 0 ? DistWidth::U8 : DistWidth::U16;
  r.width_fallbacks = rng.below(1000);
  if (r.agent_hi > r.agent_lo && rng.below(2) == 0) {
    Deviation dev;
    dev.swap.v = r.agent_lo + static_cast<Vertex>(rng.below(r.agent_hi - r.agent_lo));
    dev.swap.remove_w = static_cast<Vertex>(rng.below(r.n));
    dev.swap.add_w = static_cast<Vertex>(rng.below(r.n));
    dev.cost_before = rng();
    dev.cost_after = rng();
    dev.kind =
        rng.below(2) == 0 ? Deviation::Kind::ImprovingSwap : Deviation::Kind::NonCriticalDelete;
    r.best = dev;
  }
  return r;
}

TEST(WireFuzz, RoundTripBothEncodings) {
  Xoshiro256ss rng(0xF1E1D);
  for (int trial = 0; trial < 400; ++trial) {
    const ShardResult original = random_shard(rng);
    const std::string bytes = shard_to_binary(original);
    EXPECT_EQ(shard_to_binary(shard_from_binary(bytes)), bytes) << "trial " << trial;
    const std::string text = shard_to_json(original);
    EXPECT_EQ(shard_to_binary(shard_from_json(text)), bytes) << "trial " << trial;
    // Auto-detection picks the right decoder for both.
    EXPECT_EQ(shard_to_binary(shard_from_bytes(bytes)), bytes) << "trial " << trial;
    EXPECT_EQ(shard_to_binary(shard_from_bytes(text)), bytes) << "trial " << trial;
  }
}

TEST(WireFuzz, TruncatedOrCorruptedBinaryAlwaysThrows) {
  Xoshiro256ss rng(0xF1E2D);
  for (int trial = 0; trial < 200; ++trial) {
    const ShardResult original = random_shard(rng);
    const std::string bytes = shard_to_binary(original);
    // Random truncation.
    const std::size_t cut = rng.below(bytes.size());
    EXPECT_THROW((void)shard_from_binary(bytes.substr(0, cut)), std::invalid_argument)
        << "trial " << trial << " cut " << cut;
    // Random bit flip (never a no-op): the checksum, magic, or a range
    // check must reject it.
    std::string corrupt = bytes;
    const std::size_t pos = rng.below(corrupt.size());
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ (1u << rng.below(8)));
    EXPECT_THROW((void)shard_from_bytes(corrupt), std::invalid_argument)
        << "trial " << trial << " pos " << pos;
  }
}

TEST(WireFuzz, MutatedJsonThrowsOrDecodesIdentically) {
  Xoshiro256ss rng(0xF1E3D);
  for (int trial = 0; trial < 300; ++trial) {
    const ShardResult original = random_shard(rng);
    const std::string canonical = shard_to_binary(original);
    std::string text = shard_to_json(original);
    const std::size_t pos = rng.below(text.size());
    char replacement = static_cast<char>(rng.below(256));
    while (replacement == text[pos]) replacement = static_cast<char>(rng.below(256));
    text[pos] = replacement;
    try {
      const ShardResult decoded = shard_from_json(text);
      // The mutation parsed — it must have been semantically neutral
      // (whitespace, an equivalent spelling). Anything else is a checksum
      // or validation escape.
      EXPECT_EQ(shard_to_binary(decoded), canonical)
          << "trial " << trial << " pos " << pos << " byte "
          << static_cast<int>(static_cast<unsigned char>(replacement));
    } catch (const std::invalid_argument&) {
      // Clean rejection — the expected common case.
    }
  }
}

void expect_same_certificate(const EquilibriumCertificate& got,
                             const EquilibriumCertificate& want, const std::string& context) {
  ASSERT_EQ(got.is_equilibrium, want.is_equilibrium) << context;
  EXPECT_EQ(got.moves_checked, want.moves_checked) << context;
  ASSERT_EQ(got.witness.has_value(), want.witness.has_value()) << context;
  if (!got.witness) return;
  EXPECT_EQ(got.witness->swap.v, want.witness->swap.v) << context;
  EXPECT_EQ(got.witness->swap.remove_w, want.witness->swap.remove_w) << context;
  EXPECT_EQ(got.witness->swap.add_w, want.witness->swap.add_w) << context;
  EXPECT_EQ(got.witness->cost_before, want.witness->cost_before) << context;
  EXPECT_EQ(got.witness->cost_after, want.witness->cost_after) << context;
  EXPECT_EQ(got.witness->kind, want.witness->kind) << context;
}

TEST(WireFuzz, AnyPartitionMergesToTheSingleProcessCertificate) {
  Xoshiro256ss rng(0xF1E4D);
  for (int trial = 0; trial < 40; ++trial) {
    const Vertex n = 8 + static_cast<Vertex>(rng.below(30));
    const Graph g = random_connected_gnm(n, n - 1 + rng.below(2 * n), rng);
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      const bool deletions = model == UsageCost::Max;
      const EquilibriumCertificate want = SwapEngine(g).certify(model, deletions);

      // Random partition: 1..6 shards with random (possibly empty) blocks.
      const std::size_t shard_count = 1 + rng.below(6);
      std::vector<Vertex> cuts = {0};
      for (std::size_t i = 1; i < shard_count; ++i) {
        cuts.push_back(static_cast<Vertex>(rng.below(n + 1)));
      }
      cuts.push_back(n);
      std::sort(cuts.begin(), cuts.end());

      std::vector<ShardResult> shards;
      for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        // One fresh engine per shard: nothing but the wire payload crosses
        // between "processes".
        const SwapEngine engine(g);
        AgentRange range;
        range.lo = cuts[i];
        range.hi = cuts[i + 1];
        range.shard_index = static_cast<std::uint32_t>(i);
        range.shard_count = static_cast<std::uint32_t>(shard_count);
        const ShardResult produced =
            certify_agent_range(engine, range, model, deletions);
        // Round-trip through a randomly chosen encoding before merging.
        shards.push_back(rng.below(2) == 0
                             ? shard_from_binary(shard_to_binary(produced))
                             : shard_from_json(shard_to_json(produced)));
      }
      // Workers report in arbitrary order; merge re-sorts by shard_index.
      for (std::size_t i = shards.size(); i > 1; --i) {
        std::swap(shards[i - 1], shards[rng.below(i)]);
      }

      const std::string ctx = "trial " + std::to_string(trial) +
                              (model == UsageCost::Sum ? " sum" : " max") + " shards " +
                              std::to_string(shard_count);
      const ShardedCertificate merged = merge_shard_results(shards);
      expect_same_certificate(merged.certificate, want, ctx + " vs engine");
      expect_same_certificate(merged.certificate,
                              certify_sharded(g, model, deletions).certificate,
                              ctx + " vs certify_sharded");
      EXPECT_EQ(merged.agents_scanned, n) << ctx;
    }
  }
}

TEST(WireFuzz, ShardsOfDifferentInstancesRefuseToMerge) {
  Xoshiro256ss rng(0xF1E5D);
  for (int trial = 0; trial < 20; ++trial) {
    const Vertex n = 10 + static_cast<Vertex>(rng.below(20));
    const Graph a = random_connected_gnm(n, 2 * n, rng);
    Graph b = a;
    // Perturb one edge — same n, same m, different structure.
    const auto edges = b.edges();
    const Edge& e = edges[rng.below(edges.size())];
    b.remove_edge(e.u, e.v);
    Vertex x = static_cast<Vertex>(rng.below(n)), y = static_cast<Vertex>(rng.below(n));
    while (x == y || b.has_edge(x, y)) {
      x = static_cast<Vertex>(rng.below(n));
      y = static_cast<Vertex>(rng.below(n));
    }
    b.add_edge(x, y);
    ASSERT_NE(graph_fingerprint(a), graph_fingerprint(b));

    const Vertex cut = n / 2;
    const auto make = [&](const Graph& g, std::uint32_t index, Vertex lo, Vertex hi) {
      const SwapEngine engine(g);
      AgentRange range;
      range.lo = lo;
      range.hi = hi;
      range.shard_index = index;
      range.shard_count = 2;
      return certify_agent_range(engine, range, UsageCost::Sum);
    };
    const std::vector<ShardResult> mixed = {make(a, 0, 0, cut), make(b, 1, cut, n)};
    EXPECT_THROW((void)merge_shard_results(mixed), std::invalid_argument) << "trial " << trial;
  }
}

}  // namespace
}  // namespace bncg

// Unit tests for components, articulation points, and bridges.
#include "graph/connectivity.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(Connectivity, ComponentsOfDisjointPieces) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  const Components c = connected_components(g);
  EXPECT_EQ(c.count, 3u);
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_EQ(c.label[3], c.label[4]);
  EXPECT_NE(c.label[0], c.label[3]);
  EXPECT_NE(c.label[5], c.label[0]);
  EXPECT_NE(c.label[5], c.label[3]);
}

TEST(Connectivity, PathInternalVerticesAreArticulation) {
  const auto cuts = articulation_points(path(5));
  EXPECT_EQ(cuts, (std::vector<Vertex>{1, 2, 3}));
}

TEST(Connectivity, CycleHasNoArticulationPoints) {
  EXPECT_TRUE(articulation_points(cycle(8)).empty());
}

TEST(Connectivity, StarCenterIsTheOnlyArticulationPoint) {
  const auto cuts = articulation_points(star(6));
  EXPECT_EQ(cuts, (std::vector<Vertex>{0}));
}

TEST(Connectivity, AllTreeEdgesAreBridges) {
  const auto bs = bridges(path(5));
  EXPECT_EQ(bs.size(), 4u);
  const auto star_bridges = bridges(star(7));
  EXPECT_EQ(star_bridges.size(), 6u);
}

TEST(Connectivity, CycleHasNoBridges) { EXPECT_TRUE(bridges(cycle(6)).empty()); }

TEST(Connectivity, LollipopTailEdgesAreBridges) {
  const Graph g = lollipop(4, 3);  // K4 + 3-vertex tail
  const auto bs = bridges(g);
  EXPECT_EQ(bs.size(), 3u);
  const auto cuts = articulation_points(g);
  // Clique attachment vertex 3 and the two internal tail vertices 4, 5.
  EXPECT_EQ(cuts, (std::vector<Vertex>{3, 4, 5}));
}

TEST(Connectivity, IsBridgeAgreesWithBridgeList) {
  Xoshiro256ss rng(17);
  const Graph g = random_connected_gnm(25, 30, rng);
  const auto bs = bridges(g);
  for (const auto& [u, v] : g.edges()) {
    const bool listed =
        std::find(bs.begin(), bs.end(), Edge{u, v}) != bs.end();
    EXPECT_EQ(is_bridge(g, u, v), listed) << u << "-" << v;
  }
}

TEST(Connectivity, BridgelessAfterDoublingEveryEdgePath) {
  // Adding a parallel route kills all bridges: compare C_n vs P_n.
  EXPECT_FALSE(bridges(path(6)).empty());
  EXPECT_TRUE(bridges(cycle(6)).empty());
}

TEST(Connectivity, EmptyAndSingletonGraphs) {
  EXPECT_EQ(connected_components(Graph(0)).count, 0u);
  EXPECT_EQ(connected_components(Graph(1)).count, 1u);
  EXPECT_TRUE(articulation_points(Graph(1)).empty());
  EXPECT_TRUE(bridges(Graph(1)).empty());
}

TEST(Connectivity, TwoTrianglesSharingAVertex) {
  // Bowtie: vertex 2 shared by triangles {0,1,2} and {2,3,4}.
  const Graph g =
      graph_from_edges(5, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}});
  EXPECT_EQ(articulation_points(g), (std::vector<Vertex>{2}));
  EXPECT_TRUE(bridges(g).empty());
}

TEST(Connectivity, RandomGraphBridgeEndpointsSeparate) {
  Xoshiro256ss rng(23);
  const Graph g = random_connected_gnm(30, 34, rng);
  for (const auto& [u, v] : bridges(g)) {
    Graph h = g;
    h.remove_edge(u, v);
    const Components c = connected_components(h);
    EXPECT_NE(c.label[u], c.label[v]);
  }
}

}  // namespace
}  // namespace bncg

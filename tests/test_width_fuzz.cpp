// Differential fuzz suite for the width-adaptive u8/u16 distance kernels
// (graph/dist_width.hpp): over 200 seeded random and paper-construction
// instances, the u8 and u16 SwapEngine/SearchState paths must agree bit for
// bit with each other and with the bncg::naive oracles — on unrest values,
// deviation witnesses, certification verdicts, and whole annealing
// trajectories — including instances engineered to cross the u8 cap
// mid-run, which forces the SearchState promotion path and the engine's
// per-agent u16 fallback. Compiled into the seeded property harness
// (bncg_property_tests, CTest label "tier1-property": matched by both
// `ctest -L tier1` and `ctest -L property`).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/certify_sharded.hpp"
#include "core/equilibrium.hpp"
#include "core/search.hpp"
#include "core/search_state.hpp"
#include "core/swap_engine.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

/// Reference unrest straight from the naive BFS-per-candidate oracles;
/// deliberately shares no code with SearchState or SwapEngine.
std::uint64_t naive_unrest(const Graph& g, UsageCost model, bool include_deletions) {
  BfsWorkspace ws;
  std::uint64_t total = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::optional<Deviation> dev =
        model == UsageCost::Sum ? naive::best_sum_deviation(g, v, ws)
                                : naive::best_max_deviation(g, v, ws, include_deletions);
    if (!dev) continue;
    const std::uint64_t gain =
        dev->cost_before > dev->cost_after ? dev->cost_before - dev->cost_after : 0;
    total += std::max<std::uint64_t>(1, gain);
  }
  return total;
}

void expect_same_deviation(const std::optional<Deviation>& got,
                           const std::optional<Deviation>& want, const std::string& context) {
  ASSERT_EQ(got.has_value(), want.has_value()) << context;
  if (!got) return;
  EXPECT_EQ(got->swap.v, want->swap.v) << context;
  EXPECT_EQ(got->swap.remove_w, want->swap.remove_w) << context;
  EXPECT_EQ(got->swap.add_w, want->swap.add_w) << context;
  EXPECT_EQ(got->cost_before, want->cost_before) << context;
  EXPECT_EQ(got->cost_after, want->cost_after) << context;
  EXPECT_EQ(got->kind, want->kind) << context;
}

/// Mixed instance pool: random families plus the paper's constructions and
/// the classics — small enough for the naive oracle, varied enough to cover
/// trees, dense graphs, cap-adjacent diameters, and disconnection-prone
/// sparsity.
Graph fuzz_instance(int trial, Xoshiro256ss& rng) {
  switch (trial % 8) {
    case 0: {
      const Vertex n = 6 + static_cast<Vertex>(rng.below(13));
      const std::size_t max_edges = static_cast<std::size_t>(n) * (n - 1) / 2;
      return random_connected_gnm(n, std::min<std::size_t>(max_edges, 12 + rng.below(24)), rng);
    }
    case 1:
      return random_tree(6 + static_cast<Vertex>(rng.below(13)), rng);
    case 2: {
      const Vertex n = 8 + static_cast<Vertex>(rng.below(11));
      return random_connected_gnm(n, n - 1 + rng.below(n), rng);
    }
    case 3:
      return fig3_diameter3_graph();
    case 4:
      return cycle(5 + static_cast<Vertex>(rng.below(14)));
    case 5:
      return path(6 + static_cast<Vertex>(rng.below(13)));
    case 6:
      return double_star(2 + static_cast<Vertex>(rng.below(4)),
                         2 + static_cast<Vertex>(rng.below(4)));
    default:
      return random_connected_gnm(10 + static_cast<Vertex>(rng.below(9)),
                                  20 + rng.below(20), rng);
  }
}

/// A small-diameter cycle-with-chord whose masked matrices blow past the u8
/// cap: C_len fits u8 (diameter ≤ len/4 + ~len/4), but deleting the chord's
/// detour or masking a chord endpoint leaves paths of length ≈ len − 1 —
/// the engineered promotion crossings. Needs len ≥ 64 so a distance > 61
/// is reachable at all.
Graph chorded_cycle(Vertex len) {
  Graph g = cycle(len);
  g.add_edge(0, len / 2);
  return g;
}

TEST(WidthFuzz, EngineWidthsAgreeWithEachOtherAndNaive) {
  // 120 instances × both models: forced-u8 and forced-u16 engines must
  // produce identical witnesses, costs, move counts, and certificates, all
  // equal to the naive oracle. ForceU8 on instances that do not fit the cap
  // exercises the per-agent u16 fallback (width_fallbacks > 0) without any
  // observable difference.
  Xoshiro256ss rng(0xF001);
  BfsWorkspace ws;
  std::uint64_t fallbacks_seen = 0;
  for (int trial = 0; trial < 120; ++trial) {
    const Graph g = fuzz_instance(trial, rng);
    SwapEngine e8(g, WidthPolicy::ForceU8);
    SwapEngine e16(g, WidthPolicy::ForceU16);
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      const bool deletions = model == UsageCost::Max;
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        const std::string ctx = "trial " + std::to_string(trial) + " agent " +
                                std::to_string(v) +
                                (model == UsageCost::Sum ? " sum" : " max");
        std::uint64_t moves8 = 0;
        std::uint64_t moves16 = 0;
        SwapEngine::Scratch s8, s16;
        const auto d8 = e8.best_deviation(v, model, s8, deletions, &moves8);
        const auto d16 = e16.best_deviation(v, model, s16, deletions, &moves16);
        const auto naive_dev = model == UsageCost::Sum
                                   ? naive::best_sum_deviation(g, v, ws)
                                   : naive::best_max_deviation(g, v, ws, deletions);
        expect_same_deviation(d8, d16, ctx + " u8 vs u16");
        expect_same_deviation(d8, naive_dev, ctx + " u8 vs naive");
        EXPECT_EQ(moves8, moves16) << ctx;
      }
      const auto c8 = e8.certify(model, deletions);
      const auto c16 = e16.certify(model, deletions);
      EXPECT_EQ(c8.is_equilibrium, c16.is_equilibrium) << "trial " << trial;
      EXPECT_EQ(c8.moves_checked, c16.moves_checked) << "trial " << trial;
      expect_same_deviation(c8.witness, c16.witness, "certify trial " + std::to_string(trial));
    }
    fallbacks_seen += e8.width_fallbacks();
  }
  EXPECT_EQ(fallbacks_seen, 0u);  // the small pool fits u8 throughout

  // Beyond-the-cap instances: a forced-u8 engine must silently redo the
  // saturating agents at u16 (fallbacks > 0) and still match the oracle
  // move for move. path(70)'s masked sweeps split into long subpaths,
  // cycle(130)'s exceed the cap outright, and the chorded cycle saturates
  // only for the chord endpoints' masked matrices.
  for (const Graph& g : {path(70), cycle(130), chorded_cycle(100)}) {
    SwapEngine e8(g, WidthPolicy::ForceU8);
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      const bool deletions = model == UsageCost::Max;
      const auto c8 = e8.certify(model, deletions);
      const auto naive_cert = model == UsageCost::Sum ? naive::certify_sum_equilibrium(g)
                                                      : naive::certify_max_equilibrium(g);
      EXPECT_EQ(c8.is_equilibrium, naive_cert.is_equilibrium);
      expect_same_deviation(c8.witness, naive_cert.witness, "big-instance certify");
    }
    EXPECT_GT(e8.width_fallbacks(), 0u);
  }
}

TEST(WidthFuzz, SearchStateWidthsAgreeOnEveryProposalAndWithNaive) {
  // 64 instances × both models: a forced-u8 and a forced-u16 SearchState
  // driven through the same toggle schedule must report identical shapes
  // and unrest on every proposal (accepted AND rejected), both equal to the
  // naive recomputation on a mirror graph.
  Xoshiro256ss rng(0xF002);
  for (int trial = 0; trial < 64; ++trial) {
    const UsageCost model = trial % 2 == 0 ? UsageCost::Sum : UsageCost::Max;
    const bool deletions = model == UsageCost::Max;
    Graph mirror = fuzz_instance(trial, rng);
    const Vertex n = mirror.num_vertices();
    SearchState s8(mirror, model, deletions, /*parallel=*/trial % 4 < 2, WidthPolicy::ForceU8);
    SearchState s16(mirror, model, deletions, /*parallel=*/trial % 4 < 2, WidthPolicy::ForceU16);
    ASSERT_EQ(s16.width(), DistWidth::U16);
    ASSERT_EQ(s8.unrest(), s16.unrest()) << "trial " << trial;
    ASSERT_EQ(s8.unrest(), naive_unrest(mirror, model, deletions)) << "trial " << trial;

    for (int step = 0; step < 12; ++step) {
      const Vertex u = static_cast<Vertex>(rng.below(n));
      const Vertex v = static_cast<Vertex>(rng.below(n));
      if (u == v) continue;
      const ToggleShape sh8 = s8.propose_toggle(u, v);
      const ToggleShape sh16 = s16.propose_toggle(u, v);
      ASSERT_EQ(sh8.connected, sh16.connected) << "trial " << trial << " step " << step;
      ASSERT_EQ(sh8.diameter, sh16.diameter) << "trial " << trial << " step " << step;

      Graph toggled = mirror;
      if (toggled.has_edge(u, v)) {
        toggled.remove_edge(u, v);
      } else {
        toggled.add_edge(u, v);
      }
      const std::uint64_t want = naive_unrest(toggled, model, deletions);
      ASSERT_EQ(s8.proposal_unrest(), want) << "trial " << trial << " step " << step;
      ASSERT_EQ(s16.proposal_unrest(), want) << "trial " << trial << " step " << step;

      if (rng.bernoulli(0.5)) {
        s8.commit();
        s16.commit();
        mirror = std::move(toggled);
        ASSERT_EQ(s8.graph(), mirror);
        ASSERT_EQ(s16.graph(), mirror);
      }
    }
    EXPECT_EQ(s8.certify_current(), s16.certify_current()) << "trial " << trial;
  }
}

TEST(WidthFuzz, EngineeredCapCrossingsPromoteAndStayExact) {
  // Three deterministic promotion triggers, each checked against naive and
  // a from-scratch u16 state:
  //  (a) masked-matrix saturation during evaluation — C_len + chord {0,
  //      len/2}: the full graph fits u8, but masking a chord endpoint
  //      leaves a path of length len − 2 > 61;
  //  (b) applied-removal saturation — deleting a C_len cycle edge leaves
  //      P_len with diameter len − 1 > 61;
  //  (c) proposal-screen saturation — staging that same removal already
  //      saturates the shadow full matrix.
  for (const Vertex len : {Vertex{100}, Vertex{120}}) {
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      const bool deletions = model == UsageCost::Max;
      const std::string ctx =
          "len " + std::to_string(len) + (model == UsageCost::Sum ? " sum" : " max");

      {  // (a) — evaluation pass must promote, then match naive exactly.
        const Graph g = chorded_cycle(len);
        SearchState state(g, model, deletions);
        ASSERT_EQ(state.width(), DistWidth::U8) << ctx;  // auto-selected narrow
        const std::uint64_t u = state.unrest();
        EXPECT_EQ(state.width(), DistWidth::U16) << ctx;
        EXPECT_GE(state.stats().promotions, 1u) << ctx;
        EXPECT_EQ(u, naive_unrest(g, model, deletions)) << ctx;
      }

      {  // (b) — applied deletion crosses the cap; the replayed state must
         // equal a u16 state built directly on the post-move graph.
        Graph g = cycle(len);
        SearchState state(g, model, deletions);
        ASSERT_EQ(state.width(), DistWidth::U8) << ctx;
        state.apply_deletion(0, len - 1);
        EXPECT_EQ(state.width(), DistWidth::U16) << ctx;
        EXPECT_GE(state.stats().promotions, 1u) << ctx;
        g.remove_edge(0, len - 1);
        ASSERT_EQ(state.graph(), g) << ctx;
        SearchState fresh(g, model, deletions, true, WidthPolicy::ForceU16);
        EXPECT_EQ(state.unrest(), fresh.unrest()) << ctx;
        BfsWorkspace ws;
        for (const Vertex a : {Vertex{0}, Vertex{1}, len / 2}) {
          const auto want = model == UsageCost::Sum
                                ? naive::best_sum_deviation(g, a, ws)
                                : naive::best_max_deviation(g, a, ws, deletions);
          expect_same_deviation(state.best_deviation(a, deletions), want,
                                ctx + " agent " + std::to_string(a));
        }
      }

      {  // (d) — *addition* saturation: bridging two path components makes
         // the new finite distances exceed the cap through the pure-formula
         // addition identity (no BFS involved), which must promote rather
         // than clamp to ∞ or write the reserved kInf − 1 slot.
        Graph two_paths(len);
        const Vertex half = len / 2;
        for (Vertex i = 0; i + 1 < half; ++i) two_paths.add_edge(i, i + 1);
        for (Vertex i = half; i + 1 < len; ++i) two_paths.add_edge(i, i + 1);
        SearchState state(two_paths, model, deletions, /*parallel=*/true, WidthPolicy::ForceU8);
        ASSERT_EQ(state.width(), DistWidth::U8) << ctx;
        state.apply_toggle(half - 1, half);  // joins the tips: diameter len − 1 > 61
        EXPECT_EQ(state.width(), DistWidth::U16) << ctx;
        EXPECT_GE(state.stats().promotions, 1u) << ctx;
        EXPECT_TRUE(state.connected()) << ctx;
        EXPECT_EQ(state.diameter(), len - 1) << ctx;
        two_paths.add_edge(half - 1, half);
        EXPECT_EQ(state.unrest(), naive_unrest(two_paths, model, deletions)) << ctx;
      }

      {  // (d') — a bridging addition whose result still fits must NOT
         // promote and must stay exact (the saturation test is not a
         // connectivity-change test).
        const Vertex quarter = 15;
        Graph short_paths(2 * quarter);
        for (Vertex i = 0; i + 1 < quarter; ++i) short_paths.add_edge(i, i + 1);
        for (Vertex i = quarter; i + 1 < 2 * quarter; ++i) short_paths.add_edge(i, i + 1);
        SearchState state(short_paths, model, deletions, /*parallel=*/true,
                          WidthPolicy::ForceU8);
        state.apply_toggle(quarter - 1, quarter);
        EXPECT_EQ(state.width(), DistWidth::U8) << ctx;
        EXPECT_EQ(state.diameter(), 2 * quarter - 1) << ctx;
        short_paths.add_edge(quarter - 1, quarter);
        EXPECT_EQ(state.unrest(), naive_unrest(short_paths, model, deletions)) << ctx;
      }

      {  // (c) — the proposal screen itself promotes; shape, proposal
         // unrest, and the committed state must all be exact.
        const Graph g = cycle(len);
        SearchState state(g, model, deletions);
        ASSERT_EQ(state.width(), DistWidth::U8) << ctx;
        const ToggleShape shape = state.propose_toggle(0, len - 1);
        EXPECT_EQ(state.width(), DistWidth::U16) << ctx;
        EXPECT_TRUE(shape.connected) << ctx;
        EXPECT_EQ(shape.diameter, len - 1) << ctx;
        Graph toggled = g;
        toggled.remove_edge(0, len - 1);
        EXPECT_EQ(state.proposal_unrest(), naive_unrest(toggled, model, deletions)) << ctx;
        state.commit();
        EXPECT_EQ(state.graph(), toggled) << ctx;
      }
    }
  }
}

TEST(WidthFuzz, AutoWidthSelectorPicksTheFittingWidth) {
  // Narrow when the diameter bound fits, wide when the screen rules it out;
  // ForceU8 on an unfitting instance burns, records the crossing, and lands
  // on u16 with exact results.
  SearchState narrow(cycle(100), UsageCost::Sum);
  EXPECT_EQ(narrow.width(), DistWidth::U8);
  SearchState wide(path(100), UsageCost::Sum);
  EXPECT_EQ(wide.width(), DistWidth::U16);
  EXPECT_EQ(wide.stats().promotions, 0u);  // screened out, no burned attempt

  const Graph p = path(100);
  SearchState forced(p, UsageCost::Sum, false, true, WidthPolicy::ForceU8);
  EXPECT_EQ(forced.width(), DistWidth::U16);
  EXPECT_EQ(forced.stats().promotions, 1u);
  EXPECT_EQ(forced.unrest(), naive_unrest(p, UsageCost::Sum, false));
}

TEST(WidthFuzz, AnnealTrajectoriesIdenticalAcrossWidthsIncludingPromotion) {
  // The same AnnealConfig run at ForceU8, ForceU16, and FullRecompute must
  // walk one trajectory — same counters, same outcome — even when the u8
  // leg crosses the cap mid-anneal (the chorded-cycle start makes cycle-edge
  // removal proposals saturate the shadow matrix during the shape screen).
  struct Case {
    Graph start;
    std::uint64_t steps;
    bool expect_promotion;
  };
  Xoshiro256ss rng(0xF003);
  std::vector<Case> cases;
  cases.push_back({chorded_cycle(96), 220, true});
  cases.push_back({random_connected_gnm(14, 26, rng), 300, false});
  cases.push_back({random_connected_gnm(10, 14, rng), 300, false});
  std::uint64_t promotions_seen = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      AnnealConfig config;
      config.cost = model;
      config.steps = cases[i].steps;
      config.seed = 0x5EEDF + i;
      config.target_diameter = diameter(cases[i].start);
      config.evaluation = UnrestEval::Incremental;

      AnnealStats st8, st16, stfull;
      config.dist_width = WidthPolicy::ForceU8;
      const auto r8 = anneal_equilibrium(cases[i].start, config, &st8);
      config.dist_width = WidthPolicy::ForceU16;
      const auto r16 = anneal_equilibrium(cases[i].start, config, &st16);
      config.evaluation = UnrestEval::FullRecompute;
      const auto rfull = anneal_equilibrium(cases[i].start, config, &stfull);

      const std::string ctx = "case " + std::to_string(i) +
                              (model == UsageCost::Sum ? " sum" : " max");
      ASSERT_EQ(r8.has_value(), r16.has_value()) << ctx;
      ASSERT_EQ(r8.has_value(), rfull.has_value()) << ctx;
      if (r8) {
        EXPECT_EQ(*r8, *r16) << ctx;
        EXPECT_EQ(*r8, *rfull) << ctx;
      }
      for (const AnnealStats* st : {&st16, &stfull}) {
        EXPECT_EQ(st8.proposals, st->proposals) << ctx;
        EXPECT_EQ(st8.filtered, st->filtered) << ctx;
        EXPECT_EQ(st8.evaluated, st->evaluated) << ctx;
        EXPECT_EQ(st8.accepted, st->accepted) << ctx;
        EXPECT_EQ(st8.final_unrest, st->final_unrest) << ctx;
      }
      EXPECT_EQ(st16.width_promotions, 0u) << ctx;
      promotions_seen += st8.width_promotions;
      if (cases[i].expect_promotion) {
        EXPECT_EQ(st8.dist_width, DistWidth::U16) << ctx << " (no cap crossing hit)";
      }
    }
  }
  EXPECT_GT(promotions_seen, 0u);  // the promotion path must have been annealed through
}

TEST(WidthFuzz, PromotionReplayReproducesIdenticalScanTables) {
  // Promotion-invariant property: drive a u8 state through a toggle journal
  // that crosses the cap mid-sequence, then replay the identical journal on
  // a from-scratch u16 state — every agent's scan tables (min1/min2/argmin
  // and the sum model's R1), widened to width-independent values, must be
  // identical, as must unrest and certification.
  for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
    const bool deletions = model == UsageCost::Max;
    const Graph start = cycle(80);
    // The journal: add a chord, then cross the cap by deleting the cycle
    // edge {0, 79} — the leftover path-plus-chord has d(10, 79) = 69 > 61 —
    // and keep editing after the promotion.
    const std::vector<std::pair<Vertex, Vertex>> journal = {
        {1, 20},   // addition (chord)
        {0, 79},   // removal of a cycle edge: distances reach 69 → promotes
        {2, 50},   // addition after promotion
        {1, 20},   // removal again (toggle the chord back off)
    };
    SearchState promoted(start, model, deletions, /*parallel=*/true, WidthPolicy::ForceU8);
    ASSERT_EQ(promoted.width(), DistWidth::U8);
    SearchState wide(start, model, deletions, /*parallel=*/true, WidthPolicy::ForceU16);
    for (const auto& [u, v] : journal) {
      promoted.apply_toggle(u, v);
      wide.apply_toggle(u, v);
    }
    EXPECT_EQ(promoted.width(), DistWidth::U16) << "journal failed to cross the cap";
    EXPECT_GE(promoted.stats().promotions, 1u);
    ASSERT_EQ(promoted.graph(), wide.graph());

    const std::string ctx = model == UsageCost::Sum ? "sum" : "max";
    EXPECT_EQ(promoted.unrest(), wide.unrest()) << ctx;
    for (Vertex a = 0; a < promoted.num_vertices(); ++a) {
      const SearchState::ScanTables got = promoted.debug_scan_tables(a);
      const SearchState::ScanTables want = wide.debug_scan_tables(a);
      ASSERT_EQ(got.min1, want.min1) << ctx << " agent " << a;
      ASSERT_EQ(got.min2, want.min2) << ctx << " agent " << a;
      ASSERT_EQ(got.argmin, want.argmin) << ctx << " agent " << a;
      ASSERT_EQ(got.r1, want.r1) << ctx << " agent " << a;
    }
    EXPECT_EQ(promoted.certify_current(), wide.certify_current()) << ctx;
  }
}

TEST(WidthFuzz, ShardedCertifyAgreesAcrossWidths) {
  // The sharded driver inherits the engine's width adaptivity; u8 and u16
  // runs must produce identical certificates on the same shards.
  Xoshiro256ss rng(0xF004);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = fuzz_instance(trial, rng);
    for (const UsageCost model : {UsageCost::Sum, UsageCost::Max}) {
      const bool deletions = model == UsageCost::Max;
      ShardedCertifyConfig cfg;
      cfg.shards = 3;
      cfg.width = WidthPolicy::ForceU8;
      const auto c8 = certify_sharded(g, model, deletions, cfg);
      cfg.width = WidthPolicy::ForceU16;
      const auto c16 = certify_sharded(g, model, deletions, cfg);
      EXPECT_EQ(c8.certificate.is_equilibrium, c16.certificate.is_equilibrium);
      EXPECT_EQ(c8.certificate.moves_checked, c16.certificate.moves_checked);
      expect_same_deviation(c8.certificate.witness, c16.certificate.witness,
                            "sharded trial " + std::to_string(trial));
    }
  }
}

}  // namespace
}  // namespace bncg

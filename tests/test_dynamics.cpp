// Unit tests for best-response swap dynamics.
#include "core/dynamics.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

DynamicsConfig sum_config() {
  DynamicsConfig config;
  config.cost = UsageCost::Sum;
  config.max_moves = 50'000;
  return config;
}

TEST(Dynamics, StarIsAFixedPoint) {
  const DynamicsResult r = run_dynamics(star(9), sum_config());
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.moves, 0u);
  EXPECT_EQ(r.graph, star(9));
}

TEST(Dynamics, PathConvergesToSumEquilibrium) {
  const DynamicsResult r = run_dynamics(path(10), sum_config());
  EXPECT_TRUE(r.converged);
  EXPECT_TRUE(is_sum_equilibrium(r.graph));
  EXPECT_GT(r.moves, 0u);
}

TEST(Dynamics, EdgeCountIsInvariant) {
  Xoshiro256ss rng(3);
  const Graph start = random_connected_gnm(20, 30, rng);
  const DynamicsResult r = run_dynamics(start, sum_config());
  EXPECT_EQ(r.graph.num_edges(), start.num_edges());
  EXPECT_NO_THROW(r.graph.check_invariants());
}

TEST(Dynamics, TreeDynamicsReachDiameterTwo) {
  // Theorem 1 in action: trees under sum dynamics can only stop at stars.
  Xoshiro256ss rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph start = random_tree(15, rng);
    const DynamicsResult r = run_dynamics(start, sum_config());
    ASSERT_TRUE(r.converged);
    EXPECT_TRUE(is_tree(r.graph));  // swaps preserve edge count & connectivity
    EXPECT_LE(diameter(r.graph), 2u);
  }
}

TEST(Dynamics, FinalGraphStaysConnected) {
  // Improving swaps never disconnect (disconnection costs +∞).
  Xoshiro256ss rng(5);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph start = random_connected_gnm(18, 22, rng);
    const DynamicsResult r = run_dynamics(start, sum_config());
    EXPECT_TRUE(is_connected(r.graph));
  }
}

/// Full scheduler × policy × cost-model matrix as a parameterized suite:
/// every configuration must converge to a state its own certifier accepts,
/// preserve the edge budget, and keep the graph connected.
struct DynamicsMatrixCase {
  Scheduler scheduler;
  MovePolicy policy;
  UsageCost cost;
};

class DynamicsMatrix : public ::testing::TestWithParam<DynamicsMatrixCase> {};

TEST_P(DynamicsMatrix, ConvergesToSelfCertifiedEquilibrium) {
  const DynamicsMatrixCase& c = GetParam();
  Xoshiro256ss rng(6);
  const Graph start = random_connected_gnm(14, 20, rng);
  DynamicsConfig config;
  config.scheduler = c.scheduler;
  config.policy = c.policy;
  config.cost = c.cost;
  config.allow_neutral_deletions = c.cost == UsageCost::Max;
  config.max_moves = 50'000;
  const DynamicsResult r = run_dynamics(start, config);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(is_connected(r.graph));
  EXPECT_LE(r.graph.num_edges(), start.num_edges());  // = for sum; ≤ with deletions
  if (c.cost == UsageCost::Sum) {
    EXPECT_EQ(r.graph.num_edges(), start.num_edges());
    EXPECT_TRUE(is_sum_equilibrium(r.graph));
  } else {
    EXPECT_TRUE(is_max_equilibrium(r.graph));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, DynamicsMatrix,
    ::testing::Values(
        DynamicsMatrixCase{Scheduler::RoundRobin, MovePolicy::FirstImprovement, UsageCost::Sum},
        DynamicsMatrixCase{Scheduler::RoundRobin, MovePolicy::BestImprovement, UsageCost::Sum},
        DynamicsMatrixCase{Scheduler::RandomOrder, MovePolicy::FirstImprovement, UsageCost::Sum},
        DynamicsMatrixCase{Scheduler::RandomOrder, MovePolicy::BestImprovement, UsageCost::Sum},
        DynamicsMatrixCase{Scheduler::GreedyGlobal, MovePolicy::BestImprovement, UsageCost::Sum},
        DynamicsMatrixCase{Scheduler::RoundRobin, MovePolicy::FirstImprovement, UsageCost::Max},
        DynamicsMatrixCase{Scheduler::RoundRobin, MovePolicy::BestImprovement, UsageCost::Max},
        DynamicsMatrixCase{Scheduler::RandomOrder, MovePolicy::FirstImprovement, UsageCost::Max},
        DynamicsMatrixCase{Scheduler::GreedyGlobal, MovePolicy::BestImprovement,
                           UsageCost::Max}));

TEST(Dynamics, RandomOrderIsDeterministicGivenSeed) {
  Xoshiro256ss rng(8);
  const Graph start = random_connected_gnm(16, 22, rng);
  DynamicsConfig config = sum_config();
  config.scheduler = Scheduler::RandomOrder;
  config.seed = 12345;
  const DynamicsResult r1 = run_dynamics(start, config);
  const DynamicsResult r2 = run_dynamics(start, config);
  EXPECT_EQ(r1.graph, r2.graph);
  EXPECT_EQ(r1.moves, r2.moves);
}

TEST(Dynamics, TraceRecordsMonotoneMoveIndices) {
  DynamicsConfig config = sum_config();
  config.record_trace = true;
  const DynamicsResult r = run_dynamics(path(9), config);
  ASSERT_FALSE(r.trace.empty());
  EXPECT_EQ(r.trace.front().move, 0u);
  for (std::size_t i = 1; i < r.trace.size(); ++i) {
    EXPECT_EQ(r.trace[i].move, r.trace[i - 1].move + 1);
  }
  EXPECT_EQ(r.trace.back().move, r.moves);
  // Final snapshot matches the final graph.
  EXPECT_EQ(r.trace.back().diameter, diameter(r.graph));
  EXPECT_EQ(r.trace.back().social_cost, social_cost(r.graph, UsageCost::Sum));
}

TEST(Dynamics, MoveBudgetIsRespected) {
  DynamicsConfig config = sum_config();
  config.max_moves = 2;
  const DynamicsResult r = run_dynamics(path(30), config);
  EXPECT_LE(r.moves, 2u);
  EXPECT_FALSE(r.converged);
}

TEST(Dynamics, MaxModelWithNeutralDeletionsPrunesChords) {
  // C_8 plus chord 0–2 (non-critical): max dynamics with neutral deletions
  // should remove redundant edges or otherwise reach a max equilibrium.
  Graph start = cycle(8);
  start.add_edge(0, 2);
  DynamicsConfig config;
  config.cost = UsageCost::Max;
  config.allow_neutral_deletions = true;
  config.max_moves = 10'000;
  const DynamicsResult r = run_dynamics(start, config);
  ASSERT_TRUE(r.converged);
  EXPECT_TRUE(is_max_equilibrium(r.graph));
}

TEST(Dynamics, DisconnectedStartRejected) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_THROW((void)run_dynamics(g, sum_config()), std::invalid_argument);
}

TEST(Dynamics, SocialCostModels) {
  const Graph g = star(6);
  // Sum: center 5, each leaf 1 + 2·4 = 9 → 5 + 5·9 = 50.
  EXPECT_EQ(social_cost(g, UsageCost::Sum), 50u);
  // Max: center ecc 1, leaves ecc 2 → 1 + 5·2 = 11.
  EXPECT_EQ(social_cost(g, UsageCost::Max), 11u);
  Graph disc(3);
  disc.add_edge(0, 1);
  EXPECT_EQ(social_cost(disc, UsageCost::Sum), kInfCost);
}

TEST(Dynamics, RevisitDetectionOffByDefault) {
  const DynamicsResult r = run_dynamics(path(8), sum_config());
  EXPECT_FALSE(r.revisited);
  EXPECT_EQ(r.first_revisit_move, 0u);
}

TEST(Dynamics, NoRevisitsObservedOnConvergentRuns) {
  // No potential function is known for either usage cost; on every
  // convergent run we have observed, states never recur. This documents
  // that observation (a revisit here would be a publishable example).
  Xoshiro256ss rng(55);
  for (int trial = 0; trial < 5; ++trial) {
    DynamicsConfig config = sum_config();
    config.detect_revisits = true;
    config.scheduler = Scheduler::RandomOrder;
    config.seed = rng();
    const DynamicsResult r = run_dynamics(random_connected_gnm(14, 20, rng), config);
    EXPECT_TRUE(r.converged);
    EXPECT_FALSE(r.revisited);
  }
}

TEST(Dynamics, PassesAreCounted) {
  const DynamicsResult r = run_dynamics(path(8), sum_config());
  EXPECT_GE(r.passes, 2u);  // at least one active pass plus the quiet one
}

}  // namespace
}  // namespace bncg

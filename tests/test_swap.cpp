// Unit tests for edge swaps and the transactional ScopedSwap.
#include "core/swap.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"

namespace bncg {
namespace {

TEST(Swap, LegalityChecks) {
  const Graph g = path(4);
  EXPECT_TRUE(is_legal_swap(g, {1, 0, 3}));
  EXPECT_FALSE(is_legal_swap(g, {1, 3, 0}));  // 1-3 not an edge
  EXPECT_FALSE(is_legal_swap(g, {1, 0, 1}));  // self target
  EXPECT_FALSE(is_legal_swap(g, {1, 0, 9}));  // out of range
}

TEST(Swap, ScopedSwapAppliesAndReverts) {
  Graph g = path(4);
  const Graph original = g;
  {
    ScopedSwap s(g, {0, 1, 3});
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_TRUE(g.has_edge(0, 3));
    EXPECT_TRUE(s.added_edge());
  }
  EXPECT_EQ(g, original);
}

TEST(Swap, ScopedSwapCommitPersists) {
  Graph g = path(4);
  {
    ScopedSwap s(g, {0, 1, 2});
    s.commit();
  }
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Swap, SwapOntoExistingEdgeIsDeletion) {
  Graph g = cycle(4);  // 0-1-2-3-0
  {
    ScopedSwap s(g, {0, 1, 3});  // 0-3 already exists
    EXPECT_FALSE(s.added_edge());
    EXPECT_FALSE(g.has_edge(0, 1));
    EXPECT_EQ(g.num_edges(), 3u);
  }
  EXPECT_EQ(g, cycle(4));
}

TEST(Swap, NoOpSwapLeavesGraphUntouched) {
  Graph g = path(3);
  {
    ScopedSwap s(g, {1, 0, 0});
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_FALSE(s.added_edge());
  }
  EXPECT_EQ(g, path(3));
}

TEST(Swap, IllegalSwapThrows) {
  Graph g = path(3);
  EXPECT_THROW(ScopedSwap(g, {0, 2, 1}), std::invalid_argument);
}

TEST(Swap, ApplySwapHelper) {
  Graph g = star(5);
  apply_swap(g, {1, 0, 2});  // leaf 1 rewires from center to leaf 2
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(Swap, EdgeCountInvariantUnderRealSwaps) {
  Graph g = cycle(6);
  const std::size_t m = g.num_edges();
  apply_swap(g, {0, 1, 3});
  apply_swap(g, {2, 3, 5});
  EXPECT_EQ(g.num_edges(), m);
  EXPECT_NO_THROW(g.check_invariants());
}

TEST(Swap, NestedScopedSwapsUnwindInOrder) {
  Graph g = cycle(5);
  const Graph original = g;
  {
    ScopedSwap outer(g, {0, 1, 2});
    {
      ScopedSwap inner(g, {3, 2, 0});
      EXPECT_NO_THROW(g.check_invariants());
    }
    EXPECT_TRUE(g.has_edge(2, 3));
  }
  EXPECT_EQ(g, original);
}

}  // namespace
}  // namespace bncg

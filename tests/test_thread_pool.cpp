// util/thread_pool.hpp — the long-lived static-partition pool behind every
// parallel certify/evaluate pass. Correctness here is load-bearing for the
// determinism story: parallel_for must cover every index exactly once for
// any lane count, grain, and nesting shape, and must propagate exceptions
// without wedging the workers.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace bncg {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const unsigned lanes : {1u, 2u, 3u, 8u}) {
    ThreadPool pool(lanes);
    ASSERT_EQ(pool.size(), lanes);
    for (const std::uint64_t count : {0ull, 1ull, 7ull, 64ull, 1000ull}) {
      for (const std::uint64_t grain : {1ull, 4ull, 64ull, 10000ull}) {
        std::vector<std::atomic<std::uint32_t>> hits(count);
        pool.parallel_for(count, grain, [&](std::uint64_t i, unsigned tid) {
          ASSERT_LT(tid, lanes);
          hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::uint64_t i = 0; i < count; ++i) {
          EXPECT_EQ(hits[i].load(), 1u) << "lanes=" << lanes << " count=" << count
                                        << " grain=" << grain << " i=" << i;
        }
      }
    }
  }
}

TEST(ThreadPool, LaneSlotsAreRaceFree) {
  // The per-lane scratch pattern every engine uses: lane-indexed
  // accumulators must add up to the serial total without synchronization
  // beyond the pool's own claim protocol.
  ThreadPool pool(4);
  constexpr std::uint64_t kCount = 4096;
  struct alignas(64) Lane {
    std::uint64_t sum = 0;
  };
  std::vector<Lane> lanes(pool.size());
  pool.parallel_for(kCount, 16, [&](std::uint64_t i, unsigned tid) { lanes[tid].sum += i; });
  std::uint64_t total = 0;
  for (const Lane& lane : lanes) total += lane.sum;
  EXPECT_EQ(total, kCount * (kCount - 1) / 2);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> ran{0};
  EXPECT_THROW(pool.parallel_for(256, 1,
                                 [&](std::uint64_t i, unsigned) {
                                   ran.fetch_add(1, std::memory_order_relaxed);
                                   if (i == 17) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool must stay usable after an exceptional drain.
  std::atomic<std::uint64_t> after{0};
  pool.parallel_for(64, 4, [&](std::uint64_t, unsigned) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 64u);
  EXPECT_GE(ran.load(), 1u);
}

TEST(ThreadPool, NestedCallsRunInlineOnTheCallersLane) {
  ThreadPool pool(4);
  std::atomic<bool> mismatch{false};
  pool.parallel_for(64, 1, [&](std::uint64_t, unsigned outer_tid) {
    pool.parallel_for(8, 1, [&](std::uint64_t, unsigned inner_tid) {
      if (inner_tid != outer_tid) mismatch.store(true, std::memory_order_relaxed);
    });
  });
  EXPECT_FALSE(mismatch.load());
}

TEST(ThreadPool, ContendedTopLevelCallersFallBackInline) {
  // Two threads racing the same pool: the loser of the job lock runs its
  // whole range inline as lane 0. Both ranges must still cover exactly.
  ThreadPool pool(2);
  std::vector<std::atomic<std::uint32_t>> hits_a(512), hits_b(512);
  std::thread other([&] {
    pool.parallel_for(512, 1, [&](std::uint64_t i, unsigned) {
      hits_b[i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  pool.parallel_for(512, 1, [&](std::uint64_t i, unsigned) {
    hits_a[i].fetch_add(1, std::memory_order_relaxed);
  });
  other.join();
  for (std::size_t i = 0; i < 512; ++i) {
    EXPECT_EQ(hits_a[i].load(), 1u) << i;
    EXPECT_EQ(hits_b[i].load(), 1u) << i;
  }
}

TEST(ThreadPool, GlobalPoolIsSingletonAndSized) {
  ThreadPool& a = ThreadPool::global();
  ThreadPool& b = ThreadPool::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  EXPECT_LE(a.size(), 256u);
}

}  // namespace
}  // namespace bncg

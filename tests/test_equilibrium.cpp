// Unit tests for the equilibrium certifiers — the paper's definitions
// exercised on known equilibria and known non-equilibria.
#include "core/equilibrium.hpp"

#include <gtest/gtest.h>

#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

// ---------------------------------------------------------------- sum model

TEST(SumEquilibrium, StarIsInSumEquilibrium) {
  EXPECT_TRUE(is_sum_equilibrium(star(8)));
}

TEST(SumEquilibrium, CompleteGraphIsInSumEquilibrium) {
  EXPECT_TRUE(is_sum_equilibrium(complete(6)));
}

TEST(SumEquilibrium, PathIsNotInSumEquilibrium) {
  const EquilibriumCertificate cert = certify_sum_equilibrium(path(6));
  EXPECT_FALSE(cert.is_equilibrium);
  ASSERT_TRUE(cert.witness.has_value());
  EXPECT_LT(cert.witness->cost_after, cert.witness->cost_before);
}

TEST(SumEquilibrium, WitnessIsActuallyImproving) {
  const Graph g = path(7);
  const EquilibriumCertificate cert = certify_sum_equilibrium(g);
  ASSERT_TRUE(cert.witness.has_value());
  const Deviation& dev = *cert.witness;
  Graph h = g;
  BfsWorkspace ws;
  EXPECT_EQ(vertex_cost(h, dev.swap.v, UsageCost::Sum, ws), dev.cost_before);
  apply_swap(h, dev.swap);
  EXPECT_EQ(vertex_cost(h, dev.swap.v, UsageCost::Sum, ws), dev.cost_after);
}

TEST(SumEquilibrium, LongCycleIsNotInSumEquilibrium) {
  EXPECT_FALSE(is_sum_equilibrium(cycle(12)));
}

TEST(SumEquilibrium, SmallCyclesAreInSumEquilibrium) {
  // C_3, C_4, C_5 have diameter ≤ 2; by Lemma 6 no swap helps any vertex.
  EXPECT_TRUE(is_sum_equilibrium(cycle(3)));
  EXPECT_TRUE(is_sum_equilibrium(cycle(4)));
  EXPECT_TRUE(is_sum_equilibrium(cycle(5)));
}

TEST(SumEquilibrium, DoubleStarTreeIsNotInSumEquilibrium) {
  // Theorem 1: the only sum-equilibrium tree is the star.
  EXPECT_FALSE(is_sum_equilibrium(double_star(3, 3)));
}

TEST(SumEquilibrium, LiteralFig3AdmitsTheDocumentedImprovingSwap) {
  // Reproduction finding (see gen/paper.hpp): the literal Figure 3 instance
  // is refuted by the d-agent swap onto the dropped vertex's matched
  // partner. Verify the exact documented witness end to end.
  const Graph g = fig3_diameter3_graph();
  const EquilibriumCertificate cert = certify_sum_equilibrium(g);
  EXPECT_FALSE(cert.is_equilibrium);

  const auto [v, remove_w, add_w] = fig3_refuting_swap();
  BfsWorkspace ws;
  const std::uint64_t before = vertex_cost(g, v, UsageCost::Sum, ws);
  Graph h = g;
  apply_swap(h, {v, remove_w, add_w});
  const std::uint64_t after = vertex_cost(h, v, UsageCost::Sum, ws);
  EXPECT_EQ(before, 27u);
  EXPECT_EQ(after, 26u);
}

TEST(SumEquilibrium, LiteralFig3OnlyDAgentsAreUnstable) {
  // The paper's per-vertex case analysis is correct for a, b_i, c_{i,k};
  // only the d_i cases fail. Confirm the refutation is exactly that family.
  const Graph g = fig3_diameter3_graph();
  BfsWorkspace ws;
  for (Vertex i = 1; i <= 3; ++i) {
    EXPECT_TRUE(vertex_is_sum_stable(g, fig3::b(i))) << "b" << i;
    EXPECT_TRUE(vertex_is_sum_stable(g, fig3::c(i, 1)));
    EXPECT_TRUE(vertex_is_sum_stable(g, fig3::c(i, 2)));
    EXPECT_FALSE(vertex_is_sum_stable(g, fig3::d(i))) << "d" << i;
  }
  EXPECT_TRUE(vertex_is_sum_stable(g, fig3::kA));
}

TEST(SumEquilibrium, RepairedN8WitnessIsADiameter3SumEquilibrium) {
  // Theorem 5's statement, upheld by the library's search-found witness.
  const Graph g = diameter3_sum_equilibrium_n8();
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 11u);
  EXPECT_EQ(diameter(g), 3u);
  const EquilibriumCertificate cert = certify_sum_equilibrium(g);
  EXPECT_TRUE(cert.is_equilibrium);
  EXPECT_GT(cert.moves_checked, 0u);
}

TEST(SumEquilibrium, PerVertexScanFindsDeviationOnlyForUnstableAgents) {
  // In a path, inner agents can improve; in a star, nobody can.
  BfsWorkspace ws;
  EXPECT_TRUE(first_sum_deviation(path(6), 0, ws).has_value());
  const Graph s = star(6);
  for (Vertex v = 0; v < 6; ++v) {
    EXPECT_FALSE(first_sum_deviation(s, v, ws).has_value()) << v;
  }
}

TEST(SumEquilibrium, BestDeviationWeaklyBeatsFirst) {
  Xoshiro256ss rng(31);
  BfsWorkspace ws;
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_connected_gnm(15, 20, rng);
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const auto first = first_sum_deviation(g, v, ws);
      const auto best = best_sum_deviation(g, v, ws);
      EXPECT_EQ(first.has_value(), best.has_value());
      if (first && best) {
        EXPECT_LE(best->cost_after, first->cost_after);
      }
    }
  }
}

TEST(SumEquilibrium, VertexStabilityMatchesCertifier) {
  Xoshiro256ss rng(33);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = random_connected_gnm(12, 18, rng);
    bool all_stable = true;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      all_stable = all_stable && vertex_is_sum_stable(g, v);
    }
    EXPECT_EQ(all_stable, is_sum_equilibrium(g));
  }
}

TEST(SumEquilibrium, EveryDiameterTwoGraphIsASumEquilibrium) {
  // Corollary of Lemma 6: vertices of local diameter ≤ 2 never gain, so any
  // diameter-≤2 graph certifies. This is why all pre-paper equilibrium
  // examples had diameter 2 and why Theorem 5's separation needed work.
  Xoshiro256ss rng(212);
  int diameter2_instances = 0;
  for (int trial = 0; trial < 24; ++trial) {
    const Graph g = random_connected_gnm(12, 30 + trial, rng);
    if (diameter(g) > 2) continue;
    ++diameter2_instances;
    EXPECT_TRUE(is_sum_equilibrium(g)) << to_string(g);
  }
  EXPECT_GT(diameter2_instances, 3);  // the sweep actually exercised the claim
}

// ---------------------------------------------------------------- max model

TEST(MaxEquilibrium, StarIsInMaxEquilibrium) {
  EXPECT_TRUE(is_max_equilibrium(star(7)));
}

TEST(MaxEquilibrium, DoubleStarWithTwoLeavesPerSideIsInMaxEquilibrium) {
  // Figure 2: double-stars need ≥ 2 leaves on each root (§2.2).
  EXPECT_TRUE(is_max_equilibrium(double_star(2, 2)));
  EXPECT_TRUE(is_max_equilibrium(double_star(3, 5)));
}

TEST(MaxEquilibrium, DoubleStarWithOneLeafIsNotInMaxEquilibrium) {
  // With a single leaf a on root v, the swap av → aw restores nothing:
  // a can improve (or the deletion clause fails) — the paper's "at least
  // two leaves attached to each star root" condition.
  EXPECT_FALSE(is_max_equilibrium(double_star(1, 2)));
  EXPECT_FALSE(is_max_equilibrium(double_star(1, 1)));
}

TEST(MaxEquilibrium, CompleteGraphFailsDeletionCriticality) {
  // Deleting one edge of K_n (n ≥ 4) leaves eccentricity 1 → 2 for its
  // endpoints? No: endpoints reach each other via a third vertex, so their
  // local diameter goes 1 → 2... which IS a strict increase. For n ≥ 4 every
  // other pair stays at distance 1, so K_n is deletion-critical; and no swap
  // can improve eccentricity 1. Hence K_n IS a max equilibrium.
  EXPECT_TRUE(is_max_equilibrium(complete(5)));
}

TEST(MaxEquilibrium, CycleWithChordFailsDeletionClause) {
  // C_6 plus a long chord: the chord can be deleted without raising its
  // endpoints' eccentricity? Build C_8 + chord 0–2: deleting 0–2 leaves
  // ecc(0) unchanged (paths via 1). The deletion clause must flag it.
  Graph g = cycle(8);
  g.add_edge(0, 2);
  const EquilibriumCertificate cert = certify_max_equilibrium(g);
  EXPECT_FALSE(cert.is_equilibrium);
}

TEST(MaxEquilibrium, PathIsNotInMaxEquilibrium) {
  EXPECT_FALSE(is_max_equilibrium(path(6)));
}

TEST(MaxEquilibrium, RotatedTorusIsInMaxEquilibrium) {
  // Theorem 12, certified exhaustively for k = 3 (n = 18).
  const DiagonalTorus torus = rotated_torus(3);
  EXPECT_TRUE(is_max_equilibrium(torus.graph()));
}

TEST(MaxEquilibrium, StandardTorusIsNotInMaxEquilibrium) {
  // The paper's pointed remark: "a standard torus is not in max
  // equilibrium, so the precise definition is critical."
  EXPECT_FALSE(is_max_equilibrium(torus_standard(6, 6)));
}

TEST(MaxEquilibrium, NonCriticalDeleteWitnessIsReportedAsSuch) {
  Graph g = cycle(8);
  g.add_edge(0, 2);
  const EquilibriumCertificate cert = certify_max_equilibrium(g);
  ASSERT_TRUE(cert.witness.has_value());
  // Either an improving swap or a non-critical deletion is a valid witness;
  // verify the reported kind is consistent with its costs.
  if (cert.witness->kind == Deviation::Kind::NonCriticalDelete) {
    EXPECT_LE(cert.witness->cost_after, cert.witness->cost_before + 0);
  } else {
    EXPECT_LT(cert.witness->cost_after, cert.witness->cost_before);
  }
}

// --------------------------------------- deletion-critical / insertion-stable

TEST(StructuralProperties, TreesAreDeletionCritical) {
  // Deleting any tree edge disconnects → +∞ local diameter for both sides.
  EXPECT_TRUE(is_deletion_critical(path(6)));
  EXPECT_TRUE(is_deletion_critical(star(6)));
  EXPECT_TRUE(is_deletion_critical(double_star(2, 2)));
}

TEST(StructuralProperties, EvenCycleDeletionCriticality) {
  // C_6: deleting any edge turns it into P_6; endpoint eccentricity
  // 3 → 5, strictly worse. Deletion-critical.
  EXPECT_TRUE(is_deletion_critical(cycle(6)));
}

TEST(StructuralProperties, ChordedCycleIsNotDeletionCritical) {
  Graph g = cycle(8);
  g.add_edge(0, 2);
  EXPECT_FALSE(is_deletion_critical(g));
}

TEST(StructuralProperties, RotatedTorusIsDeletionCriticalAndInsertionStable) {
  // The exact property pair Theorem 12 establishes.
  const DiagonalTorus torus = rotated_torus(3);
  EXPECT_TRUE(is_deletion_critical(torus.graph()));
  EXPECT_TRUE(is_insertion_stable(torus.graph()));
}

TEST(StructuralProperties, PathIsNotInsertionStable) {
  EXPECT_FALSE(is_insertion_stable(path(5)));
}

TEST(StructuralProperties, CompleteGraphIsVacuouslyInsertionStable) {
  EXPECT_TRUE(is_insertion_stable(complete(5)));
}

TEST(StructuralProperties, InsertionStablePlusDeletionCriticalImpliesMaxEq) {
  // The paper's implication, checked over a family of instances.
  Xoshiro256ss rng(77);
  std::vector<Graph> instances;
  instances.push_back(rotated_torus(3).graph());
  instances.push_back(star(9));
  instances.push_back(cycle(5));
  instances.push_back(double_star(2, 3));
  for (int t = 0; t < 6; ++t) instances.push_back(random_connected_gnm(10, 14, rng));
  for (const Graph& g : instances) {
    if (is_insertion_stable(g) && is_deletion_critical(g)) {
      EXPECT_TRUE(is_max_equilibrium(g)) << to_string(g);
    }
  }
}

TEST(StructuralProperties, DisconnectedGraphsFailEverything) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(is_deletion_critical(g));
  EXPECT_FALSE(is_insertion_stable(g));
}

// ------------------------------------------------------- Lemma 2 (balance)

TEST(Lemma2, LocalDiametersDifferByAtMostOneInMaxEquilibria) {
  // Check on every certified max equilibrium we know.
  for (const Graph& g : {star(8), double_star(2, 2), double_star(4, 3),
                         rotated_torus(3).graph(), complete(6)}) {
    ASSERT_TRUE(is_max_equilibrium(g));
    const auto ecc = eccentricities(g);
    const Vertex lo = *std::min_element(ecc.begin(), ecc.end());
    const Vertex hi = *std::max_element(ecc.begin(), ecc.end());
    EXPECT_LE(hi - lo, 1u) << to_string(g);
  }
}

TEST(Certifier, ParallelCertifierMatchesSerialPerVertexScan) {
  // The OpenMP-parallel certifier must agree with a plain serial sweep of
  // the per-vertex scanners on both verdict and (non)existence of witnesses.
  Xoshiro256ss rng(332);
  BfsWorkspace ws;
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_connected_gnm(14, 20 + trial, rng);
    bool serial_stable = true;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      serial_stable = serial_stable && !best_sum_deviation(g, v, ws).has_value();
    }
    const EquilibriumCertificate cert = certify_sum_equilibrium(g);
    EXPECT_EQ(cert.is_equilibrium, serial_stable) << to_string(g);
    EXPECT_EQ(cert.witness.has_value(), !serial_stable);
  }
}

TEST(Certifier, WitnessCostsAreConsistent) {
  // Whenever a witness is reported, replaying it must reproduce both costs.
  Xoshiro256ss rng(333);
  BfsWorkspace ws;
  for (int trial = 0; trial < 6; ++trial) {
    const Graph g = random_connected_gnm(12, 15, rng);
    const EquilibriumCertificate cert = certify_sum_equilibrium(g);
    if (!cert.witness) continue;
    Graph h = g;
    EXPECT_EQ(vertex_cost(h, cert.witness->swap.v, UsageCost::Sum, ws),
              cert.witness->cost_before);
    apply_swap(h, cert.witness->swap);
    EXPECT_EQ(vertex_cost(h, cert.witness->swap.v, UsageCost::Sum, ws),
              cert.witness->cost_after);
  }
}

TEST(Certifier, TinyGraphs) {
  // n ≤ 2: no legal improving swap can exist; certifiers must not crash.
  EXPECT_TRUE(is_sum_equilibrium(Graph(1)));
  Graph k2(2);
  k2.add_edge(0, 1);
  EXPECT_TRUE(is_sum_equilibrium(k2));
  EXPECT_TRUE(is_max_equilibrium(k2));
  EXPECT_TRUE(is_sum_equilibrium(complete(3)));
}

TEST(Certifier, MovesCheckedGrowsWithInstanceSize) {
  const auto small = certify_sum_equilibrium(star(6));
  const auto large = certify_sum_equilibrium(star(16));
  EXPECT_GT(large.moves_checked, small.moves_checked);
}

}  // namespace
}  // namespace bncg

// Integration tests: whole-pipeline flows crossing module boundaries —
// generators → dynamics → certifiers → analysis, as a user of the public
// API would compose them.
#include <gtest/gtest.h>

#include "core/classic_game.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/kstability.hpp"
#include "core/poa.hpp"
#include "gen/cayley.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/projective.hpp"
#include "gen/random.hpp"
#include "graph/distance_uniformity.hpp"
#include "graph/metrics.hpp"
#include "graph/power.hpp"
#include "util/rng.hpp"

namespace bncg {
namespace {

TEST(Integration, RandomStartToCertifiedSumEquilibrium) {
  // generator → dynamics → certifier → PoA analysis, end to end.
  Xoshiro256ss rng(101);
  const Graph start = random_connected_gnm(24, 32, rng);
  DynamicsConfig config;
  config.max_moves = 100'000;
  const DynamicsResult r = run_dynamics(start, config);
  ASSERT_TRUE(r.converged);
  const EquilibriumCertificate cert = certify_sum_equilibrium(r.graph);
  EXPECT_TRUE(cert.is_equilibrium);
  EXPECT_LE(diameter(r.graph), 6u);
  EXPECT_LT(social_cost_ratio(r.graph, UsageCost::Sum), 2.0);
}

TEST(Integration, DynamicsNeverLoseVerticesOrEdges) {
  Xoshiro256ss rng(102);
  const Graph start = barabasi_albert(30, 2, rng);
  DynamicsConfig config;
  config.scheduler = Scheduler::RandomOrder;
  config.max_moves = 100'000;
  const DynamicsResult r = run_dynamics(start, config);
  EXPECT_EQ(r.graph.num_vertices(), start.num_vertices());
  EXPECT_EQ(r.graph.num_edges(), start.num_edges());
  EXPECT_NO_THROW(r.graph.check_invariants());
}

TEST(Integration, EquilibriumFromDynamicsIsSwapStableInAlphaGameForAllAlpha) {
  // Run basic-game dynamics to equilibrium, then drop the result into the
  // α-game and confirm no swap deviations exist at any α — the paper's
  // transfer principle, executed.
  Xoshiro256ss rng(103);
  const Graph start = random_connected_gnm(16, 20, rng);
  DynamicsConfig config;
  config.max_moves = 100'000;
  const DynamicsResult r = run_dynamics(start, config);
  ASSERT_TRUE(r.converged);
  for (const double alpha : {0.01, 1.0, 7.0, 1e6}) {
    ClassicGame game(r.graph, alpha);
    BfsWorkspace ws;
    for (Vertex v = 0; v < r.graph.num_vertices(); ++v) {
      const auto move = game.best_deviation(v, ws);
      if (move) {
        EXPECT_NE(move->type, ClassicMove::Type::Swap);
      }
    }
  }
}

TEST(Integration, TorusPipelineFromConstructionToKStability) {
  // Construction → certifier → k-stability → uniformity, the full §4 story.
  const DiagonalTorus torus(2, 4);
  const Graph& g = torus.graph();
  EXPECT_TRUE(is_deletion_critical(g));
  EXPECT_TRUE(is_insertion_stable(g));
  const DistanceMatrix dm(g);
  EXPECT_EQ(max_tolerated_insertions(dm, 0, 3), 1u);
  // Vertex-transitive constructions are distance-uniform-ish: the best ε is
  // the same from every vertex by symmetry.
  const UniformityResult u = best_almost_uniformity(dm);
  EXPECT_LT(u.epsilon, 1.0);
}

TEST(Integration, PowerOfEquilibriumGraphReducesDiameter) {
  // Theorem 13's mechanism on a concrete instance: dynamics → equilibrium →
  // power graph → diameter divides (ceil).
  Xoshiro256ss rng(104);
  const Graph start = random_connected_gnm(30, 35, rng);
  DynamicsConfig config;
  config.max_moves = 100'000;
  const DynamicsResult r = run_dynamics(start, config);
  ASSERT_TRUE(r.converged);
  const Vertex d = diameter(r.graph);
  if (d >= 2) {
    const Graph squared = power(r.graph, 2);
    EXPECT_EQ(diameter(squared), (d + 1) / 2);
  }
}

TEST(Integration, CayleyGraphsFeedUniformityAnalysis) {
  // Theorem 15 pipeline: Cayley graph → uniformity scan → diameter bound
  // O(lg n / lg(1/ε)) spot check.
  const Graph g = circulant(64, {1, 8});
  const DistanceMatrix dm(g);
  const UniformityResult u = best_almost_uniformity(dm);
  const Vertex diam = distance_stats(dm).diameter;
  EXPECT_GT(diam, 0u);
  EXPECT_LE(u.epsilon, 1.0);
}

TEST(Integration, ProjectivePlaneIncidenceGraphUnderMaxDynamics) {
  // Structured bipartite start; max dynamics must terminate and report
  // consistently.
  const Graph start = incidence_graph(ProjectivePlane(2));
  DynamicsConfig config;
  config.cost = UsageCost::Max;
  config.allow_neutral_deletions = false;
  config.max_moves = 20'000;
  const DynamicsResult r = run_dynamics(start, config);
  EXPECT_TRUE(is_connected(r.graph));
  EXPECT_EQ(r.graph.num_edges(), start.num_edges());
}

TEST(Integration, TraceSocialCostMatchesRecomputation) {
  Xoshiro256ss rng(105);
  const Graph start = random_tree(12, rng);
  DynamicsConfig config;
  config.record_trace = true;
  config.max_moves = 10'000;
  const DynamicsResult r = run_dynamics(start, config);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.trace.back().social_cost, social_cost(r.graph, UsageCost::Sum));
  EXPECT_EQ(r.trace.back().social_cost, total_distance_sum(r.graph));
}

TEST(Integration, MixedFamilySweepAllCertifiersTerminate) {
  // Smoke-level integration over every generator: certifiers and analyses
  // must handle all shapes without exceptions.
  Xoshiro256ss rng(106);
  std::vector<Graph> family;
  family.push_back(star(10));
  family.push_back(cycle(9));
  family.push_back(petersen());
  family.push_back(hypercube(3));
  family.push_back(rotated_torus(3).graph());
  family.push_back(fig3_diameter3_graph());
  family.push_back(incidence_graph(ProjectivePlane(2)));
  family.push_back(random_tree(12, rng));
  family.push_back(watts_strogatz(16, 2, 0.2, rng));
  family.push_back(random_regular(12, 3, rng));
  for (const Graph& g : family) {
    EXPECT_NO_THROW({
      (void)certify_sum_equilibrium(g);
      (void)certify_max_equilibrium(g);
      (void)is_deletion_critical(g);
      (void)is_insertion_stable(g);
      (void)best_uniformity(g);
      (void)girth(g);
    });
  }
}

}  // namespace
}  // namespace bncg

// Unit tests for the equilibrium search module (core/search.hpp) — the
// machinery that re-established Theorem 5 after the literal Figure 3
// instance was refuted.
#include "core/search.hpp"

#include <gtest/gtest.h>

#include "core/equilibrium.hpp"
#include "gen/classic.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"

namespace bncg {
namespace {

TEST(Search, UnrestIsZeroExactlyOnEquilibria) {
  EXPECT_EQ(sum_unrest(star(9)), 0u);
  EXPECT_EQ(sum_unrest(complete(6)), 0u);
  EXPECT_EQ(sum_unrest(diameter3_sum_equilibrium_n8()), 0u);
  EXPECT_GT(sum_unrest(path(8)), 0u);
  EXPECT_GT(sum_unrest(fig3_diameter3_graph()), 0u);
}

TEST(Search, UnrestOfLiteralFig3IsExactlyThree) {
  // Each of the three d-agents has one unit of improvement available; all
  // other agents are stable (the paper's case analysis holds for them).
  EXPECT_EQ(sum_unrest(fig3_diameter3_graph()), 3u);
}

TEST(Search, UnrestMatchesCertifierVerdict) {
  Xoshiro256ss rng(61);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = random_connected_gnm(12, 18, rng);
    EXPECT_EQ(sum_unrest(g) == 0, is_sum_equilibrium(g));
  }
}

TEST(Search, AnnealFindsTheKnownDiameter3Equilibrium) {
  // Deterministic, seeded reproduction of the discovery run (small budget:
  // starting near the witness).
  AnnealConfig config;
  config.steps = 4000;
  config.seed = 77;
  const auto found = anneal_sum_equilibrium(diameter3_sum_equilibrium_n8(), config);
  ASSERT_TRUE(found.has_value());  // already an equilibrium: returns immediately
  EXPECT_EQ(*found, diameter3_sum_equilibrium_n8());
}

TEST(Search, AnnealRespectsDiameterConstraint) {
  Xoshiro256ss rng(62);
  AnnealConfig config;
  config.target_diameter = 3;
  config.steps = 3000;
  config.seed = 99;
  const auto found = anneal_sum_equilibrium(random_connected_gnm(8, 14, rng), config);
  if (found) {
    EXPECT_EQ(diameter(*found), 3u);
    EXPECT_TRUE(is_sum_equilibrium(*found));
  }
}

TEST(Search, ExhaustiveFindsNothingBelowEightVertices) {
  // The minimality half of the Theorem 5 reproduction: no diameter-3 sum
  // equilibrium exists on n ≤ 6 vertices (n = 7 is covered by the bench to
  // keep unit-test runtime low).
  for (const Vertex n : {4u, 5u, 6u}) {
    EXPECT_FALSE(exhaustive_diameter3_sum_equilibrium(n).has_value()) << "n=" << n;
  }
}

TEST(Search, ExhaustiveRejectsLargeN) {
  EXPECT_THROW((void)exhaustive_diameter3_sum_equilibrium(9), std::invalid_argument);
}

TEST(Search, MaxUnrestIsZeroExactlyOnMaxEquilibria) {
  EXPECT_EQ(max_unrest(star(9)), 0u);
  EXPECT_EQ(max_unrest(complete(6)), 0u);
  // C_9 admits no improving swap but plenty of non-critical chords once one
  // is added; the plain cycle's unrest comes from improving swaps.
  EXPECT_GT(max_unrest(cycle(9)), 0u);
  // A cost-neutral deletion (the chord of C_8 + {0,2}) is a violation worth
  // at least the floor contribution of 1.
  Graph chorded = cycle(8);
  chorded.add_edge(0, 2);
  EXPECT_GT(max_unrest(chorded), 0u);
}

TEST(Search, AnnealMaxModelResultsCertify) {
  Xoshiro256ss rng(63);
  AnnealConfig config;
  config.cost = UsageCost::Max;
  config.target_diameter = 2;
  config.steps = 2000;
  config.seed = 41;
  const auto found = anneal_equilibrium(random_connected_gnm(9, 14, rng), config);
  if (found) {
    EXPECT_EQ(diameter(*found), 2u);
    EXPECT_TRUE(is_max_equilibrium(*found));
  }
}

TEST(Search, AnnealStatsAccountForEveryProposal) {
  Xoshiro256ss rng(64);
  AnnealConfig config;
  config.steps = 500;
  config.seed = 7;
  config.target_diameter = 4;
  AnnealStats stats;
  const Graph start = random_connected_gnm(10, 16, rng);
  (void)anneal_equilibrium(start, config, &stats);
  EXPECT_EQ(stats.proposals, stats.filtered + stats.evaluated);
  EXPECT_LE(stats.accepted, stats.evaluated);
}

TEST(Search, AnnealSumWrapperForcesTheSumModel) {
  // The historical entry point keeps working even if a caller sets
  // config.cost to Max by mistake.
  AnnealConfig config;
  config.cost = UsageCost::Max;
  config.steps = 100;
  config.seed = 5;
  const auto found = anneal_sum_equilibrium(diameter3_sum_equilibrium_n8(), config);
  ASSERT_TRUE(found.has_value());  // sum equilibrium: returns immediately
  EXPECT_EQ(*found, diameter3_sum_equilibrium_n8());
}

}  // namespace
}  // namespace bncg

// Differential suite for the tree-game fast path (DESIGN.md §14): the
// single-rooting O(n) rerooting sweep behind best_tree_deviation must
// return exactly what the component-BFS + induced-subgraph oracle
// (bncg::naive::best_tree_deviation) returns — same presence, same
// (v, old_neighbor, new_neighbor, gain), including the lowest-id 1-median
// tie-break and the first-neighbor tie-break on equal gains — over 200+
// random trees, every agent. The fast path is pure scalar integer code (no
// SIMD kernels, no thread pool), but the suite still runs under both
// dispatch extremes and both BNCG_THREADS settings (the
// tree_game_engine_threads{1,4} CTest entries) so the oracle-parity matrix
// in DESIGN.md §14 is certified uniformly across all three engines.
#include "core/tree_game.hpp"

#include <gtest/gtest.h>

#include <string>

#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

namespace bncg {
namespace {

struct LevelGuard {
  SimdLevel saved = simd_active_level();
  ~LevelGuard() { simd_set_level(saved); }
};

/// Tree pool: uniform random trees plus the shapes with extreme tie-break
/// exposure (paths — every internal subtree is a path with a unique median;
/// stars and double stars — many equal-sum ties; caterpillar-ish spiders).
Graph tree_instance(int trial, Xoshiro256ss& rng) {
  switch (trial % 5) {
    case 0:
      return random_tree(4 + static_cast<Vertex>(rng.below(30)), rng);
    case 1:
      return path(4 + static_cast<Vertex>(rng.below(20)));
    case 2:
      return star(4 + static_cast<Vertex>(rng.below(20)));
    case 3:
      return double_star(2 + static_cast<Vertex>(rng.below(8)),
                         2 + static_cast<Vertex>(rng.below(8)));
    default:
      return random_tree(16 + static_cast<Vertex>(rng.below(48)), rng);
  }
}

void expect_same_move(const std::optional<TreeMove>& got, const std::optional<TreeMove>& want,
                      const std::string& context) {
  ASSERT_EQ(got.has_value(), want.has_value()) << context;
  if (!want) return;
  EXPECT_EQ(got->v, want->v) << context;
  EXPECT_EQ(got->old_neighbor, want->old_neighbor) << context;
  EXPECT_EQ(got->new_neighbor, want->new_neighbor) << context;
  EXPECT_EQ(got->gain, want->gain) << context;
}

TEST(TreeGameEngine, BestDeviationParity) {
  // 2 SIMD extremes × 110 trees × every agent against the oracle. The gain
  // is also revalidated against the ground-truth distance sums of the
  // post-move tree, so both implementations are checked for meaning, not
  // just for agreeing with each other.
  LevelGuard guard;
  for (const SimdLevel level : {SimdLevel::Scalar, simd_max_level()}) {
    ASSERT_EQ(simd_set_level(level), level);
    Xoshiro256ss rng(0x7EE5);
    for (int trial = 0; trial < 110; ++trial) {
      const Graph tree = tree_instance(trial, rng);
      const std::vector<std::uint64_t> before = tree_distance_sums(tree);
      for (Vertex v = 0; v < tree.num_vertices(); ++v) {
        const std::string ctx = std::string(simd_level_name(level)) + " trial " +
                                std::to_string(trial) + " v=" + std::to_string(v);
        const auto want = naive::best_tree_deviation(tree, v);
        const auto got = best_tree_deviation(tree, v);
        expect_same_move(got, want, ctx);
        if (!got) continue;
        Graph moved = tree;
        moved.remove_edge(got->v, got->old_neighbor);
        moved.add_edge(got->v, got->new_neighbor);
        ASSERT_TRUE(is_tree(moved)) << ctx;
        const std::vector<std::uint64_t> after = tree_distance_sums(moved);
        EXPECT_EQ(before[v] - after[v], got->gain) << ctx;
      }
    }
  }
}

TEST(TreeGameEngine, DynamicsReachStarsAndMatchOracleTrajectories) {
  // run_tree_dynamics uses the fast path internally; replay the same
  // round-robin schedule with the oracle and demand identical trajectories,
  // then confirm the Theorem 1 endpoint: fixed points have diameter ≤ 2.
  Xoshiro256ss rng(0x0DD5);
  for (int trial = 0; trial < 40; ++trial) {
    const Graph start = tree_instance(trial, rng);
    const TreeDynamicsResult fast = run_tree_dynamics(start, 10'000);

    Graph slow = start;
    std::uint64_t moves = 0;
    for (bool any_move = true; any_move;) {
      any_move = false;
      for (Vertex v = 0; v < slow.num_vertices(); ++v) {
        const auto move = naive::best_tree_deviation(slow, v);
        if (!move) continue;
        slow.remove_edge(move->v, move->old_neighbor);
        slow.add_edge(move->v, move->new_neighbor);
        ++moves;
        any_move = true;
      }
    }
    const std::string ctx = "trial " + std::to_string(trial);
    EXPECT_TRUE(fast.converged) << ctx;
    EXPECT_EQ(fast.moves, moves) << ctx;
    EXPECT_EQ(fast.tree.edges(), slow.edges()) << ctx;
    EXPECT_LE(diameter(fast.tree), 2u) << ctx;
  }
}

TEST(TreeGameEngine, StableAgentsEverywhereOnStars) {
  // Stars are the Theorem 1 fixed points: no agent — center or leaf — may
  // report a deviation from either implementation.
  for (Vertex n = 2; n <= 40; ++n) {
    const Graph g = star(n);
    for (Vertex v = 0; v < n; ++v) {
      EXPECT_FALSE(best_tree_deviation(g, v).has_value()) << "n=" << n << " v=" << v;
      EXPECT_FALSE(naive::best_tree_deviation(g, v).has_value()) << "n=" << n << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace bncg

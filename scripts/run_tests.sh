#!/usr/bin/env bash
# Tier-1 verification entry point (matches ROADMAP's verify line):
# configure, build, and run every test carrying the `tier1` CTest label.
#
# Usage: scripts/run_tests.sh [extra ctest args...]
#   scripts/run_tests.sh                 # full tier-1 suite
#   scripts/run_tests.sh -L property     # just the seeded property harness
#
# Environment knobs (the CI matrix drives these; defaults reproduce the
# plain local run):
#   BUILD_TYPE=Release|RelWithDebInfo|Debug   CMake build type
#   BNCG_SANITIZE=ON|OFF                      ASan+UBSan build (CI Sanitize leg)
#   BNCG_BUILD_DIR=path                       override the build directory
#     (default ./build for the plain config, ./build-<type>[-san] otherwise,
#     so sanitized and plain object files never mix)
#   BNCG_CTEST_TIMEOUT=seconds                global per-test ceiling (default
#     600) — a backstop under the per-test TIMEOUT properties so a hung test
#     can never wedge the suite
#   BNCG_SIMD=scalar|avx2|avx512|auto         runtime SIMD dispatch cap,
#     inherited by every test binary (CI's Scalar leg sets scalar)
#   BNCG_THREADS=N                            process thread-pool width
#     (default hardware_concurrency)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_type="${BUILD_TYPE:-Release}"
sanitize="${BNCG_SANITIZE:-OFF}"

if [ -n "${BNCG_BUILD_DIR:-}" ]; then
  build_dir="${BNCG_BUILD_DIR}"
elif [ "${build_type}" = "Release" ] && [ "${sanitize}" = "OFF" ]; then
  build_dir="${repo_root}/build"
else
  suffix="$(echo "${build_type}" | tr '[:upper:]' '[:lower:]')"
  [ "${sanitize}" = "OFF" ] || suffix="${suffix}-san"
  build_dir="${repo_root}/build-${suffix}"
fi

cmake -B "${build_dir}" -S "${repo_root}" \
  -DCMAKE_BUILD_TYPE="${build_type}" \
  -DBNCG_SANITIZE="${sanitize}" >/dev/null
cmake --build "${build_dir}" -j "$(nproc)"

ctest_timeout="${BNCG_CTEST_TIMEOUT:-600}"
if [ "$#" -gt 0 ]; then
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
    --timeout "${ctest_timeout}" "$@"
else
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
    --timeout "${ctest_timeout}" -L tier1
fi

#!/usr/bin/env bash
# Tier-1 verification entry point (matches ROADMAP's verify line):
# configure, build, and run every test carrying the `tier1` CTest label.
#
# Usage: scripts/run_tests.sh [extra ctest args...]
#   scripts/run_tests.sh                 # full tier-1 suite
#   scripts/run_tests.sh -L property     # just the seeded property harness
#
# The build directory defaults to ./build; override with BNCG_BUILD_DIR.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BNCG_BUILD_DIR:-${repo_root}/build}"

cmake -B "${build_dir}" -S "${repo_root}" >/dev/null
cmake --build "${build_dir}" -j "$(nproc)"

if [ "$#" -gt 0 ]; then
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"
else
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" -L tier1
fi

#!/usr/bin/env bash
# Million-scale memory-budget smoke (DESIGN.md §16, acceptance gate of the
# budgeted distance provider).
#
# Certifies an n = 2k² rotated-torus instance (k = 256 → n = 2^17 = 131072
# by default) END TO END under a hard memory cap that the dense O(n²)
# distance path provably cannot fit: the u16 slab alone would take
# 2·n² = 32 GiB at the default size, while this run is capped at 4 GiB of
# address space and asserted to stay under the RSS budget. Two legs:
#
#   REFUTED leg — the same torus with agent 0's first edge rewired to the
#     antipode (`gen --perturb`). With --stop-on-violation the certifier
#     must find the witness at agent 0, so the leg is a full end-to-end
#     certify (load → budgeted scans → witness → certificate) that finishes
#     in seconds at any n. The witness agent is asserted.
#
#   CLEAN leg — a worker shard over agents [0, AGENTS) of the pristine
#     torus under the same budget, asserted violation-free. This prices the
#     real per-agent equilibrium scan (the far-shell stream); the slice
#     size keeps the smoke inside a tier-1 timeout on a single core, where
#     the full 131072-agent sweep measures ≈ 2.9 s/agent ≈ 100 h. The full
#     sweep is the same command with CERTIFY_BUDGET_AGENTS=131072 (plus a
#     dispatcher fan-out across real cores, scripts/certify_fanout.sh).
#
# Memory enforcement: every certifier process runs under `ulimit -v` (the
# cap is HARD — an allocation past it aborts the run), and peak RSS is
# measured via GNU /usr/bin/time -v when present, else by polling the
# child's /proc VmHWM. Peak RSS must stay under --rss-cap-kb.
#
# Usage: scripts/certify_budget.sh [options]
#   --k K              torus parameter (default 256, n = 2k² = 131072)
#   --mem-budget B     per-lane distance-row budget (default 64M)
#   --agents N         clean-leg agent count (default 12)
#   --rss-cap-kb KB    peak-RSS assertion, also the ulimit -v cap
#                      (default 4194304 = 4 GiB)
#   --bin PATH         bncg_certify binary (default: $BNCG_CERTIFY_BIN, else
#                      build it into ${BNCG_BUILD_DIR:-<repo>/build})
#   --keep-dir         keep the scratch directory (prints its path)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

k="${CERTIFY_BUDGET_K:-256}"
mem_budget="${CERTIFY_BUDGET_MEM:-64M}"
agents="${CERTIFY_BUDGET_AGENTS:-12}"
rss_cap_kb="${CERTIFY_BUDGET_RSS_KB:-4194304}"
bin="${BNCG_CERTIFY_BIN:-}"
keep_dir=0

while [ "$#" -gt 0 ]; do
  case "$1" in
    --k) k="$2"; shift 2 ;;
    --mem-budget) mem_budget="$2"; shift 2 ;;
    --agents) agents="$2"; shift 2 ;;
    --rss-cap-kb) rss_cap_kb="$2"; shift 2 ;;
    --bin) bin="$2"; shift 2 ;;
    --keep-dir) keep_dir=1; shift ;;
    *) echo "certify_budget: unknown option: $1" >&2; exit 2 ;;
  esac
done
for check in "k=$k" "agents=$agents" "rss_cap_kb=$rss_cap_kb"; do
  case "${check#*=}" in
    ''|*[!0-9]*|0) echo "certify_budget: ${check%%=*} must be a positive integer" >&2; exit 2 ;;
  esac
done

if [ -z "$bin" ]; then
  build_dir="${BNCG_BUILD_DIR:-${repo_root}/build}"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release >/dev/null
  cmake --build "$build_dir" -j "$(nproc)" --target bncg_certify >/dev/null
  bin="$build_dir/bncg_certify"
fi
[ -x "$bin" ] || { echo "certify_budget: not executable: $bin" >&2; exit 2; }

work="$(mktemp -d "${TMPDIR:-/tmp}/certify_budget.XXXXXX")"
cleanup() {
  if [ "$keep_dir" -eq 1 ]; then
    echo "certify_budget: scratch kept at $work"
  else
    rm -rf "$work"
  fi
}
trap cleanup EXIT

# Sanitized binaries reserve terabytes of shadow address space and inflate
# RSS, so the CI sanitize leg keeps the two certification legs (verdict
# correctness) but skips the memory enforcement — the memory claim is a
# Release-build property.
enforce_mem=1
[ "${BNCG_SANITIZE:-OFF}" = "OFF" ] || enforce_mem=0

# run_capped NAME CMD...: run CMD under `ulimit -v $rss_cap_kb`, capture
# stdout/stderr in $work/NAME.{out,err}, and leave peak RSS (KB) in
# $work/NAME.rss. Fails the script if CMD fails or RSS exceeds the cap.
run_capped() {
  name="$1"; shift
  peak=0
  vcap="$rss_cap_kb"
  [ "$enforce_mem" -eq 1 ] || vcap=unlimited
  if [ -x /usr/bin/time ] && /usr/bin/time -v true >/dev/null 2>&1; then
    ( ulimit -v "$vcap"
      exec /usr/bin/time -v -o "$work/$name.time" "$@" \
        > "$work/$name.out" 2> "$work/$name.err" ) || {
      echo "certify_budget: $name failed:" >&2
      cat "$work/$name.err" >&2
      exit 1
    }
    peak="$(awk -F': ' '/Maximum resident set size/ {print $2}' "$work/$name.time")"
  else
    # No GNU time on this host: enforce via ulimit and sample the child's
    # VmHWM (monotone high-water mark, so the last sample is the peak).
    ( ulimit -v "$vcap"
      exec "$@" > "$work/$name.out" 2> "$work/$name.err" ) &
    pid=$!
    while kill -0 "$pid" 2>/dev/null; do
      hwm="$(awk '/VmHWM/ {print $2}' "/proc/$pid/status" 2>/dev/null || true)"
      if [ -n "${hwm:-}" ] && [ "$hwm" -gt "$peak" ]; then peak="$hwm"; fi
      sleep 0.05
    done
    wait "$pid" || {
      echo "certify_budget: $name failed:" >&2
      cat "$work/$name.err" >&2
      exit 1
    }
  fi
  echo "${peak:-0}" > "$work/$name.rss"
  if [ "$enforce_mem" -eq 1 ] && [ "${peak:-0}" -gt "$rss_cap_kb" ]; then
    echo "certify_budget: $name peak RSS ${peak} KB exceeds cap ${rss_cap_kb} KB" >&2
    exit 1
  fi
}

n=$(( 2 * k * k ))
dense_mib=$(( 2 * n / 1024 * n / 1024 ))
echo "certify_budget: n=$n (k=$k), mem budget $mem_budget, RSS cap ${rss_cap_kb} KB" \
     "(dense u16 slab would need ~${dense_mib} MiB)"

"$bin" gen --family torus --k "$k" --out "$work/torus.bncg" 2> "$work/gen.err"
"$bin" gen --family torus --k "$k" --perturb --out "$work/torus_perturbed.bncg" \
  2> "$work/gen_perturbed.err"

# --- REFUTED leg: full end-to-end certify of the perturbed instance. -------
run_capped refuted "$bin" certify --graph "$work/torus_perturbed.bncg" \
  --model max --stop-on-violation --mem-budget "$mem_budget" --shards 1
grep -q '^verdict=VIOLATED' "$work/refuted.out" || {
  echo "certify_budget: perturbed torus was not refuted:" >&2
  cat "$work/refuted.out" >&2
  exit 1
}
grep -q '^witness agent=0 ' "$work/refuted.out" || {
  echo "certify_budget: witness is not the perturbed agent 0:" >&2
  cat "$work/refuted.out" >&2
  exit 1
}
echo "certify_budget: REFUTED leg ok (witness at agent 0," \
     "peak RSS $(cat "$work/refuted.rss") KB)"

# --- CLEAN leg: pristine-torus worker shard under the same budget. ---------
run_capped clean "$bin" worker --graph "$work/torus.bncg" \
  --range "0:$agents" --shard-index 0 --shard-count 1 \
  --model max --include-deletions --mem-budget "$mem_budget" \
  --out "$work/clean.shard"
grep -q ' clean ' "$work/clean.err" || {
  echo "certify_budget: pristine torus shard [0, $agents) was not clean:" >&2
  cat "$work/clean.err" >&2
  exit 1
}
echo "certify_budget: CLEAN leg ok (agents [0, $agents) violation-free," \
     "peak RSS $(cat "$work/clean.rss") KB)"

echo "certify_budget: OK"

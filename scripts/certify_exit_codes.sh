#!/usr/bin/env bash
# Exit-code taxonomy test of tools/bncg_certify (documented in --help):
#
#   0  certificate emitted (either verdict)
#   1  usage or environment error
#   2  coverage refusal: serve quarantined ranges, certificate withheld
#   3  wire/merge/handshake guard refusal
#   4  transport failure after bounded retries
#
# Each code is exercised through a real invocation: scripts and CI compose
# against these numbers (retry on 4, alert on 3, treat 2 as "rerun with
# more workers"), so a silent renumbering must fail tier-1 loudly.
#
# Usage: scripts/certify_exit_codes.sh [--bin PATH] [--keep-dir]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

bin="${BNCG_CERTIFY_BIN:-}"
keep_dir=0
while [ "$#" -gt 0 ]; do
  case "$1" in
    --bin) bin="$2"; shift 2 ;;
    --keep-dir) keep_dir=1; shift ;;
    *) echo "certify_exit_codes: unknown option: $1" >&2; exit 2 ;;
  esac
done

if [ -z "$bin" ]; then
  build_dir="${BNCG_BUILD_DIR:-${repo_root}/build}"
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target bncg_certify -j "$(nproc)" >/dev/null
  bin="${build_dir}/bncg_certify"
fi
[ -x "$bin" ] || { echo "certify_exit_codes: not executable: $bin" >&2; exit 2; }

work_dir="$(mktemp -d "${TMPDIR:-/tmp}/bncg_exitcodes.XXXXXX")"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -KILL "$pid" 2>/dev/null || true
  done
  if [ "$keep_dir" -eq 1 ]; then
    echo "certify_exit_codes: scratch kept at $work_dir" >&2
  else
    rm -rf "$work_dir"
  fi
}
trap cleanup EXIT
trap 'trap - INT TERM; cleanup; exit 130' INT TERM

failures=0
expect_rc() {  # $1 = want, $2 = label, then the command
  local want="$1" label="$2" got=0
  shift 2
  "$@" >>"$work_dir/cmd.out" 2>>"$work_dir/cmd.log" || got=$?
  if [ "$got" -eq "$want" ]; then
    echo "certify_exit_codes: OK   exit $want — $label"
  else
    echo "certify_exit_codes: FAIL exit $got (want $want) — $label" >&2
    failures=$(( failures + 1 ))
  fi
}

graph="$work_dir/instance.edges"
"$bin" gen --n 24 --m 48 --seed 5 --out "$graph" 2>/dev/null

# --- exit 0: certificate emitted -------------------------------------------
expect_rc 0 "certify on a small instance" \
  "$bin" certify --graph "$graph"

# --- exit 1: usage / environment errors ------------------------------------
expect_rc 1 "unknown mode" "$bin" frobnicate
expect_rc 1 "unknown flag" "$bin" certify --graph "$graph" --frobnicate
expect_rc 1 "missing required flag" "$bin" certify
expect_rc 1 "unreadable graph file" "$bin" certify --graph "$work_dir/no-such-file"
expect_rc 1 "no mode at all" "$bin"
# The service modes obey the same taxonomy: a bad invocation is a one-line
# usage diagnostic and exit 1, never 0, a throw, or a late guard refusal.
expect_rc 1 "serve with an unknown flag" \
  "$bin" serve --graph "$graph" --listen "unix:$work_dir/x.sock" --frobnicate
expect_rc 1 "serve with a missing flag value" \
  "$bin" serve --graph "$graph" --listen
expect_rc 1 "serve with a zero lease" \
  "$bin" serve --graph "$graph" --listen "unix:$work_dir/x.sock" --lease-ms 0
expect_rc 1 "serve with a zero backoff" \
  "$bin" serve --graph "$graph" --listen "unix:$work_dir/x.sock" --backoff-ms 0
expect_rc 1 "serve --jobs with a bad spec key" \
  "$bin" serve --listen "unix:$work_dir/x.sock" --jobs "$graph,frobnicate"
expect_rc 1 "serve --jobs mode without jobs or submissions" \
  "$bin" serve --listen "unix:$work_dir/x.sock" --accept-submissions 0 --certs-dir "$work_dir/c"
expect_rc 1 "submit without a graph" "$bin" submit --connect "unix:$work_dir/x.sock"
expect_rc 1 "submit with an unknown flag" \
  "$bin" submit --connect "unix:$work_dir/x.sock" --graph "$graph" --frobnicate
expect_rc 1 "status without a dispatcher address" "$bin" status
expect_rc 1 "status with an unknown flag" \
  "$bin" status --connect "unix:$work_dir/x.sock" --frobnicate
usage_line_count="$("$bin" certify --graph "$graph" --frobnicate 2>&1 >/dev/null | head -1 | grep -c '^bncg_certify: ' || true)"
if [ "$usage_line_count" -ne 1 ]; then
  echo "certify_exit_codes: FAIL usage error lacks the one-line stderr diagnostic" >&2
  failures=$(( failures + 1 ))
else
  echo "certify_exit_codes: OK   usage errors lead with a one-line diagnostic"
fi

# --- exit 3: wire/merge/handshake guard refusals ----------------------------
other="$work_dir/other.edges"
"$bin" gen --n 24 --m 48 --seed 6 --out "$other" 2>/dev/null
"$bin" worker --graph "$graph" --range 0:12 --shard-index 0 --shard-count 2 \
  --out "$work_dir/a.shard" 2>/dev/null
"$bin" worker --graph "$other" --range 12:24 --shard-index 1 --shard-count 2 \
  --out "$work_dir/b.shard" 2>/dev/null
expect_rc 3 "merge of shards from two different instances" \
  "$bin" merge "$work_dir/a.shard" "$work_dir/b.shard"

printf 'garbage, not a shard\n' >"$work_dir/garbage.shard"
expect_rc 3 "merge of a corrupt shard file" \
  "$bin" merge "$work_dir/garbage.shard"

# Handshake refusal: a worker whose loaded instance differs from the served
# one is turned away at connect (and must report exit 3, not a transport
# failure — the network was fine, the data was wrong).
sock="unix:$work_dir/serve.sock"
"$bin" serve --graph "$graph" --listen "$sock" --shards 2 --lease-ms 8000 \
  >"$work_dir/served.txt" 2>"$work_dir/serve.log" &
serve_pid=$!
pids+=("$serve_pid")
sleep 0.3
expect_rc 3 "handshake refusal of a wrong-instance worker" \
  "$bin" worker --graph "$other" --connect "$sock"
# Let an honest worker finish the run so the dispatcher exits 0 cleanly.
"$bin" worker --graph "$graph" --connect "$sock" 2>>"$work_dir/cmd.log" || true
serve_rc=0
wait "$serve_pid" || serve_rc=$?
if [ "$serve_rc" -ne 0 ]; then
  echo "certify_exit_codes: FAIL serve exited $serve_rc (want 0) after refusal test" >&2
  failures=$(( failures + 1 ))
else
  echo "certify_exit_codes: OK   exit 0 — serve completed by the honest worker"
fi

# --- exit 2: coverage refusal ----------------------------------------------
# One range, zero retry budget, and a worker that corrupts every result:
# the only range quarantines on the first strike and the dispatcher must
# refuse (exit 2) rather than guess.
sock2="unix:$work_dir/refuse.sock"
"$bin" serve --graph "$graph" --listen "$sock2" --shards 1 --max-retries 0 \
  --lease-ms 8000 >"$work_dir/refused.txt" 2>"$work_dir/refuse.log" &
serve_pid=$!
pids+=("$serve_pid")
sleep 0.3
"$bin" chaos-worker --graph "$graph" --connect "$sock2" --chaos corrupt-all \
  2>>"$work_dir/cmd.log" || true
serve_rc=0
wait "$serve_pid" || serve_rc=$?
if [ "$serve_rc" -ne 2 ]; then
  echo "certify_exit_codes: FAIL serve exited $serve_rc (want 2) on quarantine" >&2
  failures=$(( failures + 1 ))
elif [ -s "$work_dir/refused.txt" ]; then
  echo "certify_exit_codes: FAIL refusal printed a certificate (must withhold)" >&2
  failures=$(( failures + 1 ))
else
  echo "certify_exit_codes: OK   exit 2 — coverage refusal withheld the certificate"
fi

# --- exit 0 again: the session control clients against a live dispatcher ----
sock3="unix:$work_dir/mux.sock"
"$bin" serve --listen "$sock3" --accept-submissions 1 --lease-ms 8000 \
  --certs-dir "$work_dir/mux-certs" >"$work_dir/mux.txt" 2>"$work_dir/mux.log" &
serve_pid=$!
pids+=("$serve_pid")
sleep 0.3
expect_rc 0 "submit to a live dispatcher" \
  "$bin" submit --connect "$sock3" --graph "$graph"
expect_rc 0 "status of a live dispatcher" \
  "$bin" status --connect "$sock3"
"$bin" worker --graph "$graph" --connect "$sock3" 2>>"$work_dir/cmd.log" || true
serve_rc=0
wait "$serve_pid" || serve_rc=$?
if [ "$serve_rc" -ne 0 ]; then
  echo "certify_exit_codes: FAIL session serve exited $serve_rc (want 0)" >&2
  failures=$(( failures + 1 ))
else
  echo "certify_exit_codes: OK   exit 0 — submitted session served to completion"
fi

# --- exit 4: transport failure after bounded retries ------------------------
expect_rc 4 "worker connecting to a dead address" \
  "$bin" worker --graph "$graph" --connect "unix:$work_dir/nobody-home.sock" \
    --connect-retries 1 --connect-backoff-ms 10
expect_rc 4 "submit to a dead address" \
  "$bin" submit --graph "$graph" --connect "unix:$work_dir/nobody-home.sock" \
    --connect-retries 1 --connect-backoff-ms 10
expect_rc 4 "status of a dead address" \
  "$bin" status --connect "unix:$work_dir/nobody-home.sock" \
    --connect-retries 0 --connect-backoff-ms 10

# --- the taxonomy must be documented in --help ------------------------------
"$bin" --help >"$work_dir/help.txt" 2>&1 || true
for phrase in "exit codes:" "transport failure"; do
  if ! grep -qi "$phrase" "$work_dir/help.txt"; then
    echo "certify_exit_codes: FAIL --help does not document \"$phrase\"" >&2
    failures=$(( failures + 1 ))
  fi
done

if [ "$failures" -ne 0 ]; then
  echo "certify_exit_codes: $failures failure(s)" >&2
  exit 1
fi
echo "certify_exit_codes: OK"

#!/usr/bin/env bash
# Two-session fan-out smoke of the session-multiplexed dispatcher
# (DESIGN.md §15): ONE `bncg_certify serve` process queues two jobs over
# two different instances (the second with a different usage model), a
# pool of workers per instance drains both concurrently, and each
# session's certificate must diff byte-for-byte against single-process
# `certify` of that instance. A `submit`ted third job plus a `status`
# probe exercise the control-client path against the same dispatcher.
#
# Usage: scripts/certify_sessions.sh [options]
#   --bin PATH       bncg_certify binary (default: $BNCG_CERTIFY_BIN, else
#                    build it into ${BNCG_BUILD_DIR:-<repo>/build})
#   --n N            vertices per instance (default 96)
#   --m M            edges per instance (default 2n)
#   --seed S         first instance seed (default 21; the second uses S+1)
#   --workers N      connected workers per instance (default 3)
#   --shards K       ranges per session (default 6)
#   --lease-ms MS    lease deadline (default 20000 — sanitizer-proof)
#   --keep-dir       keep the scratch directory (prints its path)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

bin="${BNCG_CERTIFY_BIN:-}"
n=96
m=""
seed=21
workers=3
shards=6
lease_ms=20000
keep_dir=0
while [ "$#" -gt 0 ]; do
  case "$1" in
    --bin) bin="$2"; shift 2 ;;
    --n) n="$2"; shift 2 ;;
    --m) m="$2"; shift 2 ;;
    --seed) seed="$2"; shift 2 ;;
    --workers) workers="$2"; shift 2 ;;
    --shards) shards="$2"; shift 2 ;;
    --lease-ms) lease_ms="$2"; shift 2 ;;
    --keep-dir) keep_dir=1; shift ;;
    *) echo "certify_sessions: unknown option: $1" >&2; exit 2 ;;
  esac
done
m="${m:-$(( 2 * n ))}"

if [ -z "$bin" ]; then
  build_dir="${BNCG_BUILD_DIR:-${repo_root}/build}"
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target bncg_certify -j "$(nproc)" >/dev/null
  bin="${build_dir}/bncg_certify"
fi
[ -x "$bin" ] || { echo "certify_sessions: not executable: $bin" >&2; exit 2; }

work_dir="$(mktemp -d "${TMPDIR:-/tmp}/bncg_sessions.XXXXXX")"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -KILL "$pid" 2>/dev/null || true
    # A SIGKILL'd dispatcher cannot remove its spool sinks itself.
    rm -rf "${TMPDIR:-/tmp}/bncg_spool_${pid}"
  done
  for pid in "${pids[@]:-}"; do
    wait "$pid" 2>/dev/null || true
  done
  if [ "$keep_dir" -eq 1 ]; then
    echo "certify_sessions: scratch kept at $work_dir" >&2
  else
    rm -rf "$work_dir"
  fi
}
trap cleanup EXIT
trap 'trap - INT TERM; cleanup; exit 130' INT TERM

sock="unix:$work_dir/serve.sock"
graph_a="$work_dir/a.edges"
graph_b="$work_dir/b.edges"
"$bin" gen --n "$n" --m "$m" --seed "$seed" --out "$graph_a" 2>/dev/null
"$bin" gen --n "$n" --m "$m" --seed "$(( seed + 1 ))" --out "$graph_b" 2>/dev/null

# Single-process references: session 1 certifies A under sum, session 2
# certifies B under max — distinct run configs through one dispatcher.
"$bin" certify --graph "$graph_a" >"$work_dir/ref_a.txt" 2>/dev/null
"$bin" certify --graph "$graph_b" --model max >"$work_dir/ref_b.txt" 2>/dev/null
"$bin" certify --graph "$graph_a" --model max >"$work_dir/ref_a_max.txt" 2>/dev/null

timeout 240 "$bin" serve --listen "$sock" \
  --jobs "$graph_a" --jobs "$graph_b,model=max" --accept-submissions 1 \
  --shards "$shards" --lease-ms "$lease_ms" --backoff-ms 20 \
  --certs-dir "$work_dir/certs" \
  >"$work_dir/served.txt" 2>"$work_dir/serve.log" &
serve_pid=$!
pids+=("$serve_pid")
sleep 0.3

# The control-client path: submit a third job (A again, under max) to the
# live dispatcher, resubmit it to check idempotence, and probe status.
"$bin" submit --connect "$sock" --graph "$graph_a" --model max \
  >"$work_dir/submit.out" 2>>"$work_dir/client.log"
grep -q "session=3 already_queued=0" "$work_dir/submit.out" || {
  echo "certify_sessions: unexpected submit reply:" >&2
  cat "$work_dir/submit.out" >&2
  exit 1
}
"$bin" submit --connect "$sock" --graph "$graph_a" --model max \
  >"$work_dir/resubmit.out" 2>>"$work_dir/client.log"
grep -q "session=3 already_queued=1" "$work_dir/resubmit.out" || {
  echo "certify_sessions: resubmit was not idempotent:" >&2
  cat "$work_dir/resubmit.out" >&2
  exit 1
}
"$bin" status --connect "$sock" >"$work_dir/status.out" 2>>"$work_dir/client.log"
[ "$(wc -l <"$work_dir/status.out")" -eq 3 ] || {
  echo "certify_sessions: status did not list 3 sessions:" >&2
  cat "$work_dir/status.out" >&2
  exit 1
}

for (( i = 0; i < workers; i++ )); do
  timeout 240 "$bin" worker --graph "$graph_a" --connect "$sock" \
    2>>"$work_dir/workers_a.log" &
  pids+=($!)
  timeout 240 "$bin" worker --graph "$graph_b" --connect "$sock" \
    2>>"$work_dir/workers_b.log" &
  pids+=($!)
done

serve_rc=0
wait "$serve_pid" || serve_rc=$?
if [ "$serve_rc" -ne 0 ]; then
  echo "certify_sessions: serve exited $serve_rc (want 0)" >&2
  cat "$work_dir/serve.log" >&2 || true
  exit 1
fi

expect_parity() {  # $1 = reference, $2 = session cert, $3 = context
  if ! diff -u "$1" "$2"; then
    echo "certify_sessions: MISMATCH between served and single-process certificate ($3)" >&2
    exit 1
  fi
}
expect_parity "$work_dir/ref_a.txt" "$work_dir/certs/session_1.cert" "session 1 (A, sum)"
expect_parity "$work_dir/ref_b.txt" "$work_dir/certs/session_2.cert" "session 2 (B, max)"
expect_parity "$work_dir/ref_a_max.txt" "$work_dir/certs/session_3.cert" "session 3 (A, max)"

grep -q "sessions_completed=3 sessions_refused=0" "$work_dir/serve.log" || {
  echo "certify_sessions: missing session stats in serve log" >&2
  cat "$work_dir/serve.log" >&2
  exit 1
}
echo "certify_sessions: OK — 3 sessions certified by one dispatcher, all byte-identical"

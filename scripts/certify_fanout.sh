#!/usr/bin/env bash
# Cross-process certification fan-out harness (DESIGN.md §11).
#
# Generates a seeded random instance, splits its agents across N worker
# *processes* of tools/bncg_certify, merges the serialized shard results,
# and diffs the merged certificate against the single-process in-process
# certifier. Any byte of difference (verdict, witness, tie-breaks, move
# counts) fails the run — this is the end-to-end parity gate: tier-1 ctest
# entries pin 1/2/7 workers, CI's smoke step runs 4 workers at n=512.
#
# Usage: scripts/certify_fanout.sh [options]
#   --workers N        worker processes (default 4)
#   --n N              vertices of the generated instance (default 512)
#   --m M              edges (default 2n)
#   --seed S           instance seed (default 1)
#   --model sum|max|both   usage-cost model(s) to run (default both)
#   --format binary|json   shard wire format (default binary)
#   --bin PATH         bncg_certify binary (default: $BNCG_CERTIFY_BIN, else
#                      build it into ${BNCG_BUILD_DIR:-<repo>/build})
#   --keep-dir         keep the scratch directory (prints its path)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

workers=4
n=512
m=""
seed=1
models="both"
format="binary"
bin="${BNCG_CERTIFY_BIN:-}"
keep_dir=0

while [ "$#" -gt 0 ]; do
  case "$1" in
    --workers) workers="$2"; shift 2 ;;
    --n) n="$2"; shift 2 ;;
    --m) m="$2"; shift 2 ;;
    --seed) seed="$2"; shift 2 ;;
    --model) models="$2"; shift 2 ;;
    --format) format="$2"; shift 2 ;;
    --bin) bin="$2"; shift 2 ;;
    --keep-dir) keep_dir=1; shift ;;
    *) echo "certify_fanout: unknown option: $1" >&2; exit 2 ;;
  esac
done
case "$workers" in
  ''|*[!0-9]*|0) echo "certify_fanout: --workers must be a positive integer" >&2; exit 2 ;;
esac
case "$n" in
  ''|*[!0-9]*|0) echo "certify_fanout: --n must be a positive integer" >&2; exit 2 ;;
esac
[ -n "$m" ] || m=$(( 2 * n ))
case "$models" in
  sum|max) model_list="$models" ;;
  both) model_list="sum max" ;;
  *) echo "certify_fanout: bad --model: $models" >&2; exit 2 ;;
esac

if [ -z "$bin" ]; then
  build_dir="${BNCG_BUILD_DIR:-${repo_root}/build}"
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target bncg_certify -j "$(nproc)" >/dev/null
  bin="${build_dir}/bncg_certify"
fi
[ -x "$bin" ] || { echo "certify_fanout: not executable: $bin" >&2; exit 2; }

work_dir="$(mktemp -d "${TMPDIR:-/tmp}/bncg_fanout.XXXXXX")"
pids=()
cleanup() {
  # Never leave orphaned worker processes, whatever the exit path.
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  if [ "$keep_dir" -eq 1 ]; then
    echo "certify_fanout: scratch kept at $work_dir" >&2
  else
    rm -rf "$work_dir"
  fi
}
trap cleanup EXIT
trap 'trap - INT TERM; cleanup; exit 130' INT TERM

graph="$work_dir/instance.edges"
if ! "$bin" gen --n "$n" --m "$m" --seed "$seed" --out "$graph" 2>"$work_dir/gen.log"; then
  echo "certify_fanout: instance generation failed (n=$n m=$m seed=$seed)" >&2
  cat "$work_dir/gen.log" >&2 || true
  exit 1
fi

for model in $model_list; do
  deletions_flag=""
  [ "$model" = "max" ] && deletions_flag="--include-deletions"

  # Fan out: worker i certifies agents [i*n/W, (i+1)*n/W) concurrently.
  pids=()
  shard_files=()
  for (( i = 0; i < workers; i++ )); do
    lo=$(( i * n / workers ))
    hi=$(( (i + 1) * n / workers ))
    shard="$work_dir/${model}.shard${i}"
    shard_files+=("$shard")
    # shellcheck disable=SC2086
    "$bin" worker --graph "$graph" --range "${lo}:${hi}" \
      --shard-index "$i" --shard-count "$workers" \
      --model "$model" $deletions_flag --format "$format" \
      --out "$shard" 2>>"$work_dir/${model}.worker.log" &
    pids+=($!)
  done
  # Wait for EVERY worker before judging the batch: a single early failure
  # must not leave the other workers running as orphans, and every
  # nonzero exit must surface (not only the first one observed).
  failed=0
  for pid in "${pids[@]}"; do
    if ! wait "$pid"; then
      echo "certify_fanout: worker process $pid failed (model $model)" >&2
      failed=1
    fi
  done
  pids=()
  if [ "$failed" -ne 0 ]; then
    cat "$work_dir/${model}.worker.log" >&2 || true
    exit 1
  fi

  # Merge the shard files, then diff against the single-process verdict.
  # shellcheck disable=SC2086
  if ! "$bin" merge "${shard_files[@]}" \
      >"$work_dir/${model}.merged" 2>>"$work_dir/${model}.worker.log"; then
    echo "certify_fanout: merge refused the shard set (model $model)" >&2
    cat "$work_dir/${model}.worker.log" >&2 || true
    exit 1
  fi
  if ! "$bin" certify --graph "$graph" --model "$model" $deletions_flag \
      >"$work_dir/${model}.single" 2>>"$work_dir/${model}.worker.log"; then
    echo "certify_fanout: single-process certify failed (model $model)" >&2
    cat "$work_dir/${model}.worker.log" >&2 || true
    exit 1
  fi

  if ! diff -u "$work_dir/${model}.single" "$work_dir/${model}.merged"; then
    echo "certify_fanout: MISMATCH between fan-out merge and single-process certify" \
         "(model $model, $workers workers, n=$n m=$m seed=$seed)" >&2
    exit 1
  fi
  verdict="$(grep -o 'verdict=[A-Z]*' "$work_dir/${model}.merged")"
  echo "certify_fanout: model=$model workers=$workers n=$n m=$m format=$format" \
       "$verdict — merged == single-process"
done
echo "certify_fanout: OK"

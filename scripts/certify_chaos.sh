#!/usr/bin/env bash
# Fault-injection harness of the certification service (DESIGN.md §12).
#
# Drives real bncg_certify processes through three scripted disasters and
# asserts the one property the service guarantees: the certificate it
# emits — when it emits one — is byte-identical to single-process
# `certify`, no matter which workers crashed, hung, lied, or died.
#
# Scenarios (--scenario):
#   mixed        serve + a pool of healthy workers alongside seeded chaos
#                workers (crash mid-range / hang past the lease / one
#                bit-flipped result / double-sends); asserts serve exits 0
#                and the served certificate diffs clean against certify.
#   resume       serve with a journal and a deliberately slow worker,
#                SIGKILL the dispatcher once >= 2 ranges are journaled,
#                re-serve with --resume; asserts exit 0, certificate
#                parity, that the pre-kill record files were not rewritten
#                (checksums unchanged — resumed ranges are recomputed
#                zero times), and that the dispatcher logged resuming them.
#   worker-kill  SIGKILL a file-mode worker mid-run; asserts the crash-safe
#                tmp+rename write left NO final shard file behind and that
#                merge refuses the missing shard nonzero without printing
#                any verdict.
#   sessions     one dispatcher multiplexing two jobs over two instances
#                while crash/hang/corrupt/duplicate chaos workers interleave
#                with healthy ones on both; asserts both session
#                certificates diff clean against single-process certify.
#                A second pass pins a corrupt-all worker on session 2 with a
#                zero retry budget: session 2 must refuse (exit 2) while
#                session 1's certificate stays byte-identical — quarantine
#                never poisons a sibling.
#
# Usage: scripts/certify_chaos.sh --scenario mixed|resume|worker-kill|sessions [options]
#   --bin PATH       bncg_certify binary (default: $BNCG_CERTIFY_BIN, else
#                    build it into ${BNCG_BUILD_DIR:-<repo>/build})
#   --n N            vertices (scenario-specific default)
#   --m M            edges (default 2n; worker-kill defaults to 4n)
#   --seed S         instance seed (default 1)
#   --shards K       serve-side range count (default 6; resume: 8)
#   --healthy N      healthy connected workers in `mixed` (default 2)
#   --crash N        crashing chaos workers in `mixed` (default 1)
#   --hang N         hanging chaos workers in `mixed` (default 1)
#   --corrupt N      one-bit-flip chaos workers in `mixed` (default 1)
#   --duplicate N    double-send chaos workers in `mixed` (default 1)
#   --lease-ms MS    serve lease deadline (default 4000 — generous so slow
#                    sanitizer CI never quarantines a healthy worker)
#   --keep-dir       keep the scratch directory (prints its path)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

scenario=""
bin="${BNCG_CERTIFY_BIN:-}"
n=""
m=""
seed=1
shards=""
healthy=2
crash=1
hang=1
corrupt=1
duplicate=1
lease_ms=4000
keep_dir=0

while [ "$#" -gt 0 ]; do
  case "$1" in
    --scenario) scenario="$2"; shift 2 ;;
    --bin) bin="$2"; shift 2 ;;
    --n) n="$2"; shift 2 ;;
    --m) m="$2"; shift 2 ;;
    --seed) seed="$2"; shift 2 ;;
    --shards) shards="$2"; shift 2 ;;
    --healthy) healthy="$2"; shift 2 ;;
    --crash) crash="$2"; shift 2 ;;
    --hang) hang="$2"; shift 2 ;;
    --corrupt) corrupt="$2"; shift 2 ;;
    --duplicate) duplicate="$2"; shift 2 ;;
    --lease-ms) lease_ms="$2"; shift 2 ;;
    --keep-dir) keep_dir=1; shift ;;
    *) echo "certify_chaos: unknown option: $1" >&2; exit 2 ;;
  esac
done
case "$scenario" in
  mixed|resume|worker-kill|sessions) ;;
  *) echo "certify_chaos: --scenario must be mixed, resume, worker-kill, or sessions" >&2; exit 2 ;;
esac

if [ -z "$bin" ]; then
  build_dir="${BNCG_BUILD_DIR:-${repo_root}/build}"
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  cmake --build "$build_dir" --target bncg_certify -j "$(nproc)" >/dev/null
  bin="${build_dir}/bncg_certify"
fi
[ -x "$bin" ] || { echo "certify_chaos: not executable: $bin" >&2; exit 2; }

work_dir="$(mktemp -d "${TMPDIR:-/tmp}/bncg_chaos.XXXXXX")"
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill -KILL "$pid" 2>/dev/null || true
    # Session spool directories are removed by the dispatcher's own sink
    # destructors on a clean exit; a SIGKILL'd dispatcher (the resume
    # scenario's whole point, or a timeout) cannot, so the trap sweeps the
    # pid-keyed spool of every process this script started.
    rm -rf "${TMPDIR:-/tmp}/bncg_spool_${pid}"
  done
  for pid in "${pids[@]:-}"; do
    wait "$pid" 2>/dev/null || true  # reap, silencing job-kill notices
  done
  if [ "$keep_dir" -eq 1 ]; then
    echo "certify_chaos: scratch kept at $work_dir" >&2
  else
    rm -rf "$work_dir"
  fi
}
trap cleanup EXIT
trap 'trap - INT TERM; cleanup; exit 130' INT TERM

graph="$work_dir/instance.edges"
sock="unix:$work_dir/serve.sock"

gen_instance() {
  if ! "$bin" gen --n "$n" --m "$m" --seed "$seed" --out "$graph" 2>"$work_dir/gen.log"; then
    echo "certify_chaos: instance generation failed (n=$n m=$m seed=$seed)" >&2
    cat "$work_dir/gen.log" >&2 || true
    exit 1
  fi
}

reference_certificate() {
  if ! "$bin" certify --graph "$graph" >"$work_dir/reference.txt" 2>/dev/null; then
    echo "certify_chaos: single-process certify failed" >&2
    exit 1
  fi
}

expect_parity() {  # $1 = served certificate file, $2 = context
  if ! diff -u "$work_dir/reference.txt" "$1"; then
    echo "certify_chaos: MISMATCH between served and single-process certificate ($2)" >&2
    exit 1
  fi
}

launch_chaos_workers() {  # background chaos/healthy pool against $sock
  # Optional argument: the graph the pool loads (default: the scenario's
  # single instance) — the sessions scenario runs one pool per instance.
  local target="${1:-$graph}"
  local i
  for (( i = 0; i < crash; i++ )); do
    timeout 240 "$bin" chaos-worker --graph "$target" --connect "$sock" \
      --chaos crash --chaos-seed $(( seed + i )) 2>>"$work_dir/chaos.log" &
    pids+=($!)
  done
  for (( i = 0; i < hang; i++ )); do
    timeout 240 "$bin" chaos-worker --graph "$target" --connect "$sock" \
      --chaos hang --chaos-seed $(( seed + 100 + i )) 2>>"$work_dir/chaos.log" &
    pids+=($!)
  done
  for (( i = 0; i < corrupt; i++ )); do
    timeout 240 "$bin" chaos-worker --graph "$target" --connect "$sock" \
      --chaos corrupt --chaos-seed $(( seed + 200 + i )) 2>>"$work_dir/chaos.log" &
    pids+=($!)
  done
  for (( i = 0; i < duplicate; i++ )); do
    timeout 240 "$bin" chaos-worker --graph "$target" --connect "$sock" \
      --chaos duplicate --chaos-seed $(( seed + 300 + i )) 2>>"$work_dir/chaos.log" &
    pids+=($!)
  done
  for (( i = 0; i < healthy; i++ )); do
    timeout 240 "$bin" worker --graph "$target" --connect "$sock" \
      2>>"$work_dir/healthy.log" &
    pids+=($!)
  done
}

scenario_mixed() {
  n="${n:-96}"
  m="${m:-$(( 2 * n ))}"
  shards="${shards:-6}"
  gen_instance
  reference_certificate

  timeout 240 "$bin" serve --graph "$graph" --listen "$sock" --shards "$shards" \
    --lease-ms "$lease_ms" --backoff-ms 20 \
    >"$work_dir/served.txt" 2>"$work_dir/serve.log" &
  local serve_pid=$!
  pids+=("$serve_pid")
  sleep 0.3
  launch_chaos_workers

  local serve_rc=0
  wait "$serve_pid" || serve_rc=$?
  # Chaos workers exit however they exit (crash mode _Exits 12, dropped
  # connections exit 4); only the dispatcher's verdict is the contract.
  if [ "$serve_rc" -ne 0 ]; then
    echo "certify_chaos: serve exited $serve_rc (want 0) under mixed chaos" >&2
    cat "$work_dir/serve.log" >&2 || true
    exit 1
  fi
  expect_parity "$work_dir/served.txt" "mixed chaos"
  grep -E "serve: done complete=1" "$work_dir/serve.log" >/dev/null || {
    echo "certify_chaos: missing completion stats line in serve log" >&2
    exit 1
  }
  echo "certify_chaos: mixed OK — $(grep -oE 'redispatches=[0-9]+ expired=[0-9]+ disconnects=[0-9]+ corrupt=[0-9]+ duplicates=[0-9]+' "$work_dir/serve.log" | head -1)"
}

scenario_resume() {
  n="${n:-64}"
  m="${m:-$(( 2 * n ))}"
  shards="${shards:-8}"
  local journal="$work_dir/journal"
  gen_instance
  reference_certificate

  # Phase 1: a journaling dispatcher fed by one deliberately slow worker;
  # SIGKILL the dispatcher the moment two ranges hit the journal. No
  # `timeout` wrapper here — the kill must land on the dispatcher itself,
  # not a wrapper (the record-count spin below is the watchdog).
  "$bin" serve --graph "$graph" --listen "$sock" --shards "$shards" \
    --lease-ms 8000 --journal "$journal" \
    >"$work_dir/partial.txt" 2>"$work_dir/serve1.log" &
  local serve_pid=$!
  pids+=("$serve_pid")
  sleep 0.3
  timeout 240 "$bin" chaos-worker --graph "$graph" --connect "$sock" \
    --chaos slow --chaos-delay-ms 300 2>>"$work_dir/chaos.log" &
  pids+=($!)

  local spins=0
  while [ "$(find "$journal" -name 'range_*.shard' 2>/dev/null | wc -l)" -lt 2 ]; do
    sleep 0.05
    spins=$(( spins + 1 ))
    if [ "$spins" -gt 1200 ]; then
      echo "certify_chaos: journal never reached 2 records" >&2
      exit 1
    fi
  done
  kill -KILL "$serve_pid"
  wait "$serve_pid" 2>/dev/null || true

  local prekill_records
  prekill_records="$(find "$journal" -name 'range_*.shard' | sort)"
  local prekill_count
  prekill_count="$(echo "$prekill_records" | wc -l)"
  # shellcheck disable=SC2086
  cksum $prekill_records >"$work_dir/prekill.cksum"
  echo "certify_chaos: dispatcher killed with $prekill_count journaled range(s)"

  # Phase 2: resume from the journal with an honest worker; the killed
  # run's records must be reused verbatim, never recomputed or rewritten.
  timeout 240 "$bin" serve --graph "$graph" --listen "$sock" --shards "$shards" \
    --lease-ms "$lease_ms" --journal "$journal" --resume \
    >"$work_dir/resumed.txt" 2>"$work_dir/serve2.log" &
  serve_pid=$!
  pids+=("$serve_pid")
  sleep 0.3
  timeout 240 "$bin" worker --graph "$graph" --connect "$sock" \
    2>>"$work_dir/healthy.log" &
  pids+=($!)

  local serve_rc=0
  wait "$serve_pid" || serve_rc=$?
  if [ "$serve_rc" -ne 0 ]; then
    echo "certify_chaos: resumed serve exited $serve_rc (want 0)" >&2
    cat "$work_dir/serve2.log" >&2 || true
    exit 1
  fi
  expect_parity "$work_dir/resumed.txt" "journal resume"
  grep -E "serve: journal resumed=${prekill_count}/${shards}" "$work_dir/serve2.log" >/dev/null || {
    echo "certify_chaos: dispatcher did not resume the $prekill_count journaled range(s)" >&2
    cat "$work_dir/serve2.log" >&2 || true
    exit 1
  }
  # shellcheck disable=SC2086
  cksum $prekill_records >"$work_dir/postrun.cksum"
  if ! diff "$work_dir/prekill.cksum" "$work_dir/postrun.cksum"; then
    echo "certify_chaos: resume rewrote pre-kill journal records (must reuse, not recompute)" >&2
    exit 1
  fi
  echo "certify_chaos: resume OK — $prekill_count range(s) reused verbatim, certificate identical"
}

scenario_worker_kill() {
  n="${n:-1024}"
  m="${m:-$(( 4 * n ))}"
  gen_instance

  # No `timeout` wrapper: the SIGKILL below must hit the worker process
  # itself, not a wrapper that would orphan it mid-run.
  local shard="$work_dir/victim.shard"
  "$bin" worker --graph "$graph" --range "0:$n" \
    --shard-index 0 --shard-count 1 --out "$shard" 2>"$work_dir/victim.log" &
  local worker_pid=$!
  pids+=("$worker_pid")
  sleep 0.2
  if ! kill -0 "$worker_pid" 2>/dev/null; then
    echo "certify_chaos: worker finished before the kill — raise --n" >&2
    exit 1
  fi
  kill -KILL "$worker_pid"
  wait "$worker_pid" 2>/dev/null || true

  # The crash-safe write (tmp + rename) guarantees the final path appears
  # only complete: a killed worker must leave nothing at it.
  if [ -e "$shard" ]; then
    echo "certify_chaos: killed worker left a shard file at $shard" >&2
    exit 1
  fi

  local merge_rc=0
  "$bin" merge "$shard" >"$work_dir/merge.out" 2>"$work_dir/merge.log" || merge_rc=$?
  if [ "$merge_rc" -eq 0 ]; then
    echo "certify_chaos: merge accepted a missing shard (must refuse)" >&2
    exit 1
  fi
  if grep -q "verdict=" "$work_dir/merge.out"; then
    echo "certify_chaos: merge printed a verdict despite the missing shard" >&2
    exit 1
  fi
  echo "certify_chaos: worker-kill OK — no partial shard file, merge refused (exit $merge_rc)"
}

scenario_sessions() {
  n="${n:-96}"
  m="${m:-$(( 2 * n ))}"
  shards="${shards:-6}"
  local graph_a="$work_dir/a.edges"
  local graph_b="$work_dir/b.edges"
  "$bin" gen --n "$n" --m "$m" --seed "$seed" --out "$graph_a" 2>/dev/null
  "$bin" gen --n "$n" --m "$m" --seed "$(( seed + 1 ))" --out "$graph_b" 2>/dev/null
  "$bin" certify --graph "$graph_a" >"$work_dir/ref_a.txt" 2>/dev/null
  "$bin" certify --graph "$graph_b" --model max >"$work_dir/ref_b.txt" 2>/dev/null

  # Pass 1: one dispatcher, two sessions (different instances AND run
  # configs), a full chaos pool interleaved on EACH — both certificates
  # must come out byte-identical to single-process certify.
  timeout 240 "$bin" serve --listen "$sock" \
    --jobs "$graph_a" --jobs "$graph_b,model=max" --shards "$shards" \
    --lease-ms "$lease_ms" --backoff-ms 20 --certs-dir "$work_dir/certs1" \
    >"$work_dir/served1.txt" 2>"$work_dir/serve1.log" &
  local serve_pid=$!
  pids+=("$serve_pid")
  sleep 0.3
  launch_chaos_workers "$graph_a"
  launch_chaos_workers "$graph_b"

  local serve_rc=0
  wait "$serve_pid" || serve_rc=$?
  if [ "$serve_rc" -ne 0 ]; then
    echo "certify_chaos: sessions serve exited $serve_rc (want 0) under chaos" >&2
    cat "$work_dir/serve1.log" >&2 || true
    exit 1
  fi
  expect_parity_file() {  # $1 = reference, $2 = served cert, $3 = context
    if ! diff -u "$1" "$2"; then
      echo "certify_chaos: MISMATCH between served and single-process certificate ($3)" >&2
      exit 1
    fi
  }
  expect_parity_file "$work_dir/ref_a.txt" "$work_dir/certs1/session_1.cert" "session 1, chaos"
  expect_parity_file "$work_dir/ref_b.txt" "$work_dir/certs1/session_2.cert" "session 2, chaos"
  grep -q "sessions_completed=2 sessions_refused=0" "$work_dir/serve1.log" || {
    echo "certify_chaos: missing two-session completion stats in serve log" >&2
    cat "$work_dir/serve1.log" >&2 || true
    exit 1
  }
  echo "certify_chaos: sessions pass 1 OK — both certificates byte-identical under chaos"

  # Pass 2: quarantine isolation. Session 2 gets ONLY a corrupt-all worker
  # and a zero retry budget (its single range quarantines on the first
  # strike); session 1 gets honest workers. The dispatcher must refuse
  # session 2 (exit 2, no certificate file) while session 1's certificate
  # stays byte-identical — a poisoned sibling never leaks.
  local sock2="unix:$work_dir/isolate.sock"
  timeout 240 "$bin" serve --listen "$sock2" \
    --jobs "$graph_a" --jobs "$graph_b,model=max,shards=1" --shards "$shards" \
    --max-retries 0 --lease-ms "$lease_ms" --backoff-ms 20 \
    --certs-dir "$work_dir/certs2" \
    >"$work_dir/served2.txt" 2>"$work_dir/serve2.log" &
  serve_pid=$!
  pids+=("$serve_pid")
  sleep 0.3
  local i
  for (( i = 0; i < healthy; i++ )); do
    timeout 240 "$bin" worker --graph "$graph_a" --connect "$sock2" \
      2>>"$work_dir/healthy.log" &
    pids+=($!)
  done
  timeout 240 "$bin" chaos-worker --graph "$graph_b" --connect "$sock2" \
    --chaos corrupt-all --chaos-seed "$seed" 2>>"$work_dir/chaos.log" &
  pids+=($!)

  serve_rc=0
  wait "$serve_pid" || serve_rc=$?
  if [ "$serve_rc" -ne 2 ]; then
    echo "certify_chaos: isolation serve exited $serve_rc (want 2: one session refused)" >&2
    cat "$work_dir/serve2.log" >&2 || true
    exit 1
  fi
  if [ -e "$work_dir/certs2/session_2.cert" ]; then
    echo "certify_chaos: refused session 2 still wrote a certificate (must withhold)" >&2
    exit 1
  fi
  expect_parity_file "$work_dir/ref_a.txt" "$work_dir/certs2/session_1.cert" \
    "session 1, sibling quarantined"
  echo "certify_chaos: sessions pass 2 OK — quarantine stayed inside its own session"
}

case "$scenario" in
  mixed) scenario_mixed ;;
  resume) scenario_resume ;;
  worker-kill) scenario_worker_kill ;;
  sessions) scenario_sessions ;;
esac
echo "certify_chaos: OK"

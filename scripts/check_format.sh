#!/usr/bin/env bash
# Checks (or, with --fix, applies) clang-format over the C++ tree so
# subsequent PRs keep the diff noise-free. Exits 0 with a notice when
# clang-format is not installed, so CI-less environments are not blocked.
#
# Usage: scripts/check_format.sh [--fix]
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping (install it to enable)."
  exit 0
fi

mapfile -t files < <(find src tests bench examples tools -name '*.cpp' -o -name '*.hpp' | sort)

if [[ "${1:-}" == "--fix" ]]; then
  clang-format -i "${files[@]}"
  echo "check_format: formatted ${#files[@]} files."
  exit 0
fi

status=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    status=1
  fi
done
if [[ $status -eq 0 ]]; then
  echo "check_format: ${#files[@]} files clean."
fi
exit $status

// Cross-process certification CLI — the worker/merge pipeline over the
// sharded certifier (DESIGN.md §11) and the fault-tolerant certification
// service (DESIGN.md §12).
//
// Modes:
//   gen          — write a seeded random connected G(n, m) instance as an
//                  edge list, so fan-out runs are reproducible from a seed
//                  alone.
//   worker       — file mode: certify agents [lo, hi) of a graph file and
//                  write one serialized ShardResult (binary or JSON wire
//                  format, crash-safe tmp+rename). With --connect, dial a
//                  dispatcher instead: handshake with the instance
//                  fingerprint, receive leases, stream results back.
//   chaos-worker — a connected worker with seeded fault injection (crash
//                  mid-range, hang past the lease, bit-flipped frames,
//                  double-sends, slow) for the fault-injection harness.
//   serve        — long-lived dispatcher: leases agent ranges to connected
//                  workers with deadlines, re-dispatches stragglers,
//                  quarantines ranges that exhaust their retry budget
//                  (refusing rather than guessing), journals completed
//                  ranges crash-safely, and folds the final certificate
//                  through the same merge_shard_results as everything
//                  else. --resume continues a killed run from the journal.
//                  With repeated --jobs specs (and/or --accept-submissions)
//                  one dispatcher multiplexes several certification
//                  sessions concurrently, each with its own journal
//                  directory under --journal and its own certificate block.
//   submit       — queue one more job on a running `serve
//                  --accept-submissions` dispatcher (idempotent: an
//                  identical job returns the existing session id).
//   status       — print a running dispatcher's session table, one line
//                  per session.
//   merge        — fold shard files back into the full certificate.
//                  Refuses mismatched instances/run parameters
//                  (fingerprint guard) and incomplete agent coverage; the
//                  fold order is shard-index order, so the printed
//                  certificate is bit-identical to the single-process
//                  certifiers.
//   certify      — single-process reference: run the in-process sharded
//                  certifier and print the identical certificate block,
//                  which is what scripts/certify_fanout.sh and
//                  scripts/certify_chaos.sh diff a merged/served run
//                  against.
//
// The certificate block (stdout) is deliberately byte-stable across
// serve/merge/certify so `diff` is the parity check; telemetry (timings,
// widths, shard counts, dispatcher stats) goes to stderr.
//
// Exit codes (tested by scripts/certify_exit_codes.sh):
//   0  certificate emitted (either verdict)
//   1  usage or environment error (bad flags, unreadable files)
//   2  coverage refusal: serve quarantined ranges and withheld the verdict
//   3  wire/merge/handshake guard refusal (corrupt or mismatched data)
//   4  transport failure after bounded retries
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/certify_sharded.hpp"
#include "core/certify_wire.hpp"
#include "core/dist_provider.hpp"
#include "core/swap.hpp"
#include "core/swap_engine.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/io.hpp"
#include "svc/dispatcher.hpp"
#include "svc/net.hpp"
#include "svc/worker.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using namespace bncg;

[[noreturn]] void usage(const std::string& detail = "", int exit_code = 1) {
  if (!detail.empty()) std::cerr << "bncg_certify: " << detail << "\n";
  (exit_code == 0 ? std::cout : std::cerr)
      << "usage:\n"
         "  bncg_certify gen --n N [--m M] [--seed S] --out FILE\n"
         "  bncg_certify gen --family torus --k K [--perturb] --out FILE\n"
         "  bncg_certify worker --graph FILE --range LO:HI --shard-index I --shard-count K\n"
         "               --out FILE [--model sum|max] [--include-deletions]\n"
         "               [--stop-on-violation] [--width auto|u8|u16] [--mem-budget B]\n"
         "               [--format binary|json]\n"
         "  bncg_certify worker --graph FILE --connect ADDR [--width auto|u8|u16]\n"
         "               [--mem-budget B] [--connect-retries N] [--connect-backoff-ms N]\n"
         "  bncg_certify chaos-worker --graph FILE --connect ADDR\n"
         "               --chaos crash|hang|corrupt|corrupt-all|duplicate|slow\n"
         "               [--chaos-seed S] [--chaos-delay-ms N] [--width auto|u8|u16]\n"
         "               [--connect-retries N] [--connect-backoff-ms N]\n"
         "  bncg_certify serve --graph FILE --listen ADDR [--shards K] [--model sum|max]\n"
         "               [--include-deletions] [--stop-on-violation] [--lease-ms N]\n"
         "               [--max-retries N] [--backoff-ms N] [--journal DIR] [--resume]\n"
         "  bncg_certify serve --listen ADDR --jobs SPEC [--jobs SPEC ...]\n"
         "               [--accept-submissions N] [--certs-dir DIR] [--shards K]\n"
         "               [--model sum|max] [--include-deletions] [--stop-on-violation]\n"
         "               [--lease-ms N] [--max-retries N] [--backoff-ms N]\n"
         "               [--journal DIR] [--resume]\n"
         "               SPEC = FILE[,model=sum|max][,shards=K][,include-deletions]\n"
         "                      [,stop-on-violation]\n"
         "  bncg_certify submit --connect ADDR --graph FILE [--model sum|max]\n"
         "               [--include-deletions] [--stop-on-violation] [--shards K]\n"
         "               [--connect-retries N] [--connect-backoff-ms N]\n"
         "  bncg_certify status --connect ADDR [--connect-retries N]\n"
         "               [--connect-backoff-ms N]\n"
         "  bncg_certify merge SHARD_FILE...\n"
         "  bncg_certify certify --graph FILE [--model sum|max] [--include-deletions]\n"
         "               [--stop-on-violation] [--width auto|u8|u16] [--mem-budget B]\n"
         "               [--shards N]\n"
         "addresses: unix:/path/to.sock or tcp:HOST:PORT (IPv4 literal)\n"
         "--mem-budget B caps distance storage per engine lane (bytes, with\n"
         "  optional K/M/G binary suffix); scans whose dense rows do not fit\n"
         "  run against the blocked row cache. BNCG_MEM_BUDGET sets the same\n"
         "  cap process-wide when the flag is absent.\n"
         "exit codes: 0 certificate emitted (either verdict); 1 usage or\n"
         "  environment error; 2 coverage refusal (serve quarantined ranges and\n"
         "  withheld the verdict); 3 wire/merge/handshake guard refusal;\n"
         "  4 transport failure after bounded retries\n";
  std::exit(exit_code);
}

/// Tiny argv reader: flags are matched exactly, values must follow.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) argv_.emplace_back(argv[i]);
  }

  [[nodiscard]] bool flag(const std::string& name) {
    for (std::size_t i = 0; i < argv_.size(); ++i) {
      if (argv_[i] == name) {
        consumed_[i] = true;
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::optional<std::string> value(const std::string& name) {
    for (std::size_t i = 0; i < argv_.size(); ++i) {
      if (argv_[i] == name) {
        if (i + 1 >= argv_.size()) usage("missing value for " + name);
        consumed_[i] = consumed_[i + 1] = true;
        return argv_[i + 1];
      }
    }
    return std::nullopt;
  }

  /// Every occurrence of a repeatable value flag, in argv order.
  [[nodiscard]] std::vector<std::string> values(const std::string& name) {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < argv_.size(); ++i) {
      if (argv_[i] == name) {
        if (i + 1 >= argv_.size()) usage("missing value for " + name);
        consumed_[i] = consumed_[i + 1] = true;
        out.push_back(argv_[i + 1]);
      }
    }
    return out;
  }

  [[nodiscard]] std::string required(const std::string& name) {
    const std::optional<std::string> v = value(name);
    if (!v) usage("missing required " + name);
    return *v;
  }

  /// Everything not consumed by flag()/value() — the positional operands.
  [[nodiscard]] std::vector<std::string> positionals() const {
    std::vector<std::string> out;
    for (std::size_t i = 0; i < argv_.size(); ++i) {
      if (consumed_.count(i) == 0) out.push_back(argv_[i]);
    }
    return out;
  }

 private:
  std::vector<std::string> argv_;
  std::map<std::size_t, bool> consumed_;
};

[[nodiscard]] std::uint64_t parse_u64(const std::string& text, const std::string& what) {
  // Digits only: stoull would silently wrap "-1" to a huge unsigned value
  // and skip leading whitespace — both are usage errors here.
  if (text.empty() || text.find_first_not_of("0123456789") != std::string::npos) {
    usage("bad " + what + ": " + text);
  }
  try {
    return std::stoull(text, nullptr, 10);
  } catch (const std::exception&) {
    usage("bad " + what + ": " + text);
  }
}

/// 32-bit operands (vertex counts, ranges, shard coordinates) reject
/// out-of-range input as a usage error instead of silently truncating.
[[nodiscard]] std::uint32_t parse_u32(const std::string& text, const std::string& what) {
  const std::uint64_t v = parse_u64(text, what);
  if (v > 0xFFFFFFFFull) usage(what + " out of range: " + text);
  return static_cast<std::uint32_t>(v);
}

[[nodiscard]] UsageCost parse_model(const std::string& text) {
  if (text == "sum") return UsageCost::Sum;
  if (text == "max") return UsageCost::Max;
  usage("bad --model: " + text);
}

[[nodiscard]] WidthPolicy parse_width(const std::string& text) {
  if (text == "auto") return WidthPolicy::Auto;
  if (text == "u8") return WidthPolicy::ForceU8;
  if (text == "u16") return WidthPolicy::ForceU16;
  usage("bad --width: " + text);
}

/// Consumes an optional --mem-budget flag into a ResourceConfig byte cap.
/// Parse failures are usage errors (exit 1), mirroring the numeric flags.
[[nodiscard]] std::uint64_t parse_mem_budget(Args& args) {
  const std::optional<std::string> text = args.value("--mem-budget");
  if (!text) return 0;
  try {
    return parse_mem_bytes(*text);
  } catch (const std::invalid_argument& e) {
    usage(std::string("bad --mem-budget: ") + e.what());
  }
}

[[nodiscard]] svc::ChaosConfig::Mode parse_chaos(const std::string& text) {
  if (text == "crash") return svc::ChaosConfig::Mode::Crash;
  if (text == "hang") return svc::ChaosConfig::Mode::Hang;
  if (text == "corrupt") return svc::ChaosConfig::Mode::Corrupt;
  if (text == "corrupt-all") return svc::ChaosConfig::Mode::CorruptAll;
  if (text == "duplicate") return svc::ChaosConfig::Mode::Duplicate;
  if (text == "slow") return svc::ChaosConfig::Mode::Slow;
  usage("bad --chaos: " + text);
}

/// Rejects any argv entry no mode handler asked about — a misspelled flag
/// must be a usage error, never silently ignored (this tool is a parity
/// oracle; a dropped --include-deletions would certify the wrong clause).
void reject_unknown(const Args& args) {
  const std::vector<std::string> leftover = args.positionals();
  if (!leftover.empty()) usage("unknown argument: " + leftover.front());
}

[[nodiscard]] Graph load_graph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  try {
    return read_edge_list(in);
  } catch (const std::invalid_argument& e) {
    // Re-typed so a malformed *graph* file is reported as an environment
    // failure (exit 1), keeping exit 3 scoped to wire/merge refusals.
    throw std::runtime_error("bad graph file " + path + ": " + e.what());
  }
}

/// The byte-stable certificate block `serve`, `merge`, and `certify` all
/// print; scripts/certify_fanout.sh and scripts/certify_chaos.sh diff
/// these verbatim.
void write_certificate(std::ostream& out, std::uint64_t fingerprint, Vertex n, std::uint64_t m,
                       UsageCost model, bool include_deletions, bool stop_on_violation,
                       const ShardedCertificate& cert) {
  std::ostringstream fp;
  fp << std::hex << fingerprint;
  out << "instance n=" << n << " m=" << m << " fingerprint=0x" << fp.str() << "\n"
      << "run model=" << (model == UsageCost::Sum ? "sum" : "max")
      << " include_deletions=" << (include_deletions ? 1 : 0)
      << " stop_on_violation=" << (stop_on_violation ? 1 : 0) << "\n"
      << "verdict=" << (cert.certificate.is_equilibrium ? "EQUILIBRIUM" : "VIOLATED")
      << " agents_scanned=" << cert.agents_scanned
      << " moves_checked=" << cert.certificate.moves_checked << "\n";
  if (cert.certificate.witness) {
    const Deviation& w = *cert.certificate.witness;
    out << "witness agent=" << w.swap.v << " remove=" << w.swap.remove_w
        << " add=" << w.swap.add_w << " cost_before=" << w.cost_before
        << " cost_after=" << w.cost_after << " kind="
        << (w.kind == Deviation::Kind::ImprovingSwap ? "improving-swap"
                                                     : "non-critical-delete")
        << "\n";
  } else {
    out << "witness none\n";
  }
}

void print_certificate(std::uint64_t fingerprint, Vertex n, std::uint64_t m, UsageCost model,
                       bool include_deletions, bool stop_on_violation,
                       const ShardedCertificate& cert) {
  write_certificate(std::cout, fingerprint, n, m, model, include_deletions, stop_on_violation,
                    cert);
}

int run_gen(Args& args) {
  const std::string family = args.value("--family").value_or("gnm");
  Graph g{0};
  if (family == "torus") {
    // The paper's Figure 4 rotated torus (gen/paper.hpp): n = 2k², degree 4,
    // a max-model swap equilibrium of eccentricity k at every vertex — the
    // budget smoke's large structured instance (scripts/certify_budget.sh).
    const Vertex k = parse_u32(args.required("--k"), "--k");
    if (k < 2) usage("--k must be >= 2");
    const DiagonalTorus torus = rotated_torus(k);
    g = torus.graph();
    if (args.flag("--perturb")) {
      // Break the equilibrium at a known site: rewire agent 0's first torus
      // edge to the antipode (k, k). Certifying the perturbed instance with
      // --stop-on-violation finds a witness near agent 0 instead of running
      // the full n-agent sweep — the budget smoke's bounded REFUTED leg.
      const Vertex w = g.neighbors(0).front();
      const Vertex y = torus.id({k, k});
      apply_swap(g, EdgeSwap{0, w, y});
    }
  } else if (family == "gnm") {
    const Vertex n = parse_u32(args.required("--n"), "--n");
    const std::uint64_t m_default = 2ull * n;
    const std::uint64_t m =
        args.value("--m") ? parse_u64(*args.value("--m"), "--m") : m_default;
    const std::uint64_t seed =
        args.value("--seed") ? parse_u64(*args.value("--seed"), "--seed") : 1;
    Xoshiro256ss rng(seed);
    g = random_connected_gnm(n, static_cast<std::size_t>(m), rng);
  } else {
    usage("bad --family: " + family);
  }
  const std::string out_path = args.required("--out");
  reject_unknown(args);

  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot open for writing: " + out_path);
  write_edge_list(out, g);
  out.flush();
  if (!out) throw std::runtime_error("write failed: " + out_path);
  std::ostringstream fp;
  fp << std::hex << graph_fingerprint(g);
  std::cerr << "gen: wrote n=" << g.num_vertices() << " m=" << g.num_edges()
            << " fingerprint=0x" << fp.str() << " to " << out_path << "\n";
  return 0;
}

/// Shared by `worker --connect` and `chaos-worker`.
int run_connected(Args& args, svc::ChaosConfig chaos) {
  svc::ConnectConfig config;
  config.address = args.required("--connect");
  const std::string graph_path = args.required("--graph");
  config.width = parse_width(args.value("--width").value_or("auto"));
  config.resources.mem_budget = parse_mem_budget(args);
  if (args.value("--connect-retries")) {
    config.connect_retries = parse_u32(*args.value("--connect-retries"), "--connect-retries");
  }
  if (args.value("--connect-backoff-ms")) {
    config.connect_backoff_ms =
        parse_u64(*args.value("--connect-backoff-ms"), "--connect-backoff-ms");
  }
  config.chaos = chaos;
  reject_unknown(args);

  const Graph g = load_graph(graph_path);
  Timer timer;
  const svc::WorkerReport report = svc::run_connect_worker(g, config, &std::cerr);
  if (report.refused) {
    // Same taxonomy slot as a wire-guard rejection: the dispatcher judged
    // this worker's instance/protocol wrong.
    throw std::invalid_argument("dispatcher refused handshake: " + report.refuse_reason);
  }
  std::cerr << "worker: connected session done — leases=" << report.leases_completed
            << " agents=" << report.agents_scanned << " " << timer.millis() << " ms\n";
  return 0;
}

int run_worker(Args& args) {
  if (args.value("--connect")) return run_connected(args, svc::ChaosConfig{});

  const std::string graph_path = args.required("--graph");
  const std::string range_text = args.required("--range");
  const std::size_t colon = range_text.find(':');
  if (colon == std::string::npos) usage("--range must be LO:HI");
  AgentRange range;
  range.lo = parse_u32(range_text.substr(0, colon), "--range lo");
  range.hi = parse_u32(range_text.substr(colon + 1), "--range hi");
  range.shard_index = parse_u32(args.required("--shard-index"), "--shard-index");
  range.shard_count = parse_u32(args.required("--shard-count"), "--shard-count");
  const std::string out_path = args.required("--out");
  const UsageCost model = parse_model(args.value("--model").value_or("sum"));
  const bool include_deletions = args.flag("--include-deletions");
  const bool stop_on_violation = args.flag("--stop-on-violation");
  ResourceConfig resources;
  resources.width = parse_width(args.value("--width").value_or("auto"));
  resources.mem_budget = parse_mem_budget(args);
  const std::string format_text = args.value("--format").value_or("binary");
  ShardWireFormat format;
  if (format_text == "binary") {
    format = ShardWireFormat::Binary;
  } else if (format_text == "json") {
    format = ShardWireFormat::Json;
  } else {
    usage("bad --format: " + format_text);
  }
  reject_unknown(args);

  const Graph g = load_graph(graph_path);
  // A range that does not fit the loaded instance is a usage error (exit
  // 1), not a guard refusal.
  if (range.lo > range.hi || range.hi > g.num_vertices()) {
    usage("--range " + range_text + " does not fit the instance (n=" +
          std::to_string(g.num_vertices()) + ")");
  }
  if (range.shard_index >= range.shard_count) usage("--shard-index must be < --shard-count");
  Timer timer;
  const SwapEngine engine(g, resources);
  const ShardResult shard =
      certify_agent_range(engine, range, model, include_deletions, stop_on_violation);
  write_shard_file(out_path, shard, format);
  std::cerr << "worker: shard " << shard.shard_index << "/" << shard.shard_count << " agents ["
            << shard.agent_lo << ", " << shard.agent_hi << ") scanned=" << shard.scanned
            << " moves=" << shard.moves << " width=" << dist_width_name(shard.width)
            << " fallbacks=" << shard.width_fallbacks << " "
            << (shard.best ? "violation" : "clean") << " " << timer.millis() << " ms -> "
            << out_path << "\n";
  return 0;
}

int run_chaos_worker(Args& args) {
  svc::ChaosConfig chaos;
  chaos.mode = parse_chaos(args.required("--chaos"));
  if (args.value("--chaos-seed")) {
    chaos.seed = parse_u64(*args.value("--chaos-seed"), "--chaos-seed");
  }
  if (args.value("--chaos-delay-ms")) {
    chaos.delay_ms = parse_u64(*args.value("--chaos-delay-ms"), "--chaos-delay-ms");
  }
  return run_connected(args, chaos);
}

/// One `--jobs` spec: FILE[,model=sum|max][,shards=K][,include-deletions]
/// [,stop-on-violation]. Omitted keys inherit the serve-level defaults.
[[nodiscard]] svc::JobSpec parse_job_spec(const std::string& text, const svc::JobSpec& defaults) {
  svc::JobSpec job = defaults;
  std::size_t comma = text.find(',');
  const std::string path = text.substr(0, comma);
  if (path.empty()) usage("bad --jobs spec (empty graph file): " + text);
  while (comma != std::string::npos) {
    const std::size_t next = text.find(',', comma + 1);
    const std::string key = text.substr(comma + 1, next == std::string::npos
                                                       ? std::string::npos
                                                       : next - comma - 1);
    if (key.rfind("model=", 0) == 0) {
      job.model = parse_model(key.substr(6));
    } else if (key.rfind("shards=", 0) == 0) {
      job.shards = static_cast<std::size_t>(parse_u64(key.substr(7), "--jobs shards"));
    } else if (key == "include-deletions") {
      job.include_deletions = true;
    } else if (key == "stop-on-violation") {
      job.stop_on_violation = true;
    } else {
      usage("bad --jobs spec key \"" + key + "\" in: " + text);
    }
    comma = next;
  }
  const Graph g = load_graph(path);
  job.fingerprint = graph_fingerprint(g);
  job.n = g.num_vertices();
  job.m = g.num_edges();
  return job;
}

int run_serve_jobs(Args& args, const std::vector<std::string>& specs) {
  svc::JobSpec defaults;
  defaults.model = parse_model(args.value("--model").value_or("sum"));
  defaults.include_deletions = args.flag("--include-deletions");
  defaults.stop_on_violation = args.flag("--stop-on-violation");
  if (args.value("--shards")) {
    defaults.shards = static_cast<std::size_t>(parse_u64(*args.value("--shards"), "--shards"));
  }

  svc::MultiServeConfig config;
  config.address = args.required("--listen");
  if (args.value("--lease-ms")) {
    config.lease_ms = parse_u64(*args.value("--lease-ms"), "--lease-ms");
  }
  if (args.value("--max-retries")) {
    config.max_retries = parse_u32(*args.value("--max-retries"), "--max-retries");
  }
  if (args.value("--backoff-ms")) {
    config.backoff_ms = parse_u64(*args.value("--backoff-ms"), "--backoff-ms");
  }
  if (config.lease_ms == 0) usage("--lease-ms must be >= 1");
  if (config.backoff_ms == 0) usage("--backoff-ms must be >= 1");
  if (args.value("--journal")) config.journal_root = *args.value("--journal");
  config.resume = args.flag("--resume");
  if (args.value("--accept-submissions")) {
    config.accept_submissions = static_cast<std::size_t>(
        parse_u64(*args.value("--accept-submissions"), "--accept-submissions"));
  }
  const std::string certs_dir = args.value("--certs-dir").value_or("");
  reject_unknown(args);
  if (specs.empty() && config.accept_submissions == 0) {
    usage("serve --jobs mode needs at least one --jobs spec or --accept-submissions");
  }

  std::vector<svc::JobSpec> jobs;
  jobs.reserve(specs.size());
  for (const std::string& spec : specs) jobs.push_back(parse_job_spec(spec, defaults));

  if (!certs_dir.empty()) std::filesystem::create_directories(certs_dir);
  Timer timer;
  const svc::MultiServeOutcome outcome = svc::serve_jobs(jobs, config, &std::cerr);
  std::size_t refused = 0;
  for (const svc::SessionOutcome& s : outcome.sessions) {
    if (!s.complete) {
      ++refused;
      std::cerr << "bncg_certify: serve refused session " << s.session_id << ": "
                << s.quarantined.size() << " range(s) quarantined, " << s.agents_uncovered
                << " agents uncovered — certificate withheld"
                << (config.journal_root.empty()
                        ? ""
                        : "; completed ranges are journaled, rerun with --resume")
                << "\n";
      continue;
    }
    const svc::JournalHeader& h = s.header;
    // stdout interleaves every session's block behind a session marker;
    // --certs-dir additionally writes each block alone to session_<id>.cert
    // so scripts can diff it byte-for-byte against single-process certify.
    std::cout << "== session " << s.session_id << " ==\n";
    print_certificate(h.fingerprint, h.n, h.m, h.model, h.include_deletions,
                      h.stop_on_violation, *s.certificate);
    if (!certs_dir.empty()) {
      const std::string path = certs_dir + "/session_" + std::to_string(s.session_id) + ".cert";
      std::ofstream out(path);
      if (!out) throw std::runtime_error("cannot open for writing: " + path);
      write_certificate(out, h.fingerprint, h.n, h.m, h.model, h.include_deletions,
                        h.stop_on_violation, *s.certificate);
      out.flush();
      if (!out) throw std::runtime_error("write failed: " + path);
    }
  }
  std::cerr << "serve: " << (outcome.sessions.size() - refused) << "/" << outcome.sessions.size()
            << " session(s) certified in " << timer.millis() << " ms\n";
  return refused == 0 ? 0 : 2;
}

int run_serve(Args& args) {
  const std::vector<std::string> specs = args.values("--jobs");
  if (!specs.empty() || args.value("--accept-submissions") || args.value("--certs-dir")) {
    return run_serve_jobs(args, specs);
  }

  const std::string graph_path = args.required("--graph");
  svc::ServeConfig config;
  config.address = args.required("--listen");
  config.model = parse_model(args.value("--model").value_or("sum"));
  config.include_deletions = args.flag("--include-deletions");
  config.stop_on_violation = args.flag("--stop-on-violation");
  if (args.value("--shards")) {
    config.shards = static_cast<std::size_t>(parse_u64(*args.value("--shards"), "--shards"));
  }
  if (args.value("--lease-ms")) {
    config.lease_ms = parse_u64(*args.value("--lease-ms"), "--lease-ms");
  }
  if (args.value("--max-retries")) {
    config.max_retries = parse_u32(*args.value("--max-retries"), "--max-retries");
  }
  if (args.value("--backoff-ms")) {
    config.backoff_ms = parse_u64(*args.value("--backoff-ms"), "--backoff-ms");
  }
  // Zero here would make every lease or re-dispatch deadline degenerate;
  // reject it as a usage error, not a guard refusal deep in the service.
  if (config.lease_ms == 0) usage("--lease-ms must be >= 1");
  if (config.backoff_ms == 0) usage("--backoff-ms must be >= 1");
  if (args.value("--journal")) config.journal_dir = *args.value("--journal");
  config.resume = args.flag("--resume");
  reject_unknown(args);

  const Graph g = load_graph(graph_path);
  Timer timer;
  const svc::ServeOutcome outcome = svc::serve_certification(g, config, &std::cerr);
  if (!outcome.complete) {
    std::cerr << "bncg_certify: serve refused: " << outcome.quarantined.size()
              << " range(s) quarantined, " << outcome.agents_uncovered
              << " agents uncovered — certificate withheld"
              << (config.journal_dir.empty() ? "" : "; completed ranges are journaled, rerun with --resume")
              << "\n";
    return 2;
  }
  print_certificate(graph_fingerprint(g), g.num_vertices(), g.num_edges(), config.model,
                    config.include_deletions, config.stop_on_violation, *outcome.certificate);
  std::cerr << "serve: certificate complete in " << timer.millis() << " ms\n";
  return 0;
}

/// Shared by `submit` and `status`: the one-frame control-client config.
[[nodiscard]] svc::ConnectConfig parse_control_config(Args& args) {
  svc::ConnectConfig config;
  config.address = args.required("--connect");
  if (args.value("--connect-retries")) {
    config.connect_retries = parse_u32(*args.value("--connect-retries"), "--connect-retries");
  }
  if (args.value("--connect-backoff-ms")) {
    config.connect_backoff_ms =
        parse_u64(*args.value("--connect-backoff-ms"), "--connect-backoff-ms");
  }
  return config;
}

int run_submit(Args& args) {
  const svc::ConnectConfig config = parse_control_config(args);
  const std::string graph_path = args.required("--graph");
  svc::SubmitBody job;
  job.model = parse_model(args.value("--model").value_or("sum"));
  job.include_deletions = args.flag("--include-deletions");
  job.stop_on_violation = args.flag("--stop-on-violation");
  if (args.value("--shards")) {
    job.shard_count = parse_u32(*args.value("--shards"), "--shards");
  }
  reject_unknown(args);

  const Graph g = load_graph(graph_path);
  job.fingerprint = graph_fingerprint(g);
  job.n = g.num_vertices();
  job.m = g.num_edges();
  const svc::AcceptedBody accepted = svc::submit_job(config, job);
  std::ostringstream fp;
  fp << std::hex << job.fingerprint;
  std::cout << "submitted session=" << accepted.session_id
            << " already_queued=" << (accepted.already_queued ? 1 : 0) << " fingerprint=0x"
            << fp.str() << "\n";
  return 0;
}

int run_status(Args& args) {
  const svc::ConnectConfig config = parse_control_config(args);
  reject_unknown(args);

  const svc::JobStatusBody status = svc::query_jobs(config);
  for (const svc::JobSummary& job : status.jobs) {
    std::ostringstream fp;
    fp << std::hex << job.fingerprint;
    const char* state = job.state == svc::JobSummary::State::Complete  ? "complete"
                        : job.state == svc::JobSummary::State::Refused ? "refused"
                                                                       : "active";
    std::cout << "session=" << job.session_id << " state=" << state << " ranges="
              << job.completed_ranges << "/" << job.shard_count
              << " quarantined=" << job.quarantined_ranges << " n=" << job.n << " m=" << job.m
              << " model=" << (job.model == UsageCost::Sum ? "sum" : "max")
              << " include_deletions=" << (job.include_deletions ? 1 : 0)
              << " stop_on_violation=" << (job.stop_on_violation ? 1 : 0) << " fingerprint=0x"
              << fp.str() << "\n";
  }
  std::cerr << "status: " << status.jobs.size() << " session(s)\n";
  return 0;
}

int run_merge(Args& args) {
  const std::vector<std::string> files = args.positionals();
  if (files.empty()) usage("merge needs at least one shard file");
  std::vector<ShardResult> shards;
  shards.reserve(files.size());
  for (const std::string& path : files) shards.push_back(read_shard_file(path));
  Timer timer;
  const ShardedCertificate merged = merge_shard_results(shards);
  const ShardResult& head = shards.front();
  print_certificate(head.fingerprint, head.n, head.m, head.model, head.include_deletions,
                    head.stop_on_violation, merged);
  std::cerr << "merge: " << merged.shards_used << " shards, width=" << dist_width_name(merged.width)
            << " fallbacks=" << merged.width_fallbacks << " " << timer.millis() << " ms\n";
  return 0;
}

int run_certify(Args& args) {
  const std::string graph_path = args.required("--graph");
  const UsageCost model = parse_model(args.value("--model").value_or("sum"));
  ShardedCertifyConfig config;
  config.stop_on_violation = args.flag("--stop-on-violation");
  config.resources.width = parse_width(args.value("--width").value_or("auto"));
  config.resources.mem_budget = parse_mem_budget(args);
  if (args.value("--shards")) {
    config.shards = static_cast<std::size_t>(parse_u64(*args.value("--shards"), "--shards"));
  }
  const bool include_deletions = args.flag("--include-deletions");
  reject_unknown(args);

  const Graph g = load_graph(graph_path);
  Timer timer;
  const ShardedCertificate cert = certify_sharded(g, model, include_deletions, config);
  print_certificate(graph_fingerprint(g), g.num_vertices(), g.num_edges(), model,
                    include_deletions, config.stop_on_violation, cert);
  std::cerr << "certify: " << cert.shards_used << " shards, width=" << dist_width_name(cert.width)
            << " fallbacks=" << cert.width_fallbacks << " " << timer.millis() << " ms\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string mode = argv[1];
  if (mode == "--help" || mode == "-h" || mode == "help") usage("", 0);
  Args args(argc, argv, 2);
  try {
    if (mode == "gen") return run_gen(args);
    if (mode == "worker") return run_worker(args);
    if (mode == "chaos-worker") return run_chaos_worker(args);
    if (mode == "serve") return run_serve(args);
    if (mode == "submit") return run_submit(args);
    if (mode == "status") return run_status(args);
    if (mode == "merge") return run_merge(args);
    if (mode == "certify") return run_certify(args);
    usage("unknown mode: " + mode);
  } catch (const svc::TransportError& e) {
    // Socket-level failure that survived the bounded retry budget.
    std::cerr << "bncg_certify: transport failure: " << e.what() << "\n";
    return 4;
  } catch (const std::invalid_argument& e) {
    // Wire decode / merge guard / handshake rejections — the "refuse to
    // trust this data" path.
    std::cerr << "bncg_certify: refused: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "bncg_certify: error: " << e.what() << "\n";
    return 1;
  } catch (...) {
    // Nothing may escape main as an uncaught throw: an unknown exception
    // type is still a diagnosable exit-1 environment error, never a core.
    std::cerr << "bncg_certify: error: unknown exception\n";
    return 1;
  }
}

// Equilibrium search workflow — the tooling that produced this library's
// Theorem 5 witness after the literal Figure 3 instance was refuted.
//
//  1. quantify how far the literal Figure 3 graph is from equilibrium
//     (sum_unrest), and show the refuting swap;
//  2. anneal from a random diameter-3 graph toward zero unrest — proposals
//     are evaluated incrementally through the SearchState (cached per-agent
//     masked matrices; see core/search_state.hpp), and the run reports its
//     proposal throughput and acceptance counters;
//  3. certify whatever the search returns, and compare it against the
//     library's canonical 8-vertex witness up to isomorphism;
//  4. exhaustively confirm no smaller witness exists (n ≤ 6 here; n = 7
//     runs in bench_thm5_diameter3).
//
//   $ ./search_equilibria [n] [steps] [seed]
#include <cstdlib>
#include <iostream>

#include "core/equilibrium.hpp"
#include "core/search.hpp"
#include "core/search_state.hpp"
#include "gen/paper.hpp"
#include "gen/random.hpp"
#include "graph/io.hpp"
#include "graph/isomorphism.hpp"
#include "graph/metrics.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bncg;
  const Vertex n = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 8;
  const std::uint64_t steps = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 8000;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 2024;

  std::cout << "=== 1. the literal Figure 3 graph, quantified ===\n";
  {
    const Graph fig3 = fig3_diameter3_graph();
    const auto [v, rm, add] = fig3_refuting_swap();
    std::cout << "sum_unrest(fig3) = " << sum_unrest(fig3)
              << " (one unit per d-agent)\nrefuting swap: agent " << v << " replaces edge to "
              << rm << " with edge to " << add << "\n";
  }

  std::cout << "\n=== 2. anneal toward a diameter-3 sum equilibrium (n=" << n << ") ===\n";
  Xoshiro256ss rng(seed);
  AnnealConfig config;
  config.steps = steps;
  config.seed = seed;
  config.cost = UsageCost::Sum;
  AnnealStats stats;
  Timer timer;
  const Graph start = random_connected_gnm(n, 2 * n, rng);
  const char* evaluation = search_state_enabled(start) ? "incremental" : "full recompute";
  const auto found = anneal_equilibrium(start, config, &stats);
  const double secs = timer.seconds();
  std::cout << stats.proposals << " proposals in " << secs << " s ("
            << (secs > 0 ? static_cast<double>(stats.proposals) / secs : 0.0) << "/s "
            << evaluation << "): " << stats.filtered << " filtered, " << stats.evaluated
            << " evaluated, " << stats.accepted << " accepted, final unrest "
            << stats.final_unrest << "\n";
  if (!found) {
    std::cout << "no equilibrium found in " << steps
              << " steps — try more steps or another seed\n";
    return 1;
  }
  std::cout << "found: " << to_string(*found) << "\n"
            << "graph6: " << to_graph6(*found) << "\n";

  std::cout << "\n=== 3. certify and compare ===\n";
  const EquilibriumCertificate cert = certify_sum_equilibrium(*found);
  std::cout << "diameter=" << diameter(*found)
            << " sum equilibrium: " << (cert.is_equilibrium ? "CERTIFIED" : "REFUTED") << " ("
            << cert.moves_checked << " swaps checked)\n";
  if (found->num_vertices() == 8) {
    std::cout << "isomorphic to the canonical n=8 witness: "
              << (are_isomorphic(*found, diameter3_sum_equilibrium_n8()) ? "yes" : "no — a new one!")
              << "\n";
  }

  std::cout << "\n=== 4. minimality (exhaustive, n <= 6) ===\n";
  for (const Vertex small_n : {5u, 6u}) {
    const auto witness = exhaustive_diameter3_sum_equilibrium(small_n);
    std::cout << "n=" << small_n << ": "
              << (witness ? "UNEXPECTED witness found" : "no diameter-3 sum equilibrium exists")
              << "\n";
  }
  return cert.is_equilibrium ? 0 : 1;
}

// Quickstart: the basic network creation game in ~50 lines.
//
// Builds a random connected graph, runs sum best-response swap dynamics to
// equilibrium, certifies the result, and prints the key observables — the
// minimal end-to-end use of the bncg::Instance facade (core/instance.hpp).
//
//   $ ./quickstart [n] [m] [seed]
#include <cstdlib>
#include <iostream>
#include <utility>

#include "core/instance.hpp"
#include "core/poa.hpp"

int main(int argc, char** argv) {
  using namespace bncg;
  const Vertex n = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 32;
  const std::size_t m = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2 * n;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  // 1. Generate a connected starting network.
  const Instance start = Instance::gnm(n, m, seed);
  std::cout << "start:       n=" << n << " m=" << m << " diameter=" << start.diameter()
            << " social_cost=" << start.social_cost(UsageCost::Sum) << "\n";

  // 2. Let selfish agents swap edges until no one can improve. One
  //    RunConfig carries the model, move budget, and resource knobs for
  //    both dynamics and certification.
  RunConfig run;
  run.model = UsageCost::Sum;  // minimize sum of distances
  run.max_moves = 1'000'000;
  DynamicsResult result = start.equilibrate(run);
  std::cout << "dynamics:    " << result.moves << " swaps over " << result.passes
            << " passes, converged=" << (result.converged ? "yes" : "no") << "\n";

  // 3. Certify the equilibrium exhaustively (poly-time — a key point of the
  //    paper, in contrast to NP-complete Nash recognition in the alpha-game).
  const Instance final_net(std::move(result.graph));
  const ShardedCertificate cert = final_net.certify(run);
  std::cout << "certificate: " << cert.certificate.moves_checked << " candidate swaps checked, "
            << "equilibrium=" << (cert.certificate.is_equilibrium ? "yes" : "no") << "\n";

  // 4. Report the paper's observables: equilibrium diameter (the central
  //    question) and the edge-budget social cost ratio (PoA proxy).
  std::cout << "equilibrium: diameter=" << final_net.diameter()
            << " social_cost=" << final_net.social_cost(UsageCost::Sum)
            << " cost_ratio=" << social_cost_ratio(final_net.graph(), UsageCost::Sum) << "\n";
  return cert.certificate.is_equilibrium ? 0 : 1;
}

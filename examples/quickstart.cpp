// Quickstart: the basic network creation game in ~60 lines.
//
// Builds a random connected graph, runs sum best-response swap dynamics to
// equilibrium, certifies the result, and prints the key observables — the
// minimal end-to-end use of the bncg public API.
//
//   $ ./quickstart [n] [m] [seed]
#include <cstdlib>
#include <iostream>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/poa.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"

int main(int argc, char** argv) {
  using namespace bncg;
  const Vertex n = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 32;
  const std::size_t m = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 2 * n;
  const std::uint64_t seed = argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 42;

  // 1. Generate a connected starting network.
  Xoshiro256ss rng(seed);
  const Graph start = random_connected_gnm(n, m, rng);
  std::cout << "start:       n=" << n << " m=" << m << " diameter=" << diameter(start)
            << " social_cost=" << social_cost(start, UsageCost::Sum) << "\n";

  // 2. Let selfish agents swap edges until no one can improve.
  DynamicsConfig config;
  config.cost = UsageCost::Sum;            // minimize sum of distances
  config.scheduler = Scheduler::RoundRobin;
  config.max_moves = 1'000'000;
  const DynamicsResult result = run_dynamics(start, config);
  std::cout << "dynamics:    " << result.moves << " swaps over " << result.passes
            << " passes, converged=" << (result.converged ? "yes" : "no") << "\n";

  // 3. Certify the equilibrium exhaustively (poly-time — a key point of the
  //    paper, in contrast to NP-complete Nash recognition in the alpha-game).
  const EquilibriumCertificate cert = certify_sum_equilibrium(result.graph);
  std::cout << "certificate: " << cert.moves_checked << " candidate swaps checked, "
            << "equilibrium=" << (cert.is_equilibrium ? "yes" : "no") << "\n";

  // 4. Report the paper's observables: equilibrium diameter (the central
  //    question) and the edge-budget social cost ratio (PoA proxy).
  std::cout << "equilibrium: diameter=" << diameter(result.graph)
            << " social_cost=" << social_cost(result.graph, UsageCost::Sum)
            << " cost_ratio=" << social_cost_ratio(result.graph, UsageCost::Sum) << "\n";
  return cert.is_equilibrium ? 0 : 1;
}

// Dynamics explorer: watch best-response swap dynamics reshape a network.
//
// Runs the configured dynamics with full trace recording and prints the
// social cost / diameter trajectory — the "small world emerges from selfish
// swaps" phenomenon the paper's introduction motivates. Agent scans route
// through the incremental SearchState (cached per-agent masked distance
// matrices with journal catch-up) whenever n is within its auto cap; the
// banner reports which provider tier backs the run.
//
//   $ ./dynamics_explorer [family: tree|cycle|sparse|ba] [n] [sum|max] [seed]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/dynamics.hpp"
#include "core/search_state.hpp"
#include "core/swap_engine.hpp"
#include "gen/classic.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bncg;
  const std::string family = argc > 1 ? argv[1] : "cycle";
  const Vertex n = argc > 2 ? static_cast<Vertex>(std::atoi(argv[2])) : 24;
  const std::string model = argc > 3 ? argv[3] : "sum";
  const std::uint64_t seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 7;

  Xoshiro256ss rng(seed);
  Graph start(0);
  if (family == "tree") {
    start = random_tree(n, rng);
  } else if (family == "cycle") {
    start = cycle(n);
  } else if (family == "sparse") {
    start = random_connected_gnm(n, n + n / 4, rng);
  } else if (family == "ba") {
    start = barabasi_albert(n, 2, rng);
  } else {
    std::cerr << "unknown family '" << family << "' (tree|cycle|sparse|ba)\n";
    return 2;
  }

  DynamicsConfig config;
  config.cost = model == "max" ? UsageCost::Max : UsageCost::Sum;
  config.allow_neutral_deletions = config.cost == UsageCost::Max;
  config.record_trace = true;
  config.max_moves = 200'000;
  config.seed = seed;

  const char* provider = search_state_enabled(start)  ? "incremental SearchState"
                         : swap_engine_enabled(start) ? "SwapEngine"
                                                      : "naive oracle";
  std::cout << "family=" << family << " n=" << n << " m=" << start.num_edges()
            << " model=" << model << " provider=" << provider << "\n\n";
  const DynamicsResult r = run_dynamics(start, config);

  Table t({"move", "social_cost", "diameter"});
  // Print at most ~20 evenly spaced trace rows.
  const std::size_t stride = std::max<std::size_t>(1, r.trace.size() / 20);
  for (std::size_t i = 0; i < r.trace.size(); i += stride) {
    t.add_row({fmt(r.trace[i].move), fmt(r.trace[i].social_cost), fmt(r.trace[i].diameter)});
  }
  if (!r.trace.empty() && (r.trace.size() - 1) % stride != 0) {
    const auto& last = r.trace.back();
    t.add_row({fmt(last.move), fmt(last.social_cost), fmt(last.diameter)});
  }
  t.print(std::cout);

  std::cout << "\n" << r.moves << " moves, " << r.passes << " passes, converged="
            << (r.converged ? "yes" : "no") << ", final diameter=" << diameter(r.graph)
            << "\n";
  return 0;
}

// α-game study: how the classic parameterized game behaves across α, and why
// the basic game's α-free analysis covers it.
//
// For a sweep of α the example runs greedy best-response in the Fabrikant
// α-game from the same starting network, reporting the equilibrium topology
// (diameter, edges) and the PoA estimate; then it demonstrates the transfer
// principle by checking a basic-game equilibrium for α-game swap deviations
// at every α.
//
//   $ ./alpha_game_study [n] [seed]
#include <cstdlib>
#include <iostream>

#include "core/classic_game.hpp"
#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "gen/random.hpp"
#include "graph/metrics.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace bncg;
  const Vertex n = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 14;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 9;

  Xoshiro256ss rng(seed);
  const Graph start = random_connected_gnm(n, 2 * n, rng);

  std::cout << "=== alpha sweep: greedy best-response from the same start (n=" << n << ") ===\n";
  Table t({"alpha", "converged", "final m", "diam", "social cost", "OPT", "PoA est"});
  for (const double alpha : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 32.0, 128.0}) {
    ClassicGame game(start, alpha);
    const auto run = game.run_best_response(200'000);
    t.add_row({fmt(alpha, 2), run.converged ? "yes" : "no", fmt(game.graph().num_edges()),
               fmt(diameter(game.graph())), fmt(game.social_cost(), 1),
               fmt(optimal_social_cost(n, alpha), 1),
               fmt(game.social_cost() / optimal_social_cost(n, alpha), 3)});
  }
  t.print(std::cout);
  std::cout << "Small alpha densifies toward the clique; large alpha prunes toward\n"
               "star-like trees — the two known optima.\n";

  std::cout << "\n=== transfer principle: one basic-game equilibrium, every alpha ===\n";
  DynamicsConfig config;
  config.max_moves = 300'000;
  const DynamicsResult r = run_dynamics(start, config);
  if (!r.converged) {
    std::cout << "basic-game dynamics did not converge within budget\n";
    return 1;
  }
  Table t2({"alpha", "improving swaps in alpha-game"});
  for (const double alpha : {0.01, 1.0, 100.0, 1e6}) {
    ClassicGame game(r.graph, alpha);
    BfsWorkspace ws;
    int swaps = 0;
    for (Vertex v = 0; v < r.graph.num_vertices(); ++v) {
      const auto move = game.best_deviation(v, ws);
      if (move && move->type == ClassicMove::Type::Swap) ++swaps;
    }
    t2.add_row({fmt(alpha, 2), fmt(swaps)});
  }
  t2.print(std::cout);
  std::cout << "Zero improving swaps at every alpha: swap stability is alpha-free,\n"
               "so the basic game's bounds apply to all parameterizations at once.\n";
  return 0;
}

// Certify the paper's two headline constructions end to end:
//  * Figure 3 — the diameter-3 sum equilibrium (Theorem 5),
//  * Figure 4 — the Θ(sqrt(n))-diameter rotated-torus max equilibrium
//    (Theorem 12), including its deletion-critical / insertion-stable pair
//    and its identity as an Abelian Cayley graph (§5).
//
//   $ ./certify_constructions [k]
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/certify_wire.hpp"
#include "core/equilibrium.hpp"
#include "core/instance.hpp"
#include "core/swap_engine.hpp"
#include "gen/cayley.hpp"
#include "gen/paper.hpp"
#include "graph/io.hpp"
#include "graph/metrics.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace bncg;
  const Vertex k = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 5;

  std::cout << "=== Figure 3 (literal) vs. Theorem 5 ===\n";
  {
    const Graph g = fig3_diameter3_graph();
    Timer timer;
    const EquilibriumCertificate cert = certify_sum_equilibrium(g);
    std::cout << "literal fig3: n=" << g.num_vertices() << " m=" << g.num_edges()
              << " diameter=" << diameter(g) << " girth=" << girth(g) << "\n"
              << "sum equilibrium: " << (cert.is_equilibrium ? "CERTIFIED" : "REFUTED") << " ("
              << cert.moves_checked << " swaps, " << timer.millis() << " ms)\n";
    if (cert.witness) {
      std::cout << "counterexample: agent " << cert.witness->swap.v << " swaps "
                << cert.witness->swap.remove_w << " -> " << cert.witness->swap.add_w
                << " (the d-agent/matched-partner erratum; see DESIGN.md)\n";
    }
    // Theorem 5's existential statement, upheld by the repaired witness.
    const Graph w = diameter3_sum_equilibrium_n8();
    const EquilibriumCertificate wc = certify_sum_equilibrium(w);
    std::cout << "repaired witness: n=" << w.num_vertices() << " m=" << w.num_edges()
              << " diameter=" << diameter(w) << " sum equilibrium: "
              << (wc.is_equilibrium ? "CERTIFIED" : "REFUTED") << "\n";
  }

  std::cout << "\n=== Figure 4: rotated torus, k=" << k << " (Theorem 12) ===\n";
  {
    const DiagonalTorus torus = rotated_torus(k);
    const Graph& g = torus.graph();
    std::cout << "n=" << g.num_vertices() << " (= 2k^2), 4-regular, diameter=" << diameter(g)
              << " (paper: exactly k=" << k << ")\n";
    Timer timer;
    const bool del_crit = is_deletion_critical(g);
    const bool ins_stable = is_insertion_stable(g);
    const bool max_eq = is_max_equilibrium(g);
    std::cout << "deletion-critical:  " << (del_crit ? "yes" : "NO") << "\n"
              << "insertion-stable:   " << (ins_stable ? "yes" : "NO") << "\n"
              << "max equilibrium:    " << (max_eq ? "CERTIFIED" : "REFUTED") << " ("
              << timer.millis() << " ms total)\n";

    // The same verdict through the Instance facade over the large-n
    // sharded driver (the path used past the engine's auto cap), with its
    // width/shard telemetry.
    const Instance inst{Graph(g)};
    RunConfig run;
    run.model = UsageCost::Max;
    run.include_deletions = true;
    Timer sharded_timer;
    const ShardedCertificate sharded = inst.certify(run);
    std::cout << "sharded certify:    "
              << (sharded.certificate.is_equilibrium ? "CERTIFIED" : "REFUTED") << " ("
              << sharded.shards_used << " shards, " << dist_width_name(sharded.width)
              << " distances, " << sharded.width_fallbacks << " width fallbacks, "
              << sharded_timer.millis() << " ms)\n";
    if (sharded.certificate.is_equilibrium != max_eq) {
      std::cerr << "FATAL: sharded certifier disagrees with is_max_equilibrium\n";
      return 1;
    }

    // Once more under a memory budget of half the dense n×n slab: the
    // scans run against the blocked row cache instead, and the certificate
    // must not change by a byte (DESIGN.md §16). Skipped for tiny k, where
    // half a slab is below the cache's two-block minimum.
    if (g.num_vertices() >= 32) {
      RunConfig budgeted = run;
      budgeted.resources.mem_budget =
          static_cast<std::uint64_t>(g.num_vertices()) * g.num_vertices() / 2;
      Timer budget_timer;
      const ShardedCertificate capped = inst.certify(budgeted);
      std::cout << "budgeted certify:   "
                << (capped.certificate.is_equilibrium ? "CERTIFIED" : "REFUTED") << " ("
                << capped.certificate.moves_checked << " moves under a half-slab budget, "
                << budget_timer.millis() << " ms)\n";
      if (capped.certificate.is_equilibrium != sharded.certificate.is_equilibrium ||
          capped.certificate.moves_checked != sharded.certificate.moves_checked) {
        std::cerr << "FATAL: budgeted certificate disagrees with the dense path\n";
        return 1;
      }
    }

    // The same verdict once more through the cross-process pipeline
    // (DESIGN.md §11), simulated in-process: three "worker" shards, each
    // with its own engine, round-tripped through the wire format (binary
    // and JSON alternating) and merged by the fingerprint-guarded fold —
    // exactly what tools/bncg_certify + scripts/certify_fanout.sh do
    // across real processes.
    {
      const Vertex n = g.num_vertices();
      std::vector<ShardResult> shards;
      for (std::uint32_t i = 0; i < 3; ++i) {
        const SwapEngine worker_engine(g);  // fresh engine = fresh address space
        AgentRange range;
        range.lo = static_cast<Vertex>(i * n / 3);
        range.hi = static_cast<Vertex>((i + 1) * n / 3);
        range.shard_index = i;
        range.shard_count = 3;
        const ShardResult produced = certify_agent_range(
            worker_engine, range, UsageCost::Max, /*include_deletions=*/true);
        shards.push_back(i % 2 == 0 ? shard_from_binary(shard_to_binary(produced))
                                    : shard_from_json(shard_to_json(produced)));
      }
      const ShardedCertificate merged = merge_shard_results(shards);
      std::cout << "wire fan-out:       "
                << (merged.certificate.is_equilibrium ? "CERTIFIED" : "REFUTED")
                << " (3 worker shards, serialized + merged, fingerprint 0x" << std::hex
                << graph_fingerprint(g) << std::dec << ")\n";
      if (merged.certificate.is_equilibrium != sharded.certificate.is_equilibrium ||
          merged.certificate.moves_checked != sharded.certificate.moves_checked) {
        std::cerr << "FATAL: wire-merged certificate disagrees with certify_sharded\n";
        return 1;
      }
    }

    // §5: the same graph as a Cayley graph of an Abelian group.
    const Graph cayley_form = even_sum_subgroup_cayley(k);
    std::cout << "Cayley identity:    "
              << (cayley_form == g ? "edge-identical to Cay(even-sum Z_{2k}^2, {(+-1,+-1)})"
                                   : "MISMATCH")
              << "\n";
  }
  return 0;
}

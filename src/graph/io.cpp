#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

namespace bncg {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) os << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& is) {
  long long n = -1, m = -1;
  if (!(is >> n >> m) || n < 0 || m < 0) {
    throw std::invalid_argument("edge list: bad header");
  }
  BNCG_REQUIRE(n <= (1ll << 31), "edge list: vertex count too large");
  Graph g(static_cast<Vertex>(n));
  for (long long i = 0; i < m; ++i) {
    long long u = -1, v = -1;
    if (!(is >> u >> v)) throw std::invalid_argument("edge list: truncated");
    if (u < 0 || v < 0 || u >= n || v >= n) {
      throw std::invalid_argument("edge list: endpoint out of range");
    }
    g.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return g;
}

void write_dot(std::ostream& os, const Graph& g, const std::string& name) {
  os << "graph " << name << " {\n";
  for (Vertex v = 0; v < g.num_vertices(); ++v) os << "  " << v << ";\n";
  for (const auto& [u, v] : g.edges()) os << "  " << u << " -- " << v << ";\n";
  os << "}\n";
}

namespace {

/// Appends the graph6 representation of value `n` (the size prefix).
void append_g6_size(std::string& out, std::uint64_t n) {
  if (n < 63) {
    out.push_back(static_cast<char>(n + 63));
  } else if (n < (1u << 18)) {
    out.push_back(126);
    out.push_back(static_cast<char>(((n >> 12) & 63) + 63));
    out.push_back(static_cast<char>(((n >> 6) & 63) + 63));
    out.push_back(static_cast<char>((n & 63) + 63));
  } else {
    throw std::invalid_argument("graph6: n >= 2^18 unsupported");
  }
}

/// Reads the size prefix, advancing `pos`.
std::uint64_t read_g6_size(const std::string& s, std::size_t& pos) {
  BNCG_REQUIRE(pos < s.size(), "graph6: empty input");
  const unsigned char c = static_cast<unsigned char>(s[pos]);
  if (c != 126) {
    BNCG_REQUIRE(c >= 63 && c <= 125, "graph6: bad size byte");
    ++pos;
    return c - 63;
  }
  BNCG_REQUIRE(pos + 3 < s.size(), "graph6: truncated size");
  std::uint64_t n = 0;
  for (int i = 1; i <= 3; ++i) {
    const unsigned char b = static_cast<unsigned char>(s[pos + i]);
    BNCG_REQUIRE(b >= 63 && b <= 126, "graph6: bad size byte");
    n = (n << 6) | (b - 63);
  }
  pos += 4;
  return n;
}

}  // namespace

std::string to_graph6(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::string out;
  append_g6_size(out, n);
  // Upper-triangle bits in column-major order: pair (u, v) with u < v is bit
  // index v(v−1)/2 + u; packed into 6-bit groups, zero-padded.
  int bit_pos = 5;
  unsigned char current = 0;
  for (Vertex v = 1; v < n; ++v) {
    for (Vertex u = 0; u < v; ++u) {
      if (g.has_edge(u, v)) current |= static_cast<unsigned char>(1u << bit_pos);
      if (--bit_pos < 0) {
        out.push_back(static_cast<char>(current + 63));
        current = 0;
        bit_pos = 5;
      }
    }
  }
  if (bit_pos != 5) out.push_back(static_cast<char>(current + 63));
  return out;
}

std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

/// Folds `value` into the running FNV state as little-endian bytes, so the
/// fingerprint is identical across host endiannesses.
void fnv_append_u64(std::uint64_t& h, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    h ^= static_cast<unsigned char>(value >> (8 * i));
    h *= 0x100000001b3ull;
  }
}

/// Shared over both representations: each keeps adjacencies sorted, so the
/// canonical edge enumeration — (u, v) with u < v, lexicographic — is a
/// function of the edge *set* alone and the two overloads hash identical
/// byte sequences.
template <typename GraphLike>
std::uint64_t fingerprint_impl(const GraphLike& g) {
  const Vertex n = g.num_vertices();
  std::uint64_t h = fnv1a64("bncg-graph-v1", 13);
  fnv_append_u64(h, n);
  fnv_append_u64(h, g.num_edges());
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex v : g.neighbors(u)) {
      if (v <= u) continue;
      fnv_append_u64(h, u);
      fnv_append_u64(h, v);
    }
  }
  return h;
}

}  // namespace

std::uint64_t graph_fingerprint(const Graph& g) { return fingerprint_impl(g); }

std::uint64_t graph_fingerprint(const CsrGraph& g) { return fingerprint_impl(g); }

Graph from_graph6(const std::string& g6) {
  std::size_t pos = 0;
  const std::uint64_t n64 = read_g6_size(g6, pos);
  BNCG_REQUIRE(n64 < (1ull << 31), "graph6: n too large");
  const Vertex n = static_cast<Vertex>(n64);
  Graph g(n);
  int bit_pos = -1;
  unsigned char current = 0;
  for (Vertex v = 1; v < n; ++v) {
    for (Vertex u = 0; u < v; ++u) {
      if (bit_pos < 0) {
        BNCG_REQUIRE(pos < g6.size(), "graph6: truncated data");
        const unsigned char c = static_cast<unsigned char>(g6[pos++]);
        BNCG_REQUIRE(c >= 63 && c <= 126, "graph6: bad data byte");
        current = static_cast<unsigned char>(c - 63);
        bit_pos = 5;
      }
      if (current & (1u << bit_pos)) g.add_edge(u, v);
      --bit_pos;
    }
  }
  return g;
}

}  // namespace bncg

#include "graph/power.hpp"

#include <vector>

namespace bncg {

Graph power(const Graph& g, Vertex x) { return power(DistanceMatrix(g), x); }

Graph power(const DistanceMatrix& dm, Vertex x) {
  BNCG_REQUIRE(x >= 1, "graph power exponent must be >= 1");
  const Vertex n = dm.size();
  Graph result(n);
  for (Vertex u = 0; u < n; ++u) {
    const auto row = dm.row(u);
    for (Vertex v = u + 1; v < n; ++v) {
      if (row[v] != kInfDist && row[v] <= x) result.add_edge(u, v);
    }
  }
  return result;
}

Vertex prime_avoiding_interval(Vertex lo, Vertex hi, Vertex bound) {
  BNCG_REQUIRE(lo <= hi, "interval bounds out of order");
  // Sieve of Eratosthenes up to `bound`, then test each prime directly:
  // p avoids [lo, hi] iff ⌊hi/p⌋ < ⌈lo/p⌉, i.e. no multiple lands inside.
  if (bound < 2) return 0;
  std::vector<bool> composite(static_cast<std::size_t>(bound) + 1, false);
  for (Vertex p = 2; static_cast<std::uint64_t>(p) * p <= bound; ++p) {
    if (composite[p]) continue;
    for (std::uint64_t q = static_cast<std::uint64_t>(p) * p; q <= bound; q += p) {
      composite[static_cast<std::size_t>(q)] = true;
    }
  }
  for (Vertex p = 2; p <= bound; ++p) {
    if (composite[p]) continue;
    const Vertex first_multiple_at_or_above_lo = ((lo + p - 1) / p) * p;
    if (first_multiple_at_or_above_lo > hi) return p;
  }
  return 0;
}

}  // namespace bncg

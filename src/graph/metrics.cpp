#include "graph/metrics.hpp"

#include <algorithm>
#include <map>

#include "graph/bfs.hpp"
#include "util/thread_pool.hpp"

namespace bncg {

DistanceStats distance_stats(const Graph& g) { return distance_stats(DistanceMatrix(g)); }

DistanceStats distance_stats(const DistanceMatrix& dm) {
  DistanceStats stats;
  const Vertex n = dm.size();
  stats.connected = dm.connected();
  if (n == 0) {
    stats.connected = true;
    return stats;
  }
  if (!stats.connected) {
    stats.diameter = kInfDist;
    stats.radius = kInfDist;
    return stats;
  }
  stats.radius = kInfDist;
  std::uint64_t total = 0;
  for (Vertex u = 0; u < n; ++u) {
    Vertex ecc = 0;
    for (const Vertex d : dm.row(u)) {
      ecc = std::max(ecc, d);
      total += d;
    }
    stats.diameter = std::max(stats.diameter, ecc);
    stats.radius = std::min(stats.radius, ecc);
  }
  stats.wiener = total / 2;
  const std::uint64_t ordered_pairs = static_cast<std::uint64_t>(n) * (n - 1);
  stats.avg_distance = ordered_pairs == 0 ? 0.0
                                          : static_cast<double>(total) /
                                                static_cast<double>(ordered_pairs);
  return stats;
}

Vertex diameter(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n == 0) return 0;
  // Per-lane max/disconnected slots folded serially after the drain (the
  // reductions are commutative, so the fold order is cosmetic — the serial
  // fold just keeps the pattern uniform with the certifiers).
  ThreadPool& pool = ThreadPool::global();
  struct alignas(64) Lane {
    BfsWorkspace ws;
    Vertex diam = 0;
    bool disconnected = false;
  };
  std::vector<Lane> lanes(pool.size());
  pool.parallel_for(n, /*grain=*/8, [&](std::uint64_t v, unsigned tid) {
    Lane& lane = lanes[tid];
    const BfsResult r = bfs(g, static_cast<Vertex>(v), lane.ws);
    lane.disconnected = lane.disconnected || !r.spans(n);
    lane.diam = std::max(lane.diam, r.ecc);
  });
  Vertex diam = 0;
  bool disconnected = false;
  for (const Lane& lane : lanes) {
    disconnected = disconnected || lane.disconnected;
    diam = std::max(diam, lane.diam);
  }
  return disconnected ? kInfDist : diam;
}

Vertex girth(const Graph& g) {
  // BFS from every vertex; a non-tree edge at BFS levels (d, d') closes a
  // cycle of length d + d' + 1 through the root. The minimum over all roots
  // and non-tree edges is exactly the girth for unweighted graphs.
  const Vertex n = g.num_vertices();
  Vertex best = kInfDist;
  std::vector<Vertex> parent(n, kInfDist);
  std::vector<Vertex> dist(n, kInfDist);
  std::vector<Vertex> queue;
  queue.reserve(n);
  for (Vertex root = 0; root < n; ++root) {
    // Inline BFS that tracks parents to skip the tree edge.
    queue.clear();
    dist.assign(n, kInfDist);
    parent.assign(n, kInfDist);
    dist[root] = 0;
    queue.push_back(root);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex u = queue[head];
      if (2 * dist[u] + 1 >= best) break;  // cannot improve the girth anymore
      for (const Vertex w : g.neighbors(u)) {
        if (dist[w] == kInfDist) {
          dist[w] = dist[u] + 1;
          parent[w] = u;
          queue.push_back(w);
        } else if (w != parent[u] && dist[w] + dist[u] + 1 < best) {
          // Cross or back edge: cycle through the root (or lower LCA, which
          // only shortens it — still an upper bound found from that root).
          best = dist[w] + dist[u] + 1;
        }
      }
    }
  }
  return best;
}

std::vector<Vertex> eccentricities(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> ecc(n, 0);
  ThreadPool& pool = ThreadPool::global();
  std::vector<BfsWorkspace> ws(pool.size());
  pool.parallel_for(n, /*grain=*/8, [&](std::uint64_t v, unsigned tid) {
    const BfsResult r = bfs(g, static_cast<Vertex>(v), ws[tid]);
    ecc[static_cast<std::size_t>(v)] = r.spans(n) ? r.ecc : kInfDist;
  });
  return ecc;
}

std::uint64_t total_distance_sum(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::uint64_t total = 0;
  BfsWorkspace ws;
  for (Vertex v = 0; v < n; ++v) total += bfs(g, v, ws).dist_sum;
  return total;
}

std::vector<std::uint64_t> distance_histogram(const DistanceMatrix& dm) {
  const Vertex n = dm.size();
  Vertex max_d = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex d : dm.row(u)) {
      if (d != kInfDist) max_d = std::max(max_d, d);
    }
  }
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_d) + 1, 0);
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex d : dm.row(u)) {
      if (d != kInfDist) ++hist[d];
    }
  }
  return hist;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const Vertex n = g.num_vertices();
  if (n == 0) return stats;
  stats.min_degree = kInfDist;
  std::uint64_t total = 0;
  for (Vertex v = 0; v < n; ++v) {
    const Vertex d = g.degree(v);
    stats.min_degree = std::min(stats.min_degree, d);
    stats.max_degree = std::max(stats.max_degree, d);
    total += d;
  }
  stats.avg_degree = static_cast<double>(total) / static_cast<double>(n);
  return stats;
}

bool is_tree(const Graph& g) {
  const Vertex n = g.num_vertices();
  if (n == 0) return true;
  return g.num_edges() == static_cast<std::size_t>(n) - 1 && is_connected(g);
}

bool has_uniform_distance_profile(const DistanceMatrix& dm) {
  const Vertex n = dm.size();
  if (n == 0) return true;
  const auto profile_of = [&](Vertex u) {
    std::vector<Vertex> p(dm.row(u).begin(), dm.row(u).end());
    std::sort(p.begin(), p.end());
    return p;
  };
  const std::vector<Vertex> reference = profile_of(0);
  for (Vertex u = 1; u < n; ++u) {
    if (profile_of(u) != reference) return false;
  }
  return true;
}

}  // namespace bncg

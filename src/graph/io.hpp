// Graph serialization: a line-based edge-list format, Graphviz DOT export,
// and the standard graph6 codec (McKay) for interchange with nauty-family
// tooling. Round-trip safety is covered by the test suite.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace bncg {

/// Writes "n m" on the first line, then one "u v" pair per edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the write_edge_list format. Throws std::invalid_argument on
/// malformed input (bad counts, out-of-range ids, duplicate edges).
[[nodiscard]] Graph read_edge_list(std::istream& is);

/// Graphviz DOT (undirected). `name` is the graph identifier in the output.
void write_dot(std::ostream& os, const Graph& g, const std::string& name = "G");

/// graph6 encoding (McKay's format): supports n < 2^18 here, which covers
/// every instance in this library. Returns the ASCII string without a
/// trailing newline.
[[nodiscard]] std::string to_graph6(const Graph& g);

/// graph6 decoding; throws std::invalid_argument on malformed input.
[[nodiscard]] Graph from_graph6(const std::string& g6);

}  // namespace bncg

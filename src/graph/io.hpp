// Graph serialization: a line-based edge-list format, Graphviz DOT export,
// the standard graph6 codec (McKay) for interchange with nauty-family
// tooling, and a structural fingerprint used as the instance guard of the
// cross-process certification wire format (core/certify_wire.hpp).
// Round-trip safety is covered by the test suite.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "graph/csr.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Writes "n m" on the first line, then one "u v" pair per edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the write_edge_list format. Throws std::invalid_argument on
/// malformed input (bad counts, out-of-range ids, duplicate edges).
[[nodiscard]] Graph read_edge_list(std::istream& is);

/// Graphviz DOT (undirected). `name` is the graph identifier in the output.
void write_dot(std::ostream& os, const Graph& g, const std::string& name = "G");

/// graph6 encoding (McKay's format): supports n < 2^18 here, which covers
/// every instance in this library. Returns the ASCII string without a
/// trailing newline.
[[nodiscard]] std::string to_graph6(const Graph& g);

/// graph6 decoding; throws std::invalid_argument on malformed input.
[[nodiscard]] Graph from_graph6(const std::string& g6);

/// FNV-1a hash of a byte sequence — the checksum primitive of the shard
/// wire format and of graph_fingerprint below.
[[nodiscard]] std::uint64_t fnv1a64(const void* data, std::size_t size) noexcept;

/// Structural fingerprint of a graph: 64-bit FNV-1a over n, m, and the
/// canonical sorted edge list. Equal graphs (same vertex ids, same edge
/// set) hash equal regardless of edge insertion order; used by the
/// cross-process certification pipeline to refuse merging shard results
/// produced from different instances. The CsrGraph overload hashes the
/// identical byte sequence (both representations keep adjacencies sorted),
/// so a snapshot fingerprints equal to the graph it was built from.
[[nodiscard]] std::uint64_t graph_fingerprint(const Graph& g);
[[nodiscard]] std::uint64_t graph_fingerprint(const CsrGraph& g);

}  // namespace bncg

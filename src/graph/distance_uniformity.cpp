#include "graph/distance_uniformity.hpp"

#include <algorithm>

namespace bncg {

namespace {

/// Max distance present in the matrix (0 for empty/singleton graphs).
[[nodiscard]] Vertex max_finite_distance(const DistanceMatrix& dm) {
  Vertex max_d = 0;
  for (Vertex u = 0; u < dm.size(); ++u) {
    for (const Vertex d : dm.row(u)) {
      if (d != kInfDist) max_d = std::max(max_d, d);
    }
  }
  return max_d;
}

/// Counts vertices w with d(v, w) == r (plus r+1 when `almost`).
[[nodiscard]] Vertex band_count(const DistanceMatrix& dm, Vertex v, Vertex r, bool almost) {
  Vertex count = 0;
  for (const Vertex d : dm.row(v)) {
    if (d == r || (almost && d == r + 1)) ++count;
  }
  return count;
}

[[nodiscard]] double epsilon_impl(const DistanceMatrix& dm, Vertex r, bool almost) {
  const Vertex n = dm.size();
  if (n == 0) return 0.0;
  Vertex min_band = n;
  for (Vertex v = 0; v < n; ++v) {
    min_band = std::min(min_band, band_count(dm, v, r, almost));
  }
  return 1.0 - static_cast<double>(min_band) / static_cast<double>(n);
}

[[nodiscard]] UniformityResult best_impl(const DistanceMatrix& dm, bool almost) {
  UniformityResult best;
  const Vertex max_d = max_finite_distance(dm);
  for (Vertex r = 0; r <= max_d; ++r) {
    const double eps = epsilon_impl(dm, r, almost);
    if (eps < best.epsilon) {
      best.epsilon = eps;
      best.radius = r;
    }
  }
  return best;
}

}  // namespace

double epsilon_at_radius(const DistanceMatrix& dm, Vertex r) {
  return epsilon_impl(dm, r, /*almost=*/false);
}

double epsilon_at_radius_almost(const DistanceMatrix& dm, Vertex r) {
  return epsilon_impl(dm, r, /*almost=*/true);
}

UniformityResult best_uniformity(const DistanceMatrix& dm) {
  return best_impl(dm, /*almost=*/false);
}

UniformityResult best_almost_uniformity(const DistanceMatrix& dm) {
  return best_impl(dm, /*almost=*/true);
}

std::vector<Vertex> sphere_sizes(const DistanceMatrix& dm, Vertex v) {
  BNCG_REQUIRE(v < dm.size(), "vertex id out of range");
  const Vertex max_d = max_finite_distance(dm);
  std::vector<Vertex> sizes(static_cast<std::size_t>(max_d) + 1, 0);
  for (const Vertex d : dm.row(v)) {
    if (d != kInfDist) ++sizes[d];
  }
  return sizes;
}

UniformityResult best_uniformity(const Graph& g) { return best_uniformity(DistanceMatrix(g)); }

UniformityResult best_almost_uniformity(const Graph& g) {
  return best_almost_uniformity(DistanceMatrix(g));
}

PairUniformity best_pair_uniformity(const DistanceMatrix& dm, bool almost) {
  PairUniformity best;
  const Vertex n = dm.size();
  if (n < 2) return best;
  const Vertex max_d = max_finite_distance(dm);
  std::vector<std::uint64_t> count(static_cast<std::size_t>(max_d) + 2, 0);
  for (Vertex u = 0; u < n; ++u) {
    for (const Vertex d : dm.row(u)) {
      if (d != kInfDist && d > 0) ++count[d];
    }
  }
  const double total = static_cast<double>(n) * (n - 1);
  for (Vertex r = 1; r <= max_d; ++r) {
    const std::uint64_t band = count[r] + (almost ? count[r + 1] : 0);
    const double fraction = static_cast<double>(band) / total;
    if (fraction > best.fraction) {
      best.fraction = fraction;
      best.radius = r;
    }
  }
  return best;
}

}  // namespace bncg

#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace bncg {

namespace {

/// Sorted-vector membership test.
[[nodiscard]] bool contains_sorted(const std::vector<Vertex>& xs, Vertex v) {
  return std::binary_search(xs.begin(), xs.end(), v);
}

/// Sorted-vector insertion (keeps order).
void insert_sorted(std::vector<Vertex>& xs, Vertex v) {
  xs.insert(std::lower_bound(xs.begin(), xs.end(), v), v);
}

/// Sorted-vector erase. Precondition: element present.
void erase_sorted(std::vector<Vertex>& xs, Vertex v) {
  xs.erase(std::lower_bound(xs.begin(), xs.end(), v));
}

}  // namespace

bool Graph::has_edge(Vertex v, Vertex w) const {
  check_vertex(v);
  check_vertex(w);
  // Probe the smaller adjacency list.
  const auto& probe = adj_[v].size() <= adj_[w].size() ? adj_[v] : adj_[w];
  const Vertex target = adj_[v].size() <= adj_[w].size() ? w : v;
  return contains_sorted(probe, target);
}

void Graph::add_edge(Vertex v, Vertex w) {
  check_vertex(v);
  check_vertex(w);
  BNCG_REQUIRE(v != w, "self-loops are not allowed");
  BNCG_REQUIRE(!has_edge(v, w), "edge already present");
  insert_sorted(adj_[v], w);
  insert_sorted(adj_[w], v);
  ++num_edges_;
}

bool Graph::add_edge_if_absent(Vertex v, Vertex w) {
  check_vertex(v);
  check_vertex(w);
  BNCG_REQUIRE(v != w, "self-loops are not allowed");
  if (has_edge(v, w)) return false;
  insert_sorted(adj_[v], w);
  insert_sorted(adj_[w], v);
  ++num_edges_;
  return true;
}

void Graph::remove_edge(Vertex v, Vertex w) {
  check_vertex(v);
  check_vertex(w);
  BNCG_REQUIRE(has_edge(v, w), "edge not present");
  erase_sorted(adj_[v], w);
  erase_sorted(adj_[w], v);
  --num_edges_;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(num_edges_);
  for (Vertex v = 0; v < num_vertices(); ++v) {
    for (const Vertex w : adj_[v]) {
      if (v < w) result.push_back({v, w});
    }
  }
  return result;
}

void Graph::check_invariants() const {
  std::size_t half_edges = 0;
  for (Vertex v = 0; v < num_vertices(); ++v) {
    const auto& nbrs = adj_[v];
    if (!std::is_sorted(nbrs.begin(), nbrs.end())) {
      throw std::logic_error("bncg::Graph invariant: adjacency not sorted");
    }
    if (std::adjacent_find(nbrs.begin(), nbrs.end()) != nbrs.end()) {
      throw std::logic_error("bncg::Graph invariant: parallel edge");
    }
    for (const Vertex w : nbrs) {
      if (w == v) throw std::logic_error("bncg::Graph invariant: self-loop");
      if (w >= num_vertices()) throw std::logic_error("bncg::Graph invariant: dangling endpoint");
      if (!contains_sorted(adj_[w], v)) {
        throw std::logic_error("bncg::Graph invariant: asymmetric adjacency");
      }
    }
    half_edges += nbrs.size();
  }
  if (half_edges != 2 * num_edges_) {
    throw std::logic_error("bncg::Graph invariant: edge count mismatch");
  }
}

Graph graph_from_edges(Vertex n, const std::vector<std::pair<Vertex, Vertex>>& edge_list) {
  Graph g(n);
  for (const auto& [u, v] : edge_list) g.add_edge(u, v);
  return g;
}

Graph complement(const Graph& g) {
  const Vertex n = g.num_vertices();
  Graph result(n);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex w = v + 1; w < n; ++w) {
      if (!g.has_edge(v, w)) result.add_edge(v, w);
    }
  }
  return result;
}

std::string to_string(const Graph& g) {
  std::string out = "n=" + std::to_string(g.num_vertices()) + " m=" + std::to_string(g.num_edges());
  out += ":";
  for (const auto& [u, v] : g.edges()) {
    out += " " + std::to_string(u) + "-" + std::to_string(v);
  }
  return out;
}

}  // namespace bncg

#include "graph/isomorphism.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <tuple>

#include "graph/apsp.hpp"

namespace bncg {

namespace {

/// Per-vertex refinement key: (degree, sorted neighbor degrees, sorted
/// distance profile). Vertices may only map to vertices with equal keys.
using VertexKey = std::tuple<Vertex, std::vector<Vertex>, std::vector<Vertex>>;

std::vector<VertexKey> vertex_keys(const Graph& g, const DistanceMatrix& dm) {
  const Vertex n = g.num_vertices();
  std::vector<VertexKey> keys(n);
  for (Vertex v = 0; v < n; ++v) {
    std::vector<Vertex> nbr_degrees;
    nbr_degrees.reserve(g.degree(v));
    for (const Vertex w : g.neighbors(v)) nbr_degrees.push_back(g.degree(w));
    std::sort(nbr_degrees.begin(), nbr_degrees.end());
    std::vector<Vertex> profile(dm.row(v).begin(), dm.row(v).end());
    std::sort(profile.begin(), profile.end());
    keys[v] = {g.degree(v), std::move(nbr_degrees), std::move(profile)};
  }
  return keys;
}

/// Backtracking extension of a partial mapping. `order` fixes the assignment
/// order of a's vertices (most-constrained first).
bool extend(const Graph& a, const Graph& b, const std::vector<std::vector<Vertex>>& candidates,
            const std::vector<Vertex>& order, std::size_t depth, std::vector<Vertex>& map_ab,
            std::vector<bool>& used_b) {
  if (depth == order.size()) return true;
  const Vertex va = order[depth];
  for (const Vertex vb : candidates[va]) {
    if (used_b[vb]) continue;
    // Adjacency consistency with every already-mapped vertex.
    bool consistent = true;
    for (std::size_t i = 0; i < depth && consistent; ++i) {
      const Vertex ua = order[i];
      consistent = a.has_edge(va, ua) == b.has_edge(vb, map_ab[ua]);
    }
    if (!consistent) continue;
    map_ab[va] = vb;
    used_b[vb] = true;
    if (extend(a, b, candidates, order, depth + 1, map_ab, used_b)) return true;
    used_b[vb] = false;
  }
  return false;
}

}  // namespace

GraphInvariants graph_invariants(const Graph& g) {
  GraphInvariants inv;
  inv.n = g.num_vertices();
  inv.m = g.num_edges();
  inv.degree_sequence.reserve(inv.n);
  for (Vertex v = 0; v < inv.n; ++v) inv.degree_sequence.push_back(g.degree(v));
  std::sort(inv.degree_sequence.begin(), inv.degree_sequence.end());
  const DistanceMatrix dm(g);
  inv.distance_profiles.reserve(inv.n);
  for (Vertex v = 0; v < inv.n; ++v) {
    std::vector<Vertex> profile(dm.row(v).begin(), dm.row(v).end());
    std::sort(profile.begin(), profile.end());
    inv.distance_profiles.push_back(std::move(profile));
  }
  std::sort(inv.distance_profiles.begin(), inv.distance_profiles.end());
  return inv;
}

std::optional<std::vector<Vertex>> find_isomorphism(const Graph& a, const Graph& b) {
  const Vertex n = a.num_vertices();
  if (n != b.num_vertices() || a.num_edges() != b.num_edges()) return std::nullopt;
  if (n == 0) return std::vector<Vertex>{};

  const DistanceMatrix dma(a), dmb(b);
  const auto keys_a = vertex_keys(a, dma);
  const auto keys_b = vertex_keys(b, dmb);

  // Candidate lists per a-vertex: b-vertices with an identical key.
  std::vector<std::vector<Vertex>> candidates(n);
  for (Vertex va = 0; va < n; ++va) {
    for (Vertex vb = 0; vb < n; ++vb) {
      if (keys_a[va] == keys_b[vb]) candidates[va].push_back(vb);
    }
    if (candidates[va].empty()) return std::nullopt;
  }

  // Assign most-constrained vertices first.
  std::vector<Vertex> order(n);
  for (Vertex v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](Vertex x, Vertex y) {
    return candidates[x].size() < candidates[y].size();
  });

  std::vector<Vertex> map_ab(n, 0);
  std::vector<bool> used_b(n, false);
  if (extend(a, b, candidates, order, 0, map_ab, used_b)) return map_ab;
  return std::nullopt;
}

bool are_isomorphic(const Graph& a, const Graph& b) {
  return find_isomorphism(a, b).has_value();
}

}  // namespace bncg

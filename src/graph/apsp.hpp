// All-pairs shortest paths via n parallel BFS traversals.
//
// The distance matrix backs the analysis modules (metrics, distance
// uniformity) where every pairwise distance is needed at once. Storage is a
// flat 64-byte-aligned n×n array of 32-bit distances; computation runs on
// the process thread pool with one workspace per lane.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/dist_width.hpp"
#include "graph/graph.hpp"
#include "util/simd.hpp"

namespace bncg {

/// Dense all-pairs distance matrix (kInfDist for unreachable pairs).
class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// Computes all-pairs distances of `g` (n BFS runs, parallel over the
  /// process thread pool).
  explicit DistanceMatrix(const Graph& g);

  /// Number of vertices the matrix covers.
  [[nodiscard]] Vertex size() const noexcept { return n_; }

  /// d(u, v); kInfDist when unreachable.
  [[nodiscard]] Vertex at(Vertex u, Vertex v) const {
    BNCG_REQUIRE(u < n_ && v < n_, "vertex id out of range");
    return data_[static_cast<std::size_t>(u) * n_ + v];
  }

  /// Distance row of vertex `u` (view).
  [[nodiscard]] std::span<const Vertex> row(Vertex u) const {
    BNCG_REQUIRE(u < n_, "vertex id out of range");
    return {data_.data() + static_cast<std::size_t>(u) * n_, n_};
  }

  /// True iff every pair is reachable.
  [[nodiscard]] bool connected() const noexcept { return connected_; }

  /// Eccentricity of `u` (max entry of its row).
  [[nodiscard]] Vertex eccentricity(Vertex u) const;

  /// Σ_v d(u, v); only meaningful when connected().
  [[nodiscard]] std::uint64_t row_sum(Vertex u) const;

  /// Largest finite distance in the matrix (0 for n ≤ 1). The input to
  /// WidthAndBudgetPolicy::width_for_max_distance / policy_for_max_distance
  /// (core/dist_provider.hpp) — callers that already paid for a full matrix
  /// seed engine/state width policies from this instead of re-probing.
  [[nodiscard]] Vertex max_finite_distance() const noexcept;

  /// DEPRECATED (one PR): the pre-policy form of the width decision. Equals
  /// WidthAndBudgetPolicy::width_for_max_distance(max_finite_distance());
  /// new call sites should go through the policy so the dense-vs-budgeted
  /// storage decision rides along. Kept for the width fuzz suite, which
  /// uses it to engineer cap-adjacent instances.
  [[nodiscard]] DistWidth recommended_width() const noexcept;

 private:
  Vertex n_ = 0;
  bool connected_ = true;
  AlignedVec<Vertex> data_;
};

}  // namespace bncg

// All-pairs shortest paths via n parallel BFS traversals.
//
// The distance matrix backs the analysis modules (metrics, distance
// uniformity) where every pairwise distance is needed at once. Storage is a
// flat 64-byte-aligned n×n array of 32-bit distances; computation runs on
// the process thread pool with one workspace per lane.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bfs.hpp"
#include "graph/dist_width.hpp"
#include "graph/graph.hpp"
#include "util/simd.hpp"

namespace bncg {

/// Dense all-pairs distance matrix (kInfDist for unreachable pairs).
class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// Computes all-pairs distances of `g` (n BFS runs, parallel over the
  /// process thread pool).
  explicit DistanceMatrix(const Graph& g);

  /// Number of vertices the matrix covers.
  [[nodiscard]] Vertex size() const noexcept { return n_; }

  /// d(u, v); kInfDist when unreachable.
  [[nodiscard]] Vertex at(Vertex u, Vertex v) const {
    BNCG_REQUIRE(u < n_ && v < n_, "vertex id out of range");
    return data_[static_cast<std::size_t>(u) * n_ + v];
  }

  /// Distance row of vertex `u` (view).
  [[nodiscard]] std::span<const Vertex> row(Vertex u) const {
    BNCG_REQUIRE(u < n_, "vertex id out of range");
    return {data_.data() + static_cast<std::size_t>(u) * n_, n_};
  }

  /// True iff every pair is reachable.
  [[nodiscard]] bool connected() const noexcept { return connected_; }

  /// Eccentricity of `u` (max entry of its row).
  [[nodiscard]] Vertex eccentricity(Vertex u) const;

  /// Σ_v d(u, v); only meaningful when connected().
  [[nodiscard]] std::uint64_t row_sum(Vertex u) const;

  /// Narrowest capped-infinity storage width whose finite range covers
  /// every distance in this matrix (graph/dist_width.hpp): U8 when the
  /// largest finite distance fits the 8-bit cap, U16 otherwise. The exact
  /// oracle behind the engines' cheap BFS-bound width probes — callers
  /// that already paid for a full matrix can seed SwapEngine/SearchState
  /// width policies from it, and the width fuzz suite uses it to engineer
  /// cap-adjacent instances.
  [[nodiscard]] DistWidth recommended_width() const noexcept;

 private:
  Vertex n_ = 0;
  bool connected_ = true;
  AlignedVec<Vertex> data_;
};

}  // namespace bncg

// Blocked LRU distance-row cache — the memory layer behind the budgeted
// distance provider (core/dist_provider.hpp).
//
// The dense engines materialize a full n×n masked matrix per agent scan,
// which is the allocation that stops SwapEngine/SearchState cold at
// n = 10⁵–10⁶ (ROADMAP: million-node memory architecture). This cache keeps
// only the rows a scan actually touches, under an explicit byte budget:
//
//  * Storage is carved into fixed-size BLOCKS of `block_rows` row slots.
//    A block is an allocation arena, not an address range of sources — any
//    slot can hold any source's row, so scattered access patterns (neighbor
//    rows, far-set rows, surviving candidates) pack densely instead of
//    dragging in 64-aligned strangers.
//  * A miss materializes the row by exact BFS (`bfs_batch_capped`, the
//    positional twin of `csr_apsp_rows_capped`): misses queued by
//    prefetch() fill contiguous slots of one block in ≤ 64-source
//    bit-parallel batches, single-row misses via row() pay one queue
//    traversal. Exactness is inherited from the traversal kernels — the
//    cache never approximates, it only decides residency.
//  * Eviction is LRU at block granularity: when every block is full the
//    least-recently-touched block is recycled wholesale (its owners drop
//    out of the index). Block-level LRU keeps the metadata O(blocks) and
//    matches the scan access pattern, where rows fetched together die
//    together. With ≥ 2 blocks the most recently touched block is never
//    the victim, so the row pointer returned by the LAST row()/prefetch()
//    call stays valid until the next materializing call — the only
//    lifetime the scan loops in core/swap_engine.cpp need.
//  * Rows are keyed by (context, source): begin_context() invalidates the
//    index in O(1) via an epoch stamp whenever the snapshot or the masked
//    vertex changes, while the block storage itself is reused allocation-
//    free across contexts (one agent scan = one context).
//
// Width saturation follows the engine contract (graph/dist_width.hpp): a
// fill that meets a finite distance above `max_finite` reports failure and
// the caller redoes the scan at the wider width. Stats (hits / misses /
// evictions / peak bytes) feed bench_engine_json's row_cache section and
// the differential suite's thrash assertions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bfs_batch.hpp"
#include "graph/csr.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace bncg {

/// Residency counters of one RowCache. Cumulative across contexts until
/// reset_stats(); peak_bytes tracks the allocation high-water mark.
struct RowCacheStats {
  std::uint64_t hits = 0;        ///< row() calls served from a resident slot
  std::uint64_t misses = 0;      ///< rows materialized by BFS
  std::uint64_t evictions = 0;   ///< blocks recycled while holding live rows
  std::uint64_t contexts = 0;    ///< begin_context() calls (≈ agent scans)
  std::uint64_t peak_bytes = 0;  ///< high-water mark of block storage bytes
};

/// Fixed-budget cache of masked distance rows, one instantiation per
/// storage width (u8/u16). Not thread-safe: one cache per scan scratch.
template <typename Dist>
class RowCache {
 public:
  RowCache() = default;

  /// Sizes the cache for n-entry rows under `budget_bytes` of row storage.
  /// Blocks hold up to 64 rows (one bit-parallel batch) and shrink to fit
  /// small budgets; at least TWO blocks are always provisioned (the minimum
  /// for the pointer-stability guarantee above). Throws std::invalid_argument
  /// when the budget cannot hold even two single-row blocks — there is no
  /// smaller exact configuration to degrade to.
  void configure(Vertex n, std::uint64_t budget_bytes);

  /// Starts a new (snapshot, masked-vertex) context: resident rows of any
  /// previous context become invisible (O(1) epoch bump), storage is kept.
  /// The snapshot reference must outlive the context.
  void begin_context(const CsrGraph& g, Vertex masked_vertex, Dist inf_value, Dist max_finite);

  /// The distance row of `source` in the current context, materializing it
  /// on miss. Returns nullptr when the fill saturates the width (caller
  /// falls back to the wider width, exactly like a dense saturating sweep).
  /// The pointer is valid until the next row()/prefetch() call.
  [[nodiscard]] const Dist* row(Vertex source, BatchBfsWorkspace& ws);

  /// Materializes every missing row of `sources` in ≤ 64-source batches
  /// (cheaper than row()-at-a-time for clustered misses). False on width
  /// saturation. Prefetching more rows than the cache holds is allowed —
  /// later batches evict earlier ones; subsequent row() calls refetch.
  [[nodiscard]] bool prefetch(std::span<const Vertex> sources, BatchBfsWorkspace& ws);

  /// True when `source`'s row is resident in the current context — i.e. it
  /// was materialized and has not been evicted. Test/introspection hook for
  /// the prune-soundness suite ("rows never materialized never mattered").
  [[nodiscard]] bool resident(Vertex source) const;

  /// Every source with a resident row in the current context, ascending.
  [[nodiscard]] std::vector<Vertex> resident_sources() const;

  /// Every source MATERIALIZED in the current context, in fill order —
  /// unlike resident_sources() this survives eviction, so it is the exact
  /// "rows the scan ever looked at" set the prune-soundness suite
  /// complements ("rows never filled never mattered").
  [[nodiscard]] const std::vector<Vertex>& context_filled() const noexcept { return filled_; }

  [[nodiscard]] const RowCacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = RowCacheStats{}; }

  /// Rows per block / block count actually provisioned (post-configure).
  [[nodiscard]] Vertex block_rows() const noexcept { return block_rows_; }
  [[nodiscard]] std::size_t max_blocks() const noexcept { return max_blocks_; }
  [[nodiscard]] std::uint64_t budget_bytes() const noexcept { return budget_; }

 private:
  struct Block {
    AlignedVec<Dist> data;        // block_rows_ × n row slots
    std::vector<Vertex> owners;   // source of each used slot
    std::uint64_t last_touch = 0; // LRU clock value of the latest access
    Vertex used = 0;              // slots filled in the current context
  };

  /// Block with a free slot, allocating/evicting as needed; marks it MRU.
  [[nodiscard]] std::size_t writable_block();
  void touch(std::size_t block) { blocks_[block].last_touch = ++clock_; }
  [[nodiscard]] bool fill_batch(std::span<const Vertex> sources, BatchBfsWorkspace& ws);

  const CsrGraph* csr_ = nullptr;
  Vertex masked_vertex_ = kNoVertex;
  Dist inf_value_ = 0;
  Dist max_finite_ = 0;

  Vertex n_ = 0;
  Vertex block_rows_ = 0;
  std::size_t max_blocks_ = 0;
  std::uint64_t budget_ = 0;

  std::vector<Block> blocks_;
  std::uint64_t clock_ = 0;

  // Source → (block, slot) index, valid iff stamp_[source] == epoch_.
  std::vector<std::uint32_t> slot_block_;
  std::vector<std::uint32_t> slot_index_;
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;

  std::vector<Vertex> missing_;  // prefetch scratch
  std::vector<Vertex> filled_;   // sources materialized this context

  RowCacheStats stats_;
};

extern template class RowCache<std::uint8_t>;
extern template class RowCache<std::uint16_t>;

}  // namespace bncg

// Subgraph operations: induced subgraphs, vertex deletion, and the
// components-of-G−v decomposition that Lemma 3 of the paper reasons about.
#pragma once

#include <vector>

#include "graph/connectivity.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Induced subgraph on `keep` (ids are remapped to 0..keep.size()−1 in the
/// order given). Vertices must be distinct and in range.
[[nodiscard]] Graph induced_subgraph(const Graph& g, const std::vector<Vertex>& keep);

/// G − v: the graph with vertex v deleted (ids above v shift down by one).
[[nodiscard]] Graph remove_vertex(const Graph& g, Vertex v);

/// The connected components of G − v, each as a sorted list of *original*
/// vertex ids (v excluded). The decomposition behind Lemma 3: in a max
/// equilibrium, at most one component may contain a vertex at distance > 1
/// from v.
[[nodiscard]] std::vector<std::vector<Vertex>> components_without(const Graph& g, Vertex v);

/// Lemma 3 predicate: true iff at most one connected component of G − v
/// contains a vertex at distance more than 1 from v (distances in G).
[[nodiscard]] bool lemma3_cut_vertex_property(const Graph& g, Vertex v);

}  // namespace bncg

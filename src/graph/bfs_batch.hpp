// Batched bit-parallel BFS over CSR snapshots.
//
// The certifiers need *all* distance rows of G − vw for every edge vw the
// swapping agent might abandon — that is an APSP per tentative removal. A
// queue BFS per source wastes the fact that the 64-bit datapath can carry
// one frontier bit per source: `bfs_batch` runs up to 64 sources at once,
// level-synchronously, propagating a 64-bit "which sources have reached this
// vertex" word along each edge with a single OR. Per level the work is one
// word-OR per touched edge, so a full APSP costs ⌈n/64⌉ sweeps of O(m·levels)
// word operations instead of n pointer-chasing traversals.
//
// On very sparse graphs (forests and near-forests) frontiers are thin and
// distances spread out, so each vertex re-enters the frontier many times and
// the word-parallelism stops paying; `bfs_batch` then falls back to one
// cache-friendly queue BFS per source (`csr_bfs`). The cutoffs were measured
// on random G(n, m); see DESIGN.md §"Cost model".
//
// Distances are written as 16-bit values (kInfDist16 = unreachable), which
// halves APSP bandwidth; graphs must therefore have n < 65535. The wide
// (32-bit) entry point `csr_apsp_wide` backs DistanceMatrix without that
// restriction on its output type.
//
// Every kernel is one template family over the distance storage type; the
// width-adaptive entry points (`csr_apsp_capped`, `csr_apsp_rows_capped`)
// expose the u8/u16 instantiations with an explicit capped infinity and
// *saturation detection*: a traversal that would have to write a finite
// distance above `max_finite` reports failure instead of writing a wrapped
// or aliased value, which is what lets core/swap_engine fall back per agent
// and core/search_state promote u8 → u16 mid-run (graph/dist_width.hpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bfs.hpp"  // BfsResult, kInfDist
#include "graph/csr.hpp"
#include "graph/dist_width.hpp"

namespace bncg {

/// 16-bit distance sentinel for unreachable vertices.
inline constexpr std::uint16_t kInfDist16 = 0xFFFF;

/// Scratch buffers for batched traversals; reuse across calls (one per
/// thread — not thread-safe).
class BatchBfsWorkspace {
 public:
  friend struct BatchBfsAccess;

 private:
  std::vector<std::uint64_t> cur_;      // frontier bits per vertex
  std::vector<std::uint64_t> next_;     // next-level bits per vertex
  std::vector<std::uint64_t> visited_;  // settled bits per vertex
  std::vector<Vertex> queue_;           // queue-BFS fallback
  std::vector<std::uint16_t> rows16_;   // staging rows for csr_apsp_rows*
  std::vector<std::uint8_t> rows8_;     // u8 staging (csr_apsp_rows_capped)
  std::vector<Vertex> frontier_;        // thin-level push lists (bitparallel)
  std::vector<Vertex> touched_;
  std::vector<Vertex> spare_;
  std::vector<std::uint32_t> stamp_;    // first-touch level stamps (push mode)
};

/// Single-source queue BFS over the snapshot, skipping `mask` if active and
/// the vertex `masked_vertex` (all its incident edges) if given. Writes
/// exact 16-bit distances into dist[0..n) and returns the aggregates
/// (dist_sum / ecc / reached) of the traversal. O(n + m). When src is the
/// masked vertex the row is all-∞ (the vertex is simply absent).
BfsResult csr_bfs(const CsrGraph& g, Vertex src, MaskedEdge mask, std::uint16_t* dist,
                  BatchBfsWorkspace& ws, Vertex masked_vertex = kNoVertex);

/// Multi-source BFS from ≤64 distinct sources, skipping `mask` if active
/// and `masked_vertex` if given. Row i receives the distances from
/// sources[i]: rows[i·stride + x] = d(sources[i], x), kInfDist16 when
/// unreachable. Chooses bit-parallel or per-source queue traversal based on
/// batch size and graph density.
void bfs_batch(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
               std::uint16_t* rows, std::size_t stride, BatchBfsWorkspace& ws,
               Vertex masked_vertex = kNoVertex);

/// Width-adaptive positional batch: like `bfs_batch`, but row *i* (the
/// position within `sources`, NOT the source id) receives the distances,
/// stored as `Dist` with the same saturation contract as
/// `csr_apsp_rows_capped` — false (row contents unspecified) the moment a
/// finite distance would exceed `max_finite`. This is the miss-fill
/// primitive of graph/row_cache.hpp, whose cache slots hold rows of
/// arbitrary sources, so the id-indexed entry points cannot serve it.
/// Deliberately NOT restricted to n < 65535: saturation detection is the
/// bound — levels are tracked in Vertex width, so a distance the encoding
/// cannot represent reports failure instead of wrapping, which is what lets
/// the budgeted row provider run u16 scans on million-node instances whose
/// masked diameters stay under the cap. ≤ 64 sources per call.
template <typename Dist>
[[nodiscard]] bool bfs_batch_capped(const CsrGraph& g, std::span<const Vertex> sources,
                                    MaskedEdge mask, Dist* rows, std::size_t stride,
                                    BatchBfsWorkspace& ws, Vertex masked_vertex, Dist inf_value,
                                    Dist max_finite);

/// All-pairs shortest paths of the (masked) snapshot into an n×n row-major
/// 16-bit matrix: rows[v·n + x] = d(v, x). Serial; callers parallelize over
/// higher-level work units (agents, removed edges). Masking a vertex yields
/// the APSP of G − v (the swap engine's per-agent primitive: every
/// post-swap distance of agent v decomposes over d_{G−v}).
void csr_apsp(const CsrGraph& g, MaskedEdge mask, std::uint16_t* rows, BatchBfsWorkspace& ws,
              Vertex masked_vertex = kNoVertex);

/// All-pairs shortest paths into an n×n 32-bit matrix (kInfDist sentinel),
/// OpenMP-parallel over source batches. Returns true iff every pair is
/// reachable. Backs DistanceMatrix.
bool csr_apsp_wide(const CsrGraph& g, Vertex* rows);

/// Selective row refresh: recomputes the distance row of every source in
/// `sources` (arbitrary, need not be contiguous) inside an n-stride matrix,
/// writing row s at matrix[s·stride .. s·stride + n). The backbone of the
/// incremental search state's dirty-row maintenance: after an edge toggle,
/// only rows whose shortest-path DAG used the toggled edge are re-traversed,
/// the rest are kept. Sources are processed through `bfs_batch` in ≤64-source
/// groups; unreachable entries are written as `inf_value`, which lets callers
/// with an overflow-free capped-infinity encoding (e.g. core/search_state)
/// stay inside their representation. Precondition: inf_value ≥ n.
void csr_apsp_rows(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
                   std::uint16_t* matrix, std::size_t stride, BatchBfsWorkspace& ws,
                   Vertex masked_vertex = kNoVertex, std::uint16_t inf_value = kInfDist16);

/// Width-adaptive all-pairs shortest paths with saturation detection: like
/// `csr_apsp`, but distances are stored as `Dist` with `inf_value` written
/// for unreachable (and masked) entries. Returns false — with unspecified
/// matrix contents — as soon as some *finite* distance exceeds `max_finite`,
/// i.e. the instance does not fit the width's capped-infinity encoding.
/// Preconditions: max_finite < inf_value. Instantiated for u8 and u16.
template <typename Dist>
[[nodiscard]] bool csr_apsp_capped(const CsrGraph& g, MaskedEdge mask, Dist* rows,
                                   BatchBfsWorkspace& ws, Vertex masked_vertex,
                                   Dist inf_value, Dist max_finite);

/// Width-adaptive selective row refresh (`csr_apsp_rows` semantics) with the
/// same saturation contract as `csr_apsp_capped`. On a false return the
/// matrix rows already refreshed hold unspecified values — callers discard
/// the whole narrow structure (engine fallback / search-state promotion).
/// Instantiated for u8 and u16.
template <typename Dist>
[[nodiscard]] bool csr_apsp_rows_capped(const CsrGraph& g, std::span<const Vertex> sources,
                                        MaskedEdge mask, Dist* matrix, std::size_t stride,
                                        BatchBfsWorkspace& ws, Vertex masked_vertex,
                                        Dist inf_value, Dist max_finite);

}  // namespace bncg

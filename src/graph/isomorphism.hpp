// Graph isomorphism testing for small instances.
//
// Used to deduplicate equilibria found by the search module and to verify
// construction identities (e.g. that two builds of the same family coincide
// up to relabeling). The algorithm is invariant-pruned backtracking:
// vertices are partitioned by (degree, sorted neighbor-degree multiset,
// distance profile) and a bijection is grown only within matching classes.
// Exact; practical to n ≈ 30 on the instances in this library.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace bncg {

/// Cheap isomorphism invariants; equality is necessary (not sufficient).
struct GraphInvariants {
  Vertex n = 0;
  std::size_t m = 0;
  std::vector<Vertex> degree_sequence;          ///< sorted
  std::vector<std::vector<Vertex>> distance_profiles;  ///< sorted per vertex, then sorted

  friend bool operator==(const GraphInvariants&, const GraphInvariants&) = default;
};

/// Computes the invariants of `g` (one APSP pass).
[[nodiscard]] GraphInvariants graph_invariants(const Graph& g);

/// Exact isomorphism decision. Exponential worst case; intended for n ≤ ~30.
[[nodiscard]] bool are_isomorphic(const Graph& a, const Graph& b);

/// If isomorphic, returns a mapping p with p[v_a] = v_b realizing it.
[[nodiscard]] std::optional<std::vector<Vertex>> find_isomorphism(const Graph& a, const Graph& b);

}  // namespace bncg

#include "graph/bfs.hpp"

#include <algorithm>

namespace bncg {

void BfsWorkspace::prepare(Vertex n) {
  dist_.assign(n, kInfDist);
  queue_.clear();
  queue_.reserve(n);
}

/// Grants the free functions access to workspace internals without exposing
/// mutable buffers in the public interface.
struct BfsAccess {
  static std::vector<Vertex>& dist(BfsWorkspace& ws) { return ws.dist_; }
  static std::vector<Vertex>& queue(BfsWorkspace& ws) { return ws.queue_; }
};

namespace {

BfsResult bfs_impl(const Graph& g, Vertex src, Vertex limit, BfsWorkspace& ws) {
  g.check_vertex(src);
  const Vertex n = g.num_vertices();
  ws.prepare(n);
  auto& dist = BfsAccess::dist(ws);
  auto& queue = BfsAccess::queue(ws);

  dist[src] = 0;
  queue.push_back(src);
  BfsResult result;
  result.reached = 1;

  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    const Vertex du = dist[u];
    result.dist_sum += du;
    result.ecc = std::max(result.ecc, du);
    if (du == limit) continue;  // frontier truncation
    for (const Vertex w : g.neighbors(u)) {
      if (dist[w] != kInfDist) continue;
      dist[w] = du + 1;
      queue.push_back(w);
      ++result.reached;
    }
  }
  return result;
}

}  // namespace

BfsResult bfs(const Graph& g, Vertex src, BfsWorkspace& ws) {
  return bfs_impl(g, src, kInfDist, ws);
}

BfsResult bfs_bounded(const Graph& g, Vertex src, Vertex limit, BfsWorkspace& ws) {
  return bfs_impl(g, src, limit, ws);
}

Vertex distance(const Graph& g, Vertex u, Vertex v, BfsWorkspace& ws) {
  g.check_vertex(u);
  g.check_vertex(v);
  if (u == v) return 0;
  const Vertex n = g.num_vertices();
  ws.prepare(n);
  auto& dist = BfsAccess::dist(ws);
  auto& queue = BfsAccess::queue(ws);
  dist[u] = 0;
  queue.push_back(u);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex x = queue[head];
    for (const Vertex w : g.neighbors(x)) {
      if (dist[w] != kInfDist) continue;
      dist[w] = dist[x] + 1;
      if (w == v) return dist[w];  // early exit on target
      queue.push_back(w);
    }
  }
  return kInfDist;
}

std::vector<Vertex> distances_from(const Graph& g, Vertex src) {
  BfsWorkspace ws;
  bfs(g, src, ws);
  return ws.dist();
}

std::uint64_t distance_sum_from(const Graph& g, Vertex src) {
  BfsWorkspace ws;
  return bfs(g, src, ws).dist_sum;
}

Vertex eccentricity(const Graph& g, Vertex src) {
  BfsWorkspace ws;
  return bfs(g, src, ws).ecc;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  BfsWorkspace ws;
  return bfs(g, 0, ws).spans(g.num_vertices());
}

}  // namespace bncg

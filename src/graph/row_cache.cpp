#include "graph/row_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace bncg {

template <typename Dist>
void RowCache<Dist>::configure(Vertex n, std::uint64_t budget_bytes) {
  n_ = n;
  budget_ = budget_bytes;
  const std::uint64_t row_bytes = std::uint64_t{n} * sizeof(Dist);
  if (row_bytes == 0) {
    // Degenerate n = 0 instance: rows are empty, any budget works.
    block_rows_ = 64;
    max_blocks_ = 2;
  } else {
    // One bit-parallel batch per block when the budget allows; shrink the
    // block (never below one row) before shrinking the two-block floor that
    // the pointer-stability guarantee rests on.
    block_rows_ = 64;
    if (2 * std::uint64_t{block_rows_} * row_bytes > budget_bytes) {
      block_rows_ = static_cast<Vertex>(budget_bytes / (2 * row_bytes));
    }
    if (block_rows_ == 0) {
      throw std::invalid_argument(
          "row cache budget too small: needs at least two single-row blocks (" +
          std::to_string(2 * row_bytes) + " bytes at n = " + std::to_string(n) + ")");
    }
    max_blocks_ = std::max<std::size_t>(
        2, static_cast<std::size_t>(budget_bytes / (std::uint64_t{block_rows_} * row_bytes)));
  }
  blocks_.clear();
  filled_.clear();
  clock_ = 0;
  epoch_ = 0;
  slot_block_.assign(n, 0);
  slot_index_.assign(n, 0);
  stamp_.assign(n, 0);
  csr_ = nullptr;
}

template <typename Dist>
void RowCache<Dist>::begin_context(const CsrGraph& g, Vertex masked_vertex, Dist inf_value,
                                   Dist max_finite) {
  BNCG_REQUIRE(g.num_vertices() == n_, "row cache configured for a different instance size");
  BNCG_REQUIRE(max_finite < inf_value, "max_finite must stay below inf_value");
  csr_ = &g;
  masked_vertex_ = masked_vertex;
  inf_value_ = inf_value;
  max_finite_ = max_finite;
  ++epoch_;
  for (Block& b : blocks_) b.used = 0;  // storage kept, residency dropped
  filled_.clear();
  ++stats_.contexts;
}

template <typename Dist>
std::size_t RowCache<Dist>::writable_block() {
  // Current fill block: the most recently touched block with a free slot.
  std::size_t fill = blocks_.size();
  for (std::size_t b = 0; b < blocks_.size(); ++b) {
    if (blocks_[b].used < block_rows_ &&
        (fill == blocks_.size() || blocks_[b].last_touch > blocks_[fill].last_touch)) {
      fill = b;
    }
  }
  if (fill != blocks_.size()) return fill;

  if (blocks_.size() < max_blocks_) {
    blocks_.emplace_back();
    Block& b = blocks_.back();
    b.data.resize(static_cast<std::size_t>(block_rows_) * n_);
    b.owners.assign(block_rows_, kNoVertex);
    const std::uint64_t bytes =
        blocks_.size() * std::uint64_t{block_rows_} * n_ * sizeof(Dist);
    stats_.peak_bytes = std::max(stats_.peak_bytes, bytes);
    return blocks_.size() - 1;
  }

  // All blocks full: recycle the least-recently-touched one. With ≥ 2
  // blocks this is never the block of the last returned row pointer.
  std::size_t victim = 0;
  for (std::size_t b = 1; b < blocks_.size(); ++b) {
    if (blocks_[b].last_touch < blocks_[victim].last_touch) victim = b;
  }
  Block& v = blocks_[victim];
  if (v.used > 0) ++stats_.evictions;
  for (Vertex s = 0; s < v.used; ++s) {
    const Vertex owner = v.owners[s];
    if (owner != kNoVertex && stamp_[owner] == epoch_ &&
        slot_block_[owner] == static_cast<std::uint32_t>(victim)) {
      stamp_[owner] = 0;  // drop from the index; storage is recycled below
    }
  }
  v.used = 0;
  return victim;
}

template <typename Dist>
bool RowCache<Dist>::fill_batch(std::span<const Vertex> sources, BatchBfsWorkspace& ws) {
  BNCG_REQUIRE(csr_ != nullptr, "row cache used before begin_context");
  std::size_t done = 0;
  while (done < sources.size()) {
    const std::size_t block_id = writable_block();
    Block& block = blocks_[block_id];
    const std::size_t chunk = std::min<std::size_t>(
        {sources.size() - done, static_cast<std::size_t>(block_rows_ - block.used), 64});
    const std::span<const Vertex> group = sources.subspan(done, chunk);
    Dist* base = block.data.data() + static_cast<std::size_t>(block.used) * n_;
    if (!bfs_batch_capped<Dist>(*csr_, group, MaskedEdge{}, base, n_, ws, masked_vertex_,
                                inf_value_, max_finite_)) {
      return false;  // saturated: rows unspecified, nothing registered
    }
    for (std::size_t i = 0; i < chunk; ++i) {
      const Vertex src = group[i];
      const std::uint32_t slot = block.used + static_cast<std::uint32_t>(i);
      block.owners[slot] = src;
      slot_block_[src] = static_cast<std::uint32_t>(block_id);
      slot_index_[src] = slot;
      stamp_[src] = epoch_;
    }
    block.used += static_cast<Vertex>(chunk);
    filled_.insert(filled_.end(), group.begin(), group.end());
    stats_.misses += chunk;
    touch(block_id);
    done += chunk;
  }
  return true;
}

template <typename Dist>
const Dist* RowCache<Dist>::row(Vertex source, BatchBfsWorkspace& ws) {
  BNCG_REQUIRE(source < n_, "vertex id out of range");
  if (stamp_[source] == epoch_ && epoch_ != 0) {
    ++stats_.hits;
    const std::size_t b = slot_block_[source];
    touch(b);
    return blocks_[b].data.data() + static_cast<std::size_t>(slot_index_[source]) * n_;
  }
  const Vertex one[1] = {source};
  if (!fill_batch(std::span<const Vertex>(one, 1), ws)) return nullptr;
  const std::size_t b = slot_block_[source];
  return blocks_[b].data.data() + static_cast<std::size_t>(slot_index_[source]) * n_;
}

template <typename Dist>
bool RowCache<Dist>::prefetch(std::span<const Vertex> sources, BatchBfsWorkspace& ws) {
  missing_.clear();
  for (const Vertex s : sources) {
    BNCG_REQUIRE(s < n_, "vertex id out of range");
    if (stamp_[s] != epoch_ || epoch_ == 0) missing_.push_back(s);
  }
  if (missing_.empty()) return true;
  return fill_batch(missing_, ws);
}

template <typename Dist>
bool RowCache<Dist>::resident(Vertex source) const {
  return source < n_ && epoch_ != 0 && stamp_[source] == epoch_;
}

template <typename Dist>
std::vector<Vertex> RowCache<Dist>::resident_sources() const {
  std::vector<Vertex> out;
  for (const Block& b : blocks_) {
    for (Vertex s = 0; s < b.used; ++s) {
      const Vertex owner = b.owners[s];
      if (owner != kNoVertex && stamp_[owner] == epoch_ && epoch_ != 0) out.push_back(owner);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

template class RowCache<std::uint8_t>;
template class RowCache<std::uint16_t>;

}  // namespace bncg

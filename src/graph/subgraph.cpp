#include "graph/subgraph.hpp"

#include <algorithm>

#include "graph/bfs.hpp"

namespace bncg {

Graph induced_subgraph(const Graph& g, const std::vector<Vertex>& keep) {
  std::vector<Vertex> remap(g.num_vertices(), kInfDist);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    g.check_vertex(keep[i]);
    BNCG_REQUIRE(remap[keep[i]] == kInfDist, "duplicate vertex in keep list");
    remap[keep[i]] = static_cast<Vertex>(i);
  }
  Graph result(static_cast<Vertex>(keep.size()));
  for (const Vertex v : keep) {
    for (const Vertex w : g.neighbors(v)) {
      if (remap[w] != kInfDist && remap[v] < remap[w]) result.add_edge(remap[v], remap[w]);
    }
  }
  return result;
}

Graph remove_vertex(const Graph& g, Vertex v) {
  g.check_vertex(v);
  std::vector<Vertex> keep;
  keep.reserve(g.num_vertices() - 1);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    if (u != v) keep.push_back(u);
  }
  return induced_subgraph(g, keep);
}

std::vector<std::vector<Vertex>> components_without(const Graph& g, Vertex v) {
  g.check_vertex(v);
  const Vertex n = g.num_vertices();
  std::vector<Vertex> label(n, kInfDist);
  label[v] = n;  // sentinel: excluded
  std::vector<std::vector<Vertex>> components;
  std::vector<Vertex> stack;
  for (Vertex start = 0; start < n; ++start) {
    if (label[start] != kInfDist) continue;
    std::vector<Vertex> component;
    label[start] = static_cast<Vertex>(components.size());
    stack.push_back(start);
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      component.push_back(u);
      for (const Vertex w : g.neighbors(u)) {
        if (w == v || label[w] != kInfDist) continue;
        label[w] = label[start];
        stack.push_back(w);
      }
    }
    std::sort(component.begin(), component.end());
    components.push_back(std::move(component));
  }
  return components;
}

bool lemma3_cut_vertex_property(const Graph& g, Vertex v) {
  BfsWorkspace ws;
  (void)bfs(g, v, ws);
  const std::vector<Vertex>& dist = ws.dist();
  int deep_components = 0;
  for (const auto& component : components_without(g, v)) {
    const bool deep = std::any_of(component.begin(), component.end(),
                                  [&](Vertex x) { return dist[x] > 1; });
    deep_components += deep;
  }
  return deep_components <= 1;
}

}  // namespace bncg

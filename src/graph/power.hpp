// Graph powers: G^x connects u, v whenever d_G(u, v) ≤ x.
//
// The power construction is the final step of Theorem 13: taking the x-th
// power of a sum-equilibrium graph for x = Θ(lg n) (or Θ(lg² n)) coalesces
// the dominant distance band onto one or two values, yielding a distance-
// (almost-)uniform graph whose diameter is ⌈d/x⌉.
#pragma once

#include "graph/apsp.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Returns G^x. Precondition: x ≥ 1. O(n²) after APSP.
[[nodiscard]] Graph power(const Graph& g, Vertex x);

/// Same, reusing a precomputed distance matrix of g.
[[nodiscard]] Graph power(const DistanceMatrix& dm, Vertex x);

/// The smallest prime p ≤ bound such that no multiple of p lies in the
/// closed interval [lo, hi]; returns 0 when none exists. This realizes the
/// number-theoretic step in Theorem 13's distance-uniform (single value r)
/// refinement: a power x with no multiple inside the distance band maps the
/// whole band to one value.
[[nodiscard]] Vertex prime_avoiding_interval(Vertex lo, Vertex hi, Vertex bound);

}  // namespace bncg

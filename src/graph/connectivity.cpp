#include "graph/connectivity.hpp"

#include <algorithm>
#include <tuple>

#include "graph/bfs.hpp"

namespace bncg {

Components connected_components(const Graph& g) {
  const Vertex n = g.num_vertices();
  Components comps;
  comps.label.assign(n, kInfDist);
  std::vector<Vertex> stack;
  for (Vertex start = 0; start < n; ++start) {
    if (comps.label[start] != kInfDist) continue;
    const Vertex id = comps.count++;
    comps.label[start] = id;
    stack.push_back(start);
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      for (const Vertex w : g.neighbors(u)) {
        if (comps.label[w] == kInfDist) {
          comps.label[w] = id;
          stack.push_back(w);
        }
      }
    }
  }
  return comps;
}

namespace {

/// Shared iterative lowlink DFS computing discovery and low times.
/// Calls `on_articulation(v)` / `on_bridge(u, v)` as they are found.
template <typename ArtFn, typename BridgeFn>
void lowlink_dfs(const Graph& g, ArtFn on_articulation, BridgeFn on_bridge) {
  const Vertex n = g.num_vertices();
  constexpr Vertex kUnvisited = kInfDist;
  std::vector<Vertex> disc(n, kUnvisited);
  std::vector<Vertex> low(n, 0);
  std::vector<Vertex> parent(n, kUnvisited);
  std::vector<Vertex> root_children(n, 0);
  std::vector<bool> articulation(n, false);

  // Explicit stack: (vertex, index into neighbor list).
  struct Frame {
    Vertex v;
    std::size_t next;
  };
  std::vector<Frame> stack;
  Vertex time = 0;

  for (Vertex root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    disc[root] = low[root] = time++;
    stack.push_back({root, 0});
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const Vertex v = frame.v;
      const auto nbrs = g.neighbors(v);
      if (frame.next < nbrs.size()) {
        const Vertex w = nbrs[frame.next++];
        if (disc[w] == kUnvisited) {
          parent[w] = v;
          if (v == root) ++root_children[root];
          disc[w] = low[w] = time++;
          stack.push_back({w, 0});
        } else if (w != parent[v]) {
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        stack.pop_back();
        const Vertex p = parent[v];
        if (p != kUnvisited) {
          low[p] = std::min(low[p], low[v]);
          if (low[v] > disc[p]) on_bridge(std::min(p, v), std::max(p, v));
          if (p != root && low[v] >= disc[p]) articulation[p] = true;
        }
      }
    }
    if (root_children[root] >= 2) articulation[root] = true;
  }
  for (Vertex v = 0; v < n; ++v) {
    if (articulation[v]) on_articulation(v);
  }
}

}  // namespace

std::vector<Vertex> articulation_points(const Graph& g) {
  std::vector<Vertex> result;
  lowlink_dfs(
      g, [&](Vertex v) { result.push_back(v); }, [](Vertex, Vertex) {});
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<Edge> bridges(const Graph& g) {
  std::vector<Edge> result;
  lowlink_dfs(
      g, [](Vertex) {}, [&](Vertex u, Vertex v) { result.push_back({u, v}); });
  std::sort(result.begin(), result.end(),
            [](const Edge& a, const Edge& b) { return std::tie(a.u, a.v) < std::tie(b.u, b.v); });
  return result;
}

bool is_bridge(const Graph& g, Vertex u, Vertex v) {
  BNCG_REQUIRE(g.has_edge(u, v), "is_bridge requires an existing edge");
  // Remove, test reachability, restore. The graph is passed by const&, so
  // work on a copy only of what is needed: a local mutable copy is simplest
  // and this predicate is not on the hot path (the game engine detects
  // disconnection through the BFS reach count instead).
  Graph h = g;
  h.remove_edge(u, v);
  BfsWorkspace ws;
  return distance(h, u, v, ws) == kInfDist;
}

}  // namespace bncg

// Breadth-first search primitives.
//
// BFS is the innermost loop of the whole library: evaluating one candidate
// edge swap costs one BFS, and the certifiers/dynamics evaluate millions of
// them. The entry points therefore take an explicit BfsWorkspace so that the
// distance array and queue are allocated once per thread and reused
// (allocation-free steady state), per the performance guidance of the C++
// Core Guidelines (Per.* rules).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/graph.hpp"

namespace bncg {

/// Distance value for unreachable vertices.
inline constexpr Vertex kInfDist = std::numeric_limits<Vertex>::max();

/// Scratch buffers for BFS; reuse across calls to avoid allocation.
/// Not thread-safe: use one workspace per thread.
class BfsWorkspace {
 public:
  /// Per-vertex distances from the most recent traversal (kInfDist when
  /// unreached). Valid until the next call that takes this workspace.
  [[nodiscard]] const std::vector<Vertex>& dist() const noexcept { return dist_; }

  /// Grows internal buffers for graphs of `n` vertices and resets distances.
  void prepare(Vertex n);

  friend struct BfsAccess;

 private:
  std::vector<Vertex> dist_;
  std::vector<Vertex> queue_;
};

/// Aggregate facts from one single-source traversal.
struct BfsResult {
  /// Σ_u d(src, u) over *reached* u. Meaningless for the game when the graph
  /// is disconnected — check `reached` (usage cost is +∞ then).
  std::uint64_t dist_sum = 0;
  /// max_u d(src, u) over reached u (the local diameter of src if connected).
  Vertex ecc = 0;
  /// Number of vertices reached, including the source.
  Vertex reached = 0;

  /// True iff the traversal reached all `n` vertices.
  [[nodiscard]] bool spans(Vertex n) const noexcept { return reached == n; }
};

/// Full BFS from `src`; fills `ws.dist()` and returns aggregates. O(n + m).
BfsResult bfs(const Graph& g, Vertex src, BfsWorkspace& ws);

/// BFS truncated at distance `limit` (inclusive): vertices farther than
/// `limit` keep kInfDist. Aggregates cover the truncated ball only.
BfsResult bfs_bounded(const Graph& g, Vertex src, Vertex limit, BfsWorkspace& ws);

/// Distance between two vertices with bidirectional early exit semantics
/// (plain early-exit BFS; returns kInfDist when disconnected).
[[nodiscard]] Vertex distance(const Graph& g, Vertex u, Vertex v, BfsWorkspace& ws);

/// Convenience wrappers (own a temporary workspace; prefer the workspace
/// overloads in hot loops).
[[nodiscard]] std::vector<Vertex> distances_from(const Graph& g, Vertex src);
[[nodiscard]] std::uint64_t distance_sum_from(const Graph& g, Vertex src);
[[nodiscard]] Vertex eccentricity(const Graph& g, Vertex src);
[[nodiscard]] bool is_connected(const Graph& g);

}  // namespace bncg

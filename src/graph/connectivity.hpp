// Connectivity structure: components, articulation points (cut vertices),
// and bridges via Tarjan's lowlink DFS.
//
// Lemma 3 of the paper constrains cut vertices of max-equilibrium graphs;
// the tests exercise that property through this module. Bridges also matter
// to the game engine: deleting a bridge disconnects the graph, which the
// usage costs treat as +∞.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace bncg {

/// Connected components: result[v] = component id in [0, count).
struct Components {
  std::vector<Vertex> label;
  Vertex count = 0;
};

/// Labels connected components with consecutive ids (BFS flood fill).
[[nodiscard]] Components connected_components(const Graph& g);

/// Cut vertices (articulation points), sorted ascending. Iterative Tarjan.
[[nodiscard]] std::vector<Vertex> articulation_points(const Graph& g);

/// Bridge edges (u < v), sorted lexicographically. Iterative Tarjan.
[[nodiscard]] std::vector<Edge> bridges(const Graph& g);

/// True iff removing edge {u, v} disconnects its endpoints.
[[nodiscard]] bool is_bridge(const Graph& g, Vertex u, Vertex v);

}  // namespace bncg

#include "graph/csr.hpp"

#include <algorithm>

namespace bncg {

void CsrGraph::rebuild(const Graph& g) {
  n_ = g.num_vertices();
  offsets_.resize(static_cast<std::size_t>(n_) + 1);
  targets_.resize(2 * g.num_edges());

  std::uint32_t cursor = 0;
  for (Vertex v = 0; v < n_; ++v) {
    offsets_[v] = cursor;
    const auto nbrs = g.neighbors(v);  // already sorted by Graph's invariant
    std::copy(nbrs.begin(), nbrs.end(), targets_.begin() + cursor);
    cursor += static_cast<std::uint32_t>(nbrs.size());
  }
  offsets_[n_] = cursor;
}

bool CsrGraph::has_edge(Vertex v, Vertex w) const {
  const auto nbrs = neighbors(v);
  return std::binary_search(nbrs.begin(), nbrs.end(), w);
}

}  // namespace bncg

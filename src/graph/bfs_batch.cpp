#include "graph/bfs_batch.hpp"

#include "util/simd.hpp"
#include "util/thread_pool.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <type_traits>

namespace bncg {

/// Grants the traversal kernels access to workspace internals without
/// exposing mutable buffers in the public interface (mirrors BfsAccess).
struct BatchBfsAccess {
  static std::vector<std::uint64_t>& cur(BatchBfsWorkspace& ws) { return ws.cur_; }
  static std::vector<std::uint64_t>& next(BatchBfsWorkspace& ws) { return ws.next_; }
  static std::vector<std::uint64_t>& visited(BatchBfsWorkspace& ws) { return ws.visited_; }
  static std::vector<Vertex>& queue(BatchBfsWorkspace& ws) { return ws.queue_; }
  static std::vector<Vertex>& frontier(BatchBfsWorkspace& ws) { return ws.frontier_; }
  static std::vector<Vertex>& touched(BatchBfsWorkspace& ws) { return ws.touched_; }
  static std::vector<Vertex>& spare(BatchBfsWorkspace& ws) { return ws.spare_; }
  static std::vector<std::uint32_t>& stamp(BatchBfsWorkspace& ws) { return ws.stamp_; }
  template <typename Dist>
  static std::vector<Dist>& staging(BatchBfsWorkspace& ws) {
    if constexpr (std::is_same_v<Dist, std::uint8_t>) {
      return ws.rows8_;
    } else {
      return ws.rows16_;
    }
  }
};

namespace {

/// Plain queue BFS over the snapshot (the sparse / tiny-batch fallback).
/// Writes `inf_value` for unreachable entries and exact distances otherwise;
/// returns false (matrix row unspecified) when a finite distance would
/// exceed `max_finite`. Levels are tracked in Vertex width, so the
/// saturation test itself can never wrap the narrow storage type.
template <typename Dist>
[[nodiscard]] bool queue_bfs(const CsrGraph& g, Vertex src, MaskedEdge mask, Dist* dist,
                             std::vector<Vertex>& queue, Vertex masked_vertex, Dist inf_value,
                             Dist max_finite, BfsResult& result) {
  const Vertex n = g.num_vertices();
  std::fill(dist, dist + n, inf_value);
  queue.clear();
  queue.reserve(n);
  result = {};
  if (src == masked_vertex) return true;  // the vertex is absent: all-∞ row
  dist[src] = 0;
  queue.push_back(src);

  result.reached = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    const Vertex du = dist[u];
    result.dist_sum += du;
    result.ecc = std::max<Vertex>(result.ecc, du);
    const Vertex nd = du + 1;
    for (const Vertex t : g.neighbors(u)) {
      if (dist[t] != inf_value) continue;
      if (t == masked_vertex) continue;
      if (mask.active() && mask.hides(u, t)) continue;
      if (nd > max_finite) return false;  // saturated: unrepresentable finite distance
      dist[t] = static_cast<Dist>(nd);
      queue.push_back(t);
      ++result.reached;
    }
  }
  return true;
}

/// Word-parallel level-synchronous BFS: one frontier bit per source,
/// direction-optimizing per level.
///
/// Fat levels run the **pull** formulation: every unsettled vertex gathers
/// the OR of its neighbors' previous-level frontier words in one streaming
/// sweep over the CSR arrays — sequential offset/target reads, no
/// worklists, no per-edge branches. Thin levels (frontier below n/8
/// vertices — the first couple of hops from ≤ 64 sources, and the last
/// stragglers) run a **push** step instead: only the frontier's own edges
/// are touched, with a level-stamped first-touch scratch so nothing is
/// zeroed per level. Both steps settle identical bits at identical levels,
/// so the mode sequence is invisible in the output; the masked edge costs
/// one extra comparison on whichever side touches it.
///
/// Distance rows are written once per settled bit — the settles of one
/// level sweep u in ascending order, so the writes form ≤ 64 interleaved
/// sequential streams (a transposed-tile variant was measured slower: the
/// extra full-matrix transpose pass costs more than the stream writes) —
/// and unreached entries are back-filled with `inf_value` at the end, so
/// the common connected case never pays an O(batch·n) infinity pre-fill.
///
/// Returns false the moment any bit settles at a level above `max_finite`
/// (the exact saturation condition — a frontier that dies at max_finite is
/// not saturation).
template <typename Dist>
[[nodiscard]] bool bitparallel_batch(const CsrGraph& g, std::span<const Vertex> sources,
                                     MaskedEdge mask, Dist* rows, std::size_t stride,
                                     BatchBfsWorkspace& ws, Vertex masked_vertex, Dist inf_value,
                                     Dist max_finite) {
  const Vertex n = g.num_vertices();
  auto& cur = BatchBfsAccess::cur(ws);
  auto& next = BatchBfsAccess::next(ws);
  auto& visited = BatchBfsAccess::visited(ws);
  auto& frontier = BatchBfsAccess::frontier(ws);
  auto& touched = BatchBfsAccess::touched(ws);
  auto& spare = BatchBfsAccess::spare(ws);
  auto& stamp = BatchBfsAccess::stamp(ws);
  cur.assign(n, 0);
  next.resize(n);
  visited.assign(n, 0);
  stamp.assign(n, 0);
  frontier.clear();

  const std::uint64_t batch_mask =
      sources.size() == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << sources.size()) - 1;
  // A masked vertex starts saturated: it never settles, never enters a
  // frontier, and its cur word stays 0, so nothing traverses through it.
  if (masked_vertex < n) {
    visited[masked_vertex] = batch_mask;
    for (std::size_t i = 0; i < sources.size(); ++i) rows[i * stride + masked_vertex] = inf_value;
  }
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Vertex s = sources[i];
    if (s == masked_vertex) continue;  // absent source: row back-fills to ∞
    if (cur[s] == 0) frontier.push_back(s);
    visited[s] |= std::uint64_t{1} << i;
    cur[s] |= std::uint64_t{1} << i;
    rows[i * stride + s] = 0;
  }

  // Invariant at each loop top: cur[u] holds the previous level's frontier
  // word of u (zero elsewhere) and `frontier` lists exactly the u with
  // cur[u] != 0.
  Vertex level = 0;
  bool active = true;
  while (active) {
    ++level;
    active = false;
    if (frontier.size() * 8 < n) {
      // Push step: accumulate frontier words into next[] behind first-touch
      // stamps (no per-level zeroing), then settle only the touched list.
      touched.clear();
      for (const Vertex u : frontier) {
        const std::uint64_t word = cur[u];
        for (const Vertex t : g.neighbors(u)) {
          if (t == masked_vertex) continue;
          if (mask.active() && mask.hides(u, t)) [[unlikely]]
            continue;
          if (stamp[t] != level) {
            stamp[t] = level;
            next[t] = word;
            touched.push_back(t);
          } else {
            next[t] |= word;
          }
        }
      }
      spare.clear();
      for (const Vertex u : frontier) cur[u] = 0;
      for (const Vertex t : touched) {
        const std::uint64_t newly = next[t] & ~visited[t];
        if (newly == 0) continue;
        if (level > max_finite) return false;  // saturated settle
        active = true;
        visited[t] |= newly;
        cur[t] = newly;
        spare.push_back(t);
        std::uint64_t bits = newly;
        while (bits != 0) {
          const int b = std::countr_zero(bits);
          bits &= bits - 1;
          rows[static_cast<std::size_t>(b) * stride + t] = static_cast<Dist>(level);
        }
      }
      frontier.swap(spare);
      continue;
    }
    frontier.clear();
    const simd::WordKernels& wk = simd::words();
    for (Vertex u = 0; u < n; ++u) {
      // Saturated vertices (all sources arrived) can gain nothing; skip the
      // gather — this makes late, mostly-settled levels nearly free.
      if (visited[u] == batch_mask) {
        next[u] = 0;
        continue;
      }
      std::uint64_t word = 0;
      if (mask.active() && (u == mask.u || u == mask.v)) [[unlikely]] {
        const Vertex other = u == mask.u ? mask.v : mask.u;
        for (const Vertex t : g.neighbors(u)) {
          if (t != other) word |= cur[t];
        }
      } else {
        const auto nbrs = g.neighbors(u);
        word = wk.or_gather(cur.data(), nbrs.data(), nbrs.size());
      }
      const std::uint64_t newly = word & ~visited[u];
      next[u] = newly;
      if (newly == 0) continue;
      if (level > max_finite) return false;  // saturated: this settle is unrepresentable
      active = true;
      visited[u] |= newly;
      frontier.push_back(u);
      std::uint64_t bits = newly;
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        rows[static_cast<std::size_t>(b) * stride + u] = static_cast<Dist>(level);
      }
    }
    std::swap(cur, next);
  }

  // Back-fill unreached entries (no-op on connected graphs).
  for (Vertex u = 0; u < n; ++u) {
    if (u == masked_vertex) continue;
    std::uint64_t missing = batch_mask & ~visited[u];
    while (missing != 0) {
      const int b = std::countr_zero(missing);
      missing &= missing - 1;
      rows[static_cast<std::size_t>(b) * stride + u] = inf_value;
    }
  }
  return true;
}

/// Dispatch: word-parallelism pays once the batch is wide and frontiers are
/// fat. On near-forests (m close to n) distances spread out, vertices
/// re-enter the frontier once per distinct source distance, and per-source
/// queue BFS wins; likewise for tiny batches. Cutoffs measured on random
/// G(n, m) — see DESIGN.md.
template <typename Dist>
[[nodiscard]] bool batch_dispatch(const CsrGraph& g, std::span<const Vertex> sources,
                                  MaskedEdge mask, Dist* rows, std::size_t stride,
                                  BatchBfsWorkspace& ws, Vertex masked_vertex, Dist inf_value,
                                  Dist max_finite) {
  const std::size_t n = g.num_vertices();
  const bool sparse = g.num_edges() < n + n / 4;
  if (sources.size() < 8 || sparse) {
    BfsResult scratch_result;
    for (std::size_t i = 0; i < sources.size(); ++i) {
      if (!queue_bfs(g, sources[i], mask, rows + i * stride, BatchBfsAccess::queue(ws),
                     masked_vertex, inf_value, max_finite, scratch_result)) {
        return false;
      }
    }
    return true;
  }
  return bitparallel_batch(g, sources, mask, rows, stride, ws, masked_vertex, inf_value,
                           max_finite);
}

template <typename Dist>
[[nodiscard]] bool apsp_impl(const CsrGraph& g, MaskedEdge mask, Dist* rows,
                             BatchBfsWorkspace& ws, Vertex masked_vertex, Dist inf_value,
                             Dist max_finite) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> sources;
  sources.reserve(64);
  for (Vertex base = 0; base < n; base += 64) {
    const Vertex count = std::min<Vertex>(64, n - base);
    sources.resize(count);
    for (Vertex i = 0; i < count; ++i) sources[i] = base + i;
    if (!batch_dispatch<Dist>(g, sources, mask, rows + static_cast<std::size_t>(base) * n, n, ws,
                              masked_vertex, inf_value, max_finite)) {
      return false;
    }
  }
  return true;
}

template <typename Dist>
[[nodiscard]] bool apsp_rows_impl(const CsrGraph& g, std::span<const Vertex> sources,
                                  MaskedEdge mask, Dist* matrix, std::size_t stride,
                                  BatchBfsWorkspace& ws, Vertex masked_vertex, Dist inf_value,
                                  Dist max_finite) {
  const Vertex n = g.num_vertices();
  auto& staging = BatchBfsAccess::staging<Dist>(ws);
  staging.resize(std::size_t{64} * n);
  for (std::size_t base = 0; base < sources.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, sources.size() - base);
    const std::span<const Vertex> group = sources.subspan(base, count);
    if (!batch_dispatch(g, group, mask, staging.data(), n, ws, masked_vertex, inf_value,
                        max_finite)) {
      return false;
    }
    for (std::size_t i = 0; i < count; ++i) {
      std::memcpy(matrix + static_cast<std::size_t>(group[i]) * stride, staging.data() + i * n,
                  static_cast<std::size_t>(n) * sizeof(Dist));
    }
  }
  return true;
}

}  // namespace

BfsResult csr_bfs(const CsrGraph& g, Vertex src, MaskedEdge mask, std::uint16_t* dist,
                  BatchBfsWorkspace& ws, Vertex masked_vertex) {
  BNCG_REQUIRE(src < g.num_vertices(), "vertex id out of range");
  BNCG_REQUIRE(g.num_vertices() < kInfDist16, "16-bit traversal requires n < 65535");
  BfsResult result;
  // Distances < n < 0xFFFF never saturate the full 16-bit range.
  (void)queue_bfs(g, src, mask, dist, BatchBfsAccess::queue(ws), masked_vertex, kInfDist16,
                  static_cast<std::uint16_t>(kInfDist16 - 1), result);
  return result;
}

void bfs_batch(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
               std::uint16_t* rows, std::size_t stride, BatchBfsWorkspace& ws,
               Vertex masked_vertex) {
  BNCG_REQUIRE(sources.size() <= 64, "at most 64 sources per batch");
  BNCG_REQUIRE(g.num_vertices() < kInfDist16, "16-bit traversal requires n < 65535");
  (void)batch_dispatch(g, sources, mask, rows, stride, ws, masked_vertex, kInfDist16,
                       static_cast<std::uint16_t>(kInfDist16 - 1));
}

template <typename Dist>
bool bfs_batch_capped(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
                      Dist* rows, std::size_t stride, BatchBfsWorkspace& ws, Vertex masked_vertex,
                      Dist inf_value, Dist max_finite) {
  BNCG_REQUIRE(sources.size() <= 64, "at most 64 sources per batch");
  BNCG_REQUIRE(max_finite < inf_value, "max_finite must stay below inf_value");
  return batch_dispatch(g, sources, mask, rows, stride, ws, masked_vertex, inf_value, max_finite);
}

template bool bfs_batch_capped<std::uint8_t>(const CsrGraph&, std::span<const Vertex>, MaskedEdge,
                                             std::uint8_t*, std::size_t, BatchBfsWorkspace&,
                                             Vertex, std::uint8_t, std::uint8_t);
template bool bfs_batch_capped<std::uint16_t>(const CsrGraph&, std::span<const Vertex>,
                                              MaskedEdge, std::uint16_t*, std::size_t,
                                              BatchBfsWorkspace&, Vertex, std::uint16_t,
                                              std::uint16_t);

void csr_apsp(const CsrGraph& g, MaskedEdge mask, std::uint16_t* rows, BatchBfsWorkspace& ws,
              Vertex masked_vertex) {
  BNCG_REQUIRE(g.num_vertices() < kInfDist16, "16-bit APSP requires n < 65535");
  (void)apsp_impl(g, mask, rows, ws, masked_vertex, kInfDist16,
                  static_cast<std::uint16_t>(kInfDist16 - 1));
}

void csr_apsp_rows(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
                   std::uint16_t* matrix, std::size_t stride, BatchBfsWorkspace& ws,
                   Vertex masked_vertex, std::uint16_t inf_value) {
  const Vertex n = g.num_vertices();
  BNCG_REQUIRE(n < kInfDist16, "16-bit traversal requires n < 65535");
  BNCG_REQUIRE(inf_value >= n, "inf_value must dominate every finite distance");
  // Finite distances are ≤ n − 1 < inf_value, so saturation is impossible:
  // the capped kernel is exactly this function with an unreachable cap.
  (void)csr_apsp_rows_capped<std::uint16_t>(g, sources, mask, matrix, stride, ws, masked_vertex,
                                            inf_value, static_cast<std::uint16_t>(inf_value - 1));
}

template <typename Dist>
bool csr_apsp_capped(const CsrGraph& g, MaskedEdge mask, Dist* rows, BatchBfsWorkspace& ws,
                     Vertex masked_vertex, Dist inf_value, Dist max_finite) {
  BNCG_REQUIRE(max_finite < inf_value, "max_finite must stay below inf_value");
  return apsp_impl(g, mask, rows, ws, masked_vertex, inf_value, max_finite);
}

template <typename Dist>
bool csr_apsp_rows_capped(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
                          Dist* matrix, std::size_t stride, BatchBfsWorkspace& ws,
                          Vertex masked_vertex, Dist inf_value, Dist max_finite) {
  BNCG_REQUIRE(max_finite < inf_value, "max_finite must stay below inf_value");
  return apsp_rows_impl(g, sources, mask, matrix, stride, ws, masked_vertex, inf_value,
                        max_finite);
}

template bool csr_apsp_capped<std::uint8_t>(const CsrGraph&, MaskedEdge, std::uint8_t*,
                                            BatchBfsWorkspace&, Vertex, std::uint8_t,
                                            std::uint8_t);
template bool csr_apsp_capped<std::uint16_t>(const CsrGraph&, MaskedEdge, std::uint16_t*,
                                             BatchBfsWorkspace&, Vertex, std::uint16_t,
                                             std::uint16_t);
template bool csr_apsp_rows_capped<std::uint8_t>(const CsrGraph&, std::span<const Vertex>,
                                                 MaskedEdge, std::uint8_t*, std::size_t,
                                                 BatchBfsWorkspace&, Vertex, std::uint8_t,
                                                 std::uint8_t);
template bool csr_apsp_rows_capped<std::uint16_t>(const CsrGraph&, std::span<const Vertex>,
                                                  MaskedEdge, std::uint16_t*, std::size_t,
                                                  BatchBfsWorkspace&, Vertex, std::uint16_t,
                                                  std::uint16_t);

bool csr_apsp_wide(const CsrGraph& g, Vertex* rows) {
  const Vertex n = g.num_vertices();
  if (n == 0) return true;
  const std::size_t stride = n;
  const Vertex num_batches = (n + 63) / 64;
  constexpr Vertex kMaxFiniteWide = kInfDist - 1;  // distances < n: never saturates

  // One 64-source batch per pool task, one workspace per lane (batches write
  // disjoint row blocks, so lanes never touch the same output bytes).
  ThreadPool& pool = ThreadPool::global();
  std::vector<BatchBfsWorkspace> ws(pool.size());
  pool.parallel_for(num_batches, /*grain=*/1, [&](std::uint64_t b, unsigned tid) {
    const Vertex base = static_cast<Vertex>(b) * 64;
    const Vertex count = std::min<Vertex>(64, n - base);
    std::vector<Vertex> sources(count);
    for (Vertex i = 0; i < count; ++i) sources[i] = base + i;
    (void)batch_dispatch<Vertex>(g, sources, MaskedEdge{},
                                 rows + static_cast<std::size_t>(base) * stride, stride, ws[tid],
                                 kNoVertex, kInfDist, kMaxFiniteWide);
  });

  const std::size_t total = static_cast<std::size_t>(n) * n;
  for (std::size_t i = 0; i < total; ++i) {
    if (rows[i] == kInfDist) return false;
  }
  return true;
}

}  // namespace bncg

#include "graph/bfs_batch.hpp"

#include <algorithm>
#include <bit>
#include <type_traits>

namespace bncg {

/// Grants the traversal kernels access to workspace internals without
/// exposing mutable buffers in the public interface (mirrors BfsAccess).
struct BatchBfsAccess {
  static std::vector<std::uint64_t>& cur(BatchBfsWorkspace& ws) { return ws.cur_; }
  static std::vector<std::uint64_t>& next(BatchBfsWorkspace& ws) { return ws.next_; }
  static std::vector<std::uint64_t>& visited(BatchBfsWorkspace& ws) { return ws.visited_; }
  static std::vector<Vertex>& queue(BatchBfsWorkspace& ws) { return ws.queue_; }
  static std::vector<std::uint16_t>& rows16(BatchBfsWorkspace& ws) { return ws.rows16_; }
};

namespace {

template <typename Dist>
constexpr Dist dist_inf() {
  if constexpr (std::is_same_v<Dist, std::uint16_t>) {
    return kInfDist16;
  } else {
    return kInfDist;
  }
}

/// Plain queue BFS over the snapshot (the sparse / tiny-batch fallback).
template <typename Dist>
BfsResult queue_bfs(const CsrGraph& g, Vertex src, MaskedEdge mask, Dist* dist,
                    std::vector<Vertex>& queue, Vertex masked_vertex) {
  constexpr Dist kInf = dist_inf<Dist>();
  const Vertex n = g.num_vertices();
  std::fill(dist, dist + n, kInf);
  queue.clear();
  queue.reserve(n);
  if (src == masked_vertex) return {};  // the vertex is absent: all-∞ row
  dist[src] = 0;
  queue.push_back(src);

  BfsResult result;
  result.reached = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Vertex u = queue[head];
    const Dist du = dist[u];
    result.dist_sum += du;
    result.ecc = std::max<Vertex>(result.ecc, du);
    for (const Vertex t : g.neighbors(u)) {
      if (dist[t] != kInf) continue;
      if (t == masked_vertex) continue;
      if (mask.active() && mask.hides(u, t)) continue;
      dist[t] = static_cast<Dist>(du + 1);
      queue.push_back(t);
      ++result.reached;
    }
  }
  return result;
}

/// Word-parallel level-synchronous BFS: one frontier bit per source.
///
/// Pull formulation: per level, every vertex gathers the OR of its
/// neighbors' previous-level frontier words in one streaming sweep over the
/// CSR arrays — sequential offset/target reads, no frontier list, no
/// per-edge branches, which measures faster than push-with-worklists on the
/// dense instances this path is selected for (thin-frontier inputs take the
/// queue fallback instead). The masked edge costs one recompute for its two
/// endpoints per level. Distance rows are written once per settled bit;
/// unreached entries are back-filled at the end, so the common connected
/// case never pays an O(batch·n) infinity pre-fill.
template <typename Dist>
void bitparallel_batch(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
                       Dist* rows, std::size_t stride, BatchBfsWorkspace& ws,
                       Vertex masked_vertex) {
  constexpr Dist kInf = dist_inf<Dist>();
  const Vertex n = g.num_vertices();
  auto& cur = BatchBfsAccess::cur(ws);
  auto& next = BatchBfsAccess::next(ws);
  auto& visited = BatchBfsAccess::visited(ws);
  cur.assign(n, 0);
  next.resize(n);
  visited.assign(n, 0);

  const std::uint64_t batch_mask =
      sources.size() == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << sources.size()) - 1;
  // A masked vertex starts saturated: it never settles, never enters a
  // frontier, and its cur word stays 0, so nothing traverses through it.
  if (masked_vertex < n) {
    visited[masked_vertex] = batch_mask;
    for (std::size_t i = 0; i < sources.size(); ++i) rows[i * stride + masked_vertex] = kInf;
  }
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const Vertex s = sources[i];
    if (s == masked_vertex) continue;  // absent source: row back-fills to ∞
    visited[s] |= std::uint64_t{1} << i;
    cur[s] |= std::uint64_t{1} << i;
    rows[i * stride + s] = 0;
  }

  Vertex level = 0;
  bool active = true;
  while (active) {
    ++level;
    active = false;
    for (Vertex u = 0; u < n; ++u) {
      // Saturated vertices (all sources arrived) can gain nothing; skip the
      // gather — this makes late, mostly-settled levels nearly free.
      if (visited[u] == batch_mask) {
        next[u] = 0;
        continue;
      }
      std::uint64_t word = 0;
      if (mask.active() && (u == mask.u || u == mask.v)) [[unlikely]] {
        const Vertex other = u == mask.u ? mask.v : mask.u;
        for (const Vertex t : g.neighbors(u)) {
          if (t != other) word |= cur[t];
        }
      } else {
        for (const Vertex t : g.neighbors(u)) word |= cur[t];
      }
      const std::uint64_t newly = word & ~visited[u];
      next[u] = newly;
      if (newly == 0) continue;
      active = true;
      visited[u] |= newly;
      std::uint64_t bits = newly;
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        bits &= bits - 1;
        rows[static_cast<std::size_t>(b) * stride + u] = static_cast<Dist>(level);
      }
    }
    std::swap(cur, next);
  }

  // Back-fill unreached entries (no-op on connected graphs).
  for (Vertex u = 0; u < n; ++u) {
    std::uint64_t missing = batch_mask & ~visited[u];
    while (missing != 0) {
      const int b = std::countr_zero(missing);
      missing &= missing - 1;
      rows[static_cast<std::size_t>(b) * stride + u] = kInf;
    }
  }
}

/// Dispatch: word-parallelism pays once the batch is wide and frontiers are
/// fat. On near-forests (m close to n) distances spread out, vertices
/// re-enter the frontier once per distinct source distance, and per-source
/// queue BFS wins; likewise for tiny batches. Cutoffs measured on random
/// G(n, m) — see DESIGN.md.
template <typename Dist>
void batch_dispatch(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
                    Dist* rows, std::size_t stride, BatchBfsWorkspace& ws,
                    Vertex masked_vertex = kNoVertex) {
  const std::size_t n = g.num_vertices();
  const bool sparse = g.num_edges() < n + n / 4;
  if (sources.size() < 8 || sparse) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      queue_bfs(g, sources[i], mask, rows + i * stride, BatchBfsAccess::queue(ws),
                masked_vertex);
    }
    return;
  }
  bitparallel_batch(g, sources, mask, rows, stride, ws, masked_vertex);
}

template <typename Dist>
void apsp_impl(const CsrGraph& g, MaskedEdge mask, Dist* rows, BatchBfsWorkspace& ws,
               Vertex masked_vertex = kNoVertex) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> sources;
  sources.reserve(64);
  for (Vertex base = 0; base < n; base += 64) {
    const Vertex count = std::min<Vertex>(64, n - base);
    sources.resize(count);
    for (Vertex i = 0; i < count; ++i) sources[i] = base + i;
    batch_dispatch<Dist>(g, sources, mask, rows + static_cast<std::size_t>(base) * n, n, ws,
                         masked_vertex);
  }
}

}  // namespace

BfsResult csr_bfs(const CsrGraph& g, Vertex src, MaskedEdge mask, std::uint16_t* dist,
                  BatchBfsWorkspace& ws, Vertex masked_vertex) {
  BNCG_REQUIRE(src < g.num_vertices(), "vertex id out of range");
  BNCG_REQUIRE(g.num_vertices() < kInfDist16, "16-bit traversal requires n < 65535");
  return queue_bfs(g, src, mask, dist, BatchBfsAccess::queue(ws), masked_vertex);
}

void bfs_batch(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
               std::uint16_t* rows, std::size_t stride, BatchBfsWorkspace& ws,
               Vertex masked_vertex) {
  BNCG_REQUIRE(sources.size() <= 64, "at most 64 sources per batch");
  BNCG_REQUIRE(g.num_vertices() < kInfDist16, "16-bit traversal requires n < 65535");
  batch_dispatch(g, sources, mask, rows, stride, ws, masked_vertex);
}

void csr_apsp(const CsrGraph& g, MaskedEdge mask, std::uint16_t* rows, BatchBfsWorkspace& ws,
              Vertex masked_vertex) {
  BNCG_REQUIRE(g.num_vertices() < kInfDist16, "16-bit APSP requires n < 65535");
  apsp_impl(g, mask, rows, ws, masked_vertex);
}

void csr_apsp_rows(const CsrGraph& g, std::span<const Vertex> sources, MaskedEdge mask,
                   std::uint16_t* matrix, std::size_t stride, BatchBfsWorkspace& ws,
                   Vertex masked_vertex, std::uint16_t inf_value) {
  const Vertex n = g.num_vertices();
  BNCG_REQUIRE(g.num_vertices() < kInfDist16, "16-bit traversal requires n < 65535");
  BNCG_REQUIRE(inf_value >= n, "inf_value must dominate every finite distance");
  auto& staging = BatchBfsAccess::rows16(ws);
  staging.resize(std::size_t{64} * n);
  for (std::size_t base = 0; base < sources.size(); base += 64) {
    const std::size_t count = std::min<std::size_t>(64, sources.size() - base);
    const std::span<const Vertex> group = sources.subspan(base, count);
    batch_dispatch(g, group, mask, staging.data(), n, ws, masked_vertex);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint16_t* src_row = staging.data() + i * n;
      std::uint16_t* dst = matrix + static_cast<std::size_t>(group[i]) * stride;
      // min() maps the traversal's 0xFFFF sentinel onto inf_value and is the
      // identity on finite distances (all < n ≤ inf_value).
      for (Vertex x = 0; x < n; ++x) dst[x] = std::min(src_row[x], inf_value);
    }
  }
}

bool csr_apsp_wide(const CsrGraph& g, Vertex* rows) {
  const Vertex n = g.num_vertices();
  if (n == 0) return true;
  const std::size_t stride = n;
  const Vertex num_batches = (n + 63) / 64;

#ifdef BNCG_HAS_OPENMP
#pragma omp parallel
  {
    BatchBfsWorkspace ws;
    std::vector<Vertex> sources;
    sources.reserve(64);
#pragma omp for schedule(dynamic, 1)
    for (std::int64_t b = 0; b < static_cast<std::int64_t>(num_batches); ++b) {
      const Vertex base = static_cast<Vertex>(b) * 64;
      const Vertex count = std::min<Vertex>(64, n - base);
      sources.resize(count);
      for (Vertex i = 0; i < count; ++i) sources[i] = base + i;
      batch_dispatch<Vertex>(g, sources, MaskedEdge{}, rows + static_cast<std::size_t>(base) * stride,
                             stride, ws);
    }
  }
#else
  BatchBfsWorkspace ws;
  std::vector<Vertex> sources;
  sources.reserve(64);
  for (Vertex b = 0; b < num_batches; ++b) {
    const Vertex base = b * 64;
    const Vertex count = std::min<Vertex>(64, n - base);
    sources.resize(count);
    for (Vertex i = 0; i < count; ++i) sources[i] = base + i;
    batch_dispatch<Vertex>(g, sources, MaskedEdge{}, rows + static_cast<std::size_t>(base) * stride,
                           stride, ws);
  }
#endif

  const std::size_t total = static_cast<std::size_t>(n) * n;
  for (std::size_t i = 0; i < total; ++i) {
    if (rows[i] == kInfDist) return false;
  }
  return true;
}

}  // namespace bncg

// Mutable undirected simple graph — the substrate every other module builds on.
//
// Representation: one sorted adjacency vector per vertex. This gives
// O(log deg) membership tests, O(deg) insert/erase (cache-friendly memmove),
// and allocation-free neighbor iteration — the right trade-off for
// best-response dynamics, which perform millions of tentative edge swaps on
// graphs of modest degree.
//
// The class maintains the *simple undirected* invariant: no self-loops, no
// parallel edges, and v ∈ adj(w) ⇔ w ∈ adj(v). Mutators validate their
// arguments via BNCG_REQUIRE.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace bncg {

/// Vertex id. Dense, 0-based.
using Vertex = std::uint32_t;

/// Undirected edge as an (ordered) vertex pair with u < v.
struct Edge {
  Vertex u;
  Vertex v;

  friend constexpr bool operator==(const Edge&, const Edge&) = default;
};

/// Mutable undirected simple graph over vertices {0, …, n−1}.
class Graph {
 public:
  /// Creates an edgeless graph on `n` vertices.
  explicit Graph(Vertex n = 0) : adj_(n) {}

  /// Number of vertices.
  [[nodiscard]] Vertex num_vertices() const noexcept {
    return static_cast<Vertex>(adj_.size());
  }

  /// Number of edges.
  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  /// Appends an isolated vertex and returns its id.
  Vertex add_vertex() {
    adj_.emplace_back();
    return static_cast<Vertex>(adj_.size() - 1);
  }

  /// True iff edge {v, w} is present. O(log deg).
  [[nodiscard]] bool has_edge(Vertex v, Vertex w) const;

  /// Inserts edge {v, w}. Precondition: v ≠ w, both in range, edge absent.
  void add_edge(Vertex v, Vertex w);

  /// Inserts edge {v, w} unless it already exists. Returns true if inserted.
  bool add_edge_if_absent(Vertex v, Vertex w);

  /// Removes edge {v, w}. Precondition: edge present.
  void remove_edge(Vertex v, Vertex w);

  /// Degree of `v`.
  [[nodiscard]] Vertex degree(Vertex v) const {
    check_vertex(v);
    return static_cast<Vertex>(adj_[v].size());
  }

  /// Sorted neighbor list of `v` (view; invalidated by mutation).
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    check_vertex(v);
    return adj_[v];
  }

  /// All edges as (u < v) pairs, sorted lexicographically.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// Structural equality (same vertex count and edge set).
  friend bool operator==(const Graph& a, const Graph& b) {
    return a.adj_ == b.adj_;
  }

  /// Verifies the simple-undirected invariants; throws std::logic_error on
  /// corruption. Intended for tests and debug assertions, O(m log deg).
  void check_invariants() const;

  /// Throws unless `v` is a valid vertex id.
  void check_vertex(Vertex v) const {
    BNCG_REQUIRE(v < adj_.size(), "vertex id out of range");
  }

 private:
  std::vector<std::vector<Vertex>> adj_;
  std::size_t num_edges_ = 0;
};

/// Builds a graph from an explicit edge list over `n` vertices.
/// Duplicate edges are rejected (precondition violation).
[[nodiscard]] Graph graph_from_edges(Vertex n,
                                     const std::vector<std::pair<Vertex, Vertex>>& edge_list);

/// Returns the complement graph (edges flipped, no self-loops).
[[nodiscard]] Graph complement(const Graph& g);

/// Renders the graph as an edge-list string "n=5 m=4: 0-1 0-2 ..." for
/// diagnostics and golden tests.
[[nodiscard]] std::string to_string(const Graph& g);

}  // namespace bncg

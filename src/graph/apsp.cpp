#include "graph/apsp.hpp"

#include <algorithm>
#include <numeric>

namespace bncg {

DistanceMatrix::DistanceMatrix(const Graph& g)
    : n_(g.num_vertices()), data_(static_cast<std::size_t>(n_) * n_, kInfDist) {
  bool all_reached = true;
#ifdef BNCG_HAS_OPENMP
#pragma omp parallel reduction(&& : all_reached)
  {
    BfsWorkspace ws;
#pragma omp for schedule(dynamic, 8)
    for (std::int64_t src = 0; src < static_cast<std::int64_t>(n_); ++src) {
      const BfsResult r = bfs(g, static_cast<Vertex>(src), ws);
      all_reached = all_reached && r.spans(n_);
      std::copy(ws.dist().begin(), ws.dist().end(),
                data_.begin() + static_cast<std::size_t>(src) * n_);
    }
  }
#else
  BfsWorkspace ws;
  for (Vertex src = 0; src < n_; ++src) {
    const BfsResult r = bfs(g, src, ws);
    all_reached = all_reached && r.spans(n_);
    std::copy(ws.dist().begin(), ws.dist().end(),
              data_.begin() + static_cast<std::size_t>(src) * n_);
  }
#endif
  connected_ = (n_ == 0) || all_reached;
}

Vertex DistanceMatrix::eccentricity(Vertex u) const {
  const auto r = row(u);
  Vertex ecc = 0;
  for (const Vertex d : r) {
    if (d == kInfDist) return kInfDist;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint64_t DistanceMatrix::row_sum(Vertex u) const {
  const auto r = row(u);
  std::uint64_t sum = 0;
  for (const Vertex d : r) {
    if (d != kInfDist) sum += d;
  }
  return sum;
}

}  // namespace bncg

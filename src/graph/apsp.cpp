#include "graph/apsp.hpp"

#include <algorithm>

#include "graph/bfs_batch.hpp"
#include "graph/csr.hpp"

namespace bncg {

DistanceMatrix::DistanceMatrix(const Graph& g)
    : n_(g.num_vertices()), data_(static_cast<std::size_t>(n_) * n_, kInfDist) {
  // One CSR snapshot + batched bit-parallel BFS (64 sources per sweep)
  // replaces the former n independent pointer-chasing traversals; the
  // batches run in parallel on the thread pool inside csr_apsp_wide.
  const CsrGraph csr(g);
  connected_ = csr_apsp_wide(csr, data_.data());
}

Vertex DistanceMatrix::eccentricity(Vertex u) const {
  const auto r = row(u);
  Vertex ecc = 0;
  for (const Vertex d : r) {
    if (d == kInfDist) return kInfDist;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint64_t DistanceMatrix::row_sum(Vertex u) const {
  const auto r = row(u);
  std::uint64_t sum = 0;
  for (const Vertex d : r) {
    if (d != kInfDist) sum += d;
  }
  return sum;
}

Vertex DistanceMatrix::max_finite_distance() const noexcept {
  Vertex max_d = 0;
  for (const Vertex d : data_) {
    if (d != kInfDist && d > max_d) max_d = d;
  }
  return max_d;
}

DistWidth DistanceMatrix::recommended_width() const noexcept {
  return fits_u8(max_finite_distance()) ? DistWidth::U8 : DistWidth::U16;
}

}  // namespace bncg

// Width-adaptive capped-infinity distance encodings.
//
// Almost every instance the engines actually certify or search has diameter
// far below the 16-bit cap, so the n² (engine scratch) and n³ (search-state
// cache) distance slabs waste half their memory bandwidth carrying zero
// bits. The hot kernels (graph/bfs_batch, core/swap_engine,
// core/search_state) are therefore templated on a distance storage type
// `Dist ∈ {u8, u16}` with a *capped* infinity per width:
//
//   kSearchInf8  = 0x3F    finite range 0..61  (diameter < 62 instances)
//   kSearchInf16 = 0x3FFF  finite range 0..16381
//
// The caps are chosen so the addition identity's two chained adds
// (≤ 2·kInf + 1) cannot wrap the storage type — 127 < 2⁸ and 2¹⁵ < 2¹⁶ —
// which keeps every streaming update kernel branch-free add/min in the
// narrow type (and twice as wide per SIMD lane at u8).
//
// The largest representable *finite* distance is kInf − 2, not kInf − 1:
// the search state's row-invalidation tests read |d(x,u) − d(x,v)| on
// capped values, and a finite distance of exactly kInf − 1 next to a capped
// ∞ would alias the "differ by ≤ 1 ⇒ row unchanged" shortcut. Traversals
// that would write a finite distance > kInf − 2 report *saturation* instead
// of writing a lie; u8 consumers then fall back (engine: redo the agent at
// u16) or promote (search state: rebuild the whole cache at u16 — exact,
// because every cached structure is a pure function of the current graph).
//
// u16 never saturates under the existing n ≤ kSearchInf16 − 1 preconditions,
// so the wide instantiation is bit-for-bit the pre-width behavior.
#pragma once

#include <cstdint>
#include <exception>

namespace bncg {

/// Runtime distance storage width of a kernel instantiation.
enum class DistWidth : std::uint8_t { U8, U16 };

/// How width-adaptive components pick their storage width.
///  * Auto     — probe a cheap diameter bound, start narrow when it fits;
///  * ForceU8  — start narrow regardless (still falls back / promotes on
///               saturation: exactness always wins over the preference);
///  * ForceU16 — skip the narrow path entirely (the pre-width behavior).
enum class WidthPolicy : std::uint8_t { Auto, ForceU8, ForceU16 };

/// Capped infinity of the 8-bit encoding (finite distances ≤ 0x3D = 61).
inline constexpr std::uint8_t kSearchInf8 = 0x3F;

/// Capped infinity of the 16-bit encoding (finite distances ≤ 16381).
inline constexpr std::uint16_t kSearchInf16 = 0x3FFF;

/// kSearchInf8 / kSearchInf16 selected by storage type.
template <typename Dist>
inline constexpr Dist kSearchInfFor = Dist{};
template <>
inline constexpr std::uint8_t kSearchInfFor<std::uint8_t> = kSearchInf8;
template <>
inline constexpr std::uint16_t kSearchInfFor<std::uint16_t> = kSearchInf16;

/// Largest finite distance the width may store (see the header comment for
/// why the slot at kInf − 1 is deliberately left unused).
template <typename Dist>
inline constexpr Dist kMaxFiniteFor = static_cast<Dist>(kSearchInfFor<Dist> - 2);

/// True when every finite distance of an instance whose largest distance is
/// `max_distance` fits the 8-bit encoding.
[[nodiscard]] constexpr bool fits_u8(std::uint32_t max_distance) noexcept {
  return max_distance <= kMaxFiniteFor<std::uint8_t>;
}

[[nodiscard]] constexpr const char* dist_width_name(DistWidth w) noexcept {
  return w == DistWidth::U8 ? "u8" : "u16";
}

/// Control-flow signal of the narrow encodings: a traversal met a finite
/// distance the width cannot represent. Thrown by the u8 search state (the
/// facade catches it and promotes to u16) and never escapes the public API.
struct WidthSaturated final : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "bncg: finite distance exceeds the narrow capped-infinity encoding";
  }
};

}  // namespace bncg

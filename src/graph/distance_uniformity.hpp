// ε-distance-uniformity analysis (Section 5 of the paper).
//
// A graph is ε-distance-uniform if some radius r has, from *every* vertex,
// at least (1−ε)n vertices at distance exactly r; ε-distance-almost-uniform
// relaxes "exactly r" to "r or r+1". Theorem 13 shows sum-equilibrium graphs
// induce distance-(almost-)uniform power graphs; Conjecture 14 asks whether
// distance-almost-uniform graphs must have diameter O(lg n); Theorem 15
// proves the uniform case for Abelian Cayley graphs.
//
// This module computes, for a given graph, the best achievable ε for every
// candidate radius and the overall optimum, from one APSP pass.
#pragma once

#include <vector>

#include "graph/apsp.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Outcome of a distance-uniformity scan.
struct UniformityResult {
  /// Best radius r (minimizing ε over all candidate radii).
  Vertex radius = 0;
  /// The minimal ε such that the graph is ε-distance-uniform at `radius`:
  /// ε = max_v (1 − |{w : d(v,w) = r}| / n). In [0, 1].
  double epsilon = 1.0;
};

/// ε for a *specific* radius r under the exact-distance definition.
[[nodiscard]] double epsilon_at_radius(const DistanceMatrix& dm, Vertex r);

/// ε for a specific radius under the almost-uniform (r or r+1) definition.
[[nodiscard]] double epsilon_at_radius_almost(const DistanceMatrix& dm, Vertex r);

/// Best (r, ε) pair under the exact-distance definition.
[[nodiscard]] UniformityResult best_uniformity(const DistanceMatrix& dm);

/// Best (r, ε) pair under the almost-uniform definition.
[[nodiscard]] UniformityResult best_almost_uniformity(const DistanceMatrix& dm);

/// Per-vertex sphere sizes: sphere_sizes(dm, v)[k] = |{w : d(v,w) = k}|.
[[nodiscard]] std::vector<Vertex> sphere_sizes(const DistanceMatrix& dm, Vertex v);

/// Convenience wrappers computing APSP internally.
[[nodiscard]] UniformityResult best_uniformity(const Graph& g);
[[nodiscard]] UniformityResult best_almost_uniformity(const Graph& g);

/// Pair-level (not per-vertex) uniformity: the fraction of ordered pairs
/// (u, v), u ≠ v, whose distance is exactly r (plus r+1 when `almost`),
/// maximized over r. The §5 remark's distinction: the broom_graph is
/// pair-almost-uniform with huge diameter, while per-vertex uniformity —
/// what Conjecture 14 requires — fails at its hub.
struct PairUniformity {
  Vertex radius = 0;
  double fraction = 0.0;  ///< best fraction of ordered pairs in the band
};
[[nodiscard]] PairUniformity best_pair_uniformity(const DistanceMatrix& dm, bool almost);

}  // namespace bncg

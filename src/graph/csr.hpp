// Immutable CSR (compressed sparse row) graph snapshots.
//
// The mutable `Graph` (one std::vector per vertex) is the right substrate for
// applying moves, but its pointer-chasing layout is wrong for the hot path:
// swap evaluation runs millions of BFS traversals that only *read* the
// adjacency. `CsrGraph` freezes a Graph into two flat arrays — `offsets`
// (n+1 entries) and `targets` (2m entries, sorted per vertex) — so a whole
// traversal touches two contiguous allocations and the prefetcher can keep
// up. Snapshots are rebuilt once per *accepted* move; tentative moves are
// simulated on top of the snapshot without copying:
//
//  * removing one edge  — `MaskedEdge` makes every traversal skip a single
//    {u, v} pair (the edge the swapping agent abandons);
//  * adding one edge    — never materialized at all: the single-removal
//    identity d'(v,x) = min(d_{G−vw}(v,x), 1 + d_{G−vw}(w₂,x)) evaluates the
//    new edge algebraically from distance rows of G−vw (see DESIGN.md).
//
// Traversals over CsrGraph live in bfs_batch.hpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace bncg {

/// Sentinel vertex id ("none").
inline constexpr Vertex kNoVertex = 0xFFFFFFFFu;

/// One edge temporarily hidden from traversals (inactive by default).
/// Simulates G − {u, v} on an immutable snapshot without copying it.
struct MaskedEdge {
  Vertex u = kNoVertex;
  Vertex v = kNoVertex;

  [[nodiscard]] constexpr bool active() const noexcept { return u != kNoVertex; }

  /// True iff the (directed) adjacency entry `from → to` is hidden.
  [[nodiscard]] constexpr bool hides(Vertex from, Vertex to) const noexcept {
    return (from == u && to == v) || (from == v && to == u);
  }
};

/// Immutable flat-array snapshot of a Graph.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Snapshots `g`. One pass, two allocations (amortized away by rebuild()).
  explicit CsrGraph(const Graph& g) { rebuild(g); }

  /// Re-snapshots `g` in place, reusing storage when capacities allow.
  void rebuild(const Graph& g);

  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }

  /// Number of undirected edges.
  [[nodiscard]] std::size_t num_edges() const noexcept { return targets_.size() / 2; }

  [[nodiscard]] Vertex degree(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sorted neighbor list of `v` (view into the flat targets array).
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  /// True iff edge {v, w} is present. O(log deg).
  [[nodiscard]] bool has_edge(Vertex v, Vertex w) const;

 private:
  Vertex n_ = 0;
  std::vector<std::uint32_t> offsets_;  // n+1 prefix sums into targets_
  std::vector<Vertex> targets_;         // concatenated sorted adjacencies, 2m
};

}  // namespace bncg

// Global graph metrics: diameter, radius, girth, distance statistics.
//
// These are the observables every experiment reports — the paper's central
// question is how large the diameter of an equilibrium graph can be.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/apsp.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Summary of the distance structure of a connected graph.
struct DistanceStats {
  Vertex diameter = 0;          ///< max_{u,v} d(u,v); kInfDist if disconnected.
  Vertex radius = 0;            ///< min_u ecc(u); kInfDist if disconnected.
  double avg_distance = 0.0;    ///< mean over ordered pairs u ≠ v.
  std::uint64_t wiener = 0;     ///< Σ_{u<v} d(u,v) (Wiener index).
  bool connected = false;
};

/// Computes diameter/radius/average distance in one APSP pass.
[[nodiscard]] DistanceStats distance_stats(const Graph& g);

/// Same, reusing an existing distance matrix.
[[nodiscard]] DistanceStats distance_stats(const DistanceMatrix& dm);

/// Diameter only (kInfDist when disconnected). O(n·m).
[[nodiscard]] Vertex diameter(const Graph& g);

/// Girth: length of a shortest cycle; kInfDist for forests. O(n·m).
[[nodiscard]] Vertex girth(const Graph& g);

/// Per-vertex eccentricities (local diameters). kInfDist entries when
/// disconnected.
[[nodiscard]] std::vector<Vertex> eccentricities(const Graph& g);

/// Social cost of the sum game: Σ_v Σ_u d(v,u) (= 2·Wiener). The quantity
/// whose equilibrium-vs-optimum ratio defines the sum price of anarchy.
[[nodiscard]] std::uint64_t total_distance_sum(const Graph& g);

/// Histogram of pairwise distances: result[k] = #{ordered pairs at distance k}.
[[nodiscard]] std::vector<std::uint64_t> distance_histogram(const DistanceMatrix& dm);

/// Degree sequence statistics.
struct DegreeStats {
  Vertex min_degree = 0;
  Vertex max_degree = 0;
  double avg_degree = 0.0;
};
[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// True iff g is connected and has exactly n−1 edges.
[[nodiscard]] bool is_tree(const Graph& g);

/// True iff g is vertex-transitive *with respect to distance profiles*:
/// every vertex has the same multiset of distances to all others. This is a
/// cheap necessary condition for vertex-transitivity used to sanity-check
/// the paper's symmetric constructions (Fig. 4, Cayley graphs).
[[nodiscard]] bool has_uniform_distance_profile(const DistanceMatrix& dm);

}  // namespace bncg

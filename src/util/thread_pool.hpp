// Long-lived worker pool replacing the per-call `#pragma omp parallel`
// regions. One process-wide pool (global()), created on first use and kept
// for the process lifetime, so the hot certification loops stop paying
// thread startup/teardown per call and per-thread scratch (indexed by the
// stable lane id) stays warm across calls.
//
// Scheduling model: static lane count, dynamic chunk claiming. A
// parallel_for publishes one job — an index range [0, count) and a grain —
// and every lane (the caller participates as lane 0, the N−1 workers as
// lanes 1..N−1) repeatedly claims the next `grain`-sized chunk from a shared
// atomic cursor until the range is exhausted. That is the moral equivalent
// of OpenMP's `schedule(dynamic, grain)` — load-balanced without work
// stealing — and like it, the chunk→lane assignment is nondeterministic.
// Consumers therefore keep all outputs in per-index or per-lane slots and
// fold them in a deterministic serial order afterwards; nothing may depend
// on which lane ran a chunk. (That fold discipline is what replaced the old
// `#pragma omp critical` merges — see DESIGN.md §13.)
//
// Re-entrancy: a parallel_for issued from inside a pool task runs inline on
// the calling lane (same tid — per-lane scratch stays race-free), and a
// top-level parallel_for while another thread's job occupies the pool runs
// the whole range inline on the caller (as lane 0 of a one-lane region).
// Both fall out of one rule: only one job owns the workers at a time, and
// everyone else degrades to serial execution rather than deadlocking. The
// in-process service-dispatcher tests exercise exactly this: several
// std::threads certifying different engines concurrently.
//
// Exceptions: the first exception thrown by any chunk is captured, the
// cursor is slammed forward so lanes stop claiming new chunks (in-flight
// chunks finish), and the exception rethrows on the calling thread after
// the job fully drains — so scratch is quiescent when the caller's handler
// runs, like the serial code it replaced.
//
// Lane count: BNCG_THREADS (clamped to [1, 256]) if set, else
// hardware_concurrency, else 1. A one-lane pool spawns no threads and runs
// everything inline — the serial build is the degenerate case, not a
// special path.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>

namespace bncg {

class ThreadPool {
 public:
  /// Pool with `lanes` total execution lanes (callers participate, so
  /// `lanes == 1` means "no worker threads"). Values are clamped to
  /// [1, 256]. Prefer global() outside of tests.
  explicit ThreadPool(unsigned lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process-wide pool: BNCG_THREADS lanes (else hardware concurrency),
  /// constructed on first use.
  [[nodiscard]] static ThreadPool& global();

  /// Total lanes (worker threads + the participating caller). Per-lane
  /// scratch arrays must hold exactly this many slots; body tids are
  /// always in [0, size()).
  [[nodiscard]] unsigned size() const noexcept { return lanes_; }

  /// Runs body(i, tid) for every i in [0, count), distributing
  /// `grain`-sized chunks across the lanes. Blocks until every index ran.
  /// The chunk→lane assignment is nondeterministic: callers write results
  /// to per-index or per-tid slots and fold serially afterwards.
  template <typename F>
  void parallel_for(std::uint64_t count, std::uint64_t grain, F&& body) {
    using Fn = std::remove_reference_t<F>;
    run(count, grain,
        [](void* ctx, std::uint64_t begin, std::uint64_t end, unsigned tid) {
          Fn& f = *static_cast<Fn*>(ctx);
          for (std::uint64_t i = begin; i < end; ++i) f(i, tid);
        },
        const_cast<void*>(static_cast<const void*>(std::addressof(body))));
  }

 private:
  using RawFn = void (*)(void* ctx, std::uint64_t begin, std::uint64_t end, unsigned tid);

  void run(std::uint64_t count, std::uint64_t grain, RawFn fn, void* ctx);
  void run_lanes(unsigned tid) noexcept;
  void worker_main(unsigned tid);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  unsigned lanes_ = 1;
};

}  // namespace bncg

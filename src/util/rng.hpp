// Deterministic, seedable random number generation.
//
// Every randomized component of the library (generators, dynamics schedulers,
// benchmark workloads) draws from Xoshiro256ss so that runs are exactly
// reproducible from a single 64-bit seed. The engine satisfies
// std::uniform_random_bit_generator and can be plugged into <random>
// distributions, but the convenience members below avoid libstdc++'s
// unspecified distribution algorithms where cross-platform determinism
// matters.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/error.hpp"

namespace bncg {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Deterministic across platforms for a given seed.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state via SplitMix64 expansion of `seed`.
  explicit constexpr Xoshiro256ss(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method for an unbiased, platform-independent result.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) {
    BNCG_REQUIRE(bound > 0, "below() requires a positive bound");
    // Rejection sampling on the top bits: unbiased and branch-light.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    BNCG_REQUIRE(lo <= hi, "uniform_int requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// In-place Fisher–Yates shuffle (deterministic given the engine state).
  template <typename RandomAccessContainer>
  void shuffle(RandomAccessContainer& items) {
    const std::size_t n = items.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child engine; use to give parallel workers
  /// decorrelated deterministic streams.
  [[nodiscard]] Xoshiro256ss fork() noexcept {
    return Xoshiro256ss((*this)() ^ 0x9e3779b97f4a7c15ULL);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace bncg

// Internal wiring between the dispatch core (simd.cpp) and the per-ISA
// translation units (simd_avx2.cpp / simd_avx512.cpp). Not installed into
// any public surface — include only from src/util/simd*.cpp.
#pragma once

#include "util/simd.hpp"

namespace bncg::simd::detail {

/// Overwrites the table entries this ISA implements and returns true, or —
/// when the translation unit was compiled without the ISA (non-x86 target,
/// compiler without the flag) — touches nothing and returns false. The
/// false return is what caps simd_max_level() below the CPU's capability.
bool fill_avx2(Kernels<std::uint8_t>& k8, Kernels<std::uint16_t>& k16, WordKernels& kw);
bool fill_avx512(Kernels<std::uint8_t>& k8, Kernels<std::uint16_t>& k16, WordKernels& kw);

}  // namespace bncg::simd::detail

// AVX2 kernel implementations (32 u8 / 16 u16 lanes per vector).
//
// Compiled with -mavx2 for this translation unit only (see CMakeLists.txt);
// the dispatch core calls detail::fill_avx2 strictly after a runtime CPUID
// check, so no AVX2 instruction executes on a CPU without it. On targets
// where the compiler cannot build AVX2 at all, the fallback stub at the
// bottom reports the level unavailable and the tables stay scalar.
//
// Exactness notes, kernel by kernel, against the scalar references in
// simd.cpp (all-integer arithmetic — every equivalence is exact, not
// approximate):
//  * combine_sum/row_sum_max accumulate u8 via _mm256_sad_epu8 (exact u64
//    partial sums) and u16 via zero-extended u32 lanes; both reduce mod 2^32
//    exactly like the scalar uint32 accumulator (which cannot overflow for
//    u8/u16 values at n < 65535 anyway).
//  * scan_min_update computes min1' = min(min1, val) and
//    min2' = min(min2, max(min1, val)) — with min1 ≤ min2 these reproduce
//    the scalar's branch cascade exactly — and derives the strict-< "val
//    beat min1" mask as min1' != min1, updating argmin only at set mask
//    bits in ascending lane order (the scalar write order).
//  * unsigned compares are synthesized from min/max identities
//    (a > b ⇔ max(a, b) != b), since AVX2 has no unsigned compare-gt.
//  * addition_row adds in the element width (wrap mod 2^width), matching
//    the scalar static_cast<Dist> exactly.
//  * the collect_* filters emit indices in ascending order via
//    movemask + count-trailing-zeros, preserving the scalar's output order.
#include <cstdint>

#include "util/simd_detail.hpp"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <bit>

namespace bncg::simd {
namespace {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

inline __m256i loadu(const void* p) {
  return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}
inline void storeu(void* p, __m256i v) { _mm256_storeu_si256(static_cast<__m256i*>(p), v); }

inline u64 hsum_epi64(__m256i v) {
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  return static_cast<u64>(_mm_cvtsi128_si64(s)) +
         static_cast<u64>(_mm_extract_epi64(s, 1));
}

inline u32 hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
  s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
  return static_cast<u32>(_mm_cvtsi128_si32(s));
}

inline u8 hmax_epu8(__m256i v) {
  __m128i m = _mm_max_epu8(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 8));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 4));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 2));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 1));
  return static_cast<u8>(_mm_cvtsi128_si32(m));
}

inline u16 hmax_epu16(__m256i v) {
  __m128i m = _mm_max_epu16(_mm256_castsi256_si128(v), _mm256_extracti128_si256(v, 1));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 8));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 4));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 2));
  return static_cast<u16>(_mm_cvtsi128_si32(m));
}

// ------------------------------------------------------------ u8 kernels

u64 combine_sum_u8(const u8* m, const u8* c, u32 n, u8 inf) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  __m256i worst = zero;
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m256i t = _mm256_min_epu8(loadu(m + y), loadu(c + y));
    worst = _mm256_max_epu8(worst, t);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(t, zero));
  }
  u32 sum = static_cast<u32>(hsum_epi64(acc));
  u8 w = hmax_epu8(worst);
  for (; y < n; ++y) {
    const u8 t = std::min(m[y], c[y]);
    sum += t;
    w = std::max(w, t);
  }
  if (w >= inf) return kInfCostResult;
  return u64{sum} + (n - 1);
}

u64 combine_max_u8(const u8* m, const u8* c, u32 n, u8 inf) {
  __m256i worst = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    worst = _mm256_max_epu8(worst, _mm256_min_epu8(loadu(m + y), loadu(c + y)));
  }
  u8 w = hmax_epu8(worst);
  for (; y < n; ++y) w = std::max(w, std::min(m[y], c[y]));
  return w >= inf ? kInfCostResult : u64{1} + w;
}

u64 deletion_ecc_u8(const u8* m, u32 n, u8 inf) {
  __m256i worst = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 32 <= n; y += 32) worst = _mm256_max_epu8(worst, loadu(m + y));
  u8 w = hmax_epu8(worst);
  for (; y < n; ++y) w = std::max(w, m[y]);
  return w >= inf ? kInfCostResult : u64{1} + w;
}

void scan_min_update_u8(u8* min1, u8* min2, u32* argmin, const u8* row, u32 z, u32 n) {
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m256i val = loadu(row + y);
    const __m256i m1 = loadu(min1 + y);
    const __m256i m2 = loadu(min2 + y);
    const __m256i nm1 = _mm256_min_epu8(m1, val);
    storeu(min1 + y, nm1);
    storeu(min2 + y, _mm256_min_epu8(m2, _mm256_max_epu8(m1, val)));
    u32 bits = ~static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(nm1, m1)));
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      argmin[y + static_cast<u32>(b)] = z;
    }
  }
  for (; y < n; ++y) {
    const u8 val = row[y];
    if (val < min1[y]) {
      min2[y] = min1[y];
      min1[y] = val;
      argmin[y] = z;
    } else if (val < min2[y]) {
      min2[y] = val;
    }
  }
}

void select_mrow_u8(u8* m, const u8* min1, const u8* min2, const u32* argmin, u32 w, u32 n) {
  const __m256i wv = _mm256_set1_epi32(static_cast<int>(w));
  const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m256i a0 = _mm256_cmpeq_epi32(loadu(argmin + y), wv);
    const __m256i a1 = _mm256_cmpeq_epi32(loadu(argmin + y + 8), wv);
    const __m256i a2 = _mm256_cmpeq_epi32(loadu(argmin + y + 16), wv);
    const __m256i a3 = _mm256_cmpeq_epi32(loadu(argmin + y + 24), wv);
    __m256i mask = _mm256_packs_epi16(_mm256_packs_epi32(a0, a1), _mm256_packs_epi32(a2, a3));
    mask = _mm256_permutevar8x32_epi32(mask, order);
    storeu(m + y, _mm256_blendv_epi8(loadu(min1 + y), loadu(min2 + y), mask));
  }
  for (; y < n; ++y) m[y] = argmin[y] == w ? min2[y] : min1[y];
}

void r1_add_u8(u32* r1, u8 m1, const u8* row, u32 n) {
  const __m256i m1v = _mm256_set1_epi32(static_cast<int>(m1));
  const __m256i zero = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 8 <= n; y += 8) {
    const __m256i r =
        _mm256_cvtepu8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + y)));
    const __m256i d = _mm256_max_epi32(_mm256_sub_epi32(m1v, r), zero);
    storeu(r1 + y, _mm256_add_epi32(loadu(r1 + y), d));
  }
  for (; y < n; ++y) r1[y] += static_cast<u32>(m1 > row[y] ? m1 - row[y] : 0);
}

void r1_sub_u8(u32* r1, u8 m1, const u8* row, u32 n) {
  const __m256i m1v = _mm256_set1_epi32(static_cast<int>(m1));
  const __m256i zero = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 8 <= n; y += 8) {
    const __m256i r =
        _mm256_cvtepu8_epi32(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(row + y)));
    const __m256i d = _mm256_max_epi32(_mm256_sub_epi32(m1v, r), zero);
    storeu(r1 + y, _mm256_sub_epi32(loadu(r1 + y), d));
  }
  for (; y < n; ++y) r1[y] -= static_cast<u32>(m1 > row[y] ? m1 - row[y] : 0);
}

void addition_row_u8(const u8* src, u8* dst, const u8* ru, const u8* rv, u8 au, u8 av, u32 n,
                     u8 inf) {
  const __m256i auv = _mm256_set1_epi8(static_cast<char>(au));
  const __m256i avv = _mm256_set1_epi8(static_cast<char>(av));
  const __m256i infv = _mm256_set1_epi8(static_cast<char>(inf));
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m256i t1 = _mm256_add_epi8(auv, loadu(rv + y));
    const __m256i t2 = _mm256_add_epi8(avv, loadu(ru + y));
    const __m256i nd = _mm256_min_epu8(loadu(src + y), _mm256_min_epu8(t1, t2));
    storeu(dst + y, _mm256_min_epu8(nd, infv));
  }
  for (; y < n; ++y) {
    const u8 t1 = static_cast<u8>(au + rv[y]);
    const u8 t2 = static_cast<u8>(av + ru[y]);
    dst[y] = std::min(std::min(src[y], std::min(t1, t2)), inf);
  }
}

void row_sum_max_u8(const u8* row, u32 n, u32* sum, u8* mx) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  __m256i worst = zero;
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m256i t = loadu(row + y);
    worst = _mm256_max_epu8(worst, t);
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(t, zero));
  }
  u32 s = static_cast<u32>(hsum_epi64(acc));
  u8 w = hmax_epu8(worst);
  for (; y < n; ++y) {
    s += row[y];
    w = std::max(w, row[y]);
  }
  *sum = s;
  *mx = w;
}

void finite_max2_u8(const u8* ru, const u8* rv, u32 n, u8 inf, u8* ecc_u, u8* ecc_v) {
  const __m256i infv = _mm256_set1_epi8(static_cast<char>(inf));
  __m256i eu = _mm256_setzero_si256();
  __m256i ev = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m256i du = loadu(ru + y);
    const __m256i dv = loadu(rv + y);
    // d >= inf ⇔ max(d, inf) == d; zero those lanes before the max fold.
    eu = _mm256_max_epu8(eu, _mm256_andnot_si256(_mm256_cmpeq_epi8(_mm256_max_epu8(du, infv), du), du));
    ev = _mm256_max_epu8(ev, _mm256_andnot_si256(_mm256_cmpeq_epi8(_mm256_max_epu8(dv, infv), dv), dv));
  }
  u8 mu = hmax_epu8(eu);
  u8 mv = hmax_epu8(ev);
  for (; y < n; ++y) {
    mu = std::max(mu, ru[y] >= inf ? u8{0} : ru[y]);
    mv = std::max(mv, rv[y] >= inf ? u8{0} : rv[y]);
  }
  *ecc_u = mu;
  *ecc_v = mv;
}

u32 collect_above_u8(const u8* vals, u32 n, std::int32_t cap, u32 skip, u32* out) {
  u32 count = 0;
  if (cap < 0) {
    for (u32 y = 0; y < n; ++y) {
      out[count] = y;
      count += static_cast<u32>(y != skip);
    }
    return count;
  }
  if (cap >= 0xFF) return 0;  // u8 values never exceed the cap
  const __m256i capv = _mm256_set1_epi8(static_cast<char>(static_cast<u8>(cap)));
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m256i v = loadu(vals + y);
    // v > cap ⇔ max(v, cap) != cap
    u32 bits = ~static_cast<u32>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(_mm256_max_epu8(v, capv), capv)));
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const u32 idx = y + static_cast<u32>(b);
      out[count] = idx;
      count += static_cast<u32>(idx != skip);
    }
  }
  for (; y < n; ++y) {
    if (y != skip && static_cast<std::int32_t>(vals[y]) > cap) out[count++] = y;
  }
  return count;
}

u32 collect_below_u8(const u8* vals, u32 n, std::int32_t cap, u32 skip, u32* out) {
  u32 count = 0;
  if (cap <= 0) return 0;  // u8 values are never negative
  if (cap > 0xFF) {
    for (u32 y = 0; y < n; ++y) {
      out[count] = y;
      count += static_cast<u32>(y != skip);
    }
    return count;
  }
  // v < cap ⇔ v <= cap−1 ⇔ max(v, cap−1) == cap−1.
  const __m256i capv = _mm256_set1_epi8(static_cast<char>(static_cast<u8>(cap - 1)));
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m256i v = loadu(vals + y);
    u32 bits =
        static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(_mm256_max_epu8(v, capv), capv)));
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const u32 idx = y + static_cast<u32>(b);
      out[count] = idx;
      count += static_cast<u32>(idx != skip);
    }
  }
  for (; y < n; ++y) {
    if (y != skip && static_cast<std::int32_t>(vals[y]) < cap) out[count++] = y;
  }
  return count;
}

void min_fold_u8(u8* dst, const u8* row, u32 n) {
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    storeu(dst + y, _mm256_min_epu8(loadu(dst + y), loadu(row + y)));
  }
  for (; y < n; ++y) dst[y] = std::min(dst[y], row[y]);
}

u32 collect_absdiff_eq1_u8(const u8* ru, const u8* rv, u32 n, u32* out) {
  const __m256i one = _mm256_set1_epi8(1);
  u32 count = 0;
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m256i a = loadu(ru + y);
    const __m256i b = loadu(rv + y);
    const __m256i d = _mm256_or_si256(_mm256_subs_epu8(a, b), _mm256_subs_epu8(b, a));
    u32 bits = static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(d, one)));
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      out[count++] = y + static_cast<u32>(bit);
    }
  }
  for (; y < n; ++y) {
    const u8 du = ru[y];
    const u8 dv = rv[y];
    if ((du > dv ? du - dv : dv - du) == 1) out[count++] = y;
  }
  return count;
}

u32 collect_absdiff_gt1_u8(const u8* ru, const u8* rv, u32 n, u32* out) {
  const __m256i one = _mm256_set1_epi8(1);
  u32 count = 0;
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m256i a = loadu(ru + y);
    const __m256i b = loadu(rv + y);
    const __m256i d = _mm256_or_si256(_mm256_subs_epu8(a, b), _mm256_subs_epu8(b, a));
    // d > 1 ⇔ max(d, 1) != 1
    u32 bits = ~static_cast<u32>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(_mm256_max_epu8(d, one), one)));
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      out[count++] = y + static_cast<u32>(bit);
    }
  }
  for (; y < n; ++y) {
    const u8 du = ru[y];
    const u8 dv = rv[y];
    if ((du > dv ? du - dv : dv - du) > 1) out[count++] = y;
  }
  return count;
}

// ----------------------------------------------------------- u16 kernels

inline __m256i widen_sum_epi32(__m256i acc, __m256i t) {
  const __m256i zero = _mm256_setzero_si256();
  return _mm256_add_epi32(
      acc, _mm256_add_epi32(_mm256_unpacklo_epi16(t, zero), _mm256_unpackhi_epi16(t, zero)));
}

u64 combine_sum_u16(const u16* m, const u16* c, u32 n, u16 inf) {
  __m256i acc = _mm256_setzero_si256();
  __m256i worst = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m256i t = _mm256_min_epu16(loadu(m + y), loadu(c + y));
    worst = _mm256_max_epu16(worst, t);
    acc = widen_sum_epi32(acc, t);
  }
  u32 sum = hsum_epi32(acc);
  u16 w = hmax_epu16(worst);
  for (; y < n; ++y) {
    const u16 t = std::min(m[y], c[y]);
    sum += t;
    w = std::max(w, t);
  }
  if (w >= inf) return kInfCostResult;
  return u64{sum} + (n - 1);
}

u64 combine_max_u16(const u16* m, const u16* c, u32 n, u16 inf) {
  __m256i worst = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    worst = _mm256_max_epu16(worst, _mm256_min_epu16(loadu(m + y), loadu(c + y)));
  }
  u16 w = hmax_epu16(worst);
  for (; y < n; ++y) w = std::max(w, std::min(m[y], c[y]));
  return w >= inf ? kInfCostResult : u64{1} + w;
}

u64 deletion_ecc_u16(const u16* m, u32 n, u16 inf) {
  __m256i worst = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 16 <= n; y += 16) worst = _mm256_max_epu16(worst, loadu(m + y));
  u16 w = hmax_epu16(worst);
  for (; y < n; ++y) w = std::max(w, m[y]);
  return w >= inf ? kInfCostResult : u64{1} + w;
}

void scan_min_update_u16(u16* min1, u16* min2, u32* argmin, const u16* row, u32 z, u32 n) {
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m256i val = loadu(row + y);
    const __m256i m1 = loadu(min1 + y);
    const __m256i m2 = loadu(min2 + y);
    const __m256i nm1 = _mm256_min_epu16(m1, val);
    storeu(min1 + y, nm1);
    storeu(min2 + y, _mm256_min_epu16(m2, _mm256_max_epu16(m1, val)));
    u32 bits =
        ~static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi16(nm1, m1))) & 0x55555555u;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      argmin[y + static_cast<u32>(b >> 1)] = z;
    }
  }
  for (; y < n; ++y) {
    const u16 val = row[y];
    if (val < min1[y]) {
      min2[y] = min1[y];
      min1[y] = val;
      argmin[y] = z;
    } else if (val < min2[y]) {
      min2[y] = val;
    }
  }
}

void select_mrow_u16(u16* m, const u16* min1, const u16* min2, const u32* argmin, u32 w, u32 n) {
  const __m256i wv = _mm256_set1_epi32(static_cast<int>(w));
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m256i a0 = _mm256_cmpeq_epi32(loadu(argmin + y), wv);
    const __m256i a1 = _mm256_cmpeq_epi32(loadu(argmin + y + 8), wv);
    __m256i mask = _mm256_packs_epi32(a0, a1);
    mask = _mm256_permute4x64_epi64(mask, _MM_SHUFFLE(3, 1, 2, 0));
    storeu(m + y, _mm256_blendv_epi8(loadu(min1 + y), loadu(min2 + y), mask));
  }
  for (; y < n; ++y) m[y] = argmin[y] == w ? min2[y] : min1[y];
}

void r1_add_u16(u32* r1, u16 m1, const u16* row, u32 n) {
  const __m256i m1v = _mm256_set1_epi32(static_cast<int>(m1));
  const __m256i zero = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 8 <= n; y += 8) {
    const __m256i r =
        _mm256_cvtepu16_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(row + y)));
    const __m256i d = _mm256_max_epi32(_mm256_sub_epi32(m1v, r), zero);
    storeu(r1 + y, _mm256_add_epi32(loadu(r1 + y), d));
  }
  for (; y < n; ++y) r1[y] += static_cast<u32>(m1 > row[y] ? m1 - row[y] : 0);
}

void r1_sub_u16(u32* r1, u16 m1, const u16* row, u32 n) {
  const __m256i m1v = _mm256_set1_epi32(static_cast<int>(m1));
  const __m256i zero = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 8 <= n; y += 8) {
    const __m256i r =
        _mm256_cvtepu16_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(row + y)));
    const __m256i d = _mm256_max_epi32(_mm256_sub_epi32(m1v, r), zero);
    storeu(r1 + y, _mm256_sub_epi32(loadu(r1 + y), d));
  }
  for (; y < n; ++y) r1[y] -= static_cast<u32>(m1 > row[y] ? m1 - row[y] : 0);
}

void addition_row_u16(const u16* src, u16* dst, const u16* ru, const u16* rv, u16 au, u16 av,
                      u32 n, u16 inf) {
  const __m256i auv = _mm256_set1_epi16(static_cast<short>(au));
  const __m256i avv = _mm256_set1_epi16(static_cast<short>(av));
  const __m256i infv = _mm256_set1_epi16(static_cast<short>(inf));
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m256i t1 = _mm256_add_epi16(auv, loadu(rv + y));
    const __m256i t2 = _mm256_add_epi16(avv, loadu(ru + y));
    const __m256i nd = _mm256_min_epu16(loadu(src + y), _mm256_min_epu16(t1, t2));
    storeu(dst + y, _mm256_min_epu16(nd, infv));
  }
  for (; y < n; ++y) {
    const u16 t1 = static_cast<u16>(au + rv[y]);
    const u16 t2 = static_cast<u16>(av + ru[y]);
    dst[y] = std::min(std::min(src[y], std::min(t1, t2)), inf);
  }
}

void row_sum_max_u16(const u16* row, u32 n, u32* sum, u16* mx) {
  __m256i acc = _mm256_setzero_si256();
  __m256i worst = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m256i t = loadu(row + y);
    worst = _mm256_max_epu16(worst, t);
    acc = widen_sum_epi32(acc, t);
  }
  u32 s = hsum_epi32(acc);
  u16 w = hmax_epu16(worst);
  for (; y < n; ++y) {
    s += row[y];
    w = std::max(w, row[y]);
  }
  *sum = s;
  *mx = w;
}

void finite_max2_u16(const u16* ru, const u16* rv, u32 n, u16 inf, u16* ecc_u, u16* ecc_v) {
  const __m256i infv = _mm256_set1_epi16(static_cast<short>(inf));
  __m256i eu = _mm256_setzero_si256();
  __m256i ev = _mm256_setzero_si256();
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m256i du = loadu(ru + y);
    const __m256i dv = loadu(rv + y);
    eu = _mm256_max_epu16(
        eu, _mm256_andnot_si256(_mm256_cmpeq_epi16(_mm256_max_epu16(du, infv), du), du));
    ev = _mm256_max_epu16(
        ev, _mm256_andnot_si256(_mm256_cmpeq_epi16(_mm256_max_epu16(dv, infv), dv), dv));
  }
  u16 mu = hmax_epu16(eu);
  u16 mv = hmax_epu16(ev);
  for (; y < n; ++y) {
    mu = std::max(mu, ru[y] >= inf ? u16{0} : ru[y]);
    mv = std::max(mv, rv[y] >= inf ? u16{0} : rv[y]);
  }
  *ecc_u = mu;
  *ecc_v = mv;
}

u32 collect_above_u16(const u16* vals, u32 n, std::int32_t cap, u32 skip, u32* out) {
  u32 count = 0;
  if (cap < 0) {
    for (u32 y = 0; y < n; ++y) {
      out[count] = y;
      count += static_cast<u32>(y != skip);
    }
    return count;
  }
  if (cap >= 0xFFFF) return 0;
  const __m256i capv = _mm256_set1_epi16(static_cast<short>(static_cast<u16>(cap)));
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m256i v = loadu(vals + y);
    u32 bits = ~static_cast<u32>(_mm256_movemask_epi8(
                   _mm256_cmpeq_epi16(_mm256_max_epu16(v, capv), capv))) &
               0x55555555u;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const u32 idx = y + static_cast<u32>(b >> 1);
      out[count] = idx;
      count += static_cast<u32>(idx != skip);
    }
  }
  for (; y < n; ++y) {
    if (y != skip && static_cast<std::int32_t>(vals[y]) > cap) out[count++] = y;
  }
  return count;
}

u32 collect_below_u16(const u16* vals, u32 n, std::int32_t cap, u32 skip, u32* out) {
  u32 count = 0;
  if (cap <= 0) return 0;
  if (cap > 0xFFFF) {
    for (u32 y = 0; y < n; ++y) {
      out[count] = y;
      count += static_cast<u32>(y != skip);
    }
    return count;
  }
  const __m256i capv = _mm256_set1_epi16(static_cast<short>(static_cast<u16>(cap - 1)));
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m256i v = loadu(vals + y);
    u32 bits = static_cast<u32>(_mm256_movemask_epi8(
                   _mm256_cmpeq_epi16(_mm256_max_epu16(v, capv), capv))) &
               0x55555555u;
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const u32 idx = y + static_cast<u32>(b >> 1);
      out[count] = idx;
      count += static_cast<u32>(idx != skip);
    }
  }
  for (; y < n; ++y) {
    if (y != skip && static_cast<std::int32_t>(vals[y]) < cap) out[count++] = y;
  }
  return count;
}

void min_fold_u16(u16* dst, const u16* row, u32 n) {
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    storeu(dst + y, _mm256_min_epu16(loadu(dst + y), loadu(row + y)));
  }
  for (; y < n; ++y) dst[y] = std::min(dst[y], row[y]);
}

u32 collect_absdiff_eq1_u16(const u16* ru, const u16* rv, u32 n, u32* out) {
  const __m256i one = _mm256_set1_epi16(1);
  u32 count = 0;
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m256i a = loadu(ru + y);
    const __m256i b = loadu(rv + y);
    const __m256i d = _mm256_or_si256(_mm256_subs_epu16(a, b), _mm256_subs_epu16(b, a));
    u32 bits = static_cast<u32>(_mm256_movemask_epi8(_mm256_cmpeq_epi16(d, one))) & 0x55555555u;
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      out[count++] = y + static_cast<u32>(bit >> 1);
    }
  }
  for (; y < n; ++y) {
    const u16 du = ru[y];
    const u16 dv = rv[y];
    if ((du > dv ? du - dv : dv - du) == 1) out[count++] = y;
  }
  return count;
}

u32 collect_absdiff_gt1_u16(const u16* ru, const u16* rv, u32 n, u32* out) {
  const __m256i one = _mm256_set1_epi16(1);
  u32 count = 0;
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m256i a = loadu(ru + y);
    const __m256i b = loadu(rv + y);
    const __m256i d = _mm256_or_si256(_mm256_subs_epu16(a, b), _mm256_subs_epu16(b, a));
    u32 bits = ~static_cast<u32>(_mm256_movemask_epi8(
                   _mm256_cmpeq_epi16(_mm256_max_epu16(d, one), one))) &
               0x55555555u;
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      out[count++] = y + static_cast<u32>(bit >> 1);
    }
  }
  for (; y < n; ++y) {
    const u16 du = ru[y];
    const u16 dv = rv[y];
    if ((du > dv ? du - dv : dv - du) > 1) out[count++] = y;
  }
  return count;
}

// ----------------------------------------------------------- word kernels

u64 or_gather_avx2(const u64* words, const u32* idx, std::size_t count) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i vi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    acc = _mm256_or_si256(
        acc, _mm256_i32gather_epi64(reinterpret_cast<const long long*>(words), vi, 8));
  }
  const __m128i r = _mm_or_si128(_mm256_castsi256_si128(acc), _mm256_extracti128_si256(acc, 1));
  u64 word = static_cast<u64>(_mm_cvtsi128_si64(r)) | static_cast<u64>(_mm_extract_epi64(r, 1));
  for (; i < count; ++i) word |= words[idx[i]];
  return word;
}

}  // namespace

namespace detail {

bool fill_avx2(Kernels<u8>& k8, Kernels<u16>& k16, WordKernels& kw) {
  k8.combine_sum = &combine_sum_u8;
  k8.combine_max = &combine_max_u8;
  k8.deletion_ecc = &deletion_ecc_u8;
  k8.scan_min_update = &scan_min_update_u8;
  k8.select_mrow = &select_mrow_u8;
  k8.r1_add = &r1_add_u8;
  k8.r1_sub = &r1_sub_u8;
  k8.addition_row = &addition_row_u8;
  k8.row_sum_max = &row_sum_max_u8;
  k8.finite_max2 = &finite_max2_u8;
  k8.collect_above = &collect_above_u8;
  k8.collect_below = &collect_below_u8;
  k8.min_fold = &min_fold_u8;
  k8.collect_absdiff_eq1 = &collect_absdiff_eq1_u8;
  k8.collect_absdiff_gt1 = &collect_absdiff_gt1_u8;

  k16.combine_sum = &combine_sum_u16;
  k16.combine_max = &combine_max_u16;
  k16.deletion_ecc = &deletion_ecc_u16;
  k16.scan_min_update = &scan_min_update_u16;
  k16.select_mrow = &select_mrow_u16;
  k16.r1_add = &r1_add_u16;
  k16.r1_sub = &r1_sub_u16;
  k16.addition_row = &addition_row_u16;
  k16.row_sum_max = &row_sum_max_u16;
  k16.finite_max2 = &finite_max2_u16;
  k16.collect_above = &collect_above_u16;
  k16.collect_below = &collect_below_u16;
  k16.min_fold = &min_fold_u16;
  k16.collect_absdiff_eq1 = &collect_absdiff_eq1_u16;
  k16.collect_absdiff_gt1 = &collect_absdiff_gt1_u16;

  kw.or_gather = &or_gather_avx2;
  return true;
}

}  // namespace detail
}  // namespace bncg::simd

#else  // compiler or target without AVX2

namespace bncg::simd::detail {

bool fill_avx2(Kernels<std::uint8_t>&, Kernels<std::uint16_t>&, WordKernels&) { return false; }

}  // namespace bncg::simd::detail

#endif

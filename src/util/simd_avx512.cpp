// AVX-512 kernel implementations (64 u8 / 32 u16 lanes per vector).
//
// Requires both avx512f (foundation, 512-bit integer ops, 32-bit gathers)
// and avx512bw (byte/word min/max and mask-register compares → __mmask64);
// the runtime CPUID probe in simd.cpp checks the same pair before this
// fill is ever consulted. Compiled with -mavx512f -mavx512bw for this
// translation unit only; everywhere the toolchain can't do that, the stub
// at the bottom reports the level unavailable.
//
// Same exactness contract as the AVX2 TU — all-integer, bit-identical to
// the scalar references. The mask registers actually simplify several
// kernels relative to AVX2: strict-< and unsigned-> exist directly as
// compare predicates (no min/max identity games), and the argmin/index
// emission loops walk a __mmask64 with count-trailing-zeros in ascending
// lane order, preserving the scalar write order.
#include <cstdint>

#include "util/simd_detail.hpp"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__x86_64__)

#include <immintrin.h>

#include <algorithm>
#include <bit>

namespace bncg::simd {
namespace {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

inline __m512i loadu(const void* p) { return _mm512_loadu_si512(p); }
inline void storeu(void* p, __m512i v) { _mm512_storeu_si512(p, v); }

inline u8 hmax_epu8_512(__m512i v) {
  __m256i a = _mm256_max_epu8(_mm512_castsi512_si256(v), _mm512_extracti64x4_epi64(v, 1));
  __m128i m = _mm_max_epu8(_mm256_castsi256_si128(a), _mm256_extracti128_si256(a, 1));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 8));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 4));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 2));
  m = _mm_max_epu8(m, _mm_srli_si128(m, 1));
  return static_cast<u8>(_mm_cvtsi128_si32(m));
}

inline u16 hmax_epu16_512(__m512i v) {
  __m256i a = _mm256_max_epu16(_mm512_castsi512_si256(v), _mm512_extracti64x4_epi64(v, 1));
  __m128i m = _mm_max_epu16(_mm256_castsi256_si128(a), _mm256_extracti128_si256(a, 1));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 8));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 4));
  m = _mm_max_epu16(m, _mm_srli_si128(m, 2));
  return static_cast<u16>(_mm_cvtsi128_si32(m));
}

inline __m512i widen_sum_epi32_512(__m512i acc, __m512i t) {
  const __m512i zero = _mm512_setzero_si512();
  return _mm512_add_epi32(
      acc, _mm512_add_epi32(_mm512_unpacklo_epi16(t, zero), _mm512_unpackhi_epi16(t, zero)));
}

// ------------------------------------------------------------ u8 kernels

u64 combine_sum_u8(const u8* m, const u8* c, u32 n, u8 inf) {
  const __m512i zero = _mm512_setzero_si512();
  __m512i acc = zero;
  __m512i worst = zero;
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    const __m512i t = _mm512_min_epu8(loadu(m + y), loadu(c + y));
    worst = _mm512_max_epu8(worst, t);
    acc = _mm512_add_epi64(acc, _mm512_sad_epu8(t, zero));
  }
  u32 sum = static_cast<u32>(_mm512_reduce_add_epi64(acc));
  u8 w = hmax_epu8_512(worst);
  for (; y < n; ++y) {
    const u8 t = std::min(m[y], c[y]);
    sum += t;
    w = std::max(w, t);
  }
  if (w >= inf) return kInfCostResult;
  return u64{sum} + (n - 1);
}

u64 combine_max_u8(const u8* m, const u8* c, u32 n, u8 inf) {
  __m512i worst = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    worst = _mm512_max_epu8(worst, _mm512_min_epu8(loadu(m + y), loadu(c + y)));
  }
  u8 w = hmax_epu8_512(worst);
  for (; y < n; ++y) w = std::max(w, std::min(m[y], c[y]));
  return w >= inf ? kInfCostResult : u64{1} + w;
}

u64 deletion_ecc_u8(const u8* m, u32 n, u8 inf) {
  __m512i worst = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 64 <= n; y += 64) worst = _mm512_max_epu8(worst, loadu(m + y));
  u8 w = hmax_epu8_512(worst);
  for (; y < n; ++y) w = std::max(w, m[y]);
  return w >= inf ? kInfCostResult : u64{1} + w;
}

void scan_min_update_u8(u8* min1, u8* min2, u32* argmin, const u8* row, u32 z, u32 n) {
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    const __m512i val = loadu(row + y);
    const __m512i m1 = loadu(min1 + y);
    const __m512i m2 = loadu(min2 + y);
    storeu(min1 + y, _mm512_min_epu8(m1, val));
    storeu(min2 + y, _mm512_min_epu8(m2, _mm512_max_epu8(m1, val)));
    u64 bits = _mm512_cmplt_epu8_mask(val, m1);  // strict <, scalar tie-break
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      argmin[y + static_cast<u32>(b)] = z;
    }
  }
  for (; y < n; ++y) {
    const u8 val = row[y];
    if (val < min1[y]) {
      min2[y] = min1[y];
      min1[y] = val;
      argmin[y] = z;
    } else if (val < min2[y]) {
      min2[y] = val;
    }
  }
}

void select_mrow_u8(u8* m, const u8* min1, const u8* min2, const u32* argmin, u32 w, u32 n) {
  const __m512i wv = _mm512_set1_epi32(static_cast<int>(w));
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    __mmask64 mask = 0;
    for (u32 j = 0; j < 4; ++j) {
      const __mmask16 mj = _mm512_cmpeq_epi32_mask(loadu(argmin + y + 16 * j), wv);
      mask |= static_cast<u64>(mj) << (16 * j);
    }
    storeu(m + y, _mm512_mask_blend_epi8(mask, loadu(min1 + y), loadu(min2 + y)));
  }
  for (; y < n; ++y) m[y] = argmin[y] == w ? min2[y] : min1[y];
}

void r1_add_u8(u32* r1, u8 m1, const u8* row, u32 n) {
  const __m512i m1v = _mm512_set1_epi32(static_cast<int>(m1));
  const __m512i zero = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m512i r =
        _mm512_cvtepu8_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(row + y)));
    const __m512i d = _mm512_max_epi32(_mm512_sub_epi32(m1v, r), zero);
    storeu(r1 + y, _mm512_add_epi32(loadu(r1 + y), d));
  }
  for (; y < n; ++y) r1[y] += static_cast<u32>(m1 > row[y] ? m1 - row[y] : 0);
}

void r1_sub_u8(u32* r1, u8 m1, const u8* row, u32 n) {
  const __m512i m1v = _mm512_set1_epi32(static_cast<int>(m1));
  const __m512i zero = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m512i r =
        _mm512_cvtepu8_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(row + y)));
    const __m512i d = _mm512_max_epi32(_mm512_sub_epi32(m1v, r), zero);
    storeu(r1 + y, _mm512_sub_epi32(loadu(r1 + y), d));
  }
  for (; y < n; ++y) r1[y] -= static_cast<u32>(m1 > row[y] ? m1 - row[y] : 0);
}

void addition_row_u8(const u8* src, u8* dst, const u8* ru, const u8* rv, u8 au, u8 av, u32 n,
                     u8 inf) {
  const __m512i auv = _mm512_set1_epi8(static_cast<char>(au));
  const __m512i avv = _mm512_set1_epi8(static_cast<char>(av));
  const __m512i infv = _mm512_set1_epi8(static_cast<char>(inf));
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    const __m512i t1 = _mm512_add_epi8(auv, loadu(rv + y));
    const __m512i t2 = _mm512_add_epi8(avv, loadu(ru + y));
    const __m512i nd = _mm512_min_epu8(loadu(src + y), _mm512_min_epu8(t1, t2));
    storeu(dst + y, _mm512_min_epu8(nd, infv));
  }
  for (; y < n; ++y) {
    const u8 t1 = static_cast<u8>(au + rv[y]);
    const u8 t2 = static_cast<u8>(av + ru[y]);
    dst[y] = std::min(std::min(src[y], std::min(t1, t2)), inf);
  }
}

void row_sum_max_u8(const u8* row, u32 n, u32* sum, u8* mx) {
  const __m512i zero = _mm512_setzero_si512();
  __m512i acc = zero;
  __m512i worst = zero;
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    const __m512i t = loadu(row + y);
    worst = _mm512_max_epu8(worst, t);
    acc = _mm512_add_epi64(acc, _mm512_sad_epu8(t, zero));
  }
  u32 s = static_cast<u32>(_mm512_reduce_add_epi64(acc));
  u8 w = hmax_epu8_512(worst);
  for (; y < n; ++y) {
    s += row[y];
    w = std::max(w, row[y]);
  }
  *sum = s;
  *mx = w;
}

void finite_max2_u8(const u8* ru, const u8* rv, u32 n, u8 inf, u8* ecc_u, u8* ecc_v) {
  const __m512i infv = _mm512_set1_epi8(static_cast<char>(inf));
  __m512i eu = _mm512_setzero_si512();
  __m512i ev = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    const __m512i du = loadu(ru + y);
    const __m512i dv = loadu(rv + y);
    // finite ⇔ d < inf: fold only those lanes into the max.
    eu = _mm512_mask_max_epu8(eu, _mm512_cmplt_epu8_mask(du, infv), eu, du);
    ev = _mm512_mask_max_epu8(ev, _mm512_cmplt_epu8_mask(dv, infv), ev, dv);
  }
  u8 mu = hmax_epu8_512(eu);
  u8 mv = hmax_epu8_512(ev);
  for (; y < n; ++y) {
    mu = std::max(mu, ru[y] >= inf ? u8{0} : ru[y]);
    mv = std::max(mv, rv[y] >= inf ? u8{0} : rv[y]);
  }
  *ecc_u = mu;
  *ecc_v = mv;
}

u32 collect_above_u8(const u8* vals, u32 n, std::int32_t cap, u32 skip, u32* out) {
  u32 count = 0;
  if (cap < 0) {
    for (u32 y = 0; y < n; ++y) {
      out[count] = y;
      count += static_cast<u32>(y != skip);
    }
    return count;
  }
  if (cap >= 0xFF) return 0;
  const __m512i capv = _mm512_set1_epi8(static_cast<char>(static_cast<u8>(cap)));
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    u64 bits = _mm512_cmpgt_epu8_mask(loadu(vals + y), capv);
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const u32 idx = y + static_cast<u32>(b);
      out[count] = idx;
      count += static_cast<u32>(idx != skip);
    }
  }
  for (; y < n; ++y) {
    if (y != skip && static_cast<std::int32_t>(vals[y]) > cap) out[count++] = y;
  }
  return count;
}

u32 collect_below_u8(const u8* vals, u32 n, std::int32_t cap, u32 skip, u32* out) {
  u32 count = 0;
  if (cap <= 0) return 0;
  if (cap > 0xFF) {
    for (u32 y = 0; y < n; ++y) {
      out[count] = y;
      count += static_cast<u32>(y != skip);
    }
    return count;
  }
  const __m512i capv = _mm512_set1_epi8(static_cast<char>(static_cast<u8>(cap)));
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    u64 bits = _mm512_cmplt_epu8_mask(loadu(vals + y), capv);
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const u32 idx = y + static_cast<u32>(b);
      out[count] = idx;
      count += static_cast<u32>(idx != skip);
    }
  }
  for (; y < n; ++y) {
    if (y != skip && static_cast<std::int32_t>(vals[y]) < cap) out[count++] = y;
  }
  return count;
}

void min_fold_u8(u8* dst, const u8* row, u32 n) {
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    storeu(dst + y, _mm512_min_epu8(loadu(dst + y), loadu(row + y)));
  }
  for (; y < n; ++y) dst[y] = std::min(dst[y], row[y]);
}

u32 collect_absdiff_eq1_u8(const u8* ru, const u8* rv, u32 n, u32* out) {
  const __m512i one = _mm512_set1_epi8(1);
  u32 count = 0;
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    const __m512i a = loadu(ru + y);
    const __m512i b = loadu(rv + y);
    const __m512i d = _mm512_or_si512(_mm512_subs_epu8(a, b), _mm512_subs_epu8(b, a));
    u64 bits = _mm512_cmpeq_epu8_mask(d, one);
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      out[count++] = y + static_cast<u32>(bit);
    }
  }
  for (; y < n; ++y) {
    const u8 du = ru[y];
    const u8 dv = rv[y];
    if ((du > dv ? du - dv : dv - du) == 1) out[count++] = y;
  }
  return count;
}

u32 collect_absdiff_gt1_u8(const u8* ru, const u8* rv, u32 n, u32* out) {
  const __m512i one = _mm512_set1_epi8(1);
  u32 count = 0;
  u32 y = 0;
  for (; y + 64 <= n; y += 64) {
    const __m512i a = loadu(ru + y);
    const __m512i b = loadu(rv + y);
    const __m512i d = _mm512_or_si512(_mm512_subs_epu8(a, b), _mm512_subs_epu8(b, a));
    u64 bits = _mm512_cmpgt_epu8_mask(d, one);
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      out[count++] = y + static_cast<u32>(bit);
    }
  }
  for (; y < n; ++y) {
    const u8 du = ru[y];
    const u8 dv = rv[y];
    if ((du > dv ? du - dv : dv - du) > 1) out[count++] = y;
  }
  return count;
}

// ----------------------------------------------------------- u16 kernels

u64 combine_sum_u16(const u16* m, const u16* c, u32 n, u16 inf) {
  __m512i acc = _mm512_setzero_si512();
  __m512i worst = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m512i t = _mm512_min_epu16(loadu(m + y), loadu(c + y));
    worst = _mm512_max_epu16(worst, t);
    acc = widen_sum_epi32_512(acc, t);
  }
  u32 sum = static_cast<u32>(_mm512_reduce_add_epi32(acc));
  u16 w = hmax_epu16_512(worst);
  for (; y < n; ++y) {
    const u16 t = std::min(m[y], c[y]);
    sum += t;
    w = std::max(w, t);
  }
  if (w >= inf) return kInfCostResult;
  return u64{sum} + (n - 1);
}

u64 combine_max_u16(const u16* m, const u16* c, u32 n, u16 inf) {
  __m512i worst = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    worst = _mm512_max_epu16(worst, _mm512_min_epu16(loadu(m + y), loadu(c + y)));
  }
  u16 w = hmax_epu16_512(worst);
  for (; y < n; ++y) w = std::max(w, std::min(m[y], c[y]));
  return w >= inf ? kInfCostResult : u64{1} + w;
}

u64 deletion_ecc_u16(const u16* m, u32 n, u16 inf) {
  __m512i worst = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 32 <= n; y += 32) worst = _mm512_max_epu16(worst, loadu(m + y));
  u16 w = hmax_epu16_512(worst);
  for (; y < n; ++y) w = std::max(w, m[y]);
  return w >= inf ? kInfCostResult : u64{1} + w;
}

void scan_min_update_u16(u16* min1, u16* min2, u32* argmin, const u16* row, u32 z, u32 n) {
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m512i val = loadu(row + y);
    const __m512i m1 = loadu(min1 + y);
    const __m512i m2 = loadu(min2 + y);
    storeu(min1 + y, _mm512_min_epu16(m1, val));
    storeu(min2 + y, _mm512_min_epu16(m2, _mm512_max_epu16(m1, val)));
    u32 bits = _mm512_cmplt_epu16_mask(val, m1);
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      argmin[y + static_cast<u32>(b)] = z;
    }
  }
  for (; y < n; ++y) {
    const u16 val = row[y];
    if (val < min1[y]) {
      min2[y] = min1[y];
      min1[y] = val;
      argmin[y] = z;
    } else if (val < min2[y]) {
      min2[y] = val;
    }
  }
}

void select_mrow_u16(u16* m, const u16* min1, const u16* min2, const u32* argmin, u32 w, u32 n) {
  const __m512i wv = _mm512_set1_epi32(static_cast<int>(w));
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __mmask16 lo = _mm512_cmpeq_epi32_mask(loadu(argmin + y), wv);
    const __mmask16 hi = _mm512_cmpeq_epi32_mask(loadu(argmin + y + 16), wv);
    const __mmask32 mask = static_cast<__mmask32>(lo) | (static_cast<__mmask32>(hi) << 16);
    storeu(m + y, _mm512_mask_blend_epi16(mask, loadu(min1 + y), loadu(min2 + y)));
  }
  for (; y < n; ++y) m[y] = argmin[y] == w ? min2[y] : min1[y];
}

void r1_add_u16(u32* r1, u16 m1, const u16* row, u32 n) {
  const __m512i m1v = _mm512_set1_epi32(static_cast<int>(m1));
  const __m512i zero = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m512i r =
        _mm512_cvtepu16_epi32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + y)));
    const __m512i d = _mm512_max_epi32(_mm512_sub_epi32(m1v, r), zero);
    storeu(r1 + y, _mm512_add_epi32(loadu(r1 + y), d));
  }
  for (; y < n; ++y) r1[y] += static_cast<u32>(m1 > row[y] ? m1 - row[y] : 0);
}

void r1_sub_u16(u32* r1, u16 m1, const u16* row, u32 n) {
  const __m512i m1v = _mm512_set1_epi32(static_cast<int>(m1));
  const __m512i zero = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 16 <= n; y += 16) {
    const __m512i r =
        _mm512_cvtepu16_epi32(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + y)));
    const __m512i d = _mm512_max_epi32(_mm512_sub_epi32(m1v, r), zero);
    storeu(r1 + y, _mm512_sub_epi32(loadu(r1 + y), d));
  }
  for (; y < n; ++y) r1[y] -= static_cast<u32>(m1 > row[y] ? m1 - row[y] : 0);
}

void addition_row_u16(const u16* src, u16* dst, const u16* ru, const u16* rv, u16 au, u16 av,
                      u32 n, u16 inf) {
  const __m512i auv = _mm512_set1_epi16(static_cast<short>(au));
  const __m512i avv = _mm512_set1_epi16(static_cast<short>(av));
  const __m512i infv = _mm512_set1_epi16(static_cast<short>(inf));
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m512i t1 = _mm512_add_epi16(auv, loadu(rv + y));
    const __m512i t2 = _mm512_add_epi16(avv, loadu(ru + y));
    const __m512i nd = _mm512_min_epu16(loadu(src + y), _mm512_min_epu16(t1, t2));
    storeu(dst + y, _mm512_min_epu16(nd, infv));
  }
  for (; y < n; ++y) {
    const u16 t1 = static_cast<u16>(au + rv[y]);
    const u16 t2 = static_cast<u16>(av + ru[y]);
    dst[y] = std::min(std::min(src[y], std::min(t1, t2)), inf);
  }
}

void row_sum_max_u16(const u16* row, u32 n, u32* sum, u16* mx) {
  __m512i acc = _mm512_setzero_si512();
  __m512i worst = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m512i t = loadu(row + y);
    worst = _mm512_max_epu16(worst, t);
    acc = widen_sum_epi32_512(acc, t);
  }
  u32 s = static_cast<u32>(_mm512_reduce_add_epi32(acc));
  u16 w = hmax_epu16_512(worst);
  for (; y < n; ++y) {
    s += row[y];
    w = std::max(w, row[y]);
  }
  *sum = s;
  *mx = w;
}

void finite_max2_u16(const u16* ru, const u16* rv, u32 n, u16 inf, u16* ecc_u, u16* ecc_v) {
  const __m512i infv = _mm512_set1_epi16(static_cast<short>(inf));
  __m512i eu = _mm512_setzero_si512();
  __m512i ev = _mm512_setzero_si512();
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m512i du = loadu(ru + y);
    const __m512i dv = loadu(rv + y);
    eu = _mm512_mask_max_epu16(eu, _mm512_cmplt_epu16_mask(du, infv), eu, du);
    ev = _mm512_mask_max_epu16(ev, _mm512_cmplt_epu16_mask(dv, infv), ev, dv);
  }
  u16 mu = hmax_epu16_512(eu);
  u16 mv = hmax_epu16_512(ev);
  for (; y < n; ++y) {
    mu = std::max(mu, ru[y] >= inf ? u16{0} : ru[y]);
    mv = std::max(mv, rv[y] >= inf ? u16{0} : rv[y]);
  }
  *ecc_u = mu;
  *ecc_v = mv;
}

u32 collect_above_u16(const u16* vals, u32 n, std::int32_t cap, u32 skip, u32* out) {
  u32 count = 0;
  if (cap < 0) {
    for (u32 y = 0; y < n; ++y) {
      out[count] = y;
      count += static_cast<u32>(y != skip);
    }
    return count;
  }
  if (cap >= 0xFFFF) return 0;
  const __m512i capv = _mm512_set1_epi16(static_cast<short>(static_cast<u16>(cap)));
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    u32 bits = _mm512_cmpgt_epu16_mask(loadu(vals + y), capv);
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const u32 idx = y + static_cast<u32>(b);
      out[count] = idx;
      count += static_cast<u32>(idx != skip);
    }
  }
  for (; y < n; ++y) {
    if (y != skip && static_cast<std::int32_t>(vals[y]) > cap) out[count++] = y;
  }
  return count;
}

u32 collect_below_u16(const u16* vals, u32 n, std::int32_t cap, u32 skip, u32* out) {
  u32 count = 0;
  if (cap <= 0) return 0;
  if (cap > 0xFFFF) {
    for (u32 y = 0; y < n; ++y) {
      out[count] = y;
      count += static_cast<u32>(y != skip);
    }
    return count;
  }
  const __m512i capv = _mm512_set1_epi16(static_cast<short>(static_cast<u16>(cap)));
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    u32 bits = _mm512_cmplt_epu16_mask(loadu(vals + y), capv);
    while (bits != 0) {
      const int b = std::countr_zero(bits);
      bits &= bits - 1;
      const u32 idx = y + static_cast<u32>(b);
      out[count] = idx;
      count += static_cast<u32>(idx != skip);
    }
  }
  for (; y < n; ++y) {
    if (y != skip && static_cast<std::int32_t>(vals[y]) < cap) out[count++] = y;
  }
  return count;
}

void min_fold_u16(u16* dst, const u16* row, u32 n) {
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    storeu(dst + y, _mm512_min_epu16(loadu(dst + y), loadu(row + y)));
  }
  for (; y < n; ++y) dst[y] = std::min(dst[y], row[y]);
}

u32 collect_absdiff_eq1_u16(const u16* ru, const u16* rv, u32 n, u32* out) {
  const __m512i one = _mm512_set1_epi16(1);
  u32 count = 0;
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m512i a = loadu(ru + y);
    const __m512i b = loadu(rv + y);
    const __m512i d = _mm512_or_si512(_mm512_subs_epu16(a, b), _mm512_subs_epu16(b, a));
    u32 bits = _mm512_cmpeq_epu16_mask(d, one);
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      out[count++] = y + static_cast<u32>(bit);
    }
  }
  for (; y < n; ++y) {
    const u16 du = ru[y];
    const u16 dv = rv[y];
    if ((du > dv ? du - dv : dv - du) == 1) out[count++] = y;
  }
  return count;
}

u32 collect_absdiff_gt1_u16(const u16* ru, const u16* rv, u32 n, u32* out) {
  const __m512i one = _mm512_set1_epi16(1);
  u32 count = 0;
  u32 y = 0;
  for (; y + 32 <= n; y += 32) {
    const __m512i a = loadu(ru + y);
    const __m512i b = loadu(rv + y);
    const __m512i d = _mm512_or_si512(_mm512_subs_epu16(a, b), _mm512_subs_epu16(b, a));
    u32 bits = _mm512_cmpgt_epu16_mask(d, one);
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      out[count++] = y + static_cast<u32>(bit);
    }
  }
  for (; y < n; ++y) {
    const u16 du = ru[y];
    const u16 dv = rv[y];
    if ((du > dv ? du - dv : dv - du) > 1) out[count++] = y;
  }
  return count;
}

// ----------------------------------------------------------- word kernels

u64 or_gather_avx512(const u64* words, const u32* idx, std::size_t count) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i vi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    acc = _mm512_or_si512(acc, _mm512_i32gather_epi64(vi, words, 8));
  }
  u64 word = static_cast<u64>(_mm512_reduce_or_epi64(acc));
  for (; i < count; ++i) word |= words[idx[i]];
  return word;
}

}  // namespace

namespace detail {

bool fill_avx512(Kernels<u8>& k8, Kernels<u16>& k16, WordKernels& kw) {
  k8.combine_sum = &combine_sum_u8;
  k8.combine_max = &combine_max_u8;
  k8.deletion_ecc = &deletion_ecc_u8;
  k8.scan_min_update = &scan_min_update_u8;
  k8.select_mrow = &select_mrow_u8;
  k8.r1_add = &r1_add_u8;
  k8.r1_sub = &r1_sub_u8;
  k8.addition_row = &addition_row_u8;
  k8.row_sum_max = &row_sum_max_u8;
  k8.finite_max2 = &finite_max2_u8;
  k8.collect_above = &collect_above_u8;
  k8.collect_below = &collect_below_u8;
  k8.min_fold = &min_fold_u8;
  k8.collect_absdiff_eq1 = &collect_absdiff_eq1_u8;
  k8.collect_absdiff_gt1 = &collect_absdiff_gt1_u8;

  k16.combine_sum = &combine_sum_u16;
  k16.combine_max = &combine_max_u16;
  k16.deletion_ecc = &deletion_ecc_u16;
  k16.scan_min_update = &scan_min_update_u16;
  k16.select_mrow = &select_mrow_u16;
  k16.r1_add = &r1_add_u16;
  k16.r1_sub = &r1_sub_u16;
  k16.addition_row = &addition_row_u16;
  k16.row_sum_max = &row_sum_max_u16;
  k16.finite_max2 = &finite_max2_u16;
  k16.collect_above = &collect_above_u16;
  k16.collect_below = &collect_below_u16;
  k16.min_fold = &min_fold_u16;
  k16.collect_absdiff_eq1 = &collect_absdiff_eq1_u16;
  k16.collect_absdiff_gt1 = &collect_absdiff_gt1_u16;

  kw.or_gather = &or_gather_avx512;
  return true;
}

}  // namespace detail
}  // namespace bncg::simd

#else  // toolchain or target without AVX-512 F+BW

namespace bncg::simd::detail {

bool fill_avx512(Kernels<std::uint8_t>&, Kernels<std::uint16_t>&, WordKernels&) { return false; }

}  // namespace bncg::simd::detail

#endif

// Dispatch core: the scalar reference kernels (the exactness baseline every
// other level is fuzzed against) and the runtime level selection.
#include "util/simd.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string_view>

#include "util/simd_detail.hpp"

namespace bncg {

namespace simd {
namespace {

// ------------------------------------------------------- scalar reference
//
// These are the semantics. They intentionally mirror the original loop
// bodies in core/swap_engine.cpp and core/search_state.cpp (including the
// uint32 wraparound accumulator of combine_sum and the strict-< tie-breaks),
// and the compiler is free to auto-vectorize them at the portable baseline
// ISA — "scalar" names the dispatch level, not a promise of one lane.

template <typename Dist>
std::uint64_t combine_sum_scalar(const Dist* m, const Dist* c, std::uint32_t n, Dist inf) {
  std::uint32_t sum = 0;
  Dist worst = 0;
  for (std::uint32_t y = 0; y < n; ++y) {
    const Dist t = std::min(m[y], c[y]);
    sum += t;
    worst = std::max(worst, t);
  }
  if (worst >= inf) return kInfCostResult;
  return std::uint64_t{sum} + (n - 1);
}

template <typename Dist>
std::uint64_t combine_max_scalar(const Dist* m, const Dist* c, std::uint32_t n, Dist inf) {
  Dist worst = 0;
  for (std::uint32_t y = 0; y < n; ++y) worst = std::max(worst, std::min(m[y], c[y]));
  return worst >= inf ? kInfCostResult : std::uint64_t{1} + worst;
}

template <typename Dist>
std::uint64_t deletion_ecc_scalar(const Dist* m, std::uint32_t n, Dist inf) {
  Dist worst = 0;
  for (std::uint32_t y = 0; y < n; ++y) worst = std::max(worst, m[y]);
  return worst >= inf ? kInfCostResult : std::uint64_t{1} + worst;
}

template <typename Dist>
void scan_min_update_scalar(Dist* min1, Dist* min2, std::uint32_t* argmin, const Dist* row,
                            std::uint32_t z, std::uint32_t n) {
  for (std::uint32_t y = 0; y < n; ++y) {
    const Dist val = row[y];
    if (val < min1[y]) {
      min2[y] = min1[y];
      min1[y] = val;
      argmin[y] = z;
    } else if (val < min2[y]) {
      min2[y] = val;
    }
  }
}

template <typename Dist>
void select_mrow_scalar(Dist* m, const Dist* min1, const Dist* min2, const std::uint32_t* argmin,
                        std::uint32_t w, std::uint32_t n) {
  for (std::uint32_t y = 0; y < n; ++y) m[y] = argmin[y] == w ? min2[y] : min1[y];
}

template <typename Dist>
void r1_add_scalar(std::uint32_t* r1, Dist m1, const Dist* row, std::uint32_t n) {
  for (std::uint32_t y = 0; y < n; ++y) {
    r1[y] += static_cast<std::uint32_t>(m1 > row[y] ? m1 - row[y] : 0);
  }
}

template <typename Dist>
void r1_sub_scalar(std::uint32_t* r1, Dist m1, const Dist* row, std::uint32_t n) {
  for (std::uint32_t y = 0; y < n; ++y) {
    r1[y] -= static_cast<std::uint32_t>(m1 > row[y] ? m1 - row[y] : 0);
  }
}

template <typename Dist>
void addition_row_scalar(const Dist* src, Dist* dst, const Dist* ru, const Dist* rv, Dist au,
                         Dist av, std::uint32_t n, Dist inf) {
  for (std::uint32_t y = 0; y < n; ++y) {
    const Dist t1 = static_cast<Dist>(au + rv[y]);
    const Dist t2 = static_cast<Dist>(av + ru[y]);
    const Dist nd = std::min(src[y], std::min(t1, t2));
    dst[y] = std::min(nd, inf);
  }
}

template <typename Dist>
void row_sum_max_scalar(const Dist* row, std::uint32_t n, std::uint32_t* sum, Dist* mx) {
  std::uint32_t s = 0;
  Dist m = 0;
  for (std::uint32_t y = 0; y < n; ++y) {
    s += row[y];
    m = std::max(m, row[y]);
  }
  *sum = s;
  *mx = m;
}

template <typename Dist>
void finite_max2_scalar(const Dist* ru, const Dist* rv, std::uint32_t n, Dist inf, Dist* ecc_u,
                        Dist* ecc_v) {
  Dist eu = 0;
  Dist ev = 0;
  for (std::uint32_t y = 0; y < n; ++y) {
    const Dist du = ru[y];
    const Dist dv = rv[y];
    eu = std::max(eu, du >= inf ? Dist{0} : du);
    ev = std::max(ev, dv >= inf ? Dist{0} : dv);
  }
  *ecc_u = eu;
  *ecc_v = ev;
}

template <typename Dist>
std::uint32_t collect_above_scalar(const Dist* vals, std::uint32_t n, std::int32_t cap,
                                   std::uint32_t skip, std::uint32_t* out) {
  std::uint32_t count = 0;
  for (std::uint32_t y = 0; y < n; ++y) {
    if (y != skip && static_cast<std::int32_t>(vals[y]) > cap) out[count++] = y;
  }
  return count;
}

template <typename Dist>
std::uint32_t collect_below_scalar(const Dist* vals, std::uint32_t n, std::int32_t cap,
                                   std::uint32_t skip, std::uint32_t* out) {
  std::uint32_t count = 0;
  for (std::uint32_t y = 0; y < n; ++y) {
    if (y != skip && static_cast<std::int32_t>(vals[y]) < cap) out[count++] = y;
  }
  return count;
}

template <typename Dist>
void min_fold_scalar(Dist* dst, const Dist* row, std::uint32_t n) {
  for (std::uint32_t y = 0; y < n; ++y) dst[y] = std::min(dst[y], row[y]);
}

template <typename Dist>
std::uint32_t collect_absdiff_eq1_scalar(const Dist* ru, const Dist* rv, std::uint32_t n,
                                         std::uint32_t* out) {
  std::uint32_t count = 0;
  for (std::uint32_t y = 0; y < n; ++y) {
    const Dist du = ru[y];
    const Dist dv = rv[y];
    if ((du > dv ? du - dv : dv - du) == 1) out[count++] = y;
  }
  return count;
}

template <typename Dist>
std::uint32_t collect_absdiff_gt1_scalar(const Dist* ru, const Dist* rv, std::uint32_t n,
                                         std::uint32_t* out) {
  std::uint32_t count = 0;
  for (std::uint32_t y = 0; y < n; ++y) {
    const Dist du = ru[y];
    const Dist dv = rv[y];
    if ((du > dv ? du - dv : dv - du) > 1) out[count++] = y;
  }
  return count;
}

std::uint64_t or_gather_scalar(const std::uint64_t* words, const std::uint32_t* idx,
                               std::size_t count) {
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < count; ++i) word |= words[idx[i]];
  return word;
}

template <typename Dist>
void fill_scalar(Kernels<Dist>& k) {
  k.combine_sum = &combine_sum_scalar<Dist>;
  k.combine_max = &combine_max_scalar<Dist>;
  k.deletion_ecc = &deletion_ecc_scalar<Dist>;
  k.scan_min_update = &scan_min_update_scalar<Dist>;
  k.select_mrow = &select_mrow_scalar<Dist>;
  k.r1_add = &r1_add_scalar<Dist>;
  k.r1_sub = &r1_sub_scalar<Dist>;
  k.addition_row = &addition_row_scalar<Dist>;
  k.row_sum_max = &row_sum_max_scalar<Dist>;
  k.finite_max2 = &finite_max2_scalar<Dist>;
  k.collect_above = &collect_above_scalar<Dist>;
  k.collect_below = &collect_below_scalar<Dist>;
  k.min_fold = &min_fold_scalar<Dist>;
  k.collect_absdiff_eq1 = &collect_absdiff_eq1_scalar<Dist>;
  k.collect_absdiff_gt1 = &collect_absdiff_gt1_scalar<Dist>;
}

// --------------------------------------------------------------- dispatch

/// True iff the running CPU can execute the level's instructions. Compiled
/// availability is probed separately (detail::fill_* return false when their
/// TU was built without the ISA).
bool cpu_supports(SimdLevel level) noexcept {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  switch (level) {
    case SimdLevel::Scalar:
      return true;
    case SimdLevel::Avx2:
      return __builtin_cpu_supports("avx2") != 0;
    case SimdLevel::Avx512:
      return __builtin_cpu_supports("avx512f") != 0 && __builtin_cpu_supports("avx512bw") != 0;
  }
  return false;
#else
  return level == SimdLevel::Scalar;
#endif
}

SimdLevel requested_level(SimdLevel fallback) noexcept {
  const char* env = std::getenv("BNCG_SIMD");
  if (env == nullptr || *env == '\0') return fallback;
  const std::string_view v{env};
  if (v == "scalar" || v == "0") return SimdLevel::Scalar;
  if (v == "avx2") return SimdLevel::Avx2;
  if (v == "avx512") return SimdLevel::Avx512;
  return fallback;  // "auto" and anything unrecognized
}

struct Dispatch {
  Kernels<std::uint8_t> k8{};
  Kernels<std::uint16_t> k16{};
  WordKernels kw{};
  SimdLevel max_level = SimdLevel::Scalar;
  SimdLevel active = SimdLevel::Scalar;

  Dispatch() {
    // Probe what this binary + CPU pair can actually run: each fill both
    // installs the level and reports whether it exists at all.
    install(SimdLevel::Avx512);  // installs scalar..avx512, computes max_level
    install(requested_level(max_level));
  }

  /// Rebuilds the tables at min(level, max_level): scalar first, then each
  /// lower-or-equal ISA overwrites what it implements.
  void install(SimdLevel level) noexcept {
    fill_scalar(k8);
    fill_scalar(k16);
    kw.or_gather = &or_gather_scalar;
    active = SimdLevel::Scalar;
    if (level >= SimdLevel::Avx2 && cpu_supports(SimdLevel::Avx2) &&
        detail::fill_avx2(k8, k16, kw)) {
      active = SimdLevel::Avx2;
      max_level = std::max(max_level, SimdLevel::Avx2);
    }
    if (level >= SimdLevel::Avx512 && cpu_supports(SimdLevel::Avx512) &&
        detail::fill_avx512(k8, k16, kw)) {
      active = SimdLevel::Avx512;
      max_level = std::max(max_level, SimdLevel::Avx512);
    }
  }
};

Dispatch& dispatch() noexcept {
  static Dispatch d;
  return d;
}

}  // namespace

const Kernels<std::uint8_t>& k8() noexcept { return dispatch().k8; }
const Kernels<std::uint16_t>& k16() noexcept { return dispatch().k16; }
const WordKernels& words() noexcept { return dispatch().kw; }

}  // namespace simd

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Scalar:
      return "scalar";
    case SimdLevel::Avx2:
      return "avx2";
    case SimdLevel::Avx512:
      return "avx512";
  }
  return "unknown";
}

SimdLevel simd_max_level() noexcept { return simd::dispatch().max_level; }

SimdLevel simd_active_level() noexcept { return simd::dispatch().active; }

SimdLevel simd_set_level(SimdLevel level) noexcept {
  simd::dispatch().install(std::min(level, simd_max_level()));
  return simd_active_level();
}

}  // namespace bncg

// Runtime-dispatched SIMD kernels and 64-byte-aligned storage.
//
// The scan-table maintenance loops (elementwise min1/min2/argmin updates, R1
// relief accumulation, FAR1 filters), the per-candidate combine reductions,
// and the addition-identity row stream are the measured hot loops of both
// delta engines (core/swap_engine, core/search_state). They were scalar
// loops auto-vectorized at the baseline ISA; this header gives them explicit
// AVX2 (and guarded AVX-512) implementations selected once at runtime by
// CPUID, with the plain scalar build remaining the portable fallback — and,
// through BNCG_SIMD, a first-class runtime choice so CI can pin each path.
//
// Exactness contract: every kernel is pure integer arithmetic with the exact
// wrap/compare semantics of the scalar reference next to it in simd.cpp, so
// all dispatch levels produce bit-identical outputs — the differential fuzz
// suite (tests/test_simd_parity.cpp) holds each level against the scalar
// table on random, unaligned-tail, and all-infinity inputs. Nothing here may
// be "approximately" faster: certificates, witnesses, and anneal
// trajectories must not depend on the CPU the binary lands on.
//
// Dispatch model: one function-pointer table per distance width (u8/u16 —
// the width-adaptive encodings of graph/dist_width.hpp) plus one for the
// 64-bit BFS frontier words. Tables are filled scalar-first, then each
// compiled-and-supported level overwrites the entries it implements, so a
// level never needs to provide every kernel. `BNCG_SIMD=scalar|avx2|avx512|
// auto` caps the level at startup; simd_set_level() re-caps it at runtime
// for tests and benchmarks (single-threaded callers only).
//
// Alignment: AlignedVec allocates on 64-byte boundaries so matrix rows of
// power-of-two n start cache-line- (and at n ≥ 64 vector-) aligned. The
// kernels themselves use unaligned loads — required anyway for arbitrary n
// and mid-row tails — so alignment is a throughput hint, never a contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace bncg {

/// Dispatch tiers, ordered: a level implies every lower one is available.
enum class SimdLevel : std::uint8_t { Scalar = 0, Avx2 = 1, Avx512 = 2 };

/// "scalar" / "avx2" / "avx512" — the BNCG_SIMD vocabulary, also what the
/// bench provenance stamps record.
[[nodiscard]] const char* simd_level_name(SimdLevel level) noexcept;

/// Highest level both compiled into this binary and supported by this CPU.
[[nodiscard]] SimdLevel simd_max_level() noexcept;

/// Level the dispatch tables currently point at: min(BNCG_SIMD, max level)
/// until simd_set_level() says otherwise.
[[nodiscard]] SimdLevel simd_active_level() noexcept;

/// Re-points the dispatch tables at `level` (clamped to simd_max_level());
/// returns the level actually installed. Test/bench hook — swaps function
/// pointers non-atomically, so call it only while no kernel runs.
SimdLevel simd_set_level(SimdLevel level) noexcept;

/// Minimal C++17 aligned-new allocator (64-byte default: one cache line,
/// one AVX-512 vector). Interchangeable across all value types per the
/// allocator requirements; vectors using it are distinct types from
/// std::vector<T>, which is deliberate — hot-path slabs opt in explicitly.
template <typename T, std::size_t Align = 64>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");

  /// Explicit rebind: the non-type Align parameter defeats the library's
  /// automatic first-argument replacement.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t count) {
    return static_cast<T*>(::operator new(count * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t count) noexcept {
    ::operator delete(p, count * sizeof(T), std::align_val_t{Align});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const AlignedAllocator<U, Align>&) const noexcept {
    return false;
  }
};

/// 64-byte-aligned vector — the storage type of every distance slab, scan
/// table, and SIMD-scanned scratch row in the engines.
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

namespace simd {

/// The kernels' "cost is infinite" return — bit-identical to core's
/// kInfCost (asserted at the call sites) without util/ depending on core/.
inline constexpr std::uint64_t kInfCostResult = ~std::uint64_t{0};

/// Width-typed kernel table. Semantics are specified against the scalar
/// reference implementations in simd.cpp; `Dist` is uint8_t or uint16_t and
/// `inf` is whatever capped-infinity sentinel the caller's encoding uses
/// (kSearchInf8/kSearchInf16, or the engine's 0xFFFF at u16) — kernels never
/// assume a particular sentinel, only `value >= inf` ⇔ "unreachable".
template <typename Dist>
struct Kernels {
  /// (n−1) + Σ_y min(m[y], c[y]) with uint32 wraparound accumulation, or
  /// kInfCostResult when max_y min(m[y], c[y]) >= inf. The post-swap
  /// sum-model combine.
  std::uint64_t (*combine_sum)(const Dist* m, const Dist* c, std::uint32_t n, Dist inf);
  /// 1 + max_y min(m[y], c[y]), or kInfCostResult at the sentinel.
  std::uint64_t (*combine_max)(const Dist* m, const Dist* c, std::uint32_t n, Dist inf);
  /// 1 + max_y m[y], or kInfCostResult at the sentinel.
  std::uint64_t (*deletion_ecc)(const Dist* m, std::uint32_t n, Dist inf);

  /// Folds neighbor z's distance row into the elementwise scan tables:
  /// per y, val = row[y]; val < min1[y] shifts min1→min2 and takes argmin=z;
  /// else val < min2[y] replaces min2. Strict '<' both places — the FIRST
  /// neighbor in fold order owns ties, which is what makes every dispatch
  /// level (and the engine/naive oracles) agree on argmin witnesses.
  void (*scan_min_update)(Dist* min1, Dist* min2, std::uint32_t* argmin, const Dist* row,
                          std::uint32_t z, std::uint32_t n);
  /// m[y] = (argmin[y] == w) ? min2[y] : min1[y] — materializes M^w.
  void (*select_mrow)(Dist* m, const Dist* min1, const Dist* min2, const std::uint32_t* argmin,
                      std::uint32_t w, std::uint32_t n);
  /// r1[y] += max(0, m1 − row[y]) — one row's R1 relief contribution.
  void (*r1_add)(std::uint32_t* r1, Dist m1, const Dist* row, std::uint32_t n);
  /// r1[y] -= max(0, m1 − row[y]) — exact cancellation of r1_add.
  void (*r1_sub)(std::uint32_t* r1, Dist m1, const Dist* row, std::uint32_t n);

  /// Single-edge-addition identity row stream:
  /// dst[y] = min(src[y], au + rv[y], av + ru[y], inf), all adds in Dist
  /// (mod 2^width — matching the scalar casts; callers keep operands small).
  void (*addition_row)(const Dist* src, Dist* dst, const Dist* ru, const Dist* rv, Dist au,
                       Dist av, std::uint32_t n, Dist inf);
  /// *sum = Σ row[y] (uint32 wraparound), *mx = max_y row[y].
  void (*row_sum_max)(const Dist* row, std::uint32_t n, std::uint32_t* sum, Dist* mx);
  /// Finite eccentricities of two rows at once: *ecc_u = max_y (ru[y] >= inf
  /// ? 0 : ru[y]) and likewise *ecc_v — the addition_saturates scan.
  void (*finite_max2)(const Dist* ru, const Dist* rv, std::uint32_t n, Dist inf, Dist* ecc_u,
                      Dist* ecc_v);

  /// Far-set filter: appends (ascending) every y with y != skip and
  /// int32(vals[y]) > cap to out, returns the count. cap may be negative
  /// (everything passes) or exceed the Dist range (nothing does). out must
  /// hold n entries.
  std::uint32_t (*collect_above)(const Dist* vals, std::uint32_t n, std::int32_t cap,
                                 std::uint32_t skip, std::uint32_t* out);
  /// Cover-candidate filter (the dual of collect_above): appends (ascending)
  /// every y with y != skip and int32(vals[y]) < cap to out, returns the
  /// count. Scanning a far vertex's distance row with cap = ecc − 1 yields
  /// exactly the endpoints whose insertion would relieve that vertex.
  std::uint32_t (*collect_below)(const Dist* vals, std::uint32_t n, std::int32_t cap,
                                 std::uint32_t skip, std::uint32_t* out);
  /// dst[y] = min(dst[y], row[y]) — one leg of the k-way min fold behind the
  /// k-move deviation identity d'(v,x) = 1 + min_i d_{G−v}(w_i, x). Callers
  /// fold rows in ascending endpoint order (DESIGN.md §14); the fold is
  /// order-independent in value but the documented order is the contract the
  /// witness tie-break proofs lean on.
  void (*min_fold)(Dist* dst, const Dist* row, std::uint32_t n);
  /// Dirty-row filter (removal): every y with |ru[y] − rv[y]| == 1.
  std::uint32_t (*collect_absdiff_eq1)(const Dist* ru, const Dist* rv, std::uint32_t n,
                                       std::uint32_t* out);
  /// Changed-row filter (addition): every y with |ru[y] − rv[y]| > 1.
  std::uint32_t (*collect_absdiff_gt1)(const Dist* ru, const Dist* rv, std::uint32_t n,
                                       std::uint32_t* out);
};

/// Kernels over the bit-parallel BFS's 64-bit frontier words.
struct WordKernels {
  /// OR-reduction of a gathered index set: words[idx[0]] | … — the pull
  /// step's per-vertex neighbor gather.
  std::uint64_t (*or_gather)(const std::uint64_t* words, const std::uint32_t* idx,
                             std::size_t count);
};

[[nodiscard]] const Kernels<std::uint8_t>& k8() noexcept;
[[nodiscard]] const Kernels<std::uint16_t>& k16() noexcept;
[[nodiscard]] const WordKernels& words() noexcept;

/// Width-generic accessor: simd::kernels<Dist>() inside the templated scan
/// bodies. Grab the reference once per function, not per row.
template <typename Dist>
[[nodiscard]] inline const Kernels<Dist>& kernels() noexcept {
  if constexpr (sizeof(Dist) == 1) {
    return k8();
  } else {
    return k16();
  }
}

}  // namespace simd
}  // namespace bncg

// Minimal monotonic wall-clock timer used by benches and examples.
#pragma once

#include <chrono>

namespace bncg {

/// Stopwatch over std::chrono::steady_clock. Starts on construction.
class Timer {
 public:
  Timer() noexcept : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bncg

// ASCII table / CSV emitter used by the benchmark harness.
//
// Every bench binary prints the paper-shaped rows through this class so the
// outputs are uniformly formatted and machine-extractable (a `--csv`-style
// dump can be produced from the same data).
#pragma once

#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace bncg {

/// Collects rows of string cells and renders them as an aligned ASCII table
/// or as CSV. Cells are stored as text; use the add_row overload with
/// heterogeneous values via format helpers below.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a data row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows (excluding the header).
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders an aligned ASCII table with a header separator.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places, trimming noise.
[[nodiscard]] std::string fmt(double value, int digits = 3);

/// Formats any integral value.
template <typename T>
  requires std::is_integral_v<T>
[[nodiscard]] std::string fmt(T value) {
  return std::to_string(value);
}

/// PASS/FAIL verdict cell.
[[nodiscard]] std::string verdict(bool ok);

/// Prints a section banner (used between logical blocks of a bench's output).
void print_banner(std::ostream& os, const std::string& title);

}  // namespace bncg

// Precondition checking for the bncg library.
//
// Public API entry points validate their preconditions with BNCG_REQUIRE and
// throw std::invalid_argument on violation, so misuse is diagnosed at the
// boundary instead of corrupting internal state (Core Guidelines I.5/I.6).
#pragma once

#include <stdexcept>
#include <string>

namespace bncg {

/// Throws std::invalid_argument with a message identifying the failed
/// precondition. Used by the BNCG_REQUIRE macro; rarely called directly.
[[noreturn]] inline void precondition_failure(const char* expr, const char* file, int line,
                                              const std::string& msg) {
  throw std::invalid_argument(std::string("bncg precondition failed: ") + expr + " at " + file +
                              ":" + std::to_string(line) + (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace bncg

/// Validate a precondition; throws std::invalid_argument when `expr` is false.
#define BNCG_REQUIRE(expr, msg)                                      \
  do {                                                               \
    if (!(expr)) ::bncg::precondition_failure(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace bncg {

namespace {

// Set while this thread executes chunks of a pool job; nested parallel_for
// calls consult these to run inline under the same lane id.
thread_local bool tl_in_region = false;
thread_local unsigned tl_tid = 0;

unsigned default_lanes() noexcept {
  if (const char* env = std::getenv("BNCG_THREADS"); env != nullptr && *env != '\0') {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<unsigned>(std::min(v, long{256}));
    return 1;  // explicit but unusable value: stay serial rather than guess
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : std::min(hc, 256u);
}

/// RAII region marker so exceptions unwinding through run_lanes still
/// restore the thread-local state.
struct RegionGuard {
  bool prev_in;
  unsigned prev_tid;
  RegionGuard(unsigned tid) noexcept : prev_in(tl_in_region), prev_tid(tl_tid) {
    tl_in_region = true;
    tl_tid = tid;
  }
  ~RegionGuard() noexcept {
    tl_in_region = prev_in;
    tl_tid = prev_tid;
  }
};

}  // namespace

struct ThreadPool::Impl {
  std::vector<std::thread> workers;

  // One-job-at-a-time gate for top-level callers. try_lock: a loser runs
  // its range inline instead of queueing (see header).
  std::mutex job_mutex;

  // Job handoff state, guarded by m except where noted.
  std::mutex m;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  std::uint64_t generation = 0;
  unsigned pending = 0;
  bool stop = false;
  std::exception_ptr exc;  // first exception of the current job

  // Current job; written under m before the generation bump, read by lanes
  // without m (the generation handshake publishes them).
  RawFn fn = nullptr;
  void* ctx = nullptr;
  std::uint64_t count = 0;
  std::uint64_t grain = 1;
  std::atomic<std::uint64_t> cursor{0};
  std::atomic<bool> failed{false};
};

ThreadPool::ThreadPool(unsigned lanes) : impl_(std::make_unique<Impl>()) {
  lanes_ = std::clamp(lanes, 1u, 256u);
  impl_->workers.reserve(lanes_ - 1);
  for (unsigned tid = 1; tid < lanes_; ++tid) {
    impl_->workers.emplace_back([this, tid] { worker_main(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(impl_->m);
    impl_->stop = true;
  }
  impl_->cv_work.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool{default_lanes()};
  return pool;
}

void ThreadPool::run_lanes(unsigned tid) noexcept {
  Impl& im = *impl_;
  const RegionGuard guard{tid};
  for (;;) {
    const std::uint64_t begin = im.cursor.fetch_add(im.grain, std::memory_order_relaxed);
    if (begin >= im.count) break;
    const std::uint64_t end = std::min(begin + im.grain, im.count);
    try {
      im.fn(im.ctx, begin, end, tid);
    } catch (...) {
      if (!im.failed.exchange(true, std::memory_order_acq_rel)) {
        std::lock_guard lk(im.m);
        im.exc = std::current_exception();
      }
      // Stop handing out new chunks; lanes mid-chunk finish on their own.
      im.cursor.store(im.count, std::memory_order_relaxed);
      break;
    }
  }
}

void ThreadPool::worker_main(unsigned tid) {
  Impl& im = *impl_;
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lk(im.m);
      im.cv_work.wait(lk, [&] { return im.stop || im.generation != seen; });
      if (im.stop) return;
      seen = im.generation;
    }
    run_lanes(tid);
    {
      std::lock_guard lk(im.m);
      if (--im.pending == 0) im.cv_done.notify_one();
    }
  }
}

void ThreadPool::run(std::uint64_t count, std::uint64_t grain, RawFn fn, void* ctx) {
  if (count == 0) return;
  if (grain == 0) grain = 1;
  Impl& im = *impl_;

  const auto run_inline = [&](unsigned tid) {
    const RegionGuard guard{tid};
    fn(ctx, 0, count, tid);
  };

  // Nested call from inside a pool task: same lane, inline — per-lane
  // scratch indexed by tid stays single-owner.
  if (tl_in_region) {
    run_inline(tl_tid);
    return;
  }
  if (lanes_ == 1) {
    run_inline(0);
    return;
  }

  // Another thread's top-level job owns the workers: degrade to serial
  // rather than block (concurrent certifies on distinct engines — each
  // owns its scratch, and each inline caller is lane 0 of its own region).
  std::unique_lock job(im.job_mutex, std::try_to_lock);
  if (!job.owns_lock()) {
    run_inline(0);
    return;
  }

  {
    std::lock_guard lk(im.m);
    im.fn = fn;
    im.ctx = ctx;
    im.count = count;
    im.grain = grain;
    im.cursor.store(0, std::memory_order_relaxed);
    im.failed.store(false, std::memory_order_relaxed);
    im.exc = nullptr;
    im.pending = static_cast<unsigned>(im.workers.size());
    ++im.generation;
  }
  im.cv_work.notify_all();

  run_lanes(0);

  std::exception_ptr exc;
  {
    std::unique_lock lk(im.m);
    im.cv_done.wait(lk, [&] { return im.pending == 0; });
    exc = im.exc;
    im.exc = nullptr;
  }
  if (exc) {
    job.unlock();
    std::rethrow_exception(exc);
  }
}

}  // namespace bncg

#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace bncg {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  BNCG_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  BNCG_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    os << "|\n";
  };

  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|" << std::string(width[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int digits) {
  if (std::isnan(value)) return "nan";
  if (std::isinf(value)) return value > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string verdict(bool ok) { return ok ? "PASS" : "FAIL"; }

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace bncg

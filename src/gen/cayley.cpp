#include "gen/cayley.hpp"

#include <algorithm>

#include "gen/paper.hpp"

namespace bncg {

AbelianGroup::AbelianGroup(std::vector<Vertex> moduli) : moduli_(std::move(moduli)) {
  BNCG_REQUIRE(!moduli_.empty(), "group needs at least one cyclic factor");
  std::uint64_t order = 1;
  for (const Vertex m : moduli_) {
    BNCG_REQUIRE(m >= 1, "cyclic factor modulus must be >= 1");
    order *= m;
    BNCG_REQUIRE(order < (std::uint64_t{1} << 31), "group order too large");
  }
  order_ = static_cast<Vertex>(order);
}

Vertex AbelianGroup::id(const std::vector<Vertex>& x) const {
  BNCG_REQUIRE(x.size() == moduli_.size(), "element arity mismatch");
  std::uint64_t result = 0;
  for (std::size_t t = 0; t < moduli_.size(); ++t) {
    result = result * moduli_[t] + (x[t] % moduli_[t]);
  }
  return static_cast<Vertex>(result);
}

std::vector<Vertex> AbelianGroup::element(Vertex a) const {
  BNCG_REQUIRE(a < order_, "element id out of range");
  std::vector<Vertex> x(moduli_.size());
  std::uint64_t rest = a;
  for (std::size_t t = moduli_.size(); t-- > 0;) {
    x[t] = static_cast<Vertex>(rest % moduli_[t]);
    rest /= moduli_[t];
  }
  return x;
}

Vertex AbelianGroup::add(Vertex a, Vertex b) const {
  const std::vector<Vertex> xa = element(a);
  const std::vector<Vertex> xb = element(b);
  std::vector<Vertex> sum(moduli_.size());
  for (std::size_t t = 0; t < moduli_.size(); ++t) sum[t] = (xa[t] + xb[t]) % moduli_[t];
  return id(sum);
}

Vertex AbelianGroup::neg(Vertex a) const {
  const std::vector<Vertex> xa = element(a);
  std::vector<Vertex> inv(moduli_.size());
  for (std::size_t t = 0; t < moduli_.size(); ++t) inv[t] = (moduli_[t] - xa[t]) % moduli_[t];
  return id(inv);
}

Graph cayley_graph(const AbelianGroup& group, const std::vector<Vertex>& gens) {
  BNCG_REQUIRE(!gens.empty(), "generating set must be nonempty");
  for (const Vertex s : gens) {
    BNCG_REQUIRE(s != AbelianGroup::identity(), "identity cannot be a generator");
    BNCG_REQUIRE(std::find(gens.begin(), gens.end(), group.neg(s)) != gens.end(),
                 "generating set must be symmetric (S = -S)");
  }
  Graph g(group.order());
  for (Vertex a = 0; a < group.order(); ++a) {
    for (const Vertex s : gens) {
      const Vertex b = group.add(a, s);
      if (a < b) g.add_edge_if_absent(a, b);
    }
  }
  return g;
}

Graph cayley_graph_from_tuples(const AbelianGroup& group,
                               const std::vector<std::vector<Vertex>>& gens) {
  std::vector<Vertex> ids;
  ids.reserve(gens.size());
  for (const auto& tuple : gens) ids.push_back(group.id(tuple));
  return cayley_graph(group, ids);
}

Graph circulant(Vertex n, const std::vector<Vertex>& offsets) {
  BNCG_REQUIRE(n >= 2, "circulant needs at least 2 vertices");
  const AbelianGroup zn({n});
  std::vector<Vertex> gens;
  for (const Vertex o : offsets) {
    const Vertex s = o % n;
    BNCG_REQUIRE(s != 0, "offset 0 (identity) not allowed");
    gens.push_back(s);
    if ((n - s) % n != s) gens.push_back((n - s) % n);
  }
  std::sort(gens.begin(), gens.end());
  gens.erase(std::unique(gens.begin(), gens.end()), gens.end());
  return cayley_graph(zn, gens);
}

Graph even_sum_subgroup_cayley(Vertex k) {
  BNCG_REQUIRE(k >= 2, "side parameter k must be >= 2");
  // Work inside Z²_{2k} but keep only even-sum elements; reuse the
  // DiagonalTorus id mapping so the result is edge-identical to Figure 4.
  const DiagonalTorus torus(2, k);
  const Vertex n = torus.num_vertices();
  Graph g(n);
  const Vertex two_k = 2 * k;
  for (Vertex v = 0; v < n; ++v) {
    const std::vector<Vertex> cv = torus.coords(v);
    for (const Vertex di : {Vertex{1}, two_k - 1}) {
      for (const Vertex dj : {Vertex{1}, two_k - 1}) {
        const Vertex w = torus.id({(cv[0] + di) % two_k, (cv[1] + dj) % two_k});
        if (v < w) g.add_edge_if_absent(v, w);
      }
    }
  }
  return g;
}

Graph hypercube_cayley(Vertex d) {
  BNCG_REQUIRE(d >= 1 && d < 31, "hypercube dimension out of range");
  const AbelianGroup z2d(std::vector<Vertex>(d, 2));
  std::vector<Vertex> gens;
  for (Vertex t = 0; t < d; ++t) {
    std::vector<Vertex> e(d, 0);
    e[t] = 1;
    gens.push_back(z2d.id(e));
  }
  return cayley_graph(z2d, gens);
}

}  // namespace bncg

// Finite projective planes PG(2, q) and their incidence graphs.
//
// Section 3.1 recalls that Albers et al. disproved the tree conjecture with
// a cyclic sum-equilibrium graph "arising from finite projective planes".
// This module supplies that substrate: the point/line incidence structure of
// PG(2, q) over GF(q) for prime q, and its bipartite incidence graph
// (girth 6, diameter 3, (q+1)-regular) used as a structured starting point
// and property-test instance throughout the suite.
#pragma once

#include <array>
#include <vector>

#include "graph/graph.hpp"

namespace bncg {

/// The projective plane PG(2, q) for prime q: q² + q + 1 points and equally
/// many lines; every line has q + 1 points, every point lies on q + 1 lines,
/// any two distinct points share exactly one line and dually.
class ProjectivePlane {
 public:
  /// Precondition: q is a prime ≥ 2 (arithmetic is over Z_q).
  explicit ProjectivePlane(Vertex q);

  [[nodiscard]] Vertex q() const noexcept { return q_; }

  /// Number of points (= number of lines) = q² + q + 1.
  [[nodiscard]] Vertex num_points() const noexcept {
    return static_cast<Vertex>(points_.size());
  }

  /// Homogeneous coordinates of point `p`, normalized so the first nonzero
  /// coordinate is 1.
  [[nodiscard]] const std::array<Vertex, 3>& point(Vertex p) const { return points_.at(p); }

  /// True iff point `p` lies on line `l` (lines use the same normalized
  /// coordinate set by duality; incidence is ⟨p, l⟩ = 0 in GF(q)).
  [[nodiscard]] bool incident(Vertex p, Vertex l) const;

  /// Points on line `l`, ascending. Always q + 1 of them.
  [[nodiscard]] std::vector<Vertex> points_on_line(Vertex l) const;

  /// The unique line through two distinct points.
  [[nodiscard]] Vertex line_through(Vertex p1, Vertex p2) const;

 private:
  Vertex q_;
  std::vector<std::array<Vertex, 3>> points_;
};

/// Bipartite point–line incidence graph of PG(2, q): vertices 0..N−1 are
/// points, N..2N−1 are lines (N = q² + q + 1). (q+1)-regular, girth 6,
/// diameter 3.
[[nodiscard]] Graph incidence_graph(const ProjectivePlane& plane);

/// True iff n is prime (trial division; inputs are small).
[[nodiscard]] bool is_prime(Vertex n);

}  // namespace bncg

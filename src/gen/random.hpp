// Random graph generators (deterministic under a seeded engine).
//
// The dynamics experiments (Theorems 1, 9, 13) run best-response swap
// dynamics from many random starting graphs; these generators provide the
// instance families: uniform labelled trees (Prüfer), Erdős–Rényi with an
// exact edge budget (swap dynamics preserve edge count, so G(n, m) is the
// natural family), small-world and preferential-attachment graphs for
// heterogeneous starts, and random regular graphs as symmetric starts.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace bncg {

/// Uniform random labelled tree on n vertices via a random Prüfer sequence.
/// Precondition: n ≥ 1.
[[nodiscard]] Graph random_tree(Vertex n, Xoshiro256ss& rng);

/// Erdős–Rényi G(n, m): m distinct edges uniformly at random.
/// Precondition: m ≤ C(n, 2). The result may be disconnected.
[[nodiscard]] Graph random_gnm(Vertex n, std::size_t m, Xoshiro256ss& rng);

/// Erdős–Rényi G(n, p): each edge independently with probability p.
[[nodiscard]] Graph random_gnp(Vertex n, double p, Xoshiro256ss& rng);

/// Connected random graph with exactly m ≥ n−1 edges: a uniform random
/// spanning tree plus m−(n−1) additional uniformly chosen non-tree edges.
[[nodiscard]] Graph random_connected_gnm(Vertex n, std::size_t m, Xoshiro256ss& rng);

/// Watts–Strogatz small world: ring lattice with `half_k` neighbors per side
/// and rewiring probability `beta`, skipping rewires that would create
/// duplicates or self-loops. Preconditions: n > 2·half_k, half_k ≥ 1.
[[nodiscard]] Graph watts_strogatz(Vertex n, Vertex half_k, double beta, Xoshiro256ss& rng);

/// Barabási–Albert preferential attachment: start from a clique on
/// `edges_per_step + 1` vertices, then attach each new vertex to
/// `edges_per_step` distinct existing vertices chosen proportionally to
/// degree. Precondition: n > edges_per_step ≥ 1.
[[nodiscard]] Graph barabasi_albert(Vertex n, Vertex edges_per_step, Xoshiro256ss& rng);

/// Random d-regular graph via the pairing model, resampled until simple.
/// Preconditions: n·d even, d < n.
[[nodiscard]] Graph random_regular(Vertex n, Vertex d, Xoshiro256ss& rng);

}  // namespace bncg

#include "gen/projective.hpp"

#include <array>

namespace bncg {

bool is_prime(Vertex n) {
  if (n < 2) return false;
  for (Vertex d = 2; static_cast<std::uint64_t>(d) * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

ProjectivePlane::ProjectivePlane(Vertex q) : q_(q) {
  BNCG_REQUIRE(is_prime(q), "PG(2, q) implemented for prime q only");
  // Canonical representatives with leading coordinate 1:
  //   (1, y, z) for all y, z;  (0, 1, z) for all z;  (0, 0, 1).
  points_.reserve(static_cast<std::size_t>(q) * q + q + 1);
  for (Vertex y = 0; y < q; ++y) {
    for (Vertex z = 0; z < q; ++z) points_.push_back({1, y, z});
  }
  for (Vertex z = 0; z < q; ++z) points_.push_back({0, 1, z});
  points_.push_back({0, 0, 1});
}

bool ProjectivePlane::incident(Vertex p, Vertex l) const {
  const auto& a = points_.at(p);
  const auto& b = points_.at(l);
  std::uint64_t dot = 0;
  for (int t = 0; t < 3; ++t) dot += static_cast<std::uint64_t>(a[t]) * b[t];
  return dot % q_ == 0;
}

std::vector<Vertex> ProjectivePlane::points_on_line(Vertex l) const {
  std::vector<Vertex> result;
  result.reserve(q_ + 1);
  for (Vertex p = 0; p < num_points(); ++p) {
    if (incident(p, l)) result.push_back(p);
  }
  return result;
}

Vertex ProjectivePlane::line_through(Vertex p1, Vertex p2) const {
  BNCG_REQUIRE(p1 != p2, "line_through needs two distinct points");
  const auto& a = points_.at(p1);
  const auto& b = points_.at(p2);
  // Cross product over GF(q) gives the coefficients of the unique line.
  const auto sub = [this](std::uint64_t x, std::uint64_t y) {
    return static_cast<Vertex>((x + static_cast<std::uint64_t>(q_) * q_ - y) % q_);
  };
  const auto mul = [this](Vertex x, Vertex y) {
    return static_cast<std::uint64_t>(x) * y % q_;
  };
  std::array<Vertex, 3> cross = {sub(mul(a[1], b[2]), mul(a[2], b[1])),
                                 sub(mul(a[2], b[0]), mul(a[0], b[2])),
                                 sub(mul(a[0], b[1]), mul(a[1], b[0]))};
  // Normalize so the first nonzero coordinate is 1 (matching points_).
  Vertex lead = 0;
  while (lead < 3 && cross[lead] == 0) ++lead;
  BNCG_REQUIRE(lead < 3, "points were not distinct projectively");
  // Multiply by the inverse of the leading coefficient (Fermat).
  Vertex inv = 1;
  {
    Vertex base = cross[lead];
    Vertex exp = q_ - 2;
    std::uint64_t acc = 1, b64 = base;
    while (exp > 0) {
      if (exp & 1) acc = acc * b64 % q_;
      b64 = b64 * b64 % q_;
      exp >>= 1;
    }
    inv = static_cast<Vertex>(acc);
  }
  std::array<Vertex, 3> norm;
  for (int t = 0; t < 3; ++t) {
    norm[t] = static_cast<Vertex>(static_cast<std::uint64_t>(cross[t]) * inv % q_);
  }
  for (Vertex l = 0; l < num_points(); ++l) {
    if (points_[l] == norm) return l;
  }
  BNCG_REQUIRE(false, "normalized line not found — internal error");
  return 0;  // unreachable
}

Graph incidence_graph(const ProjectivePlane& plane) {
  const Vertex n = plane.num_points();
  Graph g(2 * n);
  for (Vertex l = 0; l < n; ++l) {
    for (const Vertex p : plane.points_on_line(l)) g.add_edge(p, n + l);
  }
  return g;
}

}  // namespace bncg

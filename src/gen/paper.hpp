// The paper's own constructions.
//
//  * Figure 3 (§3.1): the 13-vertex diameter-3 sum-equilibrium graph that
//    separates general graphs from trees (Theorem 5).
//  * Figure 4 (§4): the "2D torus rotated 45°" max-equilibrium graph of
//    diameter Θ(√n) on n = 2k² vertices (Theorem 12).
//  * The d-dimensional generalization (§4): diameter Θ(n^{1/d}),
//    deletion-critical, and stable under up to d−1 simultaneous insertions.
//
// The diagonal tori come with their closed-form distance function
// d((i⃗),(j⃗)) = max_t circ(i_t, j_t), which the tests cross-check against
// BFS — validating both the construction and the BFS engine at once.
#pragma once

#include <array>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace bncg {

/// Named vertex ids of the Figure 3 graph (13 vertices, 21 edges).
namespace fig3 {
inline constexpr Vertex kA = 0;  ///< hub vertex a
/// b_i for i in {1,2,3}.
[[nodiscard]] constexpr Vertex b(Vertex i) { return i; }
/// c_{i,k} for i in {1,2,3}, k in {1,2}.
[[nodiscard]] constexpr Vertex c(Vertex i, Vertex k) { return 4 + 2 * (i - 1) + (k - 1); }
/// d_i for i in {1,2,3}.
[[nodiscard]] constexpr Vertex d(Vertex i) { return 10 + (i - 1); }
inline constexpr Vertex kNumVertices = 13;
}  // namespace fig3

/// Builds the Figure 3 graph: hub a with neighbors b₁,b₂,b₃; each bᵢ has two
/// private neighbors Cᵢ = {c_{i,1}, c_{i,2}}; dᵢ is adjacent to all of Cᵢ;
/// perfect matchings join Cᵢ and Cⱼ — the "straight" matching between C₁C₂
/// and C₂C₃, the "crossed" one between C₁C₃, exactly as the paper specifies.
///
/// REPRODUCTION FINDING: this literal construction is NOT a sum equilibrium.
/// Each dᵢ improves by swapping dᵢc_{i,k} for the matched partner of c_{i,k}
/// in another petal: the swap gains 1 each for the partner, b_j, and d_j
/// (Lemma 7) but loses only 2 — the paper's case analysis applies Lemma 8's
/// ≥2 penalty to d(dᵢ, c_{i,k}), overlooking the lemma's own exception when
/// the swap target is a *neighbor* of the dropped vertex (every c_{i,k} is
/// matched to its partner, so the penalty is only ≥1). Net improvement: 1.
/// See fig3_refuting_swap() and diameter3_sum_equilibrium_n8(), which
/// restores Theorem 5's existential statement with a certified witness.
[[nodiscard]] Graph fig3_diameter3_graph();

/// The concrete improving swap refuting the literal Figure 3 instance:
/// agent d₁ swaps its edge to c_{1,1} for an edge to c_{2,1} (the C₂-partner
/// of c_{1,1}), decreasing its distance sum 27 → 26. Tests validate it.
[[nodiscard]] constexpr std::array<Vertex, 3> fig3_refuting_swap() {
  return {fig3::d(1), fig3::c(1, 1), fig3::c(2, 1)};
}

/// A certified diameter-3 sum equilibrium on 8 vertices and 11 edges,
/// found by the library's annealing search (core/search.hpp) and verified
/// exhaustively — the witness that upholds Theorem 5's statement ("there is
/// a diameter-3 sum equilibrium graph"). Exhaustive enumeration over all
/// graphs with ≤ 7 vertices (exhaustive_diameter3_sum_equilibrium) shows
/// no smaller witness exists, so this instance is vertex-minimal.
[[nodiscard]] Graph diameter3_sum_equilibrium_n8();

/// The paper's diagonal (45°-rotated) torus in `dim` dimensions with side
/// parameter k: vertices are integer tuples (i₁,…,i_dim) with
/// 0 ≤ i_t < 2k and i₁ ≡ i₂ ≡ … ≡ i_dim (mod 2); each vertex is adjacent to
/// (i₁±1, …, i_dim±1) for every independent sign choice. n = 2·k^dim,
/// every vertex has degree 2^dim, and d(u,v) = max_t circ(u_t, v_t) where
/// circ is distance on the 2k-cycle. Figure 4 is dim = 2.
class DiagonalTorus {
 public:
  /// Preconditions: dim ≥ 1, k ≥ 2, and 2·k^dim representable.
  DiagonalTorus(Vertex dim, Vertex k);

  [[nodiscard]] const Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] Vertex dim() const noexcept { return dim_; }
  [[nodiscard]] Vertex k() const noexcept { return k_; }
  [[nodiscard]] Vertex num_vertices() const noexcept { return graph_.num_vertices(); }

  /// Vertex id of coordinate tuple `coords` (size dim, all same parity,
  /// each in [0, 2k)).
  [[nodiscard]] Vertex id(const std::vector<Vertex>& coords) const;

  /// Coordinate tuple of vertex `v`.
  [[nodiscard]] std::vector<Vertex> coords(Vertex v) const;

  /// Closed-form graph distance: max over coordinates of cyclic distance
  /// min(|a−b|, 2k−|a−b|). Equals BFS distance (verified by tests).
  [[nodiscard]] Vertex expected_distance(Vertex u, Vertex v) const;

  /// The paper's claimed local diameter of every vertex: exactly k.
  [[nodiscard]] Vertex expected_local_diameter() const noexcept { return k_; }

 private:
  Vertex dim_;
  Vertex k_;
  Graph graph_;
};

/// Figure 4 graph: DiagonalTorus(2, k) on n = 2k² vertices.
[[nodiscard]] DiagonalTorus rotated_torus(Vertex k);

/// The §5 remark's example separating *pair* uniformity from *per-vertex*
/// uniformity: a hub of degree `num_paths` (Θ(1/ε)), each ray a path of
/// `path_len` internal vertices ending in a cluster of `cluster` leaves
/// (Θ(εn)). Almost all ordered pairs lie at the single distance
/// 2·(path_len + 1) (cluster-to-cluster across rays), yet the hub has *no*
/// vertex at that distance — so the graph is pair-almost-uniform with
/// arbitrarily large diameter while per-vertex distance uniformity (the
/// hypothesis Conjecture 14 actually needs) fails. Vertex 0 is the hub;
/// each ray lays out its path then its cluster.
[[nodiscard]] Graph broom_graph(Vertex num_paths, Vertex path_len, Vertex cluster);

}  // namespace bncg

#include "gen/classic.hpp"

namespace bncg {

Graph path(Vertex n) {
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) g.add_edge(v - 1, v);
  return g;
}

Graph cycle(Vertex n) {
  BNCG_REQUIRE(n >= 3, "cycle needs at least 3 vertices");
  Graph g = path(n);
  g.add_edge(n - 1, 0);
  return g;
}

Graph star(Vertex n) {
  BNCG_REQUIRE(n >= 1, "star needs at least 1 vertex");
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph double_star(Vertex left_leaves, Vertex right_leaves) {
  Graph g(2 + left_leaves + right_leaves);
  g.add_edge(0, 1);
  for (Vertex i = 0; i < left_leaves; ++i) g.add_edge(0, 2 + i);
  for (Vertex i = 0; i < right_leaves; ++i) g.add_edge(1, 2 + left_leaves + i);
  return g;
}

Graph complete(Vertex n) {
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex w = v + 1; w < n; ++w) g.add_edge(v, w);
  }
  return g;
}

Graph complete_bipartite(Vertex a, Vertex b) {
  Graph g(a + b);
  for (Vertex v = 0; v < a; ++v) {
    for (Vertex w = 0; w < b; ++w) g.add_edge(v, a + w);
  }
  return g;
}

Graph hypercube(Vertex d) {
  BNCG_REQUIRE(d < 31, "hypercube dimension too large");
  const Vertex n = Vertex{1} << d;
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex bit = 0; bit < d; ++bit) {
      const Vertex w = v ^ (Vertex{1} << bit);
      if (v < w) g.add_edge(v, w);
    }
  }
  return g;
}

Graph grid(Vertex rows, Vertex cols) {
  Graph g(rows * cols);
  const auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph torus_standard(Vertex rows, Vertex cols) {
  BNCG_REQUIRE(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
  Graph g = grid(rows, cols);
  const auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) g.add_edge(id(r, cols - 1), id(r, 0));
  for (Vertex c = 0; c < cols; ++c) g.add_edge(id(rows - 1, c), id(0, c));
  return g;
}

Graph petersen() {
  Graph g(10);
  // Outer 5-cycle 0..4, inner pentagram 5..9, spokes i — i+5.
  for (Vertex i = 0; i < 5; ++i) {
    g.add_edge(i, (i + 1) % 5);
    g.add_edge(5 + i, 5 + (i + 2) % 5);
    g.add_edge(i, 5 + i);
  }
  return g;
}

Graph complete_kary_tree(Vertex arity, Vertex height) {
  BNCG_REQUIRE(arity >= 1, "arity must be positive");
  // Count vertices: 1 + k + k² + … + k^height.
  std::uint64_t n = 0;
  std::uint64_t layer = 1;
  for (Vertex h = 0; h <= height; ++h) {
    n += layer;
    layer *= arity;
    BNCG_REQUIRE(n < (std::uint64_t{1} << 31), "tree too large");
  }
  Graph g(static_cast<Vertex>(n));
  // BFS-order ids: children of v are v·k + 1 … v·k + k.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (Vertex c = 1; c <= arity; ++c) {
      const std::uint64_t child = static_cast<std::uint64_t>(v) * arity + c;
      if (child < n) g.add_edge(v, static_cast<Vertex>(child));
    }
  }
  return g;
}

Graph lollipop(Vertex k, Vertex tail) {
  BNCG_REQUIRE(k >= 1, "lollipop clique must be nonempty");
  Graph g = complete(k);
  Vertex prev = k - 1;
  for (Vertex i = 0; i < tail; ++i) {
    const Vertex v = g.add_vertex();
    g.add_edge(prev, v);
    prev = v;
  }
  return g;
}

}  // namespace bncg

// Exhaustive enumeration of labelled trees via Prüfer sequences.
//
// Cayley's formula: there are n^(n−2) labelled trees on n vertices, in
// bijection with Prüfer sequences. Enumerating all of them lets the bench
// suite verify Theorems 1 and 4 *completely* for small n: the set of
// sum-equilibrium trees is exactly the stars, and the set of
// max-equilibrium trees is exactly stars plus double-stars with ≥ 2 leaves
// per root — not just "no counterexample found in sampling".
#pragma once

#include <cstdint>
#include <functional>

#include "graph/graph.hpp"

namespace bncg {

/// Decodes a Prüfer sequence (length n−2, entries in [0, n)) into its tree.
/// Preconditions checked. Linear time.
[[nodiscard]] Graph tree_from_pruefer(Vertex n, const std::vector<Vertex>& pruefer);

/// Number of labelled trees on n vertices, n^(n−2) (1 for n ≤ 2).
/// Precondition: result fits in 64 bits (n ≤ 20).
[[nodiscard]] std::uint64_t num_labelled_trees(Vertex n);

/// Calls `fn` once per labelled tree on n vertices (all n^(n−2) of them, by
/// odometer over Prüfer sequences). `fn` returning false stops early.
/// Precondition: n ≤ 10 (guard against accidental 10^9+ blowups).
void for_each_labelled_tree(Vertex n, const std::function<bool(const Graph&)>& fn);

}  // namespace bncg

#include "gen/trees_enum.hpp"

namespace bncg {

Graph tree_from_pruefer(Vertex n, const std::vector<Vertex>& pruefer) {
  BNCG_REQUIRE(n >= 1, "tree needs at least one vertex");
  BNCG_REQUIRE(n <= 2 ? pruefer.empty() : pruefer.size() == n - 2,
               "Prüfer sequence must have length n-2");
  Graph g(n);
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  if (n < 2) return g;

  std::vector<Vertex> degree(n, 1);
  for (const Vertex x : pruefer) {
    g.check_vertex(x);
    ++degree[x];
  }
  Vertex ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  Vertex leaf = ptr;
  for (const Vertex x : pruefer) {
    g.add_edge(leaf, x);
    if (--degree[x] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  g.add_edge(leaf, n - 1);
  return g;
}

std::uint64_t num_labelled_trees(Vertex n) {
  if (n <= 2) return 1;
  BNCG_REQUIRE(n <= 20, "tree count would overflow");
  std::uint64_t count = 1;
  for (Vertex i = 0; i + 2 < n; ++i) count *= n;
  return count;
}

void for_each_labelled_tree(Vertex n, const std::function<bool(const Graph&)>& fn) {
  BNCG_REQUIRE(n >= 1 && n <= 10, "exhaustive tree enumeration supported for n <= 10");
  if (n <= 2) {
    (void)fn(tree_from_pruefer(n, {}));
    return;
  }
  std::vector<Vertex> pruefer(n - 2, 0);
  for (;;) {
    if (!fn(tree_from_pruefer(n, pruefer))) return;
    // Odometer increment in base n.
    std::size_t pos = 0;
    while (pos < pruefer.size() && ++pruefer[pos] == n) {
      pruefer[pos] = 0;
      ++pos;
    }
    if (pos == pruefer.size()) return;
  }
}

}  // namespace bncg

// Cayley graphs of finite Abelian groups (Section 5, Theorem 15).
//
// Theorem 15 proves Conjecture 14 for Cayley graphs of Abelian groups:
// ε-distance-uniform Abelian Cayley graphs have diameter O(lg n / lg(1/ε)).
// This module provides the group arithmetic (product of cyclic factors),
// Cayley graph construction with a validated symmetric generating set, and
// the specific families the paper mentions — circulants, tori, hypercubes,
// and the even-coordinate-sum subgroup of Z²_{2k} whose Cayley graph with
// S = {(±1, ±1)} is exactly the Figure 4 construction.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace bncg {

/// Finite Abelian group presented as Z_{m₁} × … × Z_{m_d}.
/// Elements are tuples (x₁, …, x_d) with 0 ≤ x_t < m_t, addressed by a
/// mixed-radix dense id in [0, order).
class AbelianGroup {
 public:
  /// Preconditions: at least one factor; every modulus ≥ 1; order fits 32 bits.
  explicit AbelianGroup(std::vector<Vertex> moduli);

  /// |A| = Π m_t.
  [[nodiscard]] Vertex order() const noexcept { return order_; }

  /// Number of cyclic factors d.
  [[nodiscard]] Vertex rank() const noexcept { return static_cast<Vertex>(moduli_.size()); }

  /// Factor moduli.
  [[nodiscard]] const std::vector<Vertex>& moduli() const noexcept { return moduli_; }

  /// Dense id of element tuple `x` (each coordinate reduced mod m_t first,
  /// so callers may pass un-normalized values such as m_t − 1 + 2).
  [[nodiscard]] Vertex id(const std::vector<Vertex>& x) const;

  /// Element tuple of dense id `a`.
  [[nodiscard]] std::vector<Vertex> element(Vertex a) const;

  /// Group operation on dense ids.
  [[nodiscard]] Vertex add(Vertex a, Vertex b) const;

  /// Inverse (negation) on dense ids.
  [[nodiscard]] Vertex neg(Vertex a) const;

  /// Identity element id (always 0).
  [[nodiscard]] static constexpr Vertex identity() noexcept { return 0; }

 private:
  std::vector<Vertex> moduli_;
  Vertex order_;
};

/// Cayley graph Cay(A, S) for a symmetric generating set S given as dense
/// element ids. Preconditions: S = −S, identity ∉ S, S nonempty. The result
/// is |S|-regular (as a simple graph, involutions contribute one edge).
/// Note: connectivity requires S to generate A; the caller's tests check it.
[[nodiscard]] Graph cayley_graph(const AbelianGroup& group, const std::vector<Vertex>& gens);

/// Convenience: Cayley graph from generator tuples instead of dense ids.
[[nodiscard]] Graph cayley_graph_from_tuples(const AbelianGroup& group,
                                             const std::vector<std::vector<Vertex>>& gens);

/// Circulant graph C_n(offsets): Cay(Z_n, {±o : o ∈ offsets}).
[[nodiscard]] Graph circulant(Vertex n, const std::vector<Vertex>& offsets);

/// The paper's §5 example: Cayley graph of the index-2 subgroup
/// {(i, j) ∈ Z²_{2k} : i + j even} with generating set {(±1, ±1)}.
/// Isomorphic to the Figure 4 rotated torus (tests verify edge-level
/// equality under the DiagonalTorus coordinate mapping).
[[nodiscard]] Graph even_sum_subgroup_cayley(Vertex k);

/// Hypercube Q_d as Cay(Z₂^d, {e₁, …, e_d}) — cross-check against
/// gen/classic's direct construction.
[[nodiscard]] Graph hypercube_cayley(Vertex d);

}  // namespace bncg

// Classic deterministic graph families.
//
// These are the reference instances of the test suite and the seeds of the
// dynamics experiments: stars and double-stars are the equilibrium trees of
// Section 2; paths/cycles/grids are canonical non-equilibrium starting
// points; hypercubes and standard tori contrast with the paper's rotated
// torus (a standard torus is *not* in max equilibrium — Theorem 12's remark).
#pragma once

#include "graph/graph.hpp"

namespace bncg {

/// Path P_n: 0 − 1 − … − (n−1).
[[nodiscard]] Graph path(Vertex n);

/// Cycle C_n. Precondition: n ≥ 3.
[[nodiscard]] Graph cycle(Vertex n);

/// Star K_{1,n−1} with center 0. Precondition: n ≥ 1.
[[nodiscard]] Graph star(Vertex n);

/// Double star (Figure 2): two adjacent centers 0 and 1 with `left_leaves`
/// leaves on 0 and `right_leaves` leaves on 1. In max equilibrium iff both
/// sides have ≥ 2 leaves (see Section 2.2).
[[nodiscard]] Graph double_star(Vertex left_leaves, Vertex right_leaves);

/// Complete graph K_n.
[[nodiscard]] Graph complete(Vertex n);

/// Complete bipartite graph K_{a,b} (left part 0..a−1, right part a..a+b−1).
[[nodiscard]] Graph complete_bipartite(Vertex a, Vertex b);

/// d-dimensional hypercube Q_d on 2^d vertices (ids = bitmasks).
[[nodiscard]] Graph hypercube(Vertex d);

/// rows×cols grid (4-neighborhood). Vertex (r, c) has id r·cols + c.
[[nodiscard]] Graph grid(Vertex rows, Vertex cols);

/// rows×cols standard torus (grid with wraparound). Preconditions: ≥ 3 each
/// so that wrap edges are distinct from grid edges.
[[nodiscard]] Graph torus_standard(Vertex rows, Vertex cols);

/// Petersen graph (3-regular, girth 5, diameter 2).
[[nodiscard]] Graph petersen();

/// Complete k-ary tree of the given height (root 0, BFS order ids).
[[nodiscard]] Graph complete_kary_tree(Vertex arity, Vertex height);

/// Lollipop: K_k with a path of `tail` extra vertices attached — a classic
/// high-distance-sum instance for dynamics experiments.
[[nodiscard]] Graph lollipop(Vertex k, Vertex tail);

}  // namespace bncg

#include "gen/random.hpp"

#include <algorithm>
#include <numeric>

namespace bncg {

Graph random_tree(Vertex n, Xoshiro256ss& rng) {
  BNCG_REQUIRE(n >= 1, "tree needs at least one vertex");
  Graph g(n);
  if (n == 1) return g;
  if (n == 2) {
    g.add_edge(0, 1);
    return g;
  }
  // Decode a uniform Prüfer sequence of length n−2.
  std::vector<Vertex> pruefer(n - 2);
  for (auto& x : pruefer) x = static_cast<Vertex>(rng.below(n));

  std::vector<Vertex> degree(n, 1);
  for (const Vertex x : pruefer) ++degree[x];

  // Standard linear-time decoding with a moving "leaf pointer".
  Vertex ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  Vertex leaf = ptr;
  for (const Vertex x : pruefer) {
    g.add_edge(leaf, x);
    if (--degree[x] == 1 && x < ptr) {
      leaf = x;  // new leaf below the pointer: use it immediately
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  g.add_edge(leaf, n - 1);
  return g;
}

Graph random_gnm(Vertex n, std::size_t m, Xoshiro256ss& rng) {
  const std::uint64_t max_edges = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  BNCG_REQUIRE(m <= max_edges, "too many edges requested");
  Graph g(n);
  // Dense case: Floyd-style sampling over edge indices would need an index
  // decode; simple rejection is fine at our sizes (m ≤ C(n,2)).
  if (m > max_edges / 2) {
    // Sample the complement instead to keep rejection cheap.
    Graph comp = random_gnm(n, static_cast<std::size_t>(max_edges - m), rng);
    return complement(comp);
  }
  while (g.num_edges() < m) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    const Vertex v = static_cast<Vertex>(rng.below(n));
    if (u == v) continue;
    g.add_edge_if_absent(u, v);
  }
  return g;
}

Graph random_gnp(Vertex n, double p, Xoshiro256ss& rng) {
  BNCG_REQUIRE(p >= 0.0 && p <= 1.0, "probability out of range");
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (rng.bernoulli(p)) g.add_edge(u, v);
    }
  }
  return g;
}

Graph random_connected_gnm(Vertex n, std::size_t m, Xoshiro256ss& rng) {
  BNCG_REQUIRE(n >= 1, "graph needs at least one vertex");
  BNCG_REQUIRE(m + 1 >= n, "connected graph needs at least n-1 edges");
  const std::uint64_t max_edges = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  BNCG_REQUIRE(m <= max_edges, "too many edges requested");
  Graph g = random_tree(n, rng);
  while (g.num_edges() < m) {
    const Vertex u = static_cast<Vertex>(rng.below(n));
    const Vertex v = static_cast<Vertex>(rng.below(n));
    if (u == v) continue;
    g.add_edge_if_absent(u, v);
  }
  return g;
}

Graph watts_strogatz(Vertex n, Vertex half_k, double beta, Xoshiro256ss& rng) {
  BNCG_REQUIRE(half_k >= 1, "lattice degree parameter must be >= 1");
  BNCG_REQUIRE(n > 2 * half_k, "ring too small for the requested lattice degree");
  BNCG_REQUIRE(beta >= 0.0 && beta <= 1.0, "rewiring probability out of range");
  Graph g(n);
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex off = 1; off <= half_k; ++off) g.add_edge_if_absent(v, (v + off) % n);
  }
  // Rewire each original lattice edge (v, v+off) with probability beta.
  for (Vertex v = 0; v < n; ++v) {
    for (Vertex off = 1; off <= half_k; ++off) {
      if (!rng.bernoulli(beta)) continue;
      const Vertex w = (v + off) % n;
      if (!g.has_edge(v, w)) continue;  // already rewired away
      // Choose a fresh endpoint; skip (keep the edge) if we fail repeatedly,
      // which only happens on nearly complete graphs.
      for (int attempt = 0; attempt < 32; ++attempt) {
        const Vertex t = static_cast<Vertex>(rng.below(n));
        if (t == v || g.has_edge(v, t)) continue;
        g.remove_edge(v, w);
        g.add_edge(v, t);
        break;
      }
    }
  }
  return g;
}

Graph barabasi_albert(Vertex n, Vertex edges_per_step, Xoshiro256ss& rng) {
  BNCG_REQUIRE(edges_per_step >= 1, "attachment count must be >= 1");
  BNCG_REQUIRE(n > edges_per_step, "need more vertices than edges per step");
  const Vertex seed_size = edges_per_step + 1;
  Graph g(n);
  // Seed clique guarantees every early vertex has positive degree.
  for (Vertex u = 0; u < seed_size; ++u) {
    for (Vertex v = u + 1; v < seed_size; ++v) g.add_edge(u, v);
  }
  // Repeated-endpoint list: choosing uniformly from it is degree-
  // proportional sampling.
  std::vector<Vertex> endpoint_pool;
  endpoint_pool.reserve(4 * static_cast<std::size_t>(n) * edges_per_step);
  for (const auto& [u, v] : g.edges()) {
    endpoint_pool.push_back(u);
    endpoint_pool.push_back(v);
  }
  for (Vertex v = seed_size; v < n; ++v) {
    std::vector<Vertex> targets;
    while (targets.size() < edges_per_step) {
      const Vertex t = endpoint_pool[rng.below(endpoint_pool.size())];
      if (t == v || std::find(targets.begin(), targets.end(), t) != targets.end()) continue;
      targets.push_back(t);
    }
    for (const Vertex t : targets) {
      g.add_edge(v, t);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return g;
}

Graph random_regular(Vertex n, Vertex d, Xoshiro256ss& rng) {
  BNCG_REQUIRE(d < n, "degree must be below n");
  BNCG_REQUIRE((static_cast<std::uint64_t>(n) * d) % 2 == 0, "n*d must be even");
  // Pairing model: d stubs per vertex, random perfect matching on stubs,
  // resample on self-loops/parallel edges. Success probability is bounded
  // away from 0 for fixed d, so expected retries are O(1).
  std::vector<Vertex> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (;;) {
    stubs.clear();
    for (Vertex v = 0; v < n; ++v) {
      for (Vertex i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.shuffle(stubs);
    Graph g(n);
    bool simple = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const Vertex u = stubs[i];
      const Vertex v = stubs[i + 1];
      if (u == v || g.has_edge(u, v)) {
        simple = false;
        break;
      }
      g.add_edge(u, v);
    }
    if (simple) return g;
  }
}

}  // namespace bncg

#include "gen/paper.hpp"

#include <algorithm>

namespace bncg {

Graph fig3_diameter3_graph() {
  using namespace fig3;
  Graph g(kNumVertices);
  for (Vertex i = 1; i <= 3; ++i) {
    g.add_edge(kA, b(i));
    g.add_edge(b(i), c(i, 1));
    g.add_edge(b(i), c(i, 2));
    g.add_edge(d(i), c(i, 1));
    g.add_edge(d(i), c(i, 2));
  }
  // Straight matchings C1–C2 and C2–C3: c_{i,1}c_{j,1} and c_{i,2}c_{j,2}.
  for (Vertex t = 1; t <= 2; ++t) {
    g.add_edge(c(1, t), c(2, t));
    g.add_edge(c(2, t), c(3, t));
  }
  // Crossed matching C1–C3: c_{1,1}c_{3,2} and c_{1,2}c_{3,1}.
  g.add_edge(c(1, 1), c(3, 2));
  g.add_edge(c(1, 2), c(3, 1));
  return g;
}

Graph diameter3_sum_equilibrium_n8() {
  // Found by anneal_sum_equilibrium (seeded, reproducible) and certified by
  // certify_sum_equilibrium plus an independent brute-force re-check in the
  // tests. Eccentricities are (3,2,3,2,2,3,2,3); diameter 3; 11 edges.
  return graph_from_edges(8, {{0, 1},
                              {0, 4},
                              {1, 3},
                              {1, 6},
                              {1, 7},
                              {2, 3},
                              {2, 4},
                              {3, 5},
                              {4, 6},
                              {5, 6},
                              {6, 7}});
}

namespace {

/// k^dim with overflow guard.
[[nodiscard]] std::uint64_t checked_pow(Vertex k, Vertex dim) {
  std::uint64_t result = 1;
  for (Vertex t = 0; t < dim; ++t) {
    result *= k;
    BNCG_REQUIRE(result < (std::uint64_t{1} << 31), "diagonal torus too large");
  }
  return result;
}

}  // namespace

DiagonalTorus::DiagonalTorus(Vertex dim, Vertex k) : dim_(dim), k_(k), graph_(0) {
  BNCG_REQUIRE(dim >= 1, "dimension must be >= 1");
  BNCG_REQUIRE(k >= 2, "side parameter k must be >= 2");
  const std::uint64_t half = checked_pow(k, dim);
  const Vertex n = static_cast<Vertex>(2 * half);
  graph_ = Graph(n);

  // Enumerate vertices by (parity p, digits in base k) and connect each to
  // all 2^dim diagonal neighbors with a larger id guard to add each edge once.
  std::vector<Vertex> coord(dim_);
  const Vertex num_signs = Vertex{1} << dim_;
  for (Vertex v = 0; v < n; ++v) {
    const std::vector<Vertex> cv = coords(v);
    for (Vertex signs = 0; signs < num_signs; ++signs) {
      for (Vertex t = 0; t < dim_; ++t) {
        const Vertex delta = (signs >> t) & 1 ? 1 : 2 * k_ - 1;  // +1 or −1 mod 2k
        coord[t] = (cv[t] + delta) % (2 * k_);
      }
      const Vertex w = id(coord);
      if (v < w) graph_.add_edge_if_absent(v, w);
    }
  }
}

Vertex DiagonalTorus::id(const std::vector<Vertex>& coords) const {
  BNCG_REQUIRE(coords.size() == dim_, "coordinate arity mismatch");
  const Vertex parity = coords[0] & 1;
  std::uint64_t index = 0;
  for (Vertex t = 0; t < dim_; ++t) {
    BNCG_REQUIRE(coords[t] < 2 * k_, "coordinate out of range");
    BNCG_REQUIRE((coords[t] & 1) == parity, "coordinates must share parity");
    index = index * k_ + coords[t] / 2;
  }
  return static_cast<Vertex>(static_cast<std::uint64_t>(parity) * (graph_.num_vertices() / 2) +
                             index);
}

std::vector<Vertex> DiagonalTorus::coords(Vertex v) const {
  graph_.check_vertex(v);
  const Vertex half = graph_.num_vertices() / 2;
  const Vertex parity = v >= half ? 1 : 0;
  std::uint64_t index = v - static_cast<std::uint64_t>(parity) * half;
  std::vector<Vertex> result(dim_);
  for (Vertex t = dim_; t-- > 0;) {
    result[t] = static_cast<Vertex>(index % k_) * 2 + parity;
    index /= k_;
  }
  return result;
}

Vertex DiagonalTorus::expected_distance(Vertex u, Vertex v) const {
  const std::vector<Vertex> cu = coords(u);
  const std::vector<Vertex> cv = coords(v);
  Vertex dist = 0;
  for (Vertex t = 0; t < dim_; ++t) {
    const Vertex diff = cu[t] > cv[t] ? cu[t] - cv[t] : cv[t] - cu[t];
    dist = std::max(dist, std::min(diff, 2 * k_ - diff));
  }
  return dist;
}

DiagonalTorus rotated_torus(Vertex k) { return DiagonalTorus(2, k); }

Graph broom_graph(Vertex num_paths, Vertex path_len, Vertex cluster) {
  BNCG_REQUIRE(num_paths >= 2, "broom needs at least two rays");
  BNCG_REQUIRE(cluster >= 1, "broom needs at least one leaf per ray");
  Graph g(1 + num_paths * (path_len + cluster));
  Vertex next = 1;
  for (Vertex ray = 0; ray < num_paths; ++ray) {
    Vertex anchor = 0;  // hub
    for (Vertex step = 0; step < path_len; ++step) {
      g.add_edge(anchor, next);
      anchor = next++;
    }
    for (Vertex leaf = 0; leaf < cluster; ++leaf) {
      g.add_edge(anchor, next++);
    }
  }
  return g;
}

}  // namespace bncg

#include "svc/worker.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "core/certify_sharded.hpp"
#include "core/certify_wire.hpp"
#include "core/swap_engine.hpp"
#include "graph/io.hpp"
#include "svc/net.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace bncg::svc {

namespace {

void sleep_ms(std::uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

[[nodiscard]] Socket connect_with_retry(const ConnectConfig& config, std::ostream* log) {
  std::uint64_t backoff = config.connect_backoff_ms;
  for (std::uint32_t attempt = 0;; ++attempt) {
    try {
      return connect_to(config.address);
    } catch (const TransportError& e) {
      if (attempt >= config.connect_retries) throw;
      if (log != nullptr) {
        *log << "worker: connect attempt " << (attempt + 1) << " failed (" << e.what()
             << "), retrying in " << backoff << " ms\n";
      }
      sleep_ms(backoff);
      backoff = std::min<std::uint64_t>(backoff * 2, 5000);
    }
  }
}

void flip_seeded_bit(std::string& bytes, std::size_t first, Xoshiro256ss& rng) {
  if (bytes.size() <= first) return;
  const std::size_t span = bytes.size() - first;
  const std::size_t byte = first + static_cast<std::size_t>(rng() % span);
  bytes[byte] = static_cast<char>(static_cast<unsigned char>(bytes[byte]) ^
                                  (1u << (rng() % 8)));
}

}  // namespace

WorkerReport run_connect_worker(const Graph& g, const ConnectConfig& config, std::ostream* log) {
  WorkerReport report;
  Socket sock = connect_with_retry(config, log);

  HelloBody hello;
  hello.fingerprint = graph_fingerprint(g);
  hello.n = g.num_vertices();
  hello.m = g.num_edges();
  hello.session_id = config.session_id;
  sock.send_frame(make_hello(hello));

  // The handshake reply is Welcome (work now), Refuse (wrong instance),
  // Done (nothing left to serve), or JobStatus — parked until a matching
  // job is submitted, at which point a Welcome follows.
  Frame reply = sock.recv_frame();
  while (reply.type == FrameType::JobStatus) {
    if (!report.parked && log != nullptr) {
      *log << "worker: parked — no queued job matches this instance yet\n";
    }
    report.parked = true;
    reply = sock.recv_frame();
  }
  if (reply.type == FrameType::Refuse) {
    report.refused = true;
    report.refuse_reason = parse_refuse(reply);
    return report;
  }
  if (reply.type == FrameType::Done) return report;
  (void)parse_welcome(reply);  // validated; run config now arrives per lease

  // Resolve the deprecated width knob into the resource bundle: the old
  // field keeps steering only while resources.width stays Auto.
  ResourceConfig resources = config.resources;
  if (resources.width == WidthPolicy::Auto) resources.width = config.width;
  const SwapEngine engine(g, resources);
  SwapEngine::Scratch scratch;
  Xoshiro256ss rng(config.chaos.seed);
  const ChaosConfig::Mode mode = config.chaos.mode;
  std::size_t lease_no = 0;

  while (true) {
    const Frame frame = sock.recv_frame();
    if (frame.type == FrameType::Done) return report;
    const LeaseBody lease = parse_lease(frame);
    ++lease_no;

    if (mode == ChaosConfig::Mode::Crash && lease_no == 1) {
      // Crash mid-range: do half the work so the kill lands between
      // agents, then die without flushing a byte. _Exit skips all
      // teardown — exactly what a SIGKILL'd worker looks like.
      AgentRange half = lease.range;
      half.hi = lease.range.lo + (lease.range.hi - lease.range.lo) / 2;
      if (half.hi > half.lo) {
        (void)certify_agent_range(engine, half, lease.model, lease.include_deletions,
                                  lease.stop_on_violation, &scratch);
      }
      std::_Exit(12);
    }
    if (mode == ChaosConfig::Mode::Hang && lease_no == 1) {
      // Outlive the lease, then deliver anyway: the dispatcher must have
      // re-dispatched, and this late result exercises first-valid-wins.
      sleep_ms(lease.lease_ms + lease.lease_ms / 2 + 250);
    }
    if (mode == ChaosConfig::Mode::Slow) sleep_ms(config.chaos.delay_ms);

    // The lease body carries the session's run configuration — under a
    // multiplexed dispatcher consecutive leases may belong to different
    // sessions (same graph, different model or flags).
    const ShardResult shard = certify_agent_range(engine, lease.range, lease.model,
                                                  lease.include_deletions,
                                                  lease.stop_on_violation, &scratch);
    std::string shard_bytes = shard_to_binary(shard);
    const bool corrupt_this =
        mode == ChaosConfig::Mode::CorruptAll ||
        (mode == ChaosConfig::Mode::Corrupt && lease_no == 1);
    if (corrupt_this) {
      if ((rng() & 1) != 0) {
        // Shard-layer flip: the frame checksum is computed over the
        // corrupted payload, so only certify_wire's own checksum catches
        // it.
        flip_seeded_bit(shard_bytes, 0, rng);
        sock.send_bytes(encode_frame(make_result(std::move(shard_bytes))));
      } else {
        // Frame-layer flip inside the payload region: caught by the frame
        // checksum before the shard decoder even runs.
        std::string frame_bytes = encode_frame(make_result(std::move(shard_bytes)));
        flip_seeded_bit(frame_bytes, 9, rng);  // past magic+type+length
        sock.send_bytes(frame_bytes);
      }
    } else {
      const std::string frame_bytes = encode_frame(make_result(std::move(shard_bytes)));
      sock.send_bytes(frame_bytes);
      if (mode == ChaosConfig::Mode::Duplicate) sock.send_bytes(frame_bytes);
    }
    ++report.leases_completed;
    report.agents_scanned += lease.range.hi - lease.range.lo;
    report.lease_sessions.push_back(lease.session_id);
    if (log != nullptr) {
      *log << "worker: session " << lease.session_id << " range " << lease.range.shard_index
           << " [" << lease.range.lo << ", " << lease.range.hi << ") sent\n";
    }
  }
}

AcceptedBody submit_job(const ConnectConfig& config, const SubmitBody& job) {
  Socket sock = connect_with_retry(config, nullptr);
  sock.send_frame(make_submit(job));
  const Frame reply = sock.recv_frame();
  if (reply.type == FrameType::Refuse) {
    throw std::invalid_argument("submit refused: " + parse_refuse(reply));
  }
  return parse_accepted(reply);
}

JobStatusBody query_jobs(const ConnectConfig& config) {
  Socket sock = connect_with_retry(config, nullptr);
  sock.send_frame(make_job_query());
  JobStatusBody status = parse_job_status(sock.recv_frame());
  BNCG_REQUIRE(status.report, "status: dispatcher replied with a query, not a report");
  return status;
}

}  // namespace bncg::svc

// Connected certification worker + deterministic fault injection
// (DESIGN.md §12, §15).
//
// run_connect_worker dials a dispatcher (svc/dispatcher.hpp), handshakes
// with the instance fingerprint it loaded (refused at connect time when it
// matches no queued job and submissions are closed), then loops: receive a
// lease, certify the range with the exact same certify_agent_range scan
// the in-process and file-based pipelines use, stream the wire-encoded
// ShardResult back. Run configuration (model, deletion clause,
// stop-on-violation) comes from EACH lease — under a session-multiplexed
// dispatcher one worker process serves sibling sessions over the same
// graph that differ only in run configuration, and can still never
// certify the wrong clause. A worker whose instance matches no queued job
// while submissions are open is PARKED (JobStatus frame) and woken with a
// Welcome once a matching job is submitted.
//
// ChaosConfig turns the same loop into a seeded fault injector (the
// `bncg_certify chaos-worker` mode): crash mid-range, hang past the
// lease, flip one bit in a result (at the frame or the shard layer),
// double-send, or just run slow. Every behavior is deterministic given
// the seed, so the fault-injection harness (scripts/certify_chaos.sh,
// tests/test_svc_dispatcher.cpp) asserts exact outcomes, not luck.
//
// submit_job / query_jobs are the thin client calls behind the CLI's
// `submit` and `status` modes: one connection, one frame each way.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/dist_provider.hpp"
#include "graph/dist_width.hpp"
#include "graph/graph.hpp"
#include "svc/protocol.hpp"

namespace bncg::svc {

struct ChaosConfig {
  enum class Mode {
    None,
    Crash,       ///< scan half of the first lease, then _Exit without a word
    Hang,        ///< sleep past the first lease's deadline, then deliver late
    Corrupt,     ///< flip one seeded bit in the first result, then behave
    CorruptAll,  ///< flip one seeded bit in every result
    Duplicate,   ///< send every result frame twice
    Slow,        ///< sleep delay_ms before every lease (benign straggler)
  };
  Mode mode = Mode::None;
  std::uint64_t seed = 1;
  std::uint64_t delay_ms = 150;  ///< Slow mode's per-lease delay
};

struct ConnectConfig {
  std::string address;
  /// DEPRECATED (one PR): pre-ResourceConfig width knob, honored only while
  /// resources.width stays Auto. Use resources.width instead.
  WidthPolicy width = WidthPolicy::Auto;
  /// Engine resources of this worker (core/dist_provider.hpp): width plus
  /// the per-process memory budget. A budget below the dense n×n slab runs
  /// the leased scans against the blocked row cache — how one worker box
  /// serves instances whose dense matrices it cannot hold.
  ResourceConfig resources;
  /// Bounded connect retry: 1 + connect_retries attempts with exponential
  /// backoff starting at connect_backoff_ms; exhaustion throws
  /// TransportError (CLI exit 4).
  std::uint32_t connect_retries = 5;
  std::uint64_t connect_backoff_ms = 100;
  ChaosConfig chaos;
  /// Pin this worker to one session id (0 = serve any session whose
  /// instance matches the loaded graph).
  std::uint64_t session_id = 0;
};

struct WorkerReport {
  bool refused = false;        ///< dispatcher refused the handshake (CLI exit 3)
  std::string refuse_reason;
  bool parked = false;         ///< dispatcher parked this worker at least once
  std::size_t leases_completed = 0;
  std::uint64_t agents_scanned = 0;
  /// Session id of each completed lease, in completion order — the fair
  /// scheduler's observable footprint (tests assert alternation).
  std::vector<std::uint64_t> lease_sessions;
};

/// Runs the connected-worker loop until the dispatcher says Done (clean
/// return) or refuses the handshake (report.refused). Throws
/// TransportError when the dispatcher is unreachable after bounded
/// retries or vanishes mid-session. Crash chaos _Exits the process —
/// never use it in-process.
[[nodiscard]] WorkerReport run_connect_worker(const Graph& g, const ConnectConfig& config,
                                              std::ostream* log = nullptr);

/// Submits one job to a dispatcher and returns its Accepted reply
/// (session id + whether the identical job was already queued). Throws
/// TransportError on connection failure and std::invalid_argument when
/// the dispatcher refuses the submission (closed, or a journal guard).
[[nodiscard]] AcceptedBody submit_job(const ConnectConfig& config, const SubmitBody& job);

/// Queries a dispatcher for its session table. Throws TransportError on
/// connection failure.
[[nodiscard]] JobStatusBody query_jobs(const ConnectConfig& config);

}  // namespace bncg::svc

// Socket substrate of the certification service (DESIGN.md §12).
//
// The dispatcher (svc/dispatcher.hpp) and connected workers (svc/worker.hpp)
// speak a tiny framed protocol over a stream socket — Unix-domain
// ("unix:/path") or TCP loopback ("tcp:host:port", IPv4 literal). Every
// frame is checksummed independently of its payload, so transport-level
// corruption is detected at the framing layer even before a shard payload's
// own certify_wire checksum runs; a frame that does not verify throws
// std::invalid_argument, exactly like a corrupt shard file, and the
// dispatcher treats both identically (strike the range, drop the
// connection).
//
// Failure taxonomy matters here: socket-level faults (refused connection,
// EOF, send timeout) throw TransportError — retried with bounded backoff by
// callers and surfaced as exit code 4 by tools/bncg_certify — while
// *corruption* of successfully transported bytes throws
// std::invalid_argument and rides the exit-3 wire-guard path. The two must
// never blur: a flaky network is retryable, a lying peer is refused.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace bncg::svc {

/// Version of the dispatcher/worker frame protocol. Hellos (and Submit /
/// JobStatus control requests) carrying any other version are refused.
/// v2 added session multiplexing: Submit/Accepted/JobStatus frames,
/// session ids in Hello/Welcome/Lease, and per-lease run configuration.
inline constexpr std::uint32_t kSvcProtocolVersion = 2;

/// Leading magic of every frame ("BNCG", little-endian).
inline constexpr std::uint32_t kFrameMagic = 0x47434E42u;

/// Upper bound on a frame payload; a corrupted length field must never
/// make the receiver try to buffer gigabytes.
inline constexpr std::size_t kMaxFramePayload = 1u << 24;

/// Socket-level failure (connect refused, EOF mid-frame, send timeout) —
/// distinct from data corruption, retryable, exit code 4 in the CLI.
class TransportError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Frame types of the dispatch protocol. Handshake: worker sends Hello
/// (protocol version + instance fingerprint/n/m + optional session pin),
/// dispatcher answers Welcome (session adoption + default run
/// configuration), Refuse (reason), or JobStatus (parked: no queued job
/// matches yet — a later Welcome adopts the worker when one arrives).
/// Work: Lease (dispatcher → worker, one agent range plus that session's
/// run configuration), Result (worker → dispatcher, one
/// certify_wire-encoded ShardResult), Done (dispatcher → worker, no more
/// work, disconnect cleanly). Control clients (no Hello): Submit
/// (client → dispatcher, queue one job) answered by Accepted (session
/// id), and a JobStatus query answered by a JobStatus report.
enum class FrameType : std::uint8_t {
  Hello = 1,
  Welcome = 2,
  Refuse = 3,
  Lease = 4,
  Result = 5,
  Done = 6,
  Submit = 7,
  Accepted = 8,
  JobStatus = 9,
};

struct Frame {
  FrameType type = FrameType::Done;
  std::string payload;
};

// Little-endian payload builders/readers shared by the protocol layer and
// the shard journal's session record.
void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
/// u32 length prefix + raw bytes.
void put_bytes(std::string& out, std::string_view bytes);

/// Bounds-checked little-endian reader; throws std::invalid_argument on
/// truncation or trailing content, mirroring certify_wire's decoders.
class PayloadReader {
 public:
  explicit PayloadReader(std::string_view bytes) : bytes_(bytes) {}
  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::string bytes();
  void expect_end() const;

 private:
  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// Encodes magic + type + length + payload + FNV-1a checksum over
/// (type, payload).
[[nodiscard]] std::string encode_frame(const Frame& frame);

/// Incremental decoder over a receive buffer: returns std::nullopt while
/// the buffer holds no complete frame, consumes and returns the first
/// frame otherwise. Throws std::invalid_argument on bad magic, an
/// out-of-range length, an unknown type byte, or a checksum mismatch —
/// the stream is then unusable (framing may have lost sync) and the
/// caller must drop the connection.
[[nodiscard]] std::optional<Frame> try_decode_frame(std::string& buffer);

/// Owning wrapper of a connected stream socket. Move-only; closes on
/// destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket();

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int fd() const noexcept { return fd_; }
  void close_fd() noexcept;

  /// Blocking, complete send of raw bytes (frames are encoded by the
  /// caller so fault injection can corrupt them deliberately). Throws
  /// TransportError on failure or a peer that stays unwritable past a
  /// bounded wait.
  void send_bytes(std::string_view bytes);
  void send_frame(const Frame& frame) { send_bytes(encode_frame(frame)); }

  /// Blocking receive of exactly one frame (worker side). Throws
  /// TransportError on EOF/socket error, std::invalid_argument on a
  /// corrupt frame.
  [[nodiscard]] Frame recv_frame();

  /// Non-blocking read for the dispatcher's poll loop: appends whatever
  /// is available to `sink`.
  enum class ReadStatus { Data, WouldBlock, Closed };
  [[nodiscard]] ReadStatus read_some(std::string& sink);

  void set_nonblocking(bool on);

 private:
  int fd_ = -1;
  std::string inbuf_;  // recv_frame buffering (blocking side only)
};

/// Connects to "unix:/path" or "tcp:host:port" (one attempt). Throws
/// TransportError when the peer is unreachable, std::invalid_argument on a
/// malformed address.
[[nodiscard]] Socket connect_to(const std::string& address);

/// Bound, listening server socket. For "tcp:host:0" the kernel picks the
/// port; address() reports the resolved one. Unix-domain paths are
/// unlinked on destruction.
class Listener {
 public:
  explicit Listener(const std::string& address);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] const std::string& address() const noexcept { return address_; }

  /// Accepts one pending connection (non-blocking listener: returns an
  /// invalid Socket when none is pending). Throws TransportError on
  /// listener failure.
  [[nodiscard]] Socket accept_connection();

 private:
  int fd_ = -1;
  std::string address_;
  std::string unlink_path_;  // unix-domain socket file to remove
};

}  // namespace bncg::svc

#include "svc/protocol.hpp"

#include "util/error.hpp"

namespace bncg::svc {

namespace {

void require_type(const Frame& frame, FrameType want, const char* what) {
  BNCG_REQUIRE(frame.type == want, what);
}

}  // namespace

Frame make_hello(const HelloBody& body) {
  Frame f;
  f.type = FrameType::Hello;
  put_u32(f.payload, body.protocol_version);
  put_u64(f.payload, body.fingerprint);
  put_u32(f.payload, body.n);
  put_u64(f.payload, body.m);
  return f;
}

Frame make_welcome(const WelcomeBody& body) {
  Frame f;
  f.type = FrameType::Welcome;
  put_u8(f.payload, body.model == UsageCost::Sum ? 0 : 1);
  put_u8(f.payload, body.include_deletions ? 1 : 0);
  put_u8(f.payload, body.stop_on_violation ? 1 : 0);
  put_u32(f.payload, body.shard_count);
  return f;
}

Frame make_refuse(const std::string& reason) {
  Frame f;
  f.type = FrameType::Refuse;
  put_bytes(f.payload, reason);
  return f;
}

Frame make_lease(const LeaseBody& body) {
  Frame f;
  f.type = FrameType::Lease;
  put_u32(f.payload, body.range.lo);
  put_u32(f.payload, body.range.hi);
  put_u32(f.payload, body.range.shard_index);
  put_u32(f.payload, body.range.shard_count);
  put_u64(f.payload, body.lease_ms);
  return f;
}

Frame make_result(std::string shard_wire_bytes) {
  Frame f;
  f.type = FrameType::Result;
  f.payload = std::move(shard_wire_bytes);
  return f;
}

Frame make_done() {
  Frame f;
  f.type = FrameType::Done;
  return f;
}

HelloBody parse_hello(const Frame& frame) {
  require_type(frame, FrameType::Hello, "svc protocol: expected hello");
  PayloadReader in(frame.payload);
  HelloBody body;
  body.protocol_version = in.u32();
  body.fingerprint = in.u64();
  body.n = in.u32();
  body.m = in.u64();
  in.expect_end();
  return body;
}

WelcomeBody parse_welcome(const Frame& frame) {
  require_type(frame, FrameType::Welcome, "svc protocol: expected welcome");
  PayloadReader in(frame.payload);
  WelcomeBody body;
  const std::uint8_t model = in.u8();
  BNCG_REQUIRE(model <= 1, "svc protocol: bad model byte");
  body.model = model == 0 ? UsageCost::Sum : UsageCost::Max;
  body.include_deletions = in.u8() != 0;
  body.stop_on_violation = in.u8() != 0;
  body.shard_count = in.u32();
  BNCG_REQUIRE(body.shard_count >= 1, "svc protocol: zero shard count");
  in.expect_end();
  return body;
}

std::string parse_refuse(const Frame& frame) {
  require_type(frame, FrameType::Refuse, "svc protocol: expected refuse");
  PayloadReader in(frame.payload);
  std::string reason = in.bytes();
  in.expect_end();
  return reason;
}

LeaseBody parse_lease(const Frame& frame) {
  require_type(frame, FrameType::Lease, "svc protocol: expected lease");
  PayloadReader in(frame.payload);
  LeaseBody body;
  body.range.lo = in.u32();
  body.range.hi = in.u32();
  body.range.shard_index = in.u32();
  body.range.shard_count = in.u32();
  body.lease_ms = in.u64();
  in.expect_end();
  BNCG_REQUIRE(body.range.lo <= body.range.hi, "svc protocol: bad lease range");
  BNCG_REQUIRE(body.range.shard_index < body.range.shard_count,
               "svc protocol: bad lease shard index");
  return body;
}

}  // namespace bncg::svc

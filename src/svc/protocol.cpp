#include "svc/protocol.hpp"

#include "util/error.hpp"

namespace bncg::svc {

namespace {

void require_type(const Frame& frame, FrameType want, const char* what) {
  BNCG_REQUIRE(frame.type == want, what);
}

void put_model(std::string& out, UsageCost model) {
  put_u8(out, model == UsageCost::Sum ? 0 : 1);
}

[[nodiscard]] UsageCost read_model(PayloadReader& in) {
  const std::uint8_t model = in.u8();
  BNCG_REQUIRE(model <= 1, "svc protocol: bad model byte");
  return model == 0 ? UsageCost::Sum : UsageCost::Max;
}

void put_summary(std::string& out, const JobSummary& job) {
  put_u64(out, job.session_id);
  put_u64(out, job.fingerprint);
  put_u32(out, job.n);
  put_u64(out, job.m);
  put_model(out, job.model);
  put_u8(out, job.include_deletions ? 1 : 0);
  put_u8(out, job.stop_on_violation ? 1 : 0);
  put_u32(out, job.shard_count);
  put_u32(out, job.completed_ranges);
  put_u32(out, job.quarantined_ranges);
  put_u8(out, static_cast<std::uint8_t>(job.state));
}

[[nodiscard]] JobSummary read_summary(PayloadReader& in) {
  JobSummary job;
  job.session_id = in.u64();
  job.fingerprint = in.u64();
  job.n = in.u32();
  job.m = in.u64();
  job.model = read_model(in);
  job.include_deletions = in.u8() != 0;
  job.stop_on_violation = in.u8() != 0;
  job.shard_count = in.u32();
  job.completed_ranges = in.u32();
  job.quarantined_ranges = in.u32();
  const std::uint8_t state = in.u8();
  BNCG_REQUIRE(state <= static_cast<std::uint8_t>(JobSummary::State::Refused),
               "svc protocol: bad session state byte");
  job.state = static_cast<JobSummary::State>(state);
  BNCG_REQUIRE(job.shard_count >= 1, "svc protocol: zero shard count in summary");
  BNCG_REQUIRE(job.completed_ranges <= job.shard_count &&
                   job.quarantined_ranges <= job.shard_count,
               "svc protocol: summary range counts exceed the shard count");
  return job;
}

}  // namespace

Frame make_hello(const HelloBody& body) {
  Frame f;
  f.type = FrameType::Hello;
  put_u32(f.payload, body.protocol_version);
  put_u64(f.payload, body.fingerprint);
  put_u32(f.payload, body.n);
  put_u64(f.payload, body.m);
  put_u64(f.payload, body.session_id);
  return f;
}

Frame make_welcome(const WelcomeBody& body) {
  Frame f;
  f.type = FrameType::Welcome;
  put_model(f.payload, body.model);
  put_u8(f.payload, body.include_deletions ? 1 : 0);
  put_u8(f.payload, body.stop_on_violation ? 1 : 0);
  put_u32(f.payload, body.shard_count);
  put_u64(f.payload, body.session_id);
  return f;
}

Frame make_refuse(const std::string& reason) {
  Frame f;
  f.type = FrameType::Refuse;
  put_bytes(f.payload, reason);
  return f;
}

Frame make_lease(const LeaseBody& body) {
  Frame f;
  f.type = FrameType::Lease;
  put_u32(f.payload, body.range.lo);
  put_u32(f.payload, body.range.hi);
  put_u32(f.payload, body.range.shard_index);
  put_u32(f.payload, body.range.shard_count);
  put_u64(f.payload, body.lease_ms);
  put_u64(f.payload, body.session_id);
  put_model(f.payload, body.model);
  put_u8(f.payload, body.include_deletions ? 1 : 0);
  put_u8(f.payload, body.stop_on_violation ? 1 : 0);
  return f;
}

Frame make_result(std::string shard_wire_bytes) {
  Frame f;
  f.type = FrameType::Result;
  f.payload = std::move(shard_wire_bytes);
  return f;
}

Frame make_done() {
  Frame f;
  f.type = FrameType::Done;
  return f;
}

Frame make_submit(const SubmitBody& body) {
  Frame f;
  f.type = FrameType::Submit;
  put_u32(f.payload, body.protocol_version);
  put_u64(f.payload, body.fingerprint);
  put_u32(f.payload, body.n);
  put_u64(f.payload, body.m);
  put_model(f.payload, body.model);
  put_u8(f.payload, body.include_deletions ? 1 : 0);
  put_u8(f.payload, body.stop_on_violation ? 1 : 0);
  put_u32(f.payload, body.shard_count);
  return f;
}

Frame make_accepted(const AcceptedBody& body) {
  Frame f;
  f.type = FrameType::Accepted;
  put_u64(f.payload, body.session_id);
  put_u8(f.payload, body.already_queued ? 1 : 0);
  return f;
}

Frame make_job_query() {
  Frame f;
  f.type = FrameType::JobStatus;
  put_u32(f.payload, kSvcProtocolVersion);
  put_u8(f.payload, 0);
  return f;
}

Frame make_job_status(const std::vector<JobSummary>& jobs) {
  Frame f;
  f.type = FrameType::JobStatus;
  put_u32(f.payload, kSvcProtocolVersion);
  put_u8(f.payload, 1);
  put_u32(f.payload, static_cast<std::uint32_t>(jobs.size()));
  for (const JobSummary& job : jobs) put_summary(f.payload, job);
  return f;
}

HelloBody parse_hello(const Frame& frame) {
  require_type(frame, FrameType::Hello, "svc protocol: expected hello");
  PayloadReader in(frame.payload);
  HelloBody body;
  body.protocol_version = in.u32();
  body.fingerprint = in.u64();
  body.n = in.u32();
  body.m = in.u64();
  body.session_id = in.u64();
  in.expect_end();
  return body;
}

WelcomeBody parse_welcome(const Frame& frame) {
  require_type(frame, FrameType::Welcome, "svc protocol: expected welcome");
  PayloadReader in(frame.payload);
  WelcomeBody body;
  body.model = read_model(in);
  body.include_deletions = in.u8() != 0;
  body.stop_on_violation = in.u8() != 0;
  body.shard_count = in.u32();
  body.session_id = in.u64();
  BNCG_REQUIRE(body.shard_count >= 1, "svc protocol: zero shard count");
  in.expect_end();
  return body;
}

std::string parse_refuse(const Frame& frame) {
  require_type(frame, FrameType::Refuse, "svc protocol: expected refuse");
  PayloadReader in(frame.payload);
  std::string reason = in.bytes();
  in.expect_end();
  return reason;
}

LeaseBody parse_lease(const Frame& frame) {
  require_type(frame, FrameType::Lease, "svc protocol: expected lease");
  PayloadReader in(frame.payload);
  LeaseBody body;
  body.range.lo = in.u32();
  body.range.hi = in.u32();
  body.range.shard_index = in.u32();
  body.range.shard_count = in.u32();
  body.lease_ms = in.u64();
  body.session_id = in.u64();
  body.model = read_model(in);
  body.include_deletions = in.u8() != 0;
  body.stop_on_violation = in.u8() != 0;
  in.expect_end();
  BNCG_REQUIRE(body.range.lo <= body.range.hi, "svc protocol: bad lease range");
  BNCG_REQUIRE(body.range.shard_index < body.range.shard_count,
               "svc protocol: bad lease shard index");
  return body;
}

SubmitBody parse_submit(const Frame& frame) {
  require_type(frame, FrameType::Submit, "svc protocol: expected submit");
  PayloadReader in(frame.payload);
  SubmitBody body;
  body.protocol_version = in.u32();
  body.fingerprint = in.u64();
  body.n = in.u32();
  body.m = in.u64();
  body.model = read_model(in);
  body.include_deletions = in.u8() != 0;
  body.stop_on_violation = in.u8() != 0;
  body.shard_count = in.u32();
  in.expect_end();
  BNCG_REQUIRE(body.n >= 1, "svc protocol: submit of an empty instance");
  return body;
}

AcceptedBody parse_accepted(const Frame& frame) {
  require_type(frame, FrameType::Accepted, "svc protocol: expected accepted");
  PayloadReader in(frame.payload);
  AcceptedBody body;
  body.session_id = in.u64();
  body.already_queued = in.u8() != 0;
  in.expect_end();
  return body;
}

JobStatusBody parse_job_status(const Frame& frame) {
  require_type(frame, FrameType::JobStatus, "svc protocol: expected job status");
  PayloadReader in(frame.payload);
  JobStatusBody body;
  body.protocol_version = in.u32();
  const std::uint8_t kind = in.u8();
  BNCG_REQUIRE(kind <= 1, "svc protocol: bad job status kind");
  body.report = kind == 1;
  if (body.report) {
    const std::uint32_t count = in.u32();
    // A corrupted count must not make the receiver try to materialize
    // gigabytes; each summary is ≥ 40 bytes, so the frame length already
    // bounds an honest count.
    BNCG_REQUIRE(count <= kMaxFramePayload / 40, "svc protocol: job count out of range");
    body.jobs.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) body.jobs.push_back(read_summary(in));
  }
  in.expect_end();
  return body;
}

}  // namespace bncg::svc

// Fault-tolerant, session-multiplexed certification dispatcher
// (DESIGN.md §12, §15).
//
// serve_jobs turns certification runs into a long-lived socket service:
// agent ranges become *leases with deadlines* handed to connected workers,
// results stream back as checksummed certify_wire frames, and the
// deterministic ShardFold stays the single source of truth for every
// verdict. One poll loop owns a queue of *sessions* (jobs): workers are
// routed to sessions by the instance fingerprint they handshake with,
// leases carry their session's run configuration, and a deficit-style fair
// scheduler (least-granted session first, ties to the lowest session id)
// keeps one giant job from starving its siblings. The robustness contract,
// per session:
//
//  * a worker that disconnects, times out past its lease, or returns a
//    corrupt frame costs the *range* one attempt — the range is
//    re-dispatched to other workers after exponential backoff (saturating:
//    redispatch_delay_ms), and the first valid result wins;
//  * a range whose attempts exceed the retry budget is quarantined; when
//    every unfinished range of a session is quarantined and no lease is
//    outstanding, THAT session degrades to a partial-coverage refusal —
//    the certificate is withheld, never wrong, and sibling sessions are
//    untouched;
//  * every completed range is appended crash-safely to the session's
//    streaming witness sink (svc/sink.hpp) the moment it arrives — with a
//    journal root the sinks double as per-session journals under
//    session-keyed directories, and --resume recovers every incomplete
//    session recomputing nothing.
//
// Determinism: ranges are fixed up front as the canonical i·n/K split, the
// per-range ShardResult payload is a pure function of the instance, and
// the final compaction folds shard files in shard-index order — so every
// served certificate is byte-identical to single-process `certify` no
// matter which workers computed which ranges, in what order, after how
// many failures, or how many sibling sessions ran concurrently.
//
// serve_certification is the single-job legacy entry point (flat journal
// layout, refusal of unmatched workers at handshake); it is a thin wrapper
// over serve_jobs.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/certify_sharded.hpp"
#include "core/usage_cost.hpp"
#include "graph/graph.hpp"
#include "svc/journal.hpp"

namespace bncg::svc {

struct ServeConfig {
  /// Listen address ("unix:/path" or "tcp:host:port"; tcp port 0 lets the
  /// kernel choose — the resolved address is logged).
  std::string address;
  /// Number of agent ranges (leases); 0 = auto: min(n, 16).
  std::size_t shards = 0;
  UsageCost model = UsageCost::Sum;
  bool include_deletions = false;
  bool stop_on_violation = false;
  /// Lease deadline: a range not delivered within this window is
  /// re-dispatched to other workers (the original holder may still
  /// deliver late — first valid result wins).
  std::uint64_t lease_ms = 5000;
  /// Re-dispatch budget per range: a range failing more than max_retries
  /// times (disconnect, expiry, corruption) is quarantined.
  std::uint32_t max_retries = 3;
  /// Exponential backoff base: the k-th failure of a range delays its
  /// re-dispatch by redispatch_delay_ms(backoff_ms, k) — backoff_ms·2^(k−1)
  /// capped at 64·backoff_ms and saturating at kMaxRedispatchDelayMs.
  std::uint64_t backoff_ms = 50;
  /// Journal directory ("" = no journal). With resume=false the directory
  /// must not already hold a session.
  std::string journal_dir;
  /// Reopen journal_dir and skip every range it already certified.
  bool resume = false;
};

/// One queued certification job of a multi-session serve. Identity only —
/// the dispatcher never needs the graph itself, just the fingerprint it
/// routes workers by (workers load their own copy and are refused when it
/// does not match any queued job).
struct JobSpec {
  std::uint64_t fingerprint = 0;  ///< graph_fingerprint of the instance
  Vertex n = 0;
  std::uint64_t m = 0;
  UsageCost model = UsageCost::Sum;
  bool include_deletions = false;
  bool stop_on_violation = false;
  /// Number of agent ranges; 0 = auto: min(n, 16).
  std::size_t shards = 0;
};

struct MultiServeConfig {
  std::string address;
  std::uint64_t lease_ms = 5000;
  std::uint32_t max_retries = 3;
  std::uint64_t backoff_ms = 50;
  /// Root of the per-session journals ("" = throwaway spool sinks). Each
  /// session journals under <journal_root>/<session_dir_name(header)>.
  std::string journal_root;
  /// Reopen every session journal found under journal_root (plus the ones
  /// the job specs key to) and skip every range already certified.
  bool resume = false;
  /// Legacy single-job layout: journal_root IS the one session's journal
  /// directory (requires exactly one job). serve_certification sets this.
  bool flat_journal = false;
  /// Number of Submit-created sessions to accept before submissions
  /// close. While submissions are open, a worker whose instance matches
  /// no queued job is PARKED (told via a JobStatus frame) and adopted the
  /// moment a matching job arrives; once closed, unmatched workers are
  /// refused at handshake. 0 = submissions closed from the start.
  std::size_t accept_submissions = 0;
};

/// Telemetry of one serve run (stderr-reported by the CLI; asserted by the
/// fault-injection harness). Strike accounting is one-strike-per-event: a
/// frame that is both corrupt and from a stale lease holder counts ONE
/// corrupt_results strike and zero disconnects; disconnects counts only
/// workers lost while holding the CURRENT lease of their range.
struct ServeStats {
  std::size_t workers_connected = 0;
  std::size_t handshakes_refused = 0;
  std::size_t leases_granted = 0;
  std::size_t redispatches = 0;  ///< leases granted beyond a range's first
  std::size_t expired_leases = 0;
  std::size_t disconnects = 0;      ///< current-lease holders lost mid-lease
  std::size_t corrupt_results = 0;  ///< frame- or shard-level corruption strikes
  std::size_t duplicate_results = 0;
  std::size_t resumed_ranges = 0;  ///< completed ranges recovered from journals
  std::size_t journaled_ranges = 0;
  std::size_t sessions_queued = 0;     ///< jobs queued (specs + submissions + resume)
  std::size_t sessions_completed = 0;
  std::size_t sessions_refused = 0;    ///< partial-coverage refusals
  std::size_t workers_parked = 0;      ///< unmatched hellos parked, not refused
};

/// A quarantined range in a refusal outcome.
struct QuarantinedRange {
  AgentRange range;
  std::uint32_t failures = 0;
};

/// Terminal state of one session of a multi-session serve.
struct SessionOutcome {
  std::uint64_t session_id = 0;
  JournalHeader header;  ///< identity + resolved shard count of the job
  /// True when every range completed; `certificate` is then the streamed
  /// fold, byte-for-byte the single-process result.
  bool complete = false;
  std::optional<ShardedCertificate> certificate;
  std::vector<QuarantinedRange> quarantined;
  Vertex agents_uncovered = 0;
  std::size_t resumed_ranges = 0;
};

struct MultiServeOutcome {
  std::vector<SessionOutcome> sessions;  ///< in session-id order
  ServeStats stats;
};

struct ServeOutcome {
  /// True when every range completed; `certificate` is then the merged
  /// fold, byte-for-byte the single-process result.
  bool complete = false;
  std::optional<ShardedCertificate> certificate;
  std::vector<QuarantinedRange> quarantined;
  Vertex agents_uncovered = 0;
  ServeStats stats;
};

/// Ceiling of any re-dispatch backoff delay (one hour): the saturation
/// point of redispatch_delay_ms for arbitrarily large backoff bases.
inline constexpr std::uint64_t kMaxRedispatchDelayMs = 3'600'000;

/// Backoff delay of the k-th failure (`failures` = k ≥ 1) of a range:
/// backoff_ms · 2^(min(k−1, 6)), saturating at kMaxRedispatchDelayMs
/// instead of overflowing — a huge --backoff-ms with a deep retry budget
/// yields a one-hour delay, never a zero or time-travelling one.
[[nodiscard]] std::uint64_t redispatch_delay_ms(std::uint64_t backoff_ms,
                                                std::uint32_t failures);

/// Runs the multi-session dispatcher until every queued (and accepted)
/// session completes or refuses. Blocks; single-threaded poll loop.
/// Throws std::invalid_argument on configuration/journal guard violations
/// and TransportError on listener failure. `log` (nullable) receives
/// one-line progress telemetry.
[[nodiscard]] MultiServeOutcome serve_jobs(const std::vector<JobSpec>& jobs,
                                           const MultiServeConfig& config,
                                           std::ostream* log = nullptr);

/// Legacy single-job entry point: one session, flat journal layout
/// (journal_dir is the session directory), unmatched workers refused at
/// handshake. A thin wrapper over serve_jobs with identical semantics to
/// the PR6 dispatcher.
[[nodiscard]] ServeOutcome serve_certification(const Graph& g, const ServeConfig& config,
                                               std::ostream* log = nullptr);

}  // namespace bncg::svc

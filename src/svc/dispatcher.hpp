// Fault-tolerant certification dispatcher (DESIGN.md §12).
//
// serve_certification turns one certification run into a long-lived
// socket service: agent ranges become *leases with deadlines* handed to
// connected workers, results stream back as checksummed certify_wire
// frames, and the deterministic merge_shard_results fold stays the single
// source of truth for the verdict. The robustness contract:
//
//  * a worker that disconnects, times out past its lease, or returns a
//    corrupt frame costs the *range* one attempt — the range is
//    re-dispatched to other workers after exponential backoff, and the
//    first valid result wins (late straggler results are accepted while
//    the range is open, deduplicated once it is complete);
//  * a range whose attempts exceed the retry budget is quarantined; when
//    every unfinished range is quarantined and no lease is still
//    outstanding, the run degrades to a partial-coverage refusal —
//    the certificate is withheld, never wrong (exit code 2 in the CLI);
//  * every completed range is journaled crash-safely (svc/journal.hpp), so
//    a killed dispatcher resumes with --resume recomputing nothing.
//
// Determinism: ranges are fixed up front as the canonical i·n/K split, the
// per-range ShardResult payload is a pure function of the instance, and
// the final fold is shard-index order — so the served certificate is
// byte-identical to single-process `certify` no matter which workers
// computed which ranges, in what order, after how many failures.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "core/certify_sharded.hpp"
#include "core/usage_cost.hpp"
#include "graph/graph.hpp"

namespace bncg::svc {

struct ServeConfig {
  /// Listen address ("unix:/path" or "tcp:host:port"; tcp port 0 lets the
  /// kernel choose — the resolved address is logged).
  std::string address;
  /// Number of agent ranges (leases); 0 = auto: min(n, 16).
  std::size_t shards = 0;
  UsageCost model = UsageCost::Sum;
  bool include_deletions = false;
  bool stop_on_violation = false;
  /// Lease deadline: a range not delivered within this window is
  /// re-dispatched to other workers (the original holder may still
  /// deliver late — first valid result wins).
  std::uint64_t lease_ms = 5000;
  /// Re-dispatch budget per range: a range failing more than max_retries
  /// times (disconnect, expiry, corruption) is quarantined.
  std::uint32_t max_retries = 3;
  /// Exponential backoff base: the k-th failure of a range delays its
  /// re-dispatch by backoff_ms · 2^(k−1), capped at 64·backoff_ms.
  std::uint64_t backoff_ms = 50;
  /// Journal directory ("" = no journal). With resume=false the directory
  /// must not already hold a session.
  std::string journal_dir;
  /// Reopen journal_dir and skip every range it already certified.
  bool resume = false;
};

/// Telemetry of one serve run (stderr-reported by the CLI; asserted by the
/// fault-injection harness).
struct ServeStats {
  std::size_t workers_connected = 0;
  std::size_t handshakes_refused = 0;
  std::size_t leases_granted = 0;
  std::size_t redispatches = 0;  ///< leases granted beyond a range's first
  std::size_t expired_leases = 0;
  std::size_t disconnects = 0;      ///< workers lost while holding a lease
  std::size_t corrupt_results = 0;  ///< frame- or shard-level corruption strikes
  std::size_t duplicate_results = 0;
  std::size_t resumed_ranges = 0;  ///< completed ranges recovered from the journal
  std::size_t journaled_ranges = 0;
};

/// A quarantined range in a refusal outcome.
struct QuarantinedRange {
  AgentRange range;
  std::uint32_t failures = 0;
};

struct ServeOutcome {
  /// True when every range completed; `certificate` is then the merged
  /// fold, byte-for-byte the single-process result.
  bool complete = false;
  std::optional<ShardedCertificate> certificate;
  std::vector<QuarantinedRange> quarantined;
  Vertex agents_uncovered = 0;
  ServeStats stats;
};

/// Runs the dispatcher to completion or refusal. Blocks; single-threaded
/// poll loop. Throws std::invalid_argument on configuration/journal guard
/// violations and TransportError on listener failure. `log` (nullable)
/// receives one-line progress telemetry.
[[nodiscard]] ServeOutcome serve_certification(const Graph& g, const ServeConfig& config,
                                               std::ostream* log = nullptr);

}  // namespace bncg::svc

// Crash-safe shard journal of a certification service run (DESIGN.md §12).
//
// The dispatcher records every completed agent range as one wire-encoded
// ShardResult file inside a journal directory, written via temp-file +
// rename(2) with fsync, so a dispatcher killed at ANY instant leaves
// either a fully valid record or no record — never a truncated one. A
// session header (same atomic discipline) pins the instance fingerprint
// and run configuration; `bncg_certify serve --resume` reopens the
// directory, refuses a header that does not match its own instance (the
// journal-level twin of the wire fingerprint guard), and marks every
// recovered range completed so a resumed run recomputes nothing that was
// already certified.
//
// The journal is append-only: records are never rewritten or deleted, and
// record() is a no-op for a range that already has a record (first valid
// result wins, exactly like the dispatcher's in-memory accounting). A
// record file that fails to decode — possible only through external
// damage, not through crashes, thanks to the atomic rename — is skipped
// and counted, degrading to recomputation of that range rather than
// refusal of the whole journal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/certify_sharded.hpp"

namespace bncg::svc {

/// Version word of the journal session record.
inline constexpr std::uint32_t kJournalVersion = 1;

/// Magic prefix of the session record file ("BNCGJRNL").
inline constexpr std::string_view kJournalMagic = "BNCGJRNL";

/// Identity of the run a journal belongs to. Resume refuses any mismatch.
struct JournalHeader {
  std::uint64_t fingerprint = 0;
  Vertex n = 0;
  std::uint64_t m = 0;
  UsageCost model = UsageCost::Sum;
  bool include_deletions = false;
  bool stop_on_violation = false;
  std::uint32_t shard_count = 1;
};

class ShardJournal {
 public:
  /// Starts a fresh journal in `dir` (created if absent). Throws
  /// std::invalid_argument when `dir` already holds a session — an
  /// existing journal must be resumed or removed explicitly, never
  /// silently overwritten.
  [[nodiscard]] static ShardJournal create(const std::string& dir, const JournalHeader& header);

  /// Reopens an existing journal: loads the session header and every
  /// decodable record consistent with it. Throws std::runtime_error when
  /// the directory or session record is missing, std::invalid_argument
  /// when the session record is corrupt. Records that fail to decode or
  /// disagree with the header are skipped and counted, not fatal.
  /// `keep_records == false` validates and indexes the records (has_record,
  /// skipped_corrupt) but discards the decoded payloads — recovered() stays
  /// empty and peak memory stays O(one shard); the streaming witness sink
  /// (svc/sink.hpp) re-reads records one at a time from disk instead.
  [[nodiscard]] static ShardJournal open(const std::string& dir, bool keep_records = true);

  /// Atomically appends one completed range (temp file + fsync +
  /// rename). No-op when the range already has a record. Throws
  /// std::runtime_error on I/O failure.
  void record(const ShardResult& shard);

  [[nodiscard]] const JournalHeader& header() const noexcept { return header_; }
  [[nodiscard]] const std::vector<ShardResult>& recovered() const noexcept { return recovered_; }
  [[nodiscard]] std::size_t skipped_corrupt() const noexcept { return skipped_corrupt_; }
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

  /// Whether shard `index` already has a durable record.
  [[nodiscard]] bool has_record(std::uint32_t index) const {
    return index < has_record_.size() && has_record_[index];
  }
  /// Number of shards with durable records.
  [[nodiscard]] std::uint32_t records() const noexcept {
    std::uint32_t count = 0;
    for (const bool has : has_record_) count += has ? 1 : 0;
    return count;
  }
  /// Full path of the record file of shard `index`.
  [[nodiscard]] std::string record_path(std::uint32_t index) const {
    return dir_ + "/" + record_name(index);
  }

  /// Name of the record file of shard `index` ("range_000042.shard").
  [[nodiscard]] static std::string record_name(std::uint32_t index);

  /// Deterministic per-session directory name derived from the header's
  /// identity block ("session_<16-hex>"). Two submissions of the same
  /// instance + run configuration map to the SAME directory — which is
  /// exactly the idempotence the multi-session dispatcher wants — while
  /// any difference in fingerprint/n/m/model/flags/shard_count yields a
  /// different name, so sibling sessions can never share a journal.
  [[nodiscard]] static std::string session_dir_name(const JournalHeader& header);

  /// Subdirectories of `root` that look like session journals (name
  /// starts with "session_" and a session.bin exists inside), sorted by
  /// name for deterministic resume order. Missing root → empty list.
  [[nodiscard]] static std::vector<std::string> list_session_dirs(const std::string& root);

 private:
  ShardJournal() = default;

  std::string dir_;
  JournalHeader header_;
  std::vector<ShardResult> recovered_;
  std::vector<bool> has_record_;
  std::size_t skipped_corrupt_ = 0;
};

}  // namespace bncg::svc

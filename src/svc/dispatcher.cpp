#include "svc/dispatcher.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/certify_wire.hpp"
#include "graph/io.hpp"
#include "svc/net.hpp"
#include "svc/protocol.hpp"
#include "svc/sink.hpp"
#include "util/error.hpp"

namespace bncg::svc {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNoConn = static_cast<std::size_t>(-1);
constexpr std::size_t kNoRange = static_cast<std::size_t>(-1);
constexpr std::size_t kNoSession = static_cast<std::size_t>(-1);
constexpr int kIdlePollMs = 10000;

struct RangeState {
  enum class St { Pending, Leased, Completed, Quarantined };
  AgentRange range;
  St st = St::Pending;
  std::uint32_t failures = 0;
  std::uint32_t grants = 0;
  Clock::time_point eligible_at{};    // backoff gate while Pending
  std::size_t lease_conn = kNoConn;   // current holder while Leased
  Clock::time_point lease_deadline{};
};

/// One queued certification job: identity, range table, and the streaming
/// witness sink its results drain into. `grants` is the fair-scheduling
/// deficit key — the session with the fewest leases granted goes first.
struct Session {
  enum class St { Active, Complete, Refused };
  std::uint64_t id = 0;
  St st = St::Active;
  JournalHeader header;
  bool durable = false;  // sink rides on a persistent journal
  std::optional<StreamingSink> sink;
  std::vector<RangeState> ranges;
  std::size_t completed_count = 0;
  std::size_t grants = 0;
  std::size_t resumed = 0;
};

struct Conn {
  enum class St { AwaitHello, Parked, Idle, Working, Closed };
  Socket sock;
  std::string inbuf;
  St st = St::AwaitHello;
  // Handshake identity (valid once past AwaitHello): what this worker's
  // loaded graph looks like, and the session it pinned itself to (0 = any).
  std::uint64_t fingerprint = 0;
  Vertex n = 0;
  std::uint64_t m = 0;
  std::uint64_t pinned_session = 0;
  std::size_t session = kNoSession;  // assignment while Working
  std::size_t range = kNoRange;
};

class Dispatcher {
 public:
  Dispatcher(const std::vector<JobSpec>& jobs, const MultiServeConfig& config, std::ostream* log)
      : jobs_(jobs), config_(config), log_(log) {}

  MultiServeOutcome run() {
    prepare();
    if (all_terminal() && submissions_closed()) {
      say("serve: journal already covers every range — no workers needed");
      return finish();
    }
    Listener listener(config_.address);
    say("serve: listening on " + listener.address() + " (" + std::to_string(sessions_.size()) +
        " sessions, " + std::to_string(total_ranges()) + " ranges, lease " +
        std::to_string(config_.lease_ms) + " ms, retry budget " +
        std::to_string(config_.max_retries) + ")");
    while (true) {
      settle_sessions();
      if (all_terminal() && submissions_closed()) break;
      assign_work();
      wait_for_events(listener);
      expire_leases();
    }
    return finish();
  }

 private:
  void say(const std::string& line) {
    if (log_ != nullptr) *log_ << line << "\n";
  }

  [[nodiscard]] bool submissions_closed() const {
    return submitted_count_ >= config_.accept_submissions;
  }

  [[nodiscard]] bool all_terminal() const {
    for (const Session& s : sessions_) {
      if (s.st == Session::St::Active) return false;
    }
    return true;
  }

  [[nodiscard]] std::size_t total_ranges() const {
    std::size_t total = 0;
    for (const Session& s : sessions_) total += s.ranges.size();
    return total;
  }

  /// Queues every job spec and, on --resume without the flat layout,
  /// every session journal found under the root (crash recovery must not
  /// depend on the operator re-listing every job).
  void prepare() {
    BNCG_REQUIRE(!config_.flat_journal || jobs_.size() == 1,
                 "serve: flat journal layout requires exactly one job");
    for (const JobSpec& job : jobs_) (void)queue_job(job);
    if (config_.resume && !config_.flat_journal && !config_.journal_root.empty()) {
      for (const std::string& dir : ShardJournal::list_session_dirs(config_.journal_root)) {
        const JournalHeader h = ShardJournal::open(dir, /*keep_records=*/false).header();
        if (find_session(h) != kNoSession) continue;  // a spec already queued it
        JobSpec job;
        job.fingerprint = h.fingerprint;
        job.n = h.n;
        job.m = h.m;
        job.model = h.model;
        job.include_deletions = h.include_deletions;
        job.stop_on_violation = h.stop_on_violation;
        job.shards = h.shard_count;
        (void)queue_job(job);
      }
    }
    BNCG_REQUIRE(!sessions_.empty() || !submissions_closed(),
                 "serve: nothing to serve — queue a job, enable submissions, or resume");
  }

  [[nodiscard]] JournalHeader resolved_header(const JobSpec& job) const {
    BNCG_REQUIRE(job.n >= 1, "serve: empty instance");
    std::size_t shards = job.shards != 0 ? job.shards : std::min<std::size_t>(job.n, 16);
    shards = std::min<std::size_t>(shards, job.n);
    JournalHeader h;
    h.fingerprint = job.fingerprint;
    h.n = job.n;
    h.m = job.m;
    h.model = job.model;
    h.include_deletions = job.include_deletions;
    h.stop_on_violation = job.stop_on_violation;
    h.shard_count = static_cast<std::uint32_t>(shards);
    return h;
  }

  /// Session whose header equals `h` field for field, or kNoSession.
  [[nodiscard]] std::size_t find_session(const JournalHeader& h) const {
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      const JournalHeader& o = sessions_[i].header;
      if (o.fingerprint == h.fingerprint && o.n == h.n && o.m == h.m && o.model == h.model &&
          o.include_deletions == h.include_deletions &&
          o.stop_on_violation == h.stop_on_violation && o.shard_count == h.shard_count) {
        return i;
      }
    }
    return kNoSession;
  }

  /// Queues one job as a session (idempotent: an identical job returns the
  /// existing session). Opens/creates its journal (durable sink) or a
  /// throwaway spool, and recovers completed ranges on --resume.
  std::size_t queue_job(const JobSpec& job) {
    JournalHeader h = resolved_header(job);
    {
      const std::size_t existing = find_session(h);
      if (existing != kNoSession) return existing;
    }

    std::optional<ShardJournal> journal;
    if (!config_.journal_root.empty()) {
      const std::string dir = config_.flat_journal
                                  ? config_.journal_root
                                  : config_.journal_root + "/" + ShardJournal::session_dir_name(h);
      if (config_.resume) {
        try {
          journal.emplace(ShardJournal::open(dir, /*keep_records=*/false));
        } catch (const std::runtime_error&) {
          // No session recorded there yet — resume composes with first runs.
        }
      }
      if (journal.has_value()) {
        const JournalHeader& jh = journal->header();
        BNCG_REQUIRE(jh.fingerprint == h.fingerprint && jh.n == h.n && jh.m == h.m,
                     "serve: journal belongs to a different instance");
        BNCG_REQUIRE(jh.model == h.model && jh.include_deletions == h.include_deletions &&
                         jh.stop_on_violation == h.stop_on_violation,
                     "serve: journal belongs to a different run configuration");
        // The journal's split is authoritative: ranges must match the
        // records byte for byte, so a --shards override is ignored on
        // resume.
        if (jh.shard_count != h.shard_count) {
          say("serve: journal pins shard count " + std::to_string(jh.shard_count));
          h.shard_count = jh.shard_count;
        }
      } else {
        journal.emplace(ShardJournal::create(dir, h));
        say("serve: journaling to " + dir);
      }
    }

    Session s;
    s.id = next_session_id_++;
    s.header = h;
    s.durable = journal.has_value();
    if (journal.has_value()) {
      s.sink.emplace(StreamingSink::durable(std::move(*journal)));
    } else {
      const std::string spool = (std::filesystem::temp_directory_path() /
                                 ("bncg_spool_" + std::to_string(static_cast<long>(::getpid()))) /
                                 ShardJournal::session_dir_name(h))
                                    .string();
      s.sink.emplace(StreamingSink::spool(spool, h));
    }

    const std::uint32_t shards = h.shard_count;
    s.ranges.resize(shards);
    for (std::uint32_t i = 0; i < shards; ++i) {
      RangeState& r = s.ranges[i];
      r.range.lo = static_cast<Vertex>(std::uint64_t{i} * h.n / shards);
      r.range.hi = static_cast<Vertex>((std::uint64_t{i} + 1) * h.n / shards);
      r.range.shard_index = i;
      r.range.shard_count = shards;
      if (s.sink->has(i)) {
        r.st = RangeState::St::Completed;
        ++s.completed_count;
        ++s.resumed;
        ++stats_.resumed_ranges;
      }
    }
    if (config_.resume && s.durable) {
      say("serve: journal resumed=" + std::to_string(s.resumed) + "/" + std::to_string(shards) +
          " ranges (skipped_corrupt=" + std::to_string(s.sink->skipped_corrupt()) + ")" +
          (config_.flat_journal ? "" : " session=" + std::to_string(s.id)));
    }
    if (s.completed_count == s.ranges.size()) {
      s.st = Session::St::Complete;
      ++stats_.sessions_completed;
    }
    ++stats_.sessions_queued;
    say("serve: session " + std::to_string(s.id) + " queued (n=" + std::to_string(h.n) +
        ", m=" + std::to_string(h.m) + ", shards=" + std::to_string(shards) + ")");
    sessions_.push_back(std::move(s));
    return sessions_.size() - 1;
  }

  /// True while any unfinished range of `s` can still complete: a lease is
  /// outstanding or a range still has retry budget. When false, every
  /// unfinished range is quarantined — time to refuse THIS session.
  [[nodiscard]] static bool progress_possible(const Session& s) {
    for (const RangeState& r : s.ranges) {
      if (r.st == RangeState::St::Pending || r.st == RangeState::St::Leased) return true;
    }
    return false;
  }

  /// Moves sessions to their terminal states; refusing one session never
  /// touches its siblings.
  void settle_sessions() {
    for (Session& s : sessions_) {
      if (s.st != Session::St::Active) continue;
      if (s.completed_count == s.ranges.size()) {
        s.st = Session::St::Complete;
        ++stats_.sessions_completed;
        say("serve: session " + std::to_string(s.id) + " complete");
      } else if (!progress_possible(s)) {
        s.st = Session::St::Refused;
        ++stats_.sessions_refused;
        say("serve: session " + std::to_string(s.id) +
            " refused — every unfinished range quarantined");
      }
    }
  }

  [[nodiscard]] bool identity_matches(const Conn& conn, const Session& s) const {
    return s.header.fingerprint == conn.fingerprint && s.header.n == conn.n &&
           s.header.m == conn.m;
  }

  void assign_work() {
    const Clock::time_point now = Clock::now();
    for (std::size_t c = 0; c < conns_.size(); ++c) {
      if (conns_[c]->st != Conn::St::Idle) continue;
      const std::size_t s_idx = pick_session(*conns_[c], now);
      if (s_idx == kNoSession) continue;  // nothing dispatchable for this worker
      grant_lease(c, s_idx, pick_range(sessions_[s_idx], now), now);
    }
  }

  /// Fair scheduler: among Active sessions this worker's instance matches
  /// that have a dispatchable range right now, the one with the fewest
  /// leases granted wins; ties go to the lowest session id (= queue
  /// order), so no session starves while another drains hundreds of
  /// ranges.
  [[nodiscard]] std::size_t pick_session(const Conn& conn, Clock::time_point now) const {
    std::size_t best = kNoSession;
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      const Session& s = sessions_[i];
      if (s.st != Session::St::Active || !identity_matches(conn, s)) continue;
      if (conn.pinned_session != 0 && s.id != conn.pinned_session) continue;
      if (pick_range(s, now) == kNoRange) continue;
      if (best == kNoSession || s.grants < sessions_[best].grants) best = i;
    }
    return best;
  }

  [[nodiscard]] static std::size_t pick_range(const Session& s, Clock::time_point now) {
    for (std::size_t i = 0; i < s.ranges.size(); ++i) {
      const RangeState& r = s.ranges[i];
      if (r.st == RangeState::St::Pending && r.eligible_at <= now) return i;
    }
    return kNoRange;
  }

  void grant_lease(std::size_t conn_id, std::size_t s_idx, std::size_t idx,
                   Clock::time_point now) {
    Conn& conn = *conns_[conn_id];
    Session& s = sessions_[s_idx];
    RangeState& r = s.ranges[idx];
    // The lease carries the session's whole run configuration: one worker
    // process can serve sibling sessions over the same graph that differ
    // only in model or flags.
    LeaseBody lease;
    lease.range = r.range;
    lease.lease_ms = config_.lease_ms;
    lease.session_id = s.id;
    lease.model = s.header.model;
    lease.include_deletions = s.header.include_deletions;
    lease.stop_on_violation = s.header.stop_on_violation;
    try {
      conn.sock.send_frame(make_lease(lease));
    } catch (const TransportError&) {
      close_conn(conn_id);  // peer vanished before the lease landed
      return;
    }
    r.st = RangeState::St::Leased;
    r.lease_conn = conn_id;
    r.lease_deadline = now + std::chrono::milliseconds(config_.lease_ms);
    ++r.grants;
    ++s.grants;
    ++stats_.leases_granted;
    if (r.grants > 1) ++stats_.redispatches;
    conn.st = Conn::St::Working;
    conn.session = s_idx;
    conn.range = idx;
  }

  /// Poll timeout: the earliest lease deadline or backoff expiry (the
  /// latter only matters when an idle worker is waiting for it).
  [[nodiscard]] int poll_timeout_ms() const {
    const Clock::time_point now = Clock::now();
    bool any_idle = false;
    for (const auto& conn : conns_) any_idle |= conn->st == Conn::St::Idle;
    Clock::time_point wake = now + std::chrono::milliseconds(kIdlePollMs);
    for (const Session& s : sessions_) {
      if (s.st != Session::St::Active) continue;
      for (const RangeState& r : s.ranges) {
        if (r.st == RangeState::St::Leased) wake = std::min(wake, r.lease_deadline);
        if (r.st == RangeState::St::Pending && any_idle) wake = std::min(wake, r.eligible_at);
      }
    }
    const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(wake - now).count();
    return static_cast<int>(std::clamp<long long>(delta, 0, kIdlePollMs)) + 1;
  }

  void wait_for_events(Listener& listener) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owners;  // conn index per pollfd past the listener
    fds.push_back({listener.fd(), POLLIN, 0});
    for (std::size_t c = 0; c < conns_.size(); ++c) {
      if (conns_[c]->st == Conn::St::Closed) continue;
      fds.push_back({conns_[c]->sock.fd(), POLLIN, 0});
      owners.push_back(c);
    }
    const int rc = ::poll(fds.data(), fds.size(), poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) return;
      throw TransportError("serve: poll failed");
    }
    if (fds[0].revents != 0) accept_new(listener);
    for (std::size_t k = 1; k < fds.size(); ++k) {
      if (fds[k].revents != 0) service_conn(owners[k - 1]);
    }
  }

  void accept_new(Listener& listener) {
    while (true) {
      Socket sock = listener.accept_connection();
      if (!sock.valid()) return;
      sock.set_nonblocking(true);
      auto conn = std::make_unique<Conn>();
      conn->sock = std::move(sock);
      conns_.push_back(std::move(conn));
      ++stats_.workers_connected;
    }
  }

  void service_conn(std::size_t conn_id) {
    Conn& conn = *conns_[conn_id];
    if (conn.st == Conn::St::Closed) return;
    Socket::ReadStatus status = Socket::ReadStatus::WouldBlock;
    do {
      status = conn.sock.read_some(conn.inbuf);
    } while (status == Socket::ReadStatus::Data);
    try {
      while (std::optional<Frame> frame = try_decode_frame(conn.inbuf)) {
        handle_frame(conn_id, *frame);
        if (conns_[conn_id]->st == Conn::St::Closed) return;
      }
    } catch (const std::invalid_argument& e) {
      corrupt_strike(conn_id, e.what());
      return;
    }
    if (status == Socket::ReadStatus::Closed) handle_close(conn_id);
  }

  void handle_frame(std::size_t conn_id, const Frame& frame) {
    Conn& conn = *conns_[conn_id];
    switch (frame.type) {
      case FrameType::Hello: {
        BNCG_REQUIRE(conn.st == Conn::St::AwaitHello, "serve: unexpected hello");
        const HelloBody hello = parse_hello(frame);
        if (hello.protocol_version != kSvcProtocolVersion) {
          refuse_conn(conn_id, "protocol version mismatch");
          return;
        }
        conn.fingerprint = hello.fingerprint;
        conn.n = hello.n;
        conn.m = hello.m;
        conn.pinned_session = hello.session_id;
        route_hello(conn_id);
        return;
      }
      case FrameType::Submit: {
        BNCG_REQUIRE(conn.st == Conn::St::AwaitHello, "serve: unexpected submit");
        handle_submit(conn_id, parse_submit(frame));
        return;
      }
      case FrameType::JobStatus: {
        // A query (report=false) from a status client; a report from a
        // peer would be a protocol violation.
        BNCG_REQUIRE(!parse_job_status(frame).report, "serve: unexpected job status report");
        try {
          conn.sock.send_frame(make_job_status(summaries()));
        } catch (const TransportError&) {
          close_conn(conn_id);
        }
        return;
      }
      case FrameType::Result: {
        BNCG_REQUIRE(conn.st == Conn::St::Working || conn.st == Conn::St::Idle,
                     "serve: result before handshake");
        accept_result(conn_id, frame.payload);
        return;
      }
      default:
        BNCG_REQUIRE(false, "serve: unexpected frame type from worker");
    }
  }

  /// Routes a handshaken worker: Welcome into the least-granted matching
  /// Active session; Done when every matching session is already terminal;
  /// Parked while submissions are still open (a matching job may yet
  /// arrive); refused otherwise.
  void route_hello(std::size_t conn_id) {
    Conn& conn = *conns_[conn_id];
    std::size_t best = kNoSession;
    bool any_match = false;
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      const Session& s = sessions_[i];
      if (!identity_matches(conn, s)) continue;
      if (conn.pinned_session != 0 && s.id != conn.pinned_session) continue;
      any_match = true;
      if (s.st != Session::St::Active) continue;
      if (best == kNoSession || s.grants < sessions_[best].grants) best = i;
    }
    if (best != kNoSession) {
      welcome(conn_id, best);
      return;
    }
    if (any_match) {
      // Everything this worker could serve is already decided.
      try {
        conn.sock.send_frame(make_done());
      } catch (const TransportError&) {
      }
      close_conn(conn_id);
      return;
    }
    if (!submissions_closed()) {
      say("serve: parking worker — no queued job matches, submissions still open");
      try {
        conn.sock.send_frame(make_job_status(summaries()));
      } catch (const TransportError&) {
        close_conn(conn_id);
        return;
      }
      conn.st = Conn::St::Parked;
      ++stats_.workers_parked;
      return;
    }
    refuse_conn(conn_id, "instance fingerprint mismatch — worker loaded a different graph");
  }

  void welcome(std::size_t conn_id, std::size_t s_idx) {
    Conn& conn = *conns_[conn_id];
    const Session& s = sessions_[s_idx];
    WelcomeBody w;
    w.model = s.header.model;
    w.include_deletions = s.header.include_deletions;
    w.stop_on_violation = s.header.stop_on_violation;
    w.shard_count = s.header.shard_count;
    w.session_id = s.id;
    try {
      conn.sock.send_frame(make_welcome(w));
    } catch (const TransportError&) {
      close_conn(conn_id);
      return;
    }
    conn.st = Conn::St::Idle;
  }

  void refuse_conn(std::size_t conn_id, const std::string& reason) {
    ++stats_.handshakes_refused;
    say("serve: refusing worker: " + reason);
    try {
      conns_[conn_id]->sock.send_frame(make_refuse(reason));
    } catch (const TransportError&) {
    }
    close_conn(conn_id);
  }

  void handle_submit(std::size_t conn_id, const SubmitBody& sub) {
    Conn& conn = *conns_[conn_id];
    if (sub.protocol_version != kSvcProtocolVersion) {
      refuse_conn(conn_id, "protocol version mismatch");
      return;
    }
    JobSpec job;
    job.fingerprint = sub.fingerprint;
    job.n = sub.n;
    job.m = sub.m;
    job.model = sub.model;
    job.include_deletions = sub.include_deletions;
    job.stop_on_violation = sub.stop_on_violation;
    job.shards = sub.shard_count;

    AcceptedBody accepted;
    const std::size_t existing = find_session(resolved_header(job));
    if (existing != kNoSession) {
      // Idempotent: resubmitting the same job names the same session.
      accepted.session_id = sessions_[existing].id;
      accepted.already_queued = true;
    } else if (submissions_closed()) {
      refuse_conn(conn_id, "submissions are closed");
      return;
    } else {
      std::size_t s_idx = kNoSession;
      try {
        s_idx = queue_job(job);
      } catch (const std::invalid_argument& e) {
        refuse_conn(conn_id, e.what());  // e.g. a stale journal without --resume
        return;
      }
      ++submitted_count_;
      accepted.session_id = sessions_[s_idx].id;
      accepted.already_queued = false;
      adopt_parked(s_idx);
    }
    try {
      conn.sock.send_frame(make_accepted(accepted));
    } catch (const TransportError&) {
      close_conn(conn_id);
    }
  }

  /// Welcomes every parked worker whose instance matches the newly queued
  /// session — parking is a promise, not a refusal.
  void adopt_parked(std::size_t s_idx) {
    if (sessions_[s_idx].st != Session::St::Active) return;
    for (std::size_t c = 0; c < conns_.size(); ++c) {
      Conn& conn = *conns_[c];
      if (conn.st != Conn::St::Parked || !identity_matches(conn, sessions_[s_idx])) continue;
      if (conn.pinned_session != 0 && sessions_[s_idx].id != conn.pinned_session) continue;
      say("serve: adopting parked worker into session " + std::to_string(sessions_[s_idx].id));
      welcome(c, s_idx);
    }
  }

  [[nodiscard]] std::vector<JobSummary> summaries() const {
    std::vector<JobSummary> jobs;
    jobs.reserve(sessions_.size());
    for (const Session& s : sessions_) {
      JobSummary j;
      j.session_id = s.id;
      j.fingerprint = s.header.fingerprint;
      j.n = s.header.n;
      j.m = s.header.m;
      j.model = s.header.model;
      j.include_deletions = s.header.include_deletions;
      j.stop_on_violation = s.header.stop_on_violation;
      j.shard_count = s.header.shard_count;
      j.completed_ranges = static_cast<std::uint32_t>(s.completed_count);
      std::uint32_t quarantined = 0;
      for (const RangeState& r : s.ranges) {
        if (r.st == RangeState::St::Quarantined) ++quarantined;
      }
      j.quarantined_ranges = quarantined;
      j.state = s.st == Session::St::Active    ? JobSummary::State::Active
                : s.st == Session::St::Complete ? JobSummary::State::Complete
                                                : JobSummary::State::Refused;
      jobs.push_back(j);
    }
    return jobs;
  }

  /// Session whose run a result belongs to: the shard's own identity block
  /// names it (fingerprint + n + m + model + flags + shard_count), so
  /// routing needs no per-connection bookkeeping and late results from
  /// re-handshaken workers still land in the right fold.
  [[nodiscard]] std::size_t find_session_for_result(const ShardResult& r) const {
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      const JournalHeader& h = sessions_[i].header;
      if (h.fingerprint == r.fingerprint && h.n == r.n && h.m == r.m && h.model == r.model &&
          h.include_deletions == r.include_deletions &&
          h.stop_on_violation == r.stop_on_violation && h.shard_count == r.shard_count) {
        return i;
      }
    }
    return kNoSession;
  }

  /// Validates a decoded result against its session and the canonical
  /// split; any disagreement is indistinguishable from corruption and
  /// strikes.
  void accept_result(std::size_t conn_id, std::string_view payload) {
    const ShardResult r = shard_from_bytes(payload);  // throws on corruption
    const std::size_t s_idx = find_session_for_result(r);
    BNCG_REQUIRE(s_idx != kNoSession, "serve: result matches no queued session");
    Session& s = sessions_[s_idx];
    BNCG_REQUIRE(r.shard_index < s.ranges.size(),
                 "serve: result shard coordinates out of range");
    const std::size_t idx = r.shard_index;
    RangeState& range = s.ranges[idx];
    BNCG_REQUIRE(r.agent_lo == range.range.lo && r.agent_hi == range.range.hi,
                 "serve: result range disagrees with the canonical split");
    BNCG_REQUIRE(r.scanned == r.agent_hi - r.agent_lo ||
                     (s.header.stop_on_violation && r.best.has_value()),
                 "serve: incomplete scan in a result");

    Conn& conn = *conns_[conn_id];
    const bool mine = conn.st == Conn::St::Working && conn.session == s_idx && conn.range == idx;
    if (range.st == RangeState::St::Completed) {
      // Duplicate (double-send or a straggler finishing a re-dispatched
      // range someone else already delivered): first valid result won.
      ++stats_.duplicate_results;
      if (mine) release_conn_work(conn);
      return;
    }
    // Streaming sink: the shard goes to disk crash-safely NOW and the
    // in-memory copy dies with this scope — peak witness memory stays
    // O(one shard) per session, not O(n).
    s.sink->append(r);
    if (s.durable) ++stats_.journaled_ranges;
    range.st = RangeState::St::Completed;
    range.lease_conn = kNoConn;
    ++s.completed_count;
    if (mine) release_conn_work(conn);
    say("serve: session " + std::to_string(s.id) + " range " + std::to_string(idx) + " [" +
        std::to_string(r.agent_lo) + ", " + std::to_string(r.agent_hi) + ") completed (" +
        std::to_string(s.completed_count) + "/" + std::to_string(s.ranges.size()) + ")");
  }

  void release_conn_work(Conn& conn) {
    conn.st = Conn::St::Idle;
    conn.session = kNoSession;
    conn.range = kNoRange;
  }

  /// Whether this connection still holds the CURRENT lease of its
  /// assigned range. A stale holder (lease expired, range re-granted or
  /// quarantined) was already charged at expiry — charging it again on
  /// disconnect or corruption would double-strike one event.
  [[nodiscard]] bool holds_current_lease(std::size_t conn_id) const {
    const Conn& conn = *conns_[conn_id];
    if (conn.st != Conn::St::Working || conn.session == kNoSession || conn.range == kNoRange) {
      return false;
    }
    const RangeState& r = sessions_[conn.session].ranges[conn.range];
    return r.st == RangeState::St::Leased && r.lease_conn == conn_id;
  }

  void corrupt_strike(std::size_t conn_id, const std::string& why) {
    ++stats_.corrupt_results;
    say("serve: corrupt data from worker (" + why + ") — dropping connection");
    // Exactly one strike per event: the corruption already cost this
    // event its strike, so the range is failed only when this conn still
    // holds its current lease, and the close below never also counts as a
    // disconnect.
    if (holds_current_lease(conn_id)) {
      fail_once(conns_[conn_id]->session, conns_[conn_id]->range);
    }
    close_conn(conn_id);
  }

  void handle_close(std::size_t conn_id) {
    if (holds_current_lease(conn_id)) {
      ++stats_.disconnects;
      say("serve: worker disconnected mid-lease");
      fail_once(conns_[conn_id]->session, conns_[conn_id]->range);
    }
    close_conn(conn_id);
  }

  void expire_leases() {
    const Clock::time_point now = Clock::now();
    for (std::size_t s_idx = 0; s_idx < sessions_.size(); ++s_idx) {
      Session& s = sessions_[s_idx];
      if (s.st != Session::St::Active) continue;
      for (std::size_t i = 0; i < s.ranges.size(); ++i) {
        RangeState& r = s.ranges[i];
        if (r.st == RangeState::St::Leased && r.lease_deadline <= now) {
          ++stats_.expired_leases;
          say("serve: lease on session " + std::to_string(s.id) + " range " + std::to_string(i) +
              " expired — eligible for re-dispatch");
          fail_once(s_idx, i);
          // The straggler's connection stays open: its late result is
          // still welcome (first valid result wins).
        }
      }
    }
  }

  void fail_once(std::size_t s_idx, std::size_t idx) {
    Session& s = sessions_[s_idx];
    RangeState& r = s.ranges[idx];
    r.lease_conn = kNoConn;
    ++r.failures;
    if (r.failures > config_.max_retries) {
      r.st = RangeState::St::Quarantined;
      say("serve: session " + std::to_string(s.id) + " range " + std::to_string(idx) +
          " quarantined after " + std::to_string(r.failures) + " failures");
      return;
    }
    r.st = RangeState::St::Pending;
    r.eligible_at = Clock::now() + std::chrono::milliseconds(
                                       redispatch_delay_ms(config_.backoff_ms, r.failures));
  }

  void close_conn(std::size_t conn_id) {
    Conn& conn = *conns_[conn_id];
    conn.sock.close_fd();
    conn.inbuf.clear();
    conn.st = Conn::St::Closed;
    conn.session = kNoSession;
    conn.range = kNoRange;
  }

  MultiServeOutcome finish() {
    const Frame done = make_done();
    for (std::size_t c = 0; c < conns_.size(); ++c) {
      if (conns_[c]->st == Conn::St::Closed) continue;
      try {
        conns_[c]->sock.send_frame(done);
      } catch (const TransportError&) {
      }
      close_conn(c);
    }
    MultiServeOutcome out;
    out.stats = stats_;
    bool all_complete = !sessions_.empty();
    for (Session& s : sessions_) {
      SessionOutcome so;
      so.session_id = s.id;
      so.header = s.header;
      so.resumed_ranges = s.resumed;
      if (s.completed_count == s.ranges.size()) {
        // Compaction streams the shard files back through ShardFold — the
        // certificate is byte-identical to the buffered merge.
        so.certificate = s.sink->compact();
        so.complete = true;
      } else {
        for (const RangeState& r : s.ranges) {
          if (r.st == RangeState::St::Completed) continue;
          so.quarantined.push_back({r.range, r.failures});
          so.agents_uncovered += r.range.hi - r.range.lo;
        }
      }
      all_complete &= so.complete;
      out.sessions.push_back(std::move(so));
    }
    say("serve: done complete=" + std::to_string(all_complete ? 1 : 0) +
        " ranges=" + std::to_string(total_ranges()) +
        " resumed=" + std::to_string(stats_.resumed_ranges) +
        " leases=" + std::to_string(stats_.leases_granted) +
        " redispatches=" + std::to_string(stats_.redispatches) +
        " expired=" + std::to_string(stats_.expired_leases) +
        " disconnects=" + std::to_string(stats_.disconnects) +
        " corrupt=" + std::to_string(stats_.corrupt_results) +
        " duplicates=" + std::to_string(stats_.duplicate_results) +
        " refused_handshakes=" + std::to_string(stats_.handshakes_refused) +
        " journaled=" + std::to_string(stats_.journaled_ranges) +
        " sessions=" + std::to_string(stats_.sessions_queued) +
        " sessions_completed=" + std::to_string(stats_.sessions_completed) +
        " sessions_refused=" + std::to_string(stats_.sessions_refused) +
        " parked=" + std::to_string(stats_.workers_parked));
    return out;
  }

  const std::vector<JobSpec>& jobs_;
  const MultiServeConfig& config_;
  std::ostream* log_;

  std::vector<Session> sessions_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_session_id_ = 1;
  std::size_t submitted_count_ = 0;
  ServeStats stats_;
};

}  // namespace

std::uint64_t redispatch_delay_ms(std::uint64_t backoff_ms, std::uint32_t failures) {
  const std::uint32_t shift = failures <= 1 ? 0 : std::min<std::uint32_t>(failures - 1, 6);
  // Saturate instead of shifting into the void: backoff_ms << shift can
  // wrap uint64 for operator-sized --backoff-ms, and a wrapped delay is a
  // zero or past deadline — the opposite of backing off.
  if (backoff_ms >= (kMaxRedispatchDelayMs >> shift)) return kMaxRedispatchDelayMs;
  return backoff_ms << shift;
}

MultiServeOutcome serve_jobs(const std::vector<JobSpec>& jobs, const MultiServeConfig& config,
                             std::ostream* log) {
  BNCG_REQUIRE(!config.address.empty(), "serve: missing listen address");
  BNCG_REQUIRE(config.lease_ms >= 1, "serve: lease must be positive");
  BNCG_REQUIRE(config.backoff_ms >= 1, "serve: backoff must be positive");
  BNCG_REQUIRE(!config.resume || !config.journal_root.empty(),
               "serve: --resume requires a journal directory");
  Dispatcher dispatcher(jobs, config, log);
  return dispatcher.run();
}

ServeOutcome serve_certification(const Graph& g, const ServeConfig& config, std::ostream* log) {
  BNCG_REQUIRE(g.num_vertices() >= 1, "serve: empty instance");
  JobSpec job;
  job.fingerprint = graph_fingerprint(g);
  job.n = g.num_vertices();
  job.m = g.num_edges();
  job.model = config.model;
  job.include_deletions = config.include_deletions;
  job.stop_on_violation = config.stop_on_violation;
  job.shards = config.shards;

  MultiServeConfig multi;
  multi.address = config.address;
  multi.lease_ms = config.lease_ms;
  multi.max_retries = config.max_retries;
  multi.backoff_ms = config.backoff_ms;
  multi.journal_root = config.journal_dir;
  multi.resume = config.resume;
  multi.flat_journal = true;  // PR6 layout: journal_dir IS the session dir
  multi.accept_submissions = 0;

  MultiServeOutcome outcome = serve_jobs({job}, multi, log);
  ServeOutcome out;
  out.stats = outcome.stats;
  SessionOutcome& s = outcome.sessions.front();
  out.complete = s.complete;
  out.certificate = std::move(s.certificate);
  out.quarantined = std::move(s.quarantined);
  out.agents_uncovered = s.agents_uncovered;
  return out;
}

}  // namespace bncg::svc

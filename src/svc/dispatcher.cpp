#include "svc/dispatcher.hpp"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/certify_wire.hpp"
#include "graph/io.hpp"
#include "svc/journal.hpp"
#include "svc/net.hpp"
#include "svc/protocol.hpp"
#include "util/error.hpp"

namespace bncg::svc {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNoConn = static_cast<std::size_t>(-1);
constexpr std::size_t kNoRange = static_cast<std::size_t>(-1);
constexpr int kIdlePollMs = 10000;

struct RangeState {
  enum class St { Pending, Leased, Completed, Quarantined };
  AgentRange range;
  St st = St::Pending;
  std::uint32_t failures = 0;
  std::uint32_t grants = 0;
  Clock::time_point eligible_at{};    // backoff gate while Pending
  std::size_t lease_conn = kNoConn;   // current holder while Leased
  Clock::time_point lease_deadline{};
};

struct Conn {
  enum class St { AwaitHello, Idle, Working, Closed };
  Socket sock;
  std::string inbuf;
  St st = St::AwaitHello;
  std::size_t range = kNoRange;  // assignment while Working
};

class Dispatcher {
 public:
  Dispatcher(const Graph& g, const ServeConfig& config, std::ostream* log)
      : g_(g), config_(config), log_(log) {}

  ServeOutcome run() {
    prepare();
    if (completed_count_ == ranges_.size()) {
      say("serve: journal already covers every range — no workers needed");
      return finish();
    }
    Listener listener(config_.address);
    say("serve: listening on " + listener.address() + " (" +
        std::to_string(ranges_.size()) + " ranges, lease " + std::to_string(config_.lease_ms) +
        " ms, retry budget " + std::to_string(config_.max_retries) + ")");
    while (completed_count_ < ranges_.size()) {
      if (!progress_possible()) return finish();
      assign_work();
      wait_for_events(listener);
      expire_leases();
    }
    return finish();
  }

 private:
  void say(const std::string& line) {
    if (log_ != nullptr) *log_ << line << "\n";
  }

  /// Fixes the canonical range split, opens/creates the journal, and
  /// recovers completed ranges on --resume.
  void prepare() {
    const Vertex n = g_.num_vertices();
    BNCG_REQUIRE(n >= 1, "serve: empty instance");
    fingerprint_ = graph_fingerprint(g_);

    std::size_t shards = config_.shards != 0 ? config_.shards : std::min<std::size_t>(n, 16);
    shards = std::min<std::size_t>(shards, n);

    if (!config_.journal_dir.empty() && config_.resume) {
      journal_ = std::make_unique<ShardJournal>(ShardJournal::open(config_.journal_dir));
      const JournalHeader& h = journal_->header();
      BNCG_REQUIRE(h.fingerprint == fingerprint_ && h.n == n && h.m == g_.num_edges(),
                   "serve: journal belongs to a different instance");
      BNCG_REQUIRE(h.model == config_.model &&
                       h.include_deletions == config_.include_deletions &&
                       h.stop_on_violation == config_.stop_on_violation,
                   "serve: journal belongs to a different run configuration");
      // The journal's split is authoritative: ranges must match the
      // records byte for byte, so a --shards override is ignored on
      // resume.
      if (shards != h.shard_count) {
        say("serve: journal pins shard count " + std::to_string(h.shard_count));
        shards = h.shard_count;
      }
    }

    ranges_.resize(shards);
    completed_.assign(shards, std::nullopt);
    for (std::size_t i = 0; i < shards; ++i) {
      RangeState& r = ranges_[i];
      r.range.lo = static_cast<Vertex>(i * n / shards);
      r.range.hi = static_cast<Vertex>((i + 1) * n / shards);
      r.range.shard_index = static_cast<std::uint32_t>(i);
      r.range.shard_count = static_cast<std::uint32_t>(shards);
    }

    if (journal_ != nullptr) {
      for (const ShardResult& rec : journal_->recovered()) {
        const std::size_t i = rec.shard_index;
        const RangeState& r = ranges_[i];
        // A record whose coordinates disagree with the canonical split is
        // treated like corruption: recompute instead of trusting it.
        if (rec.agent_lo != r.range.lo || rec.agent_hi != r.range.hi) continue;
        if (completed_[i]) continue;
        completed_[i] = rec;
        ranges_[i].st = RangeState::St::Completed;
        ++completed_count_;
        ++stats_.resumed_ranges;
      }
      say("serve: journal resumed=" + std::to_string(stats_.resumed_ranges) + "/" +
          std::to_string(shards) + " ranges (skipped_corrupt=" +
          std::to_string(journal_->skipped_corrupt()) + ")");
    } else if (!config_.journal_dir.empty()) {
      JournalHeader h;
      h.fingerprint = fingerprint_;
      h.n = n;
      h.m = g_.num_edges();
      h.model = config_.model;
      h.include_deletions = config_.include_deletions;
      h.stop_on_violation = config_.stop_on_violation;
      h.shard_count = static_cast<std::uint32_t>(shards);
      journal_ = std::make_unique<ShardJournal>(ShardJournal::create(config_.journal_dir, h));
      say("serve: journaling to " + config_.journal_dir);
    }
  }

  /// True while any unfinished range can still complete: a lease is
  /// outstanding or a range still has retry budget. When false, every
  /// unfinished range is quarantined — time to refuse.
  [[nodiscard]] bool progress_possible() const {
    for (const RangeState& r : ranges_) {
      if (r.st == RangeState::St::Pending || r.st == RangeState::St::Leased) return true;
    }
    return false;
  }

  void assign_work() {
    const Clock::time_point now = Clock::now();
    for (std::size_t c = 0; c < conns_.size(); ++c) {
      if (conns_[c]->st != Conn::St::Idle) continue;
      const std::size_t idx = pick_range(now);
      if (idx == kNoRange) return;  // nothing dispatchable right now
      grant_lease(c, idx, now);
    }
  }

  [[nodiscard]] std::size_t pick_range(Clock::time_point now) const {
    for (std::size_t i = 0; i < ranges_.size(); ++i) {
      const RangeState& r = ranges_[i];
      if (r.st == RangeState::St::Pending && r.eligible_at <= now) return i;
    }
    return kNoRange;
  }

  void grant_lease(std::size_t conn_id, std::size_t idx, Clock::time_point now) {
    Conn& conn = *conns_[conn_id];
    RangeState& r = ranges_[idx];
    LeaseBody lease;
    lease.range = r.range;
    lease.lease_ms = config_.lease_ms;
    try {
      conn.sock.send_frame(make_lease(lease));
    } catch (const TransportError&) {
      close_conn(conn_id);  // peer vanished before the lease landed
      return;
    }
    r.st = RangeState::St::Leased;
    r.lease_conn = conn_id;
    r.lease_deadline = now + std::chrono::milliseconds(config_.lease_ms);
    ++r.grants;
    ++stats_.leases_granted;
    if (r.grants > 1) ++stats_.redispatches;
    conn.st = Conn::St::Working;
    conn.range = idx;
  }

  /// Poll timeout: the earliest lease deadline or backoff expiry (the
  /// latter only matters when an idle worker is waiting for it).
  [[nodiscard]] int poll_timeout_ms() const {
    const Clock::time_point now = Clock::now();
    bool any_idle = false;
    for (const auto& conn : conns_) any_idle |= conn->st == Conn::St::Idle;
    Clock::time_point wake = now + std::chrono::milliseconds(kIdlePollMs);
    for (const RangeState& r : ranges_) {
      if (r.st == RangeState::St::Leased) wake = std::min(wake, r.lease_deadline);
      if (r.st == RangeState::St::Pending && any_idle) wake = std::min(wake, r.eligible_at);
    }
    const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(wake - now).count();
    return static_cast<int>(std::clamp<long long>(delta, 0, kIdlePollMs)) + 1;
  }

  void wait_for_events(Listener& listener) {
    std::vector<pollfd> fds;
    std::vector<std::size_t> owners;  // conn index per pollfd past the listener
    fds.push_back({listener.fd(), POLLIN, 0});
    for (std::size_t c = 0; c < conns_.size(); ++c) {
      if (conns_[c]->st == Conn::St::Closed) continue;
      fds.push_back({conns_[c]->sock.fd(), POLLIN, 0});
      owners.push_back(c);
    }
    const int rc = ::poll(fds.data(), fds.size(), poll_timeout_ms());
    if (rc < 0) {
      if (errno == EINTR) return;
      throw TransportError("serve: poll failed");
    }
    if (fds[0].revents != 0) accept_new(listener);
    for (std::size_t k = 1; k < fds.size(); ++k) {
      if (fds[k].revents != 0) service_conn(owners[k - 1]);
    }
  }

  void accept_new(Listener& listener) {
    while (true) {
      Socket sock = listener.accept_connection();
      if (!sock.valid()) return;
      sock.set_nonblocking(true);
      auto conn = std::make_unique<Conn>();
      conn->sock = std::move(sock);
      conns_.push_back(std::move(conn));
      ++stats_.workers_connected;
    }
  }

  void service_conn(std::size_t conn_id) {
    Conn& conn = *conns_[conn_id];
    if (conn.st == Conn::St::Closed) return;
    Socket::ReadStatus status = Socket::ReadStatus::WouldBlock;
    do {
      status = conn.sock.read_some(conn.inbuf);
    } while (status == Socket::ReadStatus::Data);
    try {
      while (std::optional<Frame> frame = try_decode_frame(conn.inbuf)) {
        handle_frame(conn_id, *frame);
        if (conns_[conn_id]->st == Conn::St::Closed) return;
      }
    } catch (const std::invalid_argument& e) {
      corrupt_strike(conn_id, e.what());
      return;
    }
    if (status == Socket::ReadStatus::Closed) handle_close(conn_id);
  }

  void handle_frame(std::size_t conn_id, const Frame& frame) {
    Conn& conn = *conns_[conn_id];
    switch (frame.type) {
      case FrameType::Hello: {
        BNCG_REQUIRE(conn.st == Conn::St::AwaitHello, "serve: unexpected hello");
        const HelloBody hello = parse_hello(frame);
        std::string refuse;
        if (hello.protocol_version != kSvcProtocolVersion) {
          refuse = "protocol version mismatch";
        } else if (hello.fingerprint != fingerprint_ || hello.n != g_.num_vertices() ||
                   hello.m != g_.num_edges()) {
          refuse = "instance fingerprint mismatch — worker loaded a different graph";
        }
        if (!refuse.empty()) {
          ++stats_.handshakes_refused;
          say("serve: refusing worker: " + refuse);
          try {
            conn.sock.send_frame(make_refuse(refuse));
          } catch (const TransportError&) {
          }
          close_conn(conn_id);
          return;
        }
        WelcomeBody welcome;
        welcome.model = config_.model;
        welcome.include_deletions = config_.include_deletions;
        welcome.stop_on_violation = config_.stop_on_violation;
        welcome.shard_count = static_cast<std::uint32_t>(ranges_.size());
        try {
          conn.sock.send_frame(make_welcome(welcome));
        } catch (const TransportError&) {
          close_conn(conn_id);
          return;
        }
        conn.st = Conn::St::Idle;
        return;
      }
      case FrameType::Result: {
        BNCG_REQUIRE(conn.st == Conn::St::Working || conn.st == Conn::St::Idle,
                     "serve: result before handshake");
        accept_result(conn_id, frame.payload);
        return;
      }
      default:
        BNCG_REQUIRE(false, "serve: unexpected frame type from worker");
    }
  }

  /// Validates a decoded result against the run and the canonical split;
  /// any disagreement is indistinguishable from corruption and strikes.
  void accept_result(std::size_t conn_id, std::string_view payload) {
    const ShardResult r = shard_from_bytes(payload);  // throws on corruption
    BNCG_REQUIRE(r.fingerprint == fingerprint_ && r.n == g_.num_vertices() &&
                     r.m == g_.num_edges(),
                 "serve: result for a different instance");
    BNCG_REQUIRE(r.model == config_.model && r.include_deletions == config_.include_deletions &&
                     r.stop_on_violation == config_.stop_on_violation,
                 "serve: result for a different run configuration");
    BNCG_REQUIRE(r.shard_count == ranges_.size() && r.shard_index < ranges_.size(),
                 "serve: result shard coordinates out of range");
    const std::size_t idx = r.shard_index;
    RangeState& range = ranges_[idx];
    BNCG_REQUIRE(r.agent_lo == range.range.lo && r.agent_hi == range.range.hi,
                 "serve: result range disagrees with the canonical split");
    BNCG_REQUIRE(r.scanned == r.agent_hi - r.agent_lo ||
                     (config_.stop_on_violation && r.best.has_value()),
                 "serve: incomplete scan in a result");

    Conn& conn = *conns_[conn_id];
    if (completed_[idx]) {
      // Duplicate (double-send or a straggler finishing a re-dispatched
      // range someone else already delivered): first valid result won.
      ++stats_.duplicate_results;
      if (conn.st == Conn::St::Working && conn.range == idx) release_conn_work(conn);
      return;
    }
    completed_[idx] = r;
    ++completed_count_;
    range.st = RangeState::St::Completed;
    range.lease_conn = kNoConn;
    if (journal_ != nullptr) {
      journal_->record(r);
      ++stats_.journaled_ranges;
    }
    if (conn.st == Conn::St::Working && conn.range == idx) release_conn_work(conn);
    say("serve: range " + std::to_string(idx) + " [" + std::to_string(r.agent_lo) + ", " +
        std::to_string(r.agent_hi) + ") completed (" + std::to_string(completed_count_) + "/" +
        std::to_string(ranges_.size()) + ")");
  }

  void release_conn_work(Conn& conn) {
    conn.st = Conn::St::Idle;
    conn.range = kNoRange;
  }

  void corrupt_strike(std::size_t conn_id, const std::string& why) {
    ++stats_.corrupt_results;
    say("serve: corrupt data from worker (" + why + ") — dropping connection");
    fail_active_lease(conn_id);
    close_conn(conn_id);
  }

  void handle_close(std::size_t conn_id) {
    if (conns_[conn_id]->st == Conn::St::Working) {
      ++stats_.disconnects;
      say("serve: worker disconnected mid-lease");
    }
    fail_active_lease(conn_id);
    close_conn(conn_id);
  }

  /// Charges the failure to the range ONLY when this connection still
  /// holds its current lease; a stale holder (lease already expired and
  /// possibly re-granted) was charged at expiry.
  void fail_active_lease(std::size_t conn_id) {
    const Conn& conn = *conns_[conn_id];
    if (conn.st != Conn::St::Working || conn.range == kNoRange) return;
    RangeState& r = ranges_[conn.range];
    if (r.st == RangeState::St::Leased && r.lease_conn == conn_id) fail_once(conn.range);
  }

  void expire_leases() {
    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < ranges_.size(); ++i) {
      RangeState& r = ranges_[i];
      if (r.st == RangeState::St::Leased && r.lease_deadline <= now) {
        ++stats_.expired_leases;
        say("serve: lease on range " + std::to_string(i) +
            " expired — eligible for re-dispatch");
        fail_once(i);
        // The straggler's connection stays open: its late result is still
        // welcome (first valid result wins).
      }
    }
  }

  void fail_once(std::size_t idx) {
    RangeState& r = ranges_[idx];
    r.lease_conn = kNoConn;
    ++r.failures;
    if (r.failures > config_.max_retries) {
      r.st = RangeState::St::Quarantined;
      say("serve: range " + std::to_string(idx) + " quarantined after " +
          std::to_string(r.failures) + " failures");
      return;
    }
    const std::uint32_t shift = std::min<std::uint32_t>(r.failures - 1, 6);
    r.st = RangeState::St::Pending;
    r.eligible_at =
        Clock::now() + std::chrono::milliseconds(config_.backoff_ms << shift);
  }

  void close_conn(std::size_t conn_id) {
    Conn& conn = *conns_[conn_id];
    conn.sock.close_fd();
    conn.inbuf.clear();
    conn.st = Conn::St::Closed;
    conn.range = kNoRange;
  }

  ServeOutcome finish() {
    const Frame done = make_done();
    for (std::size_t c = 0; c < conns_.size(); ++c) {
      if (conns_[c]->st == Conn::St::Closed) continue;
      try {
        conns_[c]->sock.send_frame(done);
      } catch (const TransportError&) {
      }
      close_conn(c);
    }
    ServeOutcome out;
    out.stats = stats_;
    if (completed_count_ == ranges_.size()) {
      std::vector<ShardResult> shards;
      shards.reserve(ranges_.size());
      for (const std::optional<ShardResult>& r : completed_) shards.push_back(*r);
      out.certificate = merge_shard_results(shards);
      out.complete = true;
    } else {
      for (const RangeState& r : ranges_) {
        if (r.st == RangeState::St::Completed) continue;
        out.quarantined.push_back({r.range, r.failures});
        out.agents_uncovered += r.range.hi - r.range.lo;
      }
    }
    say("serve: done complete=" + std::to_string(out.complete ? 1 : 0) +
        " ranges=" + std::to_string(ranges_.size()) +
        " resumed=" + std::to_string(stats_.resumed_ranges) +
        " leases=" + std::to_string(stats_.leases_granted) +
        " redispatches=" + std::to_string(stats_.redispatches) +
        " expired=" + std::to_string(stats_.expired_leases) +
        " disconnects=" + std::to_string(stats_.disconnects) +
        " corrupt=" + std::to_string(stats_.corrupt_results) +
        " duplicates=" + std::to_string(stats_.duplicate_results) +
        " refused_handshakes=" + std::to_string(stats_.handshakes_refused) +
        " journaled=" + std::to_string(stats_.journaled_ranges));
    return out;
  }

  const Graph& g_;
  const ServeConfig& config_;
  std::ostream* log_;

  std::uint64_t fingerprint_ = 0;
  std::vector<RangeState> ranges_;
  std::vector<std::optional<ShardResult>> completed_;
  std::size_t completed_count_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::unique_ptr<ShardJournal> journal_;
  ServeStats stats_;
};

}  // namespace

ServeOutcome serve_certification(const Graph& g, const ServeConfig& config, std::ostream* log) {
  BNCG_REQUIRE(!config.address.empty(), "serve: missing listen address");
  BNCG_REQUIRE(config.lease_ms >= 1, "serve: lease must be positive");
  BNCG_REQUIRE(config.backoff_ms >= 1, "serve: backoff must be positive");
  BNCG_REQUIRE(config.resume == false || !config.journal_dir.empty(),
               "serve: --resume requires a journal directory");
  Dispatcher dispatcher(g, config, log);
  return dispatcher.run();
}

}  // namespace bncg::svc

#include "svc/net.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "graph/io.hpp"
#include "util/error.hpp"

namespace bncg::svc {

namespace {

constexpr std::size_t kFrameHeaderBytes = 4 + 1 + 4;  // magic + type + length
constexpr std::size_t kFrameTrailerBytes = 8;         // checksum
constexpr int kSendStallMs = 5000;  // unwritable peer → TransportError

[[noreturn]] void throw_errno(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

[[nodiscard]] std::uint64_t frame_checksum(FrameType type, std::string_view payload) {
  std::string body;
  body.reserve(1 + payload.size());
  body.push_back(static_cast<char>(type));
  body.append(payload);
  return fnv1a64(body.data(), body.size());
}

/// Splits "tcp:host:port" / "unix:path". Throws std::invalid_argument on
/// anything else — a bad address is caller misuse, not a transport fault.
struct ParsedAddress {
  bool is_unix = false;
  std::string path;  // unix
  std::string host;  // tcp
  std::uint16_t port = 0;
};

[[nodiscard]] ParsedAddress parse_address(const std::string& address) {
  ParsedAddress out;
  if (address.rfind("unix:", 0) == 0) {
    out.is_unix = true;
    out.path = address.substr(5);
    BNCG_REQUIRE(!out.path.empty(), "svc: empty unix socket path");
    sockaddr_un probe{};
    BNCG_REQUIRE(out.path.size() < sizeof probe.sun_path, "svc: unix socket path too long");
    return out;
  }
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const std::size_t colon = rest.rfind(':');
    BNCG_REQUIRE(colon != std::string::npos && colon > 0, "svc: tcp address must be host:port");
    out.host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    BNCG_REQUIRE(!port_text.empty() &&
                     port_text.find_first_not_of("0123456789") == std::string::npos &&
                     std::stoul(port_text) <= 0xFFFF,
                 "svc: bad tcp port");
    out.port = static_cast<std::uint16_t>(std::stoul(port_text));
    return out;
  }
  BNCG_REQUIRE(false, "svc: address must start with unix: or tcp:");
  return out;  // unreachable
}

void fill_inet(const ParsedAddress& addr, sockaddr_in& sin) {
  sin = {};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(addr.port);
  BNCG_REQUIRE(inet_pton(AF_INET, addr.host.c_str(), &sin.sin_addr) == 1,
               "svc: tcp host must be an IPv4 literal");
}

void fill_unix(const ParsedAddress& addr, sockaddr_un& sun) {
  sun = {};
  sun.sun_family = AF_UNIX;
  std::memcpy(sun.sun_path, addr.path.c_str(), addr.path.size() + 1);
}

}  // namespace

void put_u8(std::string& out, std::uint8_t v) { out.push_back(static_cast<char>(v)); }

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_bytes(std::string& out, std::string_view bytes) {
  BNCG_REQUIRE(bytes.size() <= 0xFFFFFFFFull, "svc: byte string too long");
  put_u32(out, static_cast<std::uint32_t>(bytes.size()));
  out.append(bytes);
}

std::uint8_t PayloadReader::u8() {
  BNCG_REQUIRE(pos_ + 1 <= bytes_.size(), "svc payload: truncated");
  return static_cast<std::uint8_t>(bytes_[pos_++]);
}

std::uint32_t PayloadReader::u32() {
  BNCG_REQUIRE(pos_ + 4 <= bytes_.size(), "svc payload: truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(bytes_[pos_ + i])) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t PayloadReader::u64() {
  BNCG_REQUIRE(pos_ + 8 <= bytes_.size(), "svc payload: truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes_[pos_ + i])) << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::string PayloadReader::bytes() {
  const std::uint32_t len = u32();
  BNCG_REQUIRE(pos_ + len <= bytes_.size(), "svc payload: truncated");
  std::string out(bytes_.substr(pos_, len));
  pos_ += len;
  return out;
}

void PayloadReader::expect_end() const {
  BNCG_REQUIRE(pos_ == bytes_.size(), "svc payload: trailing bytes");
}

std::string encode_frame(const Frame& frame) {
  BNCG_REQUIRE(frame.payload.size() <= kMaxFramePayload, "svc frame: payload too large");
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);
  put_u32(out, kFrameMagic);
  put_u8(out, static_cast<std::uint8_t>(frame.type));
  put_u32(out, static_cast<std::uint32_t>(frame.payload.size()));
  out.append(frame.payload);
  put_u64(out, frame_checksum(frame.type, frame.payload));
  return out;
}

std::optional<Frame> try_decode_frame(std::string& buffer) {
  if (buffer.size() < kFrameHeaderBytes) return std::nullopt;
  PayloadReader header(std::string_view(buffer).substr(0, kFrameHeaderBytes));
  BNCG_REQUIRE(header.u32() == kFrameMagic, "svc frame: bad magic");
  const std::uint8_t type_byte = header.u8();
  BNCG_REQUIRE(type_byte >= static_cast<std::uint8_t>(FrameType::Hello) &&
                   type_byte <= static_cast<std::uint8_t>(FrameType::JobStatus),
               "svc frame: unknown type");
  const std::uint32_t length = header.u32();
  BNCG_REQUIRE(length <= kMaxFramePayload, "svc frame: length out of range");
  const std::size_t total = kFrameHeaderBytes + length + kFrameTrailerBytes;
  if (buffer.size() < total) return std::nullopt;
  Frame frame;
  frame.type = static_cast<FrameType>(type_byte);
  frame.payload = buffer.substr(kFrameHeaderBytes, length);
  PayloadReader trailer(std::string_view(buffer).substr(kFrameHeaderBytes + length, 8));
  BNCG_REQUIRE(trailer.u64() == frame_checksum(frame.type, frame.payload),
               "svc frame: checksum mismatch");
  buffer.erase(0, total);
  return frame;
}

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_), inbuf_(std::move(other.inbuf_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close_fd();
    fd_ = other.fd_;
    inbuf_ = std::move(other.inbuf_);
    other.fd_ = -1;
  }
  return *this;
}

Socket::~Socket() { close_fd(); }

void Socket::close_fd() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_bytes(std::string_view bytes) {
  BNCG_REQUIRE(valid(), "svc: send on closed socket");
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t rc =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Non-blocking fd with a full send buffer: wait briefly for the peer
      // to drain; a peer stuck past the stall bound is a transport fault.
      pollfd pfd{fd_, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, kSendStallMs);
      if (ready > 0) continue;
      if (ready < 0 && errno == EINTR) continue;
      throw TransportError("svc: peer unwritable (send stalled)");
    }
    throw_errno("svc: send failed");
  }
}

Frame Socket::recv_frame() {
  BNCG_REQUIRE(valid(), "svc: recv on closed socket");
  while (true) {
    if (std::optional<Frame> frame = try_decode_frame(inbuf_)) return *std::move(frame);
    char chunk[4096];
    const ssize_t rc = ::recv(fd_, chunk, sizeof chunk, 0);
    if (rc > 0) {
      inbuf_.append(chunk, static_cast<std::size_t>(rc));
      continue;
    }
    if (rc == 0) throw TransportError("svc: connection closed by peer");
    if (errno == EINTR) continue;
    throw_errno("svc: recv failed");
  }
}

Socket::ReadStatus Socket::read_some(std::string& sink) {
  BNCG_REQUIRE(valid(), "svc: read on closed socket");
  char chunk[65536];
  while (true) {
    const ssize_t rc = ::recv(fd_, chunk, sizeof chunk, 0);
    if (rc > 0) {
      sink.append(chunk, static_cast<std::size_t>(rc));
      return ReadStatus::Data;
    }
    if (rc == 0) return ReadStatus::Closed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReadStatus::WouldBlock;
    return ReadStatus::Closed;  // hard socket error == peer gone
  }
}

void Socket::set_nonblocking(bool on) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("svc: fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, want) < 0) throw_errno("svc: fcntl(F_SETFL)");
}

Socket connect_to(const std::string& address) {
  const ParsedAddress addr = parse_address(address);
  const int fd = ::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("svc: socket");
  Socket sock(fd);
  int rc;
  if (addr.is_unix) {
    sockaddr_un sun{};
    fill_unix(addr, sun);
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sun), sizeof sun);
    } while (rc < 0 && errno == EINTR);
  } else {
    sockaddr_in sin{};
    fill_inet(addr, sin);
    do {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&sin), sizeof sin);
    } while (rc < 0 && errno == EINTR);
  }
  if (rc < 0) throw_errno("svc: connect to " + address + " failed");
  return sock;
}

Listener::Listener(const std::string& address) {
  const ParsedAddress addr = parse_address(address);
  fd_ = ::socket(addr.is_unix ? AF_UNIX : AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("svc: socket");
  try {
    if (addr.is_unix) {
      sockaddr_un sun{};
      fill_unix(addr, sun);
      // A stale socket file from a crashed dispatcher would fail bind();
      // removing it is safe because a *live* listener would still accept —
      // the certification handshake, not the path, authenticates sessions.
      ::unlink(addr.path.c_str());
      if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sun), sizeof sun) < 0) {
        throw_errno("svc: bind " + address);
      }
      unlink_path_ = addr.path;
      address_ = address;
    } else {
      const int one = 1;
      ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
      sockaddr_in sin{};
      fill_inet(addr, sin);
      if (::bind(fd_, reinterpret_cast<const sockaddr*>(&sin), sizeof sin) < 0) {
        throw_errno("svc: bind " + address);
      }
      sockaddr_in bound{};
      socklen_t len = sizeof bound;
      if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
        throw_errno("svc: getsockname");
      }
      char host[INET_ADDRSTRLEN] = {};
      ::inet_ntop(AF_INET, &bound.sin_addr, host, sizeof host);
      address_ = "tcp:" + std::string(host) + ":" + std::to_string(ntohs(bound.sin_port));
    }
    if (::listen(fd_, 64) < 0) throw_errno("svc: listen");
    // Non-blocking so the dispatcher's poll loop can drain pending accepts
    // without stalling on a connection that vanished between poll and
    // accept.
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
      throw_errno("svc: listener fcntl");
    }
  } catch (...) {
    ::close(fd_);
    fd_ = -1;
    throw;
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (!unlink_path_.empty()) ::unlink(unlink_path_.c_str());
}

Socket Listener::accept_connection() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) return Socket();
    throw_errno("svc: accept failed");
  }
}

}  // namespace bncg::svc

// Streaming witness sink of the certification service (DESIGN.md §15).
//
// The PR6 dispatcher held every completed ShardResult in memory until the
// final merge — peak memory O(total witnesses) per run, multiplied by the
// number of concurrent sessions once the service multiplexes. The sink
// inverts that: each ShardResult is appended to disk crash-safely
// (tmp + fsync + rename, the journal's discipline) the moment it arrives
// and the in-memory copy is dropped; the final compaction streams the
// shard files back in shard-index order through the incremental ShardFold
// (core/certify_sharded.hpp) — the SAME fold merge_shard_results runs — so
// the certificate is byte-identical to the buffered merge while peak
// witness memory stays O(one shard).
//
// Two backings, one behavior:
//  * durable — rides on a caller-owned ShardJournal directory, so the
//    appended records double as the crash-recovery journal and survive the
//    sink (this is `serve --journal`);
//  * spool — creates a throwaway journal under a scratch directory and
//    removes the whole directory on destruction (plain `serve`, which
//    promised no persistent files).
#pragma once

#include <optional>
#include <string>

#include "core/certify_sharded.hpp"
#include "svc/journal.hpp"

namespace bncg::svc {

class StreamingSink {
 public:
  /// Durable sink over an existing journal (created or resumed by the
  /// caller). Records already in the journal count as appended — resume
  /// and streaming replay compose for free.
  [[nodiscard]] static StreamingSink durable(ShardJournal journal);

  /// Spool sink: (re)creates `dir` as a throwaway journal for `header`
  /// and removes the whole directory on destruction.
  [[nodiscard]] static StreamingSink spool(const std::string& dir, const JournalHeader& header);

  StreamingSink(StreamingSink&& other) noexcept;
  StreamingSink& operator=(StreamingSink&& other) noexcept;
  StreamingSink(const StreamingSink&) = delete;
  StreamingSink& operator=(const StreamingSink&) = delete;
  ~StreamingSink();

  /// Appends one shard crash-safely and drops it from memory. No-op for a
  /// shard index that already has a record (first valid result wins).
  /// Throws std::invalid_argument when the shard does not belong to this
  /// sink's session, std::runtime_error on I/O failure.
  void append(const ShardResult& shard);

  /// Whether shard `index` has been appended (or recovered).
  [[nodiscard]] bool has(std::uint32_t index) const { return journal_->has_record(index); }
  /// Number of distinct shards on disk.
  [[nodiscard]] std::uint32_t appended() const { return journal_->records(); }
  /// Re-reads one appended shard from disk (decode-validated). Throws when
  /// the record is absent or damaged.
  [[nodiscard]] ShardResult read(std::uint32_t index) const;
  [[nodiscard]] const JournalHeader& header() const { return journal_->header(); }
  [[nodiscard]] const std::string& dir() const { return journal_->dir(); }
  /// Damaged records skipped while reopening the backing journal.
  [[nodiscard]] std::size_t skipped_corrupt() const { return journal_->skipped_corrupt(); }

  /// Streams every shard file back in shard-index order through ShardFold
  /// and returns the merged certificate — byte-identical to
  /// merge_shard_results over the same shards, holding one ShardResult at
  /// a time. Throws std::invalid_argument when the shard set is incomplete
  /// or inconsistent, std::runtime_error when a record cannot be read.
  [[nodiscard]] ShardedCertificate compact() const;

 private:
  StreamingSink() = default;

  std::optional<ShardJournal> journal_;
  bool remove_on_destroy_ = false;
};

}  // namespace bncg::svc

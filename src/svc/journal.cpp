#include "svc/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/certify_wire.hpp"
#include "graph/io.hpp"
#include "svc/net.hpp"
#include "util/error.hpp"

namespace bncg::svc {

namespace {

constexpr const char* kSessionFile = "session.bin";

/// Writes `bytes` to `path` via temp + fsync + rename so a crash at any
/// point leaves either the complete file or nothing at the final path.
void atomic_write(const std::string& dir, const std::string& name, std::string_view bytes) {
  const std::string path = dir + "/" + name;
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    throw std::runtime_error("journal: cannot open " + tmp + ": " + std::strerror(errno));
  }
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t rc = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw std::runtime_error("journal: write failed: " + tmp + ": " + std::strerror(saved));
    }
    written += static_cast<std::size_t>(rc);
  }
  if (::fsync(fd) < 0 || ::close(fd) < 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("journal: fsync/close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw std::runtime_error("journal: rename failed: " + path);
  }
  // Make the rename itself durable: fsync the directory entry.
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
}

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("journal: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) throw std::runtime_error("journal: read failed: " + path);
  return buffer.str();
}

[[nodiscard]] std::string encode_header(const JournalHeader& h) {
  std::string body;
  put_u32(body, kJournalVersion);
  put_u64(body, h.fingerprint);
  put_u32(body, h.n);
  put_u64(body, h.m);
  put_u8(body, h.model == UsageCost::Sum ? 0 : 1);
  put_u8(body, h.include_deletions ? 1 : 0);
  put_u8(body, h.stop_on_violation ? 1 : 0);
  put_u32(body, h.shard_count);
  std::string out(kJournalMagic);
  out += body;
  put_u64(out, fnv1a64(body.data(), body.size()));
  return out;
}

[[nodiscard]] JournalHeader decode_header(std::string_view bytes) {
  BNCG_REQUIRE(bytes.size() >= kJournalMagic.size() + 8, "journal session: truncated");
  BNCG_REQUIRE(bytes.substr(0, kJournalMagic.size()) == kJournalMagic,
               "journal session: bad magic");
  const std::string_view body =
      bytes.substr(kJournalMagic.size(), bytes.size() - kJournalMagic.size() - 8);
  PayloadReader tail(bytes.substr(bytes.size() - 8));
  BNCG_REQUIRE(fnv1a64(body.data(), body.size()) == tail.u64(),
               "journal session: checksum mismatch");
  PayloadReader in(body);
  BNCG_REQUIRE(in.u32() == kJournalVersion, "journal session: unsupported version");
  JournalHeader h;
  h.fingerprint = in.u64();
  h.n = in.u32();
  h.m = in.u64();
  const std::uint8_t model = in.u8();
  BNCG_REQUIRE(model <= 1, "journal session: bad model byte");
  h.model = model == 0 ? UsageCost::Sum : UsageCost::Max;
  h.include_deletions = in.u8() != 0;
  h.stop_on_violation = in.u8() != 0;
  h.shard_count = in.u32();
  BNCG_REQUIRE(h.shard_count >= 1, "journal session: zero shard count");
  in.expect_end();
  return h;
}

/// A recovered record must belong to this session; anything else is
/// treated exactly like corruption (skip and recompute the range).
[[nodiscard]] bool record_matches(const JournalHeader& h, const ShardResult& r) {
  return r.fingerprint == h.fingerprint && r.n == h.n && r.m == h.m && r.model == h.model &&
         r.include_deletions == h.include_deletions &&
         r.stop_on_violation == h.stop_on_violation && r.shard_count == h.shard_count &&
         r.shard_index < h.shard_count;
}

}  // namespace

std::string ShardJournal::record_name(std::uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "range_%06u.shard", index);
  return buf;
}

ShardJournal ShardJournal::create(const std::string& dir, const JournalHeader& header) {
  BNCG_REQUIRE(header.shard_count >= 1, "journal: zero shard count");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw std::runtime_error("journal: cannot create " + dir + ": " + ec.message());
  BNCG_REQUIRE(!std::filesystem::exists(dir + "/" + kSessionFile),
               "journal: " + dir + " already holds a session — resume or remove it");
  ShardJournal j;
  j.dir_ = dir;
  j.header_ = header;
  j.has_record_.assign(header.shard_count, false);
  atomic_write(dir, kSessionFile, encode_header(header));
  return j;
}

ShardJournal ShardJournal::open(const std::string& dir) {
  ShardJournal j;
  j.dir_ = dir;
  j.header_ = decode_header(read_file(dir + "/" + kSessionFile));
  j.has_record_.assign(j.header_.shard_count, false);
  for (std::uint32_t index = 0; index < j.header_.shard_count; ++index) {
    const std::string path = dir + "/" + record_name(index);
    if (!std::filesystem::exists(path)) continue;
    try {
      ShardResult r = read_shard_file(path);
      if (!record_matches(j.header_, r) || r.shard_index != index) {
        ++j.skipped_corrupt_;
        continue;
      }
      j.has_record_[index] = true;
      j.recovered_.push_back(std::move(r));
    } catch (const std::invalid_argument&) {
      ++j.skipped_corrupt_;  // damaged record → recompute that range
    }
  }
  return j;
}

void ShardJournal::record(const ShardResult& shard) {
  BNCG_REQUIRE(record_matches(header_, shard), "journal: record does not match the session");
  if (has_record_[shard.shard_index]) return;  // append-only, first result wins
  atomic_write(dir_, record_name(shard.shard_index), shard_to_binary(shard));
  has_record_[shard.shard_index] = true;
}

}  // namespace bncg::svc

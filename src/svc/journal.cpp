#include "svc/journal.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/certify_wire.hpp"
#include "graph/io.hpp"
#include "svc/net.hpp"
#include "util/error.hpp"

namespace bncg::svc {

namespace {

constexpr const char* kSessionFile = "session.bin";

[[nodiscard]] std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("journal: cannot read " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in && !in.eof()) throw std::runtime_error("journal: read failed: " + path);
  return buffer.str();
}

[[nodiscard]] std::string encode_header(const JournalHeader& h) {
  std::string body;
  put_u32(body, kJournalVersion);
  put_u64(body, h.fingerprint);
  put_u32(body, h.n);
  put_u64(body, h.m);
  put_u8(body, h.model == UsageCost::Sum ? 0 : 1);
  put_u8(body, h.include_deletions ? 1 : 0);
  put_u8(body, h.stop_on_violation ? 1 : 0);
  put_u32(body, h.shard_count);
  std::string out(kJournalMagic);
  out += body;
  put_u64(out, fnv1a64(body.data(), body.size()));
  return out;
}

[[nodiscard]] JournalHeader decode_header(std::string_view bytes) {
  BNCG_REQUIRE(bytes.size() >= kJournalMagic.size() + 8, "journal session: truncated");
  BNCG_REQUIRE(bytes.substr(0, kJournalMagic.size()) == kJournalMagic,
               "journal session: bad magic");
  const std::string_view body =
      bytes.substr(kJournalMagic.size(), bytes.size() - kJournalMagic.size() - 8);
  PayloadReader tail(bytes.substr(bytes.size() - 8));
  BNCG_REQUIRE(fnv1a64(body.data(), body.size()) == tail.u64(),
               "journal session: checksum mismatch");
  PayloadReader in(body);
  BNCG_REQUIRE(in.u32() == kJournalVersion, "journal session: unsupported version");
  JournalHeader h;
  h.fingerprint = in.u64();
  h.n = in.u32();
  h.m = in.u64();
  const std::uint8_t model = in.u8();
  BNCG_REQUIRE(model <= 1, "journal session: bad model byte");
  h.model = model == 0 ? UsageCost::Sum : UsageCost::Max;
  h.include_deletions = in.u8() != 0;
  h.stop_on_violation = in.u8() != 0;
  h.shard_count = in.u32();
  BNCG_REQUIRE(h.shard_count >= 1, "journal session: zero shard count");
  in.expect_end();
  return h;
}

/// A recovered record must belong to this session AND sit exactly on the
/// canonical i·n/K split the dispatcher leases; anything else is treated
/// exactly like corruption (skip and recompute the range). The coordinate
/// clause is what lets the streaming sink fold records straight from disk:
/// every file the journal admits is, by construction, mergeable.
[[nodiscard]] bool record_matches(const JournalHeader& h, const ShardResult& r) {
  return r.fingerprint == h.fingerprint && r.n == h.n && r.m == h.m && r.model == h.model &&
         r.include_deletions == h.include_deletions &&
         r.stop_on_violation == h.stop_on_violation && r.shard_count == h.shard_count &&
         r.shard_index < h.shard_count &&
         r.agent_lo == static_cast<Vertex>(std::uint64_t{r.shard_index} * h.n / h.shard_count) &&
         r.agent_hi ==
             static_cast<Vertex>((std::uint64_t{r.shard_index} + 1) * h.n / h.shard_count);
}

}  // namespace

std::string ShardJournal::record_name(std::uint32_t index) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "range_%06u.shard", index);
  return buf;
}

ShardJournal ShardJournal::create(const std::string& dir, const JournalHeader& header) {
  BNCG_REQUIRE(header.shard_count >= 1, "journal: zero shard count");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) throw std::runtime_error("journal: cannot create " + dir + ": " + ec.message());
  BNCG_REQUIRE(!std::filesystem::exists(dir + "/" + kSessionFile),
               "journal: " + dir + " already holds a session — resume or remove it");
  ShardJournal j;
  j.dir_ = dir;
  j.header_ = header;
  j.has_record_.assign(header.shard_count, false);
  write_file_atomic(dir + "/" + kSessionFile, encode_header(header));
  return j;
}

ShardJournal ShardJournal::open(const std::string& dir, bool keep_records) {
  ShardJournal j;
  j.dir_ = dir;
  j.header_ = decode_header(read_file(dir + "/" + kSessionFile));
  j.has_record_.assign(j.header_.shard_count, false);
  for (std::uint32_t index = 0; index < j.header_.shard_count; ++index) {
    const std::string path = dir + "/" + record_name(index);
    if (!std::filesystem::exists(path)) continue;
    try {
      ShardResult r = read_shard_file(path);
      if (!record_matches(j.header_, r) || r.shard_index != index) {
        ++j.skipped_corrupt_;
        continue;
      }
      j.has_record_[index] = true;
      if (keep_records) j.recovered_.push_back(std::move(r));
    } catch (const std::invalid_argument&) {
      ++j.skipped_corrupt_;  // damaged record → recompute that range
    }
  }
  return j;
}

void ShardJournal::record(const ShardResult& shard) {
  BNCG_REQUIRE(record_matches(header_, shard), "journal: record does not match the session");
  if (has_record_[shard.shard_index]) return;  // append-only, first result wins
  write_file_atomic(dir_ + "/" + record_name(shard.shard_index), shard_to_binary(shard));
  has_record_[shard.shard_index] = true;
}

std::string ShardJournal::session_dir_name(const JournalHeader& h) {
  // The key hashes exactly the fields record_matches compares, so "same
  // directory" and "mergeable records" coincide by construction.
  std::string body;
  put_u64(body, h.fingerprint);
  put_u32(body, h.n);
  put_u64(body, h.m);
  put_u8(body, h.model == UsageCost::Sum ? 0 : 1);
  put_u8(body, h.include_deletions ? 1 : 0);
  put_u8(body, h.stop_on_violation ? 1 : 0);
  put_u32(body, h.shard_count);
  char buf[32];
  std::snprintf(buf, sizeof buf, "session_%016llx",
                static_cast<unsigned long long>(fnv1a64(body.data(), body.size())));
  return buf;
}

std::vector<std::string> ShardJournal::list_session_dirs(const std::string& root) {
  std::vector<std::string> dirs;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    const std::string name = entry.path().filename().string();
    if (name.rfind("session_", 0) != 0) continue;
    if (!std::filesystem::exists(entry.path() / kSessionFile)) continue;
    dirs.push_back(entry.path().string());
  }
  std::sort(dirs.begin(), dirs.end());
  return dirs;
}

}  // namespace bncg::svc

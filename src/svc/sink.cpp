#include "svc/sink.hpp"

#include <filesystem>
#include <utility>

#include "core/certify_wire.hpp"
#include "util/error.hpp"

namespace bncg::svc {

StreamingSink StreamingSink::durable(ShardJournal journal) {
  StreamingSink sink;
  sink.journal_.emplace(std::move(journal));
  return sink;
}

StreamingSink StreamingSink::spool(const std::string& dir, const JournalHeader& header) {
  // A stale spool at the same path is this process's own leftover (the
  // path embeds the pid); recreating from scratch is always right.
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  StreamingSink sink;
  sink.journal_.emplace(ShardJournal::create(dir, header));
  sink.remove_on_destroy_ = true;
  return sink;
}

StreamingSink::StreamingSink(StreamingSink&& other) noexcept
    : journal_(std::move(other.journal_)),
      remove_on_destroy_(std::exchange(other.remove_on_destroy_, false)) {
  other.journal_.reset();
}

StreamingSink& StreamingSink::operator=(StreamingSink&& other) noexcept {
  if (this != &other) {
    this->~StreamingSink();
    journal_ = std::move(other.journal_);
    remove_on_destroy_ = std::exchange(other.remove_on_destroy_, false);
    other.journal_.reset();
  }
  return *this;
}

StreamingSink::~StreamingSink() {
  if (remove_on_destroy_ && journal_.has_value()) {
    std::error_code ec;
    std::filesystem::remove_all(journal_->dir(), ec);  // best effort
  }
}

void StreamingSink::append(const ShardResult& shard) { journal_->record(shard); }

ShardResult StreamingSink::read(std::uint32_t index) const {
  BNCG_REQUIRE(journal_->has_record(index), "sink: no record for shard " + std::to_string(index));
  return read_shard_file(journal_->record_path(index));
}

ShardedCertificate StreamingSink::compact() const {
  const std::uint32_t count = journal_->header().shard_count;
  ShardFold fold;
  for (std::uint32_t index = 0; index < count; ++index) {
    BNCG_REQUIRE(journal_->has_record(index),
                 "sink: compaction with missing shard " + std::to_string(index));
    fold.add(read_shard_file(journal_->record_path(index)));
  }
  return fold.finish();
}

}  // namespace bncg::svc

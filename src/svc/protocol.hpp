// Message bodies of the dispatcher/worker protocol (DESIGN.md §12, §15).
//
// One struct + encode/decode pair per frame type, layered on svc/net's
// checksummed framing. Decoders throw std::invalid_argument on any
// malformed body — same contract as certify_wire — so a corrupt payload
// that somehow survives the frame checksum still cannot smuggle bad
// fields into the dispatcher or a worker.
//
// Session multiplexing (protocol v2): the dispatcher owns a QUEUE of jobs
// (sessions), each pinning one instance identity plus one run
// configuration. A worker's Hello is routed to whichever sessions its
// loaded fingerprint matches; every Lease carries its session's id AND run
// configuration, so one worker can serve sibling sessions over the same
// instance (say, a sum job and a max job) without reconnecting — the
// Welcome's configuration is only the adopting session's default. Control
// clients never Hello: Submit queues a job (answered by Accepted),
// a JobStatus query is answered by a JobStatus report, and a worker whose
// fingerprint matches no queued job is parked with a JobStatus report
// instead of refused while submissions are still open.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/certify_sharded.hpp"
#include "core/usage_cost.hpp"
#include "svc/net.hpp"

namespace bncg::svc {

/// Worker → dispatcher greeting: protocol version plus the identity of
/// the instance the worker loaded. The dispatcher refuses a Hello whose
/// fingerprint/n/m match no queued job once submissions are closed — the
/// wire format's fingerprint guard promoted to a connect-time session
/// handshake. `session_id` 0 routes by fingerprint (any matching
/// session); nonzero pins one session and is refused when it is unknown
/// or its identity disagrees with the worker's instance.
struct HelloBody {
  std::uint32_t protocol_version = kSvcProtocolVersion;
  std::uint64_t fingerprint = 0;
  Vertex n = 0;
  std::uint64_t m = 0;
  std::uint64_t session_id = 0;
};

/// Dispatcher → worker session adoption: the id of the session whose
/// fingerprint matched, plus that session's run configuration (the worker
/// takes model and flags from the service, never from its own command
/// line). Leases repeat the configuration per range — the Welcome copy is
/// the adopting session's default, kept so a v1-shaped single-session
/// worker flow still reads naturally.
struct WelcomeBody {
  UsageCost model = UsageCost::Sum;
  bool include_deletions = false;
  bool stop_on_violation = false;
  std::uint32_t shard_count = 1;
  std::uint64_t session_id = 0;
};

/// Dispatcher → worker work assignment: one agent range, the lease
/// deadline the dispatcher will enforce, and the owning session's id and
/// run configuration (authoritative for THIS range — sibling sessions
/// over one instance may differ in model or flags).
struct LeaseBody {
  AgentRange range;
  std::uint64_t lease_ms = 0;
  std::uint64_t session_id = 0;
  UsageCost model = UsageCost::Sum;
  bool include_deletions = false;
  bool stop_on_violation = false;
};

/// Control client → dispatcher: queue one certification job. The identity
/// block is the submitting client's own fingerprint of the instance its
/// workers will load; `shard_count` 0 lets the dispatcher pick its
/// default split. Submitting a job identical to a queued/completed one is
/// idempotent: Accepted returns the existing session.
struct SubmitBody {
  std::uint32_t protocol_version = kSvcProtocolVersion;
  std::uint64_t fingerprint = 0;
  Vertex n = 0;
  std::uint64_t m = 0;
  UsageCost model = UsageCost::Sum;
  bool include_deletions = false;
  bool stop_on_violation = false;
  std::uint32_t shard_count = 0;
};

/// Dispatcher → control client: the session id a Submit landed on.
struct AcceptedBody {
  std::uint64_t session_id = 0;
  bool already_queued = false;  ///< idempotent resubmit of a known job
};

/// One session's public state in a JobStatus report.
struct JobSummary {
  std::uint64_t session_id = 0;
  std::uint64_t fingerprint = 0;
  Vertex n = 0;
  std::uint64_t m = 0;
  UsageCost model = UsageCost::Sum;
  bool include_deletions = false;
  bool stop_on_violation = false;
  std::uint32_t shard_count = 1;
  std::uint32_t completed_ranges = 0;
  std::uint32_t quarantined_ranges = 0;
  enum class State : std::uint8_t { Active = 0, Complete = 1, Refused = 2 };
  State state = State::Active;
};

/// JobStatus payload. As a request (control client → dispatcher) the
/// report flag is clear and `jobs` is empty; as a report (dispatcher →
/// client, or dispatcher → parked worker) it lists every session.
struct JobStatusBody {
  std::uint32_t protocol_version = kSvcProtocolVersion;
  bool report = false;
  std::vector<JobSummary> jobs;
};

[[nodiscard]] Frame make_hello(const HelloBody& body);
[[nodiscard]] Frame make_welcome(const WelcomeBody& body);
[[nodiscard]] Frame make_refuse(const std::string& reason);
[[nodiscard]] Frame make_lease(const LeaseBody& body);
[[nodiscard]] Frame make_result(std::string shard_wire_bytes);
[[nodiscard]] Frame make_done();
[[nodiscard]] Frame make_submit(const SubmitBody& body);
[[nodiscard]] Frame make_accepted(const AcceptedBody& body);
[[nodiscard]] Frame make_job_query();
[[nodiscard]] Frame make_job_status(const std::vector<JobSummary>& jobs);

[[nodiscard]] HelloBody parse_hello(const Frame& frame);
[[nodiscard]] WelcomeBody parse_welcome(const Frame& frame);
[[nodiscard]] std::string parse_refuse(const Frame& frame);
[[nodiscard]] LeaseBody parse_lease(const Frame& frame);
[[nodiscard]] SubmitBody parse_submit(const Frame& frame);
[[nodiscard]] AcceptedBody parse_accepted(const Frame& frame);
[[nodiscard]] JobStatusBody parse_job_status(const Frame& frame);

}  // namespace bncg::svc

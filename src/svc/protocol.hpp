// Message bodies of the dispatcher/worker protocol (DESIGN.md §12).
//
// One struct + encode/decode pair per frame type, layered on svc/net's
// checksummed framing. Decoders throw std::invalid_argument on any
// malformed body — same contract as certify_wire — so a corrupt payload
// that somehow survives the frame checksum still cannot smuggle bad
// fields into the dispatcher or a worker.
#pragma once

#include <cstdint>
#include <string>

#include "core/certify_sharded.hpp"
#include "core/usage_cost.hpp"
#include "svc/net.hpp"

namespace bncg::svc {

/// Worker → dispatcher greeting: protocol version plus the identity of
/// the instance the worker loaded. The dispatcher refuses a Hello whose
/// fingerprint/n/m disagree with its own instance — the wire format's
/// fingerprint guard promoted to a connect-time session handshake.
struct HelloBody {
  std::uint32_t protocol_version = kSvcProtocolVersion;
  std::uint64_t fingerprint = 0;
  Vertex n = 0;
  std::uint64_t m = 0;
};

/// Dispatcher → worker run configuration (the worker takes model and
/// flags from the service, never from its own command line).
struct WelcomeBody {
  UsageCost model = UsageCost::Sum;
  bool include_deletions = false;
  bool stop_on_violation = false;
  std::uint32_t shard_count = 1;
};

/// Dispatcher → worker work assignment: one agent range plus the lease
/// deadline the dispatcher will enforce.
struct LeaseBody {
  AgentRange range;
  std::uint64_t lease_ms = 0;
};

[[nodiscard]] Frame make_hello(const HelloBody& body);
[[nodiscard]] Frame make_welcome(const WelcomeBody& body);
[[nodiscard]] Frame make_refuse(const std::string& reason);
[[nodiscard]] Frame make_lease(const LeaseBody& body);
[[nodiscard]] Frame make_result(std::string shard_wire_bytes);
[[nodiscard]] Frame make_done();

[[nodiscard]] HelloBody parse_hello(const Frame& frame);
[[nodiscard]] WelcomeBody parse_welcome(const Frame& frame);
[[nodiscard]] std::string parse_refuse(const Frame& frame);
[[nodiscard]] LeaseBody parse_lease(const Frame& frame);

}  // namespace bncg::svc

// Sharded certification — the large-n driver over the swap engine.
//
// SwapEngine::certify parallelizes one flat pool loop over agents, which is
// the right shape while every thread's n×n scratch fits in cache-adjacent
// memory and the per-agent cost is uniform. Past n ≈ 4096 neither holds:
// agent costs spread out (degree skew makes some masked APSPs several times
// pricier than others), a single straggler holds the whole loop's implicit
// barrier, and a verdict-only caller still pays for the full best-witness
// scan of every agent. certify_sharded repackages the same per-agent scans
// as OpenMP *task* shards:
//
//  * the agent range splits into `shards` contiguous blocks dispatched as
//    untied-scheduler-friendly tasks, so threads steal whole blocks and a
//    straggling shard overlaps the rest instead of gating a barrier;
//  * each shard folds its own best witness locally; the final merge walks
//    shards in index order — which IS agent order — picking the strictly
//    better cost_after, so the certificate (witness, tie-breaks,
//    moves_checked) is bit-identical to SwapEngine::certify and the serial
//    naive fold, under any thread count and any task schedule;
//  * `stop_on_violation` flips the scan to first-deviation with a shared
//    abort flag checked between agents: the moment any shard finds a
//    violation the remaining shards drain. The *verdict* stays
//    deterministic (a violation exists or it does not); the reported
//    witness and move count then depend on timing and are documented as
//    such — that mode is for "is this an equilibrium at all" screens where
//    the answer is usually "no" within a few shards.
//
// Width adaptivity rides along for free: the engine underneath starts its
// scans at u8 whenever the instance's diameter bound fits
// (graph/dist_width.hpp), halving per-shard scratch and combine bandwidth
// at exactly the scale where this driver matters.
// Cross-process fan-out rides on the same shape: certify_agent_range runs
// one shard's scan against any SwapEngine (in this process or a worker on
// another machine), merge_shard_results folds ShardResults back into the
// full certificate with the identical shard-index-order / strict-'<' rule,
// and every ShardResult carries the instance fingerprint + run parameters
// so results from different graphs or mismatched runs refuse to merge.
// core/certify_wire.hpp serializes ShardResult; tools/bncg_certify.cpp and
// scripts/certify_fanout.sh drive the multi-process pipeline (DESIGN.md
// §11).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "core/equilibrium.hpp"
#include "core/swap_engine.hpp"
#include "core/usage_cost.hpp"
#include "graph/dist_width.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Tuning knobs of a sharded certification run. Defaults reproduce
/// SwapEngine::certify results exactly with auto-sized shards.
struct ShardedCertifyConfig {
  /// Number of contiguous agent shards; 0 = auto (4 blocks per available
  /// thread, capped at n — enough slack for stealing without shrinking
  /// blocks below the task-dispatch overhead).
  std::size_t shards = 0;
  /// Verdict-only fast path: scan first-deviation per agent and abort every
  /// shard once any violation is found. Witness/moves become
  /// schedule-dependent; is_equilibrium stays deterministic.
  bool stop_on_violation = false;
  /// DEPRECATED (one PR): pre-ResourceConfig width knob, honored only while
  /// resources.width stays Auto. Use resources.width instead.
  WidthPolicy width = WidthPolicy::Auto;
  /// Width + memory budget of the underlying engine
  /// (core/dist_provider.hpp). A budget below the dense n×n slab switches
  /// the per-agent scans to the blocked row cache — same certificate bytes,
  /// bounded memory; how certification reaches n = 2¹⁷ and beyond.
  ResourceConfig resources;
};

/// Effective engine resources of a sharded config: resources, with the
/// deprecated width field taking over while resources.width is Auto.
[[nodiscard]] ResourceConfig resolved_resources(const ShardedCertifyConfig& config);

/// Outcome of certify_sharded: the standard certificate plus the sharding
/// and width telemetry the benches record.
struct ShardedCertificate {
  EquilibriumCertificate certificate;
  std::size_t shards_used = 0;
  Vertex agents_scanned = 0;          ///< < n only when stop_on_violation aborted
  DistWidth width = DistWidth::U16;   ///< width the engine's scans preferred
  std::uint64_t width_fallbacks = 0;  ///< agents redone at u16 after u8 saturation
};

/// One shard's contiguous agent block within a sharded run. Indices are
/// merge-order coordinates: merge_shard_results folds shards by ascending
/// shard_index and requires the ranges to tile [0, n) exactly.
struct AgentRange {
  Vertex lo = 0;                  ///< first agent of the shard (inclusive)
  Vertex hi = 0;                  ///< one past the last agent (exclusive)
  std::uint32_t shard_index = 0;  ///< position of this shard in merge order
  std::uint32_t shard_count = 1;  ///< total shards of the run
};

/// The unit of work a certification shard produces — self-describing, so a
/// result can cross an address-space (or machine) boundary and still be
/// merged safely. The identity block pins the instance and run parameters
/// (merge_shard_results refuses any mismatch); the payload block is exactly
/// what the in-process task shards fold. Serialized by
/// core/certify_wire.hpp.
struct ShardResult {
  // --- identity: the merge guard ---
  std::uint64_t fingerprint = 0;  ///< graph_fingerprint(g) of the instance
  Vertex n = 0;                   ///< vertex count of the instance
  std::uint64_t m = 0;            ///< edge count of the instance
  UsageCost model = UsageCost::Sum;
  bool include_deletions = false;
  bool stop_on_violation = false;
  // --- shard coordinates ---
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  Vertex agent_lo = 0;
  Vertex agent_hi = 0;
  // --- payload ---
  std::optional<Deviation> best;  ///< best deviation within [agent_lo, agent_hi)
  std::uint64_t moves = 0;        ///< candidate moves evaluated by this shard
  Vertex scanned = 0;             ///< agents scanned (< range size only on abort)
  // --- telemetry ---
  DistWidth width = DistWidth::U16;   ///< width the shard's engine preferred
  std::uint64_t width_fallbacks = 0;  ///< u8 → u16 agent redos within the shard
};

/// Certifies agents [range.lo, range.hi) of the instance `engine`
/// snapshots and packages the outcome as a mergeable ShardResult. The
/// identity block — fingerprint included — is stamped from the engine's
/// own snapshot, so a shard can never carry one instance's fingerprint
/// over another instance's payload. This is the worker-side entry point of
/// the cross-process pipeline and the per-task body of the in-process
/// driver: agents are scanned in ascending order with the engine's scan
/// rules, so merging the results of ANY partition of [0, n) reproduces
/// SwapEngine::certify bit for bit. `scratch` may be shared across
/// sequential calls; pass null to use a call-local one. `abort`, when
/// given, is checked before each agent and raised on a violation under
/// stop_on_violation — the in-process driver shares one flag across all
/// shards, independent worker processes simply pass null and stop at their
/// own first violation.
[[nodiscard]] ShardResult certify_agent_range(const SwapEngine& engine, const AgentRange& range,
                                              UsageCost model, bool include_deletions = false,
                                              bool stop_on_violation = false,
                                              SwapEngine::Scratch* scratch = nullptr,
                                              std::atomic<bool>* abort = nullptr);

/// Incremental twin of merge_shard_results — THE single fold
/// implementation (merge_shard_results routes through it). Shards must
/// arrive in ascending shard-index order, one at a time; each add()
/// validates the guard fields against the first shard (equal
/// fingerprint/n/m/model/flags, index == number folded so far, ranges
/// tiling [0, n) in order, full ranges scanned unless stop_on_violation)
/// and throws std::invalid_argument on any violation. Because the fold is
/// a strict-'<' running minimum over one Deviation plus three counters,
/// a caller can stream shards from disk one file at a time and never hold
/// more than one ShardResult in memory — the streaming witness sink of
/// the certification service (svc/sink.hpp) is exactly that loop.
class ShardFold {
 public:
  /// Folds the next shard (index must equal folded()).
  void add(const ShardResult& shard);
  /// Number of shards folded so far.
  [[nodiscard]] std::size_t folded() const noexcept { return folded_; }
  /// Validates full coverage (folded() == shard_count, ranges reached n)
  /// and returns the merged certificate. Throws std::invalid_argument on
  /// an empty or incomplete fold.
  [[nodiscard]] ShardedCertificate finish() const;

 private:
  std::size_t folded_ = 0;
  ShardResult head_;  // identity block of the first shard (payload unused)
  Vertex expect_lo_ = 0;
  ShardedCertificate out_;
  std::optional<Deviation> best_;
};

/// Folds shard results into the full certificate. Validates the guard
/// fields (equal fingerprint/n/m/model/flags on every shard, shard indices
/// forming 0..k−1 with shard_count == k, ranges tiling [0, n) in index
/// order, full ranges scanned unless stop_on_violation) and throws
/// std::invalid_argument on any violation — mismatched instances refuse to
/// merge. The fold walks shards in shard-index order — which IS agent
/// order — taking the strictly better cost_after, so the merged witness,
/// tie-breaks, and moves_checked are bit-identical to SwapEngine::certify
/// regardless of where or in what order the shards were produced.
[[nodiscard]] ShardedCertificate merge_shard_results(const std::vector<ShardResult>& shards);

/// Certifies `g` under `model` by sharding the per-agent scan (see header
/// comment). Without stop_on_violation the certificate — witness,
/// tie-breaks, moves_checked — is bit-identical to SwapEngine::certify and
/// the bncg::naive certifiers (differential-tested in
/// tests/test_certify_sharded.cpp). `include_deletions` selects the max
/// model's deletion clause, exactly as in SwapEngine::certify. Intended for
/// the n ≥ 4096 tier above kSwapEngineAutoMaxVertices, correct at any size;
/// with a memory budget (config.resources) the scans run against the
/// blocked row cache, which is what admits n ≥ 65535 instances the dense
/// O(n²) storage provably cannot fit.
[[nodiscard]] ShardedCertificate certify_sharded(const Graph& g, UsageCost model,
                                                 bool include_deletions = false,
                                                 const ShardedCertifyConfig& config = {});

}  // namespace bncg

// Sharded certification — the large-n driver over the swap engine.
//
// SwapEngine::certify parallelizes one flat `omp for` over agents, which is
// the right shape while every thread's n×n scratch fits in cache-adjacent
// memory and the per-agent cost is uniform. Past n ≈ 4096 neither holds:
// agent costs spread out (degree skew makes some masked APSPs several times
// pricier than others), a single straggler holds the whole loop's implicit
// barrier, and a verdict-only caller still pays for the full best-witness
// scan of every agent. certify_sharded repackages the same per-agent scans
// as OpenMP *task* shards:
//
//  * the agent range splits into `shards` contiguous blocks dispatched as
//    untied-scheduler-friendly tasks, so threads steal whole blocks and a
//    straggling shard overlaps the rest instead of gating a barrier;
//  * each shard folds its own best witness locally; the final merge walks
//    shards in index order — which IS agent order — picking the strictly
//    better cost_after, so the certificate (witness, tie-breaks,
//    moves_checked) is bit-identical to SwapEngine::certify and the serial
//    naive fold, under any thread count and any task schedule;
//  * `stop_on_violation` flips the scan to first-deviation with a shared
//    abort flag checked between agents: the moment any shard finds a
//    violation the remaining shards drain. The *verdict* stays
//    deterministic (a violation exists or it does not); the reported
//    witness and move count then depend on timing and are documented as
//    such — that mode is for "is this an equilibrium at all" screens where
//    the answer is usually "no" within a few shards.
//
// Width adaptivity rides along for free: the engine underneath starts its
// scans at u8 whenever the instance's diameter bound fits
// (graph/dist_width.hpp), halving per-shard scratch and combine bandwidth
// at exactly the scale where this driver matters.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/equilibrium.hpp"
#include "core/usage_cost.hpp"
#include "graph/dist_width.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Tuning knobs of a sharded certification run. Defaults reproduce
/// SwapEngine::certify results exactly with auto-sized shards.
struct ShardedCertifyConfig {
  /// Number of contiguous agent shards; 0 = auto (4 blocks per available
  /// thread, capped at n — enough slack for stealing without shrinking
  /// blocks below the task-dispatch overhead).
  std::size_t shards = 0;
  /// Verdict-only fast path: scan first-deviation per agent and abort every
  /// shard once any violation is found. Witness/moves become
  /// schedule-dependent; is_equilibrium stays deterministic.
  bool stop_on_violation = false;
  /// Distance storage width the underlying engine prefers.
  WidthPolicy width = WidthPolicy::Auto;
};

/// Outcome of certify_sharded: the standard certificate plus the sharding
/// and width telemetry the benches record.
struct ShardedCertificate {
  EquilibriumCertificate certificate;
  std::size_t shards_used = 0;
  Vertex agents_scanned = 0;          ///< < n only when stop_on_violation aborted
  DistWidth width = DistWidth::U16;   ///< width the engine's scans preferred
  std::uint64_t width_fallbacks = 0;  ///< agents redone at u16 after u8 saturation
};

/// Certifies `g` under `model` by sharding the per-agent scan (see header
/// comment). Without stop_on_violation the certificate — witness,
/// tie-breaks, moves_checked — is bit-identical to SwapEngine::certify and
/// the bncg::naive certifiers (differential-tested in
/// tests/test_certify_sharded.cpp). `include_deletions` selects the max
/// model's deletion clause, exactly as in SwapEngine::certify. Requires
/// n < 65535; intended for the n ≥ 4096 tier above
/// kSwapEngineAutoMaxVertices, correct at any size.
[[nodiscard]] ShardedCertificate certify_sharded(const Graph& g, UsageCost model,
                                                 bool include_deletions = false,
                                                 const ShardedCertifyConfig& config = {});

}  // namespace bncg

// Specialized sum-game machinery for trees (Section 2.1).
//
// On a tree, a swap by agent v of edge va detaches the subtree T_a hanging
// off a and re-attaches it at the new neighbor; v's best response is to
// re-attach at the 1-median of T_a. Everything reduces to subtree distance
// sums, computable by the classic two-pass rerooting technique in O(n) —
// versus O(deg·n·m) per agent for the generic BFS engine. bench_ablation
// measures the gap; Theorem 1 (equilibrium trees are stars) emerges from
// these dynamics directly.
//
// The module also exposes the exact inequality pair from the Theorem 1
// proof (s_b + s_w ≤ s_a and s_v + s_a ≤ s_b along a diametral path), whose
// joint infeasibility is the paper's contradiction.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace bncg {

/// Distance sums Σ_u d(v, u) for every vertex of a tree; O(n) two-pass
/// rerooting. Precondition: g is a tree (checked).
[[nodiscard]] std::vector<std::uint64_t> tree_distance_sums(const Graph& tree);

/// 1-median: vertex minimizing the distance sum (lowest id on ties).
[[nodiscard]] Vertex tree_one_median(const Graph& tree);

/// A best tree swap for one agent.
struct TreeMove {
  Vertex v = 0;             ///< the swapping agent
  Vertex old_neighbor = 0;  ///< detached edge endpoint
  Vertex new_neighbor = 0;  ///< re-attachment point (1-median of the subtree)
  std::uint64_t gain = 0;   ///< strict decrease of v's distance sum
};

/// Reusable buffers for best_tree_deviation sweeps. The one-shot overload
/// pays ~8 size-n allocations per call, which dominates its O(n) arithmetic
/// on repeated certification sweeps; threading one scratch through a sweep
/// (as run_tree_dynamics and bench_engine_json do) amortizes them to zero.
/// A default-constructed scratch fits any tree — buffers grow on demand.
struct TreeGameScratch {
  std::vector<Vertex> order, parent, croot, median;
  std::vector<std::uint64_t> size, down, sums;
};

/// Best improving tree swap for agent v, or nullopt when v is stable.
/// Routed: a single-rooting O(n) rerooting sweep (all of v's detachable
/// subtrees share one rooted pass, no BFS, no induced subgraphs) unless
/// BNCG_FORCE_NAIVE routes to the oracle below. Identical moves, gains, and
/// tie-breaks (tests/test_tree_game_engine.cpp). Precondition: tree.
[[nodiscard]] std::optional<TreeMove> best_tree_deviation(const Graph& tree, Vertex v);

/// Scratch-reusing variant for sweeps over many agents or dynamics steps.
[[nodiscard]] std::optional<TreeMove> best_tree_deviation(const Graph& tree, Vertex v,
                                                          TreeGameScratch& scratch);

namespace naive {
/// The oracle: per-neighbor component BFS + induced subgraph + two-pass
/// sums — O(deg(v) · n) with allocation-heavy constants.
[[nodiscard]] std::optional<TreeMove> best_tree_deviation(const Graph& tree, Vertex v);
}  // namespace naive

/// Outcome of the specialized tree dynamics.
struct TreeDynamicsResult {
  Graph tree{0};
  std::uint64_t moves = 0;
  std::uint64_t passes = 0;
  bool converged = false;
};

/// Round-robin best-response dynamics using the O(n) tree engine. By
/// Theorem 1 the fixed points are exactly the stars; the result's graph has
/// diameter ≤ 2 whenever converged.
[[nodiscard]] TreeDynamicsResult run_tree_dynamics(Graph tree, std::uint64_t max_moves = 1'000'000);

/// The Theorem 1 proof object: for a tree of diameter ≥ 3 and a distance-3
/// pair v → a → b → w on a shortest path, the two subtree-size inequalities
/// cannot both hold, so one endpoint has a strictly improving swap.
struct Theorem1Witness {
  Vertex v = 0, a = 0, b = 0, w = 0;
  std::uint64_t sv = 0, sa = 0, sb = 0, sw = 0;  ///< subtree sizes as in Fig. 1
  bool v_swap_wins = false;                      ///< s_b + s_w > s_a
  bool w_swap_wins = false;                      ///< s_v + s_a > s_b
};

/// Builds the witness for any tree of diameter ≥ 3 (nullopt for diameter
/// ≤ 2). The paper's Theorem 1 asserts v_swap_wins || w_swap_wins.
[[nodiscard]] std::optional<Theorem1Witness> theorem1_witness(const Graph& tree);

}  // namespace bncg

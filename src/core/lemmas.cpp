#include "core/lemmas.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/equilibrium.hpp"
#include "core/swap_engine.hpp"
#include "graph/apsp.hpp"
#include "graph/connectivity.hpp"
#include "graph/metrics.hpp"
#include "graph/subgraph.hpp"

namespace bncg {

bool lemma2_balanced_eccentricities(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto ecc = eccentricities(g);
  const auto [lo, hi] = std::minmax_element(ecc.begin(), ecc.end());
  if (*hi == kInfDist) return false;  // disconnected
  return *hi - *lo <= 1;
}

bool lemma3_all_cut_vertices(const Graph& g) {
  for (const Vertex v : articulation_points(g)) {
    if (!lemma3_cut_vertex_property(g, v)) return false;
  }
  return true;
}

bool lemma6_diameter2_vertices_are_stable(const Graph& g) {
  const auto ecc = eccentricities(g);
  // One shared snapshot/scratch for the whole loop; the public per-agent
  // entry point would rebuild the engine per vertex.
  std::optional<SwapEngine> engine;
  if (swap_engine_enabled(g)) engine.emplace(g);
  BfsWorkspace ws;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (ecc[v] == kInfDist || ecc[v] > 2) continue;
    const auto dev = engine ? engine->first_deviation(v, UsageCost::Sum)
                            : naive::first_sum_deviation(g, v, ws);
    if (dev) return false;
  }
  return true;
}

bool lemma7_gain_bound(const Graph& g) {
  const DistanceMatrix dm(g);
  if (!dm.connected()) return true;  // vacuous
  const Vertex n = g.num_vertices();
  for (Vertex v = 0; v < n; ++v) {
    if (dm.eccentricity(v) != 3) continue;
    const auto dv = dm.row(v);
    for (Vertex w = 0; w < n; ++w) {
      if (w == v || g.has_edge(v, w)) continue;
      const Vertex r = dv[w];
      // Actual gain of adding edge vw.
      std::uint64_t gain = 0;
      const auto dw = dm.row(w);
      for (Vertex x = 0; x < n; ++x) {
        const Vertex via = static_cast<Vertex>(1 + dw[x]);
        if (via < dv[x]) gain += dv[x] - via;
      }
      // Lemma's bound: (r − 1) for w plus 1 per neighbor of w at distance 3.
      std::uint64_t bound = r - 1;
      for (const Vertex x : g.neighbors(w)) {
        if (dv[x] == 3) ++bound;
      }
      if (gain > bound) return false;
    }
  }
  return true;
}

bool lemma8_distance_penalty(const Graph& g) {
  BNCG_REQUIRE(girth(g) >= 4, "Lemma 8 requires girth >= 4");
  Graph work = g;
  BfsWorkspace ws;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::vector<Vertex> nbrs(g.neighbors(v).begin(), g.neighbors(v).end());
    for (const Vertex w : nbrs) {
      for (Vertex w2 = 0; w2 < g.num_vertices(); ++w2) {
        if (w2 == v || w2 == w || work.has_edge(v, w2)) continue;
        const bool w2_near_w = g.has_edge(w, w2);
        const ScopedSwap swap(work, {v, w, w2});
        const Vertex new_dist = distance(work, v, w, ws);
        // Old distance was 1; the lemma promises an increase of ≥ 2
        // (new ≥ 3), or ≥ 1 (new ≥ 2) when w2 ∈ N(w).
        const Vertex required = w2_near_w ? 2 : 3;
        if (new_dist < required) return false;
      }
    }
  }
  return true;
}

Lemma10Result lemma10_cheap_edge(const Graph& g, Vertex u) {
  g.check_vertex(u);
  Lemma10Result result;
  const Vertex n = g.num_vertices();
  if (n < 2) {
    result.diameter_branch = true;
    return result;
  }
  const double lg_n = std::log2(static_cast<double>(n));
  const Vertex diam = diameter(g);
  if (diam != kInfDist && static_cast<double>(diam) <= 2.0 * lg_n) {
    result.diameter_branch = true;
    return result;
  }

  BfsWorkspace ws;
  (void)bfs(g, u, ws);
  const std::vector<Vertex> dist_u = ws.dist();
  const double budget = 2.0 * n * (1.0 + lg_n);

  Graph work = g;
  std::optional<CheapEdge> best;
  for (const auto& [x, y] : g.edges()) {
    // Orient so the endpoint near u is x (the lemma requires d(u,x) ≤ lg n).
    for (const auto& [from, to] : {std::pair<Vertex, Vertex>{x, y}, {y, x}}) {
      if (static_cast<double>(dist_u[from]) > lg_n) continue;
      const std::uint64_t before = bfs(work, from, ws).dist_sum;
      work.remove_edge(from, to);
      const BfsResult after = bfs(work, from, ws);
      work.add_edge(from, to);
      if (!after.spans(n)) continue;  // bridge: infinite removal cost
      const std::uint64_t cost = after.dist_sum - before;
      if (static_cast<double>(cost) <= budget && (!best || cost < best->removal_cost)) {
        best = CheapEdge{from, to, cost};
      }
    }
  }
  result.cheap_edge = best;
  return result;
}

bool corollary11_insertion_gain_bound(const Graph& g) {
  const DistanceMatrix dm(g);
  if (!dm.connected()) return true;  // vacuous
  const Vertex n = g.num_vertices();
  if (n < 2) return true;
  const double cap = 5.0 * n * std::log2(static_cast<double>(n));
  for (Vertex u = 0; u < n; ++u) {
    const auto du = dm.row(u);
    for (Vertex v = 0; v < n; ++v) {
      if (u == v || g.has_edge(u, v)) continue;
      const auto dv = dm.row(v);
      std::uint64_t gain = 0;
      for (Vertex x = 0; x < n; ++x) {
        const Vertex via = static_cast<Vertex>(1 + dv[x]);
        if (via < du[x]) gain += du[x] - via;
      }
      if (static_cast<double>(gain) > cap) return false;
    }
  }
  return true;
}

}  // namespace bncg

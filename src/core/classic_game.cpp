#include "core/classic_game.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/swap.hpp"

namespace bncg {

namespace {
/// Finite stand-in for +∞ cost that still orders correctly under addition
/// of α terms.
constexpr double kHugeCost = 1e18;
}  // namespace

ClassicGame::ClassicGame(Graph g, double alpha) : graph_(std::move(g)), alpha_(alpha) {
  BNCG_REQUIRE(alpha >= 0.0, "alpha must be nonnegative");
  for (const auto& [u, v] : graph_.edges()) owner_[key(u, v)] = u;
}

ClassicGame::ClassicGame(Graph g, double alpha, const std::vector<Vertex>& owners)
    : graph_(std::move(g)), alpha_(alpha) {
  BNCG_REQUIRE(alpha >= 0.0, "alpha must be nonnegative");
  const auto edge_list = graph_.edges();
  BNCG_REQUIRE(owners.size() == edge_list.size(), "one owner per edge required");
  for (std::size_t i = 0; i < edge_list.size(); ++i) {
    const auto& [u, v] = edge_list[i];
    BNCG_REQUIRE(owners[i] == u || owners[i] == v, "owner must be an endpoint");
    owner_[key(u, v)] = owners[i];
  }
}

Vertex ClassicGame::owner(Vertex u, Vertex v) const {
  BNCG_REQUIRE(graph_.has_edge(u, v), "edge not present");
  return owner_.at(key(u, v));
}

Vertex ClassicGame::edges_bought(Vertex v) const {
  graph_.check_vertex(v);
  Vertex count = 0;
  for (const Vertex w : graph_.neighbors(v)) {
    if (owner_.at(key(v, w)) == v) ++count;
  }
  return count;
}

double ClassicGame::vertex_cost(Vertex v, BfsWorkspace& ws) const {
  const BfsResult r = bfs(graph_, v, ws);
  if (!r.spans(graph_.num_vertices())) return kHugeCost;
  return alpha_ * edges_bought(v) + static_cast<double>(r.dist_sum);
}

double ClassicGame::social_cost() const {
  BfsWorkspace ws;
  double total = alpha_ * static_cast<double>(graph_.num_edges());
  for (Vertex v = 0; v < graph_.num_vertices(); ++v) {
    const BfsResult r = bfs(graph_, v, ws);
    if (!r.spans(graph_.num_vertices())) return kHugeCost;
    total += static_cast<double>(r.dist_sum);
  }
  return total;
}

std::optional<ClassicMove> ClassicGame::best_deviation_naive(Vertex v, BfsWorkspace& ws) const {
  graph_.check_vertex(v);
  // Work on a scratch copy; moves are evaluated by direct mutation + BFS.
  Graph work = graph_;
  const Vertex n = work.num_vertices();
  const auto usage = [&](Vertex from) -> double {
    const BfsResult r = bfs(work, from, ws);
    return r.spans(n) ? static_cast<double>(r.dist_sum) : kHugeCost;
  };
  const double old_usage = usage(v);
  const double old_cost = alpha_ * edges_bought(v) + old_usage;

  std::optional<ClassicMove> best;
  const auto consider = [&](ClassicMove move, double new_cost) {
    // Strictness margin guards against floating-point ties when α is such
    // that a move is exactly neutral.
    const double gain = old_cost - new_cost;
    if (gain <= 1e-9) return;
    move.gain = gain;
    if (!best || move.gain > best->gain) best = move;
  };

  // Add moves: buy a new edge v–w.
  for (Vertex w = 0; w < n; ++w) {
    if (w == v || work.has_edge(v, w)) continue;
    work.add_edge(v, w);
    consider({ClassicMove::Type::Add, v, w, 0, 0.0},
             alpha_ * (edges_bought(v) + 1) + usage(v));
    work.remove_edge(v, w);
  }

  // Delete and swap moves apply to edges *owned* by v only.
  const std::vector<Vertex> nbrs(work.neighbors(v).begin(), work.neighbors(v).end());
  for (const Vertex w : nbrs) {
    if (owner_.at(key(v, w)) != v) continue;
    // Delete v–w.
    work.remove_edge(v, w);
    consider({ClassicMove::Type::Delete, v, w, 0, 0.0},
             alpha_ * (edges_bought(v) - 1) + usage(v));
    // Swap v–w → v–w2 (same α term).
    for (Vertex w2 = 0; w2 < n; ++w2) {
      if (w2 == v || w2 == w || work.has_edge(v, w2)) continue;
      work.add_edge(v, w2);
      consider({ClassicMove::Type::Swap, v, w, w2, 0.0},
               alpha_ * edges_bought(v) + usage(v));
      work.remove_edge(v, w2);
    }
    work.add_edge(v, w);
  }
  return best;
}

std::optional<ClassicMove> ClassicGame::best_deviation_engine(const SwapEngine& engine,
                                                              SwapEngine::Scratch& scratch,
                                                              Vertex v) const {
  graph_.check_vertex(v);
  const Vertex n = graph_.num_vertices();
  std::vector<std::uint8_t> owned(n, 0);
  for (const Vertex w : graph_.neighbors(v)) {
    owned[w] = owner_.at(key(v, w)) == v ? 1 : 0;
  }
  // The engine hands back pure-integer usages in the naive enumeration
  // order; the α arithmetic below is character-for-character the naive
  // path's double pipeline, so gains and tie-breaks match bit for bit.
  const auto& candidates = engine.alpha_scan(v, owned, scratch);
  const auto as_usage = [](std::uint64_t usage) {
    return usage == kInfCost ? kHugeCost : static_cast<double>(usage);
  };
  const double old_usage = as_usage(engine.agent_cost(v, UsageCost::Sum, scratch));
  const double old_cost = alpha_ * edges_bought(v) + old_usage;

  std::optional<ClassicMove> best;
  const auto consider = [&](ClassicMove move, double new_cost) {
    const double gain = old_cost - new_cost;
    if (gain <= 1e-9) return;
    move.gain = gain;
    if (!best || move.gain > best->gain) best = move;
  };
  for (const AlphaCandidate& c : candidates) {
    switch (c.kind) {
      case AlphaCandidate::Kind::Add:
        consider({ClassicMove::Type::Add, v, c.w, 0, 0.0},
                 alpha_ * (edges_bought(v) + 1) + as_usage(c.usage));
        break;
      case AlphaCandidate::Kind::Delete:
        consider({ClassicMove::Type::Delete, v, c.w, 0, 0.0},
                 alpha_ * (edges_bought(v) - 1) + as_usage(c.usage));
        break;
      case AlphaCandidate::Kind::Swap:
        consider({ClassicMove::Type::Swap, v, c.w, c.w2, 0.0},
                 alpha_ * edges_bought(v) + as_usage(c.usage));
        break;
    }
  }
  return best;
}

std::optional<ClassicMove> ClassicGame::best_deviation(Vertex v, BfsWorkspace& ws) const {
  if (!swap_engine_enabled(graph_)) return best_deviation_naive(v, ws);
  SwapEngine engine(graph_);
  SwapEngine::Scratch scratch;
  return best_deviation_engine(engine, scratch, v);
}

AlphaInterval ClassicGame::alpha_equilibrium_interval_naive() const {
  AlphaInterval interval;
  BfsWorkspace ws;
  Graph work = graph_;
  const Vertex n = work.num_vertices();
  const auto usage = [&](Vertex from) -> double {
    const BfsResult r = bfs(work, from, ws);
    return r.spans(n) ? static_cast<double>(r.dist_sum) : kHugeCost;
  };
  for (Vertex v = 0; v < n; ++v) {
    const double old_usage = usage(v);
    // Same enumeration as best_deviation_naive; only the α-free usage
    // differences are harvested (add: α must cover the usage drop; delete:
    // α must not exceed the usage rise; swap: improves independent of α).
    for (Vertex w = 0; w < n; ++w) {
      if (w == v || work.has_edge(v, w)) continue;
      work.add_edge(v, w);
      interval.lo = std::max(interval.lo, old_usage - usage(v));
      work.remove_edge(v, w);
    }
    const std::vector<Vertex> nbrs(work.neighbors(v).begin(), work.neighbors(v).end());
    for (const Vertex w : nbrs) {
      if (owner_.at(key(v, w)) != v) continue;
      work.remove_edge(v, w);
      interval.hi = std::min(interval.hi, usage(v) - old_usage);
      for (Vertex w2 = 0; w2 < n; ++w2) {
        if (w2 == v || w2 == w || work.has_edge(v, w2)) continue;
        work.add_edge(v, w2);
        if (old_usage - usage(v) > 1e-9) interval.swap_blocked = true;
        work.remove_edge(v, w2);
      }
      work.add_edge(v, w);
    }
  }
  return interval;
}

AlphaInterval ClassicGame::alpha_equilibrium_interval() const {
  if (!swap_engine_enabled(graph_)) return alpha_equilibrium_interval_naive();
  AlphaInterval interval;
  const SwapEngine engine(graph_);
  SwapEngine::Scratch scratch;
  const Vertex n = graph_.num_vertices();
  const auto as_usage = [](std::uint64_t usage) {
    return usage == kInfCost ? kHugeCost : static_cast<double>(usage);
  };
  std::vector<std::uint8_t> owned(n, 0);
  for (Vertex v = 0; v < n; ++v) {
    std::fill(owned.begin(), owned.end(), 0);
    for (const Vertex w : graph_.neighbors(v)) {
      owned[w] = owner_.at(key(v, w)) == v ? 1 : 0;
    }
    const double old_usage = as_usage(engine.agent_cost(v, UsageCost::Sum, scratch));
    for (const AlphaCandidate& c : engine.alpha_scan(v, owned, scratch)) {
      switch (c.kind) {
        case AlphaCandidate::Kind::Add:
          interval.lo = std::max(interval.lo, old_usage - as_usage(c.usage));
          break;
        case AlphaCandidate::Kind::Delete:
          interval.hi = std::min(interval.hi, as_usage(c.usage) - old_usage);
          break;
        case AlphaCandidate::Kind::Swap:
          if (old_usage - as_usage(c.usage) > 1e-9) interval.swap_blocked = true;
          break;
      }
    }
  }
  return interval;
}

void ClassicGame::apply(const ClassicMove& move) {
  switch (move.type) {
    case ClassicMove::Type::Add:
      graph_.add_edge(move.v, move.w);
      owner_[key(move.v, move.w)] = move.v;
      break;
    case ClassicMove::Type::Delete:
      BNCG_REQUIRE(owner(move.v, move.w) == move.v, "agent can only delete owned edges");
      graph_.remove_edge(move.v, move.w);
      owner_.erase(key(move.v, move.w));
      break;
    case ClassicMove::Type::Swap:
      BNCG_REQUIRE(owner(move.v, move.w) == move.v, "agent can only swap owned edges");
      graph_.remove_edge(move.v, move.w);
      owner_.erase(key(move.v, move.w));
      graph_.add_edge(move.v, move.w2);
      owner_[key(move.v, move.w2)] = move.v;
      break;
  }
}

bool ClassicGame::is_greedy_equilibrium() const {
  if (!swap_engine_enabled(graph_)) {
    BfsWorkspace ws;
    for (Vertex v = 0; v < graph_.num_vertices(); ++v) {
      if (best_deviation_naive(v, ws)) return false;
    }
    return true;
  }
  // One snapshot serves every agent — the graph is const here.
  const SwapEngine engine(graph_);
  SwapEngine::Scratch scratch;
  for (Vertex v = 0; v < graph_.num_vertices(); ++v) {
    if (best_deviation_engine(engine, scratch, v)) return false;
  }
  return true;
}

ClassicGame::RunResult ClassicGame::run_best_response(std::uint64_t max_moves) {
  RunResult result;
  BfsWorkspace ws;
  const Vertex n = graph_.num_vertices();
  const bool engine_path = swap_engine_enabled(graph_);
  std::optional<SwapEngine> engine;
  SwapEngine::Scratch scratch;
  if (engine_path) engine.emplace(graph_);
  for (;;) {
    bool any_move = false;
    for (Vertex v = 0; v < n; ++v) {
      if (result.moves >= max_moves) break;
      const auto move =
          engine_path ? best_deviation_engine(*engine, scratch, v) : best_deviation_naive(v, ws);
      if (!move) continue;
      apply(*move);
      if (engine_path) engine->rebuild(graph_);  // snapshots are immutable
      ++result.moves;
      any_move = true;
    }
    ++result.passes;
    if (!any_move) {
      result.converged = true;
      break;
    }
    if (result.moves >= max_moves) break;
  }
  return result;
}

double star_social_cost(Vertex n, double alpha) {
  if (n <= 1) return 0.0;
  // Center: n−1 at distance 1. Leaf: 1 + 2(n−2). Total usage = 2(n−1)².
  const double nn = static_cast<double>(n);
  return alpha * (nn - 1) + 2.0 * (nn - 1) * (nn - 1);
}

double clique_social_cost(Vertex n, double alpha) {
  if (n <= 1) return 0.0;
  const double nn = static_cast<double>(n);
  return alpha * nn * (nn - 1) / 2.0 + nn * (nn - 1);
}

double optimal_social_cost(Vertex n, double alpha) {
  return std::min(star_social_cost(n, alpha), clique_social_cost(n, alpha));
}

}  // namespace bncg

// Delta-evaluation swap engine — the hot path of the whole system.
//
// Certifying a swap equilibrium means evaluating every candidate swap
// (v, w → w₂) of every agent; the naive path pays one full BFS per
// candidate, i.e. Θ(deg(v)·n) traversals per agent. The engine replaces
// that with per-*removed-edge* work plus a linear algebraic combine per
// candidate, built on three ideas (proofs and measurements in DESIGN.md):
//
//  1. CSR snapshots. The adjacency is frozen into a CsrGraph once per
//     *accepted* move (rebuild()); tentative moves never mutate anything.
//  2. Source-removal identity. Every move of agent v only edits edges
//     incident to v, and every post-move path from v starts with one of
//     them, so for any new neighborhood N' of v:
//       d'(v,u) = 1 + min_{z ∈ N'} d_{G−v}(z, u)        (u ≠ v).
//     One (batched, bit-parallel) APSP of the *vertex-masked* snapshot G−v
//     therefore answers every (removed edge w, candidate w₂) pair of the
//     agent. With c_z = d_{G−v}(z,·) and M^w_u = min_{z ∈ N(v)∖{w}} c_{z,u}
//     (built in O(n) per w from elementwise min/argmin/second-min over the
//     neighbor rows):
//       sum model: cost'(v) = (n−1) + Σ_u min(M^w_u, c_{w₂,u}),
//       max model: cost'(v) = 1 + max_u min(M^w_u, c_{w₂,u}),
//     an O(n) vectorizable combine per candidate — no per-candidate BFS,
//     and no per-removed-edge traversal either. Deleting vw falls out for
//     free: its post-move profile is 1 + M^w.
//  3. Far-set filtering (max model). cost'(v) < ecc(v) requires
//     c_{w₂,u} ≤ ecc(v) − 2 on the far set {u : M^w_u > ecc(v) − 2}, which
//     is typically tiny — candidates are rejected after |far| comparisons
//     and the exact combine runs only for actual improvers.
//
// The scan kernels are templated on the distance storage width
// (graph/dist_width.hpp): on small-diameter instances the per-agent masked
// matrix and all combine rows shrink to u8 (capped infinity kSearchInf8),
// halving the combine's memory traffic — DESIGN.md §10. Width is a pure
// storage choice: any agent whose masked sweep meets a distance the narrow
// cap cannot represent is transparently redone at u16 (width_fallbacks()),
// so results never depend on the width.
//
// Scans enumerate candidates in exactly the naive order and apply exactly
// the naive acceptance rules, so engine results are bit-identical to the
// brute-force oracle (differential-tested on hundreds of random instances —
// across widths too, see tests/test_width_fuzz.cpp; set BNCG_FORCE_NAIVE=1
// to route the public certifier API back to the oracle).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <vector>

#include "core/dist_provider.hpp"
#include "core/equilibrium.hpp"
#include "core/kstability.hpp"
#include "core/usage_cost.hpp"
#include "graph/bfs_batch.hpp"
#include "graph/csr.hpp"
#include "graph/dist_width.hpp"
#include "graph/graph.hpp"
#include "util/simd.hpp"

namespace bncg {

/// Largest n for which the public entry points auto-select the engine. The
/// per-thread Scratch holds an n×n matrix (16 MB at this cap in u8, twice
/// that in u16), so unbounded auto-enablement would trade the naive path's
/// O(n) memory for multi-gigabyte allocations long before the 16-bit
/// encoding limit. Callers that accept the memory bill can always construct
/// a SwapEngine directly (hard limit: n < 65535); core/certify_sharded.hpp
/// is the packaged way to do that for large-n certification.
inline constexpr Vertex kSwapEngineAutoMaxVertices = 4096;

/// True iff BNCG_FORCE_NAIVE is set (read once per process): every
/// accelerated tier — SwapEngine and SearchState alike — must consult this
/// one helper so the env var toggles them together.
[[nodiscard]] bool force_naive_requested();

/// True when the engine should back the public certifier entry points:
/// n within the auto-enable cap and BNCG_FORCE_NAIVE is not set.
[[nodiscard]] bool swap_engine_enabled(const Graph& g);

/// One α-game usage evaluation from SwapEngine::alpha_scan, emitted in
/// exactly the order ClassicGame's naive scan enumerates moves (adds by
/// ascending endpoint, then per owned neighbor: the deletion, then swaps by
/// ascending target). `usage` is the post-move Σ_u d'(v,u) — kInfCost when
/// the move disconnects v. The α-dependent cost and gain arithmetic stays in
/// ClassicGame so both paths share one double-precision pipeline and the
/// engine remains pure integer.
struct AlphaCandidate {
  enum class Kind : std::uint8_t { Add, Delete, Swap };
  Kind kind = Kind::Add;
  Vertex w = 0;   ///< added endpoint (Add) or removed neighbor (Delete/Swap)
  Vertex w2 = 0;  ///< swap target (Swap only)
  std::uint64_t usage = 0;
};

/// Delta-evaluating swap scanner over an immutable CSR snapshot.
class SwapEngine {
 public:
  /// Per-thread scratch: the masked-APSP matrix (n×n, in the width the scan
  /// runs at), the batched BFS workspace, and small per-agent marks.
  /// Allocated once, reused for every scan; one instance per thread. Only
  /// the width actually exercised allocates its matrix, so u8-preferring
  /// engines that never fall back pay no u16 slab.
  class Scratch {
   public:
    friend class SwapEngine;

    /// Budgeted-mode row providers of this scratch (dense scans leave them
    /// idle) — residency/stat introspection for benches and the
    /// prune-soundness suite.
    [[nodiscard]] const DistanceProvider<std::uint8_t>& provider8() const noexcept {
      return rows8_.provider;
    }
    [[nodiscard]] const DistanceProvider<std::uint16_t>& provider16() const noexcept {
      return rows16_.provider;
    }
    /// Combined row-cache counters of both widths (all-zero while every
    /// scan ran dense).
    [[nodiscard]] RowCacheStats row_cache_stats() const;

   private:
    /// Width-typed row buffers of one scan. 64-byte-aligned storage: these
    /// are exactly the arrays the SIMD scan kernels stream over.
    template <typename Dist>
    struct Rows {
      AlignedVec<Dist> apsp;  // all rows of G − v (dense mode)
      AlignedVec<Dist> min1;  // elementwise min over neighbor rows
      AlignedVec<Dist> min2;  // elementwise second min
      AlignedVec<Dist> mrow;  // M^w: min over N(v)∖{w}
      AlignedVec<Dist> arow;  // pinned add-profile / k-way min-fold target
      DistanceProvider<Dist> provider;  // dense slab or budgeted row cache
    };
    template <typename Dist>
    [[nodiscard]] Rows<Dist>& rows() noexcept {
      if constexpr (std::is_same_v<Dist, std::uint8_t>) {
        return rows8_;
      } else {
        return rows16_;
      }
    }

    BatchBfsWorkspace bfs_;
    std::vector<std::uint16_t> base_;   // d_G(v, ·) of the scanned agent
    std::vector<std::uint8_t> is_nbr_;  // closed neighborhood marks of v
    AlignedVec<Vertex> argmin_;         // neighbor attaining min1
    AlignedVec<Vertex> far_;            // far set of the removed edge (n slots)
    AlignedVec<Vertex> hits_;           // collect_below output (cover masks)
    std::vector<std::uint64_t> masks_;  // flat per-candidate coverage bitsets
    std::vector<AlphaCandidate> alpha_;  // buffered α-scan candidates
    std::vector<Vertex> survivors_;      // streamed far-filter survivor list
    std::vector<Vertex> survivors_next_;
    Rows<std::uint8_t> rows8_;
    Rows<std::uint16_t> rows16_;
  };

  /// Snapshots `g`. The width policy governs which storage width scans
  /// *prefer* (graph/dist_width.hpp); results are width-independent.
  /// Unlimited-memory construction: per-scan storage is the dense n×n
  /// matrix whenever n < 65535 (the historical behavior, requiring that
  /// bound); larger instances automatically run budgeted scans.
  explicit SwapEngine(const Graph& g, WidthPolicy width = WidthPolicy::Auto) {
    rebuild(g, width);
  }

  /// Budget-aware construction (core/dist_provider.hpp): scan widths follow
  /// resources.width, and any width whose dense n×n slab would exceed the
  /// per-lane share of resources.mem_budget runs BUDGETED — distance rows
  /// materialize on demand in the blocked row cache instead of up front.
  /// Both modes are exact; the budget changes memory, never results.
  SwapEngine(const Graph& g, const ResourceConfig& resources) { rebuild(g, resources); }

  /// Re-snapshots after an accepted move (storage reused, width preference
  /// re-probed under the current policy).
  void rebuild(const Graph& g);

  /// Re-snapshots and changes the width policy.
  void rebuild(const Graph& g, WidthPolicy width);

  /// Re-snapshots and changes the resource configuration.
  void rebuild(const Graph& g, const ResourceConfig& resources);

  [[nodiscard]] const ResourceConfig& resources() const noexcept { return resources_; }
  /// The resolved width/storage decisions scans run under.
  [[nodiscard]] const WidthAndBudgetPolicy& budget_policy() const noexcept {
    return budget_policy_;
  }

  [[nodiscard]] const CsrGraph& snapshot() const noexcept { return csr_; }

  /// Width scans start in: U8 when the policy and the probed diameter bound
  /// allow it, else U16.
  [[nodiscard]] DistWidth preferred_width() const noexcept {
    return prefer_u8_ ? DistWidth::U8 : DistWidth::U16;
  }

  /// Number of agent scans (since the last rebuild) whose masked sweep
  /// saturated the u8 cap and were redone at u16.
  [[nodiscard]] std::uint64_t width_fallbacks() const noexcept {
    return width_fallbacks_.load(std::memory_order_relaxed);
  }

  /// Usage cost of agent `v` on the snapshot (kInfCost when disconnected).
  [[nodiscard]] std::uint64_t agent_cost(Vertex v, UsageCost model, Scratch& scratch) const;

  /// Best improving deviation of agent `v` (max model scans swaps only;
  /// pass include_deletions for the deletion clause). Identical results and
  /// move counts to the naive per-candidate-BFS scan.
  [[nodiscard]] std::optional<Deviation> best_deviation(
      Vertex v, UsageCost model, Scratch& scratch, bool include_deletions = false,
      std::uint64_t* moves_checked = nullptr) const;

  /// First improving deviation of agent `v` in scan order.
  [[nodiscard]] std::optional<Deviation> first_deviation(
      Vertex v, UsageCost model, Scratch& scratch, bool include_deletions = false,
      std::uint64_t* moves_checked = nullptr) const;

  /// Exhaustive certificate over all agents (sum: swap stability; max: swap
  /// stability plus the strict-deletion clause when include_deletions).
  /// Parallel over agents on the process thread pool, one Scratch per lane;
  /// per-agent results fold serially so witnesses are thread-count-invariant.
  [[nodiscard]] EquilibriumCertificate certify(UsageCost model, bool include_deletions) const;

  /// Convenience overloads owning a scratch (single-threaded callers).
  [[nodiscard]] std::optional<Deviation> best_deviation(Vertex v, UsageCost model,
                                                        bool include_deletions = false);
  [[nodiscard]] std::optional<Deviation> first_deviation(Vertex v, UsageCost model,
                                                         bool include_deletions = false);

  // ------------------------------------------------ k-move deviation paths
  //
  // The k-insertion identity d'(v,x) = min(d(v,x), 1 + min_i d(w_i,x)) makes
  // the "does some ≤ k-insertion lower ecc(v)" question a set-cover instance
  // whose candidate masks the engine scores directly from rows it already
  // holds (collect_below over the symmetric APSP rows — DESIGN.md §14); the
  // k-swap variant folds kept-neighbor rows of the one masked APSP of G − v
  // with the k-way min-fold kernel, since (G − D) − v = G − v for every
  // deletion subset D at v. All results — verdicts AND witnesses — are
  // byte-identical to the bncg::naive oracles in core/kstability.

  /// Engine form of naive::insertion_stability_at (one agent, budget k).
  [[nodiscard]] KStabilityReport insertion_stability_at(Vertex v, Vertex k, Scratch& scratch) const;

  /// Engine form of naive::insertion_stability: one shared batched APSP,
  /// per-agent cover instances in parallel, serial fold (+ a monotone
  /// first-unstable cutoff) so the witness is the earliest unstable agent at
  /// every thread count — exactly the naive sequential sweep's answer.
  [[nodiscard]] KStabilityReport insertion_stability(Vertex k) const;

  /// Engine form of naive::max_tolerated_insertions: the cover instance is
  /// budget-independent, so it is built once and re-solved per k.
  [[nodiscard]] Vertex max_tolerated_insertions(Vertex v, Vertex k_max, Scratch& scratch) const;

  /// Engine form of naive::swap_stability_at. Requires deg(v) < 32 (the
  /// subset enumeration is a 32-bit mask, as in the oracle).
  [[nodiscard]] KStabilityReport swap_stability_at(Vertex v, Vertex k, Scratch& scratch) const;

  /// α-game usage sweep for agent v: every add/delete/swap usage from one
  /// masked APSP, in the naive ClassicGame enumeration order. `owned[w]`
  /// must say whether edge v–w is bought by v (deletes/swaps enumerate owned
  /// neighbors only). The returned reference aliases `scratch`.
  [[nodiscard]] const std::vector<AlphaCandidate>& alpha_scan(
      Vertex v, const std::vector<std::uint8_t>& owned, Scratch& scratch) const;

 private:
  std::optional<Deviation> scan_agent(Vertex v, UsageCost model, bool stop_at_first,
                                      bool include_deletions, std::uint64_t* moves_checked,
                                      Scratch& scratch) const;

  /// Width-typed dense scan body. Returns false — with `out` and the move
  /// count untouched by the caller — when the masked sweep saturates the
  /// width (only possible for u8); the dispatcher then redoes the agent at
  /// u16.
  template <typename Dist>
  [[nodiscard]] bool scan_agent_t(Vertex v, UsageCost model, bool stop_at_first,
                                  bool include_deletions, std::uint64_t* moves_checked,
                                  Scratch& scratch, std::optional<Deviation>& out) const;

  /// Width-typed BUDGETED scan body: same enumeration order, acceptance
  /// rules, move counts, and results as scan_agent_t, but rows stream
  /// through the DistanceProvider's row cache under the per-lane byte
  /// budget instead of a dense n×n slab — the agent's current cost derives
  /// from the neighbor min-fold (source-removal identity at N' = N(v)), the
  /// max model streams its far filter over far-vertex rows (fetched lazily,
  /// by symmetry d(f, w₂) = d(w₂, f)) so candidate rows are materialized
  /// only for proven improvers, and the sum model prunes candidates whose
  /// triangle-inequality lower bound (Σ M^w − n·M^w_{w₂}) already meets the
  /// old cost. False on width saturation (u8: dispatcher widens; u16: the
  /// instance exceeds the 16-bit encoding and the dispatcher fails loudly).
  template <typename Dist>
  [[nodiscard]] bool scan_agent_budgeted_t(Vertex v, UsageCost model, bool stop_at_first,
                                           bool include_deletions, std::uint64_t* moves_checked,
                                           Scratch& scratch, std::optional<Deviation>& out) const;

  /// Unmasked capped APSP of the snapshot into scratch (shared by the
  /// insertion paths, which need full-graph rows). False on u8 saturation.
  template <typename Dist>
  [[nodiscard]] bool full_apsp_t(Scratch& scratch) const;

  /// Far set + dedup'd coverage sets of agent v over symmetric full-graph
  /// rows, then cover_select at each budget in [k_lo, k_hi]; fills `out`
  /// with the verdict at the first coverable budget (stable otherwise) and,
  /// when `tolerated` is non-null, the max_tolerated_insertions answer.
  template <typename Dist>
  void insertion_report_t(const Dist* apsp, Vertex v, Vertex k_lo, Vertex k_hi, Scratch& scratch,
                          KStabilityReport& out, Vertex* tolerated) const;

  template <typename Dist>
  [[nodiscard]] KStabilityReport insertion_sweep_t(const Dist* apsp, Vertex k) const;

  template <typename Dist>
  [[nodiscard]] bool swap_stability_t(Vertex v, Vertex k, std::uint64_t old_ecc, Scratch& scratch,
                                      KStabilityReport& out) const;

  template <typename Dist>
  [[nodiscard]] bool alpha_scan_t(Vertex v, const std::vector<std::uint8_t>& owned,
                                  Scratch& scratch) const;

  CsrGraph csr_;
  ResourceConfig resources_;
  WidthAndBudgetPolicy budget_policy_;
  bool prefer_u8_ = false;
  /// Shared across the const certify() path's threads; relaxed is enough
  /// for a monotone counter.
  mutable std::atomic<std::uint64_t> width_fallbacks_{0};
  Scratch scratch_;  // for the convenience overloads
};

}  // namespace bncg

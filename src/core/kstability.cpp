#include "core/kstability.hpp"

#include <algorithm>
#include <map>

#include "core/swap_engine.hpp"

namespace bncg {

namespace {

constexpr std::size_t words_for(Vertex bits) { return (static_cast<std::size_t>(bits) + 63) / 64; }

bool get_bit(const std::vector<std::uint64_t>& mask, Vertex i) {
  return (mask[i / 64] >> (i % 64)) & 1;
}

void set_bit(std::vector<std::uint64_t>& mask, Vertex i) { mask[i / 64] |= std::uint64_t{1} << (i % 64); }

/// Branch-and-bound exact cover search. Returns true when `remaining` more
/// sets suffice to cover everything not yet in `covered`; appends the chosen
/// candidate indices to `selection`.
bool cover_search(Vertex universe, const std::vector<std::vector<std::uint64_t>>& sets,
                  std::vector<std::uint64_t>& covered, Vertex remaining,
                  std::vector<std::size_t>& selection) {
  // Most-constrained-element branching: find the uncovered element with the
  // fewest covering candidates.
  Vertex best_element = universe;
  std::size_t best_count = sets.size() + 1;
  for (Vertex e = 0; e < universe; ++e) {
    if (get_bit(covered, e)) continue;
    std::size_t count = 0;
    for (const auto& s : sets) {
      if (get_bit(s, e)) ++count;
    }
    if (count < best_count) {
      best_count = count;
      best_element = e;
      if (count == 0) return false;  // uncoverable element
    }
  }
  if (best_element == universe) return true;  // everything covered
  if (remaining == 0) return false;

  // Try candidates covering the chosen element, largest coverage first.
  std::vector<std::size_t> order;
  for (std::size_t c = 0; c < sets.size(); ++c) {
    if (get_bit(sets[c], best_element)) order.push_back(c);
  }
  const auto popcount = [&](std::size_t c) {
    std::uint64_t total = 0;
    for (std::size_t w = 0; w < sets[c].size(); ++w) {
      total += static_cast<std::uint64_t>(__builtin_popcountll(sets[c][w] & ~covered[w]));
    }
    return total;
  };
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return popcount(a) > popcount(b); });

  for (const std::size_t c : order) {
    std::vector<std::uint64_t> saved = covered;
    for (std::size_t w = 0; w < covered.size(); ++w) covered[w] |= sets[c][w];
    selection.push_back(c);
    if (cover_search(universe, sets, covered, remaining - 1, selection)) return true;
    selection.pop_back();
    covered = std::move(saved);
  }
  return false;
}

}  // namespace

std::optional<std::vector<std::size_t>> cover_select(
    Vertex universe, const std::vector<std::vector<std::uint64_t>>& sets, Vertex budget) {
  std::vector<std::uint64_t> covered(words_for(universe), 0);
  std::vector<std::size_t> selection;
  if (!cover_search(universe, sets, covered, budget, selection)) return std::nullopt;
  return selection;
}

std::optional<Vertex> min_cover_size(Vertex universe,
                                     const std::vector<std::vector<std::uint64_t>>& candidates,
                                     Vertex depth_cap) {
  if (universe == 0) return 0;
  for (Vertex k = 1; k <= depth_cap; ++k) {
    std::vector<std::uint64_t> covered(words_for(universe), 0);
    std::vector<std::size_t> selection;
    if (cover_search(universe, candidates, covered, k, selection)) {
      return static_cast<Vertex>(selection.size());
    }
  }
  return std::nullopt;
}

KStabilityReport insertion_stability_at(const DistanceMatrix& dm, Vertex v, Vertex k) {
  BNCG_REQUIRE(dm.connected(), "k-stability analysis requires a connected graph");
  BNCG_REQUIRE(v < dm.size(), "vertex id out of range");
  KStabilityReport report;
  report.witness_vertex = v;
  const Vertex n = dm.size();
  const auto dv = dm.row(v);
  const Vertex ecc = dm.eccentricity(v);
  if (ecc <= 1 || k == 0) return report;  // adjacent to everyone, or no moves

  // Far sphere F and its index mapping.
  std::vector<Vertex> far;
  for (Vertex x = 0; x < n; ++x) {
    if (dv[x] == ecc) far.push_back(x);
  }
  const Vertex universe = static_cast<Vertex>(far.size());
  const std::size_t words = words_for(universe);

  // Candidate coverage masks. Neighbors of v and v itself end up with empty
  // coverage automatically (see header) and are dropped. Identical masks are
  // deduplicated keeping one representative label.
  std::vector<std::vector<std::uint64_t>> sets;
  std::vector<Vertex> labels;
  std::map<std::vector<std::uint64_t>, bool> seen;
  for (Vertex w = 0; w < n; ++w) {
    if (w == v) continue;
    const auto dw = dm.row(w);
    std::vector<std::uint64_t> mask(words, 0);
    bool nonempty = false;
    for (Vertex idx = 0; idx < universe; ++idx) {
      if (dw[far[idx]] + 2 <= ecc) {
        set_bit(mask, idx);
        nonempty = true;
      }
    }
    if (!nonempty) continue;
    if (auto [it, inserted] = seen.emplace(mask, true); !inserted) continue;
    sets.push_back(std::move(mask));
    labels.push_back(w);
  }

  std::vector<std::uint64_t> covered(words, 0);
  std::vector<std::size_t> selection;
  if (cover_search(universe, sets, covered, k, selection)) {
    report.stable = false;
    for (const std::size_t c : selection) report.witness_endpoints.push_back(labels[c]);
  }
  return report;
}

Vertex max_tolerated_insertions(const DistanceMatrix& dm, Vertex v, Vertex k_max) {
  for (Vertex k = 1; k <= k_max; ++k) {
    if (!insertion_stability_at(dm, v, k).stable) return k - 1;
  }
  return k_max;
}

// ------------------------------------------------------------ naive oracles
//
// The original full-recompute decision procedures, now the BNCG_FORCE_NAIVE
// tier: each call pays fresh all-pairs BFS (one DistanceMatrix per decision;
// one per deletion subset for swaps). The engine paths below must reproduce
// these byte for byte — same far-set order, same mask conditions, same
// dedup, same cover_search — so verdicts AND witnesses agree.

namespace naive {

KStabilityReport insertion_stability_at(const Graph& g, Vertex v, Vertex k) {
  const DistanceMatrix dm(g);
  return bncg::insertion_stability_at(dm, v, k);
}

KStabilityReport insertion_stability(const Graph& g, Vertex k) {
  const DistanceMatrix dm(g);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    KStabilityReport report = bncg::insertion_stability_at(dm, v, k);
    if (!report.stable) return report;
  }
  return {};
}

Vertex max_tolerated_insertions(const Graph& g, Vertex v, Vertex k_max) {
  const DistanceMatrix dm(g);
  return bncg::max_tolerated_insertions(dm, v, k_max);
}

KStabilityReport swap_stability_at(const Graph& g, Vertex v, Vertex k) {
  g.check_vertex(v);
  BNCG_REQUIRE(is_connected(g), "swap-stability analysis requires a connected graph");
  KStabilityReport report;
  report.witness_vertex = v;
  const Vertex n = g.num_vertices();
  const Vertex old_ecc = eccentricity(g, v);
  if (old_ecc <= 1 || k == 0) return report;

  const std::vector<Vertex> nbrs(g.neighbors(v).begin(), g.neighbors(v).end());
  const Vertex deg = static_cast<Vertex>(nbrs.size());
  const Vertex j_max = std::min<Vertex>(k, deg);

  // Enumerate deletion subsets D (|D| = j) by bitmask over v's neighbors.
  Graph work = g;
  for (Vertex j = 1; j <= j_max; ++j) {
    for (std::uint32_t mask = 0; mask < (1u << deg); ++mask) {
      if (static_cast<Vertex>(__builtin_popcount(mask)) != j) continue;
      std::vector<Vertex> deleted;
      for (Vertex i = 0; i < deg; ++i) {
        if (mask & (1u << i)) {
          deleted.push_back(nbrs[i]);
          work.remove_edge(v, nbrs[i]);
        }
      }
      // Distances in H = G − D; the j inserted edges then act like pure
      // insertions in H, so the decision is again exact set cover: the far
      // set is everything at distance ≥ old_ecc from v in H (deletions may
      // have pushed vertices out, including to ∞).
      const DistanceMatrix dm(work);
      const auto dv = dm.row(v);
      std::vector<Vertex> far;
      for (Vertex x = 0; x < n; ++x) {
        if (dv[x] >= old_ecc) far.push_back(x);  // kInfDist included
      }
      const Vertex universe = static_cast<Vertex>(far.size());
      const std::size_t words = (static_cast<std::size_t>(universe) + 63) / 64;
      std::vector<std::vector<std::uint64_t>> sets;
      std::vector<Vertex> labels;
      for (Vertex w = 0; w < n; ++w) {
        if (w == v) continue;
        const auto dw = dm.row(w);
        std::vector<std::uint64_t> cover_mask(words, 0);
        bool nonempty = false;
        for (Vertex idx = 0; idx < universe; ++idx) {
          if (dw[far[idx]] != kInfDist && dw[far[idx]] + 2 <= old_ecc) {
            cover_mask[idx / 64] |= std::uint64_t{1} << (idx % 64);
            nonempty = true;
          }
        }
        if (!nonempty) continue;
        sets.push_back(std::move(cover_mask));
        labels.push_back(w);
      }
      std::vector<std::uint64_t> covered(words, 0);
      std::vector<std::size_t> selection;
      const bool coverable = cover_search(universe, sets, covered, j, selection);
      for (const Vertex w : deleted) work.add_edge(v, w);
      if (coverable) {
        report.stable = false;
        report.witness_deletions = deleted;
        for (const std::size_t c : selection) report.witness_endpoints.push_back(labels[c]);
        return report;
      }
    }
  }
  return report;
}

}  // namespace naive

// ------------------------------------------------------- routed entry points

KStabilityReport insertion_stability_at(const Graph& g, Vertex v, Vertex k) {
  if (!swap_engine_enabled(g)) return naive::insertion_stability_at(g, v, k);
  SwapEngine engine(g);
  SwapEngine::Scratch scratch;
  return engine.insertion_stability_at(v, k, scratch);
}

KStabilityReport insertion_stability(const Graph& g, Vertex k) {
  if (!swap_engine_enabled(g)) return naive::insertion_stability(g, k);
  return SwapEngine(g).insertion_stability(k);
}

Vertex max_tolerated_insertions(const Graph& g, Vertex v, Vertex k_max) {
  if (!swap_engine_enabled(g)) return naive::max_tolerated_insertions(g, v, k_max);
  SwapEngine engine(g);
  SwapEngine::Scratch scratch;
  return engine.max_tolerated_insertions(v, k_max, scratch);
}

KStabilityReport swap_stability_at(const Graph& g, Vertex v, Vertex k) {
  if (!swap_engine_enabled(g)) return naive::swap_stability_at(g, v, k);
  SwapEngine engine(g);
  SwapEngine::Scratch scratch;
  return engine.swap_stability_at(v, k, scratch);
}

}  // namespace bncg

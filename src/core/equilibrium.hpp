// Equilibrium definitions and polynomial-time certifiers.
//
// A key point of the paper is that, unlike Nash equilibria of the classic
// α-game (NP-complete to recognize [9]), swap equilibria can be verified in
// polynomial time by exhaustively trying every swap. These certifiers do
// exactly that and return a *witness* (the best improving deviation) when
// the graph is not in equilibrium, so a verdict is a machine-checked proof
// for the instance.
//
// Definitions implemented (verbatim from the problem statement, §1):
//  * sum equilibrium      — no swap decreases the swapper's distance sum.
//  * max equilibrium      — no swap decreases the swapper's local diameter,
//                           and deleting any edge strictly increases the
//                           local diameter of the deleting endpoint.
//  * deletion-critical    — deleting any edge strictly increases the local
//                           diameter of *both* endpoints.
//  * insertion-stable     — inserting any edge decreases neither endpoint's
//                           local diameter.
// insertion-stable ∧ deletion-critical ⇒ max equilibrium (the paper's
// lower-bound constructions satisfy the stronger pair; tests check the
// implication through these functions).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/swap.hpp"
#include "core/usage_cost.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// An improving deviation found by a certifier: applying `swap` changes the
/// swapping agent's usage cost from `cost_before` to `cost_after` (strictly
/// smaller, or equal for the neutral deletions that violate max-equilibrium's
/// deletion clause — see `kind`).
struct Deviation {
  enum class Kind {
    ImprovingSwap,     ///< a swap strictly decreasing the agent's usage cost
    NonCriticalDelete  ///< max model: a deletion that fails to strictly
                       ///< increase the deleter's local diameter
  };
  EdgeSwap swap;
  std::uint64_t cost_before = 0;
  std::uint64_t cost_after = 0;
  Kind kind = Kind::ImprovingSwap;
};

/// Exhaustive certification outcome.
struct EquilibriumCertificate {
  bool is_equilibrium = false;
  /// The most-improving deviation when not in equilibrium (empty otherwise).
  std::optional<Deviation> witness;
  /// Number of candidate moves evaluated (for complexity reporting).
  std::uint64_t moves_checked = 0;
};

/// Finds the best improving swap for a *single* agent `v` in the sum model;
/// nullopt when v has none. O(deg(v) · n) BFS runs.
[[nodiscard]] std::optional<Deviation> best_sum_deviation(const Graph& g, Vertex v,
                                                          BfsWorkspace& ws);

/// First (not best) improving swap for agent `v` in the sum model.
[[nodiscard]] std::optional<Deviation> first_sum_deviation(const Graph& g, Vertex v,
                                                           BfsWorkspace& ws);

/// Finds the best improving swap for agent `v` in the max model (swap moves
/// only; deletion-criticality is checked by the certifier separately).
[[nodiscard]] std::optional<Deviation> best_max_deviation(const Graph& g, Vertex v,
                                                          BfsWorkspace& ws);

/// First improving swap for agent `v` in the max model. Also reports
/// neutral deletions (Kind::NonCriticalDelete) when `include_deletions`.
[[nodiscard]] std::optional<Deviation> first_max_deviation(const Graph& g, Vertex v,
                                                           BfsWorkspace& ws,
                                                           bool include_deletions = false);

/// Exhaustively certifies sum equilibrium. Parallel over vertices.
[[nodiscard]] EquilibriumCertificate certify_sum_equilibrium(const Graph& g);

/// Exhaustively certifies max equilibrium: swap stability for every agent
/// plus the strict-deletion clause for every edge endpoint.
[[nodiscard]] EquilibriumCertificate certify_max_equilibrium(const Graph& g);

/// Convenience predicates.
[[nodiscard]] bool is_sum_equilibrium(const Graph& g);
[[nodiscard]] bool is_max_equilibrium(const Graph& g);

/// Deleting any edge strictly increases the local diameter of both
/// endpoints (uses the +∞ convention for disconnecting deletions).
[[nodiscard]] bool is_deletion_critical(const Graph& g);

/// Inserting any absent edge decreases neither endpoint's local diameter.
/// Implemented on the all-pairs matrix: the post-insertion distance from v
/// via new edge vw is min(d(v,x), 1 + d(w,x)) — no graph mutation needed.
[[nodiscard]] bool is_insertion_stable(const Graph& g);

/// Single-vertex variants exploiting symmetry: for vertex-transitive
/// constructions (Fig. 4, Cayley graphs) checking one representative vertex
/// per orbit suffices. These check exactly the given agent.
[[nodiscard]] bool vertex_is_sum_stable(const Graph& g, Vertex v);
[[nodiscard]] bool vertex_is_max_stable(const Graph& g, Vertex v);

/// Brute-force oracle: one scoped mutation plus one full BFS per candidate
/// move. The public entry points above route through the delta-evaluation
/// SwapEngine (core/swap_engine.hpp) unless BNCG_FORCE_NAIVE is set; these
/// are the reference implementations the engine is differential-tested
/// against, and the fallback for graphs too large for 16-bit distances.
namespace naive {
[[nodiscard]] std::optional<Deviation> best_sum_deviation(const Graph& g, Vertex v,
                                                          BfsWorkspace& ws);
[[nodiscard]] std::optional<Deviation> first_sum_deviation(const Graph& g, Vertex v,
                                                           BfsWorkspace& ws);
/// Best max-model deviation; with `include_deletions`, cost-neutral
/// deletions (Kind::NonCriticalDelete) compete too — the oracle behind
/// max_unrest and the incremental search state's differential tests.
[[nodiscard]] std::optional<Deviation> best_max_deviation(const Graph& g, Vertex v,
                                                          BfsWorkspace& ws,
                                                          bool include_deletions = false);
[[nodiscard]] std::optional<Deviation> first_max_deviation(const Graph& g, Vertex v,
                                                           BfsWorkspace& ws,
                                                           bool include_deletions = false);
[[nodiscard]] EquilibriumCertificate certify_sum_equilibrium(const Graph& g);
[[nodiscard]] EquilibriumCertificate certify_max_equilibrium(const Graph& g);
}  // namespace naive

}  // namespace bncg

#include "core/poa.hpp"

#include <algorithm>

#include "core/dynamics.hpp"
#include "core/equilibrium.hpp"
#include "core/kstability.hpp"
#include "graph/metrics.hpp"

namespace bncg {

std::uint64_t sum_social_cost_lower_bound(Vertex n, std::size_t m) {
  if (n <= 1) return 0;
  const std::uint64_t ordered_pairs = static_cast<std::uint64_t>(n) * (n - 1);
  const std::uint64_t adjacent_ordered = 2 * static_cast<std::uint64_t>(m);
  BNCG_REQUIRE(adjacent_ordered <= ordered_pairs, "more edges than vertex pairs");
  return adjacent_ordered + 2 * (ordered_pairs - adjacent_ordered);
}

std::uint64_t max_social_cost_lower_bound(Vertex n, std::size_t m) {
  if (n <= 1) return 0;
  // A vertex has ecc 1 iff its degree is n−1; the edge budget allows at most
  // ⌊2m/(n−1)⌋ such vertices. Everyone else has ecc ≥ 2 (for n ≥ 3).
  if (n == 2) return 2;
  const std::uint64_t full_degree_capacity =
      std::min<std::uint64_t>(n, 2 * static_cast<std::uint64_t>(m) / (n - 1));
  return full_degree_capacity * 1 + (n - full_degree_capacity) * 2;
}

double social_cost_ratio(const Graph& g, UsageCost model) {
  const std::uint64_t cost = social_cost(g, model);
  if (cost == kInfCost) return 1e18;
  const std::uint64_t bound = model == UsageCost::Sum
                                  ? sum_social_cost_lower_bound(g.num_vertices(), g.num_edges())
                                  : max_social_cost_lower_bound(g.num_vertices(), g.num_edges());
  if (bound == 0) return 1.0;
  return static_cast<double>(cost) / static_cast<double>(bound);
}

double diameter_poa_proxy(const Graph& g) {
  const Vertex d = diameter(g);
  return d == kInfDist ? 1e18 : static_cast<double>(d);
}

Vertex equilibrium_k_tolerance(const Graph& g, Vertex k_max) {
  // min_v max_tolerated_insertions(v), but as whole-graph sweeps per budget:
  // the engine path then shares one batched APSP across all agents and
  // bails at the first budget some agent beats.
  for (Vertex k = 1; k <= k_max; ++k) {
    if (!insertion_stability(g, k).stable) return k - 1;
  }
  return k_max;
}

PoaReport poa_report(const Graph& g, Vertex k_max) {
  PoaReport report;
  report.sum_ratio = social_cost_ratio(g, UsageCost::Sum);
  report.max_ratio = social_cost_ratio(g, UsageCost::Max);
  report.diameter_proxy = diameter_poa_proxy(g);
  report.sum_swap_stable = certify_sum_equilibrium(g).is_equilibrium;
  report.max_swap_stable = certify_max_equilibrium(g).is_equilibrium;
  report.k_tolerance = equilibrium_k_tolerance(g, k_max);
  return report;
}

}  // namespace bncg

#include "core/swap_engine.hpp"

#include <algorithm>
#include <cstdlib>

namespace bncg {

namespace {

/// Post-swap sum cost: (n−1) + Σ_u min(m_u, c_u), where m = M^w (min over
/// kept neighbor rows, with m_v = 0) and c = d_{G−v}(w₂,·). Any term at the
/// ∞ sentinel means some vertex became unreachable. The accumulator fits
/// 32 bits: every term is ≤ kInfDist16 = 2¹⁶−1 and n < 65535.
std::uint64_t combine_sum(const std::uint16_t* m, const std::uint16_t* c, Vertex n) {
  std::uint32_t sum = 0;
  std::uint16_t worst = 0;
  for (Vertex u = 0; u < n; ++u) {
    const std::uint16_t t = std::min(m[u], c[u]);
    sum += t;
    worst = std::max(worst, t);
  }
  if (worst >= kInfDist16) return kInfCost;
  return sum + (n - 1);
}

/// Post-swap max cost: 1 + max_u min(m_u, c_u) — the max-model analogue.
std::uint64_t combine_max(const std::uint16_t* m, const std::uint16_t* c, Vertex n) {
  std::uint16_t worst = 0;
  for (Vertex u = 0; u < n; ++u) worst = std::max(worst, std::min(m[u], c[u]));
  return worst >= kInfDist16 ? kInfCost : std::uint64_t{1} + worst;
}

/// Post-deletion max cost: 1 + max_u M^w_u (m_v = 0; n ≥ 2 here).
std::uint64_t deletion_ecc(const std::uint16_t* m, Vertex n) {
  std::uint16_t worst = 0;
  for (Vertex u = 0; u < n; ++u) worst = std::max(worst, m[u]);
  return worst >= kInfDist16 ? kInfCost : std::uint64_t{1} + worst;
}

}  // namespace

bool force_naive_requested() {
  static const bool forced_naive = [] {
    const char* env = std::getenv("BNCG_FORCE_NAIVE");
    return env != nullptr && *env != '\0' && *env != '0';
  }();
  return forced_naive;
}

bool swap_engine_enabled(const Graph& g) {
  return !force_naive_requested() && g.num_vertices() <= kSwapEngineAutoMaxVertices;
}

void SwapEngine::rebuild(const Graph& g) {
  BNCG_REQUIRE(g.num_vertices() < kInfDist16, "SwapEngine requires n < 65535");
  csr_.rebuild(g);
}

std::uint64_t SwapEngine::agent_cost(Vertex v, UsageCost model, Scratch& s) const {
  const Vertex n = csr_.num_vertices();
  BNCG_REQUIRE(v < n, "vertex id out of range");
  s.base_.resize(n);
  const BfsResult r = csr_bfs(csr_, v, MaskedEdge{}, s.base_.data(), s.bfs_);
  if (!r.spans(n)) return kInfCost;
  return model == UsageCost::Sum ? r.dist_sum : r.ecc;
}

std::optional<Deviation> SwapEngine::scan_agent(Vertex v, UsageCost model, bool stop_at_first,
                                                bool include_deletions,
                                                std::uint64_t* moves_checked,
                                                Scratch& s) const {
  const Vertex n = csr_.num_vertices();
  BNCG_REQUIRE(v < n, "vertex id out of range");
  const std::uint64_t old_cost = agent_cost(v, model, s);

  const auto nbrs = csr_.neighbors(v);
  if (nbrs.empty()) return std::nullopt;

  // Closed-neighborhood marks: candidates w₂ must be fresh edges (swapping
  // onto an existing edge is a deletion and never improves either model).
  s.is_nbr_.assign(n, 0);
  s.is_nbr_[v] = 1;
  for (const Vertex w : nbrs) s.is_nbr_[w] = 1;

  // The agent's single traversal bill: one batched APSP of G − v answers
  // every (removed edge, candidate) pair via the source-removal identity.
  s.apsp_.resize(static_cast<std::size_t>(n) * n);
  csr_apsp(csr_, MaskedEdge{}, s.apsp_.data(), s.bfs_, /*masked_vertex=*/v);

  // Elementwise min / argmin / second-min over the neighbor rows, so each
  // removed edge's kept-neighbor profile M^w is an O(n) select.
  s.min1_.assign(n, kInfDist16);
  s.min2_.assign(n, kInfDist16);
  s.argmin_.assign(n, kNoVertex);
  for (const Vertex z : nbrs) {
    const std::uint16_t* cz = s.apsp_.data() + static_cast<std::size_t>(z) * n;
    for (Vertex u = 0; u < n; ++u) {
      const std::uint16_t val = cz[u];
      if (val < s.min1_[u]) {
        s.min2_[u] = s.min1_[u];
        s.min1_[u] = val;
        s.argmin_[u] = z;
      } else if (val < s.min2_[u]) {
        s.min2_[u] = val;
      }
    }
  }
  s.mrow_.resize(n);

  std::optional<Deviation> best;
  for (const Vertex w : nbrs) {
    // M^w_u = min_{z ∈ N(v)∖{w}} d_{G−v}(z, u); the v entry is pinned to 0
    // so whole-row combines need no special case for u = v.
    std::uint16_t* m = s.mrow_.data();
    for (Vertex u = 0; u < n; ++u) m[u] = s.argmin_[u] == w ? s.min2_[u] : s.min1_[u];
    m[v] = 0;

    if (model == UsageCost::Max && include_deletions) {
      // Deletion clause: removing {v, w} must *strictly* increase v's local
      // diameter; 1 + M^w is exactly the post-deletion distance profile.
      if (moves_checked != nullptr) ++*moves_checked;
      const std::uint64_t del_cost = deletion_ecc(m, n);
      if (del_cost <= old_cost) {
        const Deviation dev{{v, w, w}, old_cost, del_cost, Deviation::Kind::NonCriticalDelete};
        if (!best || dev.cost_after < best->cost_after) best = dev;
        if (stop_at_first) return best;
      }
    }

    if (model == UsageCost::Sum) {
      for (Vertex w2 = 0; w2 < n; ++w2) {
        if (s.is_nbr_[w2] != 0) continue;
        if (moves_checked != nullptr) ++*moves_checked;
        const std::uint64_t new_cost =
            combine_sum(m, s.apsp_.data() + static_cast<std::size_t>(w2) * n, n);
        if (new_cost >= old_cost) continue;
        if (!best || new_cost < best->cost_after) {
          best = Deviation{{v, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
          if (stop_at_first) return best;
        }
      }
    } else {
      // Far set of the removed edge: vertices the kept neighbors do not
      // already serve within old_cost − 1. The swap improves iff candidate
      // w₂ covers the whole far set within old_cost − 2 (reads "repair
      // connectivity" when old_cost = ∞). cap is signed: old_cost = 1 makes
      // improvement impossible and the far test rejects everything.
      const std::int32_t cap =
          old_cost == kInfCost ? kInfDist16 - 1 : static_cast<std::int32_t>(old_cost) - 2;
      s.far_.clear();
      for (Vertex u = 0; u < n; ++u) {
        if (u != v && m[u] > cap) s.far_.push_back(u);
      }
      for (Vertex w2 = 0; w2 < n; ++w2) {
        if (s.is_nbr_[w2] != 0) continue;
        if (moves_checked != nullptr) ++*moves_checked;
        const std::uint16_t* c = s.apsp_.data() + static_cast<std::size_t>(w2) * n;
        bool improves = true;
        for (const Vertex u : s.far_) {
          if (c[u] > cap) {
            improves = false;
            break;
          }
        }
        if (!improves) continue;
        const std::uint64_t new_cost = combine_max(m, c, n);
        if (!best || new_cost < best->cost_after ||
            (best->kind == Deviation::Kind::NonCriticalDelete &&
             new_cost <= best->cost_after)) {
          best = Deviation{{v, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
          if (stop_at_first) return best;
        }
      }
    }
  }
  return best;
}

std::optional<Deviation> SwapEngine::best_deviation(Vertex v, UsageCost model, Scratch& scratch,
                                                    bool include_deletions,
                                                    std::uint64_t* moves_checked) const {
  return scan_agent(v, model, /*stop_at_first=*/false, include_deletions, moves_checked, scratch);
}

std::optional<Deviation> SwapEngine::first_deviation(Vertex v, UsageCost model, Scratch& scratch,
                                                     bool include_deletions,
                                                     std::uint64_t* moves_checked) const {
  return scan_agent(v, model, /*stop_at_first=*/true, include_deletions, moves_checked, scratch);
}

std::optional<Deviation> SwapEngine::best_deviation(Vertex v, UsageCost model,
                                                    bool include_deletions) {
  return best_deviation(v, model, scratch_, include_deletions);
}

std::optional<Deviation> SwapEngine::first_deviation(Vertex v, UsageCost model,
                                                     bool include_deletions) {
  return first_deviation(v, model, scratch_, include_deletions);
}

EquilibriumCertificate SwapEngine::certify(UsageCost model, bool include_deletions) const {
  const Vertex n = csr_.num_vertices();
  EquilibriumCertificate cert;
  std::uint64_t moves = 0;

  // Per-agent results land in a vector and are folded serially afterwards,
  // so the witness tie-break (earliest agent among equal cost_after) matches
  // the serial naive certifiers under any OpenMP thread count — the parallel
  // reduction used to pick among ties in thread-arrival order.
  std::vector<std::optional<Deviation>> per_agent(n);

#ifdef BNCG_HAS_OPENMP
#pragma omp parallel
  {
    Scratch scratch;
    std::uint64_t local_moves = 0;
#pragma omp for schedule(dynamic, 1)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(n); ++v) {
      per_agent[static_cast<std::size_t>(v)] =
          best_deviation(static_cast<Vertex>(v), model, scratch, include_deletions, &local_moves);
    }
#pragma omp critical
    moves += local_moves;
  }
#else
  Scratch scratch;
  for (Vertex v = 0; v < n; ++v) {
    per_agent[v] = best_deviation(v, model, scratch, include_deletions, &moves);
  }
#endif

  std::optional<Deviation> best;
  for (Vertex v = 0; v < n; ++v) {
    const auto& dev = per_agent[v];
    if (dev && (!best || dev->cost_after < best->cost_after)) best = dev;
  }

  cert.moves_checked = moves;
  cert.witness = best;
  cert.is_equilibrium = !best.has_value();
  return cert;
}

}  // namespace bncg

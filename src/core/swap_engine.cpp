#include "core/swap_engine.hpp"

#include <algorithm>
#include <cstdlib>

#include "util/thread_pool.hpp"

namespace bncg {

namespace {

// The SIMD kernels signal "unreachable somewhere" with their own constant so
// util/ never depends on core/; it must stay bit-identical to kInfCost for
// the cost comparisons below to read kernel results directly.
static_assert(simd::kInfCostResult == kInfCost);

/// Infinity sentinel of the engine's per-width matrices. u16 keeps the full
/// 0xFFFF traversal sentinel (the historical engine encoding); u8 uses the
/// capped kSearchInf8 with finite range 0..kMaxFiniteFor — a sweep that
/// would exceed it saturates and the agent is redone at u16.
template <typename Dist>
constexpr Dist engine_inf() {
  if constexpr (std::is_same_v<Dist, std::uint8_t>) {
    return kSearchInf8;
  } else {
    return kInfDist16;
  }
}

template <typename Dist>
constexpr Dist engine_max_finite() {
  if constexpr (std::is_same_v<Dist, std::uint8_t>) {
    return kMaxFiniteFor<std::uint8_t>;
  } else {
    return static_cast<std::uint16_t>(kInfDist16 - 1);
  }
}

// The combine reductions ((n−1) + Σ_u min(m_u, c_u), 1 + max_u min(m_u, c_u),
// 1 + max_u m_u) and the scan-table maintenance loops now live in
// util/simd.hpp as runtime-dispatched kernels; simd::kernels<Dist>() below
// replaces the former local templates with bit-identical semantics.

}  // namespace

bool force_naive_requested() {
  static const bool forced_naive = [] {
    const char* env = std::getenv("BNCG_FORCE_NAIVE");
    return env != nullptr && *env != '\0' && *env != '0';
  }();
  return forced_naive;
}

bool swap_engine_enabled(const Graph& g) {
  return !force_naive_requested() && g.num_vertices() <= kSwapEngineAutoMaxVertices;
}

void SwapEngine::rebuild(const Graph& g, WidthPolicy width) {
  policy_ = width;
  rebuild(g);
}

void SwapEngine::rebuild(const Graph& g) {
  BNCG_REQUIRE(g.num_vertices() < kInfDist16, "SwapEngine requires n < 65535");
  csr_.rebuild(g);
  width_fallbacks_.store(0, std::memory_order_relaxed);
  prefer_u8_ = false;
  const Vertex n = csr_.num_vertices();
  if (policy_ == WidthPolicy::ForceU16 || n == 0) return;
  if (policy_ == WidthPolicy::ForceU8) {
    prefer_u8_ = true;
    return;
  }
  // Auto probe: one BFS bounds the diameter by 2·ecc(0). Masked per-agent
  // sweeps can still exceed the bound (G − v may be much wider than G), but
  // the per-agent u16 fallback absorbs those exactly — the probe only has
  // to make the preference pay off on average.
  scratch_.base_.resize(n);
  const BfsResult r = csr_bfs(csr_, 0, MaskedEdge{}, scratch_.base_.data(), scratch_.bfs_);
  prefer_u8_ =
      r.spans(n) && 2 * static_cast<std::uint64_t>(r.ecc) <= kMaxFiniteFor<std::uint8_t>;
}

std::uint64_t SwapEngine::agent_cost(Vertex v, UsageCost model, Scratch& s) const {
  const Vertex n = csr_.num_vertices();
  BNCG_REQUIRE(v < n, "vertex id out of range");
  s.base_.resize(n);
  const BfsResult r = csr_bfs(csr_, v, MaskedEdge{}, s.base_.data(), s.bfs_);
  if (!r.spans(n)) return kInfCost;
  return model == UsageCost::Sum ? r.dist_sum : r.ecc;
}

template <typename Dist>
bool SwapEngine::scan_agent_t(Vertex v, UsageCost model, bool stop_at_first,
                              bool include_deletions, std::uint64_t* moves_checked,
                              Scratch& s, std::optional<Deviation>& out) const {
  constexpr Dist kInf = engine_inf<Dist>();
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  const Vertex n = csr_.num_vertices();
  BNCG_REQUIRE(v < n, "vertex id out of range");
  const std::uint64_t old_cost = agent_cost(v, model, s);

  const auto nbrs = csr_.neighbors(v);
  out.reset();
  if (nbrs.empty()) return true;

  // Closed-neighborhood marks: candidates w₂ must be fresh edges (swapping
  // onto an existing edge is a deletion and never improves either model).
  s.is_nbr_.assign(n, 0);
  s.is_nbr_[v] = 1;
  for (const Vertex w : nbrs) s.is_nbr_[w] = 1;

  // The agent's single traversal bill: one batched APSP of G − v answers
  // every (removed edge, candidate) pair via the source-removal identity.
  // A saturating sweep means this agent does not fit the width — bail so
  // the dispatcher redoes it at u16.
  auto& rows = s.rows<Dist>();
  rows.apsp.resize(static_cast<std::size_t>(n) * n);
  if (!csr_apsp_capped<Dist>(csr_, MaskedEdge{}, rows.apsp.data(), s.bfs_,
                             /*masked_vertex=*/v, kInf, engine_max_finite<Dist>())) {
    return false;
  }

  // Elementwise min / argmin / second-min over the neighbor rows, so each
  // removed edge's kept-neighbor profile M^w is an O(n) select.
  rows.min1.assign(n, kInf);
  rows.min2.assign(n, kInf);
  s.argmin_.assign(n, kNoVertex);
  for (const Vertex z : nbrs) {
    kern.scan_min_update(rows.min1.data(), rows.min2.data(), s.argmin_.data(),
                         rows.apsp.data() + static_cast<std::size_t>(z) * n, z, n);
  }
  rows.mrow.resize(n);
  s.far_.resize(n);

  std::optional<Deviation> best;
  for (const Vertex w : nbrs) {
    // M^w_u = min_{z ∈ N(v)∖{w}} d_{G−v}(z, u); the v entry is pinned to 0
    // so whole-row combines need no special case for u = v.
    Dist* m = rows.mrow.data();
    kern.select_mrow(m, rows.min1.data(), rows.min2.data(), s.argmin_.data(), w, n);
    m[v] = 0;

    if (model == UsageCost::Max && include_deletions) {
      // Deletion clause: removing {v, w} must *strictly* increase v's local
      // diameter; 1 + M^w is exactly the post-deletion distance profile.
      if (moves_checked != nullptr) ++*moves_checked;
      const std::uint64_t del_cost = kern.deletion_ecc(m, n, kInf);
      if (del_cost <= old_cost) {
        const Deviation dev{{v, w, w}, old_cost, del_cost, Deviation::Kind::NonCriticalDelete};
        if (!best || dev.cost_after < best->cost_after) best = dev;
        if (stop_at_first) {
          out = best;
          return true;
        }
      }
    }

    if (model == UsageCost::Sum) {
      for (Vertex w2 = 0; w2 < n; ++w2) {
        if (s.is_nbr_[w2] != 0) continue;
        if (moves_checked != nullptr) ++*moves_checked;
        const std::uint64_t new_cost =
            kern.combine_sum(m, rows.apsp.data() + static_cast<std::size_t>(w2) * n, n, kInf);
        if (new_cost >= old_cost) continue;
        if (!best || new_cost < best->cost_after) {
          best = Deviation{{v, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
          if (stop_at_first) {
            out = best;
            return true;
          }
        }
      }
    } else {
      // Far set of the removed edge: vertices the kept neighbors do not
      // already serve within old_cost − 1. The swap improves iff candidate
      // w₂ covers the whole far set within old_cost − 2 (reads "repair
      // connectivity" when old_cost = ∞). cap is signed: old_cost = 1 makes
      // improvement impossible and the far test rejects everything.
      const std::int32_t cap =
          old_cost == kInfCost ? std::int32_t{kInf} - 1 : static_cast<std::int32_t>(old_cost) - 2;
      const std::uint32_t far_count = kern.collect_above(m, n, cap, /*skip=*/v, s.far_.data());
      for (Vertex w2 = 0; w2 < n; ++w2) {
        if (s.is_nbr_[w2] != 0) continue;
        if (moves_checked != nullptr) ++*moves_checked;
        const Dist* c = rows.apsp.data() + static_cast<std::size_t>(w2) * n;
        bool improves = true;
        for (std::uint32_t i = 0; i < far_count; ++i) {
          if (c[s.far_[i]] > cap) {
            improves = false;
            break;
          }
        }
        if (!improves) continue;
        const std::uint64_t new_cost = kern.combine_max(m, c, n, kInf);
        if (!best || new_cost < best->cost_after ||
            (best->kind == Deviation::Kind::NonCriticalDelete &&
             new_cost <= best->cost_after)) {
          best = Deviation{{v, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
          if (stop_at_first) {
            out = best;
            return true;
          }
        }
      }
    }
  }
  out = best;
  return true;
}

std::optional<Deviation> SwapEngine::scan_agent(Vertex v, UsageCost model, bool stop_at_first,
                                                bool include_deletions,
                                                std::uint64_t* moves_checked,
                                                Scratch& s) const {
  std::optional<Deviation> out;
  if (prefer_u8_) {
    // Run the narrow scan against a local move counter so a saturating
    // sweep leaves the caller's count untouched — the u16 redo recounts the
    // identical scan order, keeping move counts width-independent.
    std::uint64_t narrow_moves = 0;
    if (scan_agent_t<std::uint8_t>(v, model, stop_at_first, include_deletions,
                                   moves_checked != nullptr ? &narrow_moves : nullptr, s, out)) {
      if (moves_checked != nullptr) *moves_checked += narrow_moves;
      return out;
    }
    width_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  (void)scan_agent_t<std::uint16_t>(v, model, stop_at_first, include_deletions, moves_checked, s,
                                    out);
  return out;
}

std::optional<Deviation> SwapEngine::best_deviation(Vertex v, UsageCost model, Scratch& scratch,
                                                    bool include_deletions,
                                                    std::uint64_t* moves_checked) const {
  return scan_agent(v, model, /*stop_at_first=*/false, include_deletions, moves_checked, scratch);
}

std::optional<Deviation> SwapEngine::first_deviation(Vertex v, UsageCost model, Scratch& scratch,
                                                     bool include_deletions,
                                                     std::uint64_t* moves_checked) const {
  return scan_agent(v, model, /*stop_at_first=*/true, include_deletions, moves_checked, scratch);
}

std::optional<Deviation> SwapEngine::best_deviation(Vertex v, UsageCost model,
                                                    bool include_deletions) {
  return best_deviation(v, model, scratch_, include_deletions);
}

std::optional<Deviation> SwapEngine::first_deviation(Vertex v, UsageCost model,
                                                     bool include_deletions) {
  return first_deviation(v, model, scratch_, include_deletions);
}

EquilibriumCertificate SwapEngine::certify(UsageCost model, bool include_deletions) const {
  const Vertex n = csr_.num_vertices();
  EquilibriumCertificate cert;
  std::uint64_t moves = 0;

  // Per-agent results land in a vector and are folded serially afterwards,
  // so the witness tie-break (earliest agent among equal cost_after) matches
  // the serial naive certifiers under any lane count — a parallel reduction
  // would pick among ties in thread-arrival order. Move counts are per-lane
  // slots (cache-line padded: they are bumped per candidate) summed in lane
  // order; sums commute, so the fold order is cosmetic there.
  std::vector<std::optional<Deviation>> per_agent(n);
  ThreadPool& pool = ThreadPool::global();
  struct alignas(64) LaneCount {
    std::uint64_t moves = 0;
  };
  std::vector<LaneCount> lane_moves(pool.size());
  {
    std::vector<Scratch> scratch(pool.size());
    pool.parallel_for(n, 1, [&](std::uint64_t v, unsigned tid) {
      per_agent[v] = best_deviation(static_cast<Vertex>(v), model, scratch[tid],
                                    include_deletions, &lane_moves[tid].moves);
    });
  }
  for (const LaneCount& lane : lane_moves) moves += lane.moves;

  std::optional<Deviation> best;
  for (Vertex v = 0; v < n; ++v) {
    const auto& dev = per_agent[v];
    if (dev && (!best || dev->cost_after < best->cost_after)) best = dev;
  }

  cert.moves_checked = moves;
  cert.witness = best;
  cert.is_equilibrium = !best.has_value();
  return cert;
}

}  // namespace bncg

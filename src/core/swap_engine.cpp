#include "core/swap_engine.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <map>

#include "util/thread_pool.hpp"

namespace bncg {

namespace {

// The SIMD kernels signal "unreachable somewhere" with their own constant so
// util/ never depends on core/; it must stay bit-identical to kInfCost for
// the cost comparisons below to read kernel results directly.
static_assert(simd::kInfCostResult == kInfCost);

/// Infinity sentinel of the engine's per-width matrices. u16 keeps the full
/// 0xFFFF traversal sentinel (the historical engine encoding); u8 uses the
/// capped kSearchInf8 with finite range 0..kMaxFiniteFor — a sweep that
/// would exceed it saturates and the agent is redone at u16.
template <typename Dist>
constexpr Dist engine_inf() {
  if constexpr (std::is_same_v<Dist, std::uint8_t>) {
    return kSearchInf8;
  } else {
    return kInfDist16;
  }
}

template <typename Dist>
constexpr Dist engine_max_finite() {
  if constexpr (std::is_same_v<Dist, std::uint8_t>) {
    return kMaxFiniteFor<std::uint8_t>;
  } else {
    return static_cast<std::uint16_t>(kInfDist16 - 1);
  }
}

// The combine reductions ((n−1) + Σ_u min(m_u, c_u), 1 + max_u min(m_u, c_u),
// 1 + max_u m_u) and the scan-table maintenance loops now live in
// util/simd.hpp as runtime-dispatched kernels; simd::kernels<Dist>() below
// replaces the former local templates with bit-identical semantics.

constexpr std::size_t words_for(std::uint32_t bits) {
  return (static_cast<std::size_t>(bits) + 63) / 64;
}

/// Coverage masks of one cover instance, scored from cached symmetric
/// all-pairs rows: candidate w covers far element idx iff
/// rows[far[idx]][w] < cap (i.e. d(w, far[idx]) + 2 ≤ ecc with
/// cap = ecc − 1). One collect_below per far vertex builds the masks
/// column-sparse; the w-ascending harvest then reproduces the oracle's set
/// order, empty-mask skipping, and (for insertions) its first-label dedup —
/// so cover_select sees byte-identical instances. The via-v path a real
/// insertion also offers can be ignored here: for far x it is ≥ ecc + 1
/// long, which never meets the ≤ ecc − 2 cover condition (DESIGN.md §14),
/// which is why masked and full-graph rows agree on every mask bit.
///
/// `budget` is the counting bound: `budget` sets cover at most
/// budget · max|set| far vertices, so when far_count exceeds that product no
/// cover exists and the harvest/dedup phase (the dominant cost on instances
/// like stars, where every candidate set is a singleton but the far sphere is
/// n − 2) is skipped entirely, leaving `sets` empty. The bound changes no
/// verdict — uncoverable means stable, and stable carries no witness — and
/// max|set| is read straight off the wmask popcounts, so triggering it costs
/// one word scan. The largest set size is always reported via `max_set_out`
/// so callers probing several k values can reapply the bound per k.
template <typename Dist>
void build_cover_sets(const Dist* rows, Vertex n, Vertex v, const Vertex* far,
                      std::uint32_t far_count, std::int32_t cap, bool dedup,
                      std::uint64_t budget, std::uint32_t* max_set_out,
                      AlignedVec<Vertex>& hits, std::vector<std::uint64_t>& wmask,
                      std::vector<std::vector<std::uint64_t>>& sets, std::vector<Vertex>& labels) {
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  const std::size_t words = words_for(far_count);
  wmask.assign(static_cast<std::size_t>(n) * words, 0);
  hits.resize(n);
  for (std::uint32_t idx = 0; idx < far_count; ++idx) {
    const Dist* row = rows + static_cast<std::size_t>(far[idx]) * n;
    const std::uint32_t count = kern.collect_below(row, n, cap, /*skip=*/v, hits.data());
    for (std::uint32_t i = 0; i < count; ++i) {
      wmask[static_cast<std::size_t>(hits[i]) * words + idx / 64] |= std::uint64_t{1}
                                                                    << (idx % 64);
    }
  }
  std::uint32_t max_set = 0;
  for (Vertex w = 0; w < n; ++w) {
    if (w == v) continue;
    const std::uint64_t* src = wmask.data() + static_cast<std::size_t>(w) * words;
    std::uint32_t size = 0;
    for (std::size_t j = 0; j < words; ++j) {
      size += static_cast<std::uint32_t>(std::popcount(src[j]));
    }
    max_set = std::max(max_set, size);
  }
  if (max_set_out != nullptr) *max_set_out = max_set;
  sets.clear();
  labels.clear();
  if (std::uint64_t{far_count} > budget * std::uint64_t{max_set}) return;
  std::map<std::vector<std::uint64_t>, bool> seen;
  std::vector<std::uint64_t> mask(words);
  for (Vertex w = 0; w < n; ++w) {
    if (w == v) continue;
    const std::uint64_t* src = wmask.data() + static_cast<std::size_t>(w) * words;
    bool nonempty = false;
    for (std::size_t j = 0; j < words; ++j) {
      mask[j] = src[j];
      nonempty |= src[j] != 0;
    }
    if (!nonempty) continue;
    if (dedup) {
      if (auto [it, inserted] = seen.emplace(mask, true); !inserted) continue;
    }
    sets.push_back(mask);
    labels.push_back(w);
  }
}

}  // namespace

RowCacheStats SwapEngine::Scratch::row_cache_stats() const {
  const RowCacheStats& a = rows8_.provider.cache_stats();
  const RowCacheStats& b = rows16_.provider.cache_stats();
  RowCacheStats out;
  out.hits = a.hits + b.hits;
  out.misses = a.misses + b.misses;
  out.evictions = a.evictions + b.evictions;
  out.contexts = a.contexts + b.contexts;
  out.peak_bytes = a.peak_bytes + b.peak_bytes;
  return out;
}

bool force_naive_requested() {
  static const bool forced_naive = [] {
    const char* env = std::getenv("BNCG_FORCE_NAIVE");
    return env != nullptr && *env != '\0' && *env != '0';
  }();
  return forced_naive;
}

bool swap_engine_enabled(const Graph& g) {
  return !force_naive_requested() && g.num_vertices() <= kSwapEngineAutoMaxVertices;
}

void SwapEngine::rebuild(const Graph& g, WidthPolicy width) {
  resources_.width = width;
  rebuild(g);
}

void SwapEngine::rebuild(const Graph& g, const ResourceConfig& resources) {
  resources_ = resources;
  rebuild(g);
}

void SwapEngine::rebuild(const Graph& g) {
  csr_.rebuild(g);
  width_fallbacks_.store(0, std::memory_order_relaxed);
  prefer_u8_ = false;
  const Vertex n = csr_.num_vertices();
  // One policy object per snapshot: the width-preference probe (formerly an
  // in-engine csr_bfs, now budget-aware and n-unbounded) plus the per-width
  // dense-vs-budgeted storage decision under the per-lane budget share.
  // Instances at n ≥ 65535 — beyond the dense scan's 16-bit encoding — are
  // accepted here and always run budgeted.
  budget_policy_ = WidthAndBudgetPolicy(resources_);
  if (n == 0) return;
  prefer_u8_ = budget_policy_.probe_prefers_u8(csr_, scratch_.bfs_);
}

std::uint64_t SwapEngine::agent_cost(Vertex v, UsageCost model, Scratch& s) const {
  const Vertex n = csr_.num_vertices();
  BNCG_REQUIRE(v < n, "vertex id out of range");
  BNCG_REQUIRE(n < kInfDist16,
               "agent_cost is a dense-path query (n < 65535); budgeted scans derive costs "
               "from the neighbor min-fold instead");
  s.base_.resize(n);
  const BfsResult r = csr_bfs(csr_, v, MaskedEdge{}, s.base_.data(), s.bfs_);
  if (!r.spans(n)) return kInfCost;
  return model == UsageCost::Sum ? r.dist_sum : r.ecc;
}

template <typename Dist>
bool SwapEngine::scan_agent_t(Vertex v, UsageCost model, bool stop_at_first,
                              bool include_deletions, std::uint64_t* moves_checked,
                              Scratch& s, std::optional<Deviation>& out) const {
  constexpr Dist kInf = engine_inf<Dist>();
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  const Vertex n = csr_.num_vertices();
  BNCG_REQUIRE(v < n, "vertex id out of range");
  const std::uint64_t old_cost = agent_cost(v, model, s);

  const auto nbrs = csr_.neighbors(v);
  out.reset();
  if (nbrs.empty()) return true;

  // Closed-neighborhood marks: candidates w₂ must be fresh edges (swapping
  // onto an existing edge is a deletion and never improves either model).
  s.is_nbr_.assign(n, 0);
  s.is_nbr_[v] = 1;
  for (const Vertex w : nbrs) s.is_nbr_[w] = 1;

  // The agent's single traversal bill: one batched APSP of G − v answers
  // every (removed edge, candidate) pair via the source-removal identity.
  // Materialization goes through the provider's dense mode (the batched
  // APSP into this scratch's slab); a saturating sweep means this agent
  // does not fit the width — bail so the dispatcher redoes it at u16.
  auto& rows = s.rows<Dist>();
  if (!rows.provider.begin(csr_, /*masked_vertex=*/v, kInf, engine_max_finite<Dist>(),
                           RowStorage::Dense, /*budget_bytes=*/0, rows.apsp, s.bfs_)) {
    return false;
  }

  // Elementwise min / argmin / second-min over the neighbor rows, so each
  // removed edge's kept-neighbor profile M^w is an O(n) select.
  rows.min1.assign(n, kInf);
  rows.min2.assign(n, kInf);
  s.argmin_.assign(n, kNoVertex);
  for (const Vertex z : nbrs) {
    kern.scan_min_update(rows.min1.data(), rows.min2.data(), s.argmin_.data(),
                         rows.apsp.data() + static_cast<std::size_t>(z) * n, z, n);
  }
  rows.mrow.resize(n);
  s.far_.resize(n);

  std::optional<Deviation> best;
  for (const Vertex w : nbrs) {
    // M^w_u = min_{z ∈ N(v)∖{w}} d_{G−v}(z, u); the v entry is pinned to 0
    // so whole-row combines need no special case for u = v.
    Dist* m = rows.mrow.data();
    kern.select_mrow(m, rows.min1.data(), rows.min2.data(), s.argmin_.data(), w, n);
    m[v] = 0;

    if (model == UsageCost::Max && include_deletions) {
      // Deletion clause: removing {v, w} must *strictly* increase v's local
      // diameter; 1 + M^w is exactly the post-deletion distance profile.
      if (moves_checked != nullptr) ++*moves_checked;
      const std::uint64_t del_cost = kern.deletion_ecc(m, n, kInf);
      if (del_cost <= old_cost) {
        const Deviation dev{{v, w, w}, old_cost, del_cost, Deviation::Kind::NonCriticalDelete};
        if (!best || dev.cost_after < best->cost_after) best = dev;
        if (stop_at_first) {
          out = best;
          return true;
        }
      }
    }

    if (model == UsageCost::Sum) {
      for (Vertex w2 = 0; w2 < n; ++w2) {
        if (s.is_nbr_[w2] != 0) continue;
        if (moves_checked != nullptr) ++*moves_checked;
        const std::uint64_t new_cost =
            kern.combine_sum(m, rows.apsp.data() + static_cast<std::size_t>(w2) * n, n, kInf);
        if (new_cost >= old_cost) continue;
        if (!best || new_cost < best->cost_after) {
          best = Deviation{{v, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
          if (stop_at_first) {
            out = best;
            return true;
          }
        }
      }
    } else {
      // Far set of the removed edge: vertices the kept neighbors do not
      // already serve within old_cost − 1. The swap improves iff candidate
      // w₂ covers the whole far set within old_cost − 2 (reads "repair
      // connectivity" when old_cost = ∞). cap is signed: old_cost = 1 makes
      // improvement impossible and the far test rejects everything.
      const std::int32_t cap =
          old_cost == kInfCost ? std::int32_t{kInf} - 1 : static_cast<std::int32_t>(old_cost) - 2;
      const std::uint32_t far_count = kern.collect_above(m, n, cap, /*skip=*/v, s.far_.data());
      for (Vertex w2 = 0; w2 < n; ++w2) {
        if (s.is_nbr_[w2] != 0) continue;
        if (moves_checked != nullptr) ++*moves_checked;
        const Dist* c = rows.apsp.data() + static_cast<std::size_t>(w2) * n;
        bool improves = true;
        for (std::uint32_t i = 0; i < far_count; ++i) {
          if (c[s.far_[i]] > cap) {
            improves = false;
            break;
          }
        }
        if (!improves) continue;
        const std::uint64_t new_cost = kern.combine_max(m, c, n, kInf);
        if (!best || new_cost < best->cost_after ||
            (best->kind == Deviation::Kind::NonCriticalDelete &&
             new_cost <= best->cost_after)) {
          best = Deviation{{v, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
          if (stop_at_first) {
            out = best;
            return true;
          }
        }
      }
    }
  }
  out = best;
  return true;
}

template <typename Dist>
bool SwapEngine::scan_agent_budgeted_t(Vertex v, UsageCost model, bool stop_at_first,
                                       bool include_deletions, std::uint64_t* moves_checked,
                                       Scratch& s, std::optional<Deviation>& out) const {
  constexpr Dist kInf = engine_inf<Dist>();
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  const Vertex n = csr_.num_vertices();
  BNCG_REQUIRE(v < n, "vertex id out of range");

  const auto nbrs = csr_.neighbors(v);
  out.reset();
  if (nbrs.empty()) return true;

  s.is_nbr_.assign(n, 0);
  s.is_nbr_[v] = 1;
  for (const Vertex w : nbrs) s.is_nbr_[w] = 1;
  // Candidates per removed edge — the bulk move-count term of the max
  // model, where every candidate is "checked" by the far filter whether or
  // not its row ever materializes.
  std::uint64_t candidate_count = 0;
  for (Vertex x = 0; x < n; ++x) candidate_count += s.is_nbr_[x] == 0 ? 1 : 0;

  auto& rows = s.rows<Dist>();
  if (!rows.provider.begin(csr_, /*masked_vertex=*/v, kInf, engine_max_finite<Dist>(),
                           RowStorage::Budgeted, budget_policy_.lane_budget(), rows.apsp,
                           s.bfs_)) {
    return false;
  }
  auto& provider = rows.provider;

  // Neighbor min-fold, one row at a time: prefetch batches ≤ 64 neighbor
  // rows per traversal; each row is folded once and may be evicted freely
  // afterwards. This is the only stage that materializes rows
  // unconditionally — everything below is filtered or pruned first.
  rows.min1.assign(n, kInf);
  rows.min2.assign(n, kInf);
  s.argmin_.assign(n, kNoVertex);
  for (std::size_t i = 0; i < nbrs.size(); i += 64) {
    const std::size_t chunk = std::min<std::size_t>(64, nbrs.size() - i);
    const std::span<const Vertex> group(nbrs.data() + i, chunk);
    if (!provider.prefetch(group, s.bfs_)) return false;
    for (const Vertex z : group) {
      const Dist* row = provider.row(z, s.bfs_);
      if (row == nullptr) return false;
      kern.scan_min_update(rows.min1.data(), rows.min2.data(), s.argmin_.data(), row, z, n);
    }
  }

  // The agent's current cost derives from the fold it already paid for:
  // with min1[v] pinned to 0, 1 + min1 is exactly d_G(v, ·) (source-removal
  // identity at N' = N(v)), so ecc and Σ fall out of the combine kernels —
  // no unmasked BFS, which at budgeted scale would be a third traversal
  // family. Pinning min1[v] itself is safe: argmin_[v] stays kNoVertex (no
  // masked row reaches v), so select_mrow below copies the pinned 0 into
  // every M^w exactly where the dense scan pins m[v] after the select.
  rows.min1[v] = 0;
  const std::uint64_t old_cost =
      model == UsageCost::Sum
          ? kern.combine_sum(rows.min1.data(), rows.min1.data(), n, kInf)
          : kern.deletion_ecc(rows.min1.data(), n, kInf);

  rows.mrow.resize(n);
  s.far_.resize(n);

  std::optional<Deviation> best;
  for (const Vertex w : nbrs) {
    Dist* m = rows.mrow.data();
    kern.select_mrow(m, rows.min1.data(), rows.min2.data(), s.argmin_.data(), w, n);
    m[v] = 0;

    if (model == UsageCost::Max && include_deletions) {
      if (moves_checked != nullptr) ++*moves_checked;
      const std::uint64_t del_cost = kern.deletion_ecc(m, n, kInf);
      if (del_cost <= old_cost) {
        const Deviation dev{{v, w, w}, old_cost, del_cost, Deviation::Kind::NonCriticalDelete};
        if (!best || dev.cost_after < best->cost_after) best = dev;
        if (stop_at_first) {
          out = best;
          return true;
        }
      }
    }

    if (model == UsageCost::Sum) {
      // Σ-prune: for any candidate w₂ with A = M^w_{w₂} finite, the kept
      // neighbor z* attaining A gives m_u ≤ A + c_u for every u (triangle
      // through w₂), so min(m_u, c_u) ≥ m_u − A and
      //   cost'(v) ≥ combine_sum(M^w, M^w) − n·A.
      // When that bound already meets old_cost the dense scan would have
      // computed cost' and continued — prune without materializing the row.
      // A = ∞ (w₂ outside the kept component) can still repair
      // connectivity, so it always evaluates; Σ M^w = ∞ with A finite means
      // some u is unreachable from w₂ too, so cost' = ∞ — always prune.
      const std::uint64_t mm = kern.combine_sum(m, m, n, kInf);
      for (Vertex w2 = 0; w2 < n; ++w2) {
        if (s.is_nbr_[w2] != 0) continue;
        if (moves_checked != nullptr) ++*moves_checked;
        const std::uint64_t a = m[w2];
        if (a < kInf) {
          if (mm == kInfCost) continue;
          if (old_cost != kInfCost && mm >= old_cost + std::uint64_t{n} * a) continue;
        }
        const Dist* c = provider.row(w2, s.bfs_);
        if (c == nullptr) return false;
        const std::uint64_t new_cost = kern.combine_sum(m, c, n, kInf);
        if (new_cost >= old_cost) continue;
        if (!best || new_cost < best->cost_after) {
          best = Deviation{{v, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
          if (stop_at_first) {
            out = best;
            return true;
          }
        }
      }
    } else {
      // Streamed far filter. The dense scan tests every candidate against
      // the far set with an early break; by symmetry d(f, w₂) = d(w₂, f)
      // the same comparisons read COLUMN-wise from far-vertex rows: pass i
      // filters the survivors of passes 0..i−1 against far row f_i, so a
      // candidate is eliminated at exactly its dense break index and the
      // survivor set is identical. Far rows are fetched lazily — passes
      // stop the moment the survivor list empties, which on equilibrium
      // instances is after a handful of rows — and survivors are *proven*
      // improvers (cost' ≤ cap + 1 < old_cost), so only their rows ever
      // materialize. Pass order over the far set is free (survival is
      // conjunctive): descending M^w visits the most exclusive far
      // vertices first, emptying the list sooner.
      const std::int32_t cap =
          old_cost == kInfCost ? std::int32_t{kInf} - 1 : static_cast<std::int32_t>(old_cost) - 2;
      const std::uint32_t far_count = kern.collect_above(m, n, cap, /*skip=*/v, s.far_.data());
      if (moves_checked != nullptr) *moves_checked += candidate_count;
      std::sort(s.far_.data(), s.far_.data() + far_count,
                [&](Vertex a, Vertex b) { return m[a] > m[b] || (m[a] == m[b] && a < b); });

      auto& surv = s.survivors_;
      auto& next = s.survivors_next_;
      surv.clear();
      for (Vertex w2 = 0; w2 < n; ++w2) {
        if (s.is_nbr_[w2] == 0) surv.push_back(w2);
      }
      for (std::uint32_t i = 0; i < far_count && !surv.empty(); ++i) {
        const Dist* f = provider.row(s.far_[i], s.bfs_);
        if (f == nullptr) return false;
        next.clear();
        for (const Vertex w2 : surv) {
          if (static_cast<std::int32_t>(f[w2]) <= cap) next.push_back(w2);
        }
        surv.swap(next);
      }

      for (const Vertex w2 : surv) {
        const Dist* c = provider.row(w2, s.bfs_);
        if (c == nullptr) return false;
        const std::uint64_t new_cost = kern.combine_max(m, c, n, kInf);
        if (!best || new_cost < best->cost_after ||
            (best->kind == Deviation::Kind::NonCriticalDelete &&
             new_cost <= best->cost_after)) {
          best = Deviation{{v, w, w2}, old_cost, new_cost, Deviation::Kind::ImprovingSwap};
          if (stop_at_first) {
            // The dense scan stops mid-enumeration, counting only the
            // candidates up to this w₂ — take back the bulk add for the
            // ones after it.
            if (moves_checked != nullptr) {
              std::uint64_t up_to = 0;
              for (Vertex x = 0; x <= w2; ++x) up_to += s.is_nbr_[x] == 0 ? 1 : 0;
              *moves_checked -= candidate_count - up_to;
            }
            out = best;
            return true;
          }
        }
      }
    }
  }
  out = best;
  return true;
}

std::optional<Deviation> SwapEngine::scan_agent(Vertex v, UsageCost model, bool stop_at_first,
                                                bool include_deletions,
                                                std::uint64_t* moves_checked,
                                                Scratch& s) const {
  const Vertex n = csr_.num_vertices();
  std::optional<Deviation> out;
  if (prefer_u8_) {
    // Run the narrow scan against a local move counter so a saturating
    // sweep leaves the caller's count untouched — the u16 redo recounts the
    // identical scan order, keeping move counts width-independent.
    std::uint64_t narrow_moves = 0;
    std::uint64_t* narrow = moves_checked != nullptr ? &narrow_moves : nullptr;
    const bool ok =
        budget_policy_.dense_fits(n, DistWidth::U8)
            ? scan_agent_t<std::uint8_t>(v, model, stop_at_first, include_deletions, narrow, s,
                                         out)
            : scan_agent_budgeted_t<std::uint8_t>(v, model, stop_at_first, include_deletions,
                                                  narrow, s, out);
    if (ok) {
      if (moves_checked != nullptr) *moves_checked += narrow_moves;
      return out;
    }
    width_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  if (budget_policy_.dense_fits(n, DistWidth::U16)) {
    // Dense u16 cannot saturate under its n < 65535 gate.
    (void)scan_agent_t<std::uint16_t>(v, model, stop_at_first, include_deletions, moves_checked,
                                      s, out);
  } else {
    // Budgeted u16 CAN saturate — a masked diameter beyond 65534 — and
    // there is no wider storage to fall back to.
    BNCG_REQUIRE(scan_agent_budgeted_t<std::uint16_t>(v, model, stop_at_first, include_deletions,
                                                      moves_checked, s, out),
                 "budgeted u16 scan saturated: some masked distance exceeds the 16-bit "
                 "encoding; this instance is beyond the engine's distance range");
  }
  return out;
}

std::optional<Deviation> SwapEngine::best_deviation(Vertex v, UsageCost model, Scratch& scratch,
                                                    bool include_deletions,
                                                    std::uint64_t* moves_checked) const {
  return scan_agent(v, model, /*stop_at_first=*/false, include_deletions, moves_checked, scratch);
}

std::optional<Deviation> SwapEngine::first_deviation(Vertex v, UsageCost model, Scratch& scratch,
                                                     bool include_deletions,
                                                     std::uint64_t* moves_checked) const {
  return scan_agent(v, model, /*stop_at_first=*/true, include_deletions, moves_checked, scratch);
}

std::optional<Deviation> SwapEngine::best_deviation(Vertex v, UsageCost model,
                                                    bool include_deletions) {
  return best_deviation(v, model, scratch_, include_deletions);
}

std::optional<Deviation> SwapEngine::first_deviation(Vertex v, UsageCost model,
                                                     bool include_deletions) {
  return first_deviation(v, model, scratch_, include_deletions);
}

EquilibriumCertificate SwapEngine::certify(UsageCost model, bool include_deletions) const {
  const Vertex n = csr_.num_vertices();
  EquilibriumCertificate cert;
  std::uint64_t moves = 0;

  // Per-agent results land in a vector and are folded serially afterwards,
  // so the witness tie-break (earliest agent among equal cost_after) matches
  // the serial naive certifiers under any lane count — a parallel reduction
  // would pick among ties in thread-arrival order. Move counts are per-lane
  // slots (cache-line padded: they are bumped per candidate) summed in lane
  // order; sums commute, so the fold order is cosmetic there.
  std::vector<std::optional<Deviation>> per_agent(n);
  ThreadPool& pool = ThreadPool::global();
  struct alignas(64) LaneCount {
    std::uint64_t moves = 0;
  };
  std::vector<LaneCount> lane_moves(pool.size());
  {
    std::vector<Scratch> scratch(pool.size());
    pool.parallel_for(n, 1, [&](std::uint64_t v, unsigned tid) {
      per_agent[v] = best_deviation(static_cast<Vertex>(v), model, scratch[tid],
                                    include_deletions, &lane_moves[tid].moves);
    });
  }
  for (const LaneCount& lane : lane_moves) moves += lane.moves;

  std::optional<Deviation> best;
  for (Vertex v = 0; v < n; ++v) {
    const auto& dev = per_agent[v];
    if (dev && (!best || dev->cost_after < best->cost_after)) best = dev;
  }

  cert.moves_checked = moves;
  cert.witness = best;
  cert.is_equilibrium = !best.has_value();
  return cert;
}

// --------------------------------------------------- k-move deviation paths

template <typename Dist>
bool SwapEngine::full_apsp_t(Scratch& s) const {
  const Vertex n = csr_.num_vertices();
  BNCG_REQUIRE(n < kInfDist16,
               "the k-move deviation paths are dense-only (n < 65535); the budget applies to "
               "the basic-game scans");
  auto& rows = s.rows<Dist>();
  rows.apsp.resize(static_cast<std::size_t>(n) * n);
  return csr_apsp_capped<Dist>(csr_, MaskedEdge{}, rows.apsp.data(), s.bfs_,
                               /*masked_vertex=*/kNoVertex, engine_inf<Dist>(),
                               engine_max_finite<Dist>());
}

template <typename Dist>
void SwapEngine::insertion_report_t(const Dist* apsp, Vertex v, Vertex k_lo, Vertex k_hi,
                                    Scratch& s, KStabilityReport& out, Vertex* tolerated) const {
  constexpr Dist kInf = engine_inf<Dist>();
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  const Vertex n = csr_.num_vertices();
  out = KStabilityReport{};
  out.witness_vertex = v;
  if (tolerated != nullptr) *tolerated = k_hi;

  const Dist* row_v = apsp + static_cast<std::size_t>(v) * n;
  std::uint32_t row_sum = 0;
  Dist ecc = 0;
  kern.row_sum_max(row_v, n, &row_sum, &ecc);
  BNCG_REQUIRE(ecc < kInf, "k-stability analysis requires a connected graph");
  if (ecc <= 1 || k_hi == 0) return;

  // Far sphere: ecc is the row max, so "above ecc − 1" is exactly "== ecc".
  s.far_.resize(n);
  const std::int32_t cap = static_cast<std::int32_t>(ecc) - 1;
  const std::uint32_t far_count = kern.collect_above(row_v, n, cap, /*skip=*/v, s.far_.data());

  // The counting bound (see build_cover_sets) is probed at the largest k in
  // the requested range: when even k_hi sets cannot cover the far sphere the
  // harvest is skipped and every k below inherits the verdict via the same
  // bound in the per-k loop. The naive oracle deliberately keeps the plain
  // search, so the suites certify the bound changes no verdict.
  std::vector<std::vector<std::uint64_t>> sets;
  std::vector<Vertex> labels;
  std::uint32_t max_set = 0;
  build_cover_sets(apsp, n, v, s.far_.data(), far_count, cap, /*dedup=*/true,
                   /*budget=*/k_hi, &max_set, s.hits_, s.masks_, sets, labels);

  for (Vertex k = std::max<Vertex>(k_lo, 1); k <= k_hi; ++k) {
    if (std::uint64_t{far_count} > std::uint64_t{k} * max_set) continue;
    if (const auto selection = cover_select(far_count, sets, k)) {
      out.stable = false;
      for (const std::size_t c : *selection) out.witness_endpoints.push_back(labels[c]);
      if (tolerated != nullptr) *tolerated = k - 1;
      return;
    }
  }
}

KStabilityReport SwapEngine::insertion_stability_at(Vertex v, Vertex k, Scratch& s) const {
  BNCG_REQUIRE(v < csr_.num_vertices(), "vertex id out of range");
  KStabilityReport out;
  if (prefer_u8_) {
    if (full_apsp_t<std::uint8_t>(s)) {
      insertion_report_t<std::uint8_t>(s.rows8_.apsp.data(), v, k, k, s, out, nullptr);
      return out;
    }
    width_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  (void)full_apsp_t<std::uint16_t>(s);  // u16 distances cannot saturate (n < 65535)
  insertion_report_t<std::uint16_t>(s.rows16_.apsp.data(), v, k, k, s, out, nullptr);
  return out;
}

Vertex SwapEngine::max_tolerated_insertions(Vertex v, Vertex k_max, Scratch& s) const {
  BNCG_REQUIRE(v < csr_.num_vertices(), "vertex id out of range");
  KStabilityReport out;
  Vertex tolerated = k_max;
  if (prefer_u8_) {
    if (full_apsp_t<std::uint8_t>(s)) {
      insertion_report_t<std::uint8_t>(s.rows8_.apsp.data(), v, 1, k_max, s, out, &tolerated);
      return tolerated;
    }
    width_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  (void)full_apsp_t<std::uint16_t>(s);
  insertion_report_t<std::uint16_t>(s.rows16_.apsp.data(), v, 1, k_max, s, out, &tolerated);
  return tolerated;
}

template <typename Dist>
KStabilityReport SwapEngine::insertion_sweep_t(const Dist* apsp, Vertex k) const {
  const Vertex n = csr_.num_vertices();

  // Per-agent instances are independent given the shared rows; results land
  // in per-agent slots and fold serially, so the reported witness is the
  // EARLIEST unstable agent — the naive sequential sweep's answer — at every
  // thread count. The atomic cutoff only ever skips agents strictly above
  // the current minimum unstable id, which cannot be the answer, so the
  // early exit is a pure work saver with no observable effect.
  std::vector<KStabilityReport> per_agent(n);
  std::vector<std::uint8_t> unstable(n, 0);
  std::atomic<Vertex> first_bad{n};
  ThreadPool& pool = ThreadPool::global();
  {
    std::vector<Scratch> scratch(pool.size());
    pool.parallel_for(n, 1, [&](std::uint64_t vi, unsigned tid) {
      const Vertex v = static_cast<Vertex>(vi);
      if (v > first_bad.load(std::memory_order_relaxed)) return;
      KStabilityReport report;
      insertion_report_t<Dist>(apsp, v, k, k, scratch[tid], report, nullptr);
      if (report.stable) return;
      per_agent[v] = std::move(report);
      unstable[v] = 1;
      Vertex current = first_bad.load(std::memory_order_relaxed);
      while (v < current &&
             !first_bad.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
      }
    });
  }
  for (Vertex v = 0; v < n; ++v) {
    if (unstable[v] != 0) return per_agent[v];
  }
  return {};
}

KStabilityReport SwapEngine::insertion_stability(Vertex k) const {
  const Vertex n = csr_.num_vertices();
  if (n == 0) return {};
  BNCG_REQUIRE(n < kInfDist16,
               "the k-move deviation paths are dense-only (n < 65535); the budget applies to "
               "the basic-game scans");
  // The whole sweep shares one *unmasked* batched APSP: the insertion cover
  // condition reads full-graph rows only (see build_cover_sets), so no
  // per-agent traversal survives. Connectivity is checked up front on row 0
  // (spanning from one vertex spans from all) so the per-agent REQUIRE never
  // fires inside the pool.
  BatchBfsWorkspace bfs;
  if (prefer_u8_) {
    AlignedVec<std::uint8_t> apsp(static_cast<std::size_t>(n) * n);
    if (csr_apsp_capped<std::uint8_t>(csr_, MaskedEdge{}, apsp.data(), bfs, kNoVertex,
                                      engine_inf<std::uint8_t>(),
                                      engine_max_finite<std::uint8_t>())) {
      BNCG_REQUIRE(*std::max_element(apsp.begin(), apsp.begin() + n) < engine_inf<std::uint8_t>(),
                   "k-stability analysis requires a connected graph");
      return insertion_sweep_t<std::uint8_t>(apsp.data(), k);
    }
    width_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  AlignedVec<std::uint16_t> apsp(static_cast<std::size_t>(n) * n);
  (void)csr_apsp_capped<std::uint16_t>(csr_, MaskedEdge{}, apsp.data(), bfs, kNoVertex,
                                       engine_inf<std::uint16_t>(),
                                       engine_max_finite<std::uint16_t>());
  BNCG_REQUIRE(*std::max_element(apsp.begin(), apsp.begin() + n) < engine_inf<std::uint16_t>(),
               "k-stability analysis requires a connected graph");
  return insertion_sweep_t<std::uint16_t>(apsp.data(), k);
}

template <typename Dist>
bool SwapEngine::swap_stability_t(Vertex v, Vertex k, std::uint64_t old_ecc, Scratch& s,
                                  KStabilityReport& out) const {
  constexpr Dist kInf = engine_inf<Dist>();
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  const Vertex n = csr_.num_vertices();
  out = KStabilityReport{};
  out.witness_vertex = v;

  // The far filter must see the inf sentinel as "far" (deletions can push
  // vertices out of v's component entirely, matching the oracle's kInfDist
  // inclusion); that reading needs old_ecc − 1 to stay below the sentinel.
  if (static_cast<std::int32_t>(old_ecc) - 1 > static_cast<std::int32_t>(engine_max_finite<Dist>())) {
    return false;
  }

  const auto nbrs = csr_.neighbors(v);
  const Vertex deg = static_cast<Vertex>(nbrs.size());
  BNCG_REQUIRE(deg < 32, "swap-stability subset enumeration requires deg(v) < 32");

  // One masked APSP of G − v serves every deletion subset D: (G − D) − v is
  // G − v, so each subset only changes WHICH neighbor rows fold into v's
  // post-deletion profile, never the rows themselves.
  auto& rows = s.rows<Dist>();
  rows.apsp.resize(static_cast<std::size_t>(n) * n);
  if (!csr_apsp_capped<Dist>(csr_, MaskedEdge{}, rows.apsp.data(), s.bfs_,
                             /*masked_vertex=*/v, kInf, engine_max_finite<Dist>())) {
    return false;
  }
  rows.arow.resize(n);
  s.far_.resize(n);

  const Vertex j_max = std::min<Vertex>(k, deg);
  std::vector<std::vector<std::uint64_t>> sets;
  std::vector<Vertex> labels;
  const std::int32_t cover_cap = static_cast<std::int32_t>(old_ecc) - 1;
  for (Vertex j = 1; j <= j_max; ++j) {
    for (std::uint32_t mask = 0; mask < (1u << deg); ++mask) {
      if (static_cast<Vertex>(__builtin_popcount(mask)) != j) continue;
      // KD = min over KEPT neighbor rows, folded in ascending endpoint order
      // (DESIGN.md §14); 1 + KD is v's distance profile in G − D, so the far
      // set is everything 1 + KD pushes to ≥ old_ecc — collect_above at
      // old_ecc − 2, with empty-fold ∞ entries passing the filter.
      Dist* kd = rows.arow.data();
      std::fill(kd, kd + n, kInf);
      for (Vertex i = 0; i < deg; ++i) {
        if ((mask & (1u << i)) != 0) continue;
        kern.min_fold(kd, rows.apsp.data() + static_cast<std::size_t>(nbrs[i]) * n, n);
      }
      const std::uint32_t far_count = kern.collect_above(
          kd, n, static_cast<std::int32_t>(old_ecc) - 2, /*skip=*/v, s.far_.data());
      build_cover_sets(rows.apsp.data(), n, v, s.far_.data(), far_count, cover_cap,
                       /*dedup=*/false, /*budget=*/j, nullptr, s.hits_, s.masks_, sets, labels);
      if (const auto selection = cover_select(far_count, sets, j)) {
        out.stable = false;
        for (Vertex i = 0; i < deg; ++i) {
          if ((mask & (1u << i)) != 0) out.witness_deletions.push_back(nbrs[i]);
        }
        for (const std::size_t c : *selection) out.witness_endpoints.push_back(labels[c]);
        return true;
      }
    }
  }
  return true;
}

KStabilityReport SwapEngine::swap_stability_at(Vertex v, Vertex k, Scratch& s) const {
  BNCG_REQUIRE(v < csr_.num_vertices(), "vertex id out of range");
  const std::uint64_t old_ecc = agent_cost(v, UsageCost::Max, s);
  BNCG_REQUIRE(old_ecc != kInfCost, "swap-stability analysis requires a connected graph");
  KStabilityReport out;
  out.witness_vertex = v;
  if (old_ecc <= 1 || k == 0) return out;
  if (prefer_u8_) {
    if (swap_stability_t<std::uint8_t>(v, k, old_ecc, s, out)) return out;
    width_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  (void)swap_stability_t<std::uint16_t>(v, k, old_ecc, s, out);
  return out;
}

template <typename Dist>
bool SwapEngine::alpha_scan_t(Vertex v, const std::vector<std::uint8_t>& owned,
                              Scratch& s) const {
  constexpr Dist kInf = engine_inf<Dist>();
  const simd::Kernels<Dist>& kern = simd::kernels<Dist>();
  const Vertex n = csr_.num_vertices();
  s.alpha_.clear();

  const auto nbrs = csr_.neighbors(v);
  s.is_nbr_.assign(n, 0);
  s.is_nbr_[v] = 1;
  for (const Vertex w : nbrs) s.is_nbr_[w] = 1;

  // Unlike the basic-game scan, the α-game has ADD moves, so even an
  // isolated agent runs the masked APSP: an added edge v–w gives the profile
  // 1 + min(min1, c_w) (the source-removal identity over N(v) ∪ {w}).
  auto& rows = s.rows<Dist>();
  rows.apsp.resize(static_cast<std::size_t>(n) * n);
  if (!csr_apsp_capped<Dist>(csr_, MaskedEdge{}, rows.apsp.data(), s.bfs_,
                             /*masked_vertex=*/v, kInf, engine_max_finite<Dist>())) {
    return false;
  }
  rows.min1.assign(n, kInf);
  rows.min2.assign(n, kInf);
  s.argmin_.assign(n, kNoVertex);
  for (const Vertex z : nbrs) {
    kern.scan_min_update(rows.min1.data(), rows.min2.data(), s.argmin_.data(),
                         rows.apsp.data() + static_cast<std::size_t>(z) * n, z, n);
  }
  rows.arow.resize(n);
  rows.mrow.resize(n);

  // Adds, ascending endpoint (the naive loop order).
  Dist* add_profile = rows.arow.data();
  std::copy(rows.min1.begin(), rows.min1.end(), add_profile);
  add_profile[v] = 0;
  for (Vertex w = 0; w < n; ++w) {
    if (s.is_nbr_[w] != 0) continue;
    const std::uint64_t usage = kern.combine_sum(
        add_profile, rows.apsp.data() + static_cast<std::size_t>(w) * n, n, kInf);
    s.alpha_.push_back({AlphaCandidate::Kind::Add, w, 0, usage});
  }

  // Deletes then swaps, per owned neighbor in ascending (sorted) order.
  for (const Vertex w : nbrs) {
    if (owned[w] == 0) continue;
    Dist* m = rows.mrow.data();
    kern.select_mrow(m, rows.min1.data(), rows.min2.data(), s.argmin_.data(), w, n);
    m[v] = 0;
    // Post-deletion profile is 1 + M^w; combine_sum(m, m) = (n−1) + Σ M^w.
    s.alpha_.push_back({AlphaCandidate::Kind::Delete, w, 0, kern.combine_sum(m, m, n, kInf)});
    for (Vertex w2 = 0; w2 < n; ++w2) {
      if (s.is_nbr_[w2] != 0) continue;
      const std::uint64_t usage =
          kern.combine_sum(m, rows.apsp.data() + static_cast<std::size_t>(w2) * n, n, kInf);
      s.alpha_.push_back({AlphaCandidate::Kind::Swap, w, w2, usage});
    }
  }
  return true;
}

const std::vector<AlphaCandidate>& SwapEngine::alpha_scan(Vertex v,
                                                          const std::vector<std::uint8_t>& owned,
                                                          Scratch& s) const {
  BNCG_REQUIRE(v < csr_.num_vertices(), "vertex id out of range");
  BNCG_REQUIRE(owned.size() >= csr_.num_vertices(), "owned flags must cover every vertex");
  if (prefer_u8_) {
    if (alpha_scan_t<std::uint8_t>(v, owned, s)) return s.alpha_;
    width_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  (void)alpha_scan_t<std::uint16_t>(v, owned, s);
  return s.alpha_;
}

}  // namespace bncg

#include "core/certify_sharded.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <vector>

#include "core/swap_engine.hpp"

#ifdef BNCG_HAS_OPENMP
#include <omp.h>
#endif

namespace bncg {

namespace {

struct ShardResult {
  std::optional<Deviation> best;
  std::uint64_t moves = 0;
  Vertex scanned = 0;
};

}  // namespace

ShardedCertificate certify_sharded(const Graph& g, UsageCost model, bool include_deletions,
                                   const ShardedCertifyConfig& config) {
  const Vertex n = g.num_vertices();
  ShardedCertificate out;
  if (n == 0) {
    out.certificate.is_equilibrium = true;
    return out;
  }
  SwapEngine engine(g, config.width);
  out.width = engine.preferred_width();

#ifdef BNCG_HAS_OPENMP
  const std::size_t threads = static_cast<std::size_t>(omp_get_max_threads());
#else
  const std::size_t threads = 1;
#endif
  const std::size_t shards =
      std::min<std::size_t>(n, config.shards != 0 ? config.shards : std::max<std::size_t>(1, 4 * threads));
  out.shards_used = shards;

  std::vector<ShardResult> results(shards);
  std::atomic<bool> abort{false};
  // One scratch per thread, not per shard: the n×n matrix is the dominant
  // allocation and tied tasks never migrate mid-execution, so indexing by
  // the executing thread is race-free.
  std::vector<SwapEngine::Scratch> scratch(threads);

  const auto run_shard = [&](std::size_t shard) {
    const Vertex lo = static_cast<Vertex>(shard * n / shards);
    const Vertex hi = static_cast<Vertex>((shard + 1) * n / shards);
#ifdef BNCG_HAS_OPENMP
    SwapEngine::Scratch& s = scratch[static_cast<std::size_t>(omp_get_thread_num())];
#else
    SwapEngine::Scratch& s = scratch[0];
#endif
    ShardResult& r = results[shard];
    for (Vertex v = lo; v < hi; ++v) {
      if (config.stop_on_violation && abort.load(std::memory_order_relaxed)) return;
      const std::optional<Deviation> dev =
          config.stop_on_violation
              ? engine.first_deviation(v, model, s, include_deletions, &r.moves)
              : engine.best_deviation(v, model, s, include_deletions, &r.moves);
      ++r.scanned;
      if (dev && (!r.best || dev->cost_after < r.best->cost_after)) r.best = dev;
      if (dev && config.stop_on_violation) {
        abort.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

#ifdef BNCG_HAS_OPENMP
#pragma omp parallel
#pragma omp single nowait
  {
#pragma omp taskloop grainsize(1)
    for (std::size_t shard = 0; shard < shards; ++shard) run_shard(shard);
  }
#else
  for (std::size_t shard = 0; shard < shards; ++shard) run_shard(shard);
#endif

  // Serial fold in shard (= agent) order with a strict '<': the earliest
  // agent wins among equal cost_after, matching SwapEngine::certify and the
  // naive certifiers bit for bit.
  std::optional<Deviation> best;
  for (const ShardResult& r : results) {
    out.certificate.moves_checked += r.moves;
    out.agents_scanned += r.scanned;
    if (r.best && (!best || r.best->cost_after < best->cost_after)) best = r.best;
  }
  out.certificate.witness = best;
  out.certificate.is_equilibrium = !best.has_value();
  out.width_fallbacks = engine.width_fallbacks();
  return out;
}

}  // namespace bncg

#include "core/certify_sharded.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <vector>

#include "core/swap_engine.hpp"
#include "graph/io.hpp"
#include "util/thread_pool.hpp"

namespace bncg {

namespace {

/// Scans agents [r.agent_lo, r.agent_hi) into the payload fields of `r`.
/// The shared scan body of the in-process task shards and the public
/// cross-process entry point, so both fold the exact same per-agent
/// results.
void scan_range(const SwapEngine& engine, UsageCost model, bool include_deletions,
                bool stop_on_violation, SwapEngine::Scratch& scratch, std::atomic<bool>* abort,
                ShardResult& r) {
  for (Vertex v = r.agent_lo; v < r.agent_hi; ++v) {
    if (stop_on_violation && abort != nullptr && abort->load(std::memory_order_relaxed)) return;
    const std::optional<Deviation> dev =
        stop_on_violation ? engine.first_deviation(v, model, scratch, include_deletions, &r.moves)
                          : engine.best_deviation(v, model, scratch, include_deletions, &r.moves);
    ++r.scanned;
    if (dev && (!r.best || dev->cost_after < r.best->cost_after)) r.best = dev;
    if (dev && stop_on_violation) {
      if (abort != nullptr) abort->store(true, std::memory_order_relaxed);
      return;
    }
  }
}

/// Fills the identity and coordinate blocks — the ONE place they are
/// stamped, and every field comes from the engine's own snapshot, so
/// worker-produced and in-process shards can never drift and a fingerprint
/// can never describe a different instance than the payload. `fingerprint`
/// is precomputed by the caller (the in-process driver hoists the O(m)
/// hash out of its per-shard loop) and must equal
/// graph_fingerprint(engine.snapshot()).
[[nodiscard]] ShardResult stamped_shard(std::uint64_t fingerprint, const SwapEngine& engine,
                                        const AgentRange& range, UsageCost model,
                                        bool include_deletions, bool stop_on_violation) {
  const Vertex n = engine.snapshot().num_vertices();
  BNCG_REQUIRE(range.lo <= range.hi && range.hi <= n, "certify_agent_range: bad agent range");
  BNCG_REQUIRE(range.shard_index < range.shard_count, "certify_agent_range: bad shard index");
  ShardResult r;
  r.fingerprint = fingerprint;
  r.n = n;
  r.m = engine.snapshot().num_edges();
  r.model = model;
  r.include_deletions = include_deletions;
  r.stop_on_violation = stop_on_violation;
  r.shard_index = range.shard_index;
  r.shard_count = range.shard_count;
  r.agent_lo = range.lo;
  r.agent_hi = range.hi;
  r.width = engine.preferred_width();
  return r;
}

}  // namespace

ResourceConfig resolved_resources(const ShardedCertifyConfig& config) {
  ResourceConfig resources = config.resources;
  if (resources.width == WidthPolicy::Auto) resources.width = config.width;
  return resources;
}

ShardResult certify_agent_range(const SwapEngine& engine, const AgentRange& range,
                                UsageCost model, bool include_deletions, bool stop_on_violation,
                                SwapEngine::Scratch* scratch, std::atomic<bool>* abort) {
  ShardResult r = stamped_shard(graph_fingerprint(engine.snapshot()), engine, range, model,
                                include_deletions, stop_on_violation);

  SwapEngine::Scratch local;
  const std::uint64_t fallbacks_before = engine.width_fallbacks();
  scan_range(engine, model, include_deletions, stop_on_violation,
             scratch != nullptr ? *scratch : local, abort, r);
  // Exact when this caller is the engine's only user (the worker process);
  // merely indicative under concurrent in-process shards, whose driver
  // re-stamps the engine total after the merge anyway.
  r.width_fallbacks = engine.width_fallbacks() - fallbacks_before;
  return r;
}

void ShardFold::add(const ShardResult& r) {
  if (folded_ == 0) {
    head_ = r;
    head_.best.reset();  // identity block only; the payload lives in the fold
    BNCG_REQUIRE(r.shard_count >= 1, "merge: zero shard count");
  } else {
    BNCG_REQUIRE(r.fingerprint == head_.fingerprint && r.n == head_.n && r.m == head_.m,
                 "merge: shard results come from different instances");
    BNCG_REQUIRE(r.model == head_.model && r.include_deletions == head_.include_deletions &&
                     r.stop_on_violation == head_.stop_on_violation,
                 "merge: shard results come from different run configurations");
    BNCG_REQUIRE(r.shard_count == head_.shard_count,
                 "merge: shard_count disagrees with shard set");
  }
  BNCG_REQUIRE(r.shard_index == folded_, "merge: duplicate or missing shard index");
  BNCG_REQUIRE(r.agent_lo == expect_lo_ && r.agent_lo <= r.agent_hi && r.agent_hi <= r.n,
               "merge: shard ranges do not tile the agent set");
  BNCG_REQUIRE(r.scanned <= r.agent_hi - r.agent_lo, "merge: scanned exceeds the shard range");
  BNCG_REQUIRE(r.stop_on_violation || r.scanned == r.agent_hi - r.agent_lo,
               "merge: incomplete shard in full (non-stop_on_violation) mode");
  BNCG_REQUIRE(!r.best || (r.best->swap.v >= r.agent_lo && r.best->swap.v < r.agent_hi),
               "merge: witness agent outside the shard range");
  expect_lo_ = r.agent_hi;

  // Serial fold in shard (= agent) order with a strict '<': the earliest
  // agent wins among equal cost_after, matching SwapEngine::certify and the
  // naive certifiers bit for bit.
  if (folded_ == 0) out_.width = DistWidth::U8;
  out_.certificate.moves_checked += r.moves;
  out_.agents_scanned += r.scanned;
  out_.width_fallbacks += r.width_fallbacks;
  if (r.width == DistWidth::U16) out_.width = DistWidth::U16;
  if (r.best && (!best_ || r.best->cost_after < best_->cost_after)) best_ = r.best;
  ++folded_;
}

ShardedCertificate ShardFold::finish() const {
  BNCG_REQUIRE(folded_ >= 1, "merge: no shard results");
  BNCG_REQUIRE(folded_ == head_.shard_count, "merge: shard_count disagrees with shard set");
  BNCG_REQUIRE(expect_lo_ == head_.n, "merge: shard ranges do not cover every agent");
  ShardedCertificate out = out_;
  out.shards_used = folded_;
  out.certificate.witness = best_;
  out.certificate.is_equilibrium = !best_.has_value();
  // No shard stops early without a reason: a shard aborts only on its own
  // violation or (in-process) a sibling's, so a clean verdict must rest on
  // every agent having actually been scanned — a partial, witness-free
  // shard set cannot certify an equilibrium even under stop_on_violation.
  BNCG_REQUIRE(best_.has_value() || out.agents_scanned == head_.n,
               "merge: no violation found but not every agent was scanned");
  return out;
}

ShardedCertificate merge_shard_results(const std::vector<ShardResult>& shards) {
  BNCG_REQUIRE(!shards.empty(), "merge: no shard results");

  // Re-establish merge order (workers may hand shards back in any order),
  // then stream through the one true fold.
  std::vector<const ShardResult*> ordered(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) ordered[i] = &shards[i];
  std::sort(ordered.begin(), ordered.end(), [](const ShardResult* a, const ShardResult* b) {
    return a->shard_index < b->shard_index;
  });
  BNCG_REQUIRE(ordered.front()->shard_count == shards.size(),
               "merge: shard_count disagrees with shard set");
  ShardFold fold;
  for (const ShardResult* r : ordered) fold.add(*r);
  return fold.finish();
}

ShardedCertificate certify_sharded(const Graph& g, UsageCost model, bool include_deletions,
                                   const ShardedCertifyConfig& config) {
  const Vertex n = g.num_vertices();
  ShardedCertificate out;
  if (n == 0) {
    out.certificate.is_equilibrium = true;
    return out;
  }
  SwapEngine engine(g, resolved_resources(config));

  ThreadPool& pool = ThreadPool::global();
  const std::size_t threads = pool.size();
  const std::size_t shards =
      std::min<std::size_t>(n, config.shards != 0 ? config.shards : std::max<std::size_t>(1, 4 * threads));

  // Identity stamped once up front through the same helper the worker
  // entry point uses (one O(m) fingerprint pass, not one per shard); the
  // parallel region only fills payloads.
  const std::uint64_t fingerprint = graph_fingerprint(engine.snapshot());
  std::vector<ShardResult> results(shards);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    AgentRange range;
    range.lo = static_cast<Vertex>(shard * n / shards);
    range.hi = static_cast<Vertex>((shard + 1) * n / shards);
    range.shard_index = static_cast<std::uint32_t>(shard);
    range.shard_count = static_cast<std::uint32_t>(shards);
    results[shard] = stamped_shard(fingerprint, engine, range, model, include_deletions,
                                   config.stop_on_violation);
  }

  std::atomic<bool> abort{false};
  // One scratch per pool lane, not per shard: the n×n matrix is the dominant
  // allocation and a claimed shard runs on one lane start to finish, so
  // indexing by the executing lane is race-free.
  std::vector<SwapEngine::Scratch> scratch(threads);

  pool.parallel_for(shards, /*grain=*/1, [&](std::uint64_t shard, unsigned tid) {
    scan_range(engine, model, include_deletions, config.stop_on_violation, scratch[tid], &abort,
               results[static_cast<std::size_t>(shard)]);
  });

  out = merge_shard_results(results);
  // The engine counter is the exact fallback total; per-shard attribution
  // is racy across concurrently scanning tasks.
  out.width = engine.preferred_width();
  out.width_fallbacks = engine.width_fallbacks();
  return out;
}

}  // namespace bncg

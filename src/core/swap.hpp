// Edge swaps — the only move of the basic network creation game.
//
// An agent v replaces one incident edge vw by another incident edge vw'.
// Swapping onto an already-existing edge encodes *deletion* of vw (the
// paper's "special case"). ScopedSwap applies a swap transactionally and
// reverts on scope exit unless committed, which is how the certifiers and
// dynamics evaluate millions of tentative moves without copying the graph.
#pragma once

#include "graph/graph.hpp"

namespace bncg {

/// One swap move by agent `v`: remove edge {v, remove_w}, add edge
/// {v, add_w}. When add_w == remove_w the move is a no-op; when {v, add_w}
/// already exists the move degenerates to deleting {v, remove_w}.
struct EdgeSwap {
  Vertex v = 0;         ///< the swapping agent
  Vertex remove_w = 0;  ///< current neighbor losing its edge to v
  Vertex add_w = 0;     ///< new neighbor gaining an edge to v

  /// True when the move deletes without adding (add_w already adjacent or
  /// equal to remove_w is checked dynamically; this flags the encoded form).
  friend constexpr bool operator==(const EdgeSwap&, const EdgeSwap&) = default;
};

/// Validates that `s` is a legal move on `g`: v ≠ add_w, edge {v, remove_w}
/// exists. (add_w may coincide with an existing neighbor — deletion.)
[[nodiscard]] inline bool is_legal_swap(const Graph& g, const EdgeSwap& s) {
  if (s.v >= g.num_vertices() || s.add_w >= g.num_vertices()) return false;
  if (s.add_w == s.v) return false;
  return g.has_edge(s.v, s.remove_w);
}

/// RAII transactional swap: applies on construction, reverts on destruction
/// unless commit() was called. Non-copyable/non-movable — scope-local only.
class ScopedSwap {
 public:
  ScopedSwap(Graph& g, const EdgeSwap& s) : g_(g), swap_(s) {
    BNCG_REQUIRE(is_legal_swap(g, s), "illegal edge swap");
    if (swap_.add_w == swap_.remove_w) return;  // no-op move
    g_.remove_edge(swap_.v, swap_.remove_w);
    added_ = g_.add_edge_if_absent(swap_.v, swap_.add_w);
    applied_ = true;
  }

  ScopedSwap(const ScopedSwap&) = delete;
  ScopedSwap& operator=(const ScopedSwap&) = delete;

  ~ScopedSwap() {
    if (!applied_ || committed_) return;
    if (added_) g_.remove_edge(swap_.v, swap_.add_w);
    g_.add_edge(swap_.v, swap_.remove_w);
  }

  /// Keeps the swap applied past the end of scope.
  void commit() noexcept { committed_ = true; }

  /// True iff the swap actually inserted a new edge (false = pure deletion
  /// because {v, add_w} already existed, or no-op).
  [[nodiscard]] bool added_edge() const noexcept { return added_; }

 private:
  Graph& g_;
  EdgeSwap swap_;
  bool applied_ = false;
  bool added_ = false;
  bool committed_ = false;
};

/// Applies a swap permanently (helper for dynamics and tests).
inline void apply_swap(Graph& g, const EdgeSwap& s) {
  ScopedSwap scoped(g, s);
  scoped.commit();
}

}  // namespace bncg

// Equilibrium search: tools for *finding* equilibria with prescribed
// structure, not just certifying given ones.
//
// Motivation: the reproduction found that the paper's literal Figure 3
// instance admits improving swaps (see gen/paper.hpp). Theorem 5 is
// existential, so the library provides the machinery that re-establishes it:
//  * sum_unrest — a quantitative "distance from equilibrium" potential
//    (total improvement available across agents; 0 ⇔ sum equilibrium);
//  * anneal_sum_equilibrium — simulated annealing over edge toggles that
//    minimizes unrest subject to a diameter constraint (this is how
//    diameter3_sum_equilibrium_n8() was discovered);
//  * exhaustive_diameter3_sum_equilibrium — complete enumeration of all
//    2^C(n,2) labelled graphs for small n, establishing minimality results
//    (no diameter-3 sum equilibrium exists on ≤ 7 vertices).
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace bncg {

/// Σ_v (best available improvement of agent v's distance sum); 0 iff the
/// graph is a sum equilibrium. A natural progress measure for search.
[[nodiscard]] std::uint64_t sum_unrest(const Graph& g);

/// Configuration for the annealing search.
struct AnnealConfig {
  Vertex target_diameter = 3;      ///< hard constraint on every accepted state
  std::uint64_t steps = 6000;      ///< edge-toggle proposals
  double initial_temperature = 3.0;
  double cooling = 0.9995;         ///< geometric cooling per step
  std::uint64_t seed = 0x5ea2c4;
};

/// Anneals from `start` toward a sum equilibrium of the target diameter.
/// Returns the reached graph when unrest hit 0, nullopt otherwise. Proposals
/// toggle a single edge; states that are disconnected or off-diameter are
/// rejected. Deterministic given the seed.
[[nodiscard]] std::optional<Graph> anneal_sum_equilibrium(Graph start, const AnnealConfig& config);

/// Exhaustively decides whether any labelled graph on n vertices is a
/// connected diameter-3 sum equilibrium, returning the first found.
/// Enumerates all 2^C(n,2) edge subsets — feasible for n ≤ 7 (≈ 2M graphs).
/// Precondition: n ≤ 7 (guard against accidental exponential blowups).
[[nodiscard]] std::optional<Graph> exhaustive_diameter3_sum_equilibrium(Vertex n);

}  // namespace bncg

// Equilibrium search: tools for *finding* equilibria with prescribed
// structure, not just certifying given ones.
//
// Motivation: the reproduction found that the paper's literal Figure 3
// instance admits improving swaps (see gen/paper.hpp). Theorem 5 is
// existential, so the library provides the machinery that re-establishes it:
//  * sum_unrest / max_unrest — quantitative "distance from equilibrium"
//    potentials (total improvement available across agents; 0 ⇔ the matching
//    certifier passes);
//  * anneal_equilibrium — simulated annealing over edge toggles that
//    minimizes unrest subject to a diameter constraint, in either usage-cost
//    model (this is how diameter3_sum_equilibrium_n8() was discovered).
//    Proposals are evaluated *incrementally* through core/search_state.hpp —
//    cached per-agent masked distance matrices updated per toggle — instead
//    of a full APSP-plus-scan recompute per proposal; AnnealConfig can force
//    the legacy full-recompute evaluation, and both paths produce identical
//    trajectories (differential-tested);
//  * exhaustive_diameter3_sum_equilibrium — complete enumeration of all
//    2^C(n,2) labelled graphs for small n, establishing minimality results
//    (no diameter-3 sum equilibrium exists on ≤ 7 vertices).
#pragma once

#include <cstdint>
#include <optional>

#include "core/dist_provider.hpp"
#include "core/usage_cost.hpp"
#include "graph/dist_width.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace bncg {

/// Σ_v (best available improvement of agent v's distance sum); 0 iff the
/// graph is a sum equilibrium. A natural progress measure for search.
/// Intended for connected graphs.
[[nodiscard]] std::uint64_t sum_unrest(const Graph& g);

/// Max-model counterpart: Σ_v max(1, best available improvement of agent
/// v's local diameter), where an agent with only a cost-neutral deletion
/// violation (the max-equilibrium deletion clause) contributes 1. Hence
/// 0 ⇔ the graph is a max equilibrium. Intended for connected graphs.
[[nodiscard]] std::uint64_t max_unrest(const Graph& g);

/// How anneal proposals are evaluated.
enum class UnrestEval {
  Auto,           ///< incremental when search_state_enabled(), else full
  Incremental,    ///< force the SearchState delta-evaluation path
  FullRecompute,  ///< force the legacy graph-copy + full unrest recompute
};

/// Configuration for the annealing search. A single `seed` drives every
/// random draw of a run (start nudging, proposal endpoints, Metropolis
/// acceptance), so identical configs give identical trajectories — in
/// particular the evaluation mode must not (and does not) change them.
struct AnnealConfig {
  Vertex target_diameter = 3;      ///< hard constraint on every accepted state
  std::uint64_t steps = 6000;      ///< edge-toggle proposals
  double initial_temperature = 3.0;
  double cooling = 0.9995;         ///< geometric cooling per step
  std::uint64_t seed = 0x5ea2c4;
  UsageCost cost = UsageCost::Sum;            ///< which unrest is annealed
  UnrestEval evaluation = UnrestEval::Auto;   ///< proposal evaluation path
  /// DEPRECATED (one PR): pre-ResourceConfig width knob, honored only while
  /// resources.width stays Auto. Use resources.width instead.
  WidthPolicy dist_width = WidthPolicy::Auto;
  /// Shared resource knobs (core/dist_provider.hpp). Width is purely a
  /// speed/memory preference: trajectories are identical at any width — the
  /// state promotes u8 → u16 exactly rather than approximate. Under Auto
  /// the width is seeded from the run's own diameter constraint through
  /// WidthAndBudgetPolicy (the nudge phase proves the diameter, so the
  /// state's ecc-screen probe is redundant here).
  ResourceConfig resources;
};

/// Counters of one annealing run (filled when a stats sink is passed).
struct AnnealStats {
  std::uint64_t proposals = 0;   ///< toggles drawn (self-loops excluded)
  std::uint64_t filtered = 0;    ///< rejected by the connectivity/diameter screen
  std::uint64_t evaluated = 0;   ///< proposals whose unrest was computed
  std::uint64_t accepted = 0;    ///< proposals taken by the Metropolis rule
  std::uint64_t final_unrest = 0;
  /// Width the incremental state finished at (U16 for the full-recompute
  /// path) and how many u8 → u16 cap promotions the run crossed.
  DistWidth dist_width = DistWidth::U16;
  std::uint64_t width_promotions = 0;
};

/// Anneals from `start` toward a zero-unrest graph of the target diameter in
/// the configured usage-cost model. Returns the reached graph when unrest
/// hit 0, nullopt otherwise. Proposals toggle a single edge; states that are
/// disconnected or off-diameter are rejected. Deterministic given the seed.
[[nodiscard]] std::optional<Graph> anneal_equilibrium(Graph start, const AnnealConfig& config,
                                                      AnnealStats* stats = nullptr);

/// Sum-model convenience wrapper (the historical entry point): as
/// anneal_equilibrium with config.cost forced to UsageCost::Sum.
[[nodiscard]] std::optional<Graph> anneal_sum_equilibrium(Graph start, const AnnealConfig& config);

/// Exhaustively decides whether any labelled graph on n vertices is a
/// connected diameter-3 sum equilibrium, returning the first found.
/// Enumerates all 2^C(n,2) edge subsets — feasible for n ≤ 7 (≈ 2M graphs).
/// Precondition: n ≤ 7 (guard against accidental exponential blowups).
[[nodiscard]] std::optional<Graph> exhaustive_diameter3_sum_equilibrium(Vertex n);

}  // namespace bncg

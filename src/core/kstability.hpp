// Stability under k simultaneous edge insertions (Section 4 generalization).
//
// Theorem 12's d-dimensional construction is deletion-critical and stable
// when one agent may insert (or swap) up to d−1 edges at once, giving the
// Ω(n^{1/(k+1)}) diameter/computational-power trade-off. Because deletions
// never decrease any distance, stability under k *insertions* implies
// stability under k swaps; this module therefore decides the insertion
// question exactly.
//
// Decision procedure: after inserting edges v–w₁,…,v–w_k, the new distance
// from v to x is min(d(v,x), 1 + min_i d(w_i,x)) (a shortest path crosses v
// at most once, hence uses at most one inserted edge). The eccentricity of
// v drops below ecc(v) iff the far sphere F = {x : d(v,x) = ecc(v)} can be
// *covered* by k vertices w with d(w,x) ≤ ecc(v) − 2. That is an exact set
// cover instance, solved here by branch-and-bound on bitset coverage with
// dominance pruning — exact, and fast because |F| is small for the paper's
// constructions.
#pragma once

#include <optional>
#include <vector>

#include "graph/apsp.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Verdict for one vertex (or a whole graph).
struct KStabilityReport {
  bool stable = true;
  /// When unstable: the agent and the ≤ k insertion endpoints that lower
  /// its eccentricity (a machine-checkable witness).
  Vertex witness_vertex = 0;
  std::vector<Vertex> witness_endpoints;
  /// For swap_stability_at: neighbors of v whose edges the witness deletes
  /// (empty for pure-insertion analyses).
  std::vector<Vertex> witness_deletions;
};

/// Can agent `v` decrease its eccentricity by inserting ≤ k edges?
/// Exact. Requires a connected graph's distance matrix.
[[nodiscard]] KStabilityReport insertion_stability_at(const DistanceMatrix& dm, Vertex v,
                                                      Vertex k);

/// Graph-level single-agent form, routed through the SwapEngine k-insertion
/// evaluator when swap_engine_enabled(g) (bit-identical verdict AND witness
/// to the naive oracle — DESIGN.md §14), else bncg::naive::.
[[nodiscard]] KStabilityReport insertion_stability_at(const Graph& g, Vertex v, Vertex k);

/// Checks every vertex; exact. O(n) cover instances. Routed: the engine path
/// shares one batched APSP across all agents and parallelizes the per-agent
/// cover instances (serial fold — the witness is the earliest unstable
/// agent, identical to the naive sequential sweep at any thread count).
[[nodiscard]] KStabilityReport insertion_stability(const Graph& g, Vertex k);

/// Largest k in [0, k_max] such that vertex `v` cannot improve with ≤ k
/// insertions (0 means even one insertion helps). For vertex-transitive
/// graphs, one call characterizes the whole graph.
[[nodiscard]] Vertex max_tolerated_insertions(const DistanceMatrix& dm, Vertex v, Vertex k_max);

/// Graph-level routed form of max_tolerated_insertions: the engine builds
/// the agent's cover instance once and re-solves it at each budget.
[[nodiscard]] Vertex max_tolerated_insertions(const Graph& g, Vertex v, Vertex k_max);

/// Exact minimum set cover: the smallest number of candidate sets covering
/// the universe {0,…,universe−1}, or nullopt when not coverable at all.
/// Candidates are bitsets (universe bits, little-endian words). Exposed for
/// tests; branch-and-bound with most-constrained-element branching.
[[nodiscard]] std::optional<Vertex> min_cover_size(
    Vertex universe, const std::vector<std::vector<std::uint64_t>>& candidates, Vertex depth_cap);

/// One exact cover decision at a fixed budget: the selected candidate
/// indices (≤ budget of them) covering {0,…,universe−1}, or nullopt when no
/// such selection exists. This is THE cover solver both the naive oracles
/// and the SwapEngine k-move paths call, so selections — and therefore
/// witness_endpoints — are identical by construction on identical instances.
[[nodiscard]] std::optional<std::vector<std::size_t>> cover_select(
    Vertex universe, const std::vector<std::vector<std::uint64_t>>& sets, Vertex budget);

/// Stability under ≤ k simultaneous edge *swaps* at one vertex — the form
/// Theorem 12's statement actually mentions ("insertion (or swapping) of up
/// to d−1 edges"). A j-swap (j ≤ k) deletes j edges incident to v and
/// inserts j new ones. Deleting v's edges can lengthen other vertices'
/// paths (they may route through v), so swap stability does NOT reduce to
/// insertion stability syntactically; this decides it exactly by
/// enumerating deletion subsets (deg(v) choose j — cheap for the paper's
/// constant-degree constructions) and solving the induced cover instance in
/// each deleted graph. Moves that disconnect v are never improving (+∞).
[[nodiscard]] KStabilityReport swap_stability_at(const Graph& g, Vertex v, Vertex k);

/// Brute-force oracles: the original full-recompute implementations (one
/// DistanceMatrix per decision, one per deletion subset for swaps). The
/// routed entry points above fall back to these when BNCG_FORCE_NAIVE is
/// set or n exceeds the engine auto-enable cap; the differential suite
/// tests/test_kstability_engine.cpp holds the engine to byte-identical
/// reports against them.
namespace naive {

[[nodiscard]] KStabilityReport insertion_stability_at(const Graph& g, Vertex v, Vertex k);
[[nodiscard]] KStabilityReport insertion_stability(const Graph& g, Vertex k);
[[nodiscard]] Vertex max_tolerated_insertions(const Graph& g, Vertex v, Vertex k_max);
[[nodiscard]] KStabilityReport swap_stability_at(const Graph& g, Vertex v, Vertex k);

}  // namespace naive

}  // namespace bncg

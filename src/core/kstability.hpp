// Stability under k simultaneous edge insertions (Section 4 generalization).
//
// Theorem 12's d-dimensional construction is deletion-critical and stable
// when one agent may insert (or swap) up to d−1 edges at once, giving the
// Ω(n^{1/(k+1)}) diameter/computational-power trade-off. Because deletions
// never decrease any distance, stability under k *insertions* implies
// stability under k swaps; this module therefore decides the insertion
// question exactly.
//
// Decision procedure: after inserting edges v–w₁,…,v–w_k, the new distance
// from v to x is min(d(v,x), 1 + min_i d(w_i,x)) (a shortest path crosses v
// at most once, hence uses at most one inserted edge). The eccentricity of
// v drops below ecc(v) iff the far sphere F = {x : d(v,x) = ecc(v)} can be
// *covered* by k vertices w with d(w,x) ≤ ecc(v) − 2. That is an exact set
// cover instance, solved here by branch-and-bound on bitset coverage with
// dominance pruning — exact, and fast because |F| is small for the paper's
// constructions.
#pragma once

#include <optional>
#include <vector>

#include "graph/apsp.hpp"
#include "graph/graph.hpp"

namespace bncg {

/// Verdict for one vertex (or a whole graph).
struct KStabilityReport {
  bool stable = true;
  /// When unstable: the agent and the ≤ k insertion endpoints that lower
  /// its eccentricity (a machine-checkable witness).
  Vertex witness_vertex = 0;
  std::vector<Vertex> witness_endpoints;
  /// For swap_stability_at: neighbors of v whose edges the witness deletes
  /// (empty for pure-insertion analyses).
  std::vector<Vertex> witness_deletions;
};

/// Can agent `v` decrease its eccentricity by inserting ≤ k edges?
/// Exact. Requires a connected graph's distance matrix.
[[nodiscard]] KStabilityReport insertion_stability_at(const DistanceMatrix& dm, Vertex v,
                                                      Vertex k);

/// Checks every vertex; exact. O(n) cover instances.
[[nodiscard]] KStabilityReport insertion_stability(const Graph& g, Vertex k);

/// Largest k in [0, k_max] such that vertex `v` cannot improve with ≤ k
/// insertions (0 means even one insertion helps). For vertex-transitive
/// graphs, one call characterizes the whole graph.
[[nodiscard]] Vertex max_tolerated_insertions(const DistanceMatrix& dm, Vertex v, Vertex k_max);

/// Exact minimum set cover: the smallest number of candidate sets covering
/// the universe {0,…,universe−1}, or nullopt when not coverable at all.
/// Candidates are bitsets (universe bits, little-endian words). Exposed for
/// tests; branch-and-bound with most-constrained-element branching.
[[nodiscard]] std::optional<Vertex> min_cover_size(
    Vertex universe, const std::vector<std::vector<std::uint64_t>>& candidates, Vertex depth_cap);

/// Stability under ≤ k simultaneous edge *swaps* at one vertex — the form
/// Theorem 12's statement actually mentions ("insertion (or swapping) of up
/// to d−1 edges"). A j-swap (j ≤ k) deletes j edges incident to v and
/// inserts j new ones. Deleting v's edges can lengthen other vertices'
/// paths (they may route through v), so swap stability does NOT reduce to
/// insertion stability syntactically; this decides it exactly by
/// enumerating deletion subsets (deg(v) choose j — cheap for the paper's
/// constant-degree constructions) and solving the induced cover instance in
/// each deleted graph. Moves that disconnect v are never improving (+∞).
[[nodiscard]] KStabilityReport swap_stability_at(const Graph& g, Vertex v, Vertex k);

}  // namespace bncg
